// Mixedtraffic walks through the paper's integrated-services scenario
// (§5.2, Figs. 12–13): a cell carrying both delay-bound voice and bursty
// file data. It compares all six protocols on one loaded cell and then
// shows how the base-station request queue changes the picture.
package main

import (
	"fmt"
	"log"
	"time"

	"charisma"
)

func report(title string, opts charisma.Options) {
	results, err := charisma.Compare(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", title)
	fmt.Printf("%-11s %10s %12s %12s %10s\n", "protocol", "Ploss", "γ(pkt/frm)", "Dd", "util")
	for _, r := range results {
		fmt.Printf("%-11s %9.3f%% %12.2f %12v %9.1f%%\n",
			r.Protocol, 100*r.VoiceLossRate, r.DataThroughputPerFrame,
			r.MeanDataDelay.Round(time.Millisecond), 100*r.InfoUtilization)
	}
}

func main() {
	base := charisma.Options{
		VoiceUsers: 10,
		DataUsers:  20,
		Seed:       1,
		Duration:   10 * time.Second,
	}

	fmt.Println("Integrated voice + data cell: Nv=10 voice users, Nd=20 data users")
	fmt.Println("(each data user offers ~100 packets/s in 100-packet bursts)")

	report("--- without base-station request queue ---", base)

	withQueue := base
	withQueue.WithRequestQueue = true
	report("--- with base-station request queue (§4.5) ---", withQueue)

	fmt.Println("\nWhat to look for (paper §5.2):")
	fmt.Println(" * CHARISMA posts the highest data throughput and the lowest delay —")
	fmt.Println("   its scheduler packs frames with good-channel users and defers the")
	fmt.Println("   deep-faded ones until their channels recover.")
	fmt.Println(" * D-TDMA/VR rides the same adaptive PHY but schedules channel-blind,")
	fmt.Println("   paying in delay; D-TDMA/FR serializes one packet per grant and")
	fmt.Println("   suffers order-of-magnitude worse delay.")
	fmt.Println(" * RMAV collapses: one contention slot per frame cannot carry this")
	fmt.Println("   population, and voice starves while data grants stretch frames.")
}
