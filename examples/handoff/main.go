// Handoff demonstrates the paper's §6 future-work extension: a two-cell
// nomadic computing deployment in which users attach to the base station
// with the best long-term channel, with hysteresis. It contrasts the
// channel-quality handoff rule against static attachment at a load where
// deep-shadowed users matter.
package main

import (
	"fmt"
	"log"
	"time"

	"charisma"
)

func run(disable bool) charisma.MultiCellResult {
	r, err := charisma.RunMultiCell(charisma.MultiCellOptions{
		Cells:          2,
		Protocol:       charisma.ProtocolCHARISMA,
		VoiceUsers:     160, // ~80 per cell: near single-cell capacity
		ShadowSigmaDB:  8,   // deep shadowing: attachment choice matters
		DisableHandoff: disable,
		Seed:           1,
		Duration:       12 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("Two CHARISMA cells, 160 voice users, 8 dB shadowing, 12 s measured")
	fmt.Println()

	static := run(true)
	fmt.Printf("static attachment   : Ploss %.3f%%  (per cell: %.3f%% / %.3f%%)\n",
		100*static.VoiceLossRate,
		100*static.PerCellLossRates[0], 100*static.PerCellLossRates[1])

	handoff := run(false)
	fmt.Printf("channel-quality HO  : Ploss %.3f%%  (per cell: %.3f%% / %.3f%%), %d handoffs\n",
		100*handoff.VoiceLossRate,
		100*handoff.PerCellLossRates[0], 100*handoff.PerCellLossRates[1],
		handoff.Handoffs)

	if handoff.VoiceLossRate < static.VoiceLossRate {
		fmt.Printf("\n→ attaching by channel quality cuts voice loss %.1fx:\n",
			static.VoiceLossRate/handoff.VoiceLossRate)
		fmt.Println("  users trapped in deep shadow toward their static cell would burn")
		fmt.Println("  robust low-rate modes (or drop packets outright); switching to the")
		fmt.Println("  stronger base station keeps them in the high-throughput modes that")
		fmt.Println("  CHARISMA's scheduler feeds on — the paper's §6 conjecture, verified.")
	} else {
		fmt.Println("\n→ at this operating point handoff churn outweighed its gain.")
	}
}
