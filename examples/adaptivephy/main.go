// Adaptivephy demonstrates the substrate beneath the MAC comparison: the
// burst-error radio channel (paper Fig. 5) and the 6-mode ABICM adaptive
// physical layer (paper Fig. 7), through the library's public model API.
package main

import (
	"fmt"
	"strings"
	"time"

	"charisma"
)

func main() {
	// --- Fig. 5: fading trace -------------------------------------------
	fmt.Println("Fig. 5 — one second of combined fading at 50 km/h (sampled per frame)")
	trace := charisma.FadingTrace(1, time.Second, 50)
	const cols = 72
	// Render an ASCII strip chart: rows are dB levels, columns time.
	levels := []float64{10, 5, 0, -5, -10, -15, -20}
	step := len(trace) / cols
	if step < 1 {
		step = 1
	}
	for _, lv := range levels {
		row := make([]byte, 0, cols)
		for c := 0; c < cols && c*step < len(trace); c++ {
			amp := trace[c*step].AmplitudeDB
			shadow := trace[c*step].ShadowDB
			switch {
			case amp >= lv && amp < lv+5:
				row = append(row, '*') // combined fading
			case shadow >= lv && shadow < lv+5:
				row = append(row, '-') // shadowing alone
			default:
				row = append(row, ' ')
			}
		}
		fmt.Printf("%6.0f dB |%s\n", lv, row)
	}
	fmt.Println("          (* combined c(t) = fast fading x shadowing, - local mean)")

	// --- Fig. 7: adaptive modem curves ----------------------------------
	fmt.Println("\nFig. 7 — ABICM mode staircase and residual BER vs CSI")
	fmt.Printf("%10s %8s %5s %11s %12s %12s\n", "CSI amp", "SNR dB", "mode", "throughput", "BER", "fixed BER")
	pts := charisma.PHYCurves(121)
	for i := 0; i < len(pts); i += 10 {
		p := pts[i]
		bar := strings.Repeat("#", int(p.Throughput*2))
		fmt.Printf("%10.4f %8.1f %5d %11.1f %12.2e %12.2e  %s\n",
			p.CSIAmplitude, p.SNRdB, p.Mode, p.Throughput, p.BER, p.FixedBER, bar)
	}

	fmt.Println("\nReading the table: as CSI improves the modem climbs through the six")
	fmt.Println("modes (η = 1/2 … 5 bits/symbol) while holding the target BER — the")
	fmt.Println("variable throughput CHARISMA's scheduler exploits. Below the lowest")
	fmt.Println("threshold the link is in outage: exactly the users CHARISMA defers.")
}
