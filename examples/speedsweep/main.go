// Speedsweep reproduces the paper's §5.3.3 mobility study: CHARISMA's
// CSI-dependent scheduling keeps working as the mobile speed — and with it
// the Doppler spread and the CSI staleness — grows from pedestrian-slow to
// 80 km/h, degrading only mildly thanks to the CSI-refresh (polling)
// mechanism.
package main

import (
	"fmt"
	"log"
	"time"

	"charisma"
)

func main() {
	speeds := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	const nv = 60

	fmt.Printf("CHARISMA voice loss vs mobile speed (Nv=%d, no queue)\n\n", nv)
	fmt.Printf("%12s %12s %14s\n", "speed (km/h)", "Ploss", "vs 50 km/h")

	var at50 float64
	losses := make([]float64, len(speeds))
	for i, v := range speeds {
		res, err := charisma.Run(charisma.Options{
			Protocol:   charisma.ProtocolCHARISMA,
			VoiceUsers: nv,
			Seed:       1,
			Duration:   10 * time.Second,
			SpeedKmh:   v,
		})
		if err != nil {
			log.Fatal(err)
		}
		losses[i] = res.VoiceLossRate
		if v == 50 {
			at50 = res.VoiceLossRate
		}
	}
	for i, v := range speeds {
		rel := "-"
		if at50 > 0 {
			rel = fmt.Sprintf("%+.1f%%", 100*(losses[i]-at50)/at50)
		}
		fmt.Printf("%12g %11.4f%% %14s\n", v, 100*losses[i], rel)
	}

	fmt.Println("\nPaper §5.3.3: performance is essentially unchanged from 10–50 km/h;")
	fmt.Println("even at 80 km/h the degradation stays small because most stale-CSI")
	fmt.Println("cases are caught by the CSI refresh mechanism before allocation.")
}
