// Voicecapacity reproduces the headline result of the paper's §5.1 in
// miniature: sweep the voice population for all six protocols and report
// how many users each supports at the 1% packet-loss QoS threshold
// (Fig. 11a style, no request queue, Nd = 0).
package main

import (
	"fmt"
	"log"
	"time"

	"charisma"
)

func main() {
	sweep := []int{20, 40, 60, 80, 100, 120, 140}
	protocols := charisma.AllProtocols()

	fmt.Println("voice capacity at the 1% loss threshold (no request queue, Nd=0)")
	fmt.Printf("%-8s", "Nv")
	for _, p := range protocols {
		fmt.Printf(" %11s", p)
	}
	fmt.Println()

	// loss[p] holds the Ploss series for protocol p across the sweep.
	loss := make(map[charisma.Protocol][]float64, len(protocols))
	for _, nv := range sweep {
		results, err := charisma.Compare(charisma.Options{
			VoiceUsers:   nv,
			Seed:         1,
			Duration:     8 * time.Second,
			Replications: 4, // smooth each point over 4 independent seeds
		}, protocols...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d", nv)
		for i, p := range protocols {
			loss[p] = append(loss[p], results[i].VoiceLossRate)
			fmt.Printf(" %10.3f%%", 100*results[i].VoiceLossRate)
		}
		fmt.Println()
	}

	fmt.Println("\ninterpolated capacity at 1%:")
	for _, p := range protocols {
		fmt.Printf("  %-11s ≈ %s voice users\n", p, capacity(sweep, loss[p], 0.01))
	}
	fmt.Println("\npaper shape check: CHARISMA first, D-TDMA/VR and DRMA next,")
	fmt.Println("RAMA and D-TDMA/FR around 60, RMAV unstable early.")
}

// capacity interpolates the first upward crossing of the threshold.
func capacity(xs []int, ys []float64, threshold float64) string {
	for i := 1; i < len(xs); i++ {
		if ys[i-1] <= threshold && ys[i] > threshold {
			t := (threshold - ys[i-1]) / (ys[i] - ys[i-1])
			return fmt.Sprintf("%.0f", float64(xs[i-1])+t*float64(xs[i]-xs[i-1]))
		}
	}
	if len(ys) > 0 && ys[0] > threshold {
		return fmt.Sprintf("< %d", xs[0])
	}
	return fmt.Sprintf("> %d", xs[len(xs)-1])
}
