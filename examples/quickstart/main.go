// Quickstart: simulate one CHARISMA cell with integrated voice and data
// traffic and print the paper's three performance metrics.
package main

import (
	"fmt"
	"log"
	"time"

	"charisma"
)

func main() {
	res, err := charisma.Run(charisma.Options{
		Protocol:     charisma.ProtocolCHARISMA,
		VoiceUsers:   60,
		DataUsers:    10,
		Seed:         1,
		Duration:     15 * time.Second,
		Replications: 8, // 8 independent seeds pooled, CI95 across them
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CHARISMA uplink cell — 60 voice users, 10 data users, 15 s × %d replications\n",
		res.Replications)
	fmt.Printf("  voice packet loss Ploss : %.3f%% ± %.3f%%  (drops %.3f%% + errors %.3f%%)\n",
		100*res.VoiceLossRate, 100*res.VoiceLossCI95, 100*res.VoiceDropRate, 100*res.VoiceErrorRate)
	fmt.Printf("  data throughput γ       : %.2f ± %.2f packets/frame\n",
		res.DataThroughputPerFrame, res.DataThroughputCI95)
	fmt.Printf("  mean data delay Dd      : %v ± %v\n",
		res.MeanDataDelay.Round(time.Millisecond), res.MeanDataDelayCI95.Round(time.Millisecond))
	fmt.Printf("  request collision rate  : %.2f%%\n", 100*res.CollisionRate)
	fmt.Printf("  info subframe utilized  : %.1f%%\n", 100*res.InfoUtilization)

	if res.VoiceLossRate < 0.01 {
		fmt.Println("  → voice QoS met (below the paper's 1% threshold)")
	} else {
		fmt.Println("  → voice QoS violated (above the paper's 1% threshold)")
	}
}
