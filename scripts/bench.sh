#!/usr/bin/env bash
# Perf-trajectory harness: runs the substrate and figure benchmarks and
# snapshots them into a committed BENCH_<pr>.json, so each perf PR leaves a
# comparable data point behind (PR 4 starts the trajectory).
#
# Usage:
#   scripts/bench.sh snapshot   # full run, writes BENCH_${BENCH_PR:-4}.json
#   scripts/bench.sh smoke      # CI: 1 iteration + zero-alloc guard, no file
#
# Environment:
#   BENCH_PR     PR number stamped into the snapshot (default 7)
#   BENCH_COUNT  -count for the substrate benches (default 5)
#   BENCH_OUT    output path (default BENCH_${BENCH_PR}.json)
set -euo pipefail
cd "$(dirname "$0")/.."

mode=${1:-snapshot}
pr=${BENCH_PR:-7}
out=${BENCH_OUT:-BENCH_${pr}.json}

# The hot paths that must stay allocation-free: the channel plane's frame
# advance, its memoized queries and batched replay, mode selection, the
# event engine's steady state and equal-timestamp batch dispatch (PR 7),
# the CHARISMA frame path over an active cell (request free list, PR 5),
# the idle-wake cycle over a 10⁵-station lazy cell (timer wheel, PR 6),
# the warm-arena replication setup (PR 7), and the frame path with a live
# obs.SimCounters read per frame (PR 8 — observability must be free).
ZERO_ALLOC='^(ChannelBankFrame|ChannelBankQuery|ChannelReplayCatchUp|FadingAdvance|ModeSelection|EngineSchedule|EngineStepBatch|CharismaFrame|IdleWakeCell|ReplicationSetup|ObsOffFrame)$'

# Population-scaling ceiling: resident heap per idle station at 10⁵
# stations (the same budget TestMillionStationMemoryBudget pins at 10⁶).
MAX_B_PER_STATION='^IdleCellPopulation/n=100000$:B/station:64'

case "$mode" in
  smoke)
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    go test -run '^$' -benchtime 1x -benchmem -timeout 10m \
      -bench 'BenchmarkChannelBank|BenchmarkChannelReplayCatchUp|BenchmarkFadingAdvance|BenchmarkModeSelection|BenchmarkEngineSchedule$|BenchmarkEngineStepBatch|BenchmarkCharismaFrame|BenchmarkObsOffFrame|BenchmarkIdleWakeCell' \
      . | tee "$raw"
    # The 10⁵ population point runs separately: its sub-bench pattern would
    # otherwise filter the flat benchmarks above.
    go test -run '^$' -benchtime 1x -benchmem -timeout 10m \
      -bench 'BenchmarkIdleCellPopulation/n=100000$' . | tee -a "$raw"
    # Warm-arena replication setup (white-box bench in internal/core).
    go test -run '^$' -benchtime 1x -benchmem -timeout 10m \
      -bench 'BenchmarkReplicationSetup' ./internal/core | tee -a "$raw"
    go run ./cmd/benchsnap -in "$raw" -assert-zero-allocs "$ZERO_ALLOC" \
      -assert-max-metric "$MAX_B_PER_STATION"
    ;;
  snapshot)
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    # Substrate microbenches: repeated samples for a stable min/median.
    go test -run '^$' -count "${BENCH_COUNT:-5}" -benchmem -timeout 60m \
      -bench 'BenchmarkChannelBankFrame|BenchmarkChannelBankQuery|BenchmarkChannelReplayCatchUp|BenchmarkFadingAdvance|BenchmarkModeSelection|BenchmarkCharismaFrame|BenchmarkObsOffFrame|BenchmarkScenarioRun|BenchmarkEngineSchedule$|BenchmarkEngineStepBatch|BenchmarkSimulatedSecondAllProtocols|BenchmarkIdleWakeCell' \
      . | tee "$raw"
    go test -run '^$' -count "${BENCH_COUNT:-5}" -benchmem -timeout 60m \
      -bench 'BenchmarkReplicationSetup' ./internal/core | tee -a "$raw"
    # Population-scaling family: B/station and ns/frame at 10⁴..10⁶.
    go test -run '^$' -count "${BENCH_COUNT:-5}" -benchmem -timeout 60m \
      -bench 'BenchmarkIdleCellPopulation' . | tee -a "$raw"
    # One representative panel per figure: the end-to-end workload shape.
    # A single iteration is already a full reduced-effort panel sweep;
    # three repeats give the snapshot a usable min/median instead of a
    # single noisy sample.
    go test -run '^$' -count 3 -benchtime 1x -benchmem -timeout 60m \
      -bench 'BenchmarkFig11a|BenchmarkFig12a|BenchmarkFig13a' . | tee -a "$raw"
    go run ./cmd/benchsnap -pr "$pr" -in "$raw" -out "$out" \
      -assert-zero-allocs "$ZERO_ALLOC" -assert-max-metric "$MAX_B_PER_STATION"
    ;;
  *)
    echo "usage: scripts/bench.sh [snapshot|smoke]" >&2
    exit 2
    ;;
esac
