package rng

import (
	"fmt"
	"hash/fnv"
	"testing"
	"testing/quick"
)

// refSeedFor is the original hash/fnv-based derivation, kept as the
// executable specification for the inlined FNV-1a path: derived seeds are
// load-bearing (they determine every sample path), so the allocation-free
// rewrite must reproduce them exactly.
func refSeedFor(base int64, labels ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	u := uint64(base)
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
	for _, l := range labels {
		h.Write([]byte{0x1f})
		h.Write([]byte(l))
	}
	return int64(h.Sum64())
}

func TestSeedForMatchesHashFNV(t *testing.T) {
	cases := [][]string{
		{},
		{"chan"},
		{"chan", "17"},
		{"mc-chan", "3", "141"},
		{"", ""},
		{"ab", "c"},
		{"a", "bc"},
	}
	for _, base := range []int64{0, 1, -1, 42, -1 << 62, 1<<63 - 1} {
		for _, labels := range cases {
			if got, want := SeedFor(base, labels...), refSeedFor(base, labels...); got != want {
				t.Fatalf("SeedFor(%d, %q) = %d, want %d", base, labels, got, want)
			}
		}
	}
	prop := func(base int64, a, b string) bool {
		return SeedFor(base, a, b) == refSeedFor(base, a, b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeedForIndexedMatchesSprint(t *testing.T) {
	for _, base := range []int64{0, 1, -7, 123456789} {
		for _, label := range []string{"chan", "voice", "mc-chan", "rep"} {
			for _, idx := range [][]int{{0}, {1}, {9}, {10}, {12345}, {-3}, {2, 141}, {0, 0}, {}} {
				labels := make([]string, len(idx))
				for k, i := range idx {
					labels[k] = fmt.Sprint(i)
				}
				want := SeedFor(base, append([]string{label}, labels...)...)
				if got := SeedForIndexed(base, label, idx...); got != want {
					t.Fatalf("SeedForIndexed(%d, %q, %v) = %d, want %d", base, label, idx, got, want)
				}
			}
		}
	}
}

func TestSeedDerivationAllocFree(t *testing.T) {
	if n := testing.AllocsPerRun(100, func() {
		seedSink += SeedForIndexed(42, "chan", 9731)
	}); n != 0 {
		t.Fatalf("SeedForIndexed allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		seedSink += SeedFor(42, "mac", "charisma")
	}); n != 0 {
		t.Fatalf("SeedFor allocates %v per call, want 0", n)
	}
}

func TestDeriveIndexedMatchesDerive(t *testing.T) {
	a := DeriveIndexed(7, "chan", 31)
	b := Derive(7, "chan", "31")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("DeriveIndexed stream diverged from Derive")
		}
	}
}

var seedSink int64
