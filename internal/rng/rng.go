// Package rng provides deterministic random substreams for the simulation.
//
// Every stochastic subsystem (each user's fading process, each traffic
// source, each protocol's contention coin flips) draws from its own stream,
// derived from the scenario seed plus a stable label. This gives two
// properties the evaluation methodology depends on:
//
//  1. Reproducibility: one scenario seed fully determines the run.
//  2. Common random numbers: all six protocols observe *identical* channel
//     and traffic sample paths for a given seed, so performance differences
//     in the figures come from protocol behaviour, not sampling noise —
//     mirroring the paper's "common simulation platform".
package rng

import (
	"math"
	"math/rand"
	"strconv"
)

// Stream is a deterministic random stream with the distribution helpers the
// models need. It wraps math/rand with an explicit private source.
type Stream struct {
	r *rand.Rand
}

// New returns a stream seeded with the given value.
func New(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed))}
}

// FNV-1a 64-bit, inlined so seed derivation is allocation-free (the
// hash.Hash64 returned by hash/fnv escapes to the heap on every call).
// The constants and update rule match hash/fnv exactly, so derived seeds
// are unchanged (pinned by TestSeedForMatchesHashFNV).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvSeedBase hashes the base seed's 8 little-endian bytes.
func fnvSeedBase(base int64) uint64 {
	h := uint64(fnvOffset64)
	u := uint64(base)
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(u>>(8*i)))) * fnvPrime64
	}
	return h
}

// fnvLabel appends one 0x1f-separated label (separator so ("ab","c") !=
// ("a","bc")).
func fnvLabel(h uint64, label string) uint64 {
	h = (h ^ 0x1f) * fnvPrime64
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * fnvPrime64
	}
	return h
}

// SeedFor derives a child seed from a base seed and a path of labels using
// FNV-1a. Identical (base, labels) always yields the same child seed.
func SeedFor(base int64, labels ...string) int64 {
	h := fnvSeedBase(base)
	for _, l := range labels {
		h = fnvLabel(h, l)
	}
	return int64(h)
}

// SeedForIndexed is SeedFor(base, label, fmt.Sprint(i0), fmt.Sprint(i1),
// ...) without the per-index string allocations: each index is rendered as
// its decimal digits into a stack buffer and hashed as a label. Hot
// construction paths (one derived stream per station of a 10⁴-user cell)
// use it; the derived seeds are identical to the formatted path.
func SeedForIndexed(base int64, label string, idx ...int) int64 {
	h := fnvSeedBase(base)
	h = fnvLabel(h, label)
	var buf [20]byte
	for _, i := range idx {
		d := strconv.AppendInt(buf[:0], int64(i), 10)
		h = (h ^ 0x1f) * fnvPrime64
		for _, b := range d {
			h = (h ^ uint64(b)) * fnvPrime64
		}
	}
	return int64(h)
}

// Reseed resets the stream to the state New(seed) would produce, reusing
// the existing source. Hot construction paths (one birth probe per station
// of a 10⁶-user cell) use it to avoid allocating a fresh stream per probe;
// Reseed(s) followed by any draw sequence matches New(s) exactly (pinned
// by TestReseedMatchesNew).
func (s *Stream) Reseed(seed int64) { s.r.Seed(seed) }

// Derive returns a new stream seeded from this stream's identity plus the
// labels. It does not consume randomness from the parent.
func Derive(base int64, labels ...string) *Stream {
	return New(SeedFor(base, labels...))
}

// DeriveIndexed returns a new stream seeded via SeedForIndexed — the
// allocation-free equivalent of Derive(base, label, fmt.Sprint(i)...).
func DeriveIndexed(base int64, label string, idx ...int) *Stream {
	return New(SeedForIndexed(base, label, idx...))
}

// Float64 returns a uniform sample in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Int63 returns a uniform sample in [0, 1<<63). Scenario generation uses
// it to draw child scenario seeds.
func (s *Stream) Int63() int64 { return s.r.Int63() }

// IntN returns a uniform sample in [0,n). n must be positive.
func (s *Stream) IntN(n int) int { return s.r.Intn(n) }

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Exp returns an exponentially distributed sample with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.r.ExpFloat64() * mean
}

// Normal returns a Gaussian sample with mean mu and standard deviation sigma.
func (s *Stream) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.r.NormFloat64()
}

// ComplexGaussian returns a circularly symmetric complex Gaussian sample
// with E[|g|^2] = 1 (each component has variance 1/2). The magnitude of the
// sample is Rayleigh distributed with E[c^2] = 1, matching the paper's
// normalization of the short-term fading component.
func (s *Stream) ComplexGaussian() (re, im float64) {
	const invSqrt2 = 1 / math.Sqrt2
	return s.r.NormFloat64() * invSqrt2, s.r.NormFloat64() * invSqrt2
}

// Rayleigh returns a Rayleigh-distributed amplitude with E[c^2] = 1.
func (s *Stream) Rayleigh() float64 {
	re, im := s.ComplexGaussian()
	return math.Hypot(re, im)
}

// ExpPositiveInt returns a positive integer whose mean is approximately
// `mean`, drawn by rounding an exponential sample up to at least 1. Used
// for the data burst length (exponential, mean 100 packets, and a burst is
// never empty).
func (s *Stream) ExpPositiveInt(mean float64) int {
	v := int(math.Round(s.Exp(mean)))
	if v < 1 {
		return 1
	}
	return v
}

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }
