// Package rng provides deterministic random substreams for the simulation.
//
// Every stochastic subsystem (each user's fading process, each traffic
// source, each protocol's contention coin flips) draws from its own stream,
// derived from the scenario seed plus a stable label. This gives two
// properties the evaluation methodology depends on:
//
//  1. Reproducibility: one scenario seed fully determines the run.
//  2. Common random numbers: all six protocols observe *identical* channel
//     and traffic sample paths for a given seed, so performance differences
//     in the figures come from protocol behaviour, not sampling noise —
//     mirroring the paper's "common simulation platform".
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Stream is a deterministic random stream with the distribution helpers the
// models need. It wraps math/rand with an explicit private source.
type Stream struct {
	r *rand.Rand
}

// New returns a stream seeded with the given value.
func New(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed))}
}

// SeedFor derives a child seed from a base seed and a path of labels using
// FNV-1a. Identical (base, labels) always yields the same child seed.
func SeedFor(base int64, labels ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	u := uint64(base)
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
	for _, l := range labels {
		h.Write([]byte{0x1f}) // separator so ("ab","c") != ("a","bc")
		h.Write([]byte(l))
	}
	return int64(h.Sum64())
}

// Derive returns a new stream seeded from this stream's identity plus the
// labels. It does not consume randomness from the parent.
func Derive(base int64, labels ...string) *Stream {
	return New(SeedFor(base, labels...))
}

// Float64 returns a uniform sample in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform sample in [0,n). n must be positive.
func (s *Stream) IntN(n int) int { return s.r.Intn(n) }

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Exp returns an exponentially distributed sample with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.r.ExpFloat64() * mean
}

// Normal returns a Gaussian sample with mean mu and standard deviation sigma.
func (s *Stream) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.r.NormFloat64()
}

// ComplexGaussian returns a circularly symmetric complex Gaussian sample
// with E[|g|^2] = 1 (each component has variance 1/2). The magnitude of the
// sample is Rayleigh distributed with E[c^2] = 1, matching the paper's
// normalization of the short-term fading component.
func (s *Stream) ComplexGaussian() (re, im float64) {
	const invSqrt2 = 1 / math.Sqrt2
	return s.r.NormFloat64() * invSqrt2, s.r.NormFloat64() * invSqrt2
}

// Rayleigh returns a Rayleigh-distributed amplitude with E[c^2] = 1.
func (s *Stream) Rayleigh() float64 {
	re, im := s.ComplexGaussian()
	return math.Hypot(re, im)
}

// ExpPositiveInt returns a positive integer whose mean is approximately
// `mean`, drawn by rounding an exponential sample up to at least 1. Used
// for the data burst length (exponential, mean 100 packets, and a burst is
// never empty).
func (s *Stream) ExpPositiveInt(mean float64) int {
	v := int(math.Round(s.Exp(mean)))
	if v < 1 {
		return 1
	}
	return v
}

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }
