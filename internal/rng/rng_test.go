package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("identical seeds diverged")
		}
	}
}

func TestSeedForStable(t *testing.T) {
	if SeedFor(1, "chan", "0") != SeedFor(1, "chan", "0") {
		t.Fatal("SeedFor not deterministic")
	}
	if SeedFor(1, "chan", "0") == SeedFor(1, "chan", "1") {
		t.Fatal("different labels produced identical seeds")
	}
	if SeedFor(1, "chan") == SeedFor(2, "chan") {
		t.Fatal("different base seeds produced identical child seeds")
	}
}

func TestSeedForSeparatorPreventsAmbiguity(t *testing.T) {
	if SeedFor(1, "ab", "c") == SeedFor(1, "a", "bc") {
		t.Fatal(`("ab","c") collided with ("a","bc")`)
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	a := Derive(7, "voice", "1")
	b := Derive(7, "voice", "2")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams suspiciously correlated: %d identical of 100", same)
	}
}

func TestExpMean(t *testing.T) {
	s := New(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(1.35)
	}
	mean := sum / n
	if math.Abs(mean-1.35) > 0.02 {
		t.Fatalf("Exp mean = %v, want 1.35", mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	s := New(1)
	if s.Exp(0) != 0 || s.Exp(-1) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(1)
	if s.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	if s.Bernoulli(-0.5) {
		t.Fatal("Bernoulli(<0) returned true")
	}
	if !s.Bernoulli(1.5) {
		t.Fatal("Bernoulli(>1) returned false")
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(3)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestComplexGaussianUnitPower(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		re, im := s.ComplexGaussian()
		sum += re*re + im*im
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("E[|g|^2] = %v, want 1 (paper's E[c_s^2]=1 normalization)", mean)
	}
}

func TestRayleighMoments(t *testing.T) {
	s := New(9)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		c := s.Rayleigh()
		sum += c
		sumSq += c * c
	}
	// E[c] = sqrt(pi)/2 for sigma^2 = 1/2 components.
	if mean := sum / n; math.Abs(mean-math.Sqrt(math.Pi)/2) > 0.01 {
		t.Fatalf("Rayleigh mean = %v, want %v", mean, math.Sqrt(math.Pi)/2)
	}
	if p := sumSq / n; math.Abs(p-1) > 0.02 {
		t.Fatalf("Rayleigh power = %v, want 1", p)
	}
}

func TestExpPositiveIntMeanAndFloor(t *testing.T) {
	s := New(11)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		v := s.ExpPositiveInt(100)
		if v < 1 {
			t.Fatal("ExpPositiveInt returned < 1")
		}
		sum += v
	}
	mean := float64(sum) / n
	// Rounding an Exp(100) to >=1 adds ~P(X<0.5) ~ 0.5% upward bias.
	if math.Abs(mean-100) > 2 {
		t.Fatalf("ExpPositiveInt mean = %v, want ~100 (Table 1 burst size)", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Normal(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.03 {
		t.Fatalf("Normal mean = %v, want 3", mean)
	}
	if v := sumSq/n - mean*mean; math.Abs(v-4) > 0.1 {
		t.Fatalf("Normal variance = %v, want 4", v)
	}
}

func TestIntNRange(t *testing.T) {
	s := New(17)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("IntN(7) covered only %d values", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		size := int(n%20) + 1
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReseedMatchesNew pins Reseed to fresh construction: a reseeded stream
// must emit exactly the sequence a new stream with that seed would. The
// lazy population path depends on this — it probes first wakes through one
// reusable stream reseeded per station instead of allocating a stream each.
func TestReseedMatchesNew(t *testing.T) {
	s := New(1)
	for _, seed := range []int64{7, 42, -3, 0, 1 << 40} {
		s.Float64() // desync so Reseed must do real work
		s.Reseed(seed)
		fresh := New(seed)
		for i := 0; i < 100; i++ {
			if got, want := s.Float64(), fresh.Float64(); got != want {
				t.Fatalf("seed %d draw %d: reseeded %v, fresh %v", seed, i, got, want)
			}
		}
	}
}
