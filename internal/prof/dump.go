package prof

import (
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
)

// This file is the single dump-on-exit path shared by the profiler and
// the flight recorder (internal/trace). Components that hold post-mortem
// state register a dump function with OnDump; DumpAll runs every
// registered function, and one process-wide SIGQUIT handler (installed by
// InstallDumpHandler, at most once) runs DumpAll plus the registered exit
// flushes before terminating. Centralizing the handler means profiles and
// recorder dumps compose instead of racing over signal.Notify: whichever
// subsystem initializes first, a single SIGQUIT produces every artifact.

var (
	dumpMu   sync.Mutex
	dumpSeq  int
	dumpFns  = map[int]namedDump{}
	exitFns  []func()
	sigOnce  sync.Once
	testHook func() // replaces os.Exit in tests; nil in production
)

type namedDump struct {
	name string
	fn   func(reason string)
}

// OnDump registers fn to run whenever DumpAll fires (SIGQUIT, a sweep
// anomaly, or an explicit call). name labels the artifact in the error
// path. The returned cancel function unregisters; it is safe to call
// more than once.
func OnDump(name string, fn func(reason string)) (cancel func()) {
	dumpMu.Lock()
	id := dumpSeq
	dumpSeq++
	dumpFns[id] = namedDump{name: name, fn: fn}
	dumpMu.Unlock()
	return func() {
		dumpMu.Lock()
		delete(dumpFns, id)
		dumpMu.Unlock()
	}
}

// onExit registers a flush to run only on the SIGQUIT exit path (after
// the dumps), e.g. ending an in-flight CPU profile. Unlike OnDump
// functions these are not safe to run mid-flight, so DumpAll never calls
// them.
func onExit(fn func()) {
	dumpMu.Lock()
	exitFns = append(exitFns, fn)
	dumpMu.Unlock()
}

// DumpAll runs every registered dump function with the given reason, in
// registration order. Safe to call from any goroutine at any time: dump
// functions are responsible for their own synchronization against the
// state they snapshot. A panicking dump function is contained so the
// remaining artifacts still get written.
func DumpAll(reason string) {
	dumpMu.Lock()
	ids := make([]int, 0, len(dumpFns))
	for id := range dumpFns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fns := make([]namedDump, 0, len(ids))
	for _, id := range ids {
		fns = append(fns, dumpFns[id])
	}
	dumpMu.Unlock()
	for _, d := range fns {
		func() {
			defer func() {
				if r := recover(); r != nil {
					fmt.Fprintf(os.Stderr, "prof: dump %q panicked: %v\n", d.name, r)
				}
			}()
			d.fn(reason)
		}()
	}
}

// InstallDumpHandler installs the process-wide SIGQUIT handler (once; later
// calls are no-ops). On SIGQUIT it runs DumpAll("sigquit"), flushes the
// exit-path registrations (profile stops), and exits with status 2.
// Catching the signal forfeits the Go runtime's default goroutine dump —
// the traded-for artifacts are the flight-recorder JSONL and completed
// profiles.
func InstallDumpHandler() {
	sigOnce.Do(func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGQUIT)
		go func() {
			for range ch {
				DumpAll("sigquit")
				dumpMu.Lock()
				flushes := append([]func(){}, exitFns...)
				hook := testHook
				dumpMu.Unlock()
				for _, fn := range flushes {
					fn()
				}
				if hook != nil {
					hook()
					continue
				}
				os.Exit(2)
			}
		}()
	})
}
