// Package prof wires -cpuprofile/-memprofile support into the CLI
// binaries, so perf work can profile the real panel workloads (full
// figure sweeps, multicell deployments) instead of only microbenchmarks.
//
// Usage in a main:
//
//	stop, err := prof.Start(*cpuprofile, *memprofile)
//	if err != nil { ... }
//	defer stop()
//
// Mains that exit through os.Exit must call stop explicitly on that path,
// since deferred calls do not run.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins CPU profiling into cpuPath (when non-empty) and arms a heap
// snapshot into memPath (when non-empty). The returned stop function is
// idempotent: it ends the CPU profile and writes the heap profile after a
// final GC, reporting any write error to stderr (profiles are diagnostics;
// they must never change the exit status of a successful run).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	var once sync.Once
	stop = func() {
		once.Do(func() { flush(cpuFile, memPath) })
	}
	// A SIGQUIT mid-run still produces complete profiles: the shared dump
	// handler flushes them on its exit path, after the flight-recorder
	// dumps (see dump.go).
	InstallDumpHandler()
	onExit(stop)
	return stop, nil
}

// flush ends the CPU profile and writes the heap snapshot; called exactly
// once per Start (via the stop closure's sync.Once).
func flush(cpuFile *os.File, memPath string) {
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "prof: close cpu profile:", err)
		}
	}
	if memPath == "" {
		return
	}
	f, err := os.Create(memPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prof:", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize the final live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "prof: write heap profile:", err)
	}
}
