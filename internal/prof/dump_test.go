package prof

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestOnDumpCancelAndOrder(t *testing.T) {
	var got []string
	c1 := OnDump("first", func(reason string) { got = append(got, "first:"+reason) })
	c2 := OnDump("second", func(reason string) { got = append(got, "second:"+reason) })
	defer c2()
	c1()
	c1() // cancel is idempotent
	DumpAll("why")
	if len(got) != 1 || got[0] != "second:why" {
		t.Fatalf("dumps ran %v, want only second:why", got)
	}
}

func TestDumpAllContainsPanics(t *testing.T) {
	ran := false
	c1 := OnDump("boom", func(string) { panic("boom") })
	c2 := OnDump("after", func(string) { ran = true })
	defer c1()
	defer c2()
	DumpAll("x") // must not propagate the panic
	if !ran {
		t.Fatal("a panicking dump prevented later dumps from running")
	}
}

// TestSIGQUITHandlerDumpsAndFlushes raises SIGQUIT against the test
// process with the exit replaced by a test hook: the handler must run
// the registered dumps with reason "sigquit", then the exit-path
// flushes, then the hook (instead of os.Exit).
func TestSIGQUITHandlerDumpsAndFlushes(t *testing.T) {
	dumped := make(chan string, 1)
	flushed := make(chan struct{}, 1)
	exited := make(chan struct{}, 1)

	cancel := OnDump("test", func(reason string) { dumped <- reason })
	defer cancel()
	dumpMu.Lock()
	exitFns = append(exitFns, func() {
		select {
		case flushed <- struct{}{}:
		default:
		}
	})
	testHook = func() {
		select {
		case exited <- struct{}{}:
		default:
		}
	}
	dumpMu.Unlock()
	defer func() {
		dumpMu.Lock()
		testHook = nil
		dumpMu.Unlock()
	}()

	InstallDumpHandler()
	if err := syscall.Kill(os.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}

	wait := func(name string, ok func() bool) {
		deadline := time.After(5 * time.Second)
		for !ok() {
			select {
			case <-deadline:
				t.Fatalf("SIGQUIT handler never reached %s", name)
			case <-time.After(time.Millisecond):
			}
		}
	}
	var reason string
	wait("dump", func() bool {
		select {
		case reason = <-dumped:
			return true
		default:
			return false
		}
	})
	if reason != "sigquit" {
		t.Fatalf("dump reason %q, want sigquit", reason)
	}
	wait("flush", func() bool {
		select {
		case <-flushed:
			return true
		default:
			return false
		}
	})
	wait("exit hook", func() bool {
		select {
		case <-exited:
			return true
		default:
			return false
		}
	})
}

func TestStartStopIdempotent(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // second call must be a no-op, not a double-flush
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartRejectsBadPath(t *testing.T) {
	_, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), "")
	if err == nil || !strings.Contains(err.Error(), "cpu") {
		t.Fatalf("Start with unwritable cpu path: err = %v", err)
	}
}
