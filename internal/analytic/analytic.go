// Package analytic provides closed-form and quadrature models that
// cross-check the simulator: voice source statistics, slotted contention
// success probabilities, the adaptive PHY's mode distribution under
// Rayleigh and composite Rayleigh/log-normal fading, mean-rate capacity
// bounds for the TDMA cell, and the fixed encoder's residual error floor.
//
// These are the sanity anchors behind the calibration tests and the
// EXPERIMENTS.md "why the shape holds" arguments: a simulated number that
// drifts away from its analytic counterpart flags a regression in the
// models rather than a protocol effect.
package analytic

import (
	"math"

	"charisma/internal/phy"
	"charisma/internal/traffic"
)

// VoiceActivityFactor returns the stationary talkspurt probability
// t̄t/(t̄t+t̄s) of the two-state voice model.
func VoiceActivityFactor(p traffic.VoiceParams) float64 {
	return p.ActivityFactor()
}

// VoicePacketRatePerUser returns the long-run speech packet rate of one
// voice user in packets per second (one packet per 20 ms while talking).
func VoicePacketRatePerUser(p traffic.VoiceParams) float64 {
	perSecondTalking := 1 / p.Period.Seconds()
	return perSecondTalking * p.ActivityFactor()
}

// VoiceSlotDemandPerFrame returns the expected η=1 slot-equivalents of
// voice traffic per frame for nv users: nv · activity / periodFrames.
func VoiceSlotDemandPerFrame(nv int, p traffic.VoiceParams, frameSec float64) float64 {
	return float64(nv) * p.ActivityFactor() * frameSec / p.Period.Seconds()
}

// SlottedContentionSuccess returns the probability that a contention
// minislot with k permission-p contenders carries exactly one transmission
// (§2's collision model: no capture).
func SlottedContentionSuccess(k int, p float64) float64 {
	if k <= 0 || p <= 0 {
		return 0
	}
	return float64(k) * p * math.Pow(1-p, float64(k-1))
}

// OptimalPermission returns the permission probability maximizing the
// one-winner probability for k contenders (p* = 1/k).
func OptimalPermission(k int) float64 {
	if k <= 1 {
		return 1
	}
	return 1 / float64(k)
}

// ContentionCollapseLoad returns the contender count beyond which the
// per-minislot success probability falls below target for permission p —
// the thrashing onset the paper's request-mechanism discussion describes.
func ContentionCollapseLoad(p, target float64) int {
	for k := 1; k < 100000; k++ {
		if SlottedContentionSuccess(k, p) < target && k > int(1/p) {
			return k
		}
	}
	return math.MaxInt32
}

// ModeDistributionRayleigh returns the stationary probability of each
// adaptive mode (index aligned with modes; an extra leading outage mass is
// returned separately) under unit-mean Rayleigh fading at linear mean SNR.
func ModeDistributionRayleigh(a *phy.Adaptive) (outage float64, probs []float64) {
	modes := a.Modes()
	tail := func(th float64) float64 { return math.Exp(-th / a.MeanSNR()) }
	outage = 1 - tail(modes[0].SNRThreshold)
	probs = make([]float64, len(modes))
	for i := range modes {
		hi := 0.0
		if i+1 < len(modes) {
			hi = tail(modes[i+1].SNRThreshold)
		}
		probs[i] = tail(modes[i].SNRThreshold) - hi
	}
	return outage, probs
}

// MeanThroughputRayleigh returns E[η] under Rayleigh fading — the §3.5
// "twice the average offered throughput" calibration quantity.
func MeanThroughputRayleigh(a *phy.Adaptive) float64 {
	return a.MeanThroughputRayleigh()
}

// MeanThroughputComposite returns E[η] under composite Rayleigh ×
// log-normal shadowing fading, integrating the Rayleigh result over the
// shadow distribution by Gauss–Hermite-style quadrature on a uniform grid.
func MeanThroughputComposite(a *phy.Adaptive, shadowSigmaDB float64) float64 {
	if shadowSigmaDB <= 0 {
		return a.MeanThroughputRayleigh()
	}
	modes := a.Modes()
	mean := 0.0
	norm := 0.0
	const steps = 400
	for i := 0; i < steps; i++ {
		// Shadow amplitude in dB: N(0, sigma); integrate ±4 sigma.
		x := -4 + 8*(float64(i)+0.5)/steps
		w := math.Exp(-x * x / 2)
		shadowAmp := math.Pow(10, x*shadowSigmaDB/20)
		gain := shadowAmp * shadowAmp
		tail := func(th float64) float64 { return math.Exp(-th / (a.MeanSNR() * gain)) }
		local := 0.0
		for j, m := range modes {
			p := tail(m.SNRThreshold)
			if j+1 < len(modes) {
				p -= tail(modes[j+1].SNRThreshold)
			}
			local += m.Eta * p
		}
		mean += w * local
		norm += w
	}
	return mean / norm
}

// MeanSymbolsPerPacketRayleigh returns the expected air time of one packet
// under blind (D-TDMA/VR style) link adaptation: E[ceil(160/η)] over the
// non-outage mode distribution, with outage transmissions pinned to the
// most robust mode.
func MeanSymbolsPerPacketRayleigh(a *phy.Adaptive) float64 {
	outage, probs := ModeDistributionRayleigh(a)
	modes := a.Modes()
	mean := outage * float64(modes[0].SymbolsPerPacket)
	for i, m := range modes {
		mean += probs[i] * float64(m.SymbolsPerPacket)
	}
	return mean
}

// VoiceCapacityMeanRate returns the mean-rate voice capacity bound of a
// cell: the population at which expected voice demand equals the
// information subframe, for the given expected symbols per packet. Real
// protocols cross the 1% QoS threshold below this bound (contention
// overheads, deadline lumps), so it upper-bounds the Fig. 11 crossings.
func VoiceCapacityMeanRate(infoSymbolsPerFrame int, symbolsPerPacket float64, vp traffic.VoiceParams, frameSec float64) float64 {
	perUserSymbols := vp.ActivityFactor() * frameSec / vp.Period.Seconds() * symbolsPerPacket
	return float64(infoSymbolsPerFrame) / perUserSymbols
}

// FixedErrorFloorRayleigh returns the average packet error probability of
// the fixed encoder under Rayleigh fading — the low-load transmission-error
// floor visible at the left edge of Fig. 11 for the classical protocols.
func FixedErrorFloorRayleigh(f *phy.Fixed) float64 {
	m := f.Modes()[0]
	meanSNR := f.MeanSNR()
	const steps = 20000
	floor := 0.0
	for i := 0; i < steps; i++ {
		snr := (float64(i) + 0.5) / steps * meanSNR * 8
		pdf := math.Exp(-snr/meanSNR) / meanSNR
		amp := math.Sqrt(snr / meanSNR)
		floor += f.PacketErrorProb(m, amp) * pdf * meanSNR * 8 / steps
	}
	return floor
}

// DataOfferedPerFrame returns the offered data load of nd users in packets
// per frame.
func DataOfferedPerFrame(nd int, p traffic.DataParams, frameSec float64) float64 {
	return float64(nd) * p.OfferedPacketsPerSecond() * frameSec
}
