package analytic

import (
	"math"
	"testing"

	"charisma/internal/core"
	"charisma/internal/frame"
	"charisma/internal/phy"
	"charisma/internal/traffic"
)

func TestVoiceActivityFactor(t *testing.T) {
	if got := VoiceActivityFactor(traffic.DefaultVoiceParams()); math.Abs(got-1/2.35) > 1e-12 {
		t.Fatalf("activity = %v", got)
	}
}

func TestVoicePacketRate(t *testing.T) {
	got := VoicePacketRatePerUser(traffic.DefaultVoiceParams())
	want := 50.0 / 2.35
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("rate = %v, want %v", got, want)
	}
}

func TestVoiceSlotDemand(t *testing.T) {
	// 80 users: 80 * 0.4255 / 8 frames = 4.26 slot-equivalents per frame.
	got := VoiceSlotDemandPerFrame(80, traffic.DefaultVoiceParams(), 0.0025)
	if math.Abs(got-80.0/2.35/8) > 1e-9 {
		t.Fatalf("demand = %v", got)
	}
}

func TestSlottedContentionSuccess(t *testing.T) {
	if got := SlottedContentionSuccess(1, 0.1); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("s(1, 0.1) = %v", got)
	}
	// k=2, p=0.5: 2*0.5*0.5 = 0.5.
	if got := SlottedContentionSuccess(2, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("s(2, 0.5) = %v", got)
	}
	if SlottedContentionSuccess(0, 0.5) != 0 || SlottedContentionSuccess(5, 0) != 0 {
		t.Fatal("degenerate cases wrong")
	}
}

func TestOptimalPermissionMaximizes(t *testing.T) {
	for _, k := range []int{2, 5, 20} {
		p := OptimalPermission(k)
		best := SlottedContentionSuccess(k, p)
		for _, dp := range []float64{-0.02, 0.02} {
			if s := SlottedContentionSuccess(k, p+dp); s > best+1e-9 {
				t.Fatalf("k=%d: p=%v not optimal (%v beats %v)", k, p, s, best)
			}
		}
	}
	if OptimalPermission(1) != 1 {
		t.Fatal("single contender should always transmit")
	}
}

func TestContentionCollapseLoadMonotone(t *testing.T) {
	// Lower permission probability tolerates more contenders.
	hi := ContentionCollapseLoad(0.3, 0.05)
	lo := ContentionCollapseLoad(0.05, 0.05)
	if lo <= hi {
		t.Fatalf("collapse load %d (p=0.05) not beyond %d (p=0.3)", lo, hi)
	}
}

func TestModeDistributionSumsToOne(t *testing.T) {
	a := phy.NewAdaptive(phy.DefaultParams())
	outage, probs := ModeDistributionRayleigh(a)
	sum := outage
	for _, p := range probs {
		if p < 0 {
			t.Fatalf("negative mode probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mode distribution sums to %v", sum)
	}
	if outage > 0.05 {
		t.Fatalf("outage probability %v unexpectedly high at default SNR", outage)
	}
}

func TestMeanThroughputMatchesPHY(t *testing.T) {
	a := phy.NewAdaptive(phy.DefaultParams())
	if got, want := MeanThroughputRayleigh(a), a.MeanThroughputRayleigh(); got != want {
		t.Fatalf("%v != %v", got, want)
	}
}

func TestCompositeThroughputNearRayleigh(t *testing.T) {
	a := phy.NewAdaptive(phy.DefaultParams())
	ray := MeanThroughputRayleigh(a)
	comp := MeanThroughputComposite(a, 4)
	// Shadowing spreads the SNR but the mean stays in the same ballpark.
	if math.Abs(comp-ray) > 0.5 {
		t.Fatalf("composite E[eta] = %v vs Rayleigh %v", comp, ray)
	}
	if MeanThroughputComposite(a, 0) != ray {
		t.Fatal("zero shadowing should reduce to Rayleigh")
	}
}

func TestMeanSymbolsPerPacketBetweenExtremes(t *testing.T) {
	a := phy.NewAdaptive(phy.DefaultParams())
	got := MeanSymbolsPerPacketRayleigh(a)
	if got <= 32 || got >= 320 {
		t.Fatalf("E[symbols/packet] = %v out of (32, 320)", got)
	}
	// The adaptive PHY averages well under the fixed 160: that IS the
	// capacity story of D-TDMA/VR vs /FR.
	if got >= 160 {
		t.Fatalf("E[symbols/packet] = %v not below the fixed 160", got)
	}
}

func TestVoiceCapacityBoundsOrdering(t *testing.T) {
	g := frame.Default()
	vp := traffic.DefaultVoiceParams()
	a := phy.NewAdaptive(phy.DefaultParams())
	frameSec := g.Duration().Seconds()
	fixed := VoiceCapacityMeanRate(g.CharismaInfoSymbols(), 160, vp, frameSec)
	adaptive := VoiceCapacityMeanRate(g.CharismaInfoSymbols(), MeanSymbolsPerPacketRayleigh(a), vp, frameSec)
	// Fixed-rate mean bound ≈ 75; the adaptive PHY raises it.
	if math.Abs(fixed-4*8*2.35) > 1 {
		t.Fatalf("fixed-rate capacity bound = %v, want ≈ %v", fixed, 4*8*2.35)
	}
	if adaptive <= fixed*1.2 {
		t.Fatalf("adaptive bound %v not clearly above fixed %v", adaptive, fixed)
	}
}

// The analytic mean-rate bound must upper-bound the simulated Fig. 11
// crossing for the fixed-rate protocol.
func TestMeanRateBoundUpperBoundsSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := frame.Default()
	vp := traffic.DefaultVoiceParams()
	bound := VoiceCapacityMeanRate(g.DTDMAInfoSlots*g.InfoSlotSymbols, 160, vp, g.Duration().Seconds())
	sc := core.DefaultScenario(core.ProtoDTDMAFR)
	sc.NumVoice = int(bound * 1.15) // clearly past the bound
	sc.WarmupSec, sc.DurationSec = 1, 6
	r, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.VoiceLossRate < 0.01 {
		t.Fatalf("simulation under 1%% loss at 115%% of the mean-rate bound (%v users) — bound broken", sc.NumVoice)
	}
}

func TestFixedErrorFloor(t *testing.T) {
	f := phy.NewFixed(phy.DefaultParams())
	floor := FixedErrorFloorRayleigh(f)
	if floor < 0.001 || floor > 0.01 {
		t.Fatalf("fixed error floor = %v, want in [0.1%%, 1%%] (Fig. 11 low-load losses)", floor)
	}
}

func TestDataOfferedPerFrame(t *testing.T) {
	// 20 users x 100 pkt/s x 2.5 ms = 5 packets/frame.
	got := DataOfferedPerFrame(20, traffic.DefaultDataParams(), 0.0025)
	if math.Abs(got-5) > 1e-9 {
		t.Fatalf("offered = %v, want 5", got)
	}
}
