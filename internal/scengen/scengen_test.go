package scengen

import (
	"bytes"
	"reflect"
	"testing"

	"charisma/internal/grid"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Count: 30, MaxCells: 3}
	a := Generate(cfg)
	b := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config generated different corpora")
	}
}

func TestGenerateExtendsWithoutDisturbing(t *testing.T) {
	short := Generate(Config{Seed: 7, Count: 10, MaxCells: 3})
	long := Generate(Config{Seed: 7, Count: 25, MaxCells: 3})
	if !reflect.DeepEqual(short, long[:10]) {
		t.Fatal("growing Count disturbed existing corpus entries")
	}
	for i := range short {
		if got := One(Config{Seed: 7, Count: 25, MaxCells: 3}, i); !reflect.DeepEqual(got, short[i]) {
			t.Fatalf("One(%d) disagrees with Generate", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(Config{Seed: 1, Count: 5})
	b := Generate(Config{Seed: 2, Count: 5})
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds generated identical corpora")
	}
}

func TestGeneratedCorpusLoadsAndValidates(t *testing.T) {
	// Every generated entry must survive the scenario-file round trip:
	// write → strict load → identical content hashes.
	pts := Generate(Config{Seed: 99, Count: 40, MaxCells: 4})
	var buf bytes.Buffer
	if err := grid.WriteScenarioFile(&buf, pts); err != nil {
		t.Fatal(err)
	}
	loaded, err := grid.LoadScenarioFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(pts) {
		t.Fatalf("wrote %d entries, loaded %d", len(pts), len(loaded))
	}
	multicells := 0
	for i := range pts {
		h1, err := pts[i].Spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		h2, err := loaded[i].Spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Errorf("entry %d: hash drifted through write→load", i)
		}
		if pts[i].Spec.Kind == grid.KindMulticell {
			multicells++
		}
	}
	if multicells == 0 {
		t.Error("corpus of 40 with MaxCells=4 generated no multi-cell entries")
	}
}
