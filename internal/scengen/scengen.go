// Package scengen generates randomized-but-reproducible scenario corpora:
// populations, speed mixes, voice/data traffic blends and cell counts far
// outside the paper's hand-written operating points, for the invariant
// harness and the sweep grid to chew through.
//
// Every corpus entry i draws from its own substream,
// rng.DeriveIndexed(cfg.Seed, "scengen", i), so entry i depends only on
// (Seed, i): regenerating a corpus reproduces it byte-for-byte, and
// growing Count extends a corpus without disturbing existing entries.
package scengen

import (
	"charisma/internal/channel"
	"charisma/internal/core"
	"charisma/internal/grid"
	"charisma/internal/multicell"
	"charisma/internal/rng"
)

// Config bounds the generator's draws. The zero value (plus a Count) is a
// usable single-cell corpus.
type Config struct {
	// Seed roots every substream.
	Seed int64
	// Count is the number of corpus entries to generate.
	Count int
	// MaxVoice and MaxData cap the per-entry station populations
	// (defaults 40 and 12; entries draw uniformly from [0, max]).
	MaxVoice int
	MaxData  int
	// MaxCells enables multi-cell entries when ≥ 2: a MulticellFrac
	// fraction of entries become deployments with 2..MaxCells cells.
	MaxCells int
	// MulticellFrac is the probability an entry is a deployment
	// (default 0.2 when MaxCells ≥ 2; ignored otherwise).
	MulticellFrac float64
	// MinDurationSec and MaxDurationSec bracket the measured window
	// (defaults 0.5 and 1.5 — corpus entries are smoke-sized).
	MinDurationSec float64
	MaxDurationSec float64
	// Protocols restricts the protocol pool (default: all six).
	Protocols []string
}

func (c Config) withDefaults() Config {
	if c.MaxVoice == 0 {
		c.MaxVoice = 40
	}
	if c.MaxData == 0 {
		c.MaxData = 12
	}
	if c.MaxCells >= 2 && c.MulticellFrac == 0 {
		c.MulticellFrac = 0.2
	}
	if c.MinDurationSec <= 0 {
		c.MinDurationSec = 0.5
	}
	if c.MaxDurationSec < c.MinDurationSec {
		c.MaxDurationSec = c.MinDurationSec + 1
	}
	if len(c.Protocols) == 0 {
		c.Protocols = core.Protocols()
	}
	return c
}

// speedGrid is the common-speed pool (km/h), spanning pedestrian to
// vehicular Doppler classes.
var speedGrid = []float64{5, 10, 30, 50, 80, 120}

// Generate produces the corpus as sweep points ready for the grid (or
// for grid.WriteScenarioFile).
func Generate(cfg Config) []grid.Point {
	cfg = cfg.withDefaults()
	pts := make([]grid.Point, cfg.Count)
	for i := range pts {
		pts[i] = One(cfg, i)
	}
	return pts
}

// One generates corpus entry i. It re-derives the entry's substream from
// scratch, so One(cfg, i) equals Generate(cfg)[i] for any Count > i.
func One(cfg Config, i int) grid.Point {
	cfg = cfg.withDefaults()
	s := rng.DeriveIndexed(cfg.Seed, "scengen", i)
	dur := cfg.MinDurationSec + s.Float64()*(cfg.MaxDurationSec-cfg.MinDurationSec)
	reps := 1 + s.IntN(2)
	if cfg.MaxCells >= 2 && s.Bernoulli(cfg.MulticellFrac) {
		return grid.Point{Spec: grid.MulticellSpec(deployment(cfg, s, dur)), Replications: reps}
	}
	return grid.Point{Spec: grid.ScenarioSpec(cell(cfg, s, dur)), Replications: reps}
}

// cell draws one single-cell scenario: protocol, traffic blend, queueing,
// child seed, duration and one of three speed treatments (common default,
// common drawn speed, per-station mix).
func cell(cfg Config, s *rng.Stream, dur float64) core.Scenario {
	sc := core.Scenario{
		Protocol:    cfg.Protocols[s.IntN(len(cfg.Protocols))],
		NumVoice:    s.IntN(cfg.MaxVoice + 1),
		NumData:     s.IntN(cfg.MaxData + 1),
		UseQueue:    s.Bernoulli(0.5),
		Seed:        s.Int63(),
		WarmupSec:   0.25,
		DurationSec: dur,
		Channel:     channel.DefaultParams(),
	}
	if sc.NumVoice+sc.NumData == 0 {
		sc.NumVoice = 1
	}
	switch s.IntN(3) {
	case 0: // common drawn speed; Doppler re-derives from it
		sc.Channel.SpeedKmh = speedGrid[s.IntN(len(speedGrid))]
		sc.Channel.DopplerHz = 0
	case 1: // per-station speed mix (§5.3.3 path)
		n := sc.NumVoice + sc.NumData
		speeds := make([]float64, n)
		for j := range speeds {
			speeds[j] = 1 + s.Float64()*119
		}
		sc.SpeedsKmh = speeds
	}
	return sc
}

// deployment draws one multi-cell deployment; RMAV is excluded (its
// variable frames cannot be cell-synchronized).
func deployment(cfg Config, s *rng.Stream, dur float64) multicell.Params {
	protos := make([]string, 0, len(cfg.Protocols))
	for _, p := range cfg.Protocols {
		if p != core.ProtoRMAV {
			protos = append(protos, p)
		}
	}
	if len(protos) == 0 {
		protos = []string{core.ProtoCharisma}
	}
	p := multicell.DefaultParams()
	p.Cells = 2 + s.IntN(cfg.MaxCells-1)
	p.Protocol = protos[s.IntN(len(protos))]
	p.NumVoice = s.IntN(cfg.MaxVoice + 1)
	p.NumData = s.IntN(cfg.MaxData + 1)
	if p.NumVoice+p.NumData == 0 {
		p.NumVoice = 1
	}
	p.UseQueue = s.Bernoulli(0.5)
	p.Seed = s.Int63()
	p.Workers = 1
	p.WarmupSec, p.DurationSec = 0.25, dur
	return p
}
