package chaos

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"charisma/internal/core"
	"charisma/internal/grid"
	"charisma/internal/run"
)

func e2eScenarios() []core.Scenario {
	var scs []core.Scenario
	for _, nd := range []int{0, 4} {
		sc := core.DefaultScenario(core.ProtoCharisma)
		sc.NumVoice, sc.NumData = 8, nd
		sc.Seed = 7
		sc.WarmupSec, sc.DurationSec = 0.3, 1.0
		scs = append(scs, sc)
	}
	return scs
}

// TestInjectCacheFaultsDetectedByGrid: every entry the injector perturbs
// must be caught by the disk cache's integrity check — detected,
// quarantined, recomputed; never served.
func TestInjectCacheFaultsDetectedByGrid(t *testing.T) {
	dir := t.TempDir()
	c := grid.NewDiskCache(dir, nil)
	var keys []string
	for i := int64(0); i < 4; i++ {
		key := grid.RepKey("deadbeef", i)
		keys = append(keys, key)
		r, err := grid.ScenarioSpec(e2eScenarios()[0]).RunRep(int(i))
		if err != nil {
			t.Fatal(err)
		}
		c.Put(key, r)
	}
	p := NewPlan(3, Rates{CacheFlip: 1})
	cf, err := p.InjectCacheFaults(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Entries != 4 || cf.Flipped != 4 {
		t.Fatalf("injector touched %+v, want all 4 flipped", cf)
	}
	for _, key := range keys {
		if _, ok := c.Get(key); ok {
			t.Fatalf("perturbed entry %s served as a hit", key)
		}
	}
	if n := c.Stats().DiskCorrupt; n != 4 {
		t.Fatalf("DiskCorrupt = %d, want 4", n)
	}
}

// TestChaoticSweepByteIdentical is the chaos acceptance gate in-process:
// a sweep over real HTTP with one worker injecting wire faults on every
// class and one worker lying on every result must still finish — via
// backoff, retries, lease re-queueing, and the byzantine audit — with
// results byte-identical to the in-process runner, and with the liar
// quarantined.
func TestChaoticSweepByteIdentical(t *testing.T) {
	const reps = 2
	ctx := context.Background()
	scs := e2eScenarios()
	want, err := run.Runner{}.Run(ctx, run.NewPlan(scs, reps))
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]grid.Point, len(scs))
	for i, sc := range scs {
		pts[i] = grid.Point{Spec: grid.ScenarioSpec(sc), Replications: reps}
	}
	sess, err := grid.NewSession(pts, nil, grid.Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sess.EnableAudit(grid.Audit{Frac: 1, Seed: 9, Workers: 2})
	sv := grid.NewServer()
	sv.LeaseTTL = 250 * time.Millisecond
	sv.Attach(sess)
	hs := httptest.NewServer(sv)
	defer hs.Close()

	flaky := NewPlan(42, Rates{Drop: 0.1, Dup: 0.1, Trunc: 0.1, Err500: 0.05, Err503: 0.05, Delay: 0.2, DelayMax: 5 * time.Millisecond})
	liar := NewPlan(43, Rates{Lie: 1})

	// The liar claims and completes one task up front — before the honest
	// fleet can drain the queue — so the byzantine path fires on every
	// run instead of racing for a claim.
	tk, ok, _ := sess.TryClaim("liar", time.Minute)
	if !ok {
		t.Fatal("liar got no task")
	}
	res, err := tk.Spec.RunRep(tk.Rep)
	if err != nil {
		t.Fatal(err)
	}
	liar.CorruptResult(tk.Point, tk.Rep, &res)
	if err := sess.Complete(grid.TaskResult{Point: tk.Point, Rep: tk.Rep, Lease: tk.Lease, Result: res}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := func(w grid.Worker) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker errors are tolerated here: a chaotic worker may idle
			// out or trip a fault mid-claim; the sweep must finish anyway.
			_ = w.Run(ctx)
		}()
	}
	start(grid.Worker{
		Coordinator: hs.URL, ID: "flaky", Parallel: 2, Poll: 5 * time.Millisecond,
		Client: &http.Client{Timeout: 5 * time.Second, Transport: flaky.Transport(nil)},
	})
	// A lying worker over the wire as well — it may or may not win a
	// claim against the honest fleet, but if it does, the audit catches
	// it; the up-front lie above guarantees at least one quarantine.
	start(grid.Worker{
		Coordinator: hs.URL, ID: "wire-liar", Parallel: 1, Poll: 5 * time.Millisecond,
		CorruptResult: liar.CorruptResult,
	})
	// One honest worker guarantees progress even while chaos rages.
	start(grid.Worker{Coordinator: hs.URL, ID: "honest", Parallel: 2, Poll: 5 * time.Millisecond})

	if err := sess.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sv.Close()
	wg.Wait()

	if sess.Quarantines() < 1 {
		t.Fatal("the lying worker was never quarantined")
	}
	got, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("chaotic sweep differs from in-process runner")
	}
}
