// Package chaos is the deterministic fault-injection harness for the
// sweep grid: a seeded Plan decides — reproducibly — which wire
// requests are dropped, delayed, duplicated, truncated, or answered
// with synthetic 5xx, which results a lying worker corrupts before
// posting, and which on-disk cache entries are bit-flipped, truncated,
// or made unreadable.
//
// Every fault class draws from its own rng substream derived from the
// plan seed (rng.Derive(seed, "chaos", class)), so the k-th coin flip
// of one class is fixed by the seed alone: raising the drop rate never
// reshuffles which requests get duplicated, and a failing chaos run
// replays exactly from its seed. (Which *goroutine's* request consumes
// the k-th flip still depends on scheduling — the schedule of faults is
// deterministic, their assignment under concurrency is not.)
//
// The package sits strictly above internal/grid: grid exposes neutral
// hooks (Worker.Client, Worker.CorruptResult, DiskCache.EntryPath) and
// knows nothing about chaos. Production binaries arm it only behind
// explicit -chaos-seed / -chaos-rates flags.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"charisma/internal/mac"
	"charisma/internal/rng"
)

// Rates holds the per-fault-class injection probabilities (each in
// [0, 1], applied independently per opportunity). The zero value
// injects nothing.
type Rates struct {
	// Wire faults, applied per outgoing HTTP request.
	Drop   float64 // request vanishes: transport error, nothing forwarded
	Delay  float64 // request held for a random slice of DelayMax first
	Dup    float64 // request sent twice; the first response is discarded
	Trunc  float64 // response body cut to half its length
	Err500 float64 // synthetic 500, request never forwarded
	Err503 float64 // synthetic 503, request never forwarded

	// Lie corrupts a computed result just before it is posted — the
	// byzantine worker. The corruption is plausible (inflated
	// throughput, hidden loss), not garbage: exactly what the
	// coordinator's audit must catch by re-execution.
	Lie float64

	// Cache faults, applied per entry by InjectCacheFaults.
	CacheFlip  float64 // one byte XORed — silent corruption for the CRC to catch
	CacheTrunc float64 // entry truncated to half its length
	CacheDeny  float64 // entry chmod 000 (no-op for root/CAP_DAC_OVERRIDE readers)

	// DelayMax bounds an injected delay (default 25ms when Delay > 0).
	DelayMax time.Duration
}

// rateKeys maps -chaos-rates keys to Rates fields, in documentation
// order.
var rateKeys = []struct {
	key string
	set func(*Rates, float64)
}{
	{"drop", func(r *Rates, v float64) { r.Drop = v }},
	{"delay", func(r *Rates, v float64) { r.Delay = v }},
	{"dup", func(r *Rates, v float64) { r.Dup = v }},
	{"trunc", func(r *Rates, v float64) { r.Trunc = v }},
	{"err500", func(r *Rates, v float64) { r.Err500 = v }},
	{"err503", func(r *Rates, v float64) { r.Err503 = v }},
	{"lie", func(r *Rates, v float64) { r.Lie = v }},
	{"cacheflip", func(r *Rates, v float64) { r.CacheFlip = v }},
	{"cachetrunc", func(r *Rates, v float64) { r.CacheTrunc = v }},
	{"cachedeny", func(r *Rates, v float64) { r.CacheDeny = v }},
	{"delayms", func(r *Rates, v float64) { r.DelayMax = time.Duration(v * float64(time.Millisecond)) }},
}

// ParseRates parses the -chaos-rates flag syntax: comma-separated
// key=value pairs, e.g. "drop=0.05,dup=0.02,err500=0.1,lie=1".
// Probability keys take values in [0, 1]; delayms takes milliseconds.
// Unknown keys are errors (listing the valid ones) so a typo cannot
// silently disarm a fault class.
func ParseRates(s string) (Rates, error) {
	var r Rates
	s = strings.TrimSpace(s)
	if s == "" {
		return r, nil
	}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, vs, ok := strings.Cut(pair, "=")
		if !ok {
			return r, fmt.Errorf("chaos: rate %q is not key=value", pair)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v, err := strconv.ParseFloat(strings.TrimSpace(vs), 64)
		if err != nil {
			return r, fmt.Errorf("chaos: rate %q: %w", pair, err)
		}
		found := false
		for _, rk := range rateKeys {
			if rk.key != k {
				continue
			}
			if k != "delayms" && (v < 0 || v > 1) {
				return r, fmt.Errorf("chaos: rate %s=%v outside [0, 1]", k, v)
			}
			if k == "delayms" && v < 0 {
				return r, fmt.Errorf("chaos: delayms=%v is negative", v)
			}
			rk.set(&r, v)
			found = true
			break
		}
		if !found {
			keys := make([]string, len(rateKeys))
			for i, rk := range rateKeys {
				keys[i] = rk.key
			}
			return r, fmt.Errorf("chaos: unknown rate %q (valid: %s)", k, strings.Join(keys, ", "))
		}
	}
	return r, nil
}

// Active reports whether any fault class can fire.
func (r Rates) Active() bool {
	return r.Drop > 0 || r.Delay > 0 || r.Dup > 0 || r.Trunc > 0 ||
		r.Err500 > 0 || r.Err503 > 0 || r.Lie > 0 ||
		r.CacheFlip > 0 || r.CacheTrunc > 0 || r.CacheDeny > 0
}

// Counts is a snapshot of how many faults each class has injected.
type Counts struct {
	Drops, Delays, Dups, Truncs, Err500s, Err503s uint64
	Lies                                          uint64
	CacheFaults                                   uint64
}

// String renders the non-zero counts for an exit log line.
func (c Counts) String() string {
	parts := []string{}
	add := func(n uint64, what string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, what))
		}
	}
	add(c.Drops, "dropped")
	add(c.Delays, "delayed")
	add(c.Dups, "duplicated")
	add(c.Truncs, "truncated")
	add(c.Err500s, "err500")
	add(c.Err503s, "err503")
	add(c.Lies, "lied")
	add(c.CacheFaults, "cache faults")
	if len(parts) == 0 {
		return "no faults injected"
	}
	return strings.Join(parts, ", ")
}

// Plan is one armed fault schedule: a seed, the per-class rates, and
// one rng substream per class. All methods are safe for concurrent use;
// coin flips are serialized so each class consumes its stream in a
// fixed per-opportunity order.
type Plan struct {
	rates Rates

	mu     sync.Mutex
	counts Counts
	// One substream per class: each request/entry costs every wire class
	// exactly one draw, so a class's schedule depends only on the seed,
	// never on the other classes' rates.
	drop, delay, dup, trunc, err500, err503 *rng.Stream
	lie, cache                              *rng.Stream
}

// NewPlan arms a fault schedule. The same (seed, rates) always yields
// the same per-class fault schedule.
func NewPlan(seed int64, rates Rates) *Plan {
	if rates.DelayMax <= 0 {
		rates.DelayMax = 25 * time.Millisecond
	}
	sub := func(class string) *rng.Stream { return rng.Derive(seed, "chaos", class) }
	return &Plan{
		rates:  rates,
		drop:   sub("drop"),
		delay:  sub("delay"),
		dup:    sub("dup"),
		trunc:  sub("trunc"),
		err500: sub("err500"),
		err503: sub("err503"),
		lie:    sub("lie"),
		cache:  sub("cache"),
	}
}

// Rates returns the armed rates.
func (p *Plan) Rates() Rates { return p.rates }

// Counts returns a snapshot of the faults injected so far.
func (p *Plan) Counts() Counts {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts
}

// wireFaults is one request's verdict, drawn atomically.
type wireFaults struct {
	drop, dup, trunc, err500, err503 bool
	delay                            time.Duration
}

func (p *Plan) drawWire() wireFaults {
	p.mu.Lock()
	defer p.mu.Unlock()
	var f wireFaults
	f.drop = p.drop.Bernoulli(p.rates.Drop)
	if p.delay.Bernoulli(p.rates.Delay) {
		f.delay = time.Duration(p.delay.Float64() * float64(p.rates.DelayMax))
	}
	f.dup = p.dup.Bernoulli(p.rates.Dup)
	f.trunc = p.trunc.Bernoulli(p.rates.Trunc)
	f.err500 = p.err500.Bernoulli(p.rates.Err500)
	f.err503 = p.err503.Bernoulli(p.rates.Err503)
	return f
}

// Transport wraps an http.RoundTripper with the plan's wire faults.
// base nil means http.DefaultTransport. Hand the result to an
// http.Client (grid.Worker.Client) and every request runs the gauntlet:
// drop → synthetic 5xx → delay → duplicate → forward → truncate.
//
// The faults compose with the grid's recovery story: a dropped or 5xx'd
// claim backs off and retries, a dropped result post retries then
// abandons to lease re-queueing, a duplicated claim strands a task
// whose lease expires, and a truncated task payload fails its JSON
// decode and is re-claimed.
func (p *Plan) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{p: p, base: base}
}

type transport struct {
	p    *Plan
	base http.RoundTripper
}

// faultErr is the transport error injected for dropped requests,
// distinguishable in logs from real network failures.
type faultErr struct{ op string }

func (e faultErr) Error() string { return "chaos: injected fault: " + e.op }

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.p.drawWire()
	bump := func(c *uint64) {
		t.p.mu.Lock()
		*c++
		t.p.mu.Unlock()
	}
	switch {
	case f.drop:
		bump(&t.p.counts.Drops)
		return nil, faultErr{"request dropped"}
	case f.err500:
		bump(&t.p.counts.Err500s)
		return synthResponse(req, http.StatusInternalServerError), nil
	case f.err503:
		bump(&t.p.counts.Err503s)
		return synthResponse(req, http.StatusServiceUnavailable), nil
	}
	if f.delay > 0 {
		bump(&t.p.counts.Delays)
		timer := time.NewTimer(f.delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if f.dup {
		if clone, ok := cloneRequest(req); ok {
			bump(&t.p.counts.Dups)
			// The duplicate goes out first and its response is discarded —
			// from the server's view, the same request arrived twice.
			if resp, err := t.base.RoundTrip(clone); err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if f.trunc {
		bump(&t.p.counts.Truncs)
		if terr := truncateBody(resp); terr != nil {
			return nil, terr
		}
	}
	return resp, nil
}

// cloneRequest duplicates a request for replay. Bodyless requests clone
// directly; bodied ones need GetBody (set by http.NewRequest for the
// buffer types the grid client uses). ok is false when the body cannot
// be replayed.
func cloneRequest(req *http.Request) (*http.Request, bool) {
	clone := req.Clone(req.Context())
	if req.Body == nil {
		return clone, true
	}
	if req.GetBody == nil {
		return nil, false
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, false
	}
	clone.Body = body
	return clone, true
}

func synthResponse(req *http.Request, code int) *http.Response {
	body := "chaos: injected " + strconv.Itoa(code)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody swaps the response body for its first half, simulating a
// connection cut mid-transfer. JSON consumers fail their decode and
// treat the request as failed — which is the point.
func truncateBody(resp *http.Response) error {
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	half := b[:len(b)/2]
	resp.Body = io.NopCloser(bytes.NewReader(half))
	resp.ContentLength = int64(len(half))
	resp.Header.Set("Content-Length", strconv.Itoa(len(half)))
	return nil
}

// CorruptResult is the lying-worker hook, with the exact signature of
// grid.Worker.CorruptResult. At the Lie rate it perturbs the result the
// way a cheating node would — better throughput, less loss — leaving it
// entirely plausible. Only byte-comparison against an honest
// re-execution (the coordinator's audit) can catch it.
func (p *Plan) CorruptResult(point, rep int, r *mac.Result) {
	p.mu.Lock()
	hit := p.lie.Bernoulli(p.rates.Lie)
	if hit {
		p.counts.Lies++
	}
	p.mu.Unlock()
	if !hit {
		return
	}
	r.DataThroughputPerFrame *= 1.25
	r.DataDelivered += 1 + r.DataDelivered/8
	r.VoiceLossRate *= 0.5
	r.VoiceDropped /= 2
	r.MeanDataDelaySec *= 0.75
}

// CacheFaults describes what InjectCacheFaults did to a cache dir.
type CacheFaults struct {
	Entries int // entries examined
	Flipped int // one byte XORed (CRC-detectable silent corruption)
	Trunced int // truncated to half length
	Denied  int // chmod 000
}

// InjectCacheFaults walks a -cache-dir layout (dir/<aa>/<key>.json) and
// perturbs entries per the plan's cache rates. Entries are visited in
// lexical path order, so the fault schedule is a pure function of
// (seed, rates, cache contents). Returns what was done; the grid's disk
// cache must detect every perturbed entry (CRC mismatch or read error),
// quarantine it, and recompute — never serve it.
func (p *Plan) InjectCacheFaults(dir string) (CacheFaults, error) {
	var cf CacheFaults
	if p.rates.CacheFlip == 0 && p.rates.CacheTrunc == 0 && p.rates.CacheDeny == 0 {
		return cf, nil
	}
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return cf, err
	}
	sort.Strings(paths)
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, path := range paths {
		cf.Entries++
		switch {
		case p.cache.Bernoulli(p.rates.CacheFlip):
			b, err := os.ReadFile(path)
			if err != nil || len(b) == 0 {
				continue
			}
			// Flip one bit of one byte: the entry may still parse as valid
			// JSON — only the CRC envelope can tell.
			b[p.cache.IntN(len(b))] ^= 0x01
			if os.WriteFile(path, b, 0o644) == nil {
				cf.Flipped++
				p.counts.CacheFaults++
			}
		case p.cache.Bernoulli(p.rates.CacheTrunc):
			info, err := os.Stat(path)
			if err != nil {
				continue
			}
			if os.Truncate(path, info.Size()/2) == nil {
				cf.Trunced++
				p.counts.CacheFaults++
			}
		case p.cache.Bernoulli(p.rates.CacheDeny):
			if os.Chmod(path, 0) == nil {
				cf.Denied++
				p.counts.CacheFaults++
			}
		}
	}
	return cf, nil
}
