package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"charisma/internal/mac"
)

func TestParseRates(t *testing.T) {
	r, err := ParseRates("drop=0.05, dup=0.02,err500=0.1,lie=1,delayms=40,cacheflip=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if r.Drop != 0.05 || r.Dup != 0.02 || r.Err500 != 0.1 || r.Lie != 1 ||
		r.CacheFlip != 0.5 || r.DelayMax != 40*time.Millisecond {
		t.Fatalf("parsed %+v", r)
	}
	if !r.Active() {
		t.Fatal("non-zero rates report inactive")
	}
	if r, err := ParseRates(""); err != nil || r.Active() {
		t.Fatalf("empty rates: %+v, %v", r, err)
	}
	for _, bad := range []string{"drop", "drop=2", "drop=-0.1", "bogus=0.5", "delayms=-1"} {
		if _, err := ParseRates(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	// A typo'd key must name the valid ones, not silently disarm.
	_, err = ParseRates("dorp=0.5")
	if err == nil || !strings.Contains(err.Error(), "drop") {
		t.Fatalf("unknown-key error %v does not list valid keys", err)
	}
}

// TestPlanDeterministicPerSeed: the same (seed, rates) yields the same
// fault schedule; a different seed diverges. This is what makes a chaos
// failure replayable.
func TestPlanDeterministicPerSeed(t *testing.T) {
	rates := Rates{Drop: 0.3, Dup: 0.2, Trunc: 0.1, Err500: 0.25}
	draw := func(seed int64) []wireFaults {
		p := NewPlan(seed, rates)
		out := make([]wireFaults, 64)
		for i := range out {
			out[i] = p.drawWire()
		}
		return out
	}
	a, b := draw(42), draw(42)
	c := draw(43)
	same, differs := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			differs = true
		}
	}
	if !same {
		t.Fatal("same seed produced different fault schedules")
	}
	if !differs {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestRateIsolation: raising one class's rate must not reshuffle another
// class's schedule — each draws from its own substream.
func TestRateIsolation(t *testing.T) {
	drops := func(r Rates) []bool {
		p := NewPlan(7, r)
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.drawWire().drop
		}
		return out
	}
	a := drops(Rates{Drop: 0.3})
	b := drops(Rates{Drop: 0.3, Dup: 0.9, Err500: 0.9, Trunc: 0.9, Delay: 0.9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop schedule shifted at %d when other rates changed", i)
		}
	}
}

func chaosClient(p *Plan) *http.Client {
	return &http.Client{Transport: p.Transport(nil), Timeout: 5 * time.Second}
}

func TestTransportDrop(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer hs.Close()
	p := NewPlan(1, Rates{Drop: 1})
	_, err := chaosClient(p).Get(hs.URL)
	if err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("dropped request returned %v, want an injected chaos error", err)
	}
	if hits.Load() != 0 {
		t.Fatal("dropped request reached the server")
	}
	if p.Counts().Drops != 1 {
		t.Fatalf("counts: %+v", p.Counts())
	}
}

func TestTransportInjects5xx(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer hs.Close()
	for _, tc := range []struct {
		rates Rates
		want  int
	}{
		{Rates{Err500: 1}, 500},
		{Rates{Err503: 1}, 503},
	} {
		resp, err := chaosClient(NewPlan(1, tc.rates)).Get(hs.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("injected status %d, want %d", resp.StatusCode, tc.want)
		}
	}
	if hits.Load() != 0 {
		t.Fatal("synthesized 5xx still forwarded the request")
	}
}

func TestTransportDuplicates(t *testing.T) {
	var bodies []string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(b))
		w.WriteHeader(http.StatusNoContent)
	}))
	defer hs.Close()
	p := NewPlan(1, Rates{Dup: 1})
	resp, err := chaosClient(p).Post(hs.URL, "application/json", strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 2 || bodies[0] != bodies[1] {
		t.Fatalf("server saw %q, want the same body twice", bodies)
	}
	if p.Counts().Dups != 1 {
		t.Fatalf("counts: %+v", p.Counts())
	}
}

func TestTransportTruncates(t *testing.T) {
	const body = "0123456789"
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer hs.Close()
	resp, err := chaosClient(NewPlan(1, Rates{Trunc: 1})).Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != body[:len(body)/2] {
		t.Fatalf("truncated body %q, want %q", got, body[:len(body)/2])
	}
}

func TestTransportDelays(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer hs.Close()
	p := NewPlan(1, Rates{Delay: 1, DelayMax: 2 * time.Millisecond})
	resp, err := chaosClient(p).Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if p.Counts().Delays != 1 {
		t.Fatalf("counts: %+v", p.Counts())
	}
}

// TestCorruptResult: at lie=1 every result is perturbed — plausibly, not
// into garbage — and at lie=0 results pass through untouched.
func TestCorruptResult(t *testing.T) {
	base := mac.Result{DataThroughputPerFrame: 2, DataDelivered: 800, VoiceLossRate: 0.01, VoiceDropped: 10, MeanDataDelaySec: 0.2}
	r := base
	NewPlan(1, Rates{Lie: 1}).CorruptResult(0, 0, &r)
	if r == base {
		t.Fatal("lie=1 left the result untouched")
	}
	if r.DataThroughputPerFrame <= base.DataThroughputPerFrame || r.VoiceLossRate >= base.VoiceLossRate {
		t.Fatalf("lie is not flattering: %+v", r)
	}
	r = base
	NewPlan(1, Rates{}).CorruptResult(0, 0, &r)
	if r != base {
		t.Fatal("lie=0 corrupted a result")
	}
}
