package frame

import (
	"testing"

	"charisma/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameIs800SymbolsAnd2500us(t *testing.T) {
	g := Default()
	if g.FrameSymbols != 800 {
		t.Fatalf("frame = %d symbols, want 800 (320 kHz x 2.5 ms)", g.FrameSymbols)
	}
	if g.Duration() != 800 {
		t.Fatalf("duration = %v ticks", g.Duration())
	}
	if g.Duration().Milliseconds() != 2.5 {
		t.Fatalf("frame duration = %v ms, want 2.5 (Table 1)", g.Duration().Milliseconds())
	}
}

func TestCharismaBudgetExactly800(t *testing.T) {
	g := Default()
	total := (g.CharismaRequestSlots+g.CharismaPilotSlots)*g.MinislotSymbols + g.CharismaInfoSymbols()
	if total != g.FrameSymbols {
		t.Fatalf("CHARISMA layout = %d symbols, want %d", total, g.FrameSymbols)
	}
	if g.CharismaInfoSymbols() != 640 {
		t.Fatalf("info subframe = %d symbols, want 640 (4 slot-equivalents)", g.CharismaInfoSymbols())
	}
}

func TestDTDMABudgetFits(t *testing.T) {
	g := Default()
	used := g.DTDMARequestSlots*g.MinislotSymbols + g.DTDMAInfoSlots*g.InfoSlotSymbols
	if used > g.FrameSymbols {
		t.Fatalf("D-TDMA layout = %d symbols > %d", used, g.FrameSymbols)
	}
	// Nr "slightly larger" than the slot-equivalent count of the info
	// subframe (paper §4.3).
	if g.DTDMARequestSlots <= g.DTDMAInfoSlots {
		t.Fatal("request slots should outnumber info slots")
	}
}

func TestRAMABudgetFits(t *testing.T) {
	g := Default()
	used := g.RAMAAuctionSlots*g.RAMAAuctionSymbols + g.RAMAInfoSlots*g.InfoSlotSymbols
	if used > g.FrameSymbols {
		t.Fatalf("RAMA layout = %d symbols > %d", used, g.FrameSymbols)
	}
	// An auction slot is larger than a request minislot (§3.1).
	if g.RAMAAuctionSymbols <= g.MinislotSymbols {
		t.Fatal("auction slot should exceed a request minislot")
	}
}

func TestDRMABudgetFits(t *testing.T) {
	g := Default()
	if g.DRMAInfoSlots*g.InfoSlotSymbols > g.FrameSymbols {
		t.Fatal("DRMA layout exceeds frame")
	}
	// DRMA devotes the whole frame to info slots: that is its edge.
	if g.DRMAInfoSlots <= g.DTDMAInfoSlots {
		t.Fatal("DRMA should carry more info slots than D-TDMA")
	}
	// A converted slot yields Nx minislots that fit inside one slot.
	if g.DRMAMinislotsPerSlot*g.MinislotSymbols > g.InfoSlotSymbols {
		t.Fatal("Nx minislots overflow a converted slot")
	}
}

func TestRMAVFrameDuration(t *testing.T) {
	g := Default()
	if got := g.RMAVFrameDuration(0); got != sim.Time(g.InfoSlotSymbols) {
		t.Fatalf("idle RMAV frame = %v, want one competitive slot", got)
	}
	if got := g.RMAVFrameDuration(3); got != sim.Time(4*g.InfoSlotSymbols) {
		t.Fatalf("3-slot RMAV frame = %v", got)
	}
}

func TestVoicePeriodIsEightFrames(t *testing.T) {
	g := Default()
	if g.VoicePeriodFrames() != 8 {
		t.Fatalf("voice period = %d frames, want 8 (20 ms / 2.5 ms)", g.VoicePeriodFrames())
	}
}

func TestValidateRejectsBadLayouts(t *testing.T) {
	cases := []func(*Geometry){
		func(g *Geometry) { g.FrameSymbols = 0 },
		func(g *Geometry) { g.MinislotSymbols = -1 },
		func(g *Geometry) { g.CharismaRequestSlots = 100 }, // info subframe vanishes
		func(g *Geometry) { g.DTDMAInfoSlots = 10 },
		func(g *Geometry) { g.RAMAInfoSlots = 10 },
		func(g *Geometry) { g.DRMAInfoSlots = 10 },
		func(g *Geometry) { g.RMAVMaxGrantSlots = 0 },
		func(g *Geometry) { g.VoicePeriod = 0 },
		func(g *Geometry) { g.VoicePeriod = 900 }, // not a whole frame multiple
	}
	for i, mutate := range cases {
		g := Default()
		mutate(&g)
		if g.Validate() == nil {
			t.Errorf("case %d: invalid geometry accepted", i)
		}
	}
}
