// Package frame defines the TDMA air-interface geometry shared by all six
// protocols (paper Figs. 2 and 4, Table 1).
//
// The 320 kHz system carries 800 symbols per 2.5 ms frame. One information
// slot is 160 symbols — exactly one 160-bit packet at the baseline η = 1
// mode — and one request/pilot minislot is 20 symbols. Each protocol
// partitions the same 800-symbol budget differently:
//
//	CHARISMA : 6 request minislots + 640-symbol info subframe + 2 pilot slots
//	D-TDMA   : 8 request minislots + 4 information slots
//	RAMA     : 4 auction slots (40 symbols each) + 4 information slots
//	DRMA     : 5 information slots (an idle slot converts to 8 minislots)
//	RMAV     : variable: one 160-symbol slot per assigned grant + 1
//	           competitive minislot
//
// The paper's Table 1 is partially unreadable in the source scan; this
// reconstruction is derived from the readable constants (320 kHz, 2.5 ms
// frames, 8 kbps speech, 20 ms voice period) and documented in DESIGN.md §3.
package frame

import (
	"fmt"

	"charisma/internal/sim"
)

// Geometry is the static air-interface layout.
type Geometry struct {
	// FrameSymbols is the frame length in symbols (800 = 2.5 ms).
	FrameSymbols int
	// MinislotSymbols is the request/pilot minislot length (20).
	MinislotSymbols int
	// InfoSlotSymbols is the information slot length (160).
	InfoSlotSymbols int

	// CharismaRequestSlots is Nr for CHARISMA (6, "slightly larger than
	// the number of information slots", §4.3).
	CharismaRequestSlots int
	// CharismaPilotSlots is Nb, the CSI-polling pilot subframe (2).
	CharismaPilotSlots int
	// CharismaGrantOverheadSymbols is the per-grant announcement/guard
	// cost of CHARISMA's symbol-granular packing.
	CharismaGrantOverheadSymbols int

	// DTDMARequestSlots is Nr for D-TDMA/FR and /VR (8).
	DTDMARequestSlots int
	// DTDMAInfoSlots is Ni for D-TDMA/FR and /VR (4).
	DTDMAInfoSlots int

	// RAMAAuctionSlots is Na (4) and RAMAAuctionSymbols the size of one
	// auction slot (40 symbols — "an auction slot is larger than a
	// normal request slot", §3.1).
	RAMAAuctionSlots   int
	RAMAAuctionSymbols int
	// RAMAInfoSlots is Ni for RAMA (4).
	RAMAInfoSlots int

	// DRMAInfoSlots is Nk (5); DRMAMinislotsPerSlot is Nx (8), the number
	// of request minislots an idle information slot converts into.
	DRMAInfoSlots        int
	DRMAMinislotsPerSlot int

	// RMAVMaxGrantSlots is Pmax, the cap on slots a data user can win in
	// one frame (10, from [12]).
	RMAVMaxGrantSlots int

	// VoicePeriod is the speech packet interval (20 ms = 8 frames).
	VoicePeriod sim.Time
}

// Default returns the reconstructed Table 1 geometry.
func Default() Geometry {
	return Geometry{
		FrameSymbols:                 800,
		MinislotSymbols:              16,
		InfoSlotSymbols:              160,
		CharismaRequestSlots:         5,
		CharismaPilotSlots:           5,
		CharismaGrantOverheadSymbols: 0,
		DTDMARequestSlots:            10,
		DTDMAInfoSlots:               4,
		RAMAAuctionSlots:             4,
		RAMAAuctionSymbols:           40,
		RAMAInfoSlots:                4,
		DRMAInfoSlots:                5,
		DRMAMinislotsPerSlot:         10,
		RMAVMaxGrantSlots:            10,
		VoicePeriod:                  20 * sim.Millisecond,
	}
}

// Duration returns the fixed frame duration in ticks (one tick per symbol).
func (g Geometry) Duration() sim.Time { return sim.Time(g.FrameSymbols) }

// CharismaInfoSymbols returns the symbol budget of CHARISMA's information
// subframe: whatever the request and pilot subframes leave over.
func (g Geometry) CharismaInfoSymbols() int {
	return g.FrameSymbols - (g.CharismaRequestSlots+g.CharismaPilotSlots)*g.MinislotSymbols
}

// RMAVFrameDuration returns the duration of an RMAV frame carrying the
// given number of assigned information slots plus the single full-size
// competitive slot at the end (Fig. 2b).
func (g Geometry) RMAVFrameDuration(assignedSlots int) sim.Time {
	return sim.Time((assignedSlots + 1) * g.InfoSlotSymbols)
}

// Validate checks that every protocol's layout fits the frame budget.
func (g Geometry) Validate() error {
	if g.FrameSymbols <= 0 || g.MinislotSymbols <= 0 || g.InfoSlotSymbols <= 0 {
		return fmt.Errorf("frame: non-positive symbol sizes")
	}
	if got := g.CharismaInfoSymbols(); got < g.InfoSlotSymbols {
		return fmt.Errorf("frame: CHARISMA info subframe too small (%d symbols)", got)
	}
	if used := g.DTDMARequestSlots*g.MinislotSymbols + g.DTDMAInfoSlots*g.InfoSlotSymbols; used > g.FrameSymbols {
		return fmt.Errorf("frame: D-TDMA layout uses %d of %d symbols", used, g.FrameSymbols)
	}
	if used := g.RAMAAuctionSlots*g.RAMAAuctionSymbols + g.RAMAInfoSlots*g.InfoSlotSymbols; used > g.FrameSymbols {
		return fmt.Errorf("frame: RAMA layout uses %d of %d symbols", used, g.FrameSymbols)
	}
	if used := g.DRMAInfoSlots * g.InfoSlotSymbols; used > g.FrameSymbols {
		return fmt.Errorf("frame: DRMA layout uses %d of %d symbols", used, g.FrameSymbols)
	}
	if g.RMAVMaxGrantSlots < 1 {
		return fmt.Errorf("frame: RMAV Pmax must be at least 1")
	}
	if g.VoicePeriod <= 0 {
		return fmt.Errorf("frame: non-positive voice period")
	}
	if g.VoicePeriod%g.Duration() != 0 {
		return fmt.Errorf("frame: voice period %v not a whole number of frames", g.VoicePeriod)
	}
	return nil
}

// VoicePeriodFrames returns the voice packet interval in whole frames (8).
func (g Geometry) VoicePeriodFrames() int {
	return int(g.VoicePeriod / g.Duration())
}
