package channel

// This file implements the structure-of-arrays fading plane: the backing
// store every Fading value is a view into. The per-user state of the §4.2
// two-component model lives in parallel slices advanced by one tight batch
// loop, with
//
//   - AR(1) step coefficients computed once per (dt, parameter class) for
//     the whole plane instead of being re-derived (and their √(1−ρ²)
//     innovation scales re-evaluated) per fading object per step,
//   - amplitude and local-mean conversions memoized per user per step:
//     they only change on Advance, yet the MAC queries them several times
//     per frame, and each query used to re-pay a dB→linear exp plus a
//     Hypot, and
//   - the deferred-catch-up loop the MAC's lazy fading replay needs
//     exposed as one batched call (advanceUserSteps) that keeps the whole
//     recurrence in registers and skips every amplitude conversion for
//     the intermediate states nobody observes.
//
// Byte-identity contract: the plane consumes exactly the same draws, from
// the same per-user private streams, in the same order, and combines them
// with arithmetic expressions kept textually identical to the original
// scalar implementation — so every sample path, and therefore every
// simulation result, is bit-for-bit unchanged (pinned by the golden suite
// in golden_test.go and TestPlaneMatchesScalarReference).

import (
	"math"

	"charisma/internal/mathx"
	"charisma/internal/obs"
	"charisma/internal/rng"
	"charisma/internal/sim"
)

// coeffMemo is one cached set of AR(1) step coefficients for a step size.
type coeffMemo struct {
	dt     sim.Time
	rhoS   float64 // short-term AR(1) coefficient
	innovS float64 // √(1−ρs²)
	rhoL   float64 // long-term (shadowing) AR(1) coefficient
	innovL float64 // √(1−ρl²)·σl
}

// coeffClass holds the AR(1) step coefficients shared by every user with
// the same Params. Two MRU-ordered memo slots cache the most recent step
// sizes: RMAV alternates between its variable frame duration and the
// standard-frame replay step every frame, which thrashed the old
// single-slot memo into re-deriving both Exp/Sqrt pairs each time.
type coeffClass struct {
	p         Params
	coherence float64 // p.CoherenceTime(), hoisted
	memo      [2]coeffMemo
}

func (c *coeffClass) coeffs(dt sim.Time) (rhoS, innovS, rhoL, innovL float64) {
	if m := &c.memo[0]; m.dt == dt {
		return m.rhoS, m.innovS, m.rhoL, m.innovL
	}
	if c.memo[1].dt == dt {
		c.memo[0], c.memo[1] = c.memo[1], c.memo[0]
		m := &c.memo[0]
		return m.rhoS, m.innovS, m.rhoL, m.innovL
	}
	sec := dt.Seconds()
	m := coeffMemo{dt: dt}
	m.rhoS = mathx.ExpCorrelation(c.coherence, sec)
	m.innovS = math.Sqrt(1 - m.rhoS*m.rhoS)
	m.rhoL = mathx.ExpCorrelation(c.p.ShadowCoherenceSec, sec)
	m.innovL = math.Sqrt(1-m.rhoL*m.rhoL) * c.p.ShadowSigmaDB
	c.memo[1] = c.memo[0]
	c.memo[0] = m
	return m.rhoS, m.innovS, m.rhoL, m.innovL
}

// plane is the structure-of-arrays state for a bank of independent fading
// processes. Users advance independently (the mac layer replays lazily), so
// every per-step memo is stamped with the user's own step counter rather
// than a plane-global epoch.
type plane struct {
	classes []coeffClass
	classOf []int32
	streams []*rng.Stream

	// Live AR(1) state.
	gRe, gIm, shadowDB []float64
	// State before the user's most recent step (for delayed estimates).
	prevGRe, prevGIm, prevShadowDB []float64

	// step counts advances applied per user; the caches below are valid
	// only when their stamp equals the user's current step.
	step []int64

	amp      []float64 // memoized combined amplitude c = c_l·c_s
	ampStep  []int64
	lt       []float64 // memoized linear local mean c_l
	ltStep   []int64
	prevAmp  []float64 // memoized pre-step amplitude
	prevStep []int64

	views []Fading

	// ctr counts lazy-replay catch-ups. Plain adds on the goroutine that
	// owns the plane's cell — see package obs.
	ctr obs.SimCounters
}

func newPlane(n int) *plane {
	pl := &plane{
		classOf:      make([]int32, n),
		streams:      make([]*rng.Stream, n),
		gRe:          make([]float64, n),
		gIm:          make([]float64, n),
		shadowDB:     make([]float64, n),
		prevGRe:      make([]float64, n),
		prevGIm:      make([]float64, n),
		prevShadowDB: make([]float64, n),
		step:         make([]int64, n),
		amp:          make([]float64, n),
		ampStep:      make([]int64, n),
		lt:           make([]float64, n),
		ltStep:       make([]int64, n),
		prevAmp:      make([]float64, n),
		prevStep:     make([]int64, n),
		views:        make([]Fading, n),
	}
	return pl
}

// classIndex interns a parameter set. Banks are almost always one class;
// the mixed-speed experiment yields one class per distinct speed.
func (pl *plane) classIndex(p Params) int32 {
	for i := range pl.classes {
		if pl.classes[i].p == p {
			return int32(i)
		}
	}
	pl.classes = append(pl.classes, coeffClass{p: p, coherence: p.CoherenceTime(), memo: [2]coeffMemo{{dt: -1}, {dt: -1}}})
	return int32(len(pl.classes) - 1)
}

// initUser seeds user i at its stationary distribution, drawing exactly the
// initialization draws the scalar NewFading made: one complex Gaussian for
// the envelope, one Gaussian for the shadow.
func (pl *plane) initUser(i int, p Params, stream *rng.Stream) {
	pl.classOf[i] = pl.classIndex(p)
	pl.streams[i] = stream
	re, im := stream.ComplexGaussian()
	sh := stream.Normal(p.ShadowMeanDB, p.ShadowSigmaDB)
	pl.gRe[i], pl.gIm[i], pl.shadowDB[i] = re, im, sh
	pl.prevGRe[i], pl.prevGIm[i], pl.prevShadowDB[i] = re, im, sh
	pl.ampStep[i], pl.ltStep[i], pl.prevStep[i] = -1, -1, -1
	pl.views[i] = Fading{plane: pl, idx: int32(i)}
}

// stepUser advances one user by a step whose coefficients the caller
// already resolved. The arithmetic is kept textually identical to the
// scalar implementation (byte-identity contract).
func (pl *plane) stepUser(i int, rhoS, innovS, rhoL, innovL, mean float64) {
	// Carry a memoized amplitude into the delayed-estimate cache: the
	// pre-step amplitude is exactly the amplitude of the current state.
	if pl.ampStep[i] == pl.step[i] {
		pl.prevAmp[i] = pl.amp[i]
		pl.prevStep[i] = pl.step[i] + 1
	}
	pl.prevGRe[i], pl.prevGIm[i], pl.prevShadowDB[i] = pl.gRe[i], pl.gIm[i], pl.shadowDB[i]
	s := pl.streams[i]
	wRe, wIm := s.ComplexGaussian()
	pl.gRe[i] = rhoS*pl.gRe[i] + innovS*wRe
	pl.gIm[i] = rhoS*pl.gIm[i] + innovS*wIm
	w := s.Normal(0, 1)
	pl.shadowDB[i] = mean + rhoL*(pl.shadowDB[i]-mean) + innovL*w
	pl.step[i]++
}

// advanceAll steps every user by dt — the Bank.Advance batch loop. The
// single-class fast path (every bank except the mixed-speed experiment)
// hoists the state slices into locals resliced to a common length, so the
// loop body runs bounds-check-free with the coefficients in registers.
func (pl *plane) advanceAll(dt sim.Time) {
	if dt < 0 {
		panic("channel: negative time step")
	}
	if len(pl.classes) != 1 {
		for i := range pl.gRe {
			c := &pl.classes[pl.classOf[i]]
			rhoS, innovS, rhoL, innovL := c.coeffs(dt)
			pl.stepUser(i, rhoS, innovS, rhoL, innovL, c.p.ShadowMeanDB)
		}
		return
	}
	rhoS, innovS, rhoL, innovL := pl.classes[0].coeffs(dt)
	mean := pl.classes[0].p.ShadowMeanDB
	n := len(pl.gRe)
	gRe, gIm, sh := pl.gRe[:n], pl.gIm[:n], pl.shadowDB[:n]
	pgRe, pgIm, psh := pl.prevGRe[:n], pl.prevGIm[:n], pl.prevShadowDB[:n]
	step, ampStep := pl.step[:n], pl.ampStep[:n]
	amp, prevAmp, prevStep := pl.amp[:n], pl.prevAmp[:n], pl.prevStep[:n]
	streams := pl.streams[:n]
	for i := 0; i < n; i++ {
		if ampStep[i] == step[i] {
			prevAmp[i] = amp[i]
			prevStep[i] = step[i] + 1
		}
		pgRe[i], pgIm[i], psh[i] = gRe[i], gIm[i], sh[i]
		s := streams[i]
		wRe, wIm := s.ComplexGaussian()
		gRe[i] = rhoS*gRe[i] + innovS*wRe
		gIm[i] = rhoS*gIm[i] + innovS*wIm
		w := s.Normal(0, 1)
		sh[i] = mean + rhoL*(sh[i]-mean) + innovL*w
		step[i]++
	}
}

// advanceUser steps a single user by dt (the per-view Advance).
func (pl *plane) advanceUser(i int, dt sim.Time) {
	if dt < 0 {
		panic("channel: negative time step")
	}
	c := &pl.classes[pl.classOf[i]]
	rhoS, innovS, rhoL, innovL := c.coeffs(dt)
	pl.stepUser(i, rhoS, innovS, rhoL, innovL, c.p.ShadowMeanDB)
}

// advanceUserSteps replays n equal deferred steps for one user — the MAC's
// lazy-replay catch-up, batched: coefficients are resolved once, the
// recurrence runs in registers, and no amplitude conversion is paid for
// the n−1 intermediate states nobody can observe.
func (pl *plane) advanceUserSteps(i int, dt sim.Time, n int) {
	if n <= 0 {
		return
	}
	pl.ctr.ChannelCatchUps++
	pl.ctr.ChannelCatchUpSteps += uint64(n)
	if dt < 0 {
		panic("channel: negative time step")
	}
	if n == 1 {
		pl.advanceUser(i, dt)
		return
	}
	c := &pl.classes[pl.classOf[i]]
	rhoS, innovS, rhoL, innovL := c.coeffs(dt)
	mean := c.p.ShadowMeanDB
	s := pl.streams[i]
	re, im, sh := pl.gRe[i], pl.gIm[i], pl.shadowDB[i]
	var pre, pim, psh float64
	for k := 0; k < n; k++ {
		pre, pim, psh = re, im, sh
		wRe, wIm := s.ComplexGaussian()
		re = rhoS*re + innovS*wRe
		im = rhoS*im + innovS*wIm
		w := s.Normal(0, 1)
		sh = mean + rhoL*(sh-mean) + innovL*w
	}
	pl.gRe[i], pl.gIm[i], pl.shadowDB[i] = re, im, sh
	pl.prevGRe[i], pl.prevGIm[i], pl.prevShadowDB[i] = pre, pim, psh
	pl.step[i] += int64(n)
}

// longTermAt returns the memoized linear local mean c_l for user i.
func (pl *plane) longTermAt(i int32) float64 {
	if pl.ltStep[i] != pl.step[i] {
		pl.lt[i] = mathx.AmpDBToLinear(pl.shadowDB[i])
		pl.ltStep[i] = pl.step[i]
	}
	return pl.lt[i]
}

// amplitudeAt returns the memoized combined amplitude c = c_l·c_s for user
// i, computing it (local mean × Hypot envelope, exactly the scalar
// LongTerm()*ShortTerm() expression) at most once per step.
func (pl *plane) amplitudeAt(i int32) float64 {
	if pl.ampStep[i] != pl.step[i] {
		pl.amp[i] = pl.longTermAt(i) * math.Hypot(pl.gRe[i], pl.gIm[i])
		pl.ampStep[i] = pl.step[i]
	}
	return pl.amp[i]
}

// prevAmplitudeAt returns the combined amplitude of user i's state before
// its most recent step, computed lazily from the preserved pre-step
// components unless the step carried a memoized value over.
func (pl *plane) prevAmplitudeAt(i int32) float64 {
	if pl.prevStep[i] != pl.step[i] {
		pl.prevAmp[i] = mathx.AmpDBToLinear(pl.prevShadowDB[i]) * math.Hypot(pl.prevGRe[i], pl.prevGIm[i])
		pl.prevStep[i] = pl.step[i]
	}
	return pl.prevAmp[i]
}
