package channel

import (
	"math"
	"testing"
	"testing/quick"

	"charisma/internal/rng"
	"charisma/internal/sim"
)

const frameDur = 800 * sim.Time(1)

func newTestFading(seed int64) *Fading {
	return NewFading(DefaultParams(), rng.Derive(seed, "test"))
}

func TestParamsDefaults(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Doppler(); got != 100 {
		t.Fatalf("Doppler at 50 km/h = %v, want 100 Hz (Table 1)", got)
	}
	// Effective coherence: kappa/fd = 5/100 = 50 ms.
	if got := p.CoherenceTime(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("coherence = %v, want 0.05 s", got)
	}
}

func TestDopplerScalesWithSpeed(t *testing.T) {
	p := DefaultParams()
	p.SpeedKmh = 80
	if got := p.Doppler(); math.Abs(got-160) > 1e-9 {
		t.Fatalf("Doppler at 80 km/h = %v, want 160 Hz", got)
	}
	p.DopplerHz = 42
	if got := p.Doppler(); got != 42 {
		t.Fatalf("explicit Doppler override = %v", got)
	}
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	p.SpeedKmh = -1
	if p.Validate() == nil {
		t.Fatal("negative speed accepted")
	}
	p = DefaultParams()
	p.ShadowSigmaDB = -1
	if p.Validate() == nil {
		t.Fatal("negative sigma accepted")
	}
	p = DefaultParams()
	p.ShadowCoherenceSec = 0
	if p.Validate() == nil {
		t.Fatal("zero shadow coherence accepted")
	}
}

func TestShortTermRayleighStationarity(t *testing.T) {
	f := newTestFading(1)
	const n = 100000
	sumSq := 0.0
	for i := 0; i < n; i++ {
		f.Advance(frameDur)
		c := f.ShortTerm()
		sumSq += c * c
	}
	if p := sumSq / n; math.Abs(p-1) > 0.05 {
		t.Fatalf("E[c_s^2] = %v, want 1 (paper normalization)", p)
	}
}

func TestLongTermLogNormalStationarity(t *testing.T) {
	p := DefaultParams()
	f := NewFading(p, rng.Derive(2, "test"))
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		f.Advance(frameDur)
		db := f.LongTermDB()
		sum += db
		sumSq += db * db
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-p.ShadowMeanDB) > 0.5 {
		t.Fatalf("shadow mean = %v dB, want %v", mean, p.ShadowMeanDB)
	}
	if math.Abs(std-p.ShadowSigmaDB) > 0.5 {
		t.Fatalf("shadow std = %v dB, want %v", std, p.ShadowSigmaDB)
	}
}

func TestAmplitudeAlwaysPositive(t *testing.T) {
	prop := func(seed int64) bool {
		f := newTestFading(seed)
		for i := 0; i < 200; i++ {
			f.Advance(frameDur)
			if f.Amplitude() < 0 || f.ShortTerm() < 0 || f.LongTerm() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGainIsAmplitudeSquared(t *testing.T) {
	f := newTestFading(3)
	f.Advance(frameDur)
	a := f.Amplitude()
	if math.Abs(f.Gain()-a*a) > 1e-12 {
		t.Fatal("Gain != Amplitude^2")
	}
}

func TestShortTermCorrelationDecay(t *testing.T) {
	// Empirical lag-k autocorrelation of the complex envelope should track
	// exp(-k*frame/Tc).
	f := newTestFading(4)
	const n = 200000
	re := make([]float64, n)
	for i := 0; i < n; i++ {
		f.Advance(frameDur)
		re[i] = f.plane.gRe[f.idx]
	}
	corr := func(lag int) float64 {
		sum := 0.0
		for i := 0; i+lag < n; i++ {
			sum += re[i] * re[i+lag]
		}
		return sum / float64(n-lag) / 0.5 // component variance is 1/2
	}
	tc := DefaultParams().CoherenceTime()
	for _, lag := range []int{1, 4, 8} {
		want := math.Exp(-float64(lag) * frameDur.Seconds() / tc)
		got := corr(lag)
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("lag-%d corr = %v, want %v", lag, got, want)
		}
	}
}

func TestFasterSpeedDecorrelatesFaster(t *testing.T) {
	slow, fast := DefaultParams(), DefaultParams()
	slow.SpeedKmh, fast.SpeedKmh = 10, 80
	if slow.CoherenceTime() <= fast.CoherenceTime() {
		t.Fatal("higher speed should shorten coherence time")
	}
}

func TestAdvanceDeterminism(t *testing.T) {
	a, b := newTestFading(5), newTestFading(5)
	for i := 0; i < 500; i++ {
		a.Advance(frameDur)
		b.Advance(frameDur)
		if a.Amplitude() != b.Amplitude() {
			t.Fatal("same-seed fading paths diverged")
		}
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	f := newTestFading(6)
	defer func() {
		if recover() == nil {
			t.Fatal("negative step did not panic")
		}
	}()
	f.Advance(-1)
}

func TestMeasureEstimateDoesNotPerturbChannel(t *testing.T) {
	a, b := newTestFading(7), newTestFading(7)
	obs := rng.Derive(99, "observer")
	for i := 0; i < 100; i++ {
		a.Advance(frameDur)
		b.Advance(frameDur)
		// Only a is measured — b must stay on the identical path.
		a.MeasureEstimate(0.05, obs, sim.Time(i))
	}
	if a.Amplitude() != b.Amplitude() {
		t.Fatal("measurement perturbed the fading path (breaks common random numbers)")
	}
}

func TestMeasureEstimateNoise(t *testing.T) {
	f := newTestFading(8)
	f.Advance(frameDur)
	obs := rng.Derive(1, "obs")
	exact := f.MeasureEstimate(0, obs, 0)
	if exact.Amp != f.Amplitude() {
		t.Fatal("zero-noise estimate should be exact")
	}
	// Noisy estimates stay near the truth and never go negative.
	for i := 0; i < 1000; i++ {
		e := f.MeasureEstimate(0.05, obs, 0)
		if e.Amp < 0 {
			t.Fatal("negative amplitude estimate")
		}
		if math.Abs(e.Amp-f.Amplitude()) > f.Amplitude()*0.3 {
			t.Fatalf("estimate %v too far from %v", e.Amp, f.Amplitude())
		}
	}
}

func TestMeasureEstimateDelayedUsesPreviousFrame(t *testing.T) {
	f := newTestFading(10)
	f.Advance(frameDur)
	ampBefore := f.Amplitude()
	f.Advance(frameDur)
	obs := rng.Derive(2, "obs")
	delayed := f.MeasureEstimateDelayed(0, obs, 0)
	if delayed.Amp != ampBefore {
		t.Fatalf("delayed estimate = %v, want previous amplitude %v", delayed.Amp, ampBefore)
	}
}

func TestEstimateAge(t *testing.T) {
	e := Estimate{Amp: 1, At: 100}
	if e.Age(900) != 800 {
		t.Fatalf("age = %v", e.Age(900))
	}
}

func TestBankIndependence(t *testing.T) {
	b := NewBank(2, DefaultParams(), 1)
	const n = 20000
	sumXY, sumX, sumY, sumX2, sumY2 := 0.0, 0.0, 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		b.Advance(frameDur)
		x, y := b.User(0).Amplitude(), b.User(1).Amplitude()
		sumXY += x * y
		sumX += x
		sumY += y
		sumX2 += x * x
		sumY2 += y * y
	}
	mx, my := sumX/n, sumY/n
	cov := sumXY/n - mx*my
	sx := math.Sqrt(sumX2/n - mx*mx)
	sy := math.Sqrt(sumY2/n - my*my)
	// Samples are serially correlated, so allow a loose bound; true
	// cross-user correlation is zero.
	if r := cov / (sx * sy); math.Abs(r) > 0.15 {
		t.Fatalf("cross-user correlation = %v, want ~0 (paper: independent fading)", r)
	}
}

func TestBankUserCountAndSeeding(t *testing.T) {
	b1 := NewBank(3, DefaultParams(), 42)
	b2 := NewBank(5, DefaultParams(), 42)
	if b1.Size() != 3 || b2.Size() != 5 {
		t.Fatal("bank sizes wrong")
	}
	// User k's path must not depend on the bank size (CRN property).
	b1.Advance(frameDur)
	b2.Advance(frameDur)
	for i := 0; i < 3; i++ {
		if b1.User(i).Amplitude() != b2.User(i).Amplitude() {
			t.Fatalf("user %d path depends on population size", i)
		}
	}
}

func TestBankWithSpeeds(t *testing.T) {
	b := NewBankWithSpeeds([]float64{10, 80}, DefaultParams(), 7)
	if b.Size() != 2 {
		t.Fatal("size")
	}
	if b.User(0).Params().SpeedKmh != 10 || b.User(1).Params().SpeedKmh != 80 {
		t.Fatal("per-user speeds not applied")
	}
}

func TestTraceShape(t *testing.T) {
	tr := Trace(DefaultParams(), 1, frameDur, 200)
	if len(tr) != 200 {
		t.Fatalf("trace length %d", len(tr))
	}
	varied := false
	for i := 1; i < len(tr); i++ {
		if tr[i].T <= tr[i-1].T {
			t.Fatal("trace time not increasing")
		}
		if tr[i].AmpDB != tr[i-1].AmpDB {
			varied = true
		}
		// Fast fading rides on the shadow: combined dB should wander
		// around the shadow level.
		if math.IsNaN(tr[i].AmpDB) {
			t.Fatal("NaN in trace")
		}
	}
	if !varied {
		t.Fatal("trace is constant")
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := Trace(DefaultParams(), 9, frameDur, 50)
	b := Trace(DefaultParams(), 9, frameDur, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace not deterministic")
		}
	}
}
