// Package channel implements the paper's two-component radio channel model
// (§4.2): c(t) = c_l(t)·c_s(t), where
//
//   - c_s(t) is Rayleigh short-term (multipath) fading with E[c_s²] = 1 and a
//     coherence time of roughly 1/f_d (≈10 ms at the paper's 100 Hz Doppler
//     spread, i.e. a 50 km/h mean mobile speed), and
//   - c_l(t) is log-normal long-term shadowing (the "local mean",
//     c_l,dB = 20·log c_l ~ N(m_l, σ_l²)) fluctuating on a ≈1 s time scale.
//
// Both components evolve as first-order Gauss–Markov (AR(1)) processes —
// the short-term one on the complex envelope so its magnitude stays exactly
// Rayleigh, the long-term one in the dB domain so its marginal stays exactly
// log-normal. Each mobile device owns an independent fading process
// (paper: "the channel fading experienced by each mobile device is
// independent of each other"), which is precisely the spatial diversity
// CHARISMA's scheduler exploits.
//
// The state of every process lives in a structure-of-arrays fading plane
// (see plane.go): a Fading value is a thin per-user view over the plane, so
// the public API — and, critically, each user's private draw order, hence
// every result byte — is unchanged from the original scalar implementation
// while advancement is one batch loop and amplitude conversions are
// memoized per step.
//
// # Draw-order contract
//
// Every fading process draws from its own private rng stream, and an
// advance of dt consumes exactly two Gaussian draws (envelope innovation)
// plus one per shadowing step — independent of who asks, in what batch
// size, or how late. Fading.AdvanceSteps(dt, k) must consume the identical
// draws as k repeated Advance(dt) calls: the MAC layer's lazy replay
// (mac.System.syncChannel) leans on this to defer idle stations' fading
// for thousands of frames and still observe byte-identical amplitudes at
// every observation point. Anything that reorders, batches, or caches in
// this package must preserve that per-user draw sequence.
package channel
