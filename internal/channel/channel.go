package channel

import (
	"fmt"
	"math"

	"charisma/internal/mathx"
	"charisma/internal/obs"
	"charisma/internal/rng"
	"charisma/internal/sim"
)

// Params describes one user's fading statistics.
type Params struct {
	// SpeedKmh is the mobile speed; the Doppler spread scales linearly
	// with it, anchored at the paper's 100 Hz for 50 km/h.
	SpeedKmh float64

	// DopplerHz overrides the speed-derived Doppler spread when positive.
	DopplerHz float64

	// CoherenceScale κ sets the effective exponential-ACF coherence time
	// T_c = κ/f_d. The paper quotes T_c ≈ 1/f_d but *operationally
	// assumes* the CSI stays approximately constant across its two-frame
	// validity window (§4.2, §4.4) — which an exponential autocorrelation
	// only delivers with κ > 1. The default κ = 5 keeps the lag-1-frame
	// correlation at ≈0.95 (CSI usable within the validity window) while
	// fully decorrelating over a few tens of milliseconds, preserving the
	// burst-error behaviour the protocols are stressed with. Zero means
	// the default.
	CoherenceScale float64

	// ShadowMeanDB and ShadowSigmaDB are the mean and standard deviation
	// of the log-normal local mean, in amplitude dB (20·log10).
	ShadowMeanDB  float64
	ShadowSigmaDB float64

	// ShadowCoherenceSec is the shadowing decorrelation time constant
	// (paper: "the order of time span for c_l(t) is about one second").
	ShadowCoherenceSec float64
}

// DefaultParams returns the paper's Table 1 channel configuration: 50 km/h
// mean speed (f_d = 100 Hz, T_c ≈ 10 ms), moderate 4 dB shadowing with a
// one-second time constant.
func DefaultParams() Params {
	return Params{
		SpeedKmh:           50,
		ShadowMeanDB:       0,
		ShadowSigmaDB:      4,
		ShadowCoherenceSec: 1.0,
	}
}

// Doppler returns the effective Doppler spread in Hz.
func (p Params) Doppler() float64 {
	if p.DopplerHz > 0 {
		return p.DopplerHz
	}
	// Anchor: 100 Hz at 50 km/h (paper §4.2).
	return 100 * p.SpeedKmh / 50
}

// CoherenceTime returns the effective short-term coherence time κ/f_d in
// seconds (paper eq. (1) scaled by the ACF shape factor; see
// Params.CoherenceScale).
func (p Params) CoherenceTime() float64 {
	fd := p.Doppler()
	if fd <= 0 {
		return math.Inf(1)
	}
	k := p.CoherenceScale
	if k <= 0 {
		k = 5
	}
	return k / fd
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.SpeedKmh < 0 {
		return fmt.Errorf("channel: negative speed %v", p.SpeedKmh)
	}
	if p.ShadowSigmaDB < 0 {
		return fmt.Errorf("channel: negative shadow sigma %v", p.ShadowSigmaDB)
	}
	if p.ShadowCoherenceSec <= 0 {
		return fmt.Errorf("channel: non-positive shadow coherence %v", p.ShadowCoherenceSec)
	}
	return nil
}

// Fading is one user's combined fading process: a view into a
// structure-of-arrays plane holding the actual state. It consumes
// randomness only from its own stream and only inside Advance, so the
// sample path for a given seed is identical regardless of which MAC
// protocol observes it (common-random-numbers across the six protocols).
type Fading struct {
	plane *plane
	idx   int32
}

// NewFading creates a standalone fading process (a single-user plane)
// initialized at its stationary distribution.
func NewFading(p Params, stream *rng.Stream) *Fading {
	pl := newPlane(1)
	pl.initUser(0, p, stream)
	return &pl.views[0]
}

// Params returns the configured statistics.
func (f *Fading) Params() Params { return f.plane.classes[f.plane.classOf[f.idx]].p }

// Advance evolves the channel by dt ticks. It always consumes exactly three
// Gaussian draws so sample paths stay aligned across scenarios with the
// same per-user stream.
func (f *Fading) Advance(dt sim.Time) { f.plane.advanceUser(int(f.idx), dt) }

// AdvanceSteps evolves the channel by n consecutive steps of dt ticks each
// — byte-identical to calling Advance(dt) n times, but with the step
// coefficients resolved once and no amplitude conversions paid for the
// intermediate states. The MAC's lazy fading replay uses it to settle a
// station's deferred frames in one batch.
func (f *Fading) AdvanceSteps(dt sim.Time, n int) { f.plane.advanceUserSteps(int(f.idx), dt, n) }

// ShortTerm returns the instantaneous Rayleigh envelope c_s.
func (f *Fading) ShortTerm() float64 {
	return math.Hypot(f.plane.gRe[f.idx], f.plane.gIm[f.idx])
}

// LongTerm returns the instantaneous log-normal local mean amplitude c_l.
func (f *Fading) LongTerm() float64 { return f.plane.longTermAt(f.idx) }

// LongTermDB returns the local mean in amplitude dB.
func (f *Fading) LongTermDB() float64 { return f.plane.shadowDB[f.idx] }

// Amplitude returns the combined fading amplitude c = c_l·c_s. The value is
// memoized per step: it can only change on Advance, and the MAC queries it
// several times per frame.
func (f *Fading) Amplitude() float64 { return f.plane.amplitudeAt(f.idx) }

// Gain returns the combined power gain c².
func (f *Fading) Gain() float64 {
	a := f.Amplitude()
	return a * a
}

// Estimate is a pilot-based CSI measurement: the amplitude the base station
// inferred plus the time it was taken. CHARISMA treats an estimate as valid
// for two frames (§4.4) and refreshes stale ones through the CSI-polling
// subframe.
type Estimate struct {
	Amp float64
	At  sim.Time
}

// Age returns how old the estimate is at time now.
func (e Estimate) Age(now sim.Time) sim.Time { return now - e.At }

// MeasureEstimate produces a noisy pilot-symbol estimate of the current
// amplitude. The noise stream belongs to the *observer* (the MAC), never to
// the fading process itself, so taking extra measurements cannot perturb
// the channel sample path.
func (f *Fading) MeasureEstimate(noiseStd float64, observer *rng.Stream, now sim.Time) Estimate {
	return noisy(f.Amplitude(), noiseStd, observer, now)
}

// MeasureEstimateDelayed is MeasureEstimate for closed-loop (feedback)
// adaptation: the transmitter only knows the channel as it was one frame
// ago, when the receiver's estimate travelled back over the low-capacity
// feedback channel (paper Fig. 6). Base-station-side pilot measurements
// (CHARISMA's request and polling pilots) do not pay this lag — the core of
// the MAC/PHY synergy the paper argues for.
func (f *Fading) MeasureEstimateDelayed(noiseStd float64, observer *rng.Stream, now sim.Time) Estimate {
	return noisy(f.plane.prevAmplitudeAt(f.idx), noiseStd, observer, now)
}

func noisy(amp, noiseStd float64, observer *rng.Stream, now sim.Time) Estimate {
	if noiseStd > 0 {
		amp *= 1 + observer.Normal(0, noiseStd)
		if amp < 0 {
			amp = 0
		}
	}
	return Estimate{Amp: amp, At: now}
}

// slabChunk is the per-plane capacity of a Slab: big enough that a
// typical cell fits in one or two chunks, small enough that a mostly-idle
// slab wastes little.
const slabChunk = 64

// Slab hands out standalone per-user fading processes backed by chunked
// shared planes, so materializing a station costs one initUser over
// pre-allocated slab rows instead of the ~18 slice allocations of a
// private single-user plane. Reset rewinds the slab for the next
// replication: every chunk's rows are handed out again from the start,
// re-seeded by New with that user's own stream (initUser overwrites all
// live state and invalidates every per-step memo), so a reused row is
// indistinguishable from a fresh one. Interned coefficient classes
// survive a Reset deliberately — they are keyed by Params equality and
// their memoized step coefficients are pure functions of (Params, dt).
//
// Slab planes are never bank-advanced; each view advances individually
// (the MAC's lazy per-station replay), exactly like a NewFading process.
type Slab struct {
	planes []*plane
	cur    int // chunk currently being filled
	used   int // rows handed out of the current chunk
}

// NewSlab returns an empty slab.
func NewSlab() *Slab { return &Slab{} }

// New hands out the next fading process, initialized at its stationary
// distribution with exactly the draws NewFading makes (same stream, same
// order — byte-identity contract). The returned pointer is stable for
// the life of the slab; after a Reset the same rows are re-issued to the
// next replication's users in materialization order.
func (s *Slab) New(p Params, stream *rng.Stream) *Fading {
	if s.cur == len(s.planes) {
		s.planes = append(s.planes, newPlane(slabChunk))
	}
	pl := s.planes[s.cur]
	i := s.used
	pl.initUser(i, p, stream)
	s.used++
	if s.used == slabChunk {
		s.cur++
		s.used = 0
	}
	return &pl.views[i]
}

// Reset rewinds the slab so every row can be handed out again.
func (s *Slab) Reset() { s.cur, s.used = 0, 0 }

// Obs sums the lazy-replay counters of every chunk plane the slab has
// allocated. Read at a quiescent point only.
func (s *Slab) Obs() obs.SimCounters {
	var sum obs.SimCounters
	for _, pl := range s.planes {
		sum.Add(&pl.ctr)
	}
	return sum
}

// Bank is the collection of independent per-user fading processes for a
// cell, backed by one shared fading plane.
type Bank struct {
	pl *plane
}

// NewBank creates n independent fading processes. Each user's stream is
// derived from (seed, "chan", id), so user k's channel realization does not
// depend on how many other users exist or which protocol runs — the exact
// common-platform property the paper's comparison relies on.
func NewBank(n int, p Params, seed int64) *Bank {
	return NewBankFunc(n, func(i int) (Params, *rng.Stream) {
		return p, rng.DeriveIndexed(seed, "chan", i)
	})
}

// NewBankWithSpeeds creates a bank whose users have individual speeds (used
// by the §5.3.3 mobility-sensitivity experiment). Users sharing a speed
// share one coefficient class on the plane.
func NewBankWithSpeeds(speedsKmh []float64, base Params, seed int64) *Bank {
	return NewBankFunc(len(speedsKmh), func(i int) (Params, *rng.Stream) {
		p := base
		p.SpeedKmh = speedsKmh[i]
		p.DopplerHz = 0
		return p, rng.DeriveIndexed(seed, "chan", i)
	})
}

// NewBankFunc creates a bank whose user i takes its parameters and private
// stream from fn — the generic constructor behind NewBank and the
// multicell per-cell clone banks, which need per-(cell,user) stream
// derivations while still sharing one backing plane per cell.
func NewBankFunc(n int, fn func(i int) (Params, *rng.Stream)) *Bank {
	pl := newPlane(n)
	for i := 0; i < n; i++ {
		p, stream := fn(i)
		pl.initUser(i, p, stream)
	}
	return &Bank{pl: pl}
}

// Size returns the number of users.
func (b *Bank) Size() int { return len(b.pl.views) }

// Classes returns the number of distinct coefficient classes the bank's
// users fall into (1 unless per-user parameters differ).
func (b *Bank) Classes() int { return len(b.pl.classes) }

// User returns user i's fading process view. The returned pointer is
// stable for the life of the bank.
func (b *Bank) User(i int) *Fading { return &b.pl.views[i] }

// Advance steps every user's channel by dt in one batch over the plane.
func (b *Bank) Advance(dt sim.Time) { b.pl.advanceAll(dt) }

// Obs returns the bank's plane-level lazy-replay counters. Read only
// from the goroutine driving the bank's cell, or after it has quiesced.
func (b *Bank) Obs() *obs.SimCounters { return &b.pl.ctr }

// TracePoint is one sample of a recorded fading trace (Fig. 5 style).
type TracePoint struct {
	T        sim.Time
	AmpDB    float64
	ShadowDB float64
}

// Trace generates a fading trace of n samples spaced dt apart — the
// regenerator for the paper's Fig. 5 ("a sample of channel fading with fast
// fading superimposed on long-term shadowing").
func Trace(p Params, seed int64, dt sim.Time, n int) []TracePoint {
	f := NewFading(p, rng.Derive(seed, "trace"))
	out := make([]TracePoint, 0, n)
	for i := 0; i < n; i++ {
		f.Advance(dt)
		out = append(out, TracePoint{
			T:        sim.Time(i) * dt,
			AmpDB:    mathx.AmpLinearToDB(f.Amplitude()),
			ShadowDB: f.LongTermDB(),
		})
	}
	return out
}
