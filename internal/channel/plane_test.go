package channel

import (
	"math"
	"testing"

	"charisma/internal/mathx"
	"charisma/internal/rng"
	"charisma/internal/sim"
)

// scalarRef is an independent re-implementation of the original
// one-object-per-user fading process, kept as the executable specification
// the SoA plane must match bit-for-bit: same draws, same order, same
// arithmetic expressions.
type scalarRef struct {
	p        Params
	rnd      *rng.Stream
	gRe, gIm float64
	shadowDB float64
	prevAmp  float64
}

func newScalarRef(p Params, stream *rng.Stream) *scalarRef {
	f := &scalarRef{p: p, rnd: stream}
	f.gRe, f.gIm = stream.ComplexGaussian()
	f.shadowDB = stream.Normal(p.ShadowMeanDB, p.ShadowSigmaDB)
	f.prevAmp = f.amplitude()
	return f
}

func (f *scalarRef) amplitude() float64 {
	return mathx.AmpDBToLinear(f.shadowDB) * math.Hypot(f.gRe, f.gIm)
}

func (f *scalarRef) advance(dt sim.Time) {
	f.prevAmp = f.amplitude()
	sec := dt.Seconds()
	rhoS := mathx.ExpCorrelation(f.p.CoherenceTime(), sec)
	rhoL := mathx.ExpCorrelation(f.p.ShadowCoherenceSec, sec)
	wRe, wIm := f.rnd.ComplexGaussian()
	innov := math.Sqrt(1 - rhoS*rhoS)
	f.gRe = rhoS*f.gRe + innov*wRe
	f.gIm = rhoS*f.gIm + innov*wIm
	w := f.rnd.Normal(0, 1)
	f.shadowDB = f.p.ShadowMeanDB +
		rhoL*(f.shadowDB-f.p.ShadowMeanDB) +
		math.Sqrt(1-rhoL*rhoL)*f.p.ShadowSigmaDB*w
}

// TestPlaneMatchesScalarReference drives a plane-backed Fading and the
// scalar specification through a mixed schedule of step sizes (standard
// frames interleaved with RMAV-style variable frames) and demands bitwise
// equality of every observable at every step.
func TestPlaneMatchesScalarReference(t *testing.T) {
	for _, speed := range []float64{10, 50, 120} {
		p := DefaultParams()
		p.SpeedKmh = speed
		f := NewFading(p, rng.Derive(11, "ref"))
		r := newScalarRef(p, rng.Derive(11, "ref"))
		dts := []sim.Time{800, 800, 1040, 800, 640, 800, 800, 800, 1040, 800}
		for i := 0; i < 500; i++ {
			dt := dts[i%len(dts)]
			f.Advance(dt)
			r.advance(dt)
			if f.Amplitude() != r.amplitude() {
				t.Fatalf("speed %v step %d: amplitude %x != scalar %x",
					speed, i, math.Float64bits(f.Amplitude()), math.Float64bits(r.amplitude()))
			}
			if f.LongTermDB() != r.shadowDB {
				t.Fatalf("speed %v step %d: shadow diverged", speed, i)
			}
			if got := f.MeasureEstimateDelayed(0, rng.New(1), 0).Amp; got != r.prevAmp {
				t.Fatalf("speed %v step %d: prev amplitude %x != scalar %x",
					speed, i, math.Float64bits(got), math.Float64bits(r.prevAmp))
			}
			// Repeated queries of the memoized values must be stable.
			if f.Amplitude() != f.Amplitude() {
				t.Fatalf("speed %v step %d: memoized amplitude unstable", speed, i)
			}
			if f.LongTerm() != mathx.AmpDBToLinear(r.shadowDB) {
				t.Fatalf("speed %v step %d: local mean diverged", speed, i)
			}
		}
	}
}

// TestAdvanceStepsMatchesRepeatedAdvance pins the batched lazy-replay
// catch-up: n AdvanceSteps of equal dt are byte-identical to n Advances,
// including the delayed-estimate state.
func TestAdvanceStepsMatchesRepeatedAdvance(t *testing.T) {
	for _, n := range []int{1, 2, 7, 400} {
		a := NewFading(DefaultParams(), rng.Derive(5, "steps"))
		b := NewFading(DefaultParams(), rng.Derive(5, "steps"))
		// Desynchronize the memo caches first: query a, not b.
		a.Advance(frameDur)
		b.Advance(frameDur)
		_ = a.Amplitude()
		a.AdvanceSteps(frameDur, n)
		for i := 0; i < n; i++ {
			b.Advance(frameDur)
		}
		if a.Amplitude() != b.Amplitude() {
			t.Fatalf("n=%d: batched catch-up diverged from stepwise", n)
		}
		da := a.MeasureEstimateDelayed(0, rng.New(1), 0).Amp
		db := b.MeasureEstimateDelayed(0, rng.New(1), 0).Amp
		if da != db {
			t.Fatalf("n=%d: delayed estimate %v != %v after catch-up", n, da, db)
		}
		if a.ShortTerm() != b.ShortTerm() || a.LongTerm() != b.LongTerm() {
			t.Fatalf("n=%d: components diverged", n)
		}
	}
}

// TestAdvanceStepsZeroAndNegative pins the no-op and panic edges.
func TestAdvanceStepsZeroAndNegative(t *testing.T) {
	f := NewFading(DefaultParams(), rng.Derive(6, "steps"))
	f.Advance(frameDur)
	before := f.Amplitude()
	f.AdvanceSteps(frameDur, 0)
	f.AdvanceSteps(frameDur, -3)
	if f.Amplitude() != before {
		t.Fatal("non-positive step counts must not move the channel")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative dt did not panic")
		}
	}()
	f.AdvanceSteps(-1, 2)
}

// TestBankWithSpeedsDeterminismAndClasses covers the mixed-speed plane:
// construction is deterministic, users sharing a speed share a coefficient
// class, and every user's path matches its scalar reference.
func TestBankWithSpeedsDeterminism(t *testing.T) {
	speeds := []float64{10, 80, 50, 80, 10, 120, 50}
	b1 := NewBankWithSpeeds(speeds, DefaultParams(), 3)
	b2 := NewBankWithSpeeds(speeds, DefaultParams(), 3)
	if got, want := b1.Classes(), 4; got != want {
		t.Fatalf("coefficient classes = %d, want %d (distinct speeds)", got, want)
	}
	refs := make([]*scalarRef, len(speeds))
	for u := range speeds {
		p := DefaultParams()
		p.SpeedKmh = speeds[u]
		refs[u] = newScalarRef(p, rng.DeriveIndexed(3, "chan", u))
	}
	for i := 0; i < 100; i++ {
		b1.Advance(frameDur)
		b2.Advance(frameDur)
		for u := range speeds {
			refs[u].advance(frameDur)
		}
	}
	for u := range speeds {
		if b1.User(u).Amplitude() != b2.User(u).Amplitude() {
			t.Fatalf("user %d: same-seed banks diverged", u)
		}
		if b1.User(u).Amplitude() != refs[u].amplitude() {
			t.Fatalf("user %d: mixed-speed plane diverged from scalar reference", u)
		}
		if b1.User(u).Params().SpeedKmh != speeds[u] {
			t.Fatalf("user %d: per-user speed not applied", u)
		}
	}
}

// TestBankFuncPerUserParams covers the generic constructor multicell uses.
func TestBankFuncPerUserParams(t *testing.T) {
	b := NewBankFunc(3, func(i int) (Params, *rng.Stream) {
		p := DefaultParams()
		p.ShadowSigmaDB = float64(2 + i)
		return p, rng.DeriveIndexed(99, "mc-chan", 1, i)
	})
	if b.Size() != 3 || b.Classes() != 3 {
		t.Fatalf("size=%d classes=%d", b.Size(), b.Classes())
	}
	// User i must match a standalone process on the identical stream.
	for i := 0; i < 3; i++ {
		p := DefaultParams()
		p.ShadowSigmaDB = float64(2 + i)
		ref := NewFading(p, rng.DeriveIndexed(99, "mc-chan", 1, i))
		b.User(i).Advance(frameDur)
		ref.Advance(frameDur)
		if b.User(i).Amplitude() != ref.Amplitude() {
			t.Fatalf("user %d diverged from standalone process", i)
		}
	}
}

// TestBankFrameHotPathAllocs is the channel-plane analogue of the mac
// registry's frame-allocs guard: advancing a bank, querying amplitudes,
// and replaying deferred steps must all be allocation-free. CI runs it as
// a regression gate.
func TestBankFrameHotPathAllocs(t *testing.T) {
	bank := NewBank(256, DefaultParams(), 1)
	if n := testing.AllocsPerRun(100, func() { bank.Advance(frameDur) }); n != 0 {
		t.Fatalf("Bank.Advance allocates %v per frame, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		for u := 0; u < bank.Size(); u++ {
			benchSink += bank.User(u).Amplitude()
		}
	}); n != 0 {
		t.Fatalf("amplitude queries allocate %v per sweep, want 0", n)
	}
	f := bank.User(0)
	if n := testing.AllocsPerRun(100, func() { f.AdvanceSteps(frameDur, 16) }); n != 0 {
		t.Fatalf("AdvanceSteps allocates %v per catch-up, want 0", n)
	}
	obs := rng.New(7)
	if n := testing.AllocsPerRun(100, func() {
		benchSink += f.MeasureEstimate(0.05, obs, 0).Amp
	}); n != 0 {
		t.Fatalf("MeasureEstimate allocates %v per call, want 0", n)
	}
}

var benchSink float64
