package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"charisma/internal/rng"
	"charisma/internal/sim"
)

const frameDur = sim.Time(800)

func newVoice(seed int64) *VoiceSource {
	return NewVoice(DefaultVoiceParams(), rng.Derive(seed, "v"), 0)
}

func newData(seed int64) *DataSource {
	return NewData(DefaultDataParams(), rng.Derive(seed, "d"), 0)
}

func TestVoiceParams(t *testing.T) {
	p := DefaultVoiceParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Activity factor 1.0/(1.0+1.35) ~ 0.4255 (Table 1 / [10]).
	if af := p.ActivityFactor(); math.Abs(af-1.0/2.35) > 1e-12 {
		t.Fatalf("activity factor = %v", af)
	}
	if p.Period != 20*sim.Millisecond || p.Deadline != 20*sim.Millisecond {
		t.Fatal("voice period/deadline not 20 ms")
	}
}

func TestVoiceParamsValidate(t *testing.T) {
	p := DefaultVoiceParams()
	p.MeanTalkSec = 0
	if p.Validate() == nil {
		t.Fatal("zero talk mean accepted")
	}
	p = DefaultVoiceParams()
	p.Period = 0
	if p.Validate() == nil {
		t.Fatal("zero period accepted")
	}
}

// Long-run fraction of time in talkspurt must match the stationary
// activity factor.
func TestVoiceActivityFactorEmpirical(t *testing.T) {
	talkFrames, total := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		v := newVoice(seed)
		for f := 0; f < 40000; f++ {
			now := sim.Time(f) * frameDur
			v.Advance(now)
			if v.Talking() {
				talkFrames++
			}
			total++
			v.DropExpired(now) // keep the buffer from growing unboundedly
		}
	}
	af := float64(talkFrames) / float64(total)
	if math.Abs(af-1.0/2.35) > 0.02 {
		t.Fatalf("empirical activity factor = %v, want %v", af, 1.0/2.35)
	}
}

// During talkspurts the 8 kbps codec generates exactly one packet per 20 ms.
func TestVoicePacketRate(t *testing.T) {
	v := newVoice(3)
	const frames = 200000
	for f := 0; f < frames; f++ {
		now := sim.Time(f) * frameDur
		v.Advance(now)
		v.DropExpired(now + v.p.Deadline) // drain
	}
	simSeconds := (sim.Time(frames) * frameDur).Seconds()
	rate := float64(v.Generated()) / simSeconds
	want := 50.0 / 2.35 // 50 packets/s while talking, 42.5% of the time
	if math.Abs(rate-want)/want > 0.1 {
		t.Fatalf("packet rate = %v/s, want ~%v/s", rate, want)
	}
}

func TestVoicePacketDeadlineStamping(t *testing.T) {
	v := newVoice(4)
	for f := 0; f < 10000; f++ {
		now := sim.Time(f) * frameDur
		v.Advance(now)
		for v.Buffered() > 0 {
			pkt, _ := v.Pop()
			if pkt.Deadline-pkt.Born != v.p.Deadline {
				t.Fatalf("deadline span = %v, want %v", pkt.Deadline-pkt.Born, v.p.Deadline)
			}
			if pkt.Born > now {
				t.Fatal("packet born in the future")
			}
		}
	}
}

func TestVoiceDropExpired(t *testing.T) {
	v := newVoice(5)
	// Run until a packet exists.
	var now sim.Time
	for f := 0; v.Buffered() == 0 && f < 100000; f++ {
		now = sim.Time(f) * frameDur
		v.Advance(now)
	}
	if v.Buffered() == 0 {
		t.Fatal("no packet generated")
	}
	pkt, _ := v.Oldest()
	if n := v.DropExpired(pkt.Deadline - 1); n != 0 {
		t.Fatal("dropped before deadline")
	}
	if n := v.DropExpired(pkt.Deadline); n == 0 {
		t.Fatal("did not drop at deadline")
	}
	if v.Dropped() == 0 {
		t.Fatal("dropped counter not incremented")
	}
}

func TestVoicePopFIFO(t *testing.T) {
	v := newVoice(6)
	// Accumulate a few packets without draining.
	var collected []VoicePacket
	for f := 0; f < 100000 && len(collected) < 3; f++ {
		now := sim.Time(f) * frameDur
		v.Advance(now)
		if v.Buffered() >= 2 {
			for v.Buffered() > 0 {
				p, _ := v.Pop()
				collected = append(collected, p)
			}
		}
	}
	for i := 1; i < len(collected); i++ {
		if collected[i].Born < collected[i-1].Born {
			t.Fatal("voice buffer not FIFO")
		}
	}
}

func TestVoicePopEmpty(t *testing.T) {
	v := newVoice(7)
	if _, ok := v.Pop(); ok {
		t.Fatal("Pop on empty buffer returned a packet")
	}
	if _, ok := v.Oldest(); ok {
		t.Fatal("Oldest on empty buffer returned a packet")
	}
}

// Conservation: generated = popped + dropped + still buffered.
func TestVoiceConservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		v := newVoice(seed)
		popped := uint64(0)
		for f := 0; f < 20000; f++ {
			now := sim.Time(f) * frameDur
			v.Advance(now)
			v.DropExpired(now)
			if f%3 == 0 && v.Buffered() > 0 {
				v.Pop()
				popped++
			}
		}
		return v.Generated() == popped+v.Dropped()+uint64(v.Buffered())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestVoiceAdvanceIdempotentAtSameTime(t *testing.T) {
	v := newVoice(8)
	for f := 0; f < 1000; f++ {
		now := sim.Time(f) * frameDur
		v.Advance(now)
		if v.Advance(now) != 0 {
			t.Fatal("second Advance at same time generated packets")
		}
	}
}

func TestDataParams(t *testing.T) {
	p := DefaultDataParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// 100 packets per second offered per data user (Table 1).
	if got := p.OfferedPacketsPerSecond(); math.Abs(got-100) > 1e-12 {
		t.Fatalf("offered load = %v", got)
	}
	p.MeanInterarrivalSec = 0
	if p.Validate() == nil {
		t.Fatal("zero inter-arrival accepted")
	}
	p = DefaultDataParams()
	p.MeanBurstPackets = 0.5
	if p.Validate() == nil {
		t.Fatal("sub-packet burst mean accepted")
	}
}

func TestDataArrivalRate(t *testing.T) {
	d := newData(1)
	const frames = 400000 // 1000 s
	for f := 0; f < frames; f++ {
		now := sim.Time(f) * frameDur
		d.Advance(now)
		// Drain everything so the queue does not blow up.
		d.TransmitAttempts(d.Backlog(), now, func() bool { return true }, func(sim.Time) {})
	}
	simSeconds := (sim.Time(frames) * frameDur).Seconds()
	rate := float64(d.Generated()) / simSeconds
	if math.Abs(rate-100)/100 > 0.1 {
		t.Fatalf("data arrival rate = %v pkt/s, want ~100", rate)
	}
}

func TestDataTransmitDelaysMeasuredFromBirth(t *testing.T) {
	d := newData(2)
	var now sim.Time
	for f := 0; d.Backlog() == 0; f++ {
		now = sim.Time(f) * frameDur
		d.Advance(now)
	}
	born, _ := d.OldestBorn()
	txAt := now + 10*frameDur
	var got []sim.Time
	d.TransmitAttempts(1, txAt, func() bool { return true }, func(delay sim.Time) {
		got = append(got, delay)
	})
	if len(got) != 1 {
		t.Fatalf("%d delays recorded", len(got))
	}
	if got[0] != txAt-born {
		t.Fatalf("delay = %v, want %v", got[0], txAt-born)
	}
}

func TestDataFailedPacketsStayQueued(t *testing.T) {
	d := newData(3)
	var now sim.Time
	for f := 0; d.Backlog() == 0; f++ {
		now = sim.Time(f) * frameDur
		d.Advance(now)
	}
	before := d.Backlog()
	ok, failed := d.TransmitAttempts(before, now, func() bool { return false }, func(sim.Time) {
		t.Fatal("success callback on failure")
	})
	if ok != 0 || failed != before {
		t.Fatalf("ok=%d failed=%d, want 0/%d", ok, failed, before)
	}
	if d.Backlog() != before {
		t.Fatal("failed packets left the queue (ARQ broken)")
	}
}

func TestDataPartialSuccess(t *testing.T) {
	d := newData(4)
	var now sim.Time
	for f := 0; d.Backlog() < 4; f++ {
		now = sim.Time(f) * frameDur
		d.Advance(now)
	}
	before := d.Backlog()
	flip := false
	ok, failed := d.TransmitAttempts(4, now, func() bool { flip = !flip; return flip }, func(sim.Time) {})
	if ok+failed != 4 {
		t.Fatalf("attempts = %d, want 4", ok+failed)
	}
	if d.Backlog() != before-ok {
		t.Fatalf("backlog = %d, want %d", d.Backlog(), before-ok)
	}
}

func TestDataTransmitMoreThanBacklog(t *testing.T) {
	d := newData(5)
	var now sim.Time
	for f := 0; d.Backlog() == 0; f++ {
		now = sim.Time(f) * frameDur
		d.Advance(now)
	}
	n := d.Backlog()
	ok, failed := d.TransmitAttempts(n+1000, now, func() bool { return true }, func(sim.Time) {})
	if ok+failed != n {
		t.Fatalf("attempted %d, want %d (clamped to backlog)", ok+failed, n)
	}
	if d.Backlog() != 0 {
		t.Fatal("backlog not drained")
	}
}

// Conservation: generated = delivered + still backlogged.
func TestDataConservationProperty(t *testing.T) {
	prop := func(seed int64, successMod uint8) bool {
		d := newData(seed)
		mod := int(successMod%5) + 1
		delivered := 0
		calls := 0
		for f := 0; f < 20000; f++ {
			now := sim.Time(f) * frameDur
			d.Advance(now)
			n := d.Backlog()
			if n > 7 {
				n = 7
			}
			ok, _ := d.TransmitAttempts(n, now, func() bool {
				calls++
				return calls%mod != 0
			}, func(sim.Time) {})
			delivered += ok
		}
		return d.Generated() == uint64(delivered+d.Backlog())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDataOldestBornEmpty(t *testing.T) {
	d := newData(6)
	if _, ok := d.OldestBorn(); ok {
		t.Fatal("OldestBorn on empty queue returned a value")
	}
}

func TestDataBurstSizesPositive(t *testing.T) {
	d := newData(7)
	for f := 0; f < 100000; f++ {
		now := sim.Time(f) * frameDur
		gen := d.Advance(now)
		if gen < 0 {
			t.Fatal("negative generation")
		}
		d.TransmitAttempts(d.Backlog(), now, func() bool { return true }, func(sim.Time) {})
	}
	if d.Generated() == 0 {
		t.Fatal("no data generated in 250 s")
	}
}

func TestDataDelayNonNegative(t *testing.T) {
	d := newData(8)
	for f := 0; f < 50000; f++ {
		now := sim.Time(f) * frameDur
		d.Advance(now)
		d.TransmitAttempts(d.Backlog(), now, func() bool { return true }, func(delay sim.Time) {
			if delay < 0 {
				t.Fatal("negative delay")
			}
		})
	}
}

// TestProbesMatchConstructors pins the birth probes to the constructors
// they shadow: probing a stream must land on exactly the first event time
// (and stream position) that building the source would have produced, for
// both the talking and silent voice branches. The lazy population arms
// deferred stations from these probes, so any drift here would break the
// byte-identity of lazy versus eager builds.
func TestProbesMatchConstructors(t *testing.T) {
	vp := DefaultVoiceParams()
	dp := DefaultDataParams()
	for seed := int64(0); seed < 200; seed++ {
		for _, now := range []sim.Time{0, 123456} {
			if got, want := ProbeVoiceBirth(vp, rng.Derive(seed, "p"), now),
				NewVoice(vp, rng.Derive(seed, "p"), now).NextEventAt(); got != want {
				t.Fatalf("seed %d now %d: voice probe %d, constructor %d", seed, now, got, want)
			}
			if got, want := ProbeDataBirth(dp, rng.Derive(seed, "p"), now),
				NewData(dp, rng.Derive(seed, "p"), now).NextArrivalAt(); got != want {
				t.Fatalf("seed %d now %d: data probe %d, constructor %d", seed, now, got, want)
			}
		}
	}
}
