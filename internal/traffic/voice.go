// Package traffic implements the paper's source models (§2):
//
//   - Voice: a source toggling between talkspurt and silence states with
//     exponentially distributed durations (means t̄t = 1.0 s and
//     t̄s = 1.35 s, from Gruber & Strawczynski's empirical study [10]).
//     During a talkspurt the 8 kbps codec emits one 160-bit packet every
//     20 ms; each packet carries a deadline 20 ms after generation and is
//     dropped, unsent, if the deadline expires first.
//
//   - Data: file transfers arriving as a Poisson process (exponential
//     inter-arrival, mean 1 s) with exponentially distributed burst sizes
//     (mean 100 packets). Data packets are delay-insensitive: they are
//     never dropped by the source, and corrupted transmissions are
//     retransmitted by the data link layer, so channel errors convert into
//     extra queueing delay.
//
// Sources realize their stochastic timeline lazily at frame boundaries
// (the paper: "we assume a talkspurt and a silence period start only at a
// frame boundary" / "packets arrive at a frame boundary"), which also
// supports the variable-length frames of the RMAV protocol.
package traffic

import (
	"fmt"

	"charisma/internal/rng"
	"charisma/internal/sim"
)

// VoiceParams configures a voice source.
type VoiceParams struct {
	// MeanTalkSec and MeanSilenceSec are the exponential state-duration
	// means (Table 1: 1.0 s and 1.35 s).
	MeanTalkSec    float64
	MeanSilenceSec float64
	// Period is the packet generation interval (20 ms).
	Period sim.Time
	// Deadline is the packet lifetime after generation (20 ms, §5.1
	// footnote 4).
	Deadline sim.Time
}

// DefaultVoiceParams returns the paper's Table 1 voice model.
func DefaultVoiceParams() VoiceParams {
	return VoiceParams{
		MeanTalkSec:    1.0,
		MeanSilenceSec: 1.35,
		Period:         20 * sim.Millisecond,
		Deadline:       20 * sim.Millisecond,
	}
}

// ActivityFactor returns the stationary probability of being in a
// talkspurt, t̄t/(t̄t+t̄s) ≈ 0.426 for the defaults.
func (p VoiceParams) ActivityFactor() float64 {
	return p.MeanTalkSec / (p.MeanTalkSec + p.MeanSilenceSec)
}

// Validate reports configuration errors.
func (p VoiceParams) Validate() error {
	if p.MeanTalkSec <= 0 || p.MeanSilenceSec <= 0 {
		return fmt.Errorf("traffic: non-positive voice state means %v/%v", p.MeanTalkSec, p.MeanSilenceSec)
	}
	if p.Period <= 0 || p.Deadline <= 0 {
		return fmt.Errorf("traffic: non-positive voice period/deadline")
	}
	return nil
}

// VoicePacket is one speech packet waiting in the mobile device's buffer.
type VoicePacket struct {
	Born     sim.Time
	Deadline sim.Time
}

// VoiceSource is the talkspurt/silence on-off speech model.
type VoiceSource struct {
	p   VoiceParams
	rnd *rng.Stream

	talking  bool
	stateEnd sim.Time
	nextPkt  sim.Time

	buf  []VoicePacket
	head int

	generated uint64
	dropped   uint64
}

// NewVoice creates a voice source whose initial state is drawn from the
// stationary distribution, so measurements need no per-source warm-up for
// the on-off process itself.
func NewVoice(p VoiceParams, stream *rng.Stream, now sim.Time) *VoiceSource {
	v := &VoiceSource{}
	v.Reset(p, stream, now)
	return v
}

// Reset re-initializes v in place exactly as NewVoice would — same
// draws, same order, same initial state — while reusing the packet
// buffer's capacity. The slab-allocated population path (internal/core's
// replication arena) rebuilds each station's source into the previous
// replication's memory with this.
func (v *VoiceSource) Reset(p VoiceParams, stream *rng.Stream, now sim.Time) {
	*v = VoiceSource{p: p, rnd: stream, buf: v.buf[:0]}
	v.talking = stream.Bernoulli(p.ActivityFactor())
	if v.talking {
		v.stateEnd = now + sim.FromSeconds(stream.Exp(p.MeanTalkSec))
		v.nextPkt = now
	} else {
		v.stateEnd = now + sim.FromSeconds(stream.Exp(p.MeanSilenceSec))
	}
}

// Params returns the source configuration.
func (v *VoiceSource) Params() VoiceParams { return v.p }

// Talking reports whether the source is currently in a talkspurt.
func (v *VoiceSource) Talking() bool { return v.talking }

// Advance realizes all state toggles and packet generations scheduled up to
// and including now, returning how many packets were generated. Packets are
// stamped with their scheduled generation time (not the observation time),
// so deadlines are exact even across long variable frames.
func (v *VoiceSource) Advance(now sim.Time) int {
	gen := 0
	for {
		if v.talking && v.nextPkt < v.stateEnd {
			// Next event is either a packet or the talkspurt end,
			// whichever is earlier; packets win ties below stateEnd.
			if v.nextPkt > now {
				return gen
			}
			v.buf = append(v.buf, VoicePacket{Born: v.nextPkt, Deadline: v.nextPkt + v.p.Deadline})
			v.generated++
			gen++
			v.nextPkt += v.p.Period
			continue
		}
		if v.stateEnd > now {
			return gen
		}
		at := v.stateEnd
		v.talking = !v.talking
		if v.talking {
			v.stateEnd = at + sim.FromSeconds(v.rnd.Exp(v.p.MeanTalkSec))
			v.nextPkt = at
		} else {
			v.stateEnd = at + sim.FromSeconds(v.rnd.Exp(v.p.MeanSilenceSec))
		}
	}
}

// NextEventAt returns the time of the source's next scheduled event — a
// packet generation or a talk/silence toggle. Advance(t) is a no-op for
// every t before it, which is what lets an idle station sleep in the MAC's
// wake queue instead of being advanced every frame.
func (v *VoiceSource) NextEventAt() sim.Time {
	if v.talking && v.nextPkt < v.stateEnd {
		return v.nextPkt
	}
	return v.stateEnd
}

// Buffered returns the number of packets awaiting transmission.
func (v *VoiceSource) Buffered() int { return len(v.buf) - v.head }

// Oldest returns the oldest buffered packet without removing it.
func (v *VoiceSource) Oldest() (VoicePacket, bool) {
	if v.Buffered() == 0 {
		return VoicePacket{}, false
	}
	return v.buf[v.head], true
}

// Pop removes and returns the oldest buffered packet.
func (v *VoiceSource) Pop() (VoicePacket, bool) {
	if v.Buffered() == 0 {
		return VoicePacket{}, false
	}
	pkt := v.buf[v.head]
	v.head++
	v.compact()
	return pkt, true
}

// DropExpired discards packets whose deadline is at or before now,
// returning how many were dropped — the "packet dropping" component of the
// paper's voice loss rate.
func (v *VoiceSource) DropExpired(now sim.Time) int {
	n := 0
	for v.Buffered() > 0 && v.buf[v.head].Deadline <= now {
		v.head++
		n++
	}
	v.dropped += uint64(n)
	v.compact()
	return n
}

func (v *VoiceSource) compact() {
	if v.head == len(v.buf) {
		v.buf = v.buf[:0]
		v.head = 0
	} else if v.head > 64 && v.head > len(v.buf)/2 {
		v.buf = append(v.buf[:0], v.buf[v.head:]...)
		v.head = 0
	}
}

// Generated returns the lifetime count of generated packets.
func (v *VoiceSource) Generated() uint64 { return v.generated }

// Dropped returns the lifetime count of deadline-dropped packets.
func (v *VoiceSource) Dropped() uint64 { return v.dropped }
