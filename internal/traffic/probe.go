package traffic

import (
	"charisma/internal/rng"
	"charisma/internal/sim"
)

// Birth probes: compute a would-be source's first event time without
// constructing the source. They must consume the stream exactly as the
// corresponding constructor's first-event computation would — each probe is
// pinned against its constructor by TestProbesMatchConstructors — so a lazy
// population can arm a deferred station's first wake from a throwaway
// probe stream and later materialize the real source from a fresh stream
// with the same seed, reproducing the eager build byte for byte.

// ProbeVoiceBirth returns NewVoice(p, stream, now).NextEventAt() without
// building the source. A source born talking emits its first packet at now
// (NewVoice sets nextPkt = now); one born silent sleeps until the silence
// period ends.
func ProbeVoiceBirth(p VoiceParams, stream *rng.Stream, now sim.Time) sim.Time {
	if stream.Bernoulli(p.ActivityFactor()) {
		return now
	}
	return now + sim.FromSeconds(stream.Exp(p.MeanSilenceSec))
}

// ProbeDataBirth returns NewData(p, stream, now).NextArrivalAt() without
// building the source.
func ProbeDataBirth(p DataParams, stream *rng.Stream, now sim.Time) sim.Time {
	return now + sim.FromSeconds(stream.Exp(p.MeanInterarrivalSec))
}
