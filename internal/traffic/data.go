package traffic

import (
	"fmt"

	"charisma/internal/rng"
	"charisma/internal/sim"
)

// DataParams configures a data (file transfer) source.
type DataParams struct {
	// MeanInterarrivalSec is the exponential mean between file arrivals
	// (Table 1: 1 s).
	MeanInterarrivalSec float64
	// MeanBurstPackets is the exponential mean file size in packets
	// (Table 1: 100).
	MeanBurstPackets float64
}

// DefaultDataParams returns the paper's Table 1 data model.
func DefaultDataParams() DataParams {
	return DataParams{MeanInterarrivalSec: 1.0, MeanBurstPackets: 100}
}

// Validate reports configuration errors.
func (p DataParams) Validate() error {
	if p.MeanInterarrivalSec <= 0 {
		return fmt.Errorf("traffic: non-positive data inter-arrival %v", p.MeanInterarrivalSec)
	}
	if p.MeanBurstPackets < 1 {
		return fmt.Errorf("traffic: mean burst %v below one packet", p.MeanBurstPackets)
	}
	return nil
}

// OfferedPacketsPerSecond returns the long-run offered load of one source.
func (p DataParams) OfferedPacketsPerSecond() float64 {
	return p.MeanBurstPackets / p.MeanInterarrivalSec
}

// burst is a group of packets that arrived together; all share a birth time.
type burst struct {
	born sim.Time
	n    int
}

// DataSource is the Poisson bursty file-transfer model. Packets queue
// indefinitely (delay-insensitive); a transmission attempt either succeeds
// (packet leaves, its delay is the span from birth to the start of the
// successful attempt) or fails and the packet stays queued for ARQ
// retransmission.
type DataSource struct {
	p   DataParams
	rnd *rng.Stream

	nextArrival sim.Time
	bursts      []burst
	head        int
	backlog     int

	generated uint64
}

// NewData creates a data source. The first burst arrives one exponential
// inter-arrival after now.
func NewData(p DataParams, stream *rng.Stream, now sim.Time) *DataSource {
	d := &DataSource{}
	d.Reset(p, stream, now)
	return d
}

// Reset re-initializes d in place exactly as NewData would — same draw,
// same initial state — while reusing the burst queue's capacity. See
// VoiceSource.Reset.
func (d *DataSource) Reset(p DataParams, stream *rng.Stream, now sim.Time) {
	*d = DataSource{p: p, rnd: stream, bursts: d.bursts[:0]}
	d.nextArrival = now + sim.FromSeconds(stream.Exp(p.MeanInterarrivalSec))
}

// Params returns the source configuration.
func (d *DataSource) Params() DataParams { return d.p }

// Advance realizes all bursts scheduled up to and including now, returning
// the number of packets that arrived.
func (d *DataSource) Advance(now sim.Time) int {
	gen := 0
	for d.nextArrival <= now {
		n := d.rnd.ExpPositiveInt(d.p.MeanBurstPackets)
		d.bursts = append(d.bursts, burst{born: d.nextArrival, n: n})
		d.backlog += n
		d.generated += uint64(n)
		gen += n
		d.nextArrival += sim.FromSeconds(d.rnd.Exp(d.p.MeanInterarrivalSec))
	}
	return gen
}

// NextArrivalAt returns the time of the next burst arrival. Advance(t) is
// a no-op for every t before it, which is what lets a drained station sleep
// in the MAC's wake queue instead of being advanced every frame.
func (d *DataSource) NextArrivalAt() sim.Time { return d.nextArrival }

// Backlog returns the number of packets waiting (including packets whose
// previous transmission attempts failed).
func (d *DataSource) Backlog() int { return d.backlog }

// OldestBorn returns the arrival time of the head-of-line packet.
func (d *DataSource) OldestBorn() (sim.Time, bool) {
	if d.backlog == 0 {
		return 0, false
	}
	return d.bursts[d.head].born, true
}

// Generated returns the lifetime count of arrived packets.
func (d *DataSource) Generated() uint64 { return d.generated }

// TransmitAttempts attempts to transmit the n head-of-line packets at time
// txStart. For each packet, succeed decides the outcome; successful packets
// leave the queue and onSuccess receives their queueing delay (txStart −
// birth, per the paper's definition: "the average time that a data packet
// spends waiting in the buffer until the beginning of the successful
// transmission"). Failed packets remain queued in order. It returns the
// number of successes and failures.
func (d *DataSource) TransmitAttempts(n int, txStart sim.Time, succeed func() bool, onSuccess func(delay sim.Time)) (ok, failed int) {
	if n > d.backlog {
		n = d.backlog
	}
	remaining := n
	for i := d.head; remaining > 0 && i < len(d.bursts); i++ {
		b := &d.bursts[i]
		attempts := b.n
		if attempts > remaining {
			attempts = remaining
		}
		succ := 0
		for a := 0; a < attempts; a++ {
			if succeed() {
				succ++
			} else {
				failed++
			}
		}
		if succ > 0 {
			delay := txStart - b.born
			if delay < 0 {
				delay = 0
			}
			for s := 0; s < succ; s++ {
				onSuccess(delay)
			}
			b.n -= succ
			d.backlog -= succ
			ok += succ
		}
		remaining -= attempts
	}
	d.compact()
	return ok, failed
}

func (d *DataSource) compact() {
	for d.head < len(d.bursts) && d.bursts[d.head].n == 0 {
		d.head++
	}
	if d.head == len(d.bursts) {
		d.bursts = d.bursts[:0]
		d.head = 0
	} else if d.head > 64 && d.head > len(d.bursts)/2 {
		d.bursts = append(d.bursts[:0], d.bursts[d.head:]...)
		d.head = 0
	}
}
