package drma_test

import (
	"testing"

	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/mac/drma"
)

func build(t *testing.T, nv, nd int, queue bool) (*mac.System, mac.Protocol) {
	t.Helper()
	sc := core.DefaultScenario(core.ProtoDRMA)
	sc.NumVoice, sc.NumData = nv, nd
	sc.UseQueue = queue
	sys, p, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	p.Init(sys)
	return sys, p
}

func runFrames(sys *mac.System, p mac.Protocol, n int) {
	for i := 0; i < n; i++ {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
	}
}

func TestName(t *testing.T) {
	if drma.New().Name() != "drma" {
		t.Fatal("name wrong")
	}
}

func TestUsesFixedPHY(t *testing.T) {
	sys, _ := build(t, 1, 0, false)
	if sys.PHY.Adaptive() {
		t.Fatal("DRMA must run on the fixed PHY")
	}
}

func TestBudgetIsFiveSlots(t *testing.T) {
	sys, p := build(t, 10, 0, false)
	runFrames(sys, p, 100)
	want := uint64(100 * 5 * sys.Cfg.Geometry.InfoSlotSymbols)
	if got := sys.M.InfoSymbolsTotal.Total(); got != want {
		t.Fatalf("budget %d, want %d (Nk=5 slots, no request subframe)", got, want)
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	sys, p := build(t, 60, 10, true)
	runFrames(sys, p, 2000)
	if used, total := sys.M.InfoSymbolsUsed.Total(), sys.M.InfoSymbolsTotal.Total(); used > total {
		t.Fatalf("used %d of %d", used, total)
	}
}

// The defining DRMA property: contention happens only via idle-slot
// conversion, so the request load is structurally bounded and the slots
// keep carrying traffic even at overload (no thrashing, §5.1).
func TestContentionThrottledAtSaturation(t *testing.T) {
	sys, p := build(t, 200, 0, false)
	g := sys.Cfg.Geometry
	prev := uint64(0)
	for i := 0; i < 2000; i++ {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
		attempts := sys.M.ReqAttempts.Total() - prev
		// Hard structural bound: Nx minislots per converted slot, and at
		// most Nk conversions per frame.
		if attempts > uint64(g.DRMAInfoSlots*g.DRMAMinislotsPerSlot*200) {
			t.Fatalf("frame %d: %d attempts — conversion bound broken", i, attempts)
		}
		prev = sys.M.ReqAttempts.Total()
	}
	r := sys.M.Result("drma", g.FrameSymbols)
	// The frame keeps moving traffic at 3x capacity instead of collapsing
	// into wall-to-wall contention.
	if r.InfoUtilization < 0.6 {
		t.Fatalf("utilization %.2f at overload — thrashing", r.InfoUtilization)
	}
	if r.VoiceDelivered == 0 {
		t.Fatal("nothing delivered at overload")
	}
}

// Winners persist as dynamic reservations until a slot frees (the behaviour
// the protocol is named after), so admission works even when conversions
// only happen in the frame's last slot.
func TestWinnersEventuallyAdmittedUnderLoad(t *testing.T) {
	sys, p := build(t, 70, 0, false)
	runFrames(sys, p, 8000) // 20 s
	if sys.M.ReservationsGranted.Total() < 100 {
		t.Fatalf("only %d reservations in 20 s at Nv=70 — admission starving",
			sys.M.ReservationsGranted.Total())
	}
}

func TestPendingStationsDoNotRecontend(t *testing.T) {
	sys, p := build(t, 80, 20, false)
	for i := 0; i < 2000; i++ {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
		for _, st := range sys.Stations {
			if st.PendingAtBS() && sys.NeedsVoiceRequest(st) {
				t.Fatal("pending station passes NeedsVoiceRequest")
			}
		}
	}
}

func TestQueueBarelyChangesDRMA(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Paper §5.1: adding a request queue improves DRMA only slightly —
	// its inherent distributed queueing already covers the need.
	run := func(queue bool) float64 {
		sc := core.DefaultScenario(core.ProtoDRMA)
		sc.NumVoice = 70
		sc.UseQueue = queue
		sc.WarmupSec = 1
		sc.DurationSec = 8
		r, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.VoiceLossRate
	}
	noQ, withQ := run(false), run(true)
	diff := noQ - withQ
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.02 {
		t.Fatalf("queue changed DRMA loss by %.4f — should be slight (%.4f vs %.4f)", diff, noQ, withQ)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() mac.Result {
		sys, p := build(t, 25, 5, false)
		runFrames(sys, p, 1000)
		return sys.M.Result("drma", sys.Cfg.Geometry.FrameSymbols)
	}
	if run() != run() {
		t.Fatal("not deterministic")
	}
}
