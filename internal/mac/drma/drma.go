// Package drma implements the DRMA baseline (Qiu & Li [19]; paper §3.3).
//
// DRMA uses a dynamic frame of Nk information slots with no dedicated
// request subframe. At the beginning of each information slot the base
// station announces whether the slot is assigned; an unassigned slot is
// "converted" into Nx request minislots in which active users contend.
// Successful requests are granted information slots later in the current
// frame if any remain free. Because users only get contention opportunities
// when idle slots exist, the request load is automatically throttled at
// high traffic — the protocol's self-stabilizing property (§5.1: an
// inherent "distributed requests queueing" behaviour).
//
// Voice winners reserve one transmission every 20 ms; data users contend
// per frame. The physical layer is the fixed-throughput encoder.
package drma

import (
	"charisma/internal/mac"
	"charisma/internal/phy"
	"charisma/internal/sim"
)

// Protocol is the DRMA access scheme.
type Protocol struct {
	// servedAt stamps, per station ID, the frame in which the station was
	// acknowledged (frame-stamped so no per-frame clearing pass is needed).
	servedAt []int64
	// pending holds contention winners awaiting their information slot.
	// This is the protocol's *dynamic reservation*: a successful request
	// stays assigned at the base station until a slot frees up, which is
	// also why an additional explicit request queue barely helps DRMA
	// (§5.1: the protocol has an inherent queueing property).
	pending []*mac.Request
	// cands is the per-minislot contention candidate scratch.
	cands []*mac.Station
}

// New returns a DRMA instance.
func New() *Protocol { return &Protocol{} }

// Name implements mac.Protocol.
func (p *Protocol) Name() string { return "drma" }

// Init implements mac.Protocol.
func (p *Protocol) Init(s *mac.System) {
	if n := len(s.Stations); cap(p.servedAt) >= n {
		p.servedAt = p.servedAt[:n]
	} else {
		p.servedAt = make([]int64, n)
	}
	for i := range p.servedAt {
		p.servedAt[i] = -1
	}
	p.pending = p.pending[:0]
}

func (p *Protocol) fixedMode(s *mac.System) phy.Mode { return s.PHY.Modes()[0] }

// RunFrame implements mac.Protocol.
func (p *Protocol) RunFrame(s *mac.System) sim.Time {
	g := s.Cfg.Geometry
	s.M.AddInfoBudget(g.DRMAInfoSlots * g.InfoSlotSymbols)
	frame := s.FrameIndex()
	mode := p.fixedMode(s)

	// Pending grants from previous frames are served first, in FIFO
	// order, as slots free up. Winners whose service class evaporated in
	// the meantime are scrubbed: all voice packets expired, data backlog
	// drained, or the station left the cell entirely (a multicell handoff
	// detaches the clone's traffic sources).
	grants := p.pending[:0]
	for _, r := range p.pending {
		if (r.Kind == mac.KindVoice && (r.St.Voice() == nil || (r.St.Voice().Buffered() == 0 && !r.St.Voice().Talking()))) ||
			(r.Kind == mac.KindData && (r.St.Data() == nil || r.St.Data().Backlog() == 0)) {
			s.SetPendingAtBS(r.St, false)
			s.FreeRequest(r)
			continue
		}
		grants = append(grants, r)
	}
	for _, r := range grants {
		p.servedAt[r.St.ID] = frame
	}
	reserved := s.VoiceReservationsDue()
	ri := 0

	for slot := 0; slot < g.DRMAInfoSlots; slot++ {
		// The BS announcement: is this slot assigned?
		if ri < len(reserved) {
			st := reserved[ri]
			ri++
			s.TransmitVoice(st, mode, 1)
			s.AdvanceReservation(st)
			s.M.AddInfoUsed(g.InfoSlotSymbols)
			continue
		}
		if len(grants) > 0 {
			r := grants[0]
			grants = grants[1:]
			s.SetPendingAtBS(r.St, false)
			if r.Kind == mac.KindVoice {
				if r.St.Voice().Buffered() > 0 {
					s.TransmitVoice(r.St, mode, 1)
					s.GrantReservation(r.St)
					s.M.AddInfoUsed(g.InfoSlotSymbols)
				}
			} else if r.St.Data().Backlog() > 0 {
				s.TransmitData(r.St, mode, 1)
				s.M.AddInfoUsed(g.InfoSlotSymbols)
			}
			s.FreeRequest(r)
			continue
		}
		// Unassigned: the slot converts into Nx request minislots. The
		// slot itself is consumed by the contention process; winners
		// are granted *later* slots of this frame (or queued).
		for x := 0; x < g.DRMAMinislotsPerSlot; x++ {
			cands := p.contenders(s, frame)
			w := s.Contend(cands)
			if w == nil {
				continue
			}
			p.servedAt[w.ID] = frame
			grants = append(grants, s.NewRequest(w, s.RequestKind(w)))
		}
	}

	// Winners that found no free slot keep their dynamic reservation and
	// take the first slots of upcoming frames.
	for _, r := range grants {
		s.SetPendingAtBS(r.St, true)
	}
	p.pending = grants
	return g.Duration()
}

func (p *Protocol) contenders(s *mac.System, frame int64) []*mac.Station {
	p.cands = s.AppendContenders(p.cands[:0], p.servedAt, frame)
	return p.cands
}
