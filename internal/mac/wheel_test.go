package mac

import (
	"math/rand"
	"sort"
	"testing"

	"charisma/internal/sim"
)

// wheelHarness pairs a timerWheel with the reference model the tests check
// it against: the authoritative stamp slab plus an armed set. The reference
// due set at time t is simply {s : armed(s) && stamp[s] <= t}.
type wheelHarness struct {
	w     timerWheel
	stamp []sim.Time
	armed []bool
}

func newWheelHarness(n int) *wheelHarness {
	h := &wheelHarness{stamp: make([]sim.Time, n), armed: make([]bool, n)}
	h.w.reset(n, h.stamp)
	return h
}

func (h *wheelHarness) arm(s int, at sim.Time) {
	h.stamp[s] = at
	h.w.add(int32(s), at)
	h.armed[s] = true
}

func (h *wheelHarness) disarm(s int) {
	h.w.remove(int32(s))
	h.armed[s] = false
}

// advance collects due entries at now and checks them against the
// reference: the fired set must be exactly the armed entries with
// stamp <= now (never early, never late).
func (h *wheelHarness) advance(t *testing.T, now sim.Time) []int32 {
	t.Helper()
	fired := h.w.collectDue(now, nil)
	want := []int{}
	for s, a := range h.armed {
		if a && h.stamp[s] <= now {
			want = append(want, s)
		}
	}
	got := make([]int, len(fired))
	for i, s := range fired {
		got[i] = int(s)
	}
	sort.Ints(got)
	if len(got) != len(want) {
		t.Fatalf("advance(%d): fired %v, want %v", now, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("advance(%d): fired %v, want %v", now, got, want)
		}
	}
	for _, s := range fired {
		h.armed[s] = false
	}
	h.verify(t)
	return fired
}

// verify checks the wheel's structural invariants: count matches the armed
// set, and every armed entry's loc/pos resolve to it.
func (h *wheelHarness) verify(t *testing.T) {
	t.Helper()
	n := 0
	for s, a := range h.armed {
		if a != h.w.armed(int32(s)) {
			t.Fatalf("station %d: armed=%v but wheel says %v", s, a, !a)
		}
		if !a {
			continue
		}
		n++
		l := h.w.loc[s]
		b := h.w.buckets[l>>wheelBits][l&(wheelSlots-1)]
		p := h.w.pos[s]
		if int(p) >= len(b) || b[p] != int32(s) {
			t.Fatalf("station %d: loc/pos do not resolve to its entry", s)
		}
	}
	if n != h.w.count {
		t.Fatalf("wheel count %d, want %d", h.w.count, n)
	}
}

// TestWheelFiresExactlyReference drives random arms, removes, re-arms and
// advances and checks every collect batch against the reference model.
// Delays span levels 0-2; higher levels share the same placement and
// cascade code paths (and are covered structurally by the far-future test —
// firing a level-8 entry would require walking ~2^48 granules, beyond any
// reachable simulation).
func TestWheelFiresExactlyReference(t *testing.T) {
	const n = 256
	r := rand.New(rand.NewSource(11))
	h := newWheelHarness(n)
	now := sim.Time(0)
	for s := 0; s < n; s++ {
		h.arm(s, sim.Time(r.Int63n(1<<22)))
	}
	for round := 0; round < 4000; round++ {
		now += sim.Time(r.Int63n(1 << 11)) // up to 2 granules per step
		fired := h.advance(t, now)
		// Re-arm most fired stations in the future, leave some disarmed.
		for _, s := range fired {
			if r.Intn(4) != 0 {
				h.arm(int(s), now+1+sim.Time(r.Int63n(1<<22)))
			}
		}
		// Random churn: re-arm or remove a live station.
		s := r.Intn(n)
		switch {
		case r.Intn(3) == 0 && h.armed[s]:
			h.disarm(s)
		case h.armed[s]:
			h.arm(s, now+1+sim.Time(r.Int63n(1<<18)))
		}
		h.verify(t)
	}
}

// TestWheelCascadeAcrossLevels places entries whose delays land on levels
// 1-3 and advances in coarse jumps across many level boundaries: every
// entry must fire at the first advance at or past its due time.
func TestWheelCascadeAcrossLevels(t *testing.T) {
	const n = 128
	r := rand.New(rand.NewSource(7))
	h := newWheelHarness(n)
	for s := 0; s < n; s++ {
		// Delays 2^16..2^28: levels 1 through 3.
		h.arm(s, sim.Time(1<<16+r.Int63n(1<<28)))
	}
	now := sim.Time(0)
	for now < 1<<28+1<<16 {
		now += sim.Time(1<<19 + r.Int63n(1<<20))
		h.advance(t, now)
	}
	if h.w.count != 0 {
		t.Fatalf("%d entries still parked after horizon", h.w.count)
	}
}

// TestWheelFarFutureStaysParked pins the top-level behavior: entries armed
// enormous distances out park on the overflow levels, survive many
// advances untouched, and remain removable in O(1).
func TestWheelFarFutureStaysParked(t *testing.T) {
	h := newWheelHarness(4)
	far := []sim.Time{1 << 40, 1 << 55, 1 << 61, 1<<62 + 12345}
	for s, at := range far {
		h.arm(s, at)
	}
	now := sim.Time(0)
	for i := 0; i < 5000; i++ {
		now += 800 // one frame
		if fired := h.advance(t, now); len(fired) != 0 {
			t.Fatalf("far-future entry fired at %d", now)
		}
	}
	if h.w.count != 4 {
		t.Fatalf("count %d, want 4", h.w.count)
	}
	h.disarm(2)
	h.verify(t)
	// Re-arming a far-future entry nearby must supersede the parked one.
	h.arm(3, now+100)
	if fired := h.advance(t, now+100); len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("re-armed entry did not fire: %v", fired)
	}
}

// TestWheelPastDueClampsToNextCollect: arming an already-due time may not
// be lost — it fires on the next collect.
func TestWheelPastDueClampsToNextCollect(t *testing.T) {
	h := newWheelHarness(2)
	h.advance(t, 5000) // move base forward
	h.arm(0, 100)      // long past
	if fired := h.advance(t, 5000); len(fired) != 1 || fired[0] != 0 {
		t.Fatalf("past-due entry did not fire immediately: %v", fired)
	}
}

// TestWheelSameTickBatchMatchesHeap compares the wheel against a reference
// binary heap ordered by (at, slot) — the ordering of the old wakeQueue.
// The wheel yields due entries in bucket-scan order, not heap order, so the
// comparison is on the per-advance batch: both structures must agree
// exactly on WHICH entries are due at every step, including ties where many
// entries share one tick. (Why batch equality suffices for byte-identical
// simulation results — wake processing is order-insensitive — is argued in
// registry.go and pinned end-to-end by the golden suite.)
func TestWheelSameTickBatchMatchesHeap(t *testing.T) {
	type entry struct {
		at   sim.Time
		slot int32
	}
	// Minimal (at, slot)-ordered heap, as the old wake queue used.
	var heap []entry
	less := func(a, b entry) bool { return a.at < b.at || (a.at == b.at && a.slot < b.slot) }
	push := func(e entry) {
		heap = append(heap, e)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() entry {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && less(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && less(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
		return top
	}

	const n = 200
	r := rand.New(rand.NewSource(3))
	h := newWheelHarness(n)
	for s := 0; s < n; s++ {
		// Coarse time quantization forces many same-tick ties.
		at := sim.Time(r.Int63n(16)) * 4096
		h.arm(s, at)
		push(entry{at, int32(s)})
	}
	now := sim.Time(0)
	for len(heap) > 0 {
		now += 4096
		fired := h.advance(t, now) // advance already checks the reference set
		var fromHeap []int
		for len(heap) > 0 && heap[0].at <= now {
			fromHeap = append(fromHeap, int(pop().slot))
		}
		got := make([]int, len(fired))
		for i, s := range fired {
			got[i] = int(s)
		}
		// The heap pops in (at, slot) order, the wheel yields bucket-scan
		// order; the invariant is that the batches agree as sets.
		sort.Ints(got)
		sort.Ints(fromHeap)
		if len(got) != len(fromHeap) {
			t.Fatalf("at %d: wheel fired %d, heap %d", now, len(got), len(fromHeap))
		}
		for i := range got {
			if got[i] != fromHeap[i] {
				t.Fatalf("at %d: wheel batch %v, heap batch %v", now, got, fromHeap)
			}
		}
	}
}

// TestWheelReArmKeepsResidentEntriesBounded is the stale-entry regression
// test: the old heap left a dead entry behind on every re-arm, so a station
// re-armed k times cost k resident entries. The wheel removes the
// superseded entry eagerly, so resident entries stay O(population) no
// matter how often stations re-arm.
func TestWheelReArmKeepsResidentEntriesBounded(t *testing.T) {
	const n = 1000
	const rounds = 100
	r := rand.New(rand.NewSource(21))
	h := newWheelHarness(n)
	for s := 0; s < n; s++ {
		h.arm(s, sim.Time(r.Int63n(1<<30)))
	}
	for round := 0; round < rounds; round++ {
		for s := 0; s < n; s++ {
			h.arm(s, sim.Time(r.Int63n(1<<30)))
		}
		if h.w.count != n {
			t.Fatalf("round %d: %d resident entries, want %d", round, h.w.count, n)
		}
		resident := 0
		for l := range h.w.buckets {
			for s := range h.w.buckets[l] {
				resident += len(h.w.buckets[l][s])
			}
		}
		if resident != n {
			t.Fatalf("round %d: %d bucket entries, want %d", round, resident, n)
		}
	}
	h.verify(t)
}
