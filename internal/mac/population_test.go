package mac_test

// Population-scale tests for the lazy-instantiation path: a million-station
// cell must fit a hard per-station memory budget, and the idle-wake frame
// path must stay allocation-free at 10⁵ stations (the property the CI
// zero-alloc guard pins).

import (
	"runtime"
	"testing"

	"charisma/internal/channel"
	"charisma/internal/mac"
	"charisma/internal/phy"
	"charisma/internal/rng"
	"charisma/internal/sim"
	"charisma/internal/traffic"
)

// idleBudgetBytes is the hard ceiling on resident heap per idle station for
// a deferred (never materialized) population: the 32-byte Station struct,
// its slot in the Stations slab, the stamp/chSync/loc/pos registry slabs,
// the bucket bitsets, and the station's timer-wheel bucket entry. See
// DESIGN.md ("Station memory layout & timer wheel") for the accounting.
const idleBudgetBytes = 64

// parkedLazySystem builds an n-station cell where every station is deferred
// with a common far-future first wake — the cheapest possible population,
// pinning the platform's fixed per-station cost.
func parkedLazySystem(tb testing.TB, n int) (*mac.System, float64) {
	tb.Helper()
	fw := make([]sim.Time, n)
	for i := range fw {
		fw[i] = 1 << 40 // ~decades of simulated time away
	}
	pop := &mac.LazyPopulation{
		FirstWake: fw,
		Materialize: func(slot int) (*traffic.VoiceSource, *traffic.DataSource, *channel.Fading) {
			tb.Fatalf("parked station %d materialized", slot)
			return nil, nil, nil
		},
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	sys, err := mac.NewSystemLazy(mac.DefaultConfig(), phy.NewAdaptive(phy.DefaultParams()), n, rng.New(1), pop)
	if err != nil {
		tb.Fatal(err)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return sys, float64(after.HeapAlloc-before.HeapAlloc) / float64(n)
}

// TestMillionStationMemoryBudget instantiates a 10⁶-station cell and holds
// the measured resident heap to idleBudgetBytes per station.
func TestMillionStationMemoryBudget(t *testing.T) {
	const n = 1_000_000
	sys, perStation := parkedLazySystem(t, n)
	t.Logf("%d stations: %.1f B/station resident", n, perStation)
	if perStation > idleBudgetBytes {
		t.Fatalf("resident heap %.1f B/station, budget %d", perStation, idleBudgetBytes)
	}
	// The cell must also be runnable: a frame over a fully parked million
	// stations touches no station state.
	for f := 0; f < 10; f++ {
		sys.BeginFrame()
		sys.EndFrame(sys.FrameDuration())
	}
	if err := sys.VerifyRegistry(); err != nil {
		t.Fatal(err)
	}
	runtime.KeepAlive(sys)
}

// cyclingLazySystem builds an n-station lazy cell where the first nActive
// stations carry real voice sources (cycling through talkspurts and
// silences, waking via the timer wheel) and the rest stay parked far in
// the future. Active sources are pre-built so FirstWake can be read off
// NextEventAt; Materialize hands out the pre-built source on first wake.
func cyclingLazySystem(tb testing.TB, n, nActive int) *mac.System {
	tb.Helper()
	vp := traffic.DefaultVoiceParams()
	voices := make([]*traffic.VoiceSource, nActive)
	fw := make([]sim.Time, n)
	for i := range fw {
		if i < nActive {
			voices[i] = traffic.NewVoice(vp, rng.DeriveIndexed(41, "popv", i), 0)
			fw[i] = voices[i].NextEventAt()
		} else {
			fw[i] = 1 << 40
		}
	}
	pop := &mac.LazyPopulation{
		FirstWake: fw,
		Materialize: func(slot int) (*traffic.VoiceSource, *traffic.DataSource, *channel.Fading) {
			if slot >= nActive {
				tb.Fatalf("parked station %d materialized", slot)
			}
			return voices[slot], nil, nil
		},
	}
	sys, err := mac.NewSystemLazy(mac.DefaultConfig(), phy.NewAdaptive(phy.DefaultParams()), n, rng.New(2), pop)
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// TestIdleWakeHotPathAllocs extends the zero-alloc frame guard to the
// idle-wake path at 10⁵ stations: once wheel buckets and scratch slices
// have reached their high-water marks, a frame that wakes stations off the
// timer wheel, advances their talkspurts, and re-parks them must not
// allocate. Silences of ~1.35 s park wakes several wheel levels up, so the
// steady state exercises arm, cascade, and collect.
func TestIdleWakeHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("long warmup")
	}
	sys := cyclingLazySystem(t, 100_000, 2000)
	// Warm past one full level-1 wheel revolution (64·64 granules ≈ 5243
	// frames) so every wheel bucket and scratch slice has seen its peak,
	// and past every source's first long unserved talkspurt (~1.3 s of
	// talking) so voice buffers reach their terminal capacity.
	for f := 0; f < 32000; f++ {
		sys.BeginFrame()
		sys.EndFrame(sys.FrameDuration())
	}
	avg := testing.AllocsPerRun(300, func() {
		sys.BeginFrame()
		sys.EndFrame(sys.FrameDuration())
	})
	if avg != 0 {
		t.Fatalf("idle-wake hot path allocates %.3f allocs/frame, want 0", avg)
	}
	if err := sys.VerifyRegistry(); err != nil {
		t.Fatal(err)
	}
}
