package mac

import (
	"cmp"
	"fmt"
	"slices"

	"charisma/internal/channel"
	"charisma/internal/frame"
	"charisma/internal/obs"
	"charisma/internal/phy"
	"charisma/internal/rng"
	"charisma/internal/sim"
	"charisma/internal/traffic"
)

// Kind distinguishes the two request/service classes.
type Kind uint8

// The two service classes of the integrated-services cell.
const (
	KindVoice Kind = iota
	KindData
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindVoice {
		return "voice"
	}
	return "data"
}

// Station is one mobile device. It holds only cold configuration — its
// identity, its traffic sources, its fading process — packed into 32
// bytes; all hot per-station state (bucket membership, wake/reservation
// stamps, fading sync counters, timer-wheel entries) lives in the owning
// System's structure-of-arrays slabs, indexed by the station's slot (see
// registry.go). Boolean MAC state is bit-packed into flags. An idle
// station therefore costs its struct, a pointer in System.Stations, and a
// handful of slab rows — a few tens of bytes — and a deferred station of a
// lazy population (see NewSystemLazy) does not even carry sources until
// its first wake.
type Station struct {
	ID int
	// src bundles the traffic sources behind one pointer so a station
	// carrying either or both pays 8 bytes in the struct; nil for inert
	// multicell clones and for deferred stations before materialization.
	src *sources
	// fad is the station's uplink fading process; nil until a deferred
	// station materializes.
	fad *channel.Fading
	// slot is the station's index in its owner's Stations table and every
	// slab; -1 until registered.
	slot int32
	// flags packs the registry bucket (low 3 bits) with the MAC booleans.
	flags uint8
}

// sources carries a station's traffic endpoints.
type sources struct {
	voice *traffic.VoiceSource
	data  *traffic.DataSource
}

// Station flag bits above the bucket field.
const (
	stationBucketBits uint8 = 0x07
	// flagReserved marks an active voice reservation: the station owns
	// one information transmission every voice period without
	// re-contending. The due time lives in the registry's stamp slab.
	flagReserved uint8 = 1 << 3
	// flagPendingAtBS marks that a request from this station is held in
	// the base-station request queue, so the station must not re-contend.
	flagPendingAtBS uint8 = 1 << 4
	// flagDeferred marks a lazy-population station whose sources and
	// fading process have not been constructed yet.
	flagDeferred uint8 = 1 << 5
	// flagCandidate mirrors the station's live contention candidacy —
	// it sits in a contention bucket and NeedsVoiceRequest or
	// NeedsDataRequest holds. Reindex keeps the bit in sync and bumps the
	// registry epoch only when it flips, so state changes that cannot
	// alter the candidate set (servicing a reserved voice station, idle
	// re-arms) leave the memoized candidate list valid. See Reindex and
	// ForEachCandidate in registry.go.
	flagCandidate uint8 = 1 << 6
)

func (st *Station) bucket() bucketKind     { return bucketKind(st.flags & stationBucketBits) }
func (st *Station) setBucket(b bucketKind) { st.flags = st.flags&^stationBucketBits | uint8(b) }

// NewStation builds a station from its cold configuration. Any of the
// sources and the fading process may be nil (an inert clone carries none).
func NewStation(id int, v *traffic.VoiceSource, d *traffic.DataSource, fad *channel.Fading) *Station {
	st := &Station{ID: id, fad: fad, slot: -1}
	if v != nil || d != nil {
		st.src = &sources{voice: v, data: d}
	}
	return st
}

// Voice returns the station's voice source, or nil.
func (st *Station) Voice() *traffic.VoiceSource {
	if st.src == nil {
		return nil
	}
	return st.src.voice
}

// Data returns the station's data source, or nil.
func (st *Station) Data() *traffic.DataSource {
	if st.src == nil {
		return nil
	}
	return st.src.data
}

// Fading returns the station's fading process, or nil.
func (st *Station) Fading() *channel.Fading { return st.fad }

// Reserved reports whether the station holds an active voice reservation.
func (st *Station) Reserved() bool { return st.flags&flagReserved != 0 }

// PendingAtBS reports whether a request from this station is held at the
// base station.
func (st *Station) PendingAtBS() bool { return st.flags&flagPendingAtBS != 0 }

// SetTraffic swaps the station's traffic sources (the multicell
// attach/detach path). The caller must Reindex the station with its owning
// system for the change to reach the scan paths.
func (st *Station) SetTraffic(v *traffic.VoiceSource, d *traffic.DataSource) {
	if v == nil && d == nil {
		st.src = nil
		return
	}
	st.src = &sources{voice: v, data: d}
}

// CharismaParams are the priority-metric weights of CHARISMA's eq. (2):
// phi = Alpha·f(CSI) + Beta·urgency (+ VoiceOffset for voice), with
// forgetting factors LambdaV (deadline urgency growth) and LambdaD
// (waiting-time growth). See DESIGN.md §3 for the reconstruction.
type CharismaParams struct {
	Alpha       float64
	BetaV       float64
	BetaD       float64
	VoiceOffset float64
	LambdaV     float64
	LambdaD     float64
	// DisableCSIRefresh turns off the pilot-polling subframe (ablation:
	// backlog requests then keep stale estimates).
	DisableCSIRefresh bool

	// FairnessExponent enables the paper's first future-work extension
	// (§6, referencing the authors' channel-capacity fair queueing work
	// [22]): the CSI term of eq. (2) is divided by the user's own
	// long-run average throughput raised to this exponent, so a user is
	// ranked by how good its channel is *relative to its own norm*
	// rather than absolutely. 0 (default) reproduces eq. (2) exactly;
	// 1 gives fully proportional-fair ranking that stops starving
	// permanently shadowed users.
	FairnessExponent float64
	// FairnessMemory is the EWMA coefficient for the per-user average
	// throughput estimate (per scheduled transmission); defaults to
	// 0.99 when the exponent is positive.
	FairnessMemory float64
}

// DefaultCharismaParams returns the reproduction defaults.
func DefaultCharismaParams() CharismaParams {
	return CharismaParams{
		Alpha:       1.0,
		BetaV:       2.0,
		BetaD:       1.0,
		VoiceOffset: 1.0,
		LambdaV:     0.7,
		LambdaD:     0.9,
	}
}

// Config carries everything the protocols need beyond the PHY.
type Config struct {
	Geometry frame.Geometry

	// PermVoice and PermData are the permission probabilities pv and pd
	// governing request transmission in a contention minislot (§2).
	PermVoice float64
	PermData  float64

	// UseQueue enables the base-station request queue (§4.5); QueueCap
	// bounds it.
	UseQueue bool
	QueueCap int

	// CSIEstNoiseStd is the relative pilot-estimation error.
	CSIEstNoiseStd float64
	// CSIValidityFrames is how many frames an estimate stays fresh
	// (§4.4: "valid for two consecutive frames").
	CSIValidityFrames int
	// StaleDecayPerFrame discounts an estimate's amplitude for every
	// frame beyond its validity, making the scheduler conservative about
	// obsolete CSI.
	StaleDecayPerFrame float64

	Charisma CharismaParams
}

// DefaultConfig returns the reproduction defaults (Table 1 where readable;
// reconstructed values per DESIGN.md §3 otherwise).
func DefaultConfig() Config {
	return Config{
		Geometry:           frame.Default(),
		PermVoice:          0.1,
		PermData:           0.05,
		UseQueue:           false,
		QueueCap:           128,
		CSIEstNoiseStd:     0.05,
		CSIValidityFrames:  2,
		StaleDecayPerFrame: 0.9,
		Charisma:           DefaultCharismaParams(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.PermVoice <= 0 || c.PermVoice > 1 {
		return fmt.Errorf("mac: voice permission probability %v out of (0,1]", c.PermVoice)
	}
	if c.PermData <= 0 || c.PermData > 1 {
		return fmt.Errorf("mac: data permission probability %v out of (0,1]", c.PermData)
	}
	if c.UseQueue && c.QueueCap <= 0 {
		return fmt.Errorf("mac: queue enabled with cap %d", c.QueueCap)
	}
	if c.CSIValidityFrames < 1 {
		return fmt.Errorf("mac: CSI validity %d frames", c.CSIValidityFrames)
	}
	if c.StaleDecayPerFrame <= 0 || c.StaleDecayPerFrame > 1 {
		return fmt.Errorf("mac: stale decay %v out of (0,1]", c.StaleDecayPerFrame)
	}
	if c.CSIEstNoiseStd < 0 {
		return fmt.Errorf("mac: negative CSI noise %v", c.CSIEstNoiseStd)
	}
	return nil
}

// Request is a transmission request as the base station sees it: who, what
// service, how many packets, when it was acknowledged, and the pilot CSI
// estimate that arrived with it.
type Request struct {
	St    *Station
	Kind  Kind
	NPkts int
	Born  sim.Time
	Est   channel.Estimate
}

// Protocol is one uplink access control scheme. RunFrame executes a single
// frame — contention, allocation and transmissions — and returns the
// frame's duration (fixed 800 symbols for all protocols except RMAV).
type Protocol interface {
	Name() string
	Init(s *System)
	RunFrame(s *System) sim.Time
}

// LazyPopulation describes a population whose stations are constructed on
// first wake instead of up front. FirstWake[i] is station i's first source
// event time (computed cheaply at build time, e.g. via the traffic birth
// probes); Materialize builds the real sources and fading process for one
// slot, and must return objects whose state at time zero matches what an
// eager build would have produced — the deferred station then replays its
// traffic and fading exactly as an eagerly built idle station would have.
type LazyPopulation struct {
	FirstWake   []sim.Time
	Materialize func(slot int) (*traffic.VoiceSource, *traffic.DataSource, *channel.Fading)
}

// System is the per-scenario simulation state shared between the platform
// and the protocol: stations, PHY, clock, metrics, and the BS queue.
type System struct {
	Cfg      Config
	PHY      phy.PHY
	Stations []*Station
	// Rand is the MAC-side randomness: contention coin flips, packet
	// error draws, CSI estimation noise. It is distinct from the channel
	// and traffic streams so every protocol observes identical channel
	// and traffic sample paths.
	Rand *rng.Stream
	M    Metrics

	now      sim.Time
	frameIdx int64
	lastDur  sim.Time

	reg  registry
	lazy *LazyPopulation
	// stnSlab is the contiguous station storage of a lazily built system,
	// kept on the System so ResetLazy can rebuild the population into the
	// same memory (the replication arena, see internal/core). srcChunks
	// is the matching storage for materialized stations' sources pairs:
	// fixed-capacity chunks allocated on demand (an idle cell pays
	// nothing, a mostly-deferred million-station cell pays per
	// materialized station), rewound and reused by ResetLazy. Chunks
	// never grow, so handed-out *sources pointers stay valid.
	stnSlab   []Station
	srcChunks [][]sources
	srcChunk  int

	queue []*Request
	// reqFree recycles retired Request objects: schedulers create a
	// handful per frame, so without pooling they dominate the frame
	// path's allocations. See BorrowRequest/FreeRequest for the
	// ownership rules.
	reqFree []*Request

	// DebugVoiceTx, when non-nil, observes every voice transmission
	// (station, mode, scheduler-side amplitude estimate, estimate age,
	// outcome counts). Used by calibration diagnostics and tests; nil in
	// production runs.
	DebugVoiceTx func(st *Station, m phy.Mode, estAmp float64, estAge sim.Time, ok, errs int)

	// DebugEndFrame, when non-nil, observes every completed frame with
	// the duration the protocol consumed. The flight recorder
	// (internal/trace) attaches here; nil in production runs, so the
	// frame path pays one predictable branch.
	DebugEndFrame func(dur sim.Time)

	// ctr is the system's block of hot-path observability counters
	// (wheel arms/cascades/wakes, epoch bumps, candidate cache
	// hits/misses). Plain uint64 adds on the owning goroutine — see
	// package obs for the synchronization contract.
	ctr obs.SimCounters
}

// Obs returns the system's registry/wheel/candidate-cache counters.
// Cumulative across ResetLazy (a pooled arena reports totals over every
// replication it hosted); read only from the driving goroutine or after
// it has quiesced.
func (s *System) Obs() *obs.SimCounters { return &s.ctr }

// NewSystem assembles a system. The caller supplies stations wired to their
// fading processes and traffic sources.
func NewSystem(cfg Config, modem phy.PHY, stations []*Station, macStream *rng.Stream) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if modem == nil {
		return nil, fmt.Errorf("mac: nil PHY")
	}
	if macStream == nil {
		return nil, fmt.Errorf("mac: nil MAC stream")
	}
	s := &System{Cfg: cfg, PHY: modem, Stations: stations, Rand: macStream}
	s.reg.reset(len(stations), &s.ctr)
	for i, st := range stations {
		st.slot = int32(i)
		b := classify(st)
		st.setBucket(b)
		s.reg.place(i, b)
		if b == bucketIdle {
			s.armWake(st)
		}
	}
	return s, nil
}

// NewSystemLazy assembles a system of n deferred stations: every station
// is parked in the idle bucket with its first wake armed in the timer
// wheel, and its sources and fading process are constructed only when that
// wake fires (or when an external observer forces it — see MaterializeAll).
// The station structs live in one contiguous slab, so an idle cell costs
// O(tens of bytes) per station regardless of how heavy the materialized
// sources are. Results are byte-identical to building the same population
// eagerly with NewSystem, because an eagerly built idle station's sources
// are equally untouched until its first wake.
func NewSystemLazy(cfg Config, modem phy.PHY, n int, macStream *rng.Stream, pop *LazyPopulation) (*System, error) {
	s := &System{}
	if err := s.ResetLazy(cfg, modem, n, macStream, pop); err != nil {
		return nil, err
	}
	return s, nil
}

// ResetLazy re-initializes s as a freshly built lazy system of n deferred
// stations, reusing its previous life's station slab, registry slabs,
// timer wheel, queue, and request free list wherever capacity suffices.
// The rebuilt system is byte-identical in behaviour to one from
// NewSystemLazy: every scalar is re-zeroed, every station struct is
// overwritten whole, and recycled Requests are zeroed on reuse. This is
// the replication arena's core — rep N+1 rebuilds the cell into rep N's
// memory with near-zero allocations when the population size repeats.
func (s *System) ResetLazy(cfg Config, modem phy.PHY, n int, macStream *rng.Stream, pop *LazyPopulation) error {
	if pop == nil || pop.Materialize == nil {
		return fmt.Errorf("mac: lazy population without a Materialize hook")
	}
	if len(pop.FirstWake) != n {
		return fmt.Errorf("mac: %d first wakes for %d stations", len(pop.FirstWake), n)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if modem == nil {
		return fmt.Errorf("mac: nil PHY")
	}
	if macStream == nil {
		return fmt.Errorf("mac: nil MAC stream")
	}
	s.Cfg, s.PHY, s.Rand, s.lazy = cfg, modem, macStream, pop
	s.M = Metrics{}
	s.now, s.frameIdx, s.lastDur = 0, 0, 0
	s.queue = s.queue[:0]
	s.DebugVoiceTx = nil
	s.DebugEndFrame = nil
	s.reg.reset(n, &s.ctr)
	if cap(s.stnSlab) >= n {
		s.stnSlab = s.stnSlab[:n]
	} else {
		s.stnSlab = make([]Station, n)
	}
	for i := range s.srcChunks {
		s.srcChunks[i] = s.srcChunks[i][:0]
	}
	s.srcChunk = 0
	if cap(s.Stations) >= n {
		s.Stations = s.Stations[:n]
	} else {
		s.Stations = make([]*Station, n)
	}
	for i := range s.stnSlab {
		st := &s.stnSlab[i]
		*st = Station{ID: i, slot: int32(i), flags: flagDeferred | uint8(bucketIdle)}
		s.Stations[i] = st
		s.reg.place(i, bucketIdle)
		if fw := pop.FirstWake[i]; fw >= 0 {
			s.reg.stamp[i] = fw
			s.reg.wheel.add(int32(i), fw)
		}
	}
	return nil
}

// srcChunkSize is the per-chunk capacity of the sources slab: small
// enough that a lightly populated cell wastes little, big enough that a
// typical cell fits in one or two chunks.
const srcChunkSize = 64

// newSources takes the next row of the chunked sources slab. A chunk is
// append-only up to its fixed capacity and never reallocated, so the
// returned pointer is stable; ResetLazy rewinds the chunks for reuse.
func (s *System) newSources(v *traffic.VoiceSource, d *traffic.DataSource) *sources {
	if s.srcChunk == len(s.srcChunks) {
		s.srcChunks = append(s.srcChunks, make([]sources, 0, srcChunkSize))
	}
	c := s.srcChunks[s.srcChunk]
	c = append(c, sources{voice: v, data: d})
	s.srcChunks[s.srcChunk] = c
	if len(c) == srcChunkSize {
		s.srcChunk++
	}
	return &c[len(c)-1]
}

// materialize constructs a deferred station's sources and fading process.
func (s *System) materialize(st *Station) {
	if st.flags&flagDeferred == 0 {
		return
	}
	st.flags &^= flagDeferred
	v, d, fad := s.lazy.Materialize(int(st.slot))
	if v != nil || d != nil {
		st.src = s.newSources(v, d)
	}
	st.fad = fad
}

// MaterializeAll forces construction of every deferred station. External
// drivers that inspect stations directly (tests, diagnostics) call it
// before reading sources or fading state; the frame loop never needs it.
func (s *System) MaterializeAll() {
	if s.lazy == nil {
		return
	}
	for _, st := range s.Stations {
		s.materialize(st)
	}
}

// Now returns the current frame's start time.
func (s *System) Now() sim.Time { return s.now }

// FrameIndex returns the number of completed frames.
func (s *System) FrameIndex() int64 { return s.frameIdx }

// FrameDuration returns the standard fixed frame duration. Reading the
// symbol count directly keeps this an inlinable field load — calling
// Geometry.Duration() would copy the whole struct on a hot path (the
// lazy fading replay pays it per catch-up).
func (s *System) FrameDuration() sim.Time { return sim.Time(s.Cfg.Geometry.FrameSymbols) }

// BeginFrame realizes traffic arrivals, deadline drops, and reservation
// releases at the new frame boundary. Only the active buckets and the idle
// stations whose next source event is due are touched; channel fading is
// replayed lazily per station when it is next observed (see syncChannel),
// so the per-frame cost scales with the active population, not the cell
// size.
func (s *System) BeginFrame() {
	// Idle stations whose talkspurt or data burst starts this frame.
	s.wakeDue()
	// Every already-active station advances each frame, exactly like the
	// legacy full-population loop did. Snapshot first: advancing can move
	// a station between buckets mid-scan.
	snap := s.appendIn(s.reg.frameScratch[:0], maskActive)
	s.reg.frameScratch = snap[:0]
	for _, st := range snap {
		s.advanceTraffic(st)
		s.Reindex(st)
	}
	s.scrubQueue()
	// Fused candidate prepass: seed the contention-candidate cache from
	// the snapshot while its stations are still cache-hot, so the
	// protocol's first ForEachCandidate scan of the frame is free. This is
	// exactly the scan that ForEachCandidate would run: the snapshot is a
	// slot-ordered superset of the contention buckets (wakeDue ran before
	// it was taken, and nothing after can move a station into a contention
	// bucket that was not in an active bucket already), and the Reindex
	// each snapshot station just went through (in the sweep above, or in
	// scrubQueue for released pending stations) left flagCandidate equal
	// to its live candidacy, so filtering the snapshot by that bit
	// reproduces the bitset walk's order and membership without
	// re-evaluating the predicates.
	r := &s.reg
	r.candScratch = r.candScratch[:0]
	for _, st := range snap {
		if st.flags&flagCandidate != 0 {
			r.candScratch = append(r.candScratch, st)
		}
	}
	r.candEpoch = r.epoch
}

// advanceTraffic realizes one station's source events up to now and applies
// the reservation-lapse rule. Advance is idempotent within a frame, so a
// station woken from the idle bucket may safely be visited again by the
// active-bucket pass of the same frame.
func (s *System) advanceTraffic(st *Station) {
	if st.src == nil {
		return
	}
	if v := st.src.voice; v != nil {
		gen := v.Advance(s.now)
		s.M.VoiceGenerated.Add(uint64(gen))
		dropped := v.DropExpired(s.now)
		s.M.VoiceDropped.Add(uint64(dropped))
		// A reservation lapses once the talkspurt is over and
		// the buffer has drained (by transmission or drop).
		if st.flags&flagReserved != 0 && !v.Talking() && v.Buffered() == 0 {
			st.flags &^= flagReserved
		}
	}
	if d := st.src.data; d != nil {
		gen := d.Advance(s.now)
		s.M.DataGenerated.Add(uint64(gen))
	}
}

// EndFrame closes the frame: dur is what the protocol consumed.
func (s *System) EndFrame(dur sim.Time) {
	if dur <= 0 {
		panic("mac: protocol returned non-positive frame duration")
	}
	s.M.MeasuredTicks.Add(uint64(dur))
	s.now += dur
	if dur != s.FrameDuration() {
		// Variable-length frame (RMAV): the lazy replay assumes every
		// deferred step is one standard frame, so settle each channel
		// eagerly — replay what is owed at the standard duration, then
		// take this frame's variable-length step. Deferred stations
		// materialize here: their fading process must take the
		// variable-length step like everyone else's.
		for _, st := range s.Stations {
			s.syncChannel(st)
			st.fad.Advance(dur)
			s.reg.chSync[st.slot] = int32(s.frameIdx + 1)
		}
	}
	s.frameIdx++
	s.lastDur = dur
	if s.DebugEndFrame != nil {
		s.DebugEndFrame(dur)
	}
}

// syncChannel replays the per-frame fading steps a station has deferred
// since it was last observed. The replay consumes exactly the draws (same
// count, same step size, same private stream) the legacy every-frame
// advance did, so amplitudes at every observation point are byte-identical
// to the eager schedule regardless of how long the station idled. The
// catch-up is batched over the fading plane (one AdvanceSteps call resolves
// the step coefficients once and keeps the recurrence in registers) rather
// than paying a full Advance per deferred frame.
func (s *System) syncChannel(st *Station) {
	if !s.owns(st) {
		return
	}
	if st.flags&flagDeferred != 0 {
		s.materialize(st)
	}
	if k := s.frameIdx - int64(s.reg.chSync[st.slot]); k > 0 {
		st.fad.AdvanceSteps(s.FrameDuration(), int(k))
		s.reg.chSync[st.slot] = int32(s.frameIdx)
	}
}

// SyncChannel brings a station's fading process up to the state an eager
// per-frame schedule would show at a frame boundary — after the last
// completed frame, before the next frame's advance. External observers of
// the station's fading between frames (the multicell handoff rule,
// diagnostic traces) must call it before reading, since the frame loop
// defers fading work until observation.
func (s *System) SyncChannel(st *Station) {
	if !s.owns(st) {
		return
	}
	if st.flags&flagDeferred != 0 {
		s.materialize(st)
	}
	if k := s.frameIdx - 1 - int64(s.reg.chSync[st.slot]); k > 0 {
		st.fad.AdvanceSteps(s.FrameDuration(), int(k))
		s.reg.chSync[st.slot] = int32(s.frameIdx - 1)
	}
}

// NeedsVoiceRequest reports whether a station should contend for a voice
// grant: it has speech packets buffered, no reservation, and no request
// already queued at the base station.
func (s *System) NeedsVoiceRequest(st *Station) bool {
	return st.src != nil && st.src.voice != nil && st.src.voice.Buffered() > 0 &&
		st.flags&(flagReserved|flagPendingAtBS) == 0
}

// NeedsDataRequest reports whether a station should contend for a data
// grant: backlog exists and no request is already queued at the BS. (Data
// reservations are never allowed: "a data request is not allowed to make
// reservation", §4.1.)
func (s *System) NeedsDataRequest(st *Station) bool {
	return st.src != nil && st.src.data != nil && st.src.data.Backlog() > 0 &&
		st.flags&flagPendingAtBS == 0
}

// RequestKind classifies what a contending station is asking for. Voice
// takes precedence when a station carries both services.
func (s *System) RequestKind(st *Station) Kind {
	if s.NeedsVoiceRequest(st) {
		return KindVoice
	}
	return KindData
}

// PermissionProb returns the §2 permission probability for a station's
// pending request class.
func (s *System) PermissionProb(st *Station) float64 {
	if s.RequestKind(st) == KindVoice {
		return s.Cfg.PermVoice
	}
	return s.Cfg.PermData
}

// Contend runs one contention minislot over the candidate set: every
// candidate transmits its request with its permission probability; the
// minislot succeeds only if exactly one transmits (no capture effect, §2).
// It returns the winner or nil.
func (s *System) Contend(cands []*Station) *Station {
	var winner *Station
	transmitted := 0
	for _, st := range cands {
		if s.Rand.Bernoulli(s.PermissionProb(st)) {
			transmitted++
			winner = st
		}
	}
	if transmitted == 0 {
		return nil
	}
	s.M.ReqAttempts.Add(uint64(transmitted))
	if transmitted > 1 {
		s.M.ReqCollisions.Inc()
		return nil
	}
	s.M.ReqSuccesses.Inc()
	return winner
}

// BorrowRequest returns a zeroed request from the per-system free list
// (allocating only when the list is empty). A request stays live from
// here until it is retired — fully served, rejected by a full or
// disabled queue, or scrubbed — at which point its last holder must hand
// it back through FreeRequest; the BS queue and DRMA's pending list hold
// live requests across frames and retire them on removal. With every
// retirement accounted for, the steady-state frame path allocates no
// request objects at all.
func (s *System) BorrowRequest() *Request {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
		*r = Request{}
		return r
	}
	return new(Request)
}

// FreeRequest retires a request to the free list. The caller must hold
// the only remaining reference: the next BorrowRequest/NewRequest will
// recycle the object and overwrite it in place.
func (s *System) FreeRequest(r *Request) {
	if r != nil {
		s.reqFree = append(s.reqFree, r)
	}
}

// NewRequest builds a request for a contention winner, measuring CSI from
// the pilot symbols embedded in the request packet (§4.3/§4.4). The
// request comes from the free list; see BorrowRequest for its lifetime.
func (s *System) NewRequest(st *Station, kind Kind) *Request {
	r := s.BorrowRequest()
	r.St, r.Kind, r.Born = st, kind, s.now
	if kind == KindVoice {
		r.NPkts = st.src.voice.Buffered()
	} else {
		r.NPkts = st.src.data.Backlog()
	}
	r.Est = s.MeasureEstimate(st)
	return r
}

// MeasureEstimate takes a pilot-symbol CSI measurement of a station's
// channel at the current time, settling any deferred fading steps first.
// All scheduler-side channel observations go through here (or through
// helpers that do), so the lazy replay is invisible to protocols.
func (s *System) MeasureEstimate(st *Station) channel.Estimate {
	s.syncChannel(st)
	return st.fad.MeasureEstimate(s.Cfg.CSIEstNoiseStd, s.Rand, s.now)
}

// EffectiveAmp returns the amplitude the scheduler should assume for an
// estimate at the current time: the measured value geometrically discounted
// per frame of age, so mode selection stays conservative about channel
// drift. A same-frame estimate passes through unchanged; an estimate past
// the paper's two-frame validity window (which also gates CSI-polling
// eligibility) has decayed enough that the scheduler effectively treats the
// user as near the bottom of its adaptation range.
func (s *System) EffectiveAmp(e channel.Estimate) float64 {
	amp := e.Amp
	for age := e.Age(s.now); age > 0; age -= s.FrameDuration() {
		amp *= s.Cfg.StaleDecayPerFrame
	}
	return amp
}

// EstimateStale reports whether an estimate is past the validity window
// (§4.4) and therefore a candidate for CSI polling.
func (s *System) EstimateStale(e channel.Estimate) bool {
	return e.Age(s.now) > sim.Time(s.Cfg.CSIValidityFrames)*s.FrameDuration()
}

// RefreshEstimate re-measures a station's CSI (the CSI-polling mechanism of
// §4.4: the station transmits pilot symbols in its assigned pilot slot).
func (s *System) RefreshEstimate(st *Station) channel.Estimate {
	s.M.CSIPolls.Inc()
	return s.MeasureEstimate(st)
}

// NextVoiceDue returns when a station's reservation next entitles a
// transmission. Meaningful only while the station is Reserved: the
// underlying slab row doubles as the idle wake stamp.
func (s *System) NextVoiceDue(st *Station) sim.Time {
	if !s.owns(st) {
		return 0
	}
	return s.reg.stamp[st.slot]
}

// VoiceReservationsDue returns stations whose reservation entitles a
// transmission this frame and that actually have speech queued, ordered by
// due time then ID for determinism.
func (s *System) VoiceReservationsDue() []*Station {
	// Reserved stations normally live in the reserved bucket; the
	// talkspurt and pending buckets are included so a reservation
	// installed by an external driver between frames (tests, handoff
	// re-admission) is honoured before the next reindex.
	s.reg.dueScratch = s.reg.dueScratch[:0]
	s.forEachIn(maskReserved|maskTalkspurt|maskPending, func(st *Station) {
		if st.flags&flagReserved == 0 || s.reg.stamp[st.slot] > s.now {
			return
		}
		if st.src.voice.Buffered() == 0 {
			// Nothing to send this period (packet already dropped);
			// keep the reservation cadence.
			s.AdvanceReservation(st)
			return
		}
		s.reg.dueScratch = append(s.reg.dueScratch, st)
	})
	due := s.reg.dueScratch
	if len(due) > 1 {
		// (due time, ID) is a strict total order, so the sort result is
		// unique and the swap from sort.Slice changed no draws.
		stamp := s.reg.stamp
		slices.SortFunc(due, func(a, b *Station) int {
			if stamp[a.slot] != stamp[b.slot] {
				return cmp.Compare(stamp[a.slot], stamp[b.slot])
			}
			return cmp.Compare(a.ID, b.ID)
		})
	}
	return due
}

// GrantReservation installs a voice reservation starting now.
func (s *System) GrantReservation(st *Station) {
	s.GrantReservationAt(st, s.now+s.Cfg.Geometry.VoicePeriod)
}

// GrantReservationAt installs a voice reservation with an explicit first
// due time (RMAV's persistent slots recur every frame, so it admits with
// due = now rather than one voice period out).
func (s *System) GrantReservationAt(st *Station, due sim.Time) {
	st.flags |= flagReserved
	if s.owns(st) {
		s.reg.stamp[st.slot] = due
	}
	s.M.ReservationsGranted.Inc()
	s.Reindex(st)
}

// CancelReservation revokes a station's voice reservation (the multicell
// detach path; a lapsing talkspurt clears itself in advanceTraffic).
func (s *System) CancelReservation(st *Station) {
	st.flags &^= flagReserved
	s.Reindex(st)
}

// SetPendingAtBS flips the "request held at the base station" flag and
// re-buckets the station; protocols that track BS-side grants outside the
// request queue (DRMA's dynamic reservations, RMAV's data grant) use it
// instead of writing the flag directly.
func (s *System) SetPendingAtBS(st *Station, pending bool) {
	if pending {
		st.flags |= flagPendingAtBS
	} else {
		st.flags &^= flagPendingAtBS
	}
	s.Reindex(st)
}

// AdvanceReservation moves a reservation to its next period. The cadence
// stays anchored to the original grant (like a PRMA user keeping the same
// slot position every frame cycle): serving a deferred packet late must not
// postpone the following period, or the service rate would fall below the
// 20 ms packet arrival rate and the buffer would bleed deadline drops.
func (s *System) AdvanceReservation(st *Station) {
	if !s.owns(st) {
		return
	}
	period := s.Cfg.Geometry.VoicePeriod
	due := s.reg.stamp[st.slot] + period
	for due <= s.now {
		due += period
	}
	s.reg.stamp[st.slot] = due
}

// TransmitVoice sends up to maxPkts buffered voice packets of st in mode m.
// Voice packets are never retransmitted (they are delay-bound): an error is
// a loss. Returns packets sent OK and in error.
func (s *System) TransmitVoice(st *Station, m phy.Mode, maxPkts int) (ok, errs int) {
	s.syncChannel(st)
	per := s.PHY.PacketErrorProb(m, st.fad.Amplitude())
	v := st.src.voice
	n := v.Buffered()
	if n > maxPkts {
		n = maxPkts
	}
	for i := 0; i < n; i++ {
		if _, popped := v.Pop(); !popped {
			break
		}
		if s.Rand.Bernoulli(per) {
			errs++
		} else {
			ok++
		}
	}
	s.M.VoiceTxOK.Add(uint64(ok))
	s.M.VoiceTxErr.Add(uint64(errs))
	s.Reindex(st)
	return ok, errs
}

// TransmitData attempts nPkts head-of-line data packets of st in mode m.
// Failed packets remain queued for ARQ; successes record their queueing
// delay. Returns successes and failures.
func (s *System) TransmitData(st *Station, m phy.Mode, nPkts int) (ok, errs int) {
	s.syncChannel(st)
	per := s.PHY.PacketErrorProb(m, st.fad.Amplitude())
	ok, errs = st.src.data.TransmitAttempts(nPkts, s.now,
		func() bool { return !s.Rand.Bernoulli(per) },
		func(delay sim.Time) { s.M.ObserveDataDelay(delay) },
	)
	s.M.DataDelivered.Add(uint64(ok))
	s.M.DataTxErr.Add(uint64(errs))
	s.Reindex(st)
	return ok, errs
}

// --- base-station request queue (§4.5) ---

// QueueLen returns the number of queued requests.
func (s *System) QueueLen() int { return len(s.queue) }

// Queue returns the live queue slice (owned by the system; protocols may
// reorder it but must use Enqueue/Pop/Take to change membership).
func (s *System) Queue() []*Request { return s.queue }

// Enqueue stores a request that survived contention but got no slots. It
// returns false (and counts a drop) when the queue is full or queueing is
// disabled.
func (s *System) Enqueue(r *Request) bool {
	if !s.Cfg.UseQueue || len(s.queue) >= s.Cfg.QueueCap {
		s.M.QueueRejects.Inc()
		return false
	}
	s.queue = append(s.queue, r)
	s.SetPendingAtBS(r.St, true)
	return true
}

// PopQueueAt removes and returns the i-th queued request.
func (s *System) PopQueueAt(i int) *Request {
	r := s.queue[i]
	s.queue = append(s.queue[:i], s.queue[i+1:]...)
	s.SetPendingAtBS(r.St, false)
	return r
}

// TakeQueue empties the queue and returns its contents, clearing each
// station's pending flag. CHARISMA uses this to rebuild its candidate pool
// every frame.
func (s *System) TakeQueue() []*Request {
	q := s.queue
	s.queue = nil
	for _, r := range q {
		s.SetPendingAtBS(r.St, false)
	}
	return q
}

// scrubQueue discards queued requests that can no longer be served: voice
// requests whose packets all expired. ("If the deadline for a remaining
// request has expired, this request will not be queued anymore", §4.3.)
func (s *System) scrubQueue() {
	if len(s.queue) == 0 {
		return
	}
	kept := s.queue[:0]
	for _, r := range s.queue {
		if r.Kind == KindVoice && r.St.Voice().Buffered() == 0 {
			s.SetPendingAtBS(r.St, false)
			s.FreeRequest(r)
			continue
		}
		if r.Kind == KindData && r.St.Data().Backlog() == 0 {
			s.SetPendingAtBS(r.St, false)
			s.FreeRequest(r)
			continue
		}
		kept = append(kept, r)
	}
	s.queue = kept
}
