package mac

import (
	"fmt"
	"math/bits"

	"charisma/internal/obs"
	"charisma/internal/sim"
)

// This file implements the state-indexed station registry: every station of
// a System lives in exactly one bucket keyed by its MAC-visible state, and
// the frame loop, the contention-candidate scans of all five fixed-frame
// schedulers, and reservation service iterate only the relevant buckets
// instead of the whole population. Bucket membership is a bitset over the
// station's slot in System.Stations, so
//
//   - a state transition is an O(1) clear/set pair,
//   - scanning a bucket union visits stations in ID order (the order the
//     legacy full-population loops used, preserving every protocol's
//     MAC-stream draw sequence byte for byte), and
//   - a scan over k active stations in an n-station cell costs O(n/64 + k)
//     word reads instead of O(n) predicate evaluations.
//
// Stations with no MAC work at all (silent voice source, drained data
// queue) park in the idle bucket with an entry in the hierarchical timer
// wheel (wheel.go) keyed by their source's next event time; BeginFrame
// collects only the stations whose talkspurt or burst actually starts this
// frame. Combined with the lazy per-station fading replay in mac.go this
// makes per-frame cost scale with the active population, not the cell size.
//
// Hot per-station state lives in structure-of-arrays slabs here rather
// than on Station (see the Station comment in mac.go for the layout): the
// stamp slab holds the wake time of an idle station or the reservation due
// time of an admitted one, the chSync slab counts replayed fading steps,
// and the wheel's loc/pos slabs track the live timer entry. An idle
// station therefore costs a few slab rows and one wheel bucket int32 —
// tens of bytes — instead of a fat struct plus heap entries.
//
// Wake processing order. The old binary-heap queue popped due wakes in
// (time, slot) order; the wheel yields them in bucket-scan order instead.
// The results are byte-identical because waking is order-insensitive:
// advanceTraffic draws only from the woken station's private traffic
// streams (never the shared MAC stream), metric updates are commutative
// counter adds, and re-bucketing toggles per-station bitset bits. Every
// later scan that feeds the MAC stream (contention, reservation service)
// walks the bitsets in slot order, which is independent of the order the
// bits were set. The golden suite pins this end to end.

// bucketKind labels the registry buckets. Classification is by priority:
// a station matching several predicates lives in the first matching bucket,
// so the buckets partition the population.
type bucketKind uint8

const (
	// bucketIdle: no buffered voice, no ongoing talkspurt, no data
	// backlog, no reservation, nothing queued at the BS.
	bucketIdle bucketKind = iota
	// bucketPending: a request from this station sits in the BS queue.
	bucketPending
	// bucketReserved: an active voice reservation.
	bucketReserved
	// bucketTalkspurt: in a talkspurt or holding buffered voice packets,
	// without a reservation.
	bucketTalkspurt
	// bucketBacklogged: data backlog only.
	bucketBacklogged

	numBuckets
)

// bucketMask selects a union of buckets for a scan.
type bucketMask uint8

const (
	maskPending    bucketMask = 1 << bucketPending
	maskReserved   bucketMask = 1 << bucketReserved
	maskTalkspurt  bucketMask = 1 << bucketTalkspurt
	maskBacklogged bucketMask = 1 << bucketBacklogged

	// maskActive covers every bucket the frame loop must advance each
	// frame; only idle stations sit out.
	maskActive = maskPending | maskReserved | maskTalkspurt | maskBacklogged
	// maskContention covers every bucket that can hold a contention
	// candidate: talkspurt and backlogged stations by definition, and
	// reserved voice+data stations whose data backlog still contends.
	maskContention = maskReserved | maskTalkspurt | maskBacklogged
)

func (b bucketKind) String() string {
	switch b {
	case bucketIdle:
		return "idle"
	case bucketPending:
		return "pending-at-bs"
	case bucketReserved:
		return "reserved"
	case bucketTalkspurt:
		return "talkspurt"
	case bucketBacklogged:
		return "data-backlogged"
	}
	return "?"
}

// bitset is a fixed-capacity bit vector over station slots.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// registry holds the bucket bitsets, the timer wheel, the per-station
// slabs, and the reusable scan scratch of one System.
type registry struct {
	sets [numBuckets]bitset
	// counts tracks each bucket's population so scans skip empty buckets
	// without reading their bitset words: an all-idle 10⁶-station cell
	// pays O(1) per frame for the active-bucket sweep, not O(n/64).
	counts [numBuckets]int
	wheel  timerWheel

	// stamp is the per-station time slab, a union keyed by bucket: the
	// wake (next source event) time while the station is idle, the
	// reservation due time while it holds one. The two uses never overlap
	// — an idle station by definition holds no reservation — and the
	// wheel tracks its entries by location, never by stamp, so an
	// admitted station overwriting its old wake time is harmless.
	stamp []sim.Time
	// chSync counts the per-frame fading steps already applied per
	// station; the gap to the owner's frame index is replayed lazily when
	// the channel is next observed (see syncChannel). int32 spans 2^31
	// standard frames ≈ 62 simulated days.
	chSync []int32

	frameScratch []*Station // BeginFrame snapshot of the active buckets
	dueScratch   []*Station // VoiceReservationsDue collection
	wakeScratch  []int32    // wakeDue's collected due slots

	// epoch counts candidate-set changes: Reindex bumps it exactly when a
	// station's contention candidacy flips (tracked per station in
	// flagCandidate; every mutation of bucket membership or of a
	// Needs*Request input flows through Reindex — see the Reindex doc).
	// candScratch caches the contention-candidate list built at epoch
	// candEpoch; while the epoch is unchanged, repeated ForEachCandidate
	// scans (one per minislot in the request-slot loops, and across the
	// service phases of a frame, which reindex reserved stations without
	// changing the set) replay the cached slice instead of re-walking the
	// bitsets and re-evaluating the predicates. candEpoch 0 marks the
	// cache invalid (epoch starts at 1).
	epoch       uint64
	candEpoch   uint64
	candScratch []*Station
}

// reset (re-)initializes the registry for an n-station cell, reusing any
// already-allocated slab capacity — the replication-arena path rebuilds
// the registry with zero allocations when the population size repeats.
// ctr is the owning System's counter block; the wheel writes its
// arm/cascade counts there.
func (r *registry) reset(n int, ctr *obs.SimCounters) {
	words := (n + 63) / 64
	for b := range r.sets {
		if cap(r.sets[b]) >= words {
			r.sets[b] = r.sets[b][:words]
			clear(r.sets[b])
		} else {
			r.sets[b] = newBitset(n)
		}
		r.counts[b] = 0
	}
	if cap(r.stamp) >= n {
		r.stamp = r.stamp[:n]
		clear(r.stamp)
	} else {
		r.stamp = make([]sim.Time, n)
	}
	if cap(r.chSync) >= n {
		r.chSync = r.chSync[:n]
		clear(r.chSync)
	} else {
		r.chSync = make([]int32, n)
	}
	r.wheel.reset(n, r.stamp)
	r.wheel.ctr = ctr
	r.epoch = 1
	r.candEpoch = 0
	r.candScratch = r.candScratch[:0]
	r.frameScratch = r.frameScratch[:0]
	r.dueScratch = r.dueScratch[:0]
	r.wakeScratch = r.wakeScratch[:0]
}

// place inserts a station slot into a bucket (registration time; the slot
// must not already be in any bucket).
func (r *registry) place(i int, b bucketKind) {
	r.sets[b].set(i)
	r.counts[b]++
}

// move transfers a slot between buckets.
func (r *registry) move(i int, from, to bucketKind) {
	r.sets[from].clear(i)
	r.counts[from]--
	r.sets[to].set(i)
	r.counts[to]++
}

// owns reports whether st is registered with this system: its slot must
// index this system's station table and resolve back to the same object
// (a clone registered with another cell fails the identity check).
func (s *System) owns(st *Station) bool {
	i := int(st.slot)
	return i >= 0 && i < len(s.Stations) && s.Stations[i] == st
}

// classify computes the bucket a station belongs in from its live state.
// A deferred (not yet materialized) station has no sources and classifies
// idle, which is exactly its semantics: nothing to do until its first wake.
func classify(st *Station) bucketKind {
	switch {
	case st.flags&flagPendingAtBS != 0:
		return bucketPending
	case st.flags&flagReserved != 0:
		return bucketReserved
	case st.src != nil && st.src.voice != nil && (st.src.voice.Talking() || st.src.voice.Buffered() > 0):
		return bucketTalkspurt
	case st.src != nil && st.src.data != nil && st.src.data.Backlog() > 0:
		return bucketBacklogged
	default:
		return bucketIdle
	}
}

// nextWake returns the station's next source event time, or -1 when the
// station has no sources (an inert multicell clone never wakes). A deferred
// station's first wake was computed at build time and parked in the stamp
// slab.
func (s *System) nextWake(st *Station) sim.Time {
	if st.flags&flagDeferred != 0 {
		return s.reg.stamp[st.slot]
	}
	if st.src == nil {
		return -1
	}
	at := sim.Time(-1)
	if v := st.src.voice; v != nil {
		at = v.NextEventAt()
	}
	if d := st.src.data; d != nil {
		if na := d.NextArrivalAt(); at < 0 || na < at {
			at = na
		}
	}
	return at
}

// Reindex re-buckets a station after a state change. Every System method
// that mutates MAC-visible state calls it internally; external drivers
// (the multicell attach/detach path, tests poking station state directly)
// must call it themselves for the change to reach the scan paths this
// frame — although any station in an active bucket self-heals at the next
// BeginFrame, which reindexes everything it advances.
func (s *System) Reindex(st *Station) {
	if !s.owns(st) {
		return // foreign station (e.g. a clone registered with another cell)
	}
	b := classify(st)
	// Candidate-cache maintenance: flagCandidate mirrors the station's
	// live candidacy, so the cache is invalidated precisely when this
	// station's membership flips. Any call may have changed a predicate
	// input, but only this station's own membership can change — every
	// mutation flows through a Reindex of the mutated station — so
	// service-phase reindexes that do not flip it (transmitting on a
	// voice reservation, draining part of a data backlog) leave the
	// cached list valid for the frame's later contention scans. The
	// predicates are only evaluated for contention-bucket stations, and
	// short-circuit on the reserved flag for the common voice case.
	now := maskContention&(1<<b) != 0 &&
		(s.NeedsVoiceRequest(st) || s.NeedsDataRequest(st))
	if was := st.flags&flagCandidate != 0; now != was {
		if now {
			st.flags |= flagCandidate
		} else {
			st.flags &^= flagCandidate
		}
		if s.reg.candEpoch == s.reg.epoch {
			s.reg.epoch++ // the flip outdates a currently-valid cache
			s.ctr.EpochBumps++
		}
	}
	if old := st.bucket(); b != old {
		s.reg.move(int(st.slot), old, b)
		st.setBucket(b)
	}
	if b == bucketIdle {
		s.armWake(st)
	} else if s.reg.wheel.armed(st.slot) {
		// Leaving idle invalidates the wake entry; drop it eagerly so the
		// wheel never accumulates superseded entries and the stamp slab
		// is free to carry the reservation due time.
		s.reg.wheel.remove(st.slot)
	}
}

// armWake (re-)arms an idle station's next source event in the wheel.
func (s *System) armWake(st *Station) {
	at := s.nextWake(st)
	if at < 0 {
		s.reg.wheel.remove(st.slot)
		return
	}
	if s.reg.wheel.armed(st.slot) && s.reg.stamp[st.slot] == at {
		return // live entry already covers this event
	}
	s.reg.stamp[st.slot] = at
	s.reg.wheel.add(st.slot, at)
}

// wakeDue collects every idle station whose next source event is due and
// realizes its traffic. The collection phase touches only the wheel's and
// registry's int32/stamp slabs — k due wakes read k slab rows, no station
// pointers — and the realization phase then materializes, advances and
// re-buckets each collected station. Because every wheel entry is removed
// eagerly when its station leaves the idle bucket, every collected slot is
// live and due; no staleness filtering is needed.
func (s *System) wakeDue() {
	due := s.reg.wheel.collectDue(s.now, s.reg.wakeScratch[:0])
	s.reg.wakeScratch = due[:0]
	s.ctr.WheelWakes += uint64(len(due))
	for _, slot := range due {
		st := s.Stations[slot]
		if st.flags&flagDeferred != 0 {
			s.materialize(st)
		}
		s.advanceTraffic(st)
		s.Reindex(st)
	}
}

// forEachIn visits every station in the bucket union in slot (= station ID)
// order. fn must not re-bucket stations other than the one it was handed;
// scans that mutate take a snapshot first.
func (s *System) forEachIn(mask bucketMask, fn func(*Station)) {
	// Gather only the non-empty bucket bitsets; when every selected bucket
	// is empty (the all-idle cell) the sweep costs nothing at all.
	var live [numBuckets]bitset
	nl := 0
	for b := bucketKind(0); b < numBuckets; b++ {
		if mask&(1<<b) != 0 && s.reg.counts[b] > 0 {
			live[nl] = s.reg.sets[b]
			nl++
		}
	}
	if nl == 0 {
		return
	}
	for w := range live[0] {
		word := live[0][w]
		for k := 1; k < nl; k++ {
			word |= live[k][w]
		}
		base := w << 6
		for word != 0 {
			fn(s.Stations[base+bits.TrailingZeros64(word)])
			word &= word - 1
		}
	}
}

// appendIn appends the bucket union's stations, in ID order, to dst.
func (s *System) appendIn(dst []*Station, mask bucketMask) []*Station {
	s.forEachIn(mask, func(st *Station) { dst = append(dst, st) })
	return dst
}

// ForEachCandidate visits, in station-ID order, every station that
// currently needs a voice or data request — the §2 contention population.
// Protocols layer their per-frame "already acknowledged" filter on top.
//
// The candidate list is memoized on the registry epoch: the per-minislot
// scans of a request-slot loop repeat with no intervening state change
// (a collision slot acknowledges nobody), and a frame's service phases
// reindex reserved stations without flipping anyone's candidacy, so both
// replay the cached slice. Iterating a snapshot is equivalent to a live
// bitset walk under forEachIn's contract — fn must not re-bucket stations
// other than the one it was handed, and any mutation of the handed
// station flows through Reindex, which bumps the epoch exactly when a
// membership flip outdates the cache.
func (s *System) ForEachCandidate(fn func(*Station)) {
	r := &s.reg
	if r.candEpoch != r.epoch {
		s.ctr.CandMisses++
		r.candScratch = r.candScratch[:0]
		s.forEachIn(maskContention, func(st *Station) {
			if s.NeedsVoiceRequest(st) || s.NeedsDataRequest(st) {
				st.flags |= flagCandidate
				r.candScratch = append(r.candScratch, st)
			} else {
				st.flags &^= flagCandidate
			}
		})
		r.candEpoch = r.epoch
	} else {
		s.ctr.CandHits++
	}
	for _, st := range r.candScratch {
		fn(st)
	}
}

// AppendContenders appends to dst, in station-ID order, every contention
// candidate whose stampedAt entry differs from frame — the shared shape of
// the per-minislot scans: protocols stamp a station's ID with the current
// frame when its request is acknowledged, and pass a reusable scratch as
// dst so steady-state frames do not allocate.
func (s *System) AppendContenders(dst []*Station, stampedAt []int64, frame int64) []*Station {
	s.ForEachCandidate(func(st *Station) {
		if stampedAt[st.ID] != frame {
			dst = append(dst, st)
		}
	})
	return dst
}

// ForEachReserved visits, in station-ID order, every station holding an
// active voice reservation with no request pending at the BS — the
// population CHARISMA regenerates reservation requests for and RMAV holds
// persistent slots for.
func (s *System) ForEachReserved(fn func(*Station)) {
	s.forEachIn(maskReserved, fn)
}

// VerifyRegistry checks the registry invariants: every station sits in
// exactly one bucket, the bucket matches its recorded label, at a frame
// boundary the label matches the station's live state, and the wheel holds
// a live entry exactly for the idle stations that have one to arm. Exposed
// for the invariant tests.
func (s *System) VerifyRegistry() error {
	entries := 0
	for _, st := range s.Stations {
		n := 0
		for b := bucketKind(0); b < numBuckets; b++ {
			if s.reg.sets[b].has(int(st.slot)) {
				n++
				if b != st.bucket() {
					return fmt.Errorf("mac: station %d in bucket %v but labeled %v", st.ID, b, st.bucket())
				}
			}
		}
		if n != 1 {
			return fmt.Errorf("mac: station %d in %d buckets, want exactly 1", st.ID, n)
		}
		if want := classify(st); want != st.bucket() {
			return fmt.Errorf("mac: station %d stale: bucket %v, state says %v", st.ID, st.bucket(), want)
		}
		cand := maskContention&(1<<st.bucket()) != 0 &&
			(s.NeedsVoiceRequest(st) || s.NeedsDataRequest(st))
		if cand != (st.flags&flagCandidate != 0) {
			return fmt.Errorf("mac: station %d candidate flag %v, live candidacy %v", st.ID, !cand, cand)
		}
		armed := s.reg.wheel.armed(st.slot)
		if st.bucket() != bucketIdle && armed {
			return fmt.Errorf("mac: station %d holds a wheel entry outside the idle bucket", st.ID)
		}
		if st.bucket() == bucketIdle && s.nextWake(st) >= 0 && !armed {
			return fmt.Errorf("mac: idle station %d has a wake due but no wheel entry", st.ID)
		}
		if armed {
			entries++
			l := s.reg.wheel.loc[st.slot]
			b := s.reg.wheel.buckets[l>>wheelBits][l&(wheelSlots-1)]
			p := s.reg.wheel.pos[st.slot]
			if int(p) >= len(b) || b[p] != st.slot {
				return fmt.Errorf("mac: station %d wheel loc/pos do not resolve to its entry", st.ID)
			}
		}
	}
	if entries != s.reg.wheel.count {
		return fmt.Errorf("mac: wheel count %d but %d live entries", s.reg.wheel.count, entries)
	}
	for b := bucketKind(0); b < numBuckets; b++ {
		n := 0
		for _, w := range s.reg.sets[b] {
			n += bits.OnesCount64(w)
		}
		if n != s.reg.counts[b] {
			return fmt.Errorf("mac: bucket %v count %d but %d bits set", b, s.reg.counts[b], n)
		}
	}
	// A valid candidate cache must match a fresh scan exactly: same
	// stations, same slot order.
	if s.reg.candEpoch == s.reg.epoch {
		var fresh []*Station
		s.forEachIn(maskContention, func(st *Station) {
			if s.NeedsVoiceRequest(st) || s.NeedsDataRequest(st) {
				fresh = append(fresh, st)
			}
		})
		if len(fresh) != len(s.reg.candScratch) {
			return fmt.Errorf("mac: candidate cache holds %d stations, fresh scan %d", len(s.reg.candScratch), len(fresh))
		}
		for i, st := range fresh {
			if s.reg.candScratch[i] != st {
				return fmt.Errorf("mac: candidate cache entry %d is station %d, fresh scan says %d", i, s.reg.candScratch[i].ID, st.ID)
			}
		}
	}
	return nil
}
