package mac

import (
	"fmt"
	"math/bits"

	"charisma/internal/sim"
)

// This file implements the state-indexed station registry: every station of
// a System lives in exactly one bucket keyed by its MAC-visible state, and
// the frame loop, the contention-candidate scans of all five fixed-frame
// schedulers, and reservation service iterate only the relevant buckets
// instead of the whole population. Bucket membership is a bitset over the
// station's slot in System.Stations, so
//
//   - a state transition is an O(1) clear/set pair,
//   - scanning a bucket union visits stations in ID order (the order the
//     legacy full-population loops used, preserving every protocol's
//     MAC-stream draw sequence byte for byte), and
//   - a scan over k active stations in an n-station cell costs O(n/64 + k)
//     word reads instead of O(n) predicate evaluations.
//
// Stations with no MAC work at all (silent voice source, drained data
// queue) park in the idle bucket with an entry in a wake queue keyed by
// their source's next event time; BeginFrame pops only the stations whose
// talkspurt or burst actually starts this frame. Combined with the lazy
// per-station fading replay in mac.go this makes per-frame cost scale with
// the active population, not the cell size.

// bucketKind labels the registry buckets. Classification is by priority:
// a station matching several predicates lives in the first matching bucket,
// so the buckets partition the population.
type bucketKind uint8

const (
	// bucketIdle: no buffered voice, no ongoing talkspurt, no data
	// backlog, no reservation, nothing queued at the BS.
	bucketIdle bucketKind = iota
	// bucketPending: a request from this station sits in the BS queue.
	bucketPending
	// bucketReserved: an active voice reservation.
	bucketReserved
	// bucketTalkspurt: in a talkspurt or holding buffered voice packets,
	// without a reservation.
	bucketTalkspurt
	// bucketBacklogged: data backlog only.
	bucketBacklogged

	numBuckets
)

// bucketMask selects a union of buckets for a scan.
type bucketMask uint8

const (
	maskPending    bucketMask = 1 << bucketPending
	maskReserved   bucketMask = 1 << bucketReserved
	maskTalkspurt  bucketMask = 1 << bucketTalkspurt
	maskBacklogged bucketMask = 1 << bucketBacklogged

	// maskActive covers every bucket the frame loop must advance each
	// frame; only idle stations sit out.
	maskActive = maskPending | maskReserved | maskTalkspurt | maskBacklogged
	// maskContention covers every bucket that can hold a contention
	// candidate: talkspurt and backlogged stations by definition, and
	// reserved voice+data stations whose data backlog still contends.
	maskContention = maskReserved | maskTalkspurt | maskBacklogged
)

func (b bucketKind) String() string {
	switch b {
	case bucketIdle:
		return "idle"
	case bucketPending:
		return "pending-at-bs"
	case bucketReserved:
		return "reserved"
	case bucketTalkspurt:
		return "talkspurt"
	case bucketBacklogged:
		return "data-backlogged"
	}
	return "?"
}

// bitset is a fixed-capacity bit vector over station slots.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// registry holds the bucket bitsets, the idle wake queue, and the reusable
// scan scratch of one System.
type registry struct {
	sets [numBuckets]bitset
	wake wakeQueue

	frameScratch []*Station // BeginFrame snapshot of the active buckets
	dueScratch   []*Station // VoiceReservationsDue collection
}

func (r *registry) init(n int) {
	for b := range r.sets {
		r.sets[b] = newBitset(n)
	}
}

// classify computes the bucket a station belongs in from its live state.
func classify(st *Station) bucketKind {
	switch {
	case st.PendingAtBS:
		return bucketPending
	case st.Reserved:
		return bucketReserved
	case st.Voice != nil && (st.Voice.Talking() || st.Voice.Buffered() > 0):
		return bucketTalkspurt
	case st.Data != nil && st.Data.Backlog() > 0:
		return bucketBacklogged
	default:
		return bucketIdle
	}
}

// nextWake returns the station's next source event time, or -1 when the
// station has no sources (an inert multicell clone never wakes).
func nextWake(st *Station) sim.Time {
	at := sim.Time(-1)
	if st.Voice != nil {
		at = st.Voice.NextEventAt()
	}
	if st.Data != nil {
		if na := st.Data.NextArrivalAt(); at < 0 || na < at {
			at = na
		}
	}
	return at
}

// Reindex re-buckets a station after a state change. Every System method
// that mutates MAC-visible state calls it internally; external drivers
// (the multicell attach/detach path, tests poking Station fields directly)
// must call it themselves for the change to reach the scan paths this
// frame — although any station in an active bucket self-heals at the next
// BeginFrame, which reindexes everything it advances.
func (s *System) Reindex(st *Station) {
	if st.owner != s {
		return // foreign station (e.g. a clone registered with another cell)
	}
	b := classify(st)
	if b != st.bucket {
		s.reg.sets[st.bucket].clear(st.slot)
		s.reg.sets[b].set(st.slot)
		st.bucket = b
	}
	if b == bucketIdle {
		s.armWake(st)
	}
}

// armWake (re-)queues an idle station's next source event.
func (s *System) armWake(st *Station) {
	at := nextWake(st)
	if at < 0 {
		return
	}
	if st.wakeQueued && st.wakeAt == at {
		return // live queue entry already covers this event
	}
	st.wakeAt = at
	st.wakeQueued = true
	s.reg.wake.push(wakeEntry{at: at, slot: int32(st.slot)})
}

// wakeDue pops every idle station whose next source event is due, realizes
// its traffic, and re-buckets it. Entries are invalidated lazily: a station
// that left the idle bucket (or re-armed at a different time) since being
// pushed is skipped.
func (s *System) wakeDue() {
	for {
		e, ok := s.reg.wake.peek()
		if !ok || e.at > s.now {
			return
		}
		s.reg.wake.pop()
		st := s.Stations[e.slot]
		if st.bucket != bucketIdle || !st.wakeQueued || st.wakeAt != e.at {
			continue
		}
		st.wakeQueued = false
		s.advanceTraffic(st)
		s.Reindex(st)
	}
}

// forEachIn visits every station in the bucket union in slot (= station ID)
// order. fn must not re-bucket stations other than the one it was handed;
// scans that mutate take a snapshot first.
func (s *System) forEachIn(mask bucketMask, fn func(*Station)) {
	sets := &s.reg.sets
	for w := range sets[0] {
		var word uint64
		for b := bucketKind(0); b < numBuckets; b++ {
			if mask&(1<<b) != 0 {
				word |= sets[b][w]
			}
		}
		base := w << 6
		for word != 0 {
			fn(s.Stations[base+bits.TrailingZeros64(word)])
			word &= word - 1
		}
	}
}

// appendIn appends the bucket union's stations, in ID order, to dst.
func (s *System) appendIn(dst []*Station, mask bucketMask) []*Station {
	s.forEachIn(mask, func(st *Station) { dst = append(dst, st) })
	return dst
}

// ForEachCandidate visits, in station-ID order, every station that
// currently needs a voice or data request — the §2 contention population.
// Protocols layer their per-frame "already acknowledged" filter on top.
func (s *System) ForEachCandidate(fn func(*Station)) {
	s.forEachIn(maskContention, func(st *Station) {
		if s.NeedsVoiceRequest(st) || s.NeedsDataRequest(st) {
			fn(st)
		}
	})
}

// AppendContenders appends to dst, in station-ID order, every contention
// candidate whose stampedAt entry differs from frame — the shared shape of
// the per-minislot scans: protocols stamp a station's ID with the current
// frame when its request is acknowledged, and pass a reusable scratch as
// dst so steady-state frames do not allocate.
func (s *System) AppendContenders(dst []*Station, stampedAt []int64, frame int64) []*Station {
	s.ForEachCandidate(func(st *Station) {
		if stampedAt[st.ID] != frame {
			dst = append(dst, st)
		}
	})
	return dst
}

// ForEachReserved visits, in station-ID order, every station holding an
// active voice reservation with no request pending at the BS — the
// population CHARISMA regenerates reservation requests for and RMAV holds
// persistent slots for.
func (s *System) ForEachReserved(fn func(*Station)) {
	s.forEachIn(maskReserved, fn)
}

// VerifyRegistry checks the registry invariants: every station sits in
// exactly one bucket, the bucket matches its recorded label, and — at a
// frame boundary, when no external mutation is in flight — the label
// matches the station's live state. Exposed for the invariant tests.
func (s *System) VerifyRegistry() error {
	for _, st := range s.Stations {
		n := 0
		for b := bucketKind(0); b < numBuckets; b++ {
			if s.reg.sets[b].has(st.slot) {
				n++
				if b != st.bucket {
					return fmt.Errorf("mac: station %d in bucket %v but labeled %v", st.ID, b, st.bucket)
				}
			}
		}
		if n != 1 {
			return fmt.Errorf("mac: station %d in %d buckets, want exactly 1", st.ID, n)
		}
		if want := classify(st); want != st.bucket {
			return fmt.Errorf("mac: station %d stale: bucket %v, state says %v", st.ID, st.bucket, want)
		}
	}
	return nil
}

// wakeEntry is one queued idle-station wake-up.
type wakeEntry struct {
	at   sim.Time
	slot int32
}

// wakeQueue is a plain binary min-heap of wake entries ordered by time
// (ties broken by slot for determinism). Entries are never removed in
// place; staleness is detected at pop time against the station's current
// wakeAt/wakeQueued fields.
type wakeQueue struct {
	h []wakeEntry
}

func (q *wakeQueue) less(a, b wakeEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.slot < b.slot
}

func (q *wakeQueue) peek() (wakeEntry, bool) {
	if len(q.h) == 0 {
		return wakeEntry{}, false
	}
	return q.h[0], true
}

func (q *wakeQueue) push(e wakeEntry) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(q.h[i], q.h[p]) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

func (q *wakeQueue) pop() wakeEntry {
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && q.less(q.h[l], q.h[m]) {
			m = l
		}
		if r < last && q.less(q.h[r], q.h[m]) {
			m = r
		}
		if m == i {
			return top
		}
		q.h[i], q.h[m] = q.h[m], q.h[i]
		i = m
	}
}
