package mac

import (
	"math"
	"testing"

	"charisma/internal/channel"
	"charisma/internal/phy"
	"charisma/internal/rng"
	"charisma/internal/sim"
	"charisma/internal/traffic"
)

// makeSystem builds a small cell: nv voice stations then nd data stations.
func makeSystem(t *testing.T, nv, nd int, mutate func(*Config)) *System {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	n := nv + nd
	bank := channel.NewBank(n, channel.DefaultParams(), 1)
	stations := make([]*Station, n)
	for i := 0; i < n; i++ {
		var v *traffic.VoiceSource
		var d *traffic.DataSource
		if i < nv {
			v = traffic.NewVoice(traffic.DefaultVoiceParams(), rng.Derive(1, "v", string(rune('a'+i))), 0)
		} else {
			d = traffic.NewData(traffic.DefaultDataParams(), rng.Derive(1, "d", string(rune('a'+i))), 0)
		}
		stations[i] = NewStation(i, v, d, bank.User(i))
	}
	sys, err := NewSystem(cfg, phy.NewAdaptive(phy.DefaultParams()), stations, rng.Derive(1, "mac"))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.PermVoice = 0 },
		func(c *Config) { c.PermVoice = 1.5 },
		func(c *Config) { c.PermData = -0.1 },
		func(c *Config) { c.UseQueue = true; c.QueueCap = 0 },
		func(c *Config) { c.CSIValidityFrames = 0 },
		func(c *Config) { c.StaleDecayPerFrame = 0 },
		func(c *Config) { c.StaleDecayPerFrame = 1.1 },
		func(c *Config) { c.CSIEstNoiseStd = -1 },
		func(c *Config) { c.Geometry.FrameSymbols = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewSystemRejectsNil(t *testing.T) {
	if _, err := NewSystem(DefaultConfig(), nil, nil, rng.New(1)); err == nil {
		t.Fatal("nil PHY accepted")
	}
	if _, err := NewSystem(DefaultConfig(), phy.NewFixed(phy.DefaultParams()), nil, nil); err == nil {
		t.Fatal("nil stream accepted")
	}
}

func TestKindString(t *testing.T) {
	if KindVoice.String() != "voice" || KindData.String() != "data" {
		t.Fatal("kind strings wrong")
	}
}

func TestBeginFrameCountsTraffic(t *testing.T) {
	s := makeSystem(t, 5, 5, nil)
	for f := 0; f < 4000; f++ {
		s.BeginFrame()
		// Drain everything so buffers do not explode.
		for _, st := range s.Stations {
			if st.Voice() != nil {
				for st.Voice().Buffered() > 0 {
					st.Voice().Pop()
				}
			}
			if st.Data() != nil {
				st.Data().TransmitAttempts(st.Data().Backlog(), s.Now(), func() bool { return true }, func(sim.Time) {})
			}
		}
		s.EndFrame(s.FrameDuration())
	}
	if s.M.VoiceGenerated.Total() == 0 {
		t.Fatal("no voice packets counted")
	}
	if s.M.DataGenerated.Total() == 0 {
		t.Fatal("no data packets counted")
	}
	if s.FrameIndex() != 4000 {
		t.Fatalf("frame index = %d", s.FrameIndex())
	}
	if s.Now() != 4000*s.FrameDuration() {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestBeginFrameDropsExpiredAndReleasesReservation(t *testing.T) {
	s := makeSystem(t, 1, 0, nil)
	st := s.Stations[0]
	// Walk until the station talks and has a packet.
	for f := 0; st.Voice().Buffered() == 0 && f < 100000; f++ {
		s.BeginFrame()
		s.EndFrame(s.FrameDuration())
	}
	s.GrantReservationAt(st, s.Now())
	// Let every packet expire and the talkspurt end without service.
	for f := 0; (st.Voice().Talking() || st.Voice().Buffered() > 0) && f < 1000000; f++ {
		s.BeginFrame()
		s.EndFrame(s.FrameDuration())
	}
	if st.Reserved() {
		t.Fatal("reservation not released after talkspurt drained")
	}
	if s.M.VoiceDropped.Total() == 0 {
		t.Fatal("expired packets not counted as dropped")
	}
}

func TestEndFramePanicsOnZeroDuration(t *testing.T) {
	s := makeSystem(t, 1, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-duration frame accepted")
		}
	}()
	s.EndFrame(0)
}

func TestNeedsRequestPredicates(t *testing.T) {
	s := makeSystem(t, 1, 1, nil)
	v, d := s.Stations[0], s.Stations[1]
	// Walk until both have work.
	for f := 0; (v.Voice().Buffered() == 0 || d.Data().Backlog() == 0) && f < 1000000; f++ {
		s.BeginFrame()
		s.EndFrame(s.FrameDuration())
		if v.Voice().Buffered() > 0 && d.Data().Backlog() > 0 {
			break
		}
	}
	if !s.NeedsVoiceRequest(v) {
		t.Fatal("voice station with packets should need a request")
	}
	if !s.NeedsDataRequest(d) {
		t.Fatal("data station with backlog should need a request")
	}
	if s.RequestKind(v) != KindVoice || s.RequestKind(d) != KindData {
		t.Fatal("request kinds wrong")
	}
	if s.PermissionProb(v) != s.Cfg.PermVoice || s.PermissionProb(d) != s.Cfg.PermData {
		t.Fatal("permission probabilities wrong")
	}
	s.GrantReservation(v)
	if s.NeedsVoiceRequest(v) {
		t.Fatal("reserved voice station should not contend")
	}
	s.CancelReservation(v)
	s.SetPendingAtBS(v, true)
	if s.NeedsVoiceRequest(v) {
		t.Fatal("queued station should not contend")
	}
	s.SetPendingAtBS(d, true)
	if s.NeedsDataRequest(d) {
		t.Fatal("queued data station should not contend")
	}
}

func TestContendEmpty(t *testing.T) {
	s := makeSystem(t, 1, 0, nil)
	if s.Contend(nil) != nil {
		t.Fatal("empty contention produced a winner")
	}
}

func TestContendSingleEventuallyWins(t *testing.T) {
	s := makeSystem(t, 1, 0, nil)
	st := s.Stations[0]
	for f := 0; st.Voice().Buffered() == 0 && f < 1000000; f++ {
		s.BeginFrame()
		s.EndFrame(s.FrameDuration())
	}
	won := false
	for i := 0; i < 1000; i++ {
		if s.Contend([]*Station{st}) == st {
			won = true
			break
		}
	}
	if !won {
		t.Fatal("lone contender never won in 1000 minislots at pv=0.1")
	}
	if s.M.ReqSuccesses.Total() == 0 {
		t.Fatal("success not counted")
	}
}

func TestContendCollisionsCounted(t *testing.T) {
	s := makeSystem(t, 40, 0, func(c *Config) { c.PermVoice = 1.0 })
	var cands []*Station
	for _, st := range s.Stations {
		// Force every station to want a voice grant.
		for f := 0; st.Voice().Buffered() == 0 && f < 1000000; f++ {
			s.BeginFrame()
			s.EndFrame(s.FrameDuration())
		}
		if st.Voice().Buffered() > 0 {
			cands = append(cands, st)
		}
	}
	if len(cands) < 2 {
		t.Skip("not enough simultaneous talkers")
	}
	if w := s.Contend(cands); w != nil {
		t.Fatal("p=1 with >=2 contenders must collide")
	}
	if s.M.ReqCollisions.Total() == 0 {
		t.Fatal("collision not counted")
	}
}

func TestQueueSemantics(t *testing.T) {
	s := makeSystem(t, 2, 0, func(c *Config) { c.UseQueue = true; c.QueueCap = 2 })
	a, b, cExtra := s.Stations[0], s.Stations[1], NewStation(99, nil, nil, nil)
	ra := &Request{St: a, Kind: KindVoice}
	rb := &Request{St: b, Kind: KindVoice}
	rc := &Request{St: cExtra, Kind: KindVoice}
	if !s.Enqueue(ra) || !s.Enqueue(rb) {
		t.Fatal("enqueue within cap failed")
	}
	if !a.PendingAtBS() || !b.PendingAtBS() {
		t.Fatal("pending flags not set")
	}
	if s.Enqueue(rc) {
		t.Fatal("enqueue beyond cap succeeded")
	}
	if s.M.QueueRejects.Total() != 1 {
		t.Fatal("queue reject not counted")
	}
	if s.QueueLen() != 2 {
		t.Fatalf("queue length %d", s.QueueLen())
	}
	got := s.PopQueueAt(0)
	if got != ra || ra.St.PendingAtBS() {
		t.Fatal("PopQueueAt wrong")
	}
	rest := s.TakeQueue()
	if len(rest) != 1 || rest[0] != rb || rb.St.PendingAtBS() {
		t.Fatal("TakeQueue wrong")
	}
	if s.QueueLen() != 0 {
		t.Fatal("queue not emptied")
	}
}

func TestQueueDisabledRejects(t *testing.T) {
	s := makeSystem(t, 1, 0, nil) // UseQueue=false
	if s.Enqueue(&Request{St: s.Stations[0], Kind: KindVoice}) {
		t.Fatal("enqueue succeeded with queue disabled")
	}
}

func TestScrubQueueRemovesMootRequests(t *testing.T) {
	s := makeSystem(t, 1, 1, func(c *Config) { c.UseQueue = true })
	v, d := s.Stations[0], s.Stations[1]
	s.Enqueue(&Request{St: v, Kind: KindVoice})
	s.Enqueue(&Request{St: d, Kind: KindData})
	// Voice buffer and data backlog are empty at t=0, so both requests
	// are moot and the next BeginFrame must scrub them.
	s.BeginFrame()
	if v.PendingAtBS() && v.Voice().Buffered() == 0 {
		t.Fatal("moot voice request not scrubbed")
	}
	if d.PendingAtBS() && d.Data().Backlog() == 0 {
		t.Fatal("moot data request not scrubbed")
	}
}

func TestReservationCadenceAnchored(t *testing.T) {
	s := makeSystem(t, 1, 0, nil)
	st := s.Stations[0]
	s.GrantReservation(st)
	first := s.NextVoiceDue(st)
	if first != s.Now()+s.Cfg.Geometry.VoicePeriod {
		t.Fatal("grant did not schedule one period ahead")
	}
	// Simulate serving 3 frames late: the next due must stay on the
	// original 20 ms grid, not shift by the service delay.
	for i := 0; i < 11; i++ {
		s.EndFrame(s.FrameDuration())
	}
	s.AdvanceReservation(st)
	if got := s.NextVoiceDue(st); got != first+s.Cfg.Geometry.VoicePeriod {
		t.Fatalf("cadence drifted: due = %v, want %v", got, first+s.Cfg.Geometry.VoicePeriod)
	}
}

func TestAdvanceReservationCatchesUp(t *testing.T) {
	s := makeSystem(t, 1, 0, nil)
	st := s.Stations[0]
	s.GrantReservationAt(st, 0)
	for i := 0; i < 100; i++ { // advance 100 frames = 12.5 periods
		s.EndFrame(s.FrameDuration())
	}
	s.AdvanceReservation(st)
	if s.NextVoiceDue(st) <= s.Now() {
		t.Fatal("AdvanceReservation left the due time in the past")
	}
	if s.NextVoiceDue(st) > s.Now()+s.Cfg.Geometry.VoicePeriod {
		t.Fatal("AdvanceReservation overshot by more than one period")
	}
}

func TestVoiceReservationsDueOrderingAndSkip(t *testing.T) {
	s := makeSystem(t, 3, 0, nil)
	// Give stations packets by simulation, then set up reservations.
	for f := 0; f < 1000000; f++ {
		all := true
		s.BeginFrame()
		s.EndFrame(s.FrameDuration())
		for _, st := range s.Stations {
			if st.Voice().Buffered() == 0 {
				all = false
			}
		}
		if all {
			break
		}
	}
	a, b, c := s.Stations[0], s.Stations[1], s.Stations[2]
	for _, st := range []*Station{a, b, c} {
		if st.Voice().Buffered() == 0 {
			t.Skip("station never accumulated packets")
		}
	}
	s.GrantReservationAt(a, s.Now()-10)
	s.GrantReservationAt(b, s.Now()-20)
	s.GrantReservationAt(c, s.Now()+1000) // not due
	due := s.VoiceReservationsDue()
	if len(due) != 2 {
		t.Fatalf("%d due, want 2", len(due))
	}
	if due[0] != b || due[1] != a {
		t.Fatal("due list not ordered by due time")
	}
}

func TestTransmitVoiceAccounting(t *testing.T) {
	s := makeSystem(t, 1, 0, nil)
	st := s.Stations[0]
	for f := 0; st.Voice().Buffered() == 0 && f < 1000000; f++ {
		s.BeginFrame()
		s.EndFrame(s.FrameDuration())
	}
	n := st.Voice().Buffered()
	mode := s.PHY.Modes()[0] // most robust mode: errors essentially impossible at normal amplitude
	ok, errs := s.TransmitVoice(st, mode, n)
	if ok+errs != n {
		t.Fatalf("transmitted %d, want %d", ok+errs, n)
	}
	if st.Voice().Buffered() != 0 {
		t.Fatal("voice packets not consumed")
	}
	if s.M.VoiceTxOK.Total() != uint64(ok) || s.M.VoiceTxErr.Total() != uint64(errs) {
		t.Fatal("voice tx metrics wrong")
	}
}

func TestTransmitVoiceDeepFadeErrors(t *testing.T) {
	s := makeSystem(t, 1, 0, nil)
	st := s.Stations[0]
	for f := 0; st.Voice().Buffered() == 0 && f < 1000000; f++ {
		s.BeginFrame()
		s.EndFrame(s.FrameDuration())
	}
	// Transmitting in the top mode during what is effectively a deep fade
	// relative to its threshold must fail essentially always: force this
	// by using the highest mode at whatever amplitude and checking that
	// the PER model is respected statistically over many trials instead.
	top := s.PHY.Modes()[len(s.PHY.Modes())-1]
	per := s.PHY.PacketErrorProb(top, 0.01)
	if per < 0.999 {
		t.Fatalf("PER in deep fade = %v, want ~1", per)
	}
}

func TestTransmitDataRecordsDelay(t *testing.T) {
	s := makeSystem(t, 0, 1, nil)
	st := s.Stations[0]
	for f := 0; st.Data().Backlog() == 0 && f < 1000000; f++ {
		s.BeginFrame()
		s.EndFrame(s.FrameDuration())
	}
	mode := s.PHY.Modes()[0]
	n := st.Data().Backlog()
	if n > 10 {
		n = 10
	}
	ok, errs := s.TransmitData(st, mode, n)
	if ok+errs != n {
		t.Fatalf("attempted %d, want %d", ok+errs, n)
	}
	if s.M.DataDelivered.Total() != uint64(ok) {
		t.Fatal("delivered metric wrong")
	}
	if ok > 0 {
		r := s.M.Result("x", s.Cfg.Geometry.FrameSymbols)
		if r.MeanDataDelaySec < 0 {
			t.Fatal("negative mean delay")
		}
	}
}

func TestEffectiveAmpDecay(t *testing.T) {
	s := makeSystem(t, 1, 0, nil)
	e := channel.Estimate{Amp: 1.0, At: 0}
	if got := s.EffectiveAmp(e); got != 1.0 {
		t.Fatalf("fresh estimate decayed: %v", got)
	}
	for i := 0; i < 4; i++ {
		s.EndFrame(s.FrameDuration())
	}
	want := math.Pow(s.Cfg.StaleDecayPerFrame, 4)
	if got := s.EffectiveAmp(e); math.Abs(got-want) > 1e-12 {
		t.Fatalf("4-frame-old estimate = %v, want %v", got, want)
	}
}

func TestEstimateStale(t *testing.T) {
	s := makeSystem(t, 1, 0, nil)
	e := channel.Estimate{Amp: 1, At: 0}
	if s.EstimateStale(e) {
		t.Fatal("fresh estimate flagged stale")
	}
	for i := 0; i < s.Cfg.CSIValidityFrames+1; i++ {
		s.EndFrame(s.FrameDuration())
	}
	if !s.EstimateStale(e) {
		t.Fatal("old estimate not flagged stale")
	}
}

func TestNewRequestCarriesPilotEstimate(t *testing.T) {
	s := makeSystem(t, 1, 1, nil)
	v, d := s.Stations[0], s.Stations[1]
	for f := 0; (v.Voice().Buffered() == 0 || d.Data().Backlog() == 0) && f < 1000000; f++ {
		s.BeginFrame()
		s.EndFrame(s.FrameDuration())
	}
	rv := s.NewRequest(v, KindVoice)
	if rv.NPkts != v.Voice().Buffered() || rv.Kind != KindVoice {
		t.Fatal("voice request fields wrong")
	}
	if rv.Est.At != s.Now() {
		t.Fatal("estimate not stamped at now")
	}
	if rv.Est.Amp <= 0 {
		t.Fatal("estimate amplitude not positive")
	}
	rd := s.NewRequest(d, KindData)
	if rd.NPkts != d.Data().Backlog() || rd.Kind != KindData {
		t.Fatal("data request fields wrong")
	}
}

func TestRefreshEstimateCountsPoll(t *testing.T) {
	s := makeSystem(t, 1, 0, nil)
	before := s.M.CSIPolls.Total()
	s.RefreshEstimate(s.Stations[0])
	if s.M.CSIPolls.Total() != before+1 {
		t.Fatal("poll not counted")
	}
}

func TestMetricsResult(t *testing.T) {
	var m Metrics
	m.VoiceGenerated.Add(1000)
	m.VoiceDropped.Add(30)
	m.VoiceTxErr.Add(20)
	m.VoiceTxOK.Add(950)
	m.DataDelivered.Add(400)
	m.MeasuredTicks.Add(800 * 100)
	m.ReqSuccesses.Add(90)
	m.ReqCollisions.Add(10)
	m.InfoSymbolsTotal.Add(1000)
	m.InfoSymbolsUsed.Add(750)
	r := m.Result("test", 800)
	if math.Abs(r.VoiceLossRate-0.05) > 1e-12 {
		t.Fatalf("Ploss = %v, want 0.05", r.VoiceLossRate)
	}
	if math.Abs(r.VoiceDropRate-0.03) > 1e-12 || math.Abs(r.VoiceErrorRate-0.02) > 1e-12 {
		t.Fatal("loss split wrong")
	}
	if r.Frames != 100 {
		t.Fatalf("frames = %v", r.Frames)
	}
	if math.Abs(r.DataThroughputPerFrame-4) > 1e-12 {
		t.Fatalf("throughput = %v, want 4", r.DataThroughputPerFrame)
	}
	if math.Abs(r.CollisionRate-0.1) > 1e-12 {
		t.Fatalf("collision rate = %v", r.CollisionRate)
	}
	if math.Abs(r.InfoUtilization-0.75) > 1e-12 {
		t.Fatalf("utilization = %v", r.InfoUtilization)
	}
}

func TestMetricsMarkExcludesWarmup(t *testing.T) {
	var m Metrics
	m.VoiceGenerated.Add(500)
	m.VoiceDropped.Add(500)
	m.ObserveDataDelay(10 * sim.Second)
	m.Mark()
	m.VoiceGenerated.Add(100)
	m.VoiceTxOK.Add(100)
	m.MeasuredTicks.Add(800)
	r := m.Result("test", 800)
	if r.VoiceLossRate != 0 {
		t.Fatalf("warm-up losses leaked into result: %v", r.VoiceLossRate)
	}
	if r.MeanDataDelaySec != 0 {
		t.Fatal("warm-up delay samples leaked")
	}
}
