package mac

import "charisma/internal/stats"

// AggregateReplications pools N independent replications of the same
// scenario into one Result. Event counters and measured frames are summed,
// the paper's rates are recomputed from the pooled counters (so every
// replication contributes in proportion to its traffic), the mean data
// delay is delivery-weighted, and Reps reports across-replication
// Student-t 95% confidence half-widths of the three headline metrics.
// DataDelayCI95 is replaced by the across-replication interval: the
// within-run interval treats correlated samples of one sample path as
// independent and overstates confidence.
//
// The fold visits replications in slice order, so results are
// byte-identical no matter how many workers produced the inputs.
func AggregateReplications(rs []Result) Result {
	if len(rs) == 0 {
		return Result{}
	}
	if len(rs) == 1 {
		r := rs[0]
		if r.Reps.Replications == 0 {
			r.Reps.Replications = 1
		}
		return r
	}

	agg := Result{Protocol: rs[0].Protocol}
	var loss, thru, delay stats.MeanVar
	var delaySum, utilSum float64
	minSet := false
	for _, r := range rs {
		agg.Frames += r.Frames
		agg.VoiceGenerated += r.VoiceGenerated
		agg.VoiceDropped += r.VoiceDropped
		agg.VoiceErrored += r.VoiceErrored
		agg.VoiceDelivered += r.VoiceDelivered
		agg.DataGenerated += r.DataGenerated
		agg.DataDelivered += r.DataDelivered
		agg.DataErrored += r.DataErrored
		agg.ReqAttempts += r.ReqAttempts
		agg.ReqCollisions += r.ReqCollisions
		agg.ReqSuccesses += r.ReqSuccesses
		agg.CSIPolls += r.CSIPolls
		agg.QueueRejects += r.QueueRejects
		if r.MaxDataDelaySec > agg.MaxDataDelaySec {
			agg.MaxDataDelaySec = r.MaxDataDelaySec
		}
		// The pooled minimum only considers replications that delivered
		// data: an idle replication's zero is absence, not a delay.
		if r.DataDelivered > 0 && (!minSet || r.MinDataDelaySec < agg.MinDataDelaySec) {
			agg.MinDataDelaySec = r.MinDataDelaySec
			minSet = true
		}
		delaySum += r.MeanDataDelaySec * float64(r.DataDelivered)
		utilSum += r.InfoUtilization * r.Frames
		loss.Add(r.VoiceLossRate)
		thru.Add(r.DataThroughputPerFrame)
		delay.Add(r.MeanDataDelaySec)
	}

	agg.VoiceLossRate = stats.Ratio(agg.VoiceDropped+agg.VoiceErrored, agg.VoiceGenerated)
	agg.VoiceDropRate = stats.Ratio(agg.VoiceDropped, agg.VoiceGenerated)
	agg.VoiceErrorRate = stats.Ratio(agg.VoiceErrored, agg.VoiceGenerated)
	if agg.Frames > 0 {
		agg.DataThroughputPerFrame = float64(agg.DataDelivered) / agg.Frames
		agg.InfoUtilization = utilSum / agg.Frames
	}
	if agg.DataDelivered > 0 {
		agg.MeanDataDelaySec = delaySum / float64(agg.DataDelivered)
	}
	agg.CollisionRate = stats.Ratio(agg.ReqCollisions, agg.ReqCollisions+agg.ReqSuccesses)
	agg.DataDelayCI95 = delay.TCI95()
	agg.Reps = RepStats{
		Replications:       len(rs),
		VoiceLossCI95:      loss.TCI95(),
		DataThroughputCI95: thru.TCI95(),
		DataDelayCI95:      delay.TCI95(),
	}
	return agg
}
