package charisma_test

import (
	"testing"

	"charisma/internal/core"
	"charisma/internal/mac"
	charproto "charisma/internal/mac/charisma"
	"charisma/internal/phy"
	"charisma/internal/sim"
)

func build(t *testing.T, nv, nd int, queue bool, mutate func(*core.Scenario)) (*mac.System, mac.Protocol) {
	t.Helper()
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice, sc.NumData = nv, nd
	sc.UseQueue = queue
	if mutate != nil {
		mutate(&sc)
	}
	sys, proto, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	proto.Init(sys)
	return sys, proto
}

func runFrames(sys *mac.System, proto mac.Protocol, n int) {
	for i := 0; i < n; i++ {
		sys.BeginFrame()
		dur := proto.RunFrame(sys)
		sys.EndFrame(dur)
	}
}

func TestNameAndConstruction(t *testing.T) {
	p := charproto.New()
	if p.Name() != "charisma" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestFixedFrameDuration(t *testing.T) {
	sys, proto := build(t, 5, 0, false, nil)
	for i := 0; i < 100; i++ {
		sys.BeginFrame()
		dur := proto.RunFrame(sys)
		if dur != sys.Cfg.Geometry.Duration() {
			t.Fatalf("frame %d duration = %v, want %v", i, dur, sys.Cfg.Geometry.Duration())
		}
		sys.EndFrame(dur)
	}
}

func TestInfoBudgetNeverExceeded(t *testing.T) {
	sys, proto := build(t, 40, 10, true, nil)
	runFrames(sys, proto, 2000)
	total := sys.M.InfoSymbolsTotal.Total()
	used := sys.M.InfoSymbolsUsed.Total()
	if used > total {
		t.Fatalf("used %d symbols of %d budget", used, total)
	}
	if total != uint64(2000*sys.Cfg.Geometry.CharismaInfoSymbols()) {
		t.Fatalf("budget accounting wrong: %d", total)
	}
}

func TestVoiceGetsReservationAfterFirstGrant(t *testing.T) {
	sys, proto := build(t, 6, 0, false, nil)
	runFrames(sys, proto, 4000)
	if sys.M.ReservationsGranted.Total() == 0 {
		t.Fatal("no voice reservation ever granted")
	}
}

func TestCSIPollingHappens(t *testing.T) {
	sys, proto := build(t, 30, 0, false, nil)
	runFrames(sys, proto, 4000)
	if sys.M.CSIPolls.Total() == 0 {
		t.Fatal("CSI polling never used despite reserved users")
	}
}

func TestCSIPollingDisabledAblation(t *testing.T) {
	sys, proto := build(t, 30, 0, false, func(sc *core.Scenario) {
		sc.MAC.Charisma.DisableCSIRefresh = true
	})
	runFrames(sys, proto, 2000)
	if sys.M.CSIPolls.Total() != 0 {
		t.Fatal("polling happened despite DisableCSIRefresh")
	}
}

func TestPilotBudgetPerFrame(t *testing.T) {
	sys, proto := build(t, 60, 0, true, nil)
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		sys.BeginFrame()
		dur := proto.RunFrame(sys)
		sys.EndFrame(dur)
		polls := sys.M.CSIPolls.Total() - prev
		if polls > uint64(sys.Cfg.Geometry.CharismaPilotSlots) {
			t.Fatalf("frame %d: %d polls exceed Nb=%d", i, polls, sys.Cfg.Geometry.CharismaPilotSlots)
		}
		prev = sys.M.CSIPolls.Total()
	}
}

func TestQueueOnlyWhenEnabled(t *testing.T) {
	sysNo, protoNo := build(t, 50, 10, false, nil)
	runFrames(sysNo, protoNo, 2000)
	if sysNo.QueueLen() != 0 {
		t.Fatal("queue populated with UseQueue=false")
	}
	sysQ, protoQ := build(t, 50, 10, true, nil)
	runFrames(sysQ, protoQ, 2000)
	// At this load some requests must have waited at the BS.
	if sysQ.M.ReqSuccesses.Total() == 0 {
		t.Fatal("no contention successes")
	}
}

func TestQueueCapRespected(t *testing.T) {
	sys, proto := build(t, 80, 20, true, func(sc *core.Scenario) {
		sc.MAC.QueueCap = 4
	})
	for i := 0; i < 2000; i++ {
		sys.BeginFrame()
		dur := proto.RunFrame(sys)
		sys.EndFrame(dur)
		if sys.QueueLen() > 4 {
			t.Fatalf("queue length %d exceeds cap 4", sys.QueueLen())
		}
	}
}

func TestNoDuplicateStationInQueue(t *testing.T) {
	sys, proto := build(t, 60, 15, true, nil)
	for i := 0; i < 3000; i++ {
		sys.BeginFrame()
		dur := proto.RunFrame(sys)
		sys.EndFrame(dur)
		seen := map[int]bool{}
		for _, r := range sys.Queue() {
			if seen[r.St.ID] {
				t.Fatalf("station %d queued twice", r.St.ID)
			}
			seen[r.St.ID] = true
		}
	}
}

// The channel-aware priority must actually bias service toward good
// channels: among voice transmissions under load, the mean scheduled mode
// must sit clearly above the most robust one, while errors stay rare.
func TestSelectionDiversityBiasesTowardGoodCSI(t *testing.T) {
	sys, proto := build(t, 90, 0, true, nil)
	var modeSum, txs, errSum int
	sys.DebugVoiceTx = func(_ *mac.Station, m phy.Mode, _ float64, _ sim.Time, ok, errs int) {
		modeSum += m.Index * (ok + errs)
		txs += ok + errs
		errSum += errs
	}
	runFrames(sys, proto, 2000)
	if txs == 0 {
		t.Fatal("no voice transmissions observed")
	}
	meanMode := float64(modeSum) / float64(txs)
	if meanMode < 1.5 {
		t.Fatalf("mean scheduled mode = %.2f — scheduler not favouring good CSI", meanMode)
	}
	if rate := float64(errSum) / float64(txs); rate > 0.03 {
		t.Fatalf("voice tx error rate %v too high for CSI-aware scheduling", rate)
	}
}

func TestAlphaZeroDegradesToChannelBlind(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(alpha float64) float64 {
		sc := core.DefaultScenario(core.ProtoCharisma)
		sc.NumVoice = 90
		sc.WarmupSec = 1
		sc.DurationSec = 6
		sc.MAC.Charisma.Alpha = alpha
		r, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.VoiceLossRate
	}
	withCSI := run(1.0)
	blind := run(0.0)
	if withCSI >= blind {
		t.Fatalf("CSI-aware priority (%.4f) not better than channel-blind (%.4f)", withCSI, blind)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() mac.Result {
		sys, proto := build(t, 25, 5, true, nil)
		runFrames(sys, proto, 1500)
		return sys.M.Result("charisma", sys.Cfg.Geometry.FrameSymbols)
	}
	if run() != run() {
		t.Fatal("protocol not deterministic")
	}
}

func TestReservationReleasedAfterSilence(t *testing.T) {
	sys, proto := build(t, 4, 0, false, nil)
	runFrames(sys, proto, 12000) // 30 s: several talkspurt cycles
	// After long runs, the number of granted reservations must exceed the
	// station count: reservations lapse at talkspurt end and are re-granted.
	if sys.M.ReservationsGranted.Total() <= 4 {
		t.Fatalf("only %d reservations over 30 s — releases not happening",
			sys.M.ReservationsGranted.Total())
	}
}
