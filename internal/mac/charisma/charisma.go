// Package charisma implements the paper's proposed protocol: CHannel
// Adaptive Reservation-based ISochronous Multiple Access (§4).
//
// CHARISMA departs from the baselines in one structural way: it does NOT
// assign information capacity immediately after each successful request.
// Instead the base station first gathers every request of the frame — new
// contention winners, backlog requests held in the request queue, and the
// reservation requests it auto-generates for admitted voice users every
// 20 ms — and then allocates the information subframe in one pass, ordered
// by a priority metric (eq. (2)) that combines:
//
//   - the CSI-dependent achievable throughput f(ĉ) the adaptive PHY would
//     realize for that user (selection diversity: frames get packed with
//     good-channel users, deferring deep-faded ones until their channel
//     recovers or their deadline approaches),
//   - deadline urgency for voice and accumulated waiting time for data
//     (the fairness terms that bound starvation), and
//   - a static voice priority offset.
//
// CSI is estimated from pilot symbols carried in request packets and is
// treated as valid for two frames; older estimates of high-priority backlog
// requests are refreshed through the downlink CSI-polling / uplink pilot
// subframe (Nb slots per frame, §4.4), and anything still stale is
// discounted so the scheduler stays conservative about obsolete channel
// knowledge.
package charisma

import (
	"cmp"
	"math"
	"slices"

	"charisma/internal/channel"
	"charisma/internal/mac"
	"charisma/internal/phy"
	"charisma/internal/sim"
)

// Protocol is the CHARISMA access scheme.
type Protocol struct {
	// resEst holds the BS-side CSI estimate for each admitted (reserved)
	// voice station, refreshed by polling; indexed by station ID.
	resEst []channel.Estimate
	// ackedAt stamps, per station ID, the frame in which the station's
	// request was received (frame-stamped instead of cleared so marking
	// the whole population acknowledged costs nothing per frame).
	ackedAt []int64
	// etaMax normalizes f(CSI) to [0,1].
	etaMax float64
	// avgEta tracks each station's EWMA realized throughput for the
	// fairness extension (§6 / [22]); indexed by station ID.
	avgEta []float64
	// cands is the per-minislot contention candidate scratch.
	cands []*mac.Station
	// pool and stale are the per-frame candidate scratch, reused across
	// frames so the gather/allocate cycle stops allocating once they
	// reach their high-water marks.
	pool  []candidate
	stale []*candidate
	// powV and powD memoize the eq. (2) urgency/patience powers λ^x. The
	// exponents are frame-quantized deadline and waiting distances, so a
	// few dozen distinct values dominate a run; the panel profiles show
	// math.Pow as one of the largest leaf costs without the cache.
	powV powCache
	powD powCache
}

// powCache memoizes math.Pow(lambda, x) keyed by the exact bits of x.
// Pow is a pure function, so replaying a cached result is bit-identical
// to recomputing it — safe under the golden byte-identity contract. The
// table is direct-mapped: a collision just recomputes and overwrites.
type powCache struct {
	lambda float64
	keys   [256]uint64 // math.Float64bits(x)+1; 0 marks an empty line
	vals   [256]float64
}

// reset points the cache at a base. Entries survive when the base is
// unchanged (replication reuse: the memo stays warm across reps).
func (c *powCache) reset(lambda float64) {
	if c.lambda != lambda {
		c.lambda = lambda
		c.keys = [256]uint64{}
	}
}

func (c *powCache) pow(x float64) float64 {
	k := math.Float64bits(x) + 1
	h := (k * 0x9E3779B97F4A7C15) >> 56
	if c.keys[h] == k {
		return c.vals[h]
	}
	v := math.Pow(c.lambda, x)
	c.keys[h] = k
	c.vals[h] = v
	return v
}

// New returns a CHARISMA instance.
func New() *Protocol { return &Protocol{} }

// Name implements mac.Protocol.
func (p *Protocol) Name() string { return "charisma" }

// Init implements mac.Protocol. Per-station slices are resized in place
// when capacity allows, so re-Init for a new replication of the same
// population (the arena path, see internal/core) does not allocate.
func (p *Protocol) Init(s *mac.System) {
	n := len(s.Stations)
	if cap(p.resEst) >= n {
		p.resEst = p.resEst[:n]
		clear(p.resEst)
	} else {
		p.resEst = make([]channel.Estimate, n)
	}
	if cap(p.ackedAt) >= n {
		p.ackedAt = p.ackedAt[:n]
	} else {
		p.ackedAt = make([]int64, n)
	}
	for i := range p.ackedAt {
		p.ackedAt[i] = -1
	}
	modes := s.PHY.Modes()
	p.etaMax = modes[len(modes)-1].Eta
	if cap(p.avgEta) >= n {
		p.avgEta = p.avgEta[:n]
	} else {
		p.avgEta = make([]float64, n)
	}
	for i := range p.avgEta {
		p.avgEta[i] = 1 // neutral prior: the fixed-rate baseline
	}
	p.powV.reset(s.Cfg.Charisma.LambdaV)
	p.powD.reset(s.Cfg.Charisma.LambdaD)
}

// fairnessWeight returns the divisor the fairness extension applies to the
// CSI term: avgEta^exponent, clamped away from zero.
func (p *Protocol) fairnessWeight(s *mac.System, id int) float64 {
	exp := s.Cfg.Charisma.FairnessExponent
	if exp <= 0 {
		return 1
	}
	avg := p.avgEta[id]
	if avg < 0.1 {
		avg = 0.1
	}
	return math.Pow(avg/p.etaMax, exp)
}

// observeEta folds a scheduled transmission's throughput into the user's
// EWMA for the fairness extension.
func (p *Protocol) observeEta(s *mac.System, id int, eta float64) {
	if s.Cfg.Charisma.FairnessExponent <= 0 {
		return
	}
	mem := s.Cfg.Charisma.FairnessMemory
	if mem <= 0 || mem >= 1 {
		mem = 0.99
	}
	p.avgEta[id] = mem*p.avgEta[id] + (1-mem)*eta
}

// candidate is one allocation candidate with its computed priority.
type candidate struct {
	r        *mac.Request
	reserved bool // BS-generated reservation request (not queueable)
	prio     float64
	mode     phy.Mode
	outage   bool
}

// priority computes eq. (2) for a request given the effective (staleness-
// discounted) CSI amplitude.
func (p *Protocol) priority(s *mac.System, c *candidate) {
	cp := s.Cfg.Charisma
	amp := s.EffectiveAmp(c.r.Est)
	c.mode = s.PHY.ModeForAmplitude(amp)
	c.outage = s.PHY.OutageForAmplitude(amp)
	f := c.mode.Eta / p.etaMax
	if c.outage {
		f = 0
	}
	// Fairness extension (§6/[22]): rank the channel relative to the
	// user's own long-run average rather than absolutely.
	f /= p.fairnessWeight(s, c.r.St.ID)
	fd := float64(s.FrameDuration())
	if c.r.Kind == mac.KindVoice {
		framesLeft := 0.0
		if pkt, ok := c.r.St.Voice().Oldest(); ok {
			framesLeft = float64(pkt.Deadline-s.Now()) / fd
			if framesLeft < 0 {
				framesLeft = 0
			}
		}
		urgency := p.powV.pow(framesLeft)
		c.prio = cp.Alpha*f + cp.BetaV*urgency + cp.VoiceOffset
		return
	}
	waited := float64(s.Now()-c.r.Born) / fd
	if waited < 0 {
		waited = 0
	}
	patience := 1 - p.powD.pow(waited)
	c.prio = cp.Alpha*f + cp.BetaD*patience
}

// RunFrame implements mac.Protocol.
func (p *Protocol) RunFrame(s *mac.System) sim.Time {
	g := s.Cfg.Geometry
	budget := g.CharismaInfoSymbols()
	s.M.AddInfoBudget(budget)
	frame := s.FrameIndex()

	// --- Gather phase ---

	pool := p.pool[:0]

	// Reservation requests the BS auto-generates for admitted voice
	// users (§4.3: one per 20 ms voice period, materialized by the
	// packets waiting in the device buffer). These are base-station
	// state, not contention survivors, so they retry each frame while
	// their packets live regardless of the request-queue variant — the
	// queue of §4.5 holds only contention-borne requests. Admitted users
	// live in the reserved bucket of the station registry.
	s.ForEachReserved(func(st *mac.Station) {
		if st.Voice().Buffered() > 0 {
			r := s.BorrowRequest()
			r.St, r.Kind, r.NPkts, r.Born, r.Est =
				st, mac.KindVoice, st.Voice().Buffered(), s.Now(), p.resEst[st.ID]
			pool = append(pool, candidate{r: r, reserved: true})
		}
	})

	// Backlog requests held at the BS (queue variant). They are
	// re-evaluated every frame; survivors are re-enqueued at the end.
	// Gathered after the reservation scan so a station whose earlier
	// request still sits in the queue is not double-represented.
	for _, r := range s.TakeQueue() {
		pool = append(pool, candidate{r: r})
	}

	// CSI-polling subframe: refresh the Nb most important stale
	// estimates (paper Fig. 10). Priorities are computed with the stale
	// values first, exactly as the BS would rank its backlog.
	if !s.Cfg.Charisma.DisableCSIRefresh {
		p.pollCSI(s, pool)
	}

	// Every station already represented in the pool (reservation or
	// dequeued backlog) must not contend again this frame.
	for i := range pool {
		p.ackedAt[pool[i].r.St.ID] = frame
	}

	// Request phase: Nr contention minislots gather new requests —
	// without announcing any allocation yet.
	for ms := 0; ms < g.CharismaRequestSlots; ms++ {
		w := s.Contend(p.contenders(s, frame))
		if w == nil {
			continue
		}
		p.ackedAt[w.ID] = frame
		pool = append(pool, candidate{r: s.NewRequest(w, s.RequestKind(w))})
	}

	// --- Allocation phase ---

	for i := range pool {
		p.priority(s, &pool[i])
	}
	// (prio desc, ID asc) is a strict total order over distinct stations,
	// so the stable sort's result is unique — identical to the
	// sort.SliceStable it replaces, minus its reflection allocations.
	slices.SortStableFunc(pool, func(a, b candidate) int {
		if a.prio != b.prio {
			return cmp.Compare(b.prio, a.prio)
		}
		return cmp.Compare(a.r.St.ID, b.r.St.ID)
	})

	overhead := g.CharismaGrantOverheadSymbols
	for i := range pool {
		c := &pool[i]
		st := c.r.St
		var want int
		if c.r.Kind == mac.KindVoice {
			want = st.Voice().Buffered()
		} else {
			want = st.Data().Backlog()
		}
		if want == 0 {
			continue // nothing left to send; candidate evaporates
		}
		spp := c.mode.SymbolsPerPacket
		maxFit := (budget - overhead) / spp
		if maxFit <= 0 {
			// Does not fit — keep scanning: a higher-mode (cheaper)
			// candidate further down may still pack into the
			// remaining symbols.
			continue
		}
		n := want
		if n > maxFit {
			n = maxFit
		}
		cost := n*spp + overhead
		budget -= cost
		s.M.AddInfoUsed(cost)
		p.observeEta(s, st.ID, c.mode.Eta)
		if c.r.Kind == mac.KindVoice {
			ok, errs := s.TransmitVoice(st, c.mode, n)
			if s.DebugVoiceTx != nil {
				s.DebugVoiceTx(st, c.mode, s.EffectiveAmp(c.r.Est), c.r.Est.Age(s.Now()), ok, errs)
			}
			if !st.Reserved() {
				s.GrantReservation(st)
			}
			// The information transmission itself carries pilot
			// symbols, so the BS leaves this frame with a fresh
			// estimate for the next reservation cycle — without
			// spending a polling slot.
			p.resEst[st.ID] = s.MeasureEstimate(st)
			// Fully served or not, the reservation regenerates the
			// request next frame for any remainder.
			s.FreeRequest(c.r)
			c.r = nil
		} else {
			s.TransmitData(st, c.mode, n)
			// Data allocations are one-shot: the station must
			// contend again for any remaining backlog (§4.1).
			s.FreeRequest(c.r)
			c.r = nil
		}
	}

	// --- Backlog phase ---

	// Unserved contention-borne requests survive in the BS queue when it
	// is enabled; without the queue they are lost and the stations must
	// contend again. Reservation requests regenerate from BS state.
	for i := range pool {
		c := &pool[i]
		if c.r == nil {
			continue
		}
		if c.reserved || !s.Enqueue(c.r) {
			s.FreeRequest(c.r)
		}
		c.r = nil
	}
	p.pool = pool
	return g.Duration()
}

// pollCSI spends the Nb pilot slots refreshing the highest-priority stale
// estimates among the backlog candidates. The stale scratch holds
// pointers into pool's backing array; they are only live within this
// call, before any append or sort moves the candidates.
func (p *Protocol) pollCSI(s *mac.System, pool []candidate) {
	stale := p.stale[:0]
	for i := range pool {
		if s.EstimateStale(pool[i].r.Est) {
			p.priority(s, &pool[i])
			stale = append(stale, &pool[i])
		}
	}
	p.stale = stale
	if len(stale) == 0 {
		return
	}
	slices.SortStableFunc(stale, func(a, b *candidate) int {
		if a.prio != b.prio {
			return cmp.Compare(b.prio, a.prio)
		}
		return cmp.Compare(a.r.St.ID, b.r.St.ID)
	})
	n := s.Cfg.Geometry.CharismaPilotSlots
	if n > len(stale) {
		n = len(stale)
	}
	for i := 0; i < n; i++ {
		c := stale[i]
		c.r.Est = s.RefreshEstimate(c.r.St)
		if c.r.Kind == mac.KindVoice && c.r.St.Reserved() {
			p.resEst[c.r.St.ID] = c.r.Est
		}
	}
}

func (p *Protocol) contenders(s *mac.System, frame int64) []*mac.Station {
	p.cands = s.AppendContenders(p.cands[:0], p.ackedAt, frame)
	return p.cands
}
