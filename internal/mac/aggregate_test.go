package mac

import (
	"math"
	"testing"

	"charisma/internal/stats"
)

func repResult(gen, drop, errd, deliv uint64, frames, delay float64, dataDeliv uint64) Result {
	r := Result{
		Protocol:         "charisma",
		Frames:           frames,
		VoiceGenerated:   gen,
		VoiceDropped:     drop,
		VoiceErrored:     errd,
		VoiceDelivered:   deliv,
		DataDelivered:    dataDeliv,
		MeanDataDelaySec: delay,
		Reps:             RepStats{Replications: 1},
	}
	r.VoiceLossRate = stats.Ratio(drop+errd, gen)
	r.DataThroughputPerFrame = float64(dataDeliv) / frames
	return r
}

func TestAggregateReplicationsEmptyAndSingle(t *testing.T) {
	if got := AggregateReplications(nil); got != (Result{}) {
		t.Fatal("empty aggregation not zero")
	}
	one := repResult(100, 2, 1, 97, 50, 0.1, 20)
	got := AggregateReplications([]Result{one})
	if got != one {
		t.Fatalf("single-rep aggregation changed the result: %+v", got)
	}
	if got.Reps.Replications != 1 {
		t.Fatalf("Replications = %d, want 1", got.Reps.Replications)
	}
}

func TestAggregateReplicationsPoolsCounters(t *testing.T) {
	rs := []Result{
		repResult(100, 2, 2, 96, 100, 0.10, 40),
		repResult(200, 10, 2, 188, 100, 0.20, 60),
		repResult(100, 4, 0, 96, 100, 0.15, 100),
	}
	agg := AggregateReplications(rs)
	if agg.Reps.Replications != 3 {
		t.Fatalf("Replications = %d, want 3", agg.Reps.Replications)
	}
	if agg.VoiceGenerated != 400 || agg.VoiceDropped != 16 || agg.VoiceErrored != 4 {
		t.Fatalf("counters not summed: %+v", agg)
	}
	// Loss pooled from counters: (16+4)/400, not the mean of per-rep rates.
	if math.Abs(agg.VoiceLossRate-0.05) > 1e-12 {
		t.Fatalf("pooled loss = %v, want 0.05", agg.VoiceLossRate)
	}
	if agg.Frames != 300 {
		t.Fatalf("frames = %v, want 300", agg.Frames)
	}
	// Throughput pooled over the whole window: 200 packets / 300 frames.
	if math.Abs(agg.DataThroughputPerFrame-200.0/300) > 1e-12 {
		t.Fatalf("pooled throughput = %v", agg.DataThroughputPerFrame)
	}
	// Delay delivery-weighted: (0.1*40 + 0.2*60 + 0.15*100) / 200.
	wantDelay := (0.1*40 + 0.2*60 + 0.15*100) / 200
	if math.Abs(agg.MeanDataDelaySec-wantDelay) > 1e-12 {
		t.Fatalf("pooled delay = %v, want %v", agg.MeanDataDelaySec, wantDelay)
	}
}

func TestAggregateReplicationsStudentTCI(t *testing.T) {
	rs := []Result{
		repResult(100, 10, 0, 90, 100, 0.1, 10),
		repResult(100, 20, 0, 80, 100, 0.2, 10),
		repResult(100, 30, 0, 70, 100, 0.3, 10),
	}
	agg := AggregateReplications(rs)
	// Per-rep loss rates 0.1, 0.2, 0.3: stddev 0.1, stderr 0.1/sqrt(3),
	// t(df=2) = 4.303.
	want := 4.303 * 0.1 / math.Sqrt(3)
	if math.Abs(agg.Reps.VoiceLossCI95-want) > 1e-9 {
		t.Fatalf("VoiceLossCI95 = %v, want %v", agg.Reps.VoiceLossCI95, want)
	}
	// Identical throughput in every rep: zero dispersion.
	if agg.Reps.DataThroughputCI95 != 0 {
		t.Fatalf("DataThroughputCI95 = %v, want 0", agg.Reps.DataThroughputCI95)
	}
	// The within-run delay CI must have been replaced by the across-rep one.
	if agg.DataDelayCI95 != agg.Reps.DataDelayCI95 {
		t.Fatal("DataDelayCI95 not replaced by the across-replication interval")
	}
}

// Aggregation must not depend on any property of the inputs beyond slice
// order — same inputs, same output, bit for bit.
func TestAggregateReplicationsDeterministic(t *testing.T) {
	rs := []Result{
		repResult(100, 3, 1, 96, 80, 0.12, 33),
		repResult(101, 5, 2, 94, 80, 0.18, 29),
	}
	a := AggregateReplications(rs)
	b := AggregateReplications(rs)
	if a != b {
		t.Fatal("aggregation not deterministic")
	}
}
