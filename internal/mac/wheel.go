package mac

import (
	"math/bits"

	"charisma/internal/obs"
	"charisma/internal/sim"
)

// This file implements the hierarchical timer wheel that replaces the old
// binary-heap wake queue. Idle stations arm their next source event here;
// BeginFrame advances the wheel to the frame boundary and collects the due
// stations in one batch.
//
// Geometry: the near wheel (level 0) is frame-granular — its granule of
// 2^wheelGranuleLog = 1024 ticks is the smallest power of two covering the
// 800-symbol frame — and each of the wheelLevels levels has wheelSlots
// slots, every level spanning 64× the horizon of the one below. Level 8
// granules are 2^58 ticks, so the top level covers every representable
// sim.Time without slot wraparound.
//
// Cost model: arming is O(1) (level by bit length of the delay, slot by
// shift-and-mask, append to the bucket). Advancing is O(granules elapsed +
// entries fired + entries cascaded); a fixed 800-tick frame crosses at most
// one level-0 granule, and each entry cascades at most wheelLevels-1 times
// over its lifetime, so arm+fire is O(1) amortized — against O(log n) per
// push/pop for the heap it replaces.
//
// Unlike the old heap, entries are removed eagerly: each station has at
// most one live entry, tracked by a (level,slot) location and an
// intra-bucket position slab, so re-arming a station (or re-bucketing it
// out of idle) swap-removes the superseded entry in O(1) instead of
// leaving a dead entry to be skipped at pop time. Resident entries are
// therefore bounded by the idle population, never by the re-arm rate.
//
// Placement is conservative-early: add computes the level from the delay
// relative to the granule-aligned base, which can under-shoot the minimal
// level when base sits mid-granule. That is safe by construction — a
// mis-placed entry is scanned before it is due, fails the stamp<=now check,
// and is retained (level 0) or re-placed (cascade); an entry is never
// visited after its due granule, so wakes never fire late. collectDue
// checks every fired entry against the shared stamp slab, which holds the
// authoritative due time for every live entry.

const (
	// wheelGranuleLog is log2 of the level-0 granule in ticks.
	wheelGranuleLog = 10
	// wheelBits is log2 of the slots per level.
	wheelBits  = 6
	wheelSlots = 1 << wheelBits
	// wheelLevels is chosen so the top level's slot index never wraps for
	// any positive sim.Time: level 8 shifts by 10+8·6 = 58 bits.
	wheelLevels = 9

	// noWheelLoc marks a station with no live wheel entry.
	noWheelLoc = ^uint16(0)
)

// wheelShift returns the granule shift of a level.
func wheelShift(level int) uint { return wheelGranuleLog + uint(level)*wheelBits }

// timerWheel is the hierarchical wheel. Buckets hold station slots (int32
// indices into System.Stations); the due time of a live entry is
// stamp[slot], shared with the registry's stamp slab.
type timerWheel struct {
	base    sim.Time // advanced-to time; all live entries have stamp >= alignDown(base)
	count   int      // live entries across all levels
	buckets [wheelLevels][wheelSlots][]int32

	// Per-station entry tracking (parallel to System.Stations):
	// loc is level*wheelSlots+slot (noWheelLoc when not armed), pos the
	// index inside that bucket. Together they make removal O(1).
	loc []uint16
	pos []int32

	// stamp aliases the registry's stamp slab: the authoritative due time
	// of every live entry.
	stamp []sim.Time

	// scratch detaches a draining bucket during cascade so re-placement
	// can append to any bucket (including the one being drained).
	scratch []int32

	// ctr receives the wheel's arm/cascade counts. reset points it at a
	// private block so a standalone wheel (tests) counts somewhere;
	// registry.reset re-points it at the owning System's block. Never
	// nil after reset, so the hot paths increment unconditionally.
	ctr *obs.SimCounters
}

// reset (re-)initializes the wheel for an n-station cell, truncating any
// populated buckets and reusing slab capacity where it suffices.
func (w *timerWheel) reset(n int, stamp []sim.Time) {
	w.base = 0
	if w.count != 0 {
		for l := range w.buckets {
			for s := range w.buckets[l] {
				w.buckets[l][s] = w.buckets[l][s][:0]
			}
		}
		w.count = 0
	}
	if cap(w.loc) >= n {
		w.loc = w.loc[:n]
	} else {
		w.loc = make([]uint16, n)
	}
	for i := range w.loc {
		w.loc[i] = noWheelLoc
	}
	if cap(w.pos) >= n {
		w.pos = w.pos[:n]
	} else {
		w.pos = make([]int32, n)
	}
	w.stamp = stamp
	w.scratch = w.scratch[:0]
	if w.ctr == nil {
		w.ctr = new(obs.SimCounters)
	}
}

// armed reports whether a station has a live entry.
func (w *timerWheel) armed(s int32) bool { return w.loc[s] != noWheelLoc }

// add arms (or re-arms) station s for time at, replacing any live entry.
func (w *timerWheel) add(s int32, at sim.Time) {
	if w.loc[s] != noWheelLoc {
		w.remove(s)
	}
	if at < w.base {
		at = w.base // due already; fires on the next collect
	}
	// Delay relative to the granule-aligned base; see the placement note
	// above for why under-shooting the level is safe.
	d := uint64(at - (w.base >> wheelGranuleLog << wheelGranuleLog))
	level := 0
	if h := bits.Len64(d >> wheelGranuleLog); h > 0 {
		level = (h - 1) / wheelBits
		if level >= wheelLevels {
			level = wheelLevels - 1
		}
	}
	slot := int(at>>wheelShift(level)) & (wheelSlots - 1)
	b := &w.buckets[level][slot]
	w.pos[s] = int32(len(*b))
	w.loc[s] = uint16(level*wheelSlots + slot)
	*b = append(*b, s)
	w.count++
	w.ctr.WheelArms++
}

// remove drops station s's live entry in O(1) by swapping the bucket tail
// into its position.
func (w *timerWheel) remove(s int32) {
	l := w.loc[s]
	if l == noWheelLoc {
		return
	}
	b := &w.buckets[l>>wheelBits][l&(wheelSlots-1)]
	p := w.pos[s]
	last := int32(len(*b) - 1)
	if p != last {
		moved := (*b)[last]
		(*b)[p] = moved
		w.pos[moved] = p
	}
	*b = (*b)[:last]
	w.loc[s] = noWheelLoc
	w.count--
}

// collectDue advances the wheel to now, appending every station whose due
// time has arrived to dst (in bucket-scan order — see registry.go for why
// wake processing is insensitive to this order). Collected entries are
// disarmed; the caller re-arms survivors after processing.
func (w *timerWheel) collectDue(now sim.Time, dst []int32) []int32 {
	if now < w.base {
		return dst
	}
	if w.count == 0 {
		w.base = now
		return dst
	}
	g := w.base >> wheelGranuleLog
	gEnd := now >> wheelGranuleLog
	for {
		// Fire the due entries of the level-0 slot for granule g; retain
		// the rest (conservatively-early placements, or entries later in
		// the partial granule containing now).
		b := &w.buckets[0][g&(wheelSlots-1)]
		kept := (*b)[:0]
		for _, s := range *b {
			if w.stamp[s] <= now {
				w.loc[s] = noWheelLoc
				w.count--
				dst = append(dst, s)
			} else {
				w.pos[s] = int32(len(kept))
				kept = append(kept, s)
			}
		}
		*b = kept
		if g >= gEnd {
			break
		}
		g++
		w.base = g << wheelGranuleLog
		if g&(wheelSlots-1) == 0 {
			w.cascade(g)
		}
	}
	w.base = now
	return dst
}

// cascade redistributes higher-level buckets when the walk enters granule
// g at a level boundary: the level-k slot the walk is entering drains into
// lower levels (re-placed from the stamp slab), recursively while g is
// aligned to that level's granule.
func (w *timerWheel) cascade(g sim.Time) {
	for level := 1; level < wheelLevels; level++ {
		if g&((1<<(uint(level)*wheelBits))-1) != 0 {
			return
		}
		slot := int(g>>(uint(level)*wheelBits)) & (wheelSlots - 1)
		b := &w.buckets[level][slot]
		if len(*b) == 0 {
			continue
		}
		w.ctr.WheelCascades++
		// Detach the entries before re-placing: a conservatively-early
		// entry may land back in this very bucket, so appending while
		// ranging over the bucket's own backing array would corrupt it.
		w.scratch = append(w.scratch[:0], (*b)...)
		*b = (*b)[:0]
		for _, s := range w.scratch {
			w.loc[s] = noWheelLoc
			w.count--
			w.add(s, w.stamp[s])
		}
	}
}
