package mac

import (
	"testing"

	"charisma/internal/channel"
	"charisma/internal/phy"
	"charisma/internal/rng"
	"charisma/internal/sim"
	"charisma/internal/traffic"
)

func TestClassifyPriorityOrder(t *testing.T) {
	v := traffic.NewVoice(traffic.DefaultVoiceParams(), rng.New(1), 0)
	st := NewStation(0, v, nil, nil)
	// Highest priority first: pending beats reserved beats activity.
	st.flags |= flagPendingAtBS | flagReserved
	if got := classify(st); got != bucketPending {
		t.Fatalf("pending station classified %v", got)
	}
	st.flags &^= flagPendingAtBS
	if got := classify(st); got != bucketReserved {
		t.Fatalf("reserved station classified %v", got)
	}
	st.flags &^= flagReserved
	if got := classify(st); got != bucketTalkspurt && got != bucketIdle {
		t.Fatalf("voice station classified %v", got)
	}
	inert := NewStation(1, nil, nil, nil)
	if got := classify(inert); got != bucketIdle {
		t.Fatalf("inert station classified %v", got)
	}
}

func TestBitsetOps(t *testing.T) {
	b := newBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		if b.has(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.set(i)
		if !b.has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	b.clear(64)
	if b.has(64) {
		t.Fatal("bit 64 survived clear")
	}
	if !b.has(63) || !b.has(129) {
		t.Fatal("clear disturbed neighbours")
	}
}

func registrySystem(t *testing.T, nv, nd int) *System {
	t.Helper()
	n := nv + nd
	stations := make([]*Station, n)
	for i := 0; i < n; i++ {
		var v *traffic.VoiceSource
		var d *traffic.DataSource
		if i < nv {
			v = traffic.NewVoice(traffic.DefaultVoiceParams(), rng.Derive(3, "v", string(rune('a'+i))), 0)
		} else {
			d = traffic.NewData(traffic.DefaultDataParams(), rng.Derive(3, "d", string(rune('a'+i))), 0)
		}
		fad := channel.NewFading(channel.DefaultParams(), rng.Derive(3, "c", string(rune('a'+i))))
		stations[i] = NewStation(i, v, d, fad)
	}
	s, err := NewSystem(DefaultConfig(), phy.NewFixed(phy.DefaultParams()), stations, rng.Derive(3, "m"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemIndexesStations(t *testing.T) {
	s := registrySystem(t, 3, 2)
	if err := s.VerifyRegistry(); err != nil {
		t.Fatal(err)
	}
	for i, st := range s.Stations {
		if !s.owns(st) || int(st.slot) != i {
			t.Fatalf("station %d: slot not wired", i)
		}
	}
}

func TestReindexMovesBuckets(t *testing.T) {
	s := registrySystem(t, 2, 0)
	st := s.Stations[0]
	st.flags |= flagReserved
	s.Reindex(st)
	if st.bucket() != bucketReserved || !s.reg.sets[bucketReserved].has(int(st.slot)) {
		t.Fatal("reservation did not move the station to the reserved bucket")
	}
	if err := s.VerifyRegistry(); err != nil {
		t.Fatal(err)
	}
	st.flags &^= flagReserved
	s.Reindex(st)
	if s.reg.sets[bucketReserved].has(int(st.slot)) {
		t.Fatal("station left in reserved bucket after release")
	}
	if err := s.VerifyRegistry(); err != nil {
		t.Fatal(err)
	}
}

func TestReindexIgnoresForeignStations(t *testing.T) {
	s := registrySystem(t, 1, 0)
	foreign := NewStation(99, nil, nil, nil)
	s.Reindex(foreign) // must not panic or disturb the registry
	if err := s.VerifyRegistry(); err != nil {
		t.Fatal(err)
	}
}

func TestIdleStationsWakeOnSourceEvents(t *testing.T) {
	s := registrySystem(t, 40, 10)
	// Drive two simulated seconds: stations must migrate between idle and
	// active buckets as talkspurts and bursts come and go, with the timer
	// wheel (not a full scan) reactivating them.
	sawIdle, sawActive := false, false
	for f := 0; f < 800; f++ {
		s.BeginFrame()
		for _, st := range s.Stations {
			if st.bucket() == bucketIdle {
				sawIdle = true
			} else {
				sawActive = true
			}
			// Consume everything so stations drain back to idle.
			if v := st.Voice(); v != nil {
				for v.Buffered() > 0 {
					v.Pop()
				}
			}
			if d := st.Data(); d != nil {
				d.TransmitAttempts(d.Backlog(), s.Now(), func() bool { return true }, func(sim.Time) {})
			}
			s.Reindex(st)
		}
		s.EndFrame(s.FrameDuration())
		if err := s.VerifyRegistry(); err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
	}
	if !sawIdle || !sawActive {
		t.Fatalf("population never split across idle/active buckets (idle=%v active=%v)", sawIdle, sawActive)
	}
	if s.M.VoiceGenerated.Total() == 0 || s.M.DataGenerated.Total() == 0 {
		t.Fatal("lazily woken stations generated no traffic")
	}
}

// TestLazyChannelReplayMatchesEager pins the byte-identical property of the
// deferred fading replay: observing a station after k idle frames must give
// exactly the amplitude an every-frame advance would have produced.
func TestLazyChannelReplayMatchesEager(t *testing.T) {
	p := channel.DefaultParams()
	eager := channel.NewFading(p, rng.Derive(9, "f"))
	s := registrySystem(t, 1, 0)
	st := s.Stations[0]
	st.fad = channel.NewFading(p, rng.Derive(9, "f"))
	s.reg.chSync[st.slot] = 0

	const k = 57
	for i := 0; i < k; i++ {
		eager.Advance(s.FrameDuration())
		s.EndFrame(s.FrameDuration())
	}
	s.syncChannel(st)
	if got, want := st.fad.Amplitude(), eager.Amplitude(); got != want {
		t.Fatalf("lazy replay amplitude %v, eager %v", got, want)
	}
}
