// Package mac provides the substrate shared by all six uplink access
// control protocols: station state, the request/contention machinery with
// permission probabilities (§2, "Request Contention Model"), voice
// reservations, the optional base-station request queue (§4.5), CSI
// estimate lifecycle, and the transmission bookkeeping that converts PHY
// packet-error draws into the paper's performance metrics.
//
// # Layering
//
// A System is one cell's simulation state; a Protocol (charisma, drma,
// dtdma, rama, rmav — each its own subpackage) drives it one frame at a
// time through BeginFrame → RunFrame → EndFrame. Protocols observe and
// mutate stations only through the System's helpers (Contend,
// NewRequest, TransmitVoice/TransmitData, the queue operations), which
// keeps the metric accounting and the randomness discipline in one
// place: MAC-side draws (contention coins, packet errors, CSI noise)
// come from the System's stream, never from the channel or traffic
// streams, so every protocol observes identical channel and traffic
// sample paths — the paper's common-random-numbers comparison.
//
// # Performance invariants
//
// The frame hot path is allocation-free at steady state and costs
// O(active stations), not O(population):
//
//   - The station registry (registry.go) buckets stations by state
//     (idle/pending/reserved/talkspurt/backlogged) in bitsets with an
//     idle wake queue, so frame scans touch only stations that can act.
//   - Channel fading is replayed lazily: an unobserved station's fading
//     is deferred and caught up in one batched AdvanceSteps when next
//     observed, consuming exactly the draws the eager schedule would
//     have (see the draw-order contract in package channel) — results
//     are byte-identical to advancing every station every frame.
//   - Request objects are pooled per System (BorrowRequest/FreeRequest):
//     a request lives from creation to retirement (served, rejected, or
//     scrubbed) and is then recycled, so schedulers allocate nothing per
//     frame once scratch high-water marks are reached.
//
// TestFrameHotPathAllocs (idle cell) and the facade-level
// TestActiveFrameSteadyStateAllocs (active cell, every protocol, both
// queue variants) pin these invariants.
package mac
