// Package rama implements the RAMA baseline (Amitay & Greenstein [2];
// paper §3.1).
//
// RAMA replaces contention with a collision-free resource *auction*: in
// each auction slot every active user transmits, digit by digit on
// orthogonal frequencies, a randomly generated ID; after each digit the
// base station broadcasts the largest digit heard and smaller bidders drop
// out, so exactly one winner emerges per auction slot. Data users' IDs are
// always smaller than voice users' IDs, giving voice strict priority.
//
// The MAC-visible properties — one guaranteed winner per auction slot,
// voice class wins over data, winner uniformly random within its class —
// are modelled directly (DESIGN.md §3): the paper itself treats residual
// digit ties as negligible for an adequate ID length.
//
// Because every auction succeeds, RAMA never thrashes: the paper observes
// its "much more graceful performance degradation" at very high load.
// Voice winners reserve a transmission every 20 ms; the PHY is fixed-rate.
package rama

import (
	"charisma/internal/mac"
	"charisma/internal/phy"
	"charisma/internal/sim"
)

// Protocol is the RAMA access scheme.
type Protocol struct {
	// wonAt stamps, per station ID, the frame in which the station won an
	// auction (frame-stamped so no per-frame clearing pass is needed).
	wonAt []int64
	// voiceBidders/dataBidders are per-auction bidder scratch.
	voiceBidders []*mac.Station
	dataBidders  []*mac.Station
}

// New returns a RAMA instance.
func New() *Protocol { return &Protocol{} }

// Name implements mac.Protocol.
func (p *Protocol) Name() string { return "rama" }

// Init implements mac.Protocol.
func (p *Protocol) Init(s *mac.System) {
	if n := len(s.Stations); cap(p.wonAt) >= n {
		p.wonAt = p.wonAt[:n]
	} else {
		p.wonAt = make([]int64, n)
	}
	for i := range p.wonAt {
		p.wonAt[i] = -1
	}
}

func (p *Protocol) fixedMode(s *mac.System) phy.Mode { return s.PHY.Modes()[0] }

// auction picks the winner of one auction slot: voice bidders dominate
// (their IDs are constructed larger), and within the winning class the
// randomly drawn IDs make every bidder equally likely to hold the largest.
func (p *Protocol) auction(s *mac.System, voice, data []*mac.Station) *mac.Station {
	pool := voice
	if len(pool) == 0 {
		pool = data
	}
	if len(pool) == 0 {
		return nil
	}
	w := pool[s.Rand.IntN(len(pool))]
	s.M.ReqAttempts.Add(uint64(len(voice) + len(data)))
	s.M.ReqSuccesses.Inc()
	return w
}

// RunFrame implements mac.Protocol.
func (p *Protocol) RunFrame(s *mac.System) sim.Time {
	g := s.Cfg.Geometry
	slotsLeft := g.RAMAInfoSlots
	s.M.AddInfoBudget(slotsLeft * g.InfoSlotSymbols)
	frame := s.FrameIndex()
	mode := p.fixedMode(s)

	// Reserved voice users hold their periodic slots.
	for _, st := range s.VoiceReservationsDue() {
		if slotsLeft == 0 {
			break
		}
		s.TransmitVoice(st, mode, 1)
		s.AdvanceReservation(st)
		s.M.AddInfoUsed(g.InfoSlotSymbols)
		slotsLeft--
	}

	// Queued winners from previous frames are honoured first (§4.5). At
	// high load reservations absorb the slots before the queue is
	// reached — the paper's explanation for why a queue barely helps
	// RAMA emerges from exactly this ordering.
	for i := 0; i < s.QueueLen() && slotsLeft > 0; {
		r := s.Queue()[i]
		if r.Kind == mac.KindVoice {
			s.TransmitVoice(r.St, mode, 1)
			s.GrantReservation(r.St)
		} else {
			s.TransmitData(r.St, mode, 1)
		}
		s.M.AddInfoUsed(g.InfoSlotSymbols)
		slotsLeft--
		s.FreeRequest(s.PopQueueAt(i))
	}

	// Auction subframe.
	for a := 0; a < g.RAMAAuctionSlots; a++ {
		voice, data := p.bidders(s, frame)
		w := p.auction(s, voice, data)
		if w == nil {
			break
		}
		p.wonAt[w.ID] = frame
		kind := s.RequestKind(w)
		r := s.NewRequest(w, kind)
		if slotsLeft > 0 {
			if kind == mac.KindVoice {
				s.TransmitVoice(w, mode, 1)
				s.GrantReservation(w)
			} else {
				s.TransmitData(w, mode, 1)
			}
			s.M.AddInfoUsed(g.InfoSlotSymbols)
			slotsLeft--
			s.FreeRequest(r)
			continue
		}
		if !s.Enqueue(r) {
			s.FreeRequest(r)
		}
	}
	return g.Duration()
}

func (p *Protocol) bidders(s *mac.System, frame int64) (voice, data []*mac.Station) {
	p.voiceBidders = p.voiceBidders[:0]
	p.dataBidders = p.dataBidders[:0]
	s.ForEachCandidate(func(st *mac.Station) {
		if p.wonAt[st.ID] == frame {
			return
		}
		if s.NeedsVoiceRequest(st) {
			p.voiceBidders = append(p.voiceBidders, st)
		} else {
			p.dataBidders = append(p.dataBidders, st)
		}
	})
	return p.voiceBidders, p.dataBidders
}
