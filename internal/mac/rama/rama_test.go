package rama_test

import (
	"testing"

	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/mac/rama"
)

func build(t *testing.T, nv, nd int, queue bool) (*mac.System, mac.Protocol) {
	t.Helper()
	sc := core.DefaultScenario(core.ProtoRAMA)
	sc.NumVoice, sc.NumData = nv, nd
	sc.UseQueue = queue
	sys, p, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	p.Init(sys)
	return sys, p
}

func runFrames(sys *mac.System, p mac.Protocol, n int) {
	for i := 0; i < n; i++ {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
	}
}

func TestName(t *testing.T) {
	if rama.New().Name() != "rama" {
		t.Fatal("name wrong")
	}
}

// The auction is collision-free by construction — RAMA's defining property
// and the reason it degrades gracefully at any load (§3.1, §5.1).
func TestAuctionNeverCollides(t *testing.T) {
	for _, nv := range []int{10, 80, 200} {
		sys, p := build(t, nv, 10, false)
		runFrames(sys, p, 1500)
		if sys.M.ReqCollisions.Total() != 0 {
			t.Fatalf("Nv=%d: %d collisions in a collision-free auction", nv, sys.M.ReqCollisions.Total())
		}
	}
}

// Voice IDs always dominate data IDs: while voice bidders exist, no data
// station may win an auction.
func TestVoiceClassPriority(t *testing.T) {
	sys, p := build(t, 60, 30, false)
	runFrames(sys, p, 1000)
	// Proxy: with heavy voice load, the served data volume must be small
	// relative to served voice volume.
	voice := sys.M.VoiceTxOK.Total() + sys.M.VoiceTxErr.Total()
	if voice == 0 {
		t.Fatal("no voice served")
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	sys, p := build(t, 70, 10, true)
	runFrames(sys, p, 2000)
	if used, total := sys.M.InfoSymbolsUsed.Total(), sys.M.InfoSymbolsTotal.Total(); used > total {
		t.Fatalf("used %d of %d", used, total)
	}
}

func TestAuctionCountBoundedPerFrame(t *testing.T) {
	sys, p := build(t, 150, 20, false)
	prev := uint64(0)
	for i := 0; i < 500; i++ {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
		wins := sys.M.ReqSuccesses.Total() - prev
		if wins > uint64(sys.Cfg.Geometry.RAMAAuctionSlots) {
			t.Fatalf("%d auction winners in one frame (Na=%d)", wins, sys.Cfg.Geometry.RAMAAuctionSlots)
		}
		prev = sys.M.ReqSuccesses.Total()
	}
}

func TestGracefulDegradationAtOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Even at 3x capacity the system keeps delivering: the paper's
	// "progress is still maintained and no thrashing will occur".
	sc := core.DefaultScenario(core.ProtoRAMA)
	sc.NumVoice = 220
	sc.WarmupSec = 1
	sc.DurationSec = 6
	r, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.VoiceDelivered == 0 {
		t.Fatal("RAMA stopped delivering at overload (thrashing)")
	}
	if r.InfoUtilization < 0.9 {
		t.Fatalf("utilization %.2f at overload — slots going idle", r.InfoUtilization)
	}
}

func TestReservationsWork(t *testing.T) {
	sys, p := build(t, 10, 0, false)
	runFrames(sys, p, 4000)
	if sys.M.ReservationsGranted.Total() == 0 {
		t.Fatal("no reservations granted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() mac.Result {
		sys, p := build(t, 30, 5, true)
		runFrames(sys, p, 1000)
		return sys.M.Result("rama", sys.Cfg.Geometry.FrameSymbols)
	}
	if run() != run() {
		t.Fatal("not deterministic")
	}
}
