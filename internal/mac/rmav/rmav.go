// Package rmav implements the RMAV baseline (Jeong, Choi & Jeon [12];
// paper §3.2).
//
// RMAV uses a variable-length frame in which every slot except the last is
// an *assigned* information slot and the single trailing slot is the
// "competitive slot" where slotless users contend. A winner's assignment
// persists in every subsequent frame until released: a voice winner holds
// one slot per frame for the rest of its talkspurt, and a data winner
// holds up to Pmax = 10 slots per frame until its backlog drains. The
// frame length therefore tracks the admitted population (bounded by
// n·Pmax for n users), shrinking to a bare competitive slot when idle —
// which is why RMAV achieves very short delay at light load and high raw
// throughput at high load.
//
// The fatal flaw the paper demonstrates: one contention opportunity per
// frame. As admitted users stretch the frame, contention opportunities per
// second collapse exactly when the contender population grows, and the
// protocol thrashes at a moderate user count (Fig. 11: unstable beyond
// ≈10–20 voice users).
//
// RMAV inherently needs no BS request queue — each frame has at most one
// winner (§4.5, footnote 3) — so the queue configuration is ignored. The
// PHY is the fixed-rate encoder.
package rmav

import (
	"charisma/internal/mac"
	"charisma/internal/phy"
	"charisma/internal/sim"
)

// Protocol is the RMAV access scheme.
type Protocol struct {
	// voiceSlot records persistent voice slot assignments (one slot per
	// frame for the whole talkspurt), per station ID. A slot whose
	// reservation lapsed is released lazily the next time its station
	// re-enters the contention population.
	voiceSlot []bool
	// dataGrant is the data station that won the previous competitive
	// slot; it holds up to Pmax slots in this frame only ("one or more
	// information slots ... in the next frame", §3.2) and must contend
	// again afterwards.
	dataGrant *mac.Station
	// cands is the competitive-slot candidate scratch.
	cands []*mac.Station
}

// New returns an RMAV instance.
func New() *Protocol { return &Protocol{} }

// Name implements mac.Protocol.
func (p *Protocol) Name() string { return "rmav" }

// Init implements mac.Protocol.
func (p *Protocol) Init(s *mac.System) {
	if n := len(s.Stations); cap(p.voiceSlot) >= n {
		p.voiceSlot = p.voiceSlot[:n]
		clear(p.voiceSlot)
	} else {
		p.voiceSlot = make([]bool, n)
	}
	p.dataGrant = nil
}

func (p *Protocol) fixedMode(s *mac.System) phy.Mode { return s.PHY.Modes()[0] }

// RunFrame implements mac.Protocol. It returns the variable frame
// duration: one 160-symbol slot per persistent assignment plus the
// full-size competitive slot.
func (p *Protocol) RunFrame(s *mac.System) sim.Time {
	g := s.Cfg.Geometry
	mode := p.fixedMode(s)
	assigned := 0
	used := 0

	// Voice assignments: one slot every frame for the talkspurt. Slot
	// holders are exactly the stations whose MAC-level reservation is
	// still alive, i.e. the registry's reserved bucket; a station whose
	// reservation lapsed in BeginFrame has already left the bucket, so
	// its slot simply stops recurring (voiceSlot is cleared when the
	// station next contends).
	s.ForEachReserved(func(st *mac.Station) {
		if !p.voiceSlot[st.ID] {
			return
		}
		assigned++
		if st.Voice().Buffered() > 0 {
			s.TransmitVoice(st, mode, 1)
			used += g.InfoSlotSymbols
		}
	})

	// The data grant won in the previous competitive slot: up to Pmax
	// slots in this frame only.
	if st := p.dataGrant; st != nil {
		p.dataGrant = nil
		s.SetPendingAtBS(st, false)
		n := st.Data().Backlog()
		if n > g.RMAVMaxGrantSlots {
			n = g.RMAVMaxGrantSlots
		}
		if n > 0 {
			assigned += n
			s.TransmitData(st, mode, n)
			used += n * g.InfoSlotSymbols
		}
	}

	// The single competitive slot at the end of the frame.
	p.cands = p.cands[:0]
	s.ForEachCandidate(func(st *mac.Station) {
		if p.voiceSlot[st.ID] {
			if st.Reserved() {
				return
			}
			// Talkspurt ended earlier: release the stale slot and let
			// the station contend again.
			p.voiceSlot[st.ID] = false
		}
		p.cands = append(p.cands, st)
	})
	if w := s.Contend(p.cands); w != nil {
		if s.RequestKind(w) == mac.KindVoice {
			p.voiceSlot[w.ID] = true
			// Mark the MAC-level reservation so talkspurt-end release
			// and metrics work uniformly; the slot itself recurs every
			// frame rather than every 20 ms, hence due = now.
			s.GrantReservationAt(w, s.Now())
		} else {
			p.dataGrant = w
			// The station must not re-contend while its grant is
			// outstanding.
			s.SetPendingAtBS(w, true)
		}
	}

	s.M.AddInfoBudget(assigned*g.InfoSlotSymbols + g.InfoSlotSymbols)
	s.M.AddInfoUsed(used)
	return g.RMAVFrameDuration(assigned)
}
