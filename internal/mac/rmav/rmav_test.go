package rmav_test

import (
	"testing"

	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/mac/rmav"
	"charisma/internal/sim"
)

func build(t *testing.T, nv, nd int) (*mac.System, mac.Protocol) {
	t.Helper()
	sc := core.DefaultScenario(core.ProtoRMAV)
	sc.NumVoice, sc.NumData = nv, nd
	sys, p, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	p.Init(sys)
	return sys, p
}

func TestName(t *testing.T) {
	if rmav.New().Name() != "rmav" {
		t.Fatal("name wrong")
	}
}

// RMAV's frame length varies with the assigned population (Fig. 2b) and
// shrinks to a single competitive slot when idle.
func TestVariableFrameDuration(t *testing.T) {
	sys, p := build(t, 30, 5)
	slot := sim.Time(sys.Cfg.Geometry.InfoSlotSymbols)
	sawShort, sawLong := false, false
	for i := 0; i < 6000; i++ {
		sys.BeginFrame()
		dur := p.RunFrame(sys)
		if dur < slot {
			t.Fatalf("frame shorter than the competitive slot: %v", dur)
		}
		if dur%slot != 0 {
			t.Fatalf("frame %v not a whole number of slots", dur)
		}
		if dur == slot {
			sawShort = true
		}
		if dur >= 3*slot {
			sawLong = true
		}
		sys.EndFrame(dur)
	}
	if !sawShort {
		t.Fatal("never saw an idle (single-slot) frame")
	}
	if !sawLong {
		t.Fatal("never saw a loaded multi-slot frame")
	}
}

// Data grants are one-shot: at most Pmax slots in the next frame (§3.2).
func TestDataGrantBoundedByPmax(t *testing.T) {
	sys, p := build(t, 0, 1)
	prev := uint64(0)
	for i := 0; i < 20000; i++ {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
		got := sys.M.DataDelivered.Total() + sys.M.DataTxErr.Total()
		if int(got-prev) > sys.Cfg.Geometry.RMAVMaxGrantSlots {
			t.Fatalf("served %d packets in one frame, Pmax=%d", got-prev, sys.Cfg.Geometry.RMAVMaxGrantSlots)
		}
		prev = got
	}
	if prev == 0 {
		t.Fatal("no data ever served")
	}
}

// A voice winner holds one slot in every frame for its whole talkspurt.
func TestVoiceSlotPersistsAcrossFrames(t *testing.T) {
	sys, p := build(t, 3, 0)
	granted := false
	for i := 0; i < 20000; i++ {
		sys.BeginFrame()
		dur := p.RunFrame(sys)
		sys.EndFrame(dur)
		if sys.M.ReservationsGranted.Total() > 0 {
			granted = true
			break
		}
	}
	if !granted {
		t.Fatal("no voice winner in 20k frames")
	}
	// While any station is reserved, the frame must carry assigned slots.
	reservedFrames, multiSlot := 0, 0
	for i := 0; i < 2000; i++ {
		sys.BeginFrame()
		dur := p.RunFrame(sys)
		sys.EndFrame(dur)
		anyReserved := false
		for _, st := range sys.Stations {
			if st.Reserved() {
				anyReserved = true
			}
		}
		if anyReserved {
			reservedFrames++
			if dur > sim.Time(sys.Cfg.Geometry.InfoSlotSymbols) {
				multiSlot++
			}
		}
	}
	if reservedFrames > 0 && multiSlot == 0 {
		t.Fatal("reserved stations never enlarged the frame")
	}
}

// The single contention opportunity per frame is RMAV's downfall: at a
// moderate population it must already lose dramatically more voice than at
// a small one (Fig. 11's early instability).
func TestInstabilityAtModerateLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(nv int) float64 {
		sc := core.DefaultScenario(core.ProtoRMAV)
		sc.NumVoice = nv
		sc.WarmupSec = 1
		sc.DurationSec = 8
		r, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.VoiceLossRate
	}
	small, moderate := run(5), run(40)
	if moderate < 4*small || moderate < 0.05 {
		t.Fatalf("no instability: loss %.4f at Nv=5 vs %.4f at Nv=40", small, moderate)
	}
}

func TestQueueIgnored(t *testing.T) {
	// RMAV inherently needs no request queue (§4.5 footnote): behaviour
	// must be identical with and without it.
	run := func(queue bool) mac.Result {
		sc := core.DefaultScenario(core.ProtoRMAV)
		sc.NumVoice, sc.NumData = 20, 5
		sc.UseQueue = queue
		sc.WarmupSec = 1
		sc.DurationSec = 4
		r, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		r.Protocol = "" // normalize
		return r
	}
	if run(false) != run(true) {
		t.Fatal("queue flag changed RMAV behaviour")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() mac.Result {
		sys, p := build(t, 15, 5)
		for i := 0; i < 3000; i++ {
			sys.BeginFrame()
			sys.EndFrame(p.RunFrame(sys))
		}
		return sys.M.Result("rmav", sys.Cfg.Geometry.FrameSymbols)
	}
	if run() != run() {
		t.Fatal("not deterministic")
	}
}
