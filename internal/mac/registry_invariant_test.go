package mac_test

// Black-box invariant tests for the state-indexed station registry: the
// bucket partition must hold after every frame of every protocol, and the
// frame hot path of an idle cell must be allocation-free (the property the
// CI allocs guard pins).

import (
	"fmt"
	"testing"

	"charisma/internal/channel"
	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/phy"
	"charisma/internal/rng"
	"charisma/internal/traffic"
)

// TestRegistryInvariantEveryProtocol drives each protocol for a few hundred
// frames and checks, after every frame, that every station sits in exactly
// one registry bucket and that the bucket matches its live MAC state.
func TestRegistryInvariantEveryProtocol(t *testing.T) {
	for _, proto := range core.Protocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			sc := core.DefaultScenario(proto)
			sc.NumVoice, sc.NumData = 25, 5
			sc.UseQueue = proto == core.ProtoCharisma // exercise the pending bucket too
			sys, p, err := sc.Build()
			if err != nil {
				t.Fatal(err)
			}
			p.Init(sys)
			if err := sys.VerifyRegistry(); err != nil {
				t.Fatalf("before first frame: %v", err)
			}
			for f := 0; f < 400; f++ {
				sys.BeginFrame()
				sys.EndFrame(p.RunFrame(sys))
				if err := sys.VerifyRegistry(); err != nil {
					t.Fatalf("after frame %d: %v", f, err)
				}
			}
		})
	}
}

// mostlyIdleSystem builds a cell of n voice stations with the given mean
// silence duration; a large value parks nearly the whole population in the
// registry's idle bucket.
func mostlyIdleSystem(tb testing.TB, n int, meanSilenceSec float64, protocol string) (*mac.System, mac.Protocol) {
	tb.Helper()
	vp := traffic.DefaultVoiceParams()
	vp.MeanSilenceSec = meanSilenceSec
	stations := make([]*mac.Station, n)
	cp := channel.DefaultParams()
	for i := range stations {
		stations[i] = mac.NewStation(i,
			traffic.NewVoice(vp, rng.Derive(7, "bench-voice", fmt.Sprint(i)), 0),
			nil,
			channel.NewFading(cp, rng.Derive(7, "bench-chan", fmt.Sprint(i))))
	}
	var modem phy.PHY
	if core.AdaptivePHYFor(protocol) {
		modem = phy.NewAdaptive(phy.DefaultParams())
	} else {
		modem = phy.NewFixed(phy.DefaultParams())
	}
	sys, err := mac.NewSystem(mac.DefaultConfig(), modem, stations, rng.Derive(7, "bench-mac", protocol))
	if err != nil {
		tb.Fatal(err)
	}
	p, err := core.NewProtocol(protocol)
	if err != nil {
		tb.Fatal(err)
	}
	p.Init(sys)
	return sys, p
}

// BenchmarkFrame measures per-frame cost against the station-registry
// promise: with the active population held at ~40 talkers, growing the
// total population 100× (100 → 10⁴ stations) must leave ns/frame nearly
// flat, because idle stations are neither scanned nor advanced.
func BenchmarkFrame(b *testing.B) {
	for _, bc := range []struct {
		name     string
		total    int
		active   int
		protocol string
	}{
		{"charisma/total=100/active=40", 100, 40, core.ProtoCharisma},
		{"charisma/total=10000/active=40", 10_000, 40, core.ProtoCharisma},
		{"charisma/total=10000/active=400", 10_000, 400, core.ProtoCharisma},
		{"drma/total=10000/active=40", 10_000, 40, core.ProtoDRMA},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			// ActivityFactor = talk/(talk+silence); silence tuned so about
			// bc.active stations talk at any time.
			talk := traffic.DefaultVoiceParams().MeanTalkSec
			silence := talk * (float64(bc.total)/float64(bc.active) - 1)
			sys, proto := mostlyIdleSystem(b, bc.total, silence, bc.protocol)
			// Warm past the talkspurt transient so scratch buffers and
			// reservations reach steady state before timing.
			for f := 0; f < 400; f++ {
				sys.BeginFrame()
				sys.EndFrame(proto.RunFrame(sys))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.BeginFrame()
				sys.EndFrame(proto.RunFrame(sys))
			}
		})
	}
}

// TestFrameHotPathAllocs is the allocs/op regression guard on the frame hot
// path: with the station registry in place, a frame over a 10⁴-station cell
// whose population is parked idle must not allocate at all — idle stations
// are neither scanned nor advanced, and every active-path scratch is reused
// across frames.
func TestFrameHotPathAllocs(t *testing.T) {
	sys, p := mostlyIdleSystem(t, 10_000, 1e6, core.ProtoDRMA)
	// Warm up past transients so every scratch slice has reached its
	// high-water mark.
	for f := 0; f < 200; f++ {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
	}
	avg := testing.AllocsPerRun(200, func() {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
	})
	if avg != 0 {
		t.Fatalf("frame hot path allocates %.2f allocs/frame over an idle cell, want 0", avg)
	}
}
