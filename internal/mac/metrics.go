package mac

import (
	"charisma/internal/sim"
	"charisma/internal/stats"
)

// Metrics accumulates the raw event counts of a run. Mark() freezes the
// warm-up prefix so Result reports only the steady-state measurement
// window, matching standard simulation practice for the paper's long-run
// averages.
type Metrics struct {
	VoiceGenerated stats.Counter
	VoiceDropped   stats.Counter
	VoiceTxOK      stats.Counter
	VoiceTxErr     stats.Counter

	DataGenerated stats.Counter
	DataDelivered stats.Counter
	DataTxErr     stats.Counter

	ReqAttempts   stats.Counter
	ReqCollisions stats.Counter
	ReqSuccesses  stats.Counter

	ReservationsGranted stats.Counter
	CSIPolls            stats.Counter
	QueueRejects        stats.Counter

	InfoSymbolsTotal stats.Counter
	InfoSymbolsUsed  stats.Counter

	MeasuredTicks stats.Counter

	delay stats.MeanVar
}

// ObserveDataDelay records one successful data packet's queueing delay.
func (m *Metrics) ObserveDataDelay(d sim.Time) { m.delay.Add(d.Seconds()) }

// AddInfoBudget records the information-subframe symbol budget of a frame.
func (m *Metrics) AddInfoBudget(symbols int) { m.InfoSymbolsTotal.Add(uint64(symbols)) }

// AddInfoUsed records information symbols actually spent on transmissions.
func (m *Metrics) AddInfoUsed(symbols int) { m.InfoSymbolsUsed.Add(uint64(symbols)) }

// Mark starts the measurement window: everything counted so far is treated
// as warm-up and excluded from Result.
func (m *Metrics) Mark() {
	m.VoiceGenerated.Mark()
	m.VoiceDropped.Mark()
	m.VoiceTxOK.Mark()
	m.VoiceTxErr.Mark()
	m.DataGenerated.Mark()
	m.DataDelivered.Mark()
	m.DataTxErr.Mark()
	m.ReqAttempts.Mark()
	m.ReqCollisions.Mark()
	m.ReqSuccesses.Mark()
	m.ReservationsGranted.Mark()
	m.CSIPolls.Mark()
	m.QueueRejects.Mark()
	m.InfoSymbolsTotal.Mark()
	m.InfoSymbolsUsed.Mark()
	m.MeasuredTicks.Mark()
	m.delay.Reset()
}

// Result is the paper's metric set for one scenario run.
type Result struct {
	Protocol string
	// Frames is the measurement window expressed in standard 2.5 ms
	// frame equivalents (RMAV's variable frames are normalized by time).
	Frames float64

	VoiceGenerated uint64
	VoiceDropped   uint64
	VoiceErrored   uint64
	VoiceDelivered uint64
	// VoiceLossRate is Ploss = (dropped + errored) / generated — eq. (3):
	// both deadline expiry at the device and transmission error count as
	// loss.
	VoiceLossRate  float64
	VoiceDropRate  float64
	VoiceErrorRate float64

	DataGenerated uint64
	DataDelivered uint64
	DataErrored   uint64
	// DataThroughputPerFrame is γ: data packets successfully received at
	// the base station per (standard) frame.
	DataThroughputPerFrame float64
	// MeanDataDelaySec is D_d: mean time from a data packet's arrival to
	// the start of its successful transmission.
	MeanDataDelaySec float64
	// DataDelayCI95 is the 95% confidence half-width of the mean delay.
	DataDelayCI95   float64
	MaxDataDelaySec float64
	// MinDataDelaySec is the smallest observed data delay in the window
	// (0 when no data packet was delivered).
	MinDataDelaySec float64

	ReqAttempts     uint64
	ReqCollisions   uint64
	ReqSuccesses    uint64
	CollisionRate   float64
	CSIPolls        uint64
	QueueRejects    uint64
	InfoUtilization float64

	// Reps carries replication-level statistics when this Result pools
	// several independent replications (see AggregateReplications).
	Reps RepStats
}

// RepStats summarizes across-replication dispersion. For a single run
// Replications is 1 and every half-width is zero; an aggregate of N ≥ 2
// replications reports Student-t 95% confidence half-widths computed
// across the per-replication metric values — the statistically sound
// interval the paper's replicated evaluation calls for, as opposed to a
// within-run interval that ignores between-run variance.
type RepStats struct {
	// Replications is the number of independent replications pooled.
	Replications int
	// VoiceLossCI95 is the across-replication half-width of VoiceLossRate.
	VoiceLossCI95 float64
	// DataThroughputCI95 is the across-replication half-width of
	// DataThroughputPerFrame.
	DataThroughputCI95 float64
	// DataDelayCI95 is the across-replication half-width of
	// MeanDataDelaySec.
	DataDelayCI95 float64
}

// Result snapshots the measurement window into the paper's metrics. The
// frameSymbols argument is the standard frame length used to normalize
// throughput (800 symbols = 2.5 ms).
func (m *Metrics) Result(protocol string, frameSymbols int) Result {
	frames := float64(m.MeasuredTicks.Since()) / float64(frameSymbols)
	r := Result{
		Protocol:       protocol,
		Frames:         frames,
		VoiceGenerated: m.VoiceGenerated.Since(),
		VoiceDropped:   m.VoiceDropped.Since(),
		VoiceErrored:   m.VoiceTxErr.Since(),
		VoiceDelivered: m.VoiceTxOK.Since(),
		DataGenerated:  m.DataGenerated.Since(),
		DataDelivered:  m.DataDelivered.Since(),
		DataErrored:    m.DataTxErr.Since(),
		ReqAttempts:    m.ReqAttempts.Since(),
		ReqCollisions:  m.ReqCollisions.Since(),
		ReqSuccesses:   m.ReqSuccesses.Since(),
		CSIPolls:       m.CSIPolls.Since(),
		QueueRejects:   m.QueueRejects.Since(),
		Reps:           RepStats{Replications: 1},
	}
	r.VoiceLossRate = stats.Ratio(r.VoiceDropped+r.VoiceErrored, r.VoiceGenerated)
	r.VoiceDropRate = stats.Ratio(r.VoiceDropped, r.VoiceGenerated)
	r.VoiceErrorRate = stats.Ratio(r.VoiceErrored, r.VoiceGenerated)
	if frames > 0 {
		r.DataThroughputPerFrame = float64(r.DataDelivered) / frames
	}
	r.MeanDataDelaySec = m.delay.Mean()
	r.DataDelayCI95 = m.delay.CI95()
	r.MaxDataDelaySec = m.delay.Max()
	r.MinDataDelaySec = m.delay.Min()
	r.CollisionRate = stats.Ratio(r.ReqCollisions, r.ReqCollisions+r.ReqSuccesses)
	r.InfoUtilization = stats.Ratio(m.InfoSymbolsUsed.Since(), m.InfoSymbolsTotal.Since())
	return r
}
