package dtdma_test

import (
	"testing"

	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/mac/dtdma"
)

func build(t *testing.T, proto string, nv, nd int, queue bool) (*mac.System, mac.Protocol) {
	t.Helper()
	sc := core.DefaultScenario(proto)
	sc.NumVoice, sc.NumData = nv, nd
	sc.UseQueue = queue
	sys, p, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	p.Init(sys)
	return sys, p
}

func runFrames(sys *mac.System, p mac.Protocol, n int) {
	for i := 0; i < n; i++ {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
	}
}

func TestNames(t *testing.T) {
	if dtdma.New().Name() != "d-tdma/fr" {
		t.Fatal("FR name wrong")
	}
	if dtdma.NewVariable().Name() != "d-tdma/vr" {
		t.Fatal("VR name wrong")
	}
}

func TestFixedFrameDuration(t *testing.T) {
	sys, p := build(t, core.ProtoDTDMAFR, 10, 0, false)
	for i := 0; i < 50; i++ {
		sys.BeginFrame()
		if dur := p.RunFrame(sys); dur != sys.Cfg.Geometry.Duration() {
			t.Fatalf("duration %v", dur)
		}
		sys.EndFrame(sys.Cfg.Geometry.Duration())
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	for _, proto := range []string{core.ProtoDTDMAFR, core.ProtoDTDMAVR} {
		sys, p := build(t, proto, 40, 10, true)
		runFrames(sys, p, 2000)
		if used, total := sys.M.InfoSymbolsUsed.Total(), sys.M.InfoSymbolsTotal.Total(); used > total {
			t.Fatalf("%s: used %d of %d symbols", proto, used, total)
		}
	}
}

func TestFRUsesOneSlotPerVoicePacket(t *testing.T) {
	sys, p := build(t, core.ProtoDTDMAFR, 8, 0, false)
	runFrames(sys, p, 4000)
	txs := sys.M.VoiceTxOK.Total() + sys.M.VoiceTxErr.Total()
	used := sys.M.InfoSymbolsUsed.Total()
	if txs == 0 {
		t.Fatal("no voice transmissions")
	}
	if used != txs*uint64(sys.Cfg.Geometry.InfoSlotSymbols) {
		t.Fatalf("FR symbol usage %d != packets %d x 160 (fixed rate broken)", used, txs)
	}
}

func TestVRUsesFewerSymbolsPerPacketOnAverage(t *testing.T) {
	sysFR, pFR := build(t, core.ProtoDTDMAFR, 8, 0, false)
	runFrames(sysFR, pFR, 4000)
	sysVR, pVR := build(t, core.ProtoDTDMAVR, 8, 0, false)
	runFrames(sysVR, pVR, 4000)
	perPktFR := float64(sysFR.M.InfoSymbolsUsed.Total()) / float64(sysFR.M.VoiceTxOK.Total()+sysFR.M.VoiceTxErr.Total())
	perPktVR := float64(sysVR.M.InfoSymbolsUsed.Total()) / float64(sysVR.M.VoiceTxOK.Total()+sysVR.M.VoiceTxErr.Total())
	if perPktVR >= perPktFR {
		t.Fatalf("VR %.1f symbols/packet not below FR %.1f — adaptive PHY not helping", perPktVR, perPktFR)
	}
}

func TestReservationsGranted(t *testing.T) {
	sys, p := build(t, core.ProtoDTDMAFR, 10, 0, false)
	runFrames(sys, p, 4000)
	if sys.M.ReservationsGranted.Total() == 0 {
		t.Fatal("no reservations granted")
	}
}

func TestQueueHoldsOverflow(t *testing.T) {
	sys, p := build(t, core.ProtoDTDMAFR, 90, 0, true)
	peak := 0
	for i := 0; i < 3000; i++ {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
		if sys.QueueLen() > peak {
			peak = sys.QueueLen()
		}
	}
	if peak == 0 {
		t.Fatal("queue never used at overload")
	}
	if peak > sys.Cfg.QueueCap {
		t.Fatalf("queue peak %d exceeded cap", peak)
	}
}

func TestNoQueueLeavesQueueEmpty(t *testing.T) {
	sys, p := build(t, core.ProtoDTDMAFR, 90, 0, false)
	for i := 0; i < 1500; i++ {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
		if sys.QueueLen() != 0 {
			t.Fatal("queue populated despite UseQueue=false")
		}
	}
}

func TestDataServiceIsSingleSlotPerFrame(t *testing.T) {
	// A lone FR data user can deliver at most one packet per frame.
	sys, p := build(t, core.ProtoDTDMAFR, 0, 1, false)
	prev := uint64(0)
	for i := 0; i < 4000; i++ {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
		delivered := sys.M.DataDelivered.Total()
		if delivered-prev > 1 {
			t.Fatalf("FR delivered %d data packets in one frame", delivered-prev)
		}
		prev = delivered
	}
	if prev == 0 {
		t.Fatal("no data delivered in 10 s")
	}
}

func TestVRDataCanBatchPackets(t *testing.T) {
	// The adaptive PHY lets a VR data user deliver several packets in its
	// slot-equivalent when its channel is good.
	sys, p := build(t, core.ProtoDTDMAVR, 0, 1, false)
	prev := uint64(0)
	batched := false
	for i := 0; i < 8000 && !batched; i++ {
		sys.BeginFrame()
		sys.EndFrame(p.RunFrame(sys))
		delivered := sys.M.DataDelivered.Total()
		if delivered-prev > 1 {
			batched = true
		}
		prev = delivered
	}
	if !batched {
		t.Fatal("VR never delivered more than one packet per grant in 20 s")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(proto string) mac.Result {
		sys, p := build(t, proto, 20, 5, true)
		runFrames(sys, p, 1000)
		return sys.M.Result(proto, sys.Cfg.Geometry.FrameSymbols)
	}
	for _, proto := range []string{core.ProtoDTDMAFR, core.ProtoDTDMAVR} {
		if run(proto) != run(proto) {
			t.Fatalf("%s not deterministic", proto)
		}
	}
}
