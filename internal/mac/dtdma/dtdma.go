// Package dtdma implements the D-TDMA/FR and D-TDMA/VR baselines
// (paper §3.4–§3.5).
//
// D-TDMA/FR is the classical improved-PRMA dynamic TDMA protocol: a static
// frame of Nr request minislots and an information subframe; whenever a
// request is successfully received in the request phase, information
// capacity (if any remains) is assigned to it immediately, first-come-
// first-served. A voice user that wins capacity keeps one transmission
// every 20 ms (reservation) until its talkspurt ends; data users must
// contend again for every frame. The physical layer is the fixed-
// throughput (η=1) encoder: one packet costs exactly one 160-symbol slot.
//
// D-TDMA/VR uses the identical access mechanism on the variable-throughput
// channel-adaptive physical layer, but — crucially — "there is no
// interaction between the access control layer and the physical layer":
// the scheduler stays FCFS and channel-blind. The adaptive encoder simply
// makes a packet cost ⌈160/η⌉ symbols of the information subframe, which
// is how the paper's "twice the average offered throughput" materializes
// without the MAC ever looking at CSI.
package dtdma

import (
	"charisma/internal/mac"
	"charisma/internal/phy"
	"charisma/internal/sim"
)

// Protocol is the D-TDMA access scheme; Variable selects the /VR flavour.
type Protocol struct {
	// Variable marks D-TDMA/VR: transmitter-side link adaptation.
	Variable bool

	// servedAt stamps, per station ID, the frame in which the station was
	// acknowledged (frame-stamped so no per-frame clearing pass is needed).
	servedAt []int64
	// cands is the per-minislot contention candidate scratch.
	cands []*mac.Station
}

// New returns the fixed-rate variant (D-TDMA/FR).
func New() *Protocol { return &Protocol{} }

// NewVariable returns the variable-rate variant (D-TDMA/VR).
func NewVariable() *Protocol { return &Protocol{Variable: true} }

// Name implements mac.Protocol.
func (p *Protocol) Name() string {
	if p.Variable {
		return "d-tdma/vr"
	}
	return "d-tdma/fr"
}

// Init implements mac.Protocol. The stamp slice is resized in place when
// capacity allows, so re-Init for a new replication does not allocate.
func (p *Protocol) Init(s *mac.System) {
	if n := len(s.Stations); cap(p.servedAt) >= n {
		p.servedAt = p.servedAt[:n]
	} else {
		p.servedAt = make([]int64, n)
	}
	for i := range p.servedAt {
		p.servedAt[i] = -1
	}
}

// txMode returns the transmission mode for a station: the fixed mode for
// /FR; for /VR the station adapts using the CSI the receiver feeds back at
// the frame boundary (paper Fig. 6). The MAC never sees the mode — it only
// shows up as transmission time on air.
func (p *Protocol) txMode(s *mac.System, st *mac.Station) phy.Mode {
	if !p.Variable {
		return s.PHY.Modes()[0]
	}
	est := s.MeasureEstimate(st)
	return s.PHY.ModeForAmplitude(est.Amp)
}

// serveVoice transmits one voice packet for st, returning the information
// symbols consumed (0 if it does not fit the remaining budget).
func (p *Protocol) serveVoice(s *mac.System, st *mac.Station, budget int) int {
	m := p.txMode(s, st)
	if m.SymbolsPerPacket > budget {
		return 0
	}
	s.TransmitVoice(st, m, 1)
	s.M.AddInfoUsed(m.SymbolsPerPacket)
	return m.SymbolsPerPacket
}

// serveData grants st one slot-equivalent data transmission opportunity:
// at mode η it carries max(1, ⌊η⌋) packets. Returns symbols consumed.
func (p *Protocol) serveData(s *mac.System, st *mac.Station, budget int) int {
	m := p.txMode(s, st)
	pkts := m.PacketsPerSlot()
	if pkts < 1 {
		pkts = 1 // half-rate mode: a lone packet costs two slot times
	}
	if pkts > st.Data().Backlog() {
		pkts = st.Data().Backlog()
	}
	// FCFS is channel-blind but not wasteful: it trims the grant to the
	// remaining subframe.
	for pkts > 0 && pkts*m.SymbolsPerPacket > budget {
		pkts--
	}
	if pkts == 0 {
		return 0
	}
	s.TransmitData(st, m, pkts)
	cost := pkts * m.SymbolsPerPacket
	s.M.AddInfoUsed(cost)
	return cost
}

// RunFrame implements mac.Protocol.
func (p *Protocol) RunFrame(s *mac.System) sim.Time {
	g := s.Cfg.Geometry
	budget := g.DTDMAInfoSlots * g.InfoSlotSymbols
	s.M.AddInfoBudget(budget)
	frame := s.FrameIndex()

	// Phase 1: reserved voice users transmit without contention.
	for _, st := range s.VoiceReservationsDue() {
		if used := p.serveVoice(s, st, budget); used > 0 {
			budget -= used
			s.AdvanceReservation(st)
		}
	}

	// Phase 2: the base-station request queue is served FCFS before new
	// contention (with-queue variant only; §4.5).
	for i := 0; i < s.QueueLen() && budget >= 0; {
		r := s.Queue()[i]
		var used int
		if r.Kind == mac.KindVoice {
			if used = p.serveVoice(s, r.St, budget); used > 0 {
				s.GrantReservation(r.St)
			}
		} else {
			used = p.serveData(s, r.St, budget)
		}
		if used == 0 {
			break // FCFS: the head blocks until capacity frees up
		}
		budget -= used
		s.FreeRequest(s.PopQueueAt(i))
	}

	// Phase 3: request contention with immediate FCFS assignment.
	for ms := 0; ms < g.DTDMARequestSlots; ms++ {
		cands := p.contenders(s, frame)
		w := s.Contend(cands)
		if w == nil {
			continue
		}
		p.servedAt[w.ID] = frame
		kind := s.RequestKind(w)
		r := s.NewRequest(w, kind)
		var used int
		if kind == mac.KindVoice {
			if used = p.serveVoice(s, w, budget); used > 0 {
				s.GrantReservation(w)
			}
		} else {
			used = p.serveData(s, w, budget)
		}
		if used > 0 {
			budget -= used
			s.FreeRequest(r)
			continue
		}
		// Acknowledged but the frame is full: queue it or lose it.
		if !s.Enqueue(r) {
			s.FreeRequest(r)
		}
	}
	return g.Duration()
}

func (p *Protocol) contenders(s *mac.System, frame int64) []*mac.Station {
	p.cands = s.AppendContenders(p.cands[:0], p.servedAt, frame)
	return p.cands
}
