// Package sim provides a minimal deterministic discrete-event simulation
// engine: an integer simulated clock, an allocation-free 4-ary-heap event
// queue with stable FIFO ordering among simultaneous events, a recurring
// frame driver (ScheduleEvery), and a run loop.
//
// The whole reproduction is clocked in modulation symbols of the 320 kHz
// TDMA air interface described in the paper (Table 1): one tick is one
// symbol, i.e. 3.125 µs. Using an integer tick avoids floating-point clock
// drift over multi-minute simulated runs and makes event ordering exact.
package sim

import "fmt"

// Time is a simulation timestamp measured in symbol ticks.
type Time int64

// Symbol-rate derived clock constants for the 320 kHz system.
const (
	// SymbolsPerSecond is the TDMA symbol rate (320 kHz, Table 1).
	SymbolsPerSecond = 320000

	// Second is one simulated second expressed in ticks.
	Second Time = SymbolsPerSecond

	// Millisecond is one simulated millisecond expressed in ticks.
	Millisecond Time = SymbolsPerSecond / 1000
)

// Seconds converts a tick count to (floating point) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts a tick count to (floating point) milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts seconds to ticks, truncating sub-symbol fractions.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMilliseconds converts milliseconds to ticks.
func FromMilliseconds(ms float64) Time { return Time(ms * float64(Millisecond)) }

// String renders a timestamp with millisecond resolution for diagnostics.
func (t Time) String() string {
	return fmt.Sprintf("%.3fms", t.Milliseconds())
}
