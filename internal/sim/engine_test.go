package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Second != 320000 {
		t.Fatalf("Second = %d, want 320000 symbols", Second)
	}
	if Millisecond*1000 != Second {
		t.Fatalf("Millisecond*1000 = %d, want %d", Millisecond*1000, Second)
	}
	if got := FromSeconds(2.5); got != 800000 {
		t.Fatalf("FromSeconds(2.5) = %d, want 800000", got)
	}
	if got := FromMilliseconds(2.5); got != 800 {
		t.Fatalf("FromMilliseconds(2.5) = %d, want 800 (one frame)", got)
	}
	if got := Time(800).Milliseconds(); got != 2.5 {
		t.Fatalf("800 ticks = %vms, want 2.5ms", got)
	}
	if got := Time(320000).Seconds(); got != 1.0 {
		t.Fatalf("320000 ticks = %vs, want 1s", got)
	}
}

func TestTimeString(t *testing.T) {
	if s := Time(800).String(); s != "2.500ms" {
		t.Fatalf("String = %q", s)
	}
}

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.Schedule(at, func(*Engine) { order = append(order, at) })
	}
	e.Run()
	for i := 1; i < len(order); i++ {
		if order[i-1] > order[i] {
			t.Fatalf("events out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("executed %d events, want 5", len(order))
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
}

func TestEngineStableFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(10, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: order[%d] = %d", i, v)
		}
	}
}

func TestEngineScheduleFromHandler(t *testing.T) {
	e := NewEngine()
	count := 0
	var step Handler
	step = func(eng *Engine) {
		count++
		if count < 10 {
			eng.ScheduleAfter(5, step)
		}
	}
	e.Schedule(0, step)
	e.Run()
	if count != 10 {
		t.Fatalf("chained steps = %d, want 10", count)
	}
	if e.Now() != 45 {
		t.Fatalf("clock = %v, want 45", e.Now())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func(*Engine) {})
}

func TestEngineNilHandlerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	e.Schedule(0, nil)
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.ScheduleAfter(-1, func(*Engine) {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.Schedule(10, func(*Engine) { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Cancel(id) {
		t.Fatal("double Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(10, func(*Engine) {})
	e.Run()
	if e.Cancel(id) {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func(*Engine) { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %v, want 25", e.Now())
	}
	e.RunUntil(40) // inclusive boundary
	if len(fired) != 4 {
		t.Fatalf("RunUntil(40) fired %d total events, want 4", len(fired))
	}
}

func TestEngineRunUntilEmptyAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("clock = %v, want 1000", e.Now())
	}
}

func TestEnginePendingAndExecuted(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(1, func(*Engine) {})
	e.Schedule(2, func(*Engine) {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Cancel(id)
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Executed() != 1 {
		t.Fatalf("Executed = %d, want 1", e.Executed())
	}
}

// Property: for any random schedule, events fire in non-decreasing time
// order and every non-cancelled event fires exactly once.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		total := int(n%64) + 1
		fired := 0
		last := Time(-1)
		ok := true
		for i := 0; i < total; i++ {
			at := Time(r.Intn(1000))
			e.Schedule(at, func(*Engine) {
				fired++
				if at < last {
					ok = false
				}
				last = at
			})
		}
		e.Run()
		return ok && fired == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving Step and Schedule preserves causality (the clock
// never runs backwards).
func TestEngineClockMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var step Handler
		remaining := 100
		step = func(eng *Engine) {
			if remaining == 0 {
				return
			}
			remaining--
			eng.ScheduleAfter(Time(r.Intn(10)), step)
		}
		e.Schedule(0, step)
		prev := Time(0)
		for e.Step() {
			if e.Now() < prev {
				return false
			}
			prev = e.Now()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
