package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Second != 320000 {
		t.Fatalf("Second = %d, want 320000 symbols", Second)
	}
	if Millisecond*1000 != Second {
		t.Fatalf("Millisecond*1000 = %d, want %d", Millisecond*1000, Second)
	}
	if got := FromSeconds(2.5); got != 800000 {
		t.Fatalf("FromSeconds(2.5) = %d, want 800000", got)
	}
	if got := FromMilliseconds(2.5); got != 800 {
		t.Fatalf("FromMilliseconds(2.5) = %d, want 800 (one frame)", got)
	}
	if got := Time(800).Milliseconds(); got != 2.5 {
		t.Fatalf("800 ticks = %vms, want 2.5ms", got)
	}
	if got := Time(320000).Seconds(); got != 1.0 {
		t.Fatalf("320000 ticks = %vs, want 1s", got)
	}
}

func TestTimeString(t *testing.T) {
	if s := Time(800).String(); s != "2.500ms" {
		t.Fatalf("String = %q", s)
	}
}

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.Schedule(at, func(*Engine) { order = append(order, at) })
	}
	e.Run()
	for i := 1; i < len(order); i++ {
		if order[i-1] > order[i] {
			t.Fatalf("events out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("executed %d events, want 5", len(order))
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
}

func TestEngineStableFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(10, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: order[%d] = %d", i, v)
		}
	}
}

func TestEngineScheduleFromHandler(t *testing.T) {
	e := NewEngine()
	count := 0
	var step Handler
	step = func(eng *Engine) {
		count++
		if count < 10 {
			eng.ScheduleAfter(5, step)
		}
	}
	e.Schedule(0, step)
	e.Run()
	if count != 10 {
		t.Fatalf("chained steps = %d, want 10", count)
	}
	if e.Now() != 45 {
		t.Fatalf("clock = %v, want 45", e.Now())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func(*Engine) {})
}

func TestEngineNilHandlerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	e.Schedule(0, nil)
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.ScheduleAfter(-1, func(*Engine) {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.Schedule(10, func(*Engine) { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Cancel(id) {
		t.Fatal("double Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(10, func(*Engine) {})
	e.Run()
	if e.Cancel(id) {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func(*Engine) { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %v, want 25", e.Now())
	}
	e.RunUntil(40) // inclusive boundary
	if len(fired) != 4 {
		t.Fatalf("RunUntil(40) fired %d total events, want 4", len(fired))
	}
}

func TestEngineRunUntilEmptyAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("clock = %v, want 1000", e.Now())
	}
}

func TestEnginePendingAndExecuted(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(1, func(*Engine) {})
	e.Schedule(2, func(*Engine) {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Cancel(id)
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Executed() != 1 {
		t.Fatalf("Executed = %d, want 1", e.Executed())
	}
}

func TestScheduleEveryFixedPeriod(t *testing.T) {
	e := NewEngine()
	var fires []Time
	e.ScheduleEvery(5, func(eng *Engine) Time {
		fires = append(fires, eng.Now())
		if len(fires) == 4 {
			return -1 // stop from within
		}
		return 10
	})
	e.Run()
	want := []Time{5, 15, 25, 35}
	if len(fires) != len(want) {
		t.Fatalf("fired %d times, want %d", len(fires), len(want))
	}
	for i, at := range want {
		if fires[i] != at {
			t.Fatalf("firing %d at %v, want %v", i, fires[i], at)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("stopped recurrence left %d pending events", e.Pending())
	}
}

func TestScheduleEveryVariablePeriod(t *testing.T) {
	// Variable cadence, like RMAV's variable-length frames.
	e := NewEngine()
	delays := []Time{3, 7, 1}
	i := 0
	var fires []Time
	e.ScheduleEvery(0, func(eng *Engine) Time {
		fires = append(fires, eng.Now())
		if i >= len(delays) {
			return -1
		}
		d := delays[i]
		i++
		return d
	})
	e.Run()
	want := []Time{0, 3, 10, 11}
	if len(fires) != len(want) {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	for j := range want {
		if fires[j] != want[j] {
			t.Fatalf("fired at %v, want %v", fires, want)
		}
	}
}

func TestScheduleEveryCancelFromOutside(t *testing.T) {
	e := NewEngine()
	count := 0
	id := e.ScheduleEvery(0, func(*Engine) Time {
		count++
		return 10
	})
	e.Schedule(25, func(eng *Engine) {
		if !eng.Cancel(id) {
			t.Error("Cancel of a live recurrence returned false")
		}
	})
	e.Run()
	if count != 3 { // fires at 0, 10, 20; cancelled at 25
		t.Fatalf("recurrence fired %d times, want 3", count)
	}
}

func TestScheduleEveryInterleavesWithOneShots(t *testing.T) {
	e := NewEngine()
	var order []string
	e.ScheduleEvery(0, func(eng *Engine) Time {
		order = append(order, "tick")
		if eng.Now() >= 20 {
			return -1
		}
		return 10
	})
	e.Schedule(10, func(*Engine) { order = append(order, "shot") })
	e.Run()
	// The tick re-armed at 10 gets a later seq than the one-shot that was
	// scheduled first, so FIFO puts the one-shot ahead of it.
	want := []string{"tick", "shot", "tick", "tick"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// A recycled event slot must not honour EventIDs from its previous life.
func TestStaleEventIDAfterSlotReuse(t *testing.T) {
	e := NewEngine()
	id1 := e.Schedule(1, func(*Engine) {})
	e.Run()
	id2 := e.Schedule(2, func(*Engine) {}) // reuses the freed slot
	if e.Cancel(id1) {
		t.Fatal("stale EventID cancelled a recycled slot")
	}
	if !e.Cancel(id2) {
		t.Fatal("fresh EventID failed to cancel")
	}
}

func TestZeroEventIDInvalid(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func(*Engine) {})
	if e.Cancel(EventID{}) {
		t.Fatal("zero EventID cancelled something")
	}
}

// Steady-state scheduling must not allocate: the arena and free list
// absorb every schedule/fire cycle once grown.
func TestEngineSteadyStateAllocationFree(t *testing.T) {
	e := NewEngine()
	h := func(*Engine) {}
	// Warm up the arena and heap to their high-water marks.
	for j := 0; j < 64; j++ {
		e.Schedule(e.Now()+Time(j%7), h)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 64; j++ {
			e.Schedule(e.Now()+Time(j%7), h)
		}
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule/run allocates %v per cycle, want 0", allocs)
	}
}

func TestEngineCancelMiddleOfLargeHeap(t *testing.T) {
	e := NewEngine()
	ids := make([]EventID, 0, 100)
	fired := make(map[Time]bool)
	for i := 0; i < 100; i++ {
		at := Time(i)
		ids = append(ids, e.Schedule(at, func(*Engine) { fired[at] = true }))
	}
	for i := 0; i < 100; i += 3 {
		if !e.Cancel(ids[i]) {
			t.Fatalf("Cancel(%d) failed", i)
		}
	}
	e.Run()
	for i := 0; i < 100; i++ {
		want := i%3 != 0
		if fired[Time(i)] != want {
			t.Fatalf("event %d fired=%v, want %v", i, fired[Time(i)], want)
		}
	}
}

// Property: for any random schedule, events fire in non-decreasing time
// order and every non-cancelled event fires exactly once.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		total := int(n%64) + 1
		fired := 0
		last := Time(-1)
		ok := true
		for i := 0; i < total; i++ {
			at := Time(r.Intn(1000))
			e.Schedule(at, func(*Engine) {
				fired++
				if at < last {
					ok = false
				}
				last = at
			})
		}
		e.Run()
		return ok && fired == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving Step and Schedule preserves causality (the clock
// never runs backwards).
func TestEngineClockMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var step Handler
		remaining := 100
		step = func(eng *Engine) {
			if remaining == 0 {
				return
			}
			remaining--
			eng.ScheduleAfter(Time(r.Intn(10)), step)
		}
		e.Schedule(0, step)
		prev := Time(0)
		for e.Step() {
			if e.Now() < prev {
				return false
			}
			prev = e.Now()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
