package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// The batch-dispatch equivalence suite: Run (StepBatch + the solo fast
// lane) must execute the exact event sequence the reference
// one-event-at-a-time Step loop executes, for any schedule — including
// handlers that schedule and cancel co-timestamped events mid-batch and
// recurring events that collapse into the solo lane.

// batchChild is a one-shot event a firing handler schedules, delta ticks
// after the firing instant (delta 0 lands it in the current cohort's
// timestamp, after the cohort — it carries a later seq).
type batchChild struct {
	label int
	delta Time
}

// batchEv scripts one root event. One-shot events may cancel other
// events by label and schedule children when they fire; recurring events
// re-fire once per scripted delay and then stop.
type batchEv struct {
	label    int
	at       Time
	delays   []Time // non-nil => recurring
	children []batchChild
	cancels  []int
}

// runBatchScript replays the script on a fresh engine. With reference
// true the engine is drained with the one-event-at-a-time Step loop;
// otherwise with Run (batch + solo lane). Returns the execution trace.
func runBatchScript(script []batchEv, reference bool) []int {
	e := NewEngine()
	trace := []int{}
	ids := map[int]EventID{}
	for _, ev := range script {
		ev := ev
		if ev.delays != nil {
			k := 0
			ids[ev.label] = e.ScheduleEvery(ev.at, func(eng *Engine) Time {
				trace = append(trace, ev.label)
				if k < len(ev.delays) {
					d := ev.delays[k]
					k++
					return d
				}
				return -1
			})
			continue
		}
		ids[ev.label] = e.Schedule(ev.at, func(eng *Engine) {
			trace = append(trace, ev.label)
			for _, c := range ev.cancels {
				if id, ok := ids[c]; ok {
					eng.Cancel(id)
				}
			}
			for _, ch := range ev.children {
				ch := ch
				ids[ch.label] = eng.Schedule(eng.Now()+ch.delta, func(*Engine) {
					trace = append(trace, ch.label)
				})
			}
		})
	}
	if reference {
		for e.Step() {
		}
	} else {
		e.Run()
	}
	return trace
}

// genBatchScript builds a random script with heavy timestamp collisions:
// many events share each instant, handlers cancel co-timestamped peers
// and schedule same-instant children, and a few recurring events (some
// with zero delays, re-firing within the same timestamp) ride along.
func genBatchScript(r *rand.Rand) []batchEv {
	n := 10 + r.Intn(60)
	script := make([]batchEv, 0, n)
	next := n // child labels start after root labels
	for i := 0; i < n; i++ {
		ev := batchEv{label: i, at: Time(r.Intn(12))}
		if r.Intn(5) == 0 {
			reps := 1 + r.Intn(4)
			for j := 0; j < reps; j++ {
				// Zero delays re-fire within the same timestamp (a later
				// cohort pass at the same t).
				ev.delays = append(ev.delays, Time(r.Intn(4)))
			}
			script = append(script, ev)
			continue
		}
		for r.Intn(3) == 0 {
			deltas := []Time{0, 0, 1, 3}
			ev.children = append(ev.children, batchChild{label: next, delta: deltas[r.Intn(len(deltas))]})
			next++
		}
		for r.Intn(4) == 0 {
			// Prefer cancelling a peer at the same timestamp so the
			// mid-batch cancellation path is exercised.
			target := r.Intn(n)
			for t := 0; t < i; t++ {
				if script[t].at == ev.at && r.Intn(2) == 0 {
					target = script[t].label
					break
				}
			}
			ev.cancels = append(ev.cancels, target)
		}
		script = append(script, ev)
	}
	return script
}

// Property: the batch path's execution order is identical to the
// reference Step loop for any randomized schedule.
func TestStepBatchMatchesStepLoopProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		script := genBatchScript(r)
		ref := runBatchScript(script, true)
		got := runBatchScript(script, false)
		if !reflect.DeepEqual(ref, got) {
			t.Logf("seed %d: reference %v != batch %v", seed, ref, got)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Explicit StepBatch contract: one call fires the whole co-timestamped
// cohort (including same-t events scheduled mid-batch) and nothing else.
func TestStepBatchFiresExactlyOneCohort(t *testing.T) {
	e := NewEngine()
	var trace []int
	for i := 0; i < 8; i++ {
		i := i
		e.Schedule(10, func(eng *Engine) {
			trace = append(trace, i)
			if i == 3 {
				eng.Schedule(10, func(*Engine) { trace = append(trace, 100) })
			}
		})
	}
	e.Schedule(20, func(*Engine) { trace = append(trace, 200) })
	if n := e.StepBatch(); n != 9 {
		t.Fatalf("StepBatch fired %d events, want 9 (8 + 1 mid-batch)", n)
	}
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 100}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (the t=20 event)", e.Pending())
	}
}

// Mid-batch cancellation: an already-detached cohort member cancelled by
// an earlier member must not fire, and Cancel must report it was pending.
func TestStepBatchMidBatchCancel(t *testing.T) {
	e := NewEngine()
	var trace []int
	var victim EventID
	e.Schedule(5, func(eng *Engine) {
		trace = append(trace, 0)
		if !eng.Cancel(victim) {
			t.Error("Cancel of detached co-timestamped event returned false")
		}
	})
	victim = e.Schedule(5, func(*Engine) { trace = append(trace, 1) })
	e.Schedule(5, func(*Engine) { trace = append(trace, 2) })
	if n := e.StepBatch(); n != 2 {
		t.Fatalf("StepBatch fired %d events, want 2", n)
	}
	if want := []int{0, 2}; !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

// The solo fast lane: a single recurring driver that periodically spawns
// co-timestamped one-shots (leaving and re-entering the lane) must trace
// identically under Run and the Step loop.
func TestRunSoloLaneMatchesStepLoop(t *testing.T) {
	build := func() (*Engine, *[]int) {
		e := NewEngine()
		trace := &[]int{}
		tick := 0
		e.ScheduleEvery(0, func(eng *Engine) Time {
			tick++
			*trace = append(*trace, tick)
			if tick%7 == 0 {
				// Same-instant one-shot: fires after this driver tick.
				eng.Schedule(eng.Now(), func(*Engine) { *trace = append(*trace, -tick) })
			}
			if tick >= 100 {
				return -1
			}
			return 800
		})
		return e, trace
	}
	eRef, ref := build()
	for eRef.Step() {
	}
	eRun, got := build()
	eRun.Run()
	if !reflect.DeepEqual(*ref, *got) {
		t.Fatalf("solo-lane trace diverged:\nref %v\ngot %v", *ref, *got)
	}
	if eRef.Now() != eRun.Now() || eRef.Executed() != eRun.Executed() {
		t.Fatalf("clock/executed diverged: ref (%v, %d) vs run (%v, %d)",
			eRef.Now(), eRef.Executed(), eRun.Now(), eRun.Executed())
	}
}

// RunUntil through the batch path: events exactly at the limit fire,
// later cohorts stay queued, and the clock parks on the limit.
func TestRunUntilBatchBoundary(t *testing.T) {
	e := NewEngine()
	fired := map[Time]int{}
	for _, at := range []Time{5, 5, 5, 10, 10, 15, 15} {
		at := at
		e.Schedule(at, func(*Engine) { fired[at]++ })
	}
	e.RunUntil(10)
	if fired[5] != 3 || fired[10] != 2 || fired[15] != 0 {
		t.Fatalf("fired = %v, want 3 at t=5, 2 at t=10, 0 at t=15", fired)
	}
	if e.Now() != 10 || e.Pending() != 2 {
		t.Fatalf("Now=%v Pending=%d, want 10 and 2", e.Now(), e.Pending())
	}
	// A solo recurring driver must also respect the limit.
	e2 := NewEngine()
	n := 0
	e2.ScheduleEvery(0, func(*Engine) Time { n++; return 100 })
	e2.RunUntil(250)
	if n != 3 { // fires at 0, 100, 200; 300 exceeds the limit
		t.Fatalf("driver fired %d times, want 3", n)
	}
	if e2.Now() != 250 || e2.Pending() != 1 {
		t.Fatalf("Now=%v Pending=%d, want 250 and 1", e2.Now(), e2.Pending())
	}
}

// Reset must leave the engine byte-for-byte equivalent to a fresh one in
// behaviour (same firing order, same clock) while reusing its arena, and
// must invalidate pre-reset EventIDs.
func TestEngineResetBehavesLikeFresh(t *testing.T) {
	script := func(e *Engine, trace *[]Time) {
		for _, at := range []Time{7, 3, 3, 9, 7} {
			at := at
			e.Schedule(at, func(*Engine) { *trace = append(*trace, at) })
		}
		e.Run()
	}
	var fresh, reused []Time
	ef := NewEngine()
	script(ef, &fresh)

	er := NewEngine()
	var scratch []Time
	script(er, &scratch)
	// Left pending across the Reset: the ID must be dead afterwards.
	id := er.Schedule(er.Now()+50, func(*Engine) { scratch = append(scratch, 50) })
	er.Reset()
	if er.Now() != 0 || er.Pending() != 0 || er.Executed() != 0 {
		t.Fatalf("post-Reset state: now=%v pending=%d executed=%d", er.Now(), er.Pending(), er.Executed())
	}
	if er.Cancel(id) {
		t.Fatal("pre-Reset EventID still cancels after Reset")
	}
	script(er, &reused)
	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("reset engine trace %v != fresh trace %v", reused, fresh)
	}
}

// The batch dispatch path must stay allocation-free in steady state
// (after the one-time comparator and scratch warm-up).
func TestStepBatchSteadyStateAllocationFree(t *testing.T) {
	e := NewEngine()
	h := func(*Engine) {}
	burst := func() {
		for j := 0; j < 256; j++ {
			e.Schedule(e.Now()+Time(j%13), h)
		}
		e.Run()
	}
	burst() // warm the arena, heap, batch scratch, and comparator
	if allocs := testing.AllocsPerRun(100, burst); allocs > 0 {
		t.Fatalf("batched dispatch allocates %v allocs/op in steady state", allocs)
	}
}
