package sim

import (
	"container/heap"
	"fmt"
)

// Handler is a callback executed when an event fires. It receives the
// engine so it can schedule follow-up events.
type Handler func(e *Engine)

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier at the same timestamp run first (stable FIFO order), which keeps
// simulations deterministic.
type event struct {
	at      Time
	seq     uint64
	handler Handler
	index   int // heap index, maintained by eventQueue
	dead    bool
}

// eventQueue is a binary min-heap of events ordered by (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Engine is a deterministic discrete-event simulation executive.
// The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	events uint64 // total events executed
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.events }

// Pending reports how many events are scheduled and not yet fired.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Schedule registers h to run at absolute time at. Scheduling in the past
// (before Now) is a programming error and panics: allowing it would silently
// reorder causality.
func (e *Engine) Schedule(at Time, h Handler) EventID {
	if h == nil {
		panic("sim: Schedule called with nil handler")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: Schedule at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, handler: h}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev: ev}
}

// ScheduleAfter registers h to run delay ticks from now.
func (e *Engine) ScheduleAfter(delay Time, h Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter with negative delay %d", delay))
	}
	return e.Schedule(e.now+delay, h)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// still pending.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.dead || ev.index < 0 {
		return false
	}
	ev.dead = true
	return true
}

// Step fires the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		if ev.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = ev.at
		e.events++
		ev.handler(e)
		return true
	}
	return false
}

// RunUntil fires events in order until the clock would pass limit or the
// queue drains. Events scheduled exactly at limit do fire.
func (e *Engine) RunUntil(limit Time) {
	for len(e.queue) > 0 {
		// Peek without popping so an over-the-limit event stays queued.
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > limit {
			e.now = limit
			return
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// Run drains the queue completely.
func (e *Engine) Run() {
	for e.Step() {
	}
}
