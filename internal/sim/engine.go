package sim

import (
	"fmt"
	"slices"

	"charisma/internal/obs"
)

// Handler is a callback executed when an event fires. It receives the
// engine so it can schedule follow-up events.
type Handler func(e *Engine)

// StepFunc drives a recurring event scheduled with ScheduleEvery. After
// each firing it returns the delay until the next firing; a negative
// delay stops the recurrence. Variable-length cadences (e.g. RMAV's
// variable frames) simply return a different delay each time.
type StepFunc func(e *Engine) Time

// node is one scheduled event stored by value in the engine's arena.
// seq breaks ties so that events scheduled earlier at the same timestamp
// run first (stable FIFO order), which keeps simulations deterministic.
// gen invalidates stale EventIDs when a slot is recycled via the free
// list.
type node struct {
	at      Time
	seq     uint64
	gen     uint32
	pos     int32 // position in the heap, -1 when not queued
	handler Handler
	every   StepFunc
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is invalid and never cancels anything.
type EventID struct {
	idx int32 // arena index + 1, so the zero EventID matches no node
	gen uint32
}

// Engine is a deterministic discrete-event simulation executive.
// The zero value is ready to use.
//
// Events live by value in an arena slice recycled through a free list,
// and the ready queue is a 4-ary min-heap of arena indices ordered by
// (time, seq). Scheduling therefore performs no per-event allocation in
// steady state: once the arena has grown to the high-water mark of
// simultaneously pending events, Schedule/Step cycles are allocation
// free (the 4-ary layout also halves sift depth versus a binary heap,
// which is where a discrete-event hot loop spends its time).
type Engine struct {
	now      Time
	seq      uint64
	executed uint64
	nodes    []node  // arena of event slots
	heap     []int32 // indices into nodes, min-heap on (at, seq)
	free     []int32 // recycled arena slots
	batch    []int32 // scratch: arena indices of one timestamp's cohort
	stack    []int32 // scratch: DFS stack of heap positions
	byseq    func(a, b int32) int
	ctr      obs.SimCounters
}

// maxTime is the largest representable timestamp; Run uses it as the
// "no limit" horizon for the solo fast lane.
const maxTime = Time(1<<63 - 1)

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return len(e.heap) }

// Obs returns the engine's dispatch counters. EngineEvents mirrors
// Executed and is synchronized here at read time, so the hot paths never
// maintain a duplicate count. The counters are cumulative across Reset
// (a pooled arena reports totals over every replication it hosted) and
// must only be read from the goroutine driving the engine, or after it
// has quiesced.
func (e *Engine) Obs() *obs.SimCounters {
	e.ctr.EngineEvents = e.executed
	return &e.ctr
}

func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.nodes = append(e.nodes, node{pos: -1})
	return int32(len(e.nodes) - 1)
}

// release returns a fired or cancelled slot to the free list. Bumping gen
// invalidates every EventID handed out for the slot's previous life.
func (e *Engine) release(idx int32) {
	nd := &e.nodes[idx]
	nd.handler = nil
	nd.every = nil
	nd.gen++
	nd.pos = -1
	e.free = append(e.free, idx)
}

func (e *Engine) less(a, b int32) bool {
	na, nb := &e.nodes[a], &e.nodes[b]
	if na.at != nb.at {
		return na.at < nb.at
	}
	return na.seq < nb.seq
}

func (e *Engine) push(idx int32) {
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) siftUp(i int) {
	idx := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !e.less(idx, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.nodes[e.heap[i]].pos = int32(i)
		i = p
	}
	e.heap[i] = idx
	e.nodes[idx].pos = int32(i)
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	idx := e.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.less(e.heap[best], idx) {
			break
		}
		e.heap[i] = e.heap[best]
		e.nodes[e.heap[i]].pos = int32(i)
		i = best
	}
	e.heap[i] = idx
	e.nodes[idx].pos = int32(i)
}

// removeAt detaches the heap entry at position pos and returns its arena
// index.
func (e *Engine) removeAt(pos int32) int32 {
	idx := e.heap[pos]
	e.nodes[idx].pos = -1
	last := int32(len(e.heap) - 1)
	if pos != last {
		e.heap[pos] = e.heap[last]
		e.nodes[e.heap[pos]].pos = pos
	}
	e.heap = e.heap[:last]
	if pos < last {
		e.siftDown(int(pos))
		e.siftUp(int(pos))
	}
	return idx
}

func (e *Engine) insert(at Time, h Handler, every StepFunc) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: Schedule at %v before now %v", at, e.now))
	}
	idx := e.alloc()
	nd := &e.nodes[idx]
	nd.at = at
	nd.seq = e.seq
	e.seq++
	nd.handler = h
	nd.every = every
	e.push(idx)
	return EventID{idx: idx + 1, gen: nd.gen}
}

// Schedule registers h to run at absolute time at. Scheduling in the past
// (before Now) is a programming error and panics: allowing it would silently
// reorder causality.
func (e *Engine) Schedule(at Time, h Handler) EventID {
	if h == nil {
		panic("sim: Schedule called with nil handler")
	}
	return e.insert(at, h, nil)
}

// ScheduleAfter registers h to run delay ticks from now.
func (e *Engine) ScheduleAfter(delay Time, h Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter with negative delay %d", delay))
	}
	return e.Schedule(e.now+delay, h)
}

// ScheduleEvery registers a recurring event that first fires at absolute
// time start and thereafter re-fires after whatever delay step returns,
// until step returns a negative delay. The recurrence reuses one event
// slot for its whole lifetime — a frame driver ticking millions of frames
// performs zero allocations and needs no per-frame closure re-scheduling.
// The returned EventID cancels the whole recurrence (from outside the
// step function; to stop from within, return a negative delay).
func (e *Engine) ScheduleEvery(start Time, step StepFunc) EventID {
	if step == nil {
		panic("sim: ScheduleEvery called with nil step")
	}
	return e.insert(start, nil, step)
}

// Cancel removes a scheduled event or recurrence. Cancelling an
// already-fired or already-cancelled event is a no-op. It reports whether
// the event was still pending.
func (e *Engine) Cancel(id EventID) bool {
	if id.idx <= 0 || int(id.idx) > len(e.nodes) {
		return false
	}
	idx := id.idx - 1
	nd := &e.nodes[idx]
	if nd.gen != id.gen || nd.pos == -1 {
		return false
	}
	if nd.pos == -2 {
		// Detached into the current StepBatch cohort but not yet fired:
		// still pending from the caller's point of view. Releasing bumps
		// gen, which the batch drain reads as "cancelled — skip".
		e.release(idx)
		return true
	}
	e.removeAt(nd.pos)
	e.release(idx)
	return true
}

// Step fires the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	idx := e.heap[0]
	if nd := &e.nodes[idx]; nd.every != nil {
		// Fast path: a recurring event at the root — the common case when
		// a single frame driver ticks a long run — fires in place. The
		// pop/re-push pair (two full sifts per frame) collapses to one
		// in-place key update and downward sift, which is O(1) when the
		// driver is the only due event.
		at := nd.at
		if at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = at
		e.executed++
		gen := nd.gen
		delay := nd.every(e)
		// The callback may have grown the arena; re-resolve the slot. The
		// root cannot have been displaced meanwhile: events pushed by the
		// callback are not earlier than (at, seq) of the root, and a
		// removal's sift-up stops at the heap minimum — so only the
		// recurrence cancelling itself (gen bump) invalidates the slot.
		nd = &e.nodes[idx]
		if nd.gen != gen {
			return true
		}
		if delay < 0 {
			e.removeAt(nd.pos)
			e.release(idx)
			return true
		}
		nd.at = e.now + delay
		nd.seq = e.seq
		e.seq++
		e.siftDown(int(nd.pos))
		return true
	}
	idx = e.removeAt(0)
	at := e.nodes[idx].at
	if at < e.now {
		panic("sim: event queue time went backwards")
	}
	e.now = at
	e.executed++
	h := e.nodes[idx].handler
	e.release(idx)
	h(e)
	return true
}

// collectBatch gathers into e.batch the arena indices of every pending
// event stamped exactly t. By the heap property an at==t node can only
// have at==t ancestors (t is the minimum), so a DFS from the root that
// prunes any position with a later timestamp visits the full cohort
// without scanning the rest of the heap.
func (e *Engine) collectBatch(t Time) {
	e.batch = e.batch[:0]
	e.stack = append(e.stack[:0], 0)
	for len(e.stack) > 0 {
		i := int(e.stack[len(e.stack)-1])
		e.stack = e.stack[:len(e.stack)-1]
		e.batch = append(e.batch, e.heap[i])
		first := 4*i + 1
		end := first + 4
		if end > len(e.heap) {
			end = len(e.heap)
		}
		for c := first; c < end; c++ {
			if e.nodes[e.heap[c]].at == t {
				e.stack = append(e.stack, int32(c))
			}
		}
	}
}

// detachBatch removes every collected cohort member from the heap in one
// compact-and-reheapify pass and marks it pos == -2 ("detached, firing
// soon") so Cancel can still find it. The caller only detaches when the
// cohort is a sizable fraction of the heap, where the single O(n)
// rebuild beats the k individual sifts a one-at-a-time drain would pay.
func (e *Engine) detachBatch() {
	for _, idx := range e.batch {
		e.nodes[idx].pos = -2
	}
	live := e.heap[:0]
	for _, idx := range e.heap {
		if e.nodes[idx].pos != -2 {
			e.nodes[idx].pos = int32(len(live))
			live = append(live, idx)
		}
	}
	e.heap = live
	if n := len(e.heap); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			e.siftDown(i)
		}
	}
}

// drainDetached fires every event of the already-collected cohort, in
// scheduling (seq) order, and reports how many fired. Handlers run after
// the whole cohort is detached, so one detached event cancelling another
// is honoured (the victim is skipped) and a handler scheduling a new
// event at t cannot splice into the already-collected cohort — the
// caller re-collects.
func (e *Engine) drainDetached(t Time) int {
	e.detachBatch()
	if e.byseq == nil {
		e.byseq = func(a, b int32) int {
			sa, sb := e.nodes[a].seq, e.nodes[b].seq
			switch {
			case sa < sb:
				return -1
			case sa > sb:
				return 1
			}
			return 0
		}
	}
	slices.SortFunc(e.batch, e.byseq)
	e.now = t
	e.ctr.EngineBatchDetach++
	fired := 0
	for _, idx := range e.batch {
		nd := &e.nodes[idx]
		if nd.pos != -2 {
			// Cancelled (or cancelled and the slot already reused) by an
			// earlier handler in this cohort.
			continue
		}
		e.executed++
		fired++
		if nd.every != nil {
			gen := nd.gen
			delay := nd.every(e)
			nd = &e.nodes[idx] // the callback may have grown the arena
			if nd.gen != gen {
				continue
			}
			if delay < 0 {
				e.release(idx)
				continue
			}
			nd.at = e.now + delay
			nd.seq = e.seq
			e.seq++
			nd.pos = -1
			e.push(idx)
			continue
		}
		h := nd.handler
		e.release(idx)
		h(e)
	}
	return fired
}

// StepBatch fires every event sharing the earliest pending timestamp and
// reports how many fired (0 when the queue is empty). Execution order is
// exactly Step's (time, seq) FIFO order: the cohort is drained in seq
// order, handlers that schedule new events at the same timestamp see
// them fire after the current cohort (they carry later seqs), and
// cancelling a co-timestamped event from within the batch prevents it
// from firing.
//
// The drain is tiered by cohort size, every tier order-equivalent:
// single events and small cohorts pop one at a time through Step's
// in-place paths (the same sifts a detach would pay, without any
// collect or sort on top); a cohort that outlives the probe and
// dominates the heap is detached in one compact-and-reheapify pass —
// one O(n) restructure instead of one full sift per event — and fired
// from the seq-sorted batch.
func (e *Engine) StepBatch() int {
	if len(e.heap) == 0 {
		return 0
	}
	t := e.nodes[e.heap[0]].at
	if t < e.now {
		panic("sim: event queue time went backwards")
	}
	// Probe by draining a few events through Step's in-place paths: small
	// cohorts (the scattered-timestamp regime) never pay any cohort
	// machinery at all. Only a cohort that outlives the probe is sized up
	// — once — for the detach path.
	const probe = 16
	fired := 0
	for len(e.heap) > 0 && e.nodes[e.heap[0]].at == t {
		e.Step()
		fired++
		if fired == probe {
			for len(e.heap) > 0 && e.nodes[e.heap[0]].at == t {
				e.collectBatch(t)
				if len(e.batch)*4 < len(e.heap) {
					break
				}
				fired += e.drainDetached(t)
			}
		}
	}
	if fired > 0 {
		e.ctr.EngineBatches++
	}
	return fired
}

// runSolo is the calendar-style near-horizon fast lane: while the queue
// holds exactly one recurring event — the frame-driver steady state of
// every scenario run — fire it in a tight loop with zero heap
// maintenance (a one-element heap needs no sift at all). It returns true
// when the driver's next firing would pass limit (driver stays queued),
// false when the lane ended for any other reason: the driver stopped, or
// a callback scheduled additional events.
func (e *Engine) runSolo(limit Time) bool {
	e.ctr.EngineSoloLane++
	idx := e.heap[0]
	nd := &e.nodes[idx]
	for {
		at := nd.at
		if at > limit {
			return true
		}
		if at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = at
		e.executed++
		gen := nd.gen
		delay := nd.every(e)
		nd = &e.nodes[idx] // the callback may have grown the arena
		if nd.gen != gen {
			return false
		}
		if delay < 0 {
			e.removeAt(nd.pos)
			e.release(idx)
			return false
		}
		nd.at = e.now + delay
		nd.seq = e.seq
		e.seq++
		if len(e.heap) != 1 {
			e.siftDown(int(nd.pos))
			return false
		}
	}
}

// RunUntil fires events in order until the clock would pass limit or the
// queue drains. Events scheduled exactly at limit do fire.
func (e *Engine) RunUntil(limit Time) {
	for len(e.heap) > 0 {
		// Peek without popping so an over-the-limit event stays queued.
		if e.nodes[e.heap[0]].at > limit {
			e.now = limit
			return
		}
		if len(e.heap) == 1 && e.nodes[e.heap[0]].every != nil {
			if e.runSolo(limit) {
				e.now = limit
				return
			}
			continue
		}
		e.StepBatch()
	}
	if e.now < limit {
		e.now = limit
	}
}

// Run drains the queue completely.
func (e *Engine) Run() {
	for len(e.heap) > 0 {
		if len(e.heap) == 1 && e.nodes[e.heap[0]].every != nil {
			e.runSolo(maxTime)
			continue
		}
		e.StepBatch()
	}
}

// Reset rewinds the engine to its zero state while keeping the arena,
// heap, and scratch capacity — the replication-arena path rebuilds a
// scenario's event population with zero engine allocations. Every slot's
// generation is bumped, so EventIDs issued before the reset no longer
// cancel anything.
func (e *Engine) Reset() {
	e.now, e.seq, e.executed = 0, 0, 0
	for i := range e.nodes {
		nd := &e.nodes[i]
		nd.handler = nil
		nd.every = nil
		nd.gen++
		nd.pos = -1
	}
	e.heap = e.heap[:0]
	// Refill the free list highest-index first so a reset engine hands out
	// slots in the same 0,1,2,… order as a fresh one.
	e.free = e.free[:0]
	for i := len(e.nodes) - 1; i >= 0; i-- {
		e.free = append(e.free, int32(i))
	}
	e.batch, e.stack = e.batch[:0], e.stack[:0]
}
