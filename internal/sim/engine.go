package sim

import "fmt"

// Handler is a callback executed when an event fires. It receives the
// engine so it can schedule follow-up events.
type Handler func(e *Engine)

// StepFunc drives a recurring event scheduled with ScheduleEvery. After
// each firing it returns the delay until the next firing; a negative
// delay stops the recurrence. Variable-length cadences (e.g. RMAV's
// variable frames) simply return a different delay each time.
type StepFunc func(e *Engine) Time

// node is one scheduled event stored by value in the engine's arena.
// seq breaks ties so that events scheduled earlier at the same timestamp
// run first (stable FIFO order), which keeps simulations deterministic.
// gen invalidates stale EventIDs when a slot is recycled via the free
// list.
type node struct {
	at      Time
	seq     uint64
	gen     uint32
	pos     int32 // position in the heap, -1 when not queued
	handler Handler
	every   StepFunc
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is invalid and never cancels anything.
type EventID struct {
	idx int32 // arena index + 1, so the zero EventID matches no node
	gen uint32
}

// Engine is a deterministic discrete-event simulation executive.
// The zero value is ready to use.
//
// Events live by value in an arena slice recycled through a free list,
// and the ready queue is a 4-ary min-heap of arena indices ordered by
// (time, seq). Scheduling therefore performs no per-event allocation in
// steady state: once the arena has grown to the high-water mark of
// simultaneously pending events, Schedule/Step cycles are allocation
// free (the 4-ary layout also halves sift depth versus a binary heap,
// which is where a discrete-event hot loop spends its time).
type Engine struct {
	now      Time
	seq      uint64
	executed uint64
	nodes    []node  // arena of event slots
	heap     []int32 // indices into nodes, min-heap on (at, seq)
	free     []int32 // recycled arena slots
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return len(e.heap) }

func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.nodes = append(e.nodes, node{pos: -1})
	return int32(len(e.nodes) - 1)
}

// release returns a fired or cancelled slot to the free list. Bumping gen
// invalidates every EventID handed out for the slot's previous life.
func (e *Engine) release(idx int32) {
	nd := &e.nodes[idx]
	nd.handler = nil
	nd.every = nil
	nd.gen++
	nd.pos = -1
	e.free = append(e.free, idx)
}

func (e *Engine) less(a, b int32) bool {
	na, nb := &e.nodes[a], &e.nodes[b]
	if na.at != nb.at {
		return na.at < nb.at
	}
	return na.seq < nb.seq
}

func (e *Engine) push(idx int32) {
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) siftUp(i int) {
	idx := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !e.less(idx, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.nodes[e.heap[i]].pos = int32(i)
		i = p
	}
	e.heap[i] = idx
	e.nodes[idx].pos = int32(i)
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	idx := e.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.less(e.heap[best], idx) {
			break
		}
		e.heap[i] = e.heap[best]
		e.nodes[e.heap[i]].pos = int32(i)
		i = best
	}
	e.heap[i] = idx
	e.nodes[idx].pos = int32(i)
}

// removeAt detaches the heap entry at position pos and returns its arena
// index.
func (e *Engine) removeAt(pos int32) int32 {
	idx := e.heap[pos]
	e.nodes[idx].pos = -1
	last := int32(len(e.heap) - 1)
	if pos != last {
		e.heap[pos] = e.heap[last]
		e.nodes[e.heap[pos]].pos = pos
	}
	e.heap = e.heap[:last]
	if pos < last {
		e.siftDown(int(pos))
		e.siftUp(int(pos))
	}
	return idx
}

func (e *Engine) insert(at Time, h Handler, every StepFunc) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: Schedule at %v before now %v", at, e.now))
	}
	idx := e.alloc()
	nd := &e.nodes[idx]
	nd.at = at
	nd.seq = e.seq
	e.seq++
	nd.handler = h
	nd.every = every
	e.push(idx)
	return EventID{idx: idx + 1, gen: nd.gen}
}

// Schedule registers h to run at absolute time at. Scheduling in the past
// (before Now) is a programming error and panics: allowing it would silently
// reorder causality.
func (e *Engine) Schedule(at Time, h Handler) EventID {
	if h == nil {
		panic("sim: Schedule called with nil handler")
	}
	return e.insert(at, h, nil)
}

// ScheduleAfter registers h to run delay ticks from now.
func (e *Engine) ScheduleAfter(delay Time, h Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter with negative delay %d", delay))
	}
	return e.Schedule(e.now+delay, h)
}

// ScheduleEvery registers a recurring event that first fires at absolute
// time start and thereafter re-fires after whatever delay step returns,
// until step returns a negative delay. The recurrence reuses one event
// slot for its whole lifetime — a frame driver ticking millions of frames
// performs zero allocations and needs no per-frame closure re-scheduling.
// The returned EventID cancels the whole recurrence (from outside the
// step function; to stop from within, return a negative delay).
func (e *Engine) ScheduleEvery(start Time, step StepFunc) EventID {
	if step == nil {
		panic("sim: ScheduleEvery called with nil step")
	}
	return e.insert(start, nil, step)
}

// Cancel removes a scheduled event or recurrence. Cancelling an
// already-fired or already-cancelled event is a no-op. It reports whether
// the event was still pending.
func (e *Engine) Cancel(id EventID) bool {
	if id.idx <= 0 || int(id.idx) > len(e.nodes) {
		return false
	}
	idx := id.idx - 1
	nd := &e.nodes[idx]
	if nd.gen != id.gen || nd.pos < 0 {
		return false
	}
	e.removeAt(nd.pos)
	e.release(idx)
	return true
}

// Step fires the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	idx := e.heap[0]
	if nd := &e.nodes[idx]; nd.every != nil {
		// Fast path: a recurring event at the root — the common case when
		// a single frame driver ticks a long run — fires in place. The
		// pop/re-push pair (two full sifts per frame) collapses to one
		// in-place key update and downward sift, which is O(1) when the
		// driver is the only due event.
		at := nd.at
		if at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = at
		e.executed++
		gen := nd.gen
		delay := nd.every(e)
		// The callback may have grown the arena; re-resolve the slot. The
		// root cannot have been displaced meanwhile: events pushed by the
		// callback are not earlier than (at, seq) of the root, and a
		// removal's sift-up stops at the heap minimum — so only the
		// recurrence cancelling itself (gen bump) invalidates the slot.
		nd = &e.nodes[idx]
		if nd.gen != gen {
			return true
		}
		if delay < 0 {
			e.removeAt(nd.pos)
			e.release(idx)
			return true
		}
		nd.at = e.now + delay
		nd.seq = e.seq
		e.seq++
		e.siftDown(int(nd.pos))
		return true
	}
	idx = e.removeAt(0)
	at := e.nodes[idx].at
	if at < e.now {
		panic("sim: event queue time went backwards")
	}
	e.now = at
	e.executed++
	h := e.nodes[idx].handler
	e.release(idx)
	h(e)
	return true
}

// RunUntil fires events in order until the clock would pass limit or the
// queue drains. Events scheduled exactly at limit do fire.
func (e *Engine) RunUntil(limit Time) {
	for len(e.heap) > 0 {
		// Peek without popping so an over-the-limit event stays queued.
		if e.nodes[e.heap[0]].at > limit {
			e.now = limit
			return
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// Run drains the queue completely.
func (e *Engine) Run() {
	for e.Step() {
	}
}
