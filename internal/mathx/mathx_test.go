package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBConversionsRoundTrip(t *testing.T) {
	prop := func(raw float64) bool {
		db := math.Mod(math.Abs(raw), 60) - 30 // [-30, 30) dB
		lin := DBToLinear(db)
		return math.Abs(LinearToDB(lin)-db) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDBAnchors(t *testing.T) {
	cases := []struct{ db, lin float64 }{
		{0, 1}, {10, 10}, {20, 100}, {-10, 0.1}, {3, 1.9952623},
	}
	for _, c := range cases {
		if got := DBToLinear(c.db); math.Abs(got-c.lin) > 1e-6 {
			t.Errorf("DBToLinear(%v) = %v, want %v", c.db, got, c.lin)
		}
	}
}

func TestAmpDBConversions(t *testing.T) {
	// 20 dB amplitude = 10x amplitude.
	if got := AmpDBToLinear(20); math.Abs(got-10) > 1e-9 {
		t.Fatalf("AmpDBToLinear(20) = %v, want 10", got)
	}
	if got := AmpLinearToDB(10); math.Abs(got-20) > 1e-9 {
		t.Fatalf("AmpLinearToDB(10) = %v, want 20", got)
	}
	if !math.IsInf(AmpLinearToDB(0), -1) {
		t.Fatal("AmpLinearToDB(0) should be -Inf")
	}
	if !math.IsInf(LinearToDB(-1), -1) {
		t.Fatal("LinearToDB(-1) should be -Inf")
	}
}

func TestQFunction(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.158655},
		{2, 0.022750},
		{3, 0.001350},
		{-1, 0.841345},
	}
	for _, c := range cases {
		if got := Q(c.x); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("Q(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestQMonotoneDecreasing(t *testing.T) {
	prev := 1.0
	for x := -5.0; x <= 5; x += 0.25 {
		q := Q(x)
		if q > prev {
			t.Fatalf("Q not monotone at %v", x)
		}
		prev = q
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaved")
	}
}

func TestJakesCorrelationAnchors(t *testing.T) {
	// J0(0) = 1.
	if got := JakesCorrelation(100, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("rho(0) = %v", got)
	}
	// First zero of J0 is at 2.405: tau = 2.405/(2*pi*fd).
	tau := 2.404826 / (2 * math.Pi * 100)
	if got := JakesCorrelation(100, tau); math.Abs(got) > 1e-4 {
		t.Fatalf("rho at first zero = %v, want ~0", got)
	}
}

func TestExpCorrelation(t *testing.T) {
	if got := ExpCorrelation(0.01, 0); got != 1 {
		t.Fatalf("rho(0) = %v, want 1", got)
	}
	if got := ExpCorrelation(0.01, 0.01); math.Abs(got-1/math.E) > 1e-12 {
		t.Fatalf("rho(Tc) = %v, want 1/e", got)
	}
	if got := ExpCorrelation(0, 1); got != 0 {
		t.Fatalf("rho with zero coherence = %v, want 0", got)
	}
	// Monotone decreasing in lag.
	prev := 1.0
	for tau := 0.0; tau < 0.1; tau += 0.001 {
		r := ExpCorrelation(0.01, tau)
		if r > prev {
			t.Fatal("ExpCorrelation not monotone")
		}
		prev = r
	}
}

func TestLerp(t *testing.T) {
	if Lerp(0, 10, 0.5) != 5 || Lerp(2, 4, 0) != 2 || Lerp(2, 4, 1) != 4 {
		t.Fatal("Lerp misbehaved")
	}
}
