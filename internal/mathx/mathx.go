// Package mathx supplies the small numeric substrate shared by the channel
// and PHY models: dB conversions, the Gaussian Q-function, safe clamping,
// and the Jakes autocorrelation helper used to map Doppler spread to an
// AR(1) fading-process coefficient.
package mathx

import "math"

// DBToLinear converts a power ratio in decibels to linear scale.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to decibels. Non-positive input
// maps to -Inf, matching the mathematical limit.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// AmpDBToLinear converts an amplitude (voltage) ratio in dB to linear scale
// using the 20·log10 convention the paper applies to the local mean
// (c_dB = 20·log c).
func AmpDBToLinear(db float64) float64 { return math.Pow(10, db/20) }

// AmpLinearToDB converts a linear amplitude ratio to dB (20·log10).
func AmpLinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(lin)
}

// Q is the Gaussian tail function Q(x) = P(N(0,1) > x).
func Q(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// JakesCorrelation returns the theoretical autocorrelation of Clarke/Jakes
// Rayleigh fading at lag tau seconds for Doppler spread fd Hz:
// rho = J0(2*pi*fd*tau). It can be negative at large lags.
func JakesCorrelation(fdHz, tauSec float64) float64 {
	return math.J0(2 * math.Pi * fdHz * tauSec)
}

// ExpCorrelation is the exponential-decay autocorrelation model
// rho = exp(-tau/Tc) the paper's MAC analysis effectively assumes (CSI
// "approximately constant" over a couple of frames, coherence time
// Tc ~ 1/fd). It is always in (0, 1] for tau >= 0.
func ExpCorrelation(coherenceSec, tauSec float64) float64 {
	if coherenceSec <= 0 {
		return 0
	}
	return math.Exp(-tauSec / coherenceSec)
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
