// Package run is the replication-aware parallel execution layer between
// the scenario layer (core) and every consumer of results (the public
// facade, the experiment sweeps, the cmd entry points).
//
// The paper's evaluation rests on replicated stochastic simulations with
// common random numbers: each scenario must be run N independent times
// under seeds derived from one base seed, and the reported uncertainty
// must come from across-replication dispersion, not from within-run
// sample counts. This package owns that methodology end to end:
//
//   - A Plan expands scenarios into (scenario, replication) tasks, with
//     per-replication seeds derived via rng.SeedFor(seed, "rep", i).
//     Replication 0 keeps the base seed, so a 1-replication plan is
//     byte-identical to Scenario.Run and adding replications only ever
//     extends a sweep.
//   - A Runner executes the flat task list on a bounded worker pool with
//     context cancellation. Every task writes into a fixed slot and the
//     per-job fold visits replications in index order, so the numbers are
//     byte-identical for any worker count — parallelism is purely a
//     throughput knob.
//   - Per-job results aggregate through mac.AggregateReplications into
//     pooled counters plus across-replication Student-t CI95 half-widths.
//
// Common random numbers survive replication: traffic and channel streams
// derive from the scenario seed only, so replication i of every protocol
// still observes identical sample paths.
//
// # Byte-identity contract
//
// RepSeed(base, i) is the single source of replication seeds for the
// whole system: the in-process Runner, the grid's JobSpec.RunRep, and the
// content-addressed cache key RepKey all derive from it. Any executor
// given (job, rep) therefore runs the identical simulation, which is what
// lets the distributed grid re-queue crashed tasks, dedupe in-flight
// work, and replay sweeps from cache without ever changing a result byte.
package run
