package run

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/rng"
)

// Job is one simulation together with its replication count: either a
// single-cell core scenario or, via Custom, any other seeded simulation
// (multicell deployments plug in this way).
type Job struct {
	Scenario core.Scenario
	// Custom, when non-nil, runs instead of Scenario. It receives the
	// replication's derived seed (RepSeed(CustomSeed, i)), so non-scenario
	// simulations replicate under exactly the same seed discipline as
	// scenarios and can share a plan with them.
	Custom func(seed int64) (mac.Result, error)
	// CustomSeed is the base seed Custom replications derive from.
	CustomSeed int64
	// Replications is the number of independent runs pooled into this
	// job's result; values below 1 are treated as 1.
	Replications int
}

func (j Job) reps() int {
	if j.Replications < 1 {
		return 1
	}
	return j.Replications
}

// Plan is a flat batch of jobs executed as one concurrent unit. Sweeps
// build a single plan covering every (protocol, load, replication) cell
// so the worker pool stays saturated across the whole sweep instead of
// draining between points.
type Plan struct {
	Jobs []Job
}

// NewPlan wraps scenarios into a plan with a uniform replication count.
func NewPlan(scs []core.Scenario, replications int) Plan {
	jobs := make([]Job, len(scs))
	for i, sc := range scs {
		jobs[i] = Job{Scenario: sc, Replications: replications}
	}
	return Plan{Jobs: jobs}
}

// Tasks returns the total number of simulation runs the plan expands to.
func (p Plan) Tasks() int {
	n := 0
	for _, j := range p.Jobs {
		n += j.reps()
	}
	return n
}

// RepSeed derives the seed of replication i from a job's base seed.
// Replication 0 keeps the base seed — a single-replication run is exactly
// the legacy Scenario.Run — and each further replication draws an
// independent substream. The derivation depends only on (base, i), never
// on the protocol, preserving the common-random-numbers pairing across
// protocols within every replication.
func RepSeed(base int64, i int) int64 {
	if i == 0 {
		return base
	}
	return rng.SeedForIndexed(base, "rep", i)
}

// Runner executes plans on a bounded worker pool.
type Runner struct {
	// Workers bounds concurrency; values below 1 mean GOMAXPROCS.
	Workers int
}

// errNotRun marks tasks the worker pool never reached (cancellation).
var errNotRun = errors.New("run: task not executed")

// Run executes every replication of every job concurrently and returns
// one aggregated mac.Result per job, in job order. All jobs run even when
// some fail; the returned error joins every per-task failure (and the
// context's error, if it was cancelled). Results are returned even then:
// each job aggregates its successful replications, so a single failed
// replication costs one sample, not the whole sweep. A job with no
// successful replication reports a zero Result.
func (r Runner) Run(ctx context.Context, p Plan) ([]mac.Result, error) {
	type task struct{ job, rep int }
	tasks := make([]task, 0, p.Tasks())
	for j, job := range p.Jobs {
		for i := 0; i < job.reps(); i++ {
			tasks = append(tasks, task{job: j, rep: i})
		}
	}

	// taskErrs distinguishes, per task, success (nil) from failure and
	// from never-ran, so the per-job fold can skip exactly the replications
	// that produced no result. Writes happen before Map's pool drains and
	// reads after it returns, so no further synchronization is needed.
	taskErrs := make([]error, len(tasks))
	for k := range taskErrs {
		taskErrs[k] = errNotRun
	}
	flat, err := Map(ctx, r.Workers, len(tasks), func(k int) (res mac.Result, err error) {
		defer func() { taskErrs[k] = err }()
		t := tasks[k]
		if j := p.Jobs[t.job]; j.Custom != nil {
			res, err := j.Custom(RepSeed(j.CustomSeed, t.rep))
			if err != nil {
				return mac.Result{}, fmt.Errorf("run: job %d (custom) rep %d: %w", t.job, t.rep, err)
			}
			return res, nil
		}
		sc := p.Jobs[t.job].Scenario
		sc.Seed = RepSeed(sc.Seed, t.rep)
		res, err = sc.Run()
		if err != nil {
			return mac.Result{}, fmt.Errorf("run: job %d (%s) rep %d: %w", t.job, sc.Protocol, t.rep, err)
		}
		return res, nil
	})

	out := make([]mac.Result, len(p.Jobs))
	k := 0
	for j, job := range p.Jobs {
		n := job.reps()
		if err == nil {
			out[j] = mac.AggregateReplications(flat[k : k+n])
		} else {
			good := make([]mac.Result, 0, n)
			for i := 0; i < n; i++ {
				if taskErrs[k+i] == nil {
					good = append(good, flat[k+i])
				}
			}
			out[j] = mac.AggregateReplications(good)
		}
		k += n
	}
	return out, err
}

// Scenarios executes each scenario once (no replication) on the default
// worker count — the drop-in concurrent batch primitive.
func Scenarios(ctx context.Context, scs []core.Scenario) ([]mac.Result, error) {
	return Runner{}.Run(ctx, NewPlan(scs, 1))
}

// Replicated executes each scenario with the given replication count on
// the default worker count.
func Replicated(ctx context.Context, scs []core.Scenario, replications int) ([]mac.Result, error) {
	return Runner{}.Run(ctx, NewPlan(scs, replications))
}

// Map runs fn(0..n-1) on a bounded worker pool and returns the results in
// index order. Tasks are independent: a failure does not stop the others,
// and the returned error joins every failure via errors.Join. Context
// cancellation stops workers from picking up new tasks; the context error
// is joined into the result. Worker count never affects the output values
// — each index writes its own slot.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n+1)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	errs[n] = ctx.Err()
	if err := errors.Join(errs...); err != nil {
		return out, err
	}
	return out, nil
}
