package run

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"charisma/internal/core"
	"charisma/internal/mac"
)

func shortScenario(proto string, nv, nd int) core.Scenario {
	sc := core.DefaultScenario(proto)
	sc.NumVoice = nv
	sc.NumData = nd
	sc.WarmupSec = 0.5
	sc.DurationSec = 2
	return sc
}

func TestRepSeed(t *testing.T) {
	if RepSeed(42, 0) != 42 {
		t.Fatal("replication 0 must keep the base seed")
	}
	seen := map[int64]bool{42: true}
	for i := 1; i < 16; i++ {
		s := RepSeed(42, i)
		if seen[s] {
			t.Fatalf("replication %d collides with an earlier seed", i)
		}
		seen[s] = true
		if s != RepSeed(42, i) {
			t.Fatalf("replication %d seed not deterministic", i)
		}
	}
	if RepSeed(42, 1) == RepSeed(43, 1) {
		t.Fatal("different base seeds derived the same replication seed")
	}
}

func TestPlanTasks(t *testing.T) {
	p := NewPlan([]core.Scenario{shortScenario(core.ProtoCharisma, 5, 0), shortScenario(core.ProtoRAMA, 5, 0)}, 4)
	if got := p.Tasks(); got != 8 {
		t.Fatalf("Tasks = %d, want 8", got)
	}
	// Replication counts below 1 normalize to 1.
	p.Jobs[0].Replications = 0
	if got := p.Tasks(); got != 5 {
		t.Fatalf("Tasks = %d, want 5", got)
	}
}

// A 1-replication plan must be byte-identical to the legacy Scenario.Run.
func TestSingleReplicationMatchesScenarioRun(t *testing.T) {
	sc := shortScenario(core.ProtoDRMA, 8, 2)
	single, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Scenarios(context.Background(), []core.Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0] != single {
		t.Fatal("runner single-rep result differs from Scenario.Run")
	}
}

// Same seed + same plan must produce byte-identical results for worker
// counts 1, 4 and GOMAXPROCS: parallelism is a throughput knob only.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	plan := NewPlan([]core.Scenario{
		shortScenario(core.ProtoCharisma, 10, 2),
		shortScenario(core.ProtoRAMA, 10, 2),
		shortScenario(core.ProtoDTDMAFR, 10, 2),
	}, 4)
	var baseline []mac.Result
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		rs, err := Runner{Workers: workers}.Run(context.Background(), plan)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = rs
			continue
		}
		for i := range rs {
			if rs[i] != baseline[i] {
				t.Fatalf("workers=%d job %d differs from workers=1", workers, i)
			}
		}
	}
}

func TestRunPreservesJobOrder(t *testing.T) {
	plan := NewPlan([]core.Scenario{
		shortScenario(core.ProtoCharisma, 5, 0),
		shortScenario(core.ProtoRAMA, 5, 0),
		shortScenario(core.ProtoDRMA, 5, 0),
	}, 2)
	rs, err := Runner{}.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"charisma", "rama", "drma"}
	for i, r := range rs {
		if r.Protocol != want[i] {
			t.Fatalf("result %d = %s, want %s", i, r.Protocol, want[i])
		}
	}
}

func TestReplicationAggregation(t *testing.T) {
	const reps = 8
	sc := shortScenario(core.ProtoCharisma, 12, 3)
	rs, err := Replicated(context.Background(), []core.Scenario{sc}, reps)
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	if r.Reps.Replications != reps {
		t.Fatalf("Replications = %d, want %d", r.Reps.Replications, reps)
	}
	single, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Replication 0 keeps the base seed, so pooled counters must cover at
	// least the single run and roughly reps times its window.
	if r.VoiceGenerated <= single.VoiceGenerated {
		t.Fatalf("pooled voice %d not above single-run %d", r.VoiceGenerated, single.VoiceGenerated)
	}
	if r.Frames < float64(reps)*single.Frames*0.99 {
		t.Fatalf("pooled frames %v, want ~%v", r.Frames, float64(reps)*single.Frames)
	}
	// Independent seeds differ, so across-rep dispersion must be real.
	if r.Reps.VoiceLossCI95 <= 0 {
		t.Fatalf("VoiceLossCI95 = %v, want > 0 across %d independent reps", r.Reps.VoiceLossCI95, reps)
	}
}

// Replication must preserve the common-random-numbers pairing: rep i of
// every protocol observes identical traffic realizations.
func TestReplicationPreservesCRN(t *testing.T) {
	plan := NewPlan([]core.Scenario{
		shortScenario(core.ProtoCharisma, 10, 3),
		shortScenario(core.ProtoDRMA, 10, 3),
	}, 3)
	rs, err := Runner{}.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].VoiceGenerated != rs[1].VoiceGenerated || rs[0].DataGenerated != rs[1].DataGenerated {
		t.Fatalf("pooled traffic differs across protocols: %d/%d vs %d/%d",
			rs[0].VoiceGenerated, rs[0].DataGenerated, rs[1].VoiceGenerated, rs[1].DataGenerated)
	}
}

func TestRunJoinsAllErrors(t *testing.T) {
	bad1 := shortScenario(core.ProtoCharisma, 5, 0)
	bad1.Protocol = "bogus-a"
	bad2 := shortScenario(core.ProtoCharisma, 5, 0)
	bad2.Protocol = "bogus-b"
	_, err := Scenarios(context.Background(), []core.Scenario{bad1, shortScenario(core.ProtoRAMA, 5, 0), bad2})
	if err == nil {
		t.Fatal("invalid scenarios not reported")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bogus-a") || !strings.Contains(msg, "bogus-b") {
		t.Fatalf("error does not join both failures: %v", msg)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Scenarios(ctx, []core.Scenario{shortScenario(core.ProtoCharisma, 5, 0)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapOrderAndErrors(t *testing.T) {
	vals, err := Map(context.Background(), 3, 10, func(i int) (int, error) {
		if i == 4 || i == 7 {
			return 0, fmt.Errorf("boom %d", i)
		}
		return i * i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom 4") || !strings.Contains(err.Error(), "boom 7") {
		t.Fatalf("joined error wrong: %v", err)
	}
	for i, v := range vals {
		if i != 4 && i != 7 && v != i*i {
			t.Fatalf("vals[%d] = %d, want %d", i, v, i*i)
		}
	}
	if _, err := Map(context.Background(), 0, 0, func(int) (int, error) { return 0, nil }); err != nil {
		t.Fatalf("empty map errored: %v", err)
	}
}

// TestRunPartialResultsOnFailure: a failed replication costs one sample,
// not the sweep — the runner returns per-job aggregates over the
// successful replications alongside the joined error.
func TestRunPartialResultsOnFailure(t *testing.T) {
	fail := errors.New("rep exploded")
	plan := Plan{Jobs: []Job{
		{Scenario: shortScenario(core.ProtoCharisma, 5, 0), Replications: 2},
		{
			// Replication 1 of this custom job fails; replication 0 succeeds.
			Custom: func(seed int64) (mac.Result, error) {
				if seed != RepSeed(9, 0) {
					return mac.Result{}, fail
				}
				return mac.Result{Protocol: "custom", Frames: 10, DataDelivered: 5}, nil
			},
			CustomSeed:   9,
			Replications: 2,
		},
	}}
	rs, err := Runner{}.Run(context.Background(), plan)
	if err == nil || !strings.Contains(err.Error(), "rep exploded") {
		t.Fatalf("error %v does not surface the failure", err)
	}
	if len(rs) != 2 {
		t.Fatalf("partial results missing: %v", rs)
	}
	if rs[0].Frames == 0 || rs[0].Reps.Replications != 2 {
		t.Fatalf("healthy job lost its aggregate: %+v", rs[0])
	}
	if rs[1].Reps.Replications != 1 || rs[1].DataDelivered != 5 {
		t.Fatalf("failed job should aggregate its one good rep: %+v", rs[1])
	}
}

// TestRunPartialResultsAllFailed: a job whose every replication failed
// reports a zero Result, not garbage.
func TestRunPartialResultsAllFailed(t *testing.T) {
	bad := shortScenario(core.ProtoCharisma, 5, 0)
	bad.Protocol = "bogus"
	rs, err := Runner{}.Run(context.Background(), NewPlan([]core.Scenario{bad, shortScenario(core.ProtoRAMA, 5, 0)}, 2))
	if err == nil {
		t.Fatal("bogus protocol not reported")
	}
	if len(rs) != 2 {
		t.Fatalf("partial results missing: %v", rs)
	}
	if rs[0] != (mac.Result{}) {
		t.Fatalf("all-failed job not zero: %+v", rs[0])
	}
	if rs[1].Frames == 0 {
		t.Fatalf("healthy job lost: %+v", rs[1])
	}
}
