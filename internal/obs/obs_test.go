package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestSimCountersAddCoversAll sets every field to a distinct value via
// reflection and checks Add folds each one in — so adding a counter
// without extending Add is a test failure, not a silent zero.
func TestSimCountersAddCoversAll(t *testing.T) {
	var src SimCounters
	v := reflect.ValueOf(&src).Elem()
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Kind() != reflect.Uint64 {
			t.Fatalf("field %s: SimCounters must hold only uint64 fields", v.Type().Field(i).Name)
		}
		v.Field(i).SetUint(uint64(i + 1))
	}
	var dst SimCounters
	dst.Add(&src)
	dst.Add(&src)
	d := reflect.ValueOf(&dst).Elem()
	for i := 0; i < d.NumField(); i++ {
		if got, want := d.Field(i).Uint(), uint64(2*(i+1)); got != want {
			t.Errorf("field %s: got %d after two Adds, want %d (Add is missing it?)",
				d.Type().Field(i).Name, got, want)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+2+100; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	h.WritePrometheus(&b, "x")
	out := b.String()
	for _, line := range []string{
		`x_bucket{le="0.1"} 2`, // 0.05 and the boundary value 0.1
		`x_bucket{le="1"} 3`,
		`x_bucket{le="10"} 4`,
		`x_bucket{le="+Inf"} 5`,
		"x_count 5",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1, 2, 3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 5))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if got, want := h.Sum(), float64(8*1000/5*(0+1+2+3+4)); got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(2,1) did not panic")
		}
	}()
	NewHistogram(2, 1)
}
