// Package obs is the instrumentation substrate shared by the simulation
// core and the sweep grid.
//
// It deliberately contains two very different kinds of primitive:
//
//   - SimCounters: plain uint64 fields embedded by value inside
//     single-goroutine components (the event engine, a cell's MAC
//     system, a fading plane). Incrementing one is a register add — no
//     atomics, no branches, no allocations — so the counters are
//     compiled in permanently without disturbing the hot-path
//     zero-alloc gates or the golden byte-identity suite (they never
//     touch an RNG stream). Each component exposes its own counter
//     block through an Obs()-style accessor; blocks from different
//     components are combined with Add at read time.
//
//   - Histogram: a fixed-bucket atomic histogram for the grid
//     coordinator, where observations arrive from concurrent HTTP
//     handlers. This one *is* synchronized, because it lives on the
//     control plane where an atomic per replication is noise.
//
// The split keeps the rule from DESIGN.md honest: nothing on the
// per-event or per-frame path synchronizes, and everything on the
// control plane is safe under -race.
package obs

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// SimCounters is one component's block of hot-path event counters.
// All fields are cumulative over the component's lifetime: Reset/ResetLazy
// style re-arms do not zero them, so a pooled arena reports totals across
// every replication it has hosted.
//
// A block must only ever be written by the goroutine that owns its
// component (the engine, system, and plane of one cell run). Reading a
// live block from another goroutine is racy by design — snapshot at a
// quiescent point (between replications, or after Run returns).
type SimCounters struct {
	// Event engine.
	EngineEvents      uint64 // events fired (mirrors Engine.Executed)
	EngineBatches     uint64 // StepBatch calls that dispatched a cohort
	EngineBatchDetach uint64 // cohort drains that took the detach tier
	EngineSoloLane    uint64 // solo-lane activations (single recurring event)

	// Registry timer wheel.
	WheelArms     uint64 // timers armed (wheel.add)
	WheelCascades uint64 // level cascades triggered by pointer advance
	WheelWakes    uint64 // stations collected as due and woken

	// Registry candidate cache.
	EpochBumps uint64 // candidacy-changing Reindex calls (cache invalidations)
	CandHits   uint64 // ForEachCandidate served from the cached scratch
	CandMisses uint64 // ForEachCandidate rebuilds of the scratch

	// Replication arena (written with package atomics in core, folded
	// into a SimCounters snapshot at read time).
	ArenaReuses uint64 // Scenario.Run served by a warm pooled arena
	ArenaBuilds uint64 // fresh arena constructions

	// Channel plane lazy replay.
	ChannelCatchUps     uint64 // batched per-station catch-up calls
	ChannelCatchUpSteps uint64 // total AR(1) steps replayed by those calls
}

// Add accumulates other into c field by field. TestSimCountersAddCoversAll
// keeps this in sync with the struct definition by reflection.
func (c *SimCounters) Add(o *SimCounters) {
	c.EngineEvents += o.EngineEvents
	c.EngineBatches += o.EngineBatches
	c.EngineBatchDetach += o.EngineBatchDetach
	c.EngineSoloLane += o.EngineSoloLane
	c.WheelArms += o.WheelArms
	c.WheelCascades += o.WheelCascades
	c.WheelWakes += o.WheelWakes
	c.EpochBumps += o.EpochBumps
	c.CandHits += o.CandHits
	c.CandMisses += o.CandMisses
	c.ArenaReuses += o.ArenaReuses
	c.ArenaBuilds += o.ArenaBuilds
	c.ChannelCatchUps += o.ChannelCatchUps
	c.ChannelCatchUpSteps += o.ChannelCatchUpSteps
}

// Histogram is a fixed-bucket concurrency-safe histogram in the
// Prometheus cumulative-bucket model. Observations and reads may come
// from any goroutine. The zero value is unusable; construct with
// NewHistogram.
type Histogram struct {
	bounds  []float64       // upper bounds, ascending; implicit +Inf last
	counts  []atomic.Uint64 // len(bounds)+1, per-bucket (non-cumulative)
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// An implicit +Inf bucket is appended.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// WritePrometheus appends the histogram in Prometheus text exposition
// format under the given fully-qualified metric name (the caller writes
// the # HELP / # TYPE preamble).
func (h *Histogram) WritePrometheus(b *strings.Builder, name string) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=\"%g\"} %d\n", name, bound, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %g\n", name, h.Sum())
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
}
