package core

import (
	"testing"

	"charisma/internal/mac"
)

// arenaScenarios is a cross-section of the platform's configuration
// space: all six protocols, both PHY classes, the BS request queue, mixed
// voice/data populations, per-station speeds, and RMAV's variable-length
// frame cadence.
func arenaScenarios() []Scenario {
	mk := func(proto string, nv, nd int, queue bool) Scenario {
		sc := DefaultScenario(proto)
		sc.NumVoice, sc.NumData = nv, nd
		sc.UseQueue = queue
		sc.WarmupSec, sc.DurationSec = 0.5, 2
		return sc
	}
	speeds := mk(ProtoCharisma, 6, 2, true)
	speeds.SpeedsKmh = []float64{5, 20, 35, 50, 65, 80, 95, 110}
	return []Scenario{
		mk(ProtoCharisma, 10, 3, true),
		mk(ProtoDTDMAVR, 10, 3, false),
		mk(ProtoDTDMAFR, 10, 3, false),
		mk(ProtoDRMA, 10, 3, false),
		mk(ProtoRAMA, 10, 3, false),
		mk(ProtoRMAV, 8, 2, false),
		speeds,
	}
}

// runFresh executes sc on a brand-new arena (no reuse at all).
func runFresh(t *testing.T, sc Scenario) mac.Result {
	t.Helper()
	res, err := sc.runIn(newRunArena())
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	return res
}

// TestArenaReuseByteIdentity pins the replication arena's core contract:
// a run into a dirty arena — previously used by a different protocol,
// population size, queue configuration, and seed — is byte-identical to
// the same scenario on a fresh arena.
func TestArenaReuseByteIdentity(t *testing.T) {
	scs := arenaScenarios()
	a := newRunArena()
	// Dirty the arena with every scenario once, in order.
	for _, sc := range scs {
		if _, err := sc.runIn(a); err != nil {
			t.Fatalf("prime %s: %v", sc.Protocol, err)
		}
	}
	// Replay each scenario on the dirty arena; every metric must match a
	// fresh build exactly (results are pure float/int aggregates, so ==
	// is bit comparison).
	for _, sc := range scs {
		want := runFresh(t, sc)
		got, err := sc.runIn(a)
		if err != nil {
			t.Fatalf("reused run %s: %v", sc.Protocol, err)
		}
		if got != want {
			t.Errorf("%s (nv=%d nd=%d): arena reuse diverged\nfresh:  %+v\nreused: %+v",
				sc.Protocol, sc.NumVoice, sc.NumData, want, got)
		}
	}
}

// TestArenaReuseAcrossSeeds replays one scenario across many seeds in a
// single arena — the replication sweep shape — against fresh builds.
func TestArenaReuseAcrossSeeds(t *testing.T) {
	sc := DefaultScenario(ProtoCharisma)
	sc.NumVoice, sc.NumData = 12, 4
	sc.UseQueue = true
	sc.WarmupSec, sc.DurationSec = 0.5, 2
	a := newRunArena()
	for seed := int64(1); seed <= 6; seed++ {
		sc.Seed = seed
		want := runFresh(t, sc)
		got, err := sc.runIn(a)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != want {
			t.Errorf("seed %d: arena reuse diverged\nfresh:  %+v\nreused: %+v", seed, want, got)
		}
	}
}

// TestArenaPopulationResize grows and shrinks the population in one
// arena, checking identity at every step (stale cached sources/streams
// beyond the live prefix must never leak into results).
func TestArenaPopulationResize(t *testing.T) {
	a := newRunArena()
	for _, pop := range [][2]int{{4, 0}, {30, 10}, {8, 2}, {0, 6}, {30, 10}} {
		sc := DefaultScenario(ProtoDRMA)
		sc.NumVoice, sc.NumData = pop[0], pop[1]
		sc.WarmupSec, sc.DurationSec = 0.5, 2
		want := runFresh(t, sc)
		got, err := sc.runIn(a)
		if err != nil {
			t.Fatalf("nv=%d nd=%d: %v", pop[0], pop[1], err)
		}
		if got != want {
			t.Errorf("nv=%d nd=%d: arena reuse diverged", pop[0], pop[1])
		}
	}
}

// BenchmarkReplicationSetup measures the steady-state per-replication
// setup on a warm arena — build, protocol init, engine reset, and full
// materialization of a 50-station cell. The CI bench smoke gates this at
// zero allocations per op.
func BenchmarkReplicationSetup(b *testing.B) {
	sc := DefaultScenario(ProtoCharisma)
	sc.NumVoice, sc.NumData = 40, 10
	sc.UseQueue = true
	a := newRunArena()
	if _, err := sc.runIn(a); err != nil {
		b.Fatal(err)
	}
	setup := func(seed int64) {
		sc.Seed = seed
		sys, proto, err := sc.buildIn(a)
		if err != nil {
			b.Fatal(err)
		}
		proto.Init(sys)
		a.eng.Reset()
		sys.MaterializeAll()
	}
	// One full warm setup so every slot's cached source object exists
	// before measurement (the run above only materializes woken stations).
	setup(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setup(int64(i + 1))
	}
}

// TestArenaSetupSteadyStateAllocs gates the per-replication setup cost:
// after the first build warms an arena, rebuilding the same-shaped cell
// (build + protocol init + engine reset + full materialization) must run
// in near-zero allocations. The bound is far below the ~132k allocations
// a fresh per-replication build used to cost (BENCH_6 Fig11a panel), and
// tight enough that any per-station allocation regression (one alloc per
// station would be ≥50) trips it.
func TestArenaSetupSteadyStateAllocs(t *testing.T) {
	sc := DefaultScenario(ProtoCharisma)
	sc.NumVoice, sc.NumData = 40, 10
	sc.UseQueue = true
	a := newRunArena()
	seed := int64(1)
	setup := func() {
		sc.Seed = seed
		seed++
		sys, proto, err := sc.buildIn(a)
		if err != nil {
			t.Fatalf("buildIn: %v", err)
		}
		proto.Init(sys)
		if a.eng == nil {
			t.Fatal("arena engine not built")
		}
		a.eng.Reset()
		// Force every station's sources, streams and fading rows — the
		// full setup cost a replication could possibly pay.
		sys.MaterializeAll()
	}
	// Warm the arena (first build allocates everything), then prime the
	// engine once so Reset has something to rewind.
	if _, err := sc.runIn(a); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	setup()
	const budget = 16
	if allocs := testing.AllocsPerRun(20, setup); allocs > budget {
		t.Errorf("steady-state replication setup: %.0f allocs, budget %d", allocs, budget)
	}
}
