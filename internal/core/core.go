// Package core is the paper's "common simulation platform" (§5): it
// assembles a cell — channel bank, physical layer, traffic sources, one of
// the six access control protocols — from a declarative Scenario, drives
// the TDMA frame cadence on the discrete-event engine, and harvests the
// paper's metrics after a warm-up transient.
//
// All six protocols run against byte-identical channel and traffic sample
// paths for a given seed (common random numbers): per-user streams are
// derived from the scenario seed only, never from protocol identity.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"charisma/internal/channel"
	"charisma/internal/mac"
	charismaproto "charisma/internal/mac/charisma"
	"charisma/internal/mac/drma"
	"charisma/internal/mac/dtdma"
	"charisma/internal/mac/rama"
	"charisma/internal/mac/rmav"
	"charisma/internal/phy"
	"charisma/internal/rng"
	"charisma/internal/sim"
	"charisma/internal/traffic"
)

// Protocol names accepted by Scenario.Protocol.
const (
	ProtoCharisma = "charisma"
	ProtoRAMA     = "rama"
	ProtoRMAV     = "rmav"
	ProtoDRMA     = "drma"
	ProtoDTDMAFR  = "d-tdma/fr"
	ProtoDTDMAVR  = "d-tdma/vr"
)

// Protocols lists all six implemented protocols in the paper's order of
// presentation.
func Protocols() []string {
	return []string{ProtoCharisma, ProtoDTDMAVR, ProtoDTDMAFR, ProtoDRMA, ProtoRAMA, ProtoRMAV}
}

// NewProtocol instantiates a protocol by name.
func NewProtocol(name string) (mac.Protocol, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case ProtoCharisma:
		return charismaproto.New(), nil
	case ProtoRAMA:
		return rama.New(), nil
	case ProtoRMAV:
		return rmav.New(), nil
	case ProtoDRMA:
		return drma.New(), nil
	case ProtoDTDMAFR, "dtdma/fr", "d-tdma-fr":
		return dtdma.New(), nil
	case ProtoDTDMAVR, "dtdma/vr", "d-tdma-vr":
		return dtdma.NewVariable(), nil
	default:
		return nil, fmt.Errorf("core: unknown protocol %q", name)
	}
}

// AdaptivePHYFor reports whether a protocol runs on the channel-adaptive
// physical layer (only CHARISMA and D-TDMA/VR do; §3–§4).
func AdaptivePHYFor(name string) bool {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case ProtoCharisma, ProtoDTDMAVR, "dtdma/vr", "d-tdma-vr":
		return true
	}
	return false
}

// Scenario declares one simulation run.
type Scenario struct {
	// Protocol is one of the Proto* names.
	Protocol string
	// NumVoice and NumData are the voice-only and data-only user counts
	// (the paper's Nv and Nd axes).
	NumVoice int
	NumData  int
	// UseQueue enables the base-station request queue (§4.5).
	UseQueue bool
	// Seed determines every random stream of the run.
	Seed int64
	// WarmupSec is excluded from all metrics; DurationSec is the
	// measurement window.
	WarmupSec   float64
	DurationSec float64

	// Channel, PHY and MAC carry the substrate parameters; zero values
	// are replaced by the calibrated defaults.
	Channel channel.Params
	PHY     phy.Params
	MAC     mac.Config

	// SpeedsKmh optionally assigns per-station speeds (the §5.3.3
	// mobility experiment); when set it must cover NumVoice+NumData
	// stations.
	SpeedsKmh []float64
}

// DefaultScenario returns a ready-to-run scenario for the named protocol
// with the calibrated Table 1 defaults: 60 s measured after 2 s warm-up.
func DefaultScenario(protocol string) Scenario {
	return Scenario{
		Protocol:    protocol,
		NumVoice:    50,
		NumData:     0,
		Seed:        1,
		WarmupSec:   2,
		DurationSec: 60,
		Channel:     channel.DefaultParams(),
		PHY:         phy.DefaultParams(),
		MAC:         mac.DefaultConfig(),
	}
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Channel == (channel.Params{}) {
		sc.Channel = channel.DefaultParams()
	}
	if len(sc.PHY.Etas) == 0 {
		sc.PHY = phy.DefaultParams()
	}
	if sc.MAC.Geometry.FrameSymbols == 0 {
		sc.MAC = mac.DefaultConfig()
	}
	sc.MAC.UseQueue = sc.UseQueue
	if sc.WarmupSec <= 0 {
		sc.WarmupSec = 2
	}
	if sc.DurationSec <= 0 {
		sc.DurationSec = 30
	}
	return sc
}

// Validate reports scenario configuration errors.
func (sc Scenario) Validate() error {
	if sc.NumVoice < 0 || sc.NumData < 0 {
		return fmt.Errorf("core: negative station counts %d/%d", sc.NumVoice, sc.NumData)
	}
	if sc.NumVoice+sc.NumData == 0 {
		return fmt.Errorf("core: no stations")
	}
	if _, err := NewProtocol(sc.Protocol); err != nil {
		return err
	}
	if err := sc.Channel.Validate(); err != nil {
		return err
	}
	if err := sc.PHY.Validate(); err != nil {
		return err
	}
	if err := sc.MAC.Validate(); err != nil {
		return err
	}
	if n := sc.NumVoice + sc.NumData; len(sc.SpeedsKmh) > 0 && len(sc.SpeedsKmh) != n {
		return fmt.Errorf("core: %d speeds for %d stations", len(sc.SpeedsKmh), n)
	}
	return nil
}

// Build assembles the system and protocol without running them (exposed
// for tests and custom drivers).
func (sc Scenario) Build() (*mac.System, mac.Protocol, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	proto, err := NewProtocol(sc.Protocol)
	if err != nil {
		return nil, nil, err
	}

	var modem phy.PHY
	if AdaptivePHYFor(sc.Protocol) {
		modem = phy.NewAdaptive(sc.PHY)
	} else {
		modem = phy.NewFixed(sc.PHY)
	}

	// The population is built lazily: stations are deferred until their
	// first source event, so instantiating a 10⁶-station cell costs one
	// Station slab plus the registry slabs, not 10⁶ traffic sources and
	// fading states. First wakes come from the traffic birth probes on a
	// throwaway stream reseeded per station; materialization later draws
	// from a fresh stream with the same derived seed, so the sources (and
	// every downstream draw) are byte-identical to an eager build. The
	// per-station fading processes are single-user planes seeded exactly
	// like the shared bank's views ("chan"/i), and the frame loop only
	// ever advances fading per view, so the sample paths match too.
	n := sc.NumVoice + sc.NumData
	vp := traffic.DefaultVoiceParams()
	dp := traffic.DefaultDataParams()
	firstWake := make([]sim.Time, n)
	probe := rng.New(0)
	for i := 0; i < n; i++ {
		if i < sc.NumVoice {
			probe.Reseed(rng.SeedForIndexed(sc.Seed, "voice", i))
			firstWake[i] = traffic.ProbeVoiceBirth(vp, probe, 0)
		} else {
			probe.Reseed(rng.SeedForIndexed(sc.Seed, "data", i))
			firstWake[i] = traffic.ProbeDataBirth(dp, probe, 0)
		}
	}
	seed, numVoice := sc.Seed, sc.NumVoice
	chp, speeds := sc.Channel, sc.SpeedsKmh
	pop := &mac.LazyPopulation{
		FirstWake: firstWake,
		Materialize: func(i int) (*traffic.VoiceSource, *traffic.DataSource, *channel.Fading) {
			p := chp
			if len(speeds) > 0 {
				// Mirror channel.NewBankWithSpeeds: per-station speed,
				// Doppler re-derived from it.
				p.SpeedKmh = speeds[i]
				p.DopplerHz = 0
			}
			fad := channel.NewFading(p, rng.DeriveIndexed(seed, "chan", i))
			if i < numVoice {
				return traffic.NewVoice(vp, rng.DeriveIndexed(seed, "voice", i), 0), nil, fad
			}
			return nil, traffic.NewData(dp, rng.DeriveIndexed(seed, "data", i), 0), fad
		},
	}

	macStream := rng.Derive(sc.Seed, "mac", sc.Protocol)
	sys, err := mac.NewSystemLazy(sc.MAC, modem, n, macStream, pop)
	if err != nil {
		return nil, nil, err
	}
	return sys, proto, nil
}

// Run executes the scenario and returns the measured metrics.
func (sc Scenario) Run() (mac.Result, error) {
	sc = sc.withDefaults()
	sys, proto, err := sc.Build()
	if err != nil {
		return mac.Result{}, err
	}
	warmup := sim.FromSeconds(sc.WarmupSec)
	limit := warmup + sim.FromSeconds(sc.DurationSec)

	proto.Init(sys)
	eng := sim.NewEngine()
	marked := false
	// One recurring event drives the TDMA cadence; the step returns each
	// frame's (possibly variable) duration as the delay to the next tick,
	// so the whole run reuses a single event slot.
	eng.ScheduleEvery(0, func(e *sim.Engine) sim.Time {
		if !marked && sys.Now() >= warmup {
			sys.M.Mark()
			marked = true
		}
		sys.BeginFrame()
		dur := proto.RunFrame(sys)
		sys.EndFrame(dur)
		if sys.Now() >= limit {
			return -1
		}
		return dur
	})
	eng.Run()

	return sys.M.Result(proto.Name(), sys.Cfg.Geometry.FrameSymbols), nil
}

// RunMany executes scenarios concurrently across the machine's cores and
// returns results in input order. An error aborts nothing — every scenario
// runs — and all per-scenario errors are reported together via
// errors.Join. Replication-aware batches should prefer the internal/run
// package, which layers seed derivation, aggregation and cancellation on
// top of this primitive's semantics.
func RunMany(scs []Scenario) ([]mac.Result, error) {
	results := make([]mac.Result, len(scs))
	errs := make([]error, len(scs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(scs) {
		workers = len(scs)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = scs[i].Run()
			}
		}()
	}
	for i := range scs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, errors.Join(errs...)
}
