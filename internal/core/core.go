// Package core is the paper's "common simulation platform" (§5): it
// assembles a cell — channel bank, physical layer, traffic sources, one of
// the six access control protocols — from a declarative Scenario, drives
// the TDMA frame cadence on the discrete-event engine, and harvests the
// paper's metrics after a warm-up transient.
//
// All six protocols run against byte-identical channel and traffic sample
// paths for a given seed (common random numbers): per-user streams are
// derived from the scenario seed only, never from protocol identity.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"charisma/internal/channel"
	"charisma/internal/mac"
	charismaproto "charisma/internal/mac/charisma"
	"charisma/internal/mac/drma"
	"charisma/internal/mac/dtdma"
	"charisma/internal/mac/rama"
	"charisma/internal/mac/rmav"
	"charisma/internal/obs"
	"charisma/internal/phy"
	"charisma/internal/rng"
	"charisma/internal/sim"
	"charisma/internal/trace"
	"charisma/internal/traffic"
)

// Protocol names accepted by Scenario.Protocol.
const (
	ProtoCharisma = "charisma"
	ProtoRAMA     = "rama"
	ProtoRMAV     = "rmav"
	ProtoDRMA     = "drma"
	ProtoDTDMAFR  = "d-tdma/fr"
	ProtoDTDMAVR  = "d-tdma/vr"
)

// Protocols lists all six implemented protocols in the paper's order of
// presentation.
func Protocols() []string {
	return []string{ProtoCharisma, ProtoDTDMAVR, ProtoDTDMAFR, ProtoDRMA, ProtoRAMA, ProtoRMAV}
}

// NewProtocol instantiates a protocol by name.
func NewProtocol(name string) (mac.Protocol, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case ProtoCharisma:
		return charismaproto.New(), nil
	case ProtoRAMA:
		return rama.New(), nil
	case ProtoRMAV:
		return rmav.New(), nil
	case ProtoDRMA:
		return drma.New(), nil
	case ProtoDTDMAFR, "dtdma/fr", "d-tdma-fr":
		return dtdma.New(), nil
	case ProtoDTDMAVR, "dtdma/vr", "d-tdma-vr":
		return dtdma.NewVariable(), nil
	default:
		return nil, fmt.Errorf("core: unknown protocol %q", name)
	}
}

// KnownProtocol reports whether name (or one of its accepted aliases)
// names an implemented protocol. It is the allocation-free validation
// twin of NewProtocol.
func KnownProtocol(name string) bool {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case ProtoCharisma, ProtoRAMA, ProtoRMAV, ProtoDRMA,
		ProtoDTDMAFR, "dtdma/fr", "d-tdma-fr",
		ProtoDTDMAVR, "dtdma/vr", "d-tdma-vr":
		return true
	}
	return false
}

// AdaptivePHYFor reports whether a protocol runs on the channel-adaptive
// physical layer (only CHARISMA and D-TDMA/VR do; §3–§4).
func AdaptivePHYFor(name string) bool {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case ProtoCharisma, ProtoDTDMAVR, "dtdma/vr", "d-tdma-vr":
		return true
	}
	return false
}

// Scenario declares one simulation run.
type Scenario struct {
	// Protocol is one of the Proto* names.
	Protocol string
	// NumVoice and NumData are the voice-only and data-only user counts
	// (the paper's Nv and Nd axes).
	NumVoice int
	NumData  int
	// UseQueue enables the base-station request queue (§4.5).
	UseQueue bool
	// Seed determines every random stream of the run.
	Seed int64
	// WarmupSec is excluded from all metrics; DurationSec is the
	// measurement window.
	WarmupSec   float64
	DurationSec float64

	// Channel, PHY and MAC carry the substrate parameters; zero values
	// are replaced by the calibrated defaults.
	Channel channel.Params
	PHY     phy.Params
	MAC     mac.Config

	// SpeedsKmh optionally assigns per-station speeds (the §5.3.3
	// mobility experiment); when set it must cover NumVoice+NumData
	// stations.
	SpeedsKmh []float64
}

// DefaultScenario returns a ready-to-run scenario for the named protocol
// with the calibrated Table 1 defaults: 60 s measured after 2 s warm-up.
func DefaultScenario(protocol string) Scenario {
	return Scenario{
		Protocol:    protocol,
		NumVoice:    50,
		NumData:     0,
		Seed:        1,
		WarmupSec:   2,
		DurationSec: 60,
		Channel:     channel.DefaultParams(),
		PHY:         phy.DefaultParams(),
		MAC:         mac.DefaultConfig(),
	}
}

// WithDefaults returns the scenario with every zero-valued knob replaced
// by its calibrated default — exactly the normalization Build and Run
// apply before validating. External loaders (the grid's scenario files)
// use it to validate a scenario as it will actually run.
func (sc Scenario) WithDefaults() Scenario {
	if sc.Channel == (channel.Params{}) {
		sc.Channel = channel.DefaultParams()
	}
	if len(sc.PHY.Etas) == 0 {
		sc.PHY = phy.DefaultParams()
	}
	if sc.MAC.Geometry.FrameSymbols == 0 {
		sc.MAC = mac.DefaultConfig()
	}
	sc.MAC.UseQueue = sc.UseQueue
	if sc.WarmupSec <= 0 {
		sc.WarmupSec = 2
	}
	if sc.DurationSec <= 0 {
		sc.DurationSec = 30
	}
	return sc
}

// ValidationError is the typed rejection every Scenario.Validate path
// returns: Field names the offending scenario field, Reason says why it
// was rejected. Callers dispatch with errors.As instead of matching
// message strings.
type ValidationError struct {
	Field  string
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("core: invalid %s: %s", e.Field, e.Reason)
}

// Validate reports scenario configuration errors. Every rejection is a
// *ValidationError; substrate rejections (Channel/PHY/MAC) are wrapped
// with the owning field name.
func (sc Scenario) Validate() error {
	if sc.NumVoice < 0 {
		return &ValidationError{Field: "NumVoice", Reason: fmt.Sprintf("negative station count %d", sc.NumVoice)}
	}
	if sc.NumData < 0 {
		return &ValidationError{Field: "NumData", Reason: fmt.Sprintf("negative station count %d", sc.NumData)}
	}
	if sc.NumVoice+sc.NumData == 0 {
		return &ValidationError{Field: "NumVoice+NumData", Reason: "empty traffic mix: no stations"}
	}
	if !KnownProtocol(sc.Protocol) {
		return &ValidationError{Field: "Protocol", Reason: fmt.Sprintf("unknown protocol %q", sc.Protocol)}
	}
	if err := sc.Channel.Validate(); err != nil {
		return &ValidationError{Field: "Channel", Reason: err.Error()}
	}
	if err := sc.PHY.Validate(); err != nil {
		return &ValidationError{Field: "PHY", Reason: err.Error()}
	}
	if err := sc.MAC.Validate(); err != nil {
		return &ValidationError{Field: "MAC", Reason: err.Error()}
	}
	if n := sc.NumVoice + sc.NumData; len(sc.SpeedsKmh) > 0 && len(sc.SpeedsKmh) != n {
		return &ValidationError{Field: "SpeedsKmh", Reason: fmt.Sprintf("%d speeds for %d stations", len(sc.SpeedsKmh), n)}
	}
	for i, v := range sc.SpeedsKmh {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return &ValidationError{Field: "SpeedsKmh", Reason: fmt.Sprintf("station %d speed %v", i, v)}
		}
	}
	return nil
}

// runArena owns every allocation a scenario run can recycle across
// replications: the lazy system (station/registry/request slabs), the
// discrete-event engine, the channel slab, per-slot RNG streams and
// traffic sources, the PHY modem, and one protocol instance per name.
// Scenario.Run borrows an arena from a sync.Pool, rebuilds the cell into
// it, and returns it — so a parameter sweep's rep N+1 reuses rep N's
// memory with near-zero fresh allocations. Reuse is byte-identity-safe
// because every component re-initializes completely: mac.ResetLazy,
// sim.Engine.Reset, channel.Slab.Reset + initUser, Stream.Reseed (pinned
// equal to a fresh New by TestReseedMatchesNew), and the traffic Reset
// constructors reproduce the fresh draw sequences exactly.
type runArena struct {
	probe     *rng.Stream
	macStream *rng.Stream
	firstWake []sim.Time
	pop       mac.LazyPopulation
	sys       *mac.System
	eng       *sim.Engine
	slab      *channel.Slab
	protos    map[string]mac.Protocol

	// Per-slot cached streams and source objects (index = station slot).
	// A stream is re-seeded at materialization time, so only stations
	// that actually wake in a replication pay for it.
	chStreams []*rng.Stream
	vStreams  []*rng.Stream
	dStreams  []*rng.Stream
	vSrcs     []*traffic.VoiceSource
	dSrcs     []*traffic.DataSource

	// Cached modem plus the inputs it was built from. modemParams holds
	// defensive clones of the slice fields so a caller mutating its own
	// phy.Params in place between runs is detected as a change.
	modem         phy.PHY
	modemAdaptive bool
	modemParams   phy.Params

	// Materialization inputs, rebound by buildIn for each replication.
	seed     int64
	numVoice int
	chp      channel.Params
	speeds   []float64
	vp       traffic.VoiceParams
	dp       traffic.DataParams

	// used marks an arena that has hosted at least one run; a pool hit
	// on a used arena is a warm reuse (see arenaReuses).
	used bool
}

func newRunArena() *runArena {
	arenaBuilds.Add(1)
	a := &runArena{
		probe:  rng.New(0),
		slab:   channel.NewSlab(),
		protos: make(map[string]mac.Protocol),
	}
	a.pop.Materialize = a.materialize
	return a
}

var arenaPool = sync.Pool{New: func() any { return newRunArena() }}

// Arena traffic counters: pool hits versus fresh constructions. Atomics,
// not SimCounters fields — Run executes on whatever goroutine RunMany
// gave it, so these are genuinely concurrent. One add per replication is
// far off the per-event hot path.
var arenaReuses, arenaBuilds atomic.Uint64

// ArenaObs folds the process-wide arena pool counters into a SimCounters
// snapshot (the rest of the fields are zero — per-run engine/registry/
// plane counters live on their components).
func ArenaObs() obs.SimCounters {
	return obs.SimCounters{
		ArenaReuses: arenaReuses.Load(),
		ArenaBuilds: arenaBuilds.Load(),
	}
}

// stream returns the cached per-slot stream, re-seeded exactly as
// rng.DeriveIndexed(a.seed, label, i) would seed a fresh one.
func (a *runArena) stream(pool []*rng.Stream, label string, i int) *rng.Stream {
	s := pool[i]
	if s == nil {
		s = rng.New(0)
		pool[i] = s
	}
	s.Reseed(rng.SeedForIndexed(a.seed, label, i))
	return s
}

// materialize is the arena's mac.LazyPopulation hook: identical draws to
// the fresh-build path (stream seeded from (seed, label, i), then the
// source/fading constructor draws), but into recycled objects.
func (a *runArena) materialize(i int) (*traffic.VoiceSource, *traffic.DataSource, *channel.Fading) {
	p := a.chp
	if len(a.speeds) > 0 {
		// Mirror channel.NewBankWithSpeeds: per-station speed, Doppler
		// re-derived from it.
		p.SpeedKmh = a.speeds[i]
		p.DopplerHz = 0
	}
	fad := a.slab.New(p, a.stream(a.chStreams, "chan", i))
	if i < a.numVoice {
		v := a.vSrcs[i]
		if v == nil {
			v = &traffic.VoiceSource{}
			a.vSrcs[i] = v
		}
		v.Reset(a.vp, a.stream(a.vStreams, "voice", i), 0)
		return v, nil, fad
	}
	d := a.dSrcs[i]
	if d == nil {
		d = &traffic.DataSource{}
		a.dSrcs[i] = d
	}
	d.Reset(a.dp, a.stream(a.dStreams, "data", i), 0)
	return nil, d, fad
}

// growStreams resizes a per-slot cache to n entries, keeping every
// already-built stream in the surviving prefix.
func growStreams(s []*rng.Stream, n int) []*rng.Stream {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]*rng.Stream, n)
	copy(out, s[:cap(s)])
	return out
}

func phyParamsEqual(a, b phy.Params) bool {
	return a.MeanSNRdB == b.MeanSNRdB && a.TargetBER == b.TargetBER &&
		a.FixedThresholdDB == b.FixedThresholdDB && a.CSIMargin == b.CSIMargin &&
		slices.Equal(a.Etas, b.Etas) && slices.Equal(a.ThresholdsDB, b.ThresholdsDB)
}

// modemFor returns the cached modem when the adaptivity class and PHY
// parameters are unchanged, else builds (and caches) a fresh one.
func (a *runArena) modemFor(sc Scenario) phy.PHY {
	adaptive := AdaptivePHYFor(sc.Protocol)
	if a.modem == nil || adaptive != a.modemAdaptive || !phyParamsEqual(sc.PHY, a.modemParams) {
		if adaptive {
			a.modem = phy.NewAdaptive(sc.PHY)
		} else {
			a.modem = phy.NewFixed(sc.PHY)
		}
		a.modemAdaptive = adaptive
		a.modemParams = sc.PHY
		a.modemParams.Etas = slices.Clone(sc.PHY.Etas)
		a.modemParams.ThresholdsDB = slices.Clone(sc.PHY.ThresholdsDB)
	}
	return a.modem
}

// Build assembles the system and protocol without running them (exposed
// for tests and custom drivers). Each call uses a private arena, so the
// returned system shares no state with pooled Run executions or other
// Build results.
func (sc Scenario) Build() (*mac.System, mac.Protocol, error) {
	return sc.buildIn(newRunArena())
}

// buildIn assembles the scenario's system and protocol into the arena,
// reusing whatever the arena already holds.
func (sc Scenario) buildIn(a *runArena) (*mac.System, mac.Protocol, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	key := strings.ToLower(strings.TrimSpace(sc.Protocol))
	proto := a.protos[key]
	if proto == nil {
		p, err := NewProtocol(sc.Protocol)
		if err != nil {
			return nil, nil, err
		}
		a.protos[key] = p
		proto = p
	}
	modem := a.modemFor(sc)

	// The population is built lazily: stations are deferred until their
	// first source event, so instantiating a 10⁶-station cell costs one
	// Station slab plus the registry slabs, not 10⁶ traffic sources and
	// fading states. First wakes come from the traffic birth probes on a
	// throwaway stream reseeded per station; materialization later draws
	// from a fresh-seeded stream with the same derived seed, so the
	// sources (and every downstream draw) are byte-identical to an eager
	// build. The per-station fading processes are slab rows seeded exactly
	// like the shared bank's views ("chan"/i), and the frame loop only
	// ever advances fading per view, so the sample paths match too.
	n := sc.NumVoice + sc.NumData
	a.seed, a.numVoice = sc.Seed, sc.NumVoice
	a.chp, a.speeds = sc.Channel, sc.SpeedsKmh
	a.vp = traffic.DefaultVoiceParams()
	a.dp = traffic.DefaultDataParams()
	if cap(a.firstWake) >= n {
		a.firstWake = a.firstWake[:n]
	} else {
		a.firstWake = make([]sim.Time, n)
	}
	for i := 0; i < n; i++ {
		if i < sc.NumVoice {
			a.probe.Reseed(rng.SeedForIndexed(sc.Seed, "voice", i))
			a.firstWake[i] = traffic.ProbeVoiceBirth(a.vp, a.probe, 0)
		} else {
			a.probe.Reseed(rng.SeedForIndexed(sc.Seed, "data", i))
			a.firstWake[i] = traffic.ProbeDataBirth(a.dp, a.probe, 0)
		}
	}
	a.chStreams = growStreams(a.chStreams, n)
	a.vStreams = growStreams(a.vStreams, n)
	a.dStreams = growStreams(a.dStreams, n)
	if cap(a.vSrcs) >= n {
		a.vSrcs = a.vSrcs[:n]
	} else {
		out := make([]*traffic.VoiceSource, n)
		copy(out, a.vSrcs[:cap(a.vSrcs)])
		a.vSrcs = out
	}
	if cap(a.dSrcs) >= n {
		a.dSrcs = a.dSrcs[:n]
	} else {
		out := make([]*traffic.DataSource, n)
		copy(out, a.dSrcs[:cap(a.dSrcs)])
		a.dSrcs = out
	}
	a.slab.Reset()
	a.pop.FirstWake = a.firstWake

	if a.macStream == nil {
		a.macStream = rng.New(0)
	}
	a.macStream.Reseed(rng.SeedFor(sc.Seed, "mac", sc.Protocol))
	if a.sys == nil {
		sys, err := mac.NewSystemLazy(sc.MAC, modem, n, a.macStream, &a.pop)
		if err != nil {
			return nil, nil, err
		}
		a.sys = sys
	} else if err := a.sys.ResetLazy(sc.MAC, modem, n, a.macStream, &a.pop); err != nil {
		return nil, nil, err
	}
	return a.sys, proto, nil
}

// Run executes the scenario and returns the measured metrics. The run
// borrows a replication arena from a process-wide pool, so consecutive
// runs (a sweep's replications) recycle their predecessors' allocations.
func (sc Scenario) Run() (mac.Result, error) {
	a := arenaPool.Get().(*runArena)
	if a.used {
		arenaReuses.Add(1)
	} else {
		a.used = true
	}
	res, err := sc.runIn(a)
	arenaPool.Put(a)
	return res, err
}

func (sc Scenario) runIn(a *runArena) (mac.Result, error) {
	sc = sc.WithDefaults()
	sys, proto, err := sc.buildIn(a)
	if err != nil {
		return mac.Result{}, err
	}
	warmup := sim.FromSeconds(sc.WarmupSec)
	limit := warmup + sim.FromSeconds(sc.DurationSec)

	proto.Init(sys)
	if a.eng == nil {
		a.eng = sim.NewEngine()
	} else {
		a.eng.Reset()
	}
	eng := a.eng
	if frames, _ := trace.FlightArmed(); frames > 0 {
		label := fmt.Sprintf("%s seed=%d", sc.Protocol, sc.Seed)
		fl := trace.AttachFlight(sys, frames, label)
		defer fl.Close()
		// A panic anywhere in the frame loop dumps the ring before
		// unwinding — the post-mortem the recorder exists for.
		defer func() {
			if r := recover(); r != nil {
				fl.Dump(fmt.Sprintf("panic: %v", r))
				panic(r)
			}
		}()
	}
	marked := false
	// One recurring event drives the TDMA cadence; the step returns each
	// frame's (possibly variable) duration as the delay to the next tick,
	// so the whole run reuses a single event slot and the engine's
	// single-event solo lane.
	eng.ScheduleEvery(0, func(e *sim.Engine) sim.Time {
		if !marked && sys.Now() >= warmup {
			sys.M.Mark()
			marked = true
		}
		sys.BeginFrame()
		dur := proto.RunFrame(sys)
		sys.EndFrame(dur)
		if sys.Now() >= limit {
			return -1
		}
		return dur
	})
	eng.Run()

	return sys.M.Result(proto.Name(), sys.Cfg.Geometry.FrameSymbols), nil
}

// RunMany executes scenarios concurrently across the machine's cores and
// returns results in input order. An error aborts nothing — every scenario
// runs — and all per-scenario errors are reported together via
// errors.Join. Replication-aware batches should prefer the internal/run
// package, which layers seed derivation, aggregation and cancellation on
// top of this primitive's semantics.
func RunMany(scs []Scenario) ([]mac.Result, error) {
	results := make([]mac.Result, len(scs))
	errs := make([]error, len(scs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(scs) {
		workers = len(scs)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = scs[i].Run()
			}
		}()
	}
	for i := range scs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, errors.Join(errs...)
}
