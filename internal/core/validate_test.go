package core

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestValidateRejections: every malformed scenario fails with a typed
// *ValidationError naming the offending field, so loaders (the grid's
// scenario files) can dispatch on the failure instead of string-matching.
func TestValidateRejections(t *testing.T) {
	// base is a valid defaulted scenario the cases perturb.
	base := func() Scenario {
		return DefaultScenario(ProtoCharisma).WithDefaults()
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
		field  string // expected ValidationError.Field
		reason string // substring expected in ValidationError.Reason
	}{
		{
			name:   "zero population",
			mutate: func(sc *Scenario) { sc.NumVoice, sc.NumData = 0, 0 },
			field:  "NumVoice+NumData",
			reason: "empty traffic mix",
		},
		{
			name:   "negative voice population",
			mutate: func(sc *Scenario) { sc.NumVoice = -1 },
			field:  "NumVoice",
			reason: "negative station count",
		},
		{
			name:   "negative data population",
			mutate: func(sc *Scenario) { sc.NumData = -3 },
			field:  "NumData",
			reason: "negative station count",
		},
		{
			name:   "unknown protocol",
			mutate: func(sc *Scenario) { sc.Protocol = "aloha" },
			field:  "Protocol",
			reason: `unknown protocol "aloha"`,
		},
		{
			name:   "speed vector length mismatch",
			mutate: func(sc *Scenario) { sc.SpeedsKmh = []float64{50} },
			field:  "SpeedsKmh",
			reason: "1 speeds for",
		},
		{
			name: "negative per-station speed",
			mutate: func(sc *Scenario) {
				sc.NumVoice, sc.NumData = 2, 0
				sc.SpeedsKmh = []float64{50, -5}
			},
			field:  "SpeedsKmh",
			reason: "station 1 speed -5",
		},
		{
			name: "non-finite per-station speed",
			mutate: func(sc *Scenario) {
				sc.NumVoice, sc.NumData = 1, 1
				sc.SpeedsKmh = []float64{50, math.NaN()}
			},
			field:  "SpeedsKmh",
			reason: "station 1 speed",
		},
		{
			name:   "invalid channel parameters",
			mutate: func(sc *Scenario) { sc.Channel.SpeedKmh = -10 },
			field:  "Channel",
		},
		{
			name:   "invalid PHY parameters",
			mutate: func(sc *Scenario) { sc.PHY.Etas = sc.PHY.Etas[:len(sc.PHY.Etas)-1] },
			field:  "PHY",
		},
		{
			name:   "invalid MAC geometry",
			mutate: func(sc *Scenario) { sc.MAC.Geometry.MinislotSymbols = -1 },
			field:  "MAC",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base()
			tc.mutate(&sc)
			err := sc.Validate()
			if err == nil {
				t.Fatal("Validate accepted the malformed scenario")
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("error %T is not a *ValidationError: %v", err, err)
			}
			if verr.Field != tc.field {
				t.Fatalf("Field = %q, want %q (err: %v)", verr.Field, tc.field, err)
			}
			if tc.reason != "" && !strings.Contains(verr.Reason, tc.reason) {
				t.Fatalf("Reason %q does not mention %q", verr.Reason, tc.reason)
			}
			if !strings.Contains(err.Error(), verr.Field) {
				t.Fatalf("Error() %q does not name the field", err)
			}
		})
	}
}

// TestValidateAcceptsDefaults: the calibrated defaults and the
// zero-knob-defaulted scenario both validate for every protocol.
func TestValidateAcceptsDefaults(t *testing.T) {
	for _, p := range Protocols() {
		if err := DefaultScenario(p).Validate(); err != nil {
			t.Errorf("DefaultScenario(%s): %v", p, err)
		}
		sparse := Scenario{Protocol: p, NumVoice: 10}
		if err := sparse.WithDefaults().Validate(); err != nil {
			t.Errorf("sparse %s scenario after WithDefaults: %v", p, err)
		}
	}
}
