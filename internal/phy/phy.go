// Package phy models the paper's physical layers (§4.2, Figs. 6–7):
//
//   - the 6-mode variable-throughput adaptive bit-interleaved trellis coded
//     modulation scheme (ABICM, [15]) with normalized throughputs
//     η ∈ {1/2, 1, 2, 3, 4, 5} bits per symbol, operated in constant-BER
//     mode: adaptation thresholds are placed so each mode holds a target
//     transmission error level at its switching point, and
//   - the fixed-throughput channel encoder used by D-TDMA/FR, RAMA, RMAV
//     and DRMA: η = 1 with a deep worst-case fading margin (the classical
//     "large amount of FEC" design the paper's introduction criticizes).
//
// The MAC layers consume only the modem abstraction: a CSI → mode mapping,
// per-mode throughput (symbols needed per 160-bit packet), and a residual
// packet error probability given the channel state actually realized at
// transmission time. The BER waterfall is the standard adaptive-modulation
// exponential approximation BER(snr) = min(1/2, 0.2·exp(−λq·snr)) with λq
// calibrated so BER(θq) equals the target BER at mode q's threshold θq.
package phy

import (
	"fmt"
	"math"

	"charisma/internal/mathx"
)

// PacketBits is the information payload of one packet: the 8 kbps speech
// codec emits one 160-bit packet per 20 ms voice period (Table 1); data
// packets use the same size so slots are interchangeable.
const PacketBits = 160

// InfoSlotSymbols is the length of one information slot: at the baseline
// η = 1 mode a packet occupies exactly one slot.
const InfoSlotSymbols = 160

// Mode is one operating point of a modem.
type Mode struct {
	// Index is the mode number (0 = most robust).
	Index int
	// Eta is the normalized throughput in information bits per symbol.
	Eta float64
	// SNRThreshold is the minimum linear SNR at which the mode still
	// meets the target BER. Below it the residual error rate climbs.
	SNRThreshold float64
	// SymbolsPerPacket is ceil(PacketBits/Eta): the air time one packet
	// costs in this mode.
	SymbolsPerPacket int
	// HalfPacketsPerSlot is how many half-packets a 160-symbol slot
	// carries: ⌊2·Eta⌋. The half-packet granularity represents the η=1/2
	// mode (two slots per packet) without fractions.
	HalfPacketsPerSlot int
	// berLambda is the exponent of the BER waterfall for this mode.
	berLambda float64
}

// PacketsPerSlot returns how many whole packets one slot carries in this
// mode (0 for the half-rate mode).
func (m Mode) PacketsPerSlot() int { return m.HalfPacketsPerSlot / 2 }

// SlotsPerPacket returns how many slots one packet needs in this mode.
func (m Mode) SlotsPerPacket() int {
	if m.HalfPacketsPerSlot >= 2 {
		return 1
	}
	return 2
}

// String renders a short mode descriptor.
func (m Mode) String() string {
	return fmt.Sprintf("mode%d(η=%.1f,θ=%.1fdB)", m.Index, m.Eta, mathx.LinearToDB(m.SNRThreshold))
}

// Params configures the modem family.
type Params struct {
	// MeanSNRdB is the average received SNR Γ̄ a user with 0 dB shadowing
	// enjoys; instantaneous SNR is c²·Γ̄.
	MeanSNRdB float64
	// TargetBER is the constant-BER operating point of the adaptive
	// scheme (paper §4.2: "adaptation thresholds set optimally to
	// maintain a target transmission error level").
	TargetBER float64
	// Etas are the normalized throughputs of the adaptive modes.
	Etas []float64
	// ThresholdsDB are the corresponding adaptation thresholds in SNR dB.
	ThresholdsDB []float64
	// FixedThresholdDB is the design point of the fixed-rate (η=1)
	// encoder: chosen deep enough that only rare deep fades defeat its
	// FEC, reproducing the small low-load transmission-error floor the
	// paper's five baselines exhibit in Fig. 11.
	FixedThresholdDB float64
	// CSIMargin is a link-adaptation back-off multiplier applied to the
	// *estimated* amplitude before picking a mode, to absorb estimation
	// noise and staleness (<1 is conservative).
	CSIMargin float64
}

// DefaultParams returns the calibrated reproduction constants. They are
// chosen so that, under Rayleigh fading at the default mean SNR, the
// adaptive scheme's average normalized throughput is ≈2 — reproducing the
// paper's "D-TDMA/VR has twice the average offered throughput compared to
// D-TDMA/FR" (§3.5) — and the fixed-rate error floor sits well below the 1%
// voice QoS threshold. See DESIGN.md §3 for the derivation.
func DefaultParams() Params {
	return Params{
		MeanSNRdB:        12,
		TargetBER:        1e-5,
		Etas:             []float64{0.5, 1, 2, 3, 4, 5},
		ThresholdsDB:     []float64{-17, 0, 6, 10.8, 14.8, 18.5},
		FixedThresholdDB: -11.5,
		CSIMargin:        0.9,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if len(p.Etas) == 0 {
		return fmt.Errorf("phy: no modes configured")
	}
	if len(p.Etas) != len(p.ThresholdsDB) {
		return fmt.Errorf("phy: %d etas but %d thresholds", len(p.Etas), len(p.ThresholdsDB))
	}
	if p.TargetBER <= 0 || p.TargetBER >= 0.5 {
		return fmt.Errorf("phy: target BER %v out of (0, 0.5)", p.TargetBER)
	}
	for i := 1; i < len(p.Etas); i++ {
		if p.Etas[i] <= p.Etas[i-1] {
			return fmt.Errorf("phy: etas must increase, got %v", p.Etas)
		}
		if p.ThresholdsDB[i] <= p.ThresholdsDB[i-1] {
			return fmt.Errorf("phy: thresholds must increase, got %v", p.ThresholdsDB)
		}
	}
	if p.CSIMargin <= 0 || p.CSIMargin > 1 {
		return fmt.Errorf("phy: CSI margin %v out of (0, 1]", p.CSIMargin)
	}
	return nil
}

// PHY is the modem abstraction the MAC layer sees.
type PHY interface {
	// Name identifies the modem ("abicm" or "fixed").
	Name() string
	// Adaptive reports whether the modem adapts its mode to CSI.
	Adaptive() bool
	// Modes lists the operating points, most robust first.
	Modes() []Mode
	// MeanSNR returns the configured linear average SNR Γ̄.
	MeanSNR() float64
	// ModeForAmplitude maps an (estimated) fading amplitude to the
	// transmission mode that will be used, applying the CSI margin.
	ModeForAmplitude(amp float64) Mode
	// OutageForAmplitude reports whether the amplitude is below even the
	// most robust mode's adaptation range (paper Fig. 7a: "the adaptation
	// range of the ABICM scheme can be exceeded").
	OutageForAmplitude(amp float64) bool
	// PacketErrorProb returns the probability that one 160-bit packet
	// transmitted in mode m is corrupted, given the amplitude actually
	// realized on the air.
	PacketErrorProb(m Mode, actualAmp float64) float64
	// BER returns the instantaneous bit error rate of mode m at the
	// given linear SNR (the Fig. 7a curve family).
	BER(m Mode, snr float64) float64
}

func buildMode(index int, eta, thresholdDB, targetBER float64) Mode {
	th := mathx.DBToLinear(thresholdDB)
	return Mode{
		Index:              index,
		Eta:                eta,
		SNRThreshold:       th,
		SymbolsPerPacket:   int(math.Ceil(PacketBits / eta)),
		HalfPacketsPerSlot: int(math.Floor(2 * eta)),
		berLambda:          math.Log(0.2/targetBER) / th,
	}
}

func berOf(m Mode, snr float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	b := 0.2 * math.Exp(-m.berLambda*snr)
	if b > 0.5 {
		return 0.5
	}
	return b
}

func packetErrorProb(m Mode, actualAmp, meanSNR float64) float64 {
	snr := actualAmp * actualAmp * meanSNR
	ber := berOf(m, snr)
	// Independent bit errors after interleaving: a packet survives only
	// if all PacketBits bits do.
	return 1 - math.Pow(1-ber, PacketBits)
}

// ampCutoff returns the smallest float64 amplitude at which pred holds,
// given that pred is monotone non-decreasing in the amplitude. It seeds the
// search with the algebraic solution and then walks ulp-by-ulp to the exact
// boundary, so a lookup against the returned cutoff reproduces the original
// compare-in-SNR-space predicate for every representable amplitude — the
// property that keeps the precomputed-threshold mode lookup byte-identical
// to the scan it replaces.
func ampCutoff(seed float64, pred func(amp float64) bool) float64 {
	a := seed
	if pred(a) {
		for {
			b := math.Nextafter(a, 0)
			if !pred(b) {
				return a
			}
			a = b
		}
	}
	for !pred(a) {
		a = math.Nextafter(a, math.Inf(1))
	}
	return a
}

// Adaptive is the variable-throughput channel-adaptive ABICM modem.
type Adaptive struct {
	p       Params
	modes   []Mode
	meanSNR float64
	// ampCuts[q] is the exact minimum (margin-discounted, hence raw)
	// amplitude at which mode q's SNR threshold is met: the per-query
	// margin multiply, squaring and mean-SNR scaling of the former scan
	// are folded into construction, and ModeForAmplitude reduces to a
	// sorted lookup against precomputed linear-amplitude thresholds.
	ampCuts []float64
}

// NewAdaptive builds the ABICM modem from params; it panics on invalid
// configuration (construction-time programming error).
func NewAdaptive(p Params) *Adaptive {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	a := &Adaptive{p: p, meanSNR: mathx.DBToLinear(p.MeanSNRdB)}
	for i, eta := range p.Etas {
		a.modes = append(a.modes, buildMode(i, eta, p.ThresholdsDB[i], p.TargetBER))
	}
	for _, m := range a.modes {
		th := m.SNRThreshold
		a.ampCuts = append(a.ampCuts, ampCutoff(
			math.Sqrt(th/a.meanSNR)/p.CSIMargin,
			func(amp float64) bool {
				eff := amp * p.CSIMargin
				return eff*eff*a.meanSNR >= th
			}))
	}
	return a
}

// Name implements PHY.
func (a *Adaptive) Name() string { return "abicm" }

// Adaptive implements PHY.
func (a *Adaptive) Adaptive() bool { return true }

// Modes implements PHY.
func (a *Adaptive) Modes() []Mode { return a.modes }

// MeanSNR implements PHY.
func (a *Adaptive) MeanSNR() float64 { return a.meanSNR }

// Params returns the modem configuration.
func (a *Adaptive) Params() Params { return a.p }

// ModeForSNR returns the highest mode whose threshold the linear SNR meets,
// or the most robust mode (and outage=true) below the adaptation range.
func (a *Adaptive) ModeForSNR(snr float64) (Mode, bool) {
	best := -1
	for i := range a.modes {
		if snr >= a.modes[i].SNRThreshold {
			best = i
		}
	}
	if best < 0 {
		return a.modes[0], true
	}
	return a.modes[best], false
}

// ModeForAmplitude implements PHY: a counting pass over the precomputed
// sorted amplitude cutoffs (no per-call margin multiply, squaring or SNR
// scaling; the fixed-trip compare-and-count loop lowers to conditional
// moves rather than a data-dependent branch per mode). Byte-identical to
// the former compare-in-SNR-space scan by ampCutoff construction.
func (a *Adaptive) ModeForAmplitude(amp float64) Mode {
	k := 0
	for _, c := range a.ampCuts {
		if amp >= c {
			k++
		}
	}
	if k == 0 {
		return a.modes[0]
	}
	return a.modes[k-1]
}

// OutageForAmplitude implements PHY.
func (a *Adaptive) OutageForAmplitude(amp float64) bool {
	return amp < a.ampCuts[0]
}

// PacketErrorProb implements PHY.
func (a *Adaptive) PacketErrorProb(m Mode, actualAmp float64) float64 {
	return packetErrorProb(m, actualAmp, a.meanSNR)
}

// BER implements PHY.
func (a *Adaptive) BER(m Mode, snr float64) float64 { return berOf(m, snr) }

// ThroughputForAmplitude returns the normalized throughput η the modem
// would realize at a given amplitude — the Fig. 7b staircase.
func (a *Adaptive) ThroughputForAmplitude(amp float64) float64 {
	m, outage := a.ModeForSNR(amp * amp * a.meanSNR)
	if outage {
		return 0
	}
	return m.Eta
}

// MeanThroughputRayleigh returns E[η] under unit-mean Rayleigh fading at
// mean SNR Γ̄ — the calibration quantity behind the "twice the average
// offered throughput" claim. Computed in closed form from the exponential
// SNR distribution.
func (a *Adaptive) MeanThroughputRayleigh() float64 {
	// P(snr >= θ) = exp(-θ/Γ̄) for snr ~ Exp(Γ̄).
	tail := func(th float64) float64 { return math.Exp(-th / a.meanSNR) }
	mean := 0.0
	for i, m := range a.modes {
		pHere := tail(m.SNRThreshold)
		if i+1 < len(a.modes) {
			pHere -= tail(a.modes[i+1].SNRThreshold)
		}
		mean += m.Eta * pHere
	}
	return mean
}

// Fixed is the fixed-throughput (η = 1) channel encoder of the classical
// protocols: one packet per slot regardless of channel state, with a large
// static FEC margin.
type Fixed struct {
	p       Params
	mode    Mode
	modes   []Mode // cached single-element view; Modes is on the frame hot path
	meanSNR float64
	// outageCut is the exact minimum amplitude meeting the design-point
	// SNR (see ampCutoff).
	outageCut float64
}

// NewFixed builds the fixed-rate modem from params.
func NewFixed(p Params) *Fixed {
	if p.TargetBER <= 0 || p.TargetBER >= 0.5 {
		panic(fmt.Errorf("phy: target BER %v out of (0, 0.5)", p.TargetBER))
	}
	f := &Fixed{
		p:       p,
		mode:    buildMode(0, 1, p.FixedThresholdDB, p.TargetBER),
		meanSNR: mathx.DBToLinear(p.MeanSNRdB),
	}
	f.modes = []Mode{f.mode}
	f.outageCut = ampCutoff(math.Sqrt(f.mode.SNRThreshold/f.meanSNR),
		func(amp float64) bool { return amp*amp*f.meanSNR >= f.mode.SNRThreshold })
	return f
}

// Name implements PHY.
func (f *Fixed) Name() string { return "fixed" }

// Adaptive implements PHY.
func (f *Fixed) Adaptive() bool { return false }

// Modes implements PHY.
func (f *Fixed) Modes() []Mode { return f.modes }

// MeanSNR implements PHY.
func (f *Fixed) MeanSNR() float64 { return f.meanSNR }

// ModeForAmplitude implements PHY: the mode never changes.
func (f *Fixed) ModeForAmplitude(float64) Mode { return f.mode }

// OutageForAmplitude implements PHY: the fixed encoder is in (soft) outage
// when the SNR drops below its design point.
func (f *Fixed) OutageForAmplitude(amp float64) bool {
	return amp < f.outageCut
}

// PacketErrorProb implements PHY.
func (f *Fixed) PacketErrorProb(m Mode, actualAmp float64) float64 {
	return packetErrorProb(m, actualAmp, f.meanSNR)
}

// BER implements PHY.
func (f *Fixed) BER(m Mode, snr float64) float64 { return berOf(m, snr) }
