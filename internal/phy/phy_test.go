package phy

import (
	"math"
	"testing"
	"testing/quick"

	"charisma/internal/mathx"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Etas = nil },
		func(p *Params) { p.Etas = []float64{1, 2} }, // length mismatch
		func(p *Params) { p.TargetBER = 0 },
		func(p *Params) { p.TargetBER = 0.6 },
		func(p *Params) { p.Etas = []float64{2, 1, 3, 4, 5, 6} },
		func(p *Params) { p.ThresholdsDB = []float64{5, 0, 6, 10, 14, 18} },
		func(p *Params) { p.CSIMargin = 0 },
		func(p *Params) { p.CSIMargin = 1.5 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestSixModesWithPaperThroughputs(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	modes := a.Modes()
	if len(modes) != 6 {
		t.Fatalf("%d modes, want 6 (paper §4.2)", len(modes))
	}
	want := []float64{0.5, 1, 2, 3, 4, 5}
	for i, m := range modes {
		if m.Eta != want[i] {
			t.Fatalf("mode %d eta = %v, want %v", i, m.Eta, want[i])
		}
		if m.Index != i {
			t.Fatalf("mode index %d != %d", m.Index, i)
		}
	}
}

func TestSymbolsPerPacket(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	want := []int{320, 160, 80, 54, 40, 32}
	for i, m := range a.Modes() {
		if m.SymbolsPerPacket != want[i] {
			t.Fatalf("mode %d: %d symbols/packet, want %d", i, m.SymbolsPerPacket, want[i])
		}
	}
}

func TestHalfPacketsPerSlot(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	want := []int{1, 2, 4, 6, 8, 10}
	for i, m := range a.Modes() {
		if m.HalfPacketsPerSlot != want[i] {
			t.Fatalf("mode %d: %d half-packets/slot, want %d", i, m.HalfPacketsPerSlot, want[i])
		}
	}
}

func TestSlotsPerPacketAndPacketsPerSlot(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	m0 := a.Modes()[0]
	if m0.SlotsPerPacket() != 2 || m0.PacketsPerSlot() != 0 {
		t.Fatal("half-rate mode slot accounting wrong")
	}
	m3 := a.Modes()[3]
	if m3.SlotsPerPacket() != 1 || m3.PacketsPerSlot() != 3 {
		t.Fatal("mode 3 slot accounting wrong")
	}
}

func TestModeSelectionMonotoneInSNR(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	prop := func(rawA, rawB float64) bool {
		s1 := math.Abs(math.Mod(rawA, 1000))
		s2 := math.Abs(math.Mod(rawB, 1000))
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		m1, _ := a.ModeForSNR(s1)
		m2, _ := a.ModeForSNR(s2)
		return m1.Index <= m2.Index
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestModeSelectionAtThresholds(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	for i, m := range a.Modes() {
		got, outage := a.ModeForSNR(m.SNRThreshold)
		if got.Index != i || outage {
			t.Fatalf("at threshold of mode %d selected mode %d (outage=%v)", i, got.Index, outage)
		}
		// Just below the lowest threshold: outage.
		if i == 0 {
			_, out := a.ModeForSNR(m.SNRThreshold * 0.99)
			if !out {
				t.Fatal("below adaptation range should be outage (Fig. 7a)")
			}
		}
	}
}

func TestOutageForAmplitude(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	if !a.OutageForAmplitude(0.001) {
		t.Fatal("deep fade not flagged as outage")
	}
	if a.OutageForAmplitude(1.0) {
		t.Fatal("unit amplitude flagged as outage")
	}
}

func TestCSIMarginConservatism(t *testing.T) {
	p := DefaultParams()
	noMargin := p
	noMargin.CSIMargin = 1.0
	a := NewAdaptive(p)
	b := NewAdaptive(noMargin)
	for amp := 0.05; amp < 4; amp *= 1.07 {
		if a.ModeForAmplitude(amp).Index > b.ModeForAmplitude(amp).Index {
			t.Fatalf("margined selection more aggressive at amp=%v", amp)
		}
	}
}

func TestBERWaterfall(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	for _, m := range a.Modes() {
		// At the adaptation threshold, the target BER is met exactly.
		if got := a.BER(m, m.SNRThreshold); math.Abs(got-a.Params().TargetBER)/a.Params().TargetBER > 1e-9 {
			t.Fatalf("mode %d BER at threshold = %v, want %v", m.Index, got, a.Params().TargetBER)
		}
		// Above threshold: better. Below: worse (constant-BER operation).
		if a.BER(m, m.SNRThreshold*2) >= a.Params().TargetBER {
			t.Fatalf("mode %d BER did not improve above threshold", m.Index)
		}
		if a.BER(m, m.SNRThreshold/2) <= a.Params().TargetBER {
			t.Fatalf("mode %d BER did not degrade below threshold", m.Index)
		}
		if a.BER(m, 0) != 0.5 {
			t.Fatalf("mode %d BER at zero SNR = %v, want 0.5", m.Index, a.BER(m, 0))
		}
	}
}

func TestBERMonotoneDecreasingInSNR(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	m := a.Modes()[2]
	prev := 1.0
	for snr := 0.0; snr < 100; snr += 0.5 {
		b := a.BER(m, snr)
		if b > prev {
			t.Fatal("BER not monotone in SNR")
		}
		prev = b
	}
}

func TestPacketErrorProbBounds(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	prop := func(rawAmp float64, modeIdx uint8) bool {
		amp := math.Abs(math.Mod(rawAmp, 10))
		m := a.Modes()[int(modeIdx)%6]
		per := a.PacketErrorProb(m, amp)
		return per >= 0 && per <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketErrorAtThresholdIsSmall(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	for _, m := range a.Modes() {
		amp := math.Sqrt(m.SNRThreshold / a.MeanSNR())
		per := a.PacketErrorProb(m, amp)
		// 160 bits at BER 1e-5: PER ~ 0.16%.
		if per > 0.005 {
			t.Fatalf("mode %d PER at design point = %v, want < 0.5%%", m.Index, per)
		}
	}
}

func TestThroughputStaircase(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	if got := a.ThroughputForAmplitude(0.001); got != 0 {
		t.Fatalf("outage throughput = %v, want 0", got)
	}
	prev := -1.0
	for amp := 0.01; amp < 10; amp *= 1.1 {
		eta := a.ThroughputForAmplitude(amp)
		if eta < prev {
			t.Fatal("throughput staircase not monotone (Fig. 7b)")
		}
		prev = eta
	}
	if prev != 5 {
		t.Fatalf("max throughput = %v, want 5", prev)
	}
}

// Calibration: the adaptive PHY must offer roughly twice the fixed PHY's
// throughput under Rayleigh fading at the default mean SNR — the paper's
// §3.5 statement about D-TDMA/VR vs /FR.
func TestMeanThroughputCalibration(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	mean := a.MeanThroughputRayleigh()
	if mean < 1.8 || mean > 2.7 {
		t.Fatalf("E[eta] = %v, want ~2x the fixed rate (calibration)", mean)
	}
}

// Calibration: the fixed encoder's deep design margin keeps its average
// packet error rate under Rayleigh fading well below the 1% voice QoS
// threshold, yet clearly above the adaptive scheme's floor.
func TestFixedErrorFloorCalibration(t *testing.T) {
	f := NewFixed(DefaultParams())
	m := f.Modes()[0]
	// Integrate PER over the Rayleigh SNR distribution.
	meanSNR := f.MeanSNR()
	floor := 0.0
	const steps = 20000
	for i := 0; i < steps; i++ {
		snr := (float64(i) + 0.5) / steps * meanSNR * 8
		pdf := math.Exp(-snr/meanSNR) / meanSNR
		amp := math.Sqrt(snr / meanSNR)
		floor += f.PacketErrorProb(m, amp) * pdf * meanSNR * 8 / steps
	}
	if floor < 0.001 || floor > 0.01 {
		t.Fatalf("fixed PHY Rayleigh error floor = %v, want in [0.1%%, 1%%]", floor)
	}
}

func TestFixedPHYBasics(t *testing.T) {
	f := NewFixed(DefaultParams())
	if f.Adaptive() {
		t.Fatal("fixed PHY claims to be adaptive")
	}
	if len(f.Modes()) != 1 {
		t.Fatal("fixed PHY should have exactly one mode")
	}
	m := f.ModeForAmplitude(100)
	if m.Eta != 1 {
		t.Fatalf("fixed mode eta = %v, want 1", m.Eta)
	}
	if m.SymbolsPerPacket != InfoSlotSymbols {
		t.Fatalf("fixed mode packet = %d symbols, want one slot", m.SymbolsPerPacket)
	}
	// Mode never changes with amplitude.
	if f.ModeForAmplitude(0.0001) != m {
		t.Fatal("fixed mode varied with amplitude")
	}
	if !f.OutageForAmplitude(0.001) || f.OutageForAmplitude(1) {
		t.Fatal("fixed PHY outage detection wrong")
	}
}

func TestAdaptiveAccessors(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	if a.Name() != "abicm" || !a.Adaptive() {
		t.Fatal("adaptive accessors wrong")
	}
	if got := a.MeanSNR(); math.Abs(got-mathx.DBToLinear(DefaultParams().MeanSNRdB)) > 1e-9 {
		t.Fatalf("MeanSNR = %v", got)
	}
	f := NewFixed(DefaultParams())
	if f.Name() != "fixed" {
		t.Fatal("fixed name wrong")
	}
}

func TestModeString(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	if s := a.Modes()[1].String(); s == "" {
		t.Fatal("empty mode string")
	}
}

func TestNewAdaptivePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params did not panic")
		}
	}()
	p := DefaultParams()
	p.Etas = nil
	NewAdaptive(p)
}

var _ = []PHY{(*Adaptive)(nil), (*Fixed)(nil)} // interface conformance
