package phy

import (
	"math"
	"testing"

	"charisma/internal/rng"
)

// refModeForAmplitude is the original compare-in-SNR-space scan, kept as
// the executable specification the precomputed amplitude-cutoff lookup
// must match for every representable amplitude.
func refModeForAmplitude(a *Adaptive, amp float64) (Mode, bool) {
	eff := amp * a.p.CSIMargin
	snr := eff * eff * a.meanSNR
	best := -1
	for i := range a.modes {
		if snr >= a.modes[i].SNRThreshold {
			best = i
		}
	}
	if best < 0 {
		return a.modes[0], true
	}
	return a.modes[best], false
}

func refFixedOutage(f *Fixed, amp float64) bool {
	return amp*amp*f.meanSNR < f.mode.SNRThreshold
}

func adaptiveVariants() []*Adaptive {
	variants := []*Adaptive{NewAdaptive(DefaultParams())}
	p := DefaultParams()
	p.CSIMargin = 1
	variants = append(variants, NewAdaptive(p))
	p = DefaultParams()
	p.MeanSNRdB = 7.3
	p.CSIMargin = 0.77
	variants = append(variants, NewAdaptive(p))
	return variants
}

// TestModeLookupMatchesScanExactly sweeps dense, random, and
// ulp-neighborhood amplitudes (where a rounding difference between the
// folded and per-call predicates would first show) and demands the lookup
// agrees with the scan everywhere.
func TestModeLookupMatchesScanExactly(t *testing.T) {
	for vi, a := range adaptiveVariants() {
		check := func(amp float64) {
			wantM, wantOut := refModeForAmplitude(a, amp)
			if gotM := a.ModeForAmplitude(amp); gotM.Index != wantM.Index {
				t.Fatalf("variant %d amp=%x: mode %d, scan says %d",
					vi, math.Float64bits(amp), gotM.Index, wantM.Index)
			}
			if gotOut := a.OutageForAmplitude(amp); gotOut != wantOut {
				t.Fatalf("variant %d amp=%x: outage %v, scan says %v",
					vi, math.Float64bits(amp), gotOut, wantOut)
			}
		}
		for amp := 0.0; amp < 12; amp += 0.001 {
			check(amp)
		}
		r := rng.New(3)
		for i := 0; i < 200000; i++ {
			check(r.Float64() * 15)
		}
		// The adversarial band: a few ulps to either side of every cutoff.
		for _, cut := range a.ampCuts {
			amp := cut
			for k := 0; k < 8; k++ {
				amp = math.Nextafter(amp, 0)
			}
			for k := 0; k < 16; k++ {
				check(amp)
				amp = math.Nextafter(amp, math.Inf(1))
			}
		}
	}
}

func TestFixedOutageMatchesScanExactly(t *testing.T) {
	f := NewFixed(DefaultParams())
	check := func(amp float64) {
		if got, want := f.OutageForAmplitude(amp), refFixedOutage(f, amp); got != want {
			t.Fatalf("amp=%x: outage %v, scan says %v", math.Float64bits(amp), got, want)
		}
	}
	for amp := 0.0; amp < 4; amp += 0.0005 {
		check(amp)
	}
	amp := f.outageCut
	for k := 0; k < 8; k++ {
		amp = math.Nextafter(amp, 0)
	}
	for k := 0; k < 16; k++ {
		check(amp)
		amp = math.Nextafter(amp, math.Inf(1))
	}
}

// TestAmpCutoffBoundary pins the helper's contract directly: pred fails
// one ulp below the returned cutoff and holds at it.
func TestAmpCutoffBoundary(t *testing.T) {
	pred := func(amp float64) bool { return amp*amp >= 2 }
	cut := ampCutoff(math.Sqrt(2), pred)
	if !pred(cut) {
		t.Fatal("cutoff does not satisfy the predicate")
	}
	if pred(math.Nextafter(cut, 0)) {
		t.Fatal("cutoff is not minimal")
	}
}

func TestModeSelectionAllocFree(t *testing.T) {
	a := NewAdaptive(DefaultParams())
	if n := testing.AllocsPerRun(100, func() {
		modeSink = a.ModeForAmplitude(0.8)
	}); n != 0 {
		t.Fatalf("ModeForAmplitude allocates %v, want 0", n)
	}
}

var modeSink Mode
