package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"charisma/internal/channel"
	"charisma/internal/grid"
)

// ProgressPrinter returns a grid progress callback that renders live
// sweep status to w: one line per sweep point the moment it settles —
// replication count plus the three headline metrics with their
// across-replication CI95 half-widths, i.e. incremental panel data usable
// before the sweep's final merge — and a closing summary line. The
// printer is stateful across the sessions of one process (a multi-panel
// run attaches one session per sweep) and safe for the single subscriber
// goroutine grid.RunPoints drives it from.
func ProgressPrinter(w io.Writer) func(grid.Progress) {
	var mu sync.Mutex
	var session int64 = -1
	var reported []bool
	doneShown := false
	return func(p grid.Progress) {
		mu.Lock()
		defer mu.Unlock()
		if p.Session != session {
			session = p.Session
			reported = make([]bool, len(p.Points))
			doneShown = false
		}
		settled := 0
		for _, pt := range p.Points {
			if pt.Settled {
				settled++
			}
		}
		for _, pt := range p.Points {
			if !pt.Settled || reported[pt.Point] {
				continue
			}
			reported[pt.Point] = true
			a := pt.Aggregate
			fmt.Fprintf(w, "progress: point %d/%d settled (%d/%d): %d reps, loss=%.4g±%.2g thr=%.4g±%.2g delay=%.4g±%.2g\n",
				pt.Point+1, len(p.Points), settled, len(p.Points), a.Reps.Replications,
				a.VoiceLossRate, a.Reps.VoiceLossCI95,
				a.DataThroughputPerFrame, a.Reps.DataThroughputCI95,
				a.MeanDataDelaySec, a.Reps.DataDelayCI95)
		}
		if p.Done && !doneShown {
			doneShown = true
			fmt.Fprintf(w, "progress: sweep done: %d points, %d simulated, %d cache hits, %d crash re-queues\n",
				len(p.Points), p.Executed, p.CacheHits, p.Requeues)
		}
	}
}

// RenderPanel writes a figure panel as an aligned data table followed by an
// ASCII plot, mirroring how the paper presents each figure.
func RenderPanel(w io.Writer, p Panel) {
	fmt.Fprintf(w, "%s\n%s\n", p.Title, strings.Repeat("=", len(p.Title)))
	if len(p.Series) == 0 {
		fmt.Fprintln(w, "(empty)")
		return
	}

	fmt.Fprintf(w, "%-8s", p.XLabel)
	for _, s := range p.Series {
		fmt.Fprintf(w, " %12s", s.Label)
	}
	fmt.Fprintln(w)
	for i := range p.Series[0].X {
		fmt.Fprintf(w, "%-8g", p.Series[0].X[i])
		for _, s := range p.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, " %12.5g", s.Y[i])
			} else {
				fmt.Fprintf(w, " %12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	RenderASCIIPlot(w, p, 64, 18)
}

// RenderASCIIPlot draws the panel as a log-y scatter plot with one marker
// per protocol.
func RenderASCIIPlot(w io.Writer, p Panel, width, height int) {
	markers := "CVFDRM*+x#"
	minY, maxY := math.Inf(1), math.Inf(-1)
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			y := s.Y[i]
			if y > 0 && y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
		}
	}
	if math.IsInf(minY, 1) || maxY <= 0 || maxX == minX {
		fmt.Fprintln(w, "(no positive data to plot)")
		return
	}
	if minY == maxY {
		minY = maxY / 10
	}
	logMin, logMax := math.Log10(minY), math.Log10(maxY)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if s.Y[i] <= 0 {
				continue
			}
			col := int(float64(width-1) * (s.X[i] - minX) / (maxX - minX))
			row := int(float64(height-1) * (math.Log10(s.Y[i]) - logMin) / (logMax - logMin))
			row = height - 1 - row
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}
	for r, line := range grid {
		level := math.Pow(10, logMax-(logMax-logMin)*float64(r)/float64(height-1))
		fmt.Fprintf(w, "%10.3g |%s|\n", level, string(line))
	}
	fmt.Fprintf(w, "%10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%10s  %-10g%s%10g\n", "", minX, strings.Repeat(" ", width-20), maxX)
	fmt.Fprintf(w, "legend: ")
	for si, s := range p.Series {
		fmt.Fprintf(w, "%c=%s ", markers[si%len(markers)], s.Label)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
}

// RenderCapacity writes the paper-style capacity summary ("protocol X
// supports N voice users at the 1 percent threshold").
func RenderCapacity(w io.Writer, p Panel, threshold float64) {
	caps := Capacity(p, threshold)
	type kv struct {
		name string
		cap  float64
	}
	var list []kv
	for k, v := range caps {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool {
		a, b := list[i].cap, list[j].cap
		if math.IsNaN(a) {
			a = -1
		}
		if math.IsNaN(b) {
			b = -1
		}
		return a > b
	})
	fmt.Fprintf(w, "capacity at the %.0f%% voice loss threshold:\n", threshold*100)
	for _, e := range list {
		if math.IsNaN(e.cap) {
			fmt.Fprintf(w, "  %-11s (no crossing in sweep range)\n", e.name)
			continue
		}
		fmt.Fprintf(w, "  %-11s ≈ %.0f voice users\n", e.name, e.cap)
	}
	fmt.Fprintln(w)
}

// RenderTrace writes a Fig. 5-style fading trace table (decimated).
func RenderTrace(w io.Writer, tr []channel.TracePoint, every int) {
	fmt.Fprintln(w, "Fig.5 — sample of channel fading (fast fading on long-term shadowing)")
	fmt.Fprintf(w, "%10s %12s %12s\n", "t (ms)", "c(t) (dB)", "shadow (dB)")
	for i := 0; i < len(tr); i += every {
		fmt.Fprintf(w, "%10.1f %12.2f %12.2f\n", tr[i].T.Milliseconds(), tr[i].AmpDB, tr[i].ShadowDB)
	}
	fmt.Fprintln(w)
}

// RenderABICM writes the Fig. 7 curves as a table.
func RenderABICM(w io.Writer, pts []ABICMPoint, every int) {
	fmt.Fprintln(w, "Fig.7 — ABICM instantaneous BER (a) and throughput staircase (b) vs CSI")
	fmt.Fprintf(w, "%10s %9s %5s %5s %12s %12s %7s\n",
		"CSI amp", "SNR dB", "mode", "η", "BER", "fixed BER", "outage")
	for i := 0; i < len(pts); i += every {
		p := pts[i]
		fmt.Fprintf(w, "%10.4f %9.2f %5d %5.1f %12.3e %12.3e %7v\n",
			p.CSIAmp, p.SNRdB, p.Mode, p.Eta, p.BER, p.FixedBER, p.InOutage)
	}
	fmt.Fprintln(w)
}

// RenderSpeed writes the §5.3.3 speed-sensitivity table.
func RenderSpeed(w io.Writer, pts []SpeedPoint) {
	fmt.Fprintln(w, "§5.3.3 — CHARISMA voice loss vs mobile speed")
	fmt.Fprintf(w, "%12s %12s\n", "speed (km/h)", "Ploss")
	for _, p := range pts {
		fmt.Fprintf(w, "%12g %11.4f%%\n", p.SpeedKmh, 100*p.VoiceLoss)
	}
	fmt.Fprintln(w)
}

// RenderTable1 writes the parameter table.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1 — simulation parameters")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-32s %s\n", r.Parameter, r.Value)
	}
	fmt.Fprintln(w)
}
