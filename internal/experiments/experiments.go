// Package experiments regenerates every data-bearing table and figure of
// the paper's evaluation (§5): the Fig. 11 voice-loss panels, the Fig. 12
// data-throughput panels, the Fig. 13 data-delay panels, the Fig. 5 fading
// trace, the Fig. 7 ABICM curves, Table 1, and the §5.3.3 mobile-speed
// sensitivity study. Panels fan out across protocols, sweep points and
// independent replications as one sweep-grid session (internal/grid):
// replications are content-addressed — a re-run sweep with a cache
// directory is a cache walk — optionally precision-adaptive, and servable
// to remote charisma-worker processes. Error bars are across-replication
// Student-t CI95 half-widths.
package experiments

import (
	"context"
	"fmt"
	"math"

	"charisma/internal/channel"
	"charisma/internal/core"
	"charisma/internal/grid"
	"charisma/internal/mac"
	"charisma/internal/phy"
	"charisma/internal/sim"
	"charisma/internal/stats"
)

// RunConfig controls simulation effort for the sweep experiments.
type RunConfig struct {
	Seed        int64
	WarmupSec   float64
	DurationSec float64
	// Replications is the number of independent replications per sweep
	// point (values below 1 mean 1). Error bars come from the
	// across-replication Student-t CI95. When PrecisionRel is set this is
	// the initial count the adaptive controller grows from.
	Replications int
	// Workers bounds the sweep's worker pool (values below 1 mean one
	// per core). Purely a throughput knob: results are worker-invariant.
	Workers int
	// Protocols restricts the comparison set (default: all six).
	Protocols []string

	// CacheDir, when set, roots the on-disk content-addressed replication
	// cache: re-running a sweep (or re-anchoring a figure) reuses every
	// previously simulated (spec, seed) pair.
	CacheDir string
	// Cache overrides the per-sweep cache built from CacheDir. Set it
	// once per process (the cmd does) so the in-memory tier spans panels:
	// Fig. 12 and Fig. 13 sweep identical scenarios and then share every
	// replication instead of re-simulating.
	Cache grid.Cache
	// PrecisionRel is the adaptive-replication target ε: each sweep point
	// grows its replication count until every headline metric's
	// across-replication CI95 half-width is ≤ ε·|mean| (or MaxReplications
	// is hit). Zero keeps the fixed Replications count.
	PrecisionRel float64
	// MaxReplications caps adaptive growth (default grid.DefaultMaxReps).
	MaxReplications int
	// Server, when non-nil, exposes every sweep session to remote grid
	// workers alongside (or instead of) the local pool.
	Server *grid.Server
	// RemoteOnly skips the in-process loopback workers: all simulation is
	// done by workers attached through Server.
	RemoteOnly bool
	// AuditFrac re-executes this fraction of remotely produced results
	// locally and quarantines any worker whose result diverges —
	// byzantine-result defense (see grid.Audit). Zero disables auditing.
	AuditFrac float64
	// Stats, when non-nil, accumulates simulated/cache-hit counts across
	// the sweeps of this config.
	Stats *grid.SweepStats
	// OnProgress, when non-nil, receives live progress snapshots while a
	// sweep runs — per-point partial aggregates with CI95 half-widths as
	// replications settle — so panels are observable (and their settled
	// points usable) before the final merge. ProgressPrinter renders them.
	OnProgress func(grid.Progress)
}

// DefaultRunConfig returns publication-effort settings: 30 measured seconds
// per point, 8 independent replications.
func DefaultRunConfig() RunConfig {
	return RunConfig{Seed: 1, WarmupSec: 2, DurationSec: 30, Replications: 8}
}

// QuickRunConfig returns smoke-test effort (a few seconds per point, two
// replications), used so every figure stays regenerable in CI time.
func QuickRunConfig() RunConfig {
	return RunConfig{Seed: 1, WarmupSec: 1, DurationSec: 5, Replications: 2}
}

func (rc RunConfig) protocols() []string {
	if len(rc.Protocols) > 0 {
		return rc.Protocols
	}
	return core.Protocols()
}

func (rc RunConfig) replications() int {
	if rc.Replications < 1 {
		return 1
	}
	return rc.Replications
}

// Panel is one figure panel: a family of per-protocol series over a sweep.
type Panel struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []stats.Series
}

// Metric selects which measurement a sweep records.
type Metric int

// The paper's three performance metrics (§5).
const (
	MetricVoiceLoss Metric = iota
	MetricDataThroughput
	MetricDataDelay
)

func metricValue(m Metric, r mac.Result) float64 {
	switch m {
	case MetricVoiceLoss:
		return r.VoiceLossRate
	case MetricDataThroughput:
		return r.DataThroughputPerFrame
	default:
		return r.MeanDataDelaySec
	}
}

// metricCI returns the across-replication CI95 half-width matching a
// metric (the within-run interval for delay when only one rep ran).
func metricCI(m Metric, r mac.Result) float64 {
	switch m {
	case MetricVoiceLoss:
		return r.Reps.VoiceLossCI95
	case MetricDataThroughput:
		return r.Reps.DataThroughputCI95
	default:
		return r.DataDelayCI95
	}
}

// runScenarios executes one sweep's scenarios as a grid session: every
// (scenario, replication) pair is resolved against the cache, deduplicated
// in flight, executed by the loopback pool and any attached remote
// workers, and merged in rep order — byte-identical to the in-process
// run.Runner plan it replaces.
func (rc RunConfig) runScenarios(ctx context.Context, scs []core.Scenario) ([]mac.Result, error) {
	points := make([]grid.Point, len(scs))
	for i, sc := range scs {
		points[i] = grid.Point{Spec: grid.ScenarioSpec(sc), Replications: rc.replications()}
	}
	return rc.runPoints(ctx, points)
}

// sweep runs (protocols × xs × replications) cells as one grid session and
// collects one metric per point with its across-replication error bar.
func sweep(ctx context.Context, rc RunConfig, metric Metric, xs []int, build func(proto string, x int) core.Scenario) ([]stats.Series, error) {
	protos := rc.protocols()
	var scs []core.Scenario
	for _, p := range protos {
		for _, x := range xs {
			scs = append(scs, build(p, x))
		}
	}
	results, err := rc.runScenarios(ctx, scs)
	if err != nil {
		return nil, err
	}
	var out []stats.Series
	i := 0
	for _, p := range protos {
		s := stats.Series{Label: p}
		for _, x := range xs {
			r := results[i]
			i++
			s.Append(float64(x), metricValue(metric, r), metricCI(metric, r))
		}
		out = append(out, s)
	}
	return out, nil
}

// DefaultVoiceSweep is the Fig. 11 x-axis (number of voice users).
func DefaultVoiceSweep() []int { return []int{20, 40, 60, 80, 100, 120, 140, 160} }

// DefaultDataSweep is the Fig. 12/13 x-axis (number of data users).
func DefaultDataSweep() []int { return []int{2, 5, 10, 15, 20, 25, 30} }

// VoiceLossPanel reproduces one Fig. 11 panel: voice packet loss rate
// versus the number of voice users, for a fixed data population and queue
// setting.
func VoiceLossPanel(ctx context.Context, id string, nd int, queue bool, nvs []int, rc RunConfig) (Panel, error) {
	if nvs == nil {
		nvs = DefaultVoiceSweep()
	}
	series, err := sweep(ctx, rc, MetricVoiceLoss, nvs, func(proto string, nv int) core.Scenario {
		sc := core.DefaultScenario(proto)
		sc.NumVoice, sc.NumData = nv, nd
		sc.UseQueue = queue
		sc.Seed = rc.Seed
		sc.WarmupSec, sc.DurationSec = rc.WarmupSec, rc.DurationSec
		return sc
	})
	if err != nil {
		return Panel{}, err
	}
	return Panel{
		ID:     id,
		Title:  fmt.Sprintf("Fig.11%s — voice packet loss vs Nv (Nd=%d, queue=%v)", id[len(id)-1:], nd, queue),
		XLabel: "voice users Nv",
		YLabel: "Ploss",
		Series: series,
	}, nil
}

// DataPanel reproduces one Fig. 12 (throughput) or Fig. 13 (delay) panel:
// the metric versus the number of data users, for a fixed voice population
// and queue setting.
func DataPanel(ctx context.Context, id string, metric Metric, nv int, queue bool, nds []int, rc RunConfig) (Panel, error) {
	if nds == nil {
		nds = DefaultDataSweep()
	}
	series, err := sweep(ctx, rc, metric, nds, func(proto string, nd int) core.Scenario {
		sc := core.DefaultScenario(proto)
		sc.NumVoice, sc.NumData = nv, nd
		sc.UseQueue = queue
		sc.Seed = rc.Seed
		sc.WarmupSec, sc.DurationSec = rc.WarmupSec, rc.DurationSec
		return sc
	})
	if err != nil {
		return Panel{}, err
	}
	name, ylabel := "Fig.12", "data throughput γ (pkt/frame)"
	if metric == MetricDataDelay {
		name, ylabel = "Fig.13", "mean data delay (s)"
	}
	return Panel{
		ID:     id,
		Title:  fmt.Sprintf("%s%s — %s vs Nd (Nv=%d, queue=%v)", name, id[len(id)-1:], ylabel, nv, queue),
		XLabel: "data users Nd",
		YLabel: ylabel,
		Series: series,
	}, nil
}

// PanelSpec identifies one of the paper's 18 sweep panels.
type PanelSpec struct {
	ID     string
	Figure int // 11, 12 or 13
	Fixed  int // Nd for Fig. 11 panels; Nv for Fig. 12/13 panels
	Queue  bool
}

// PanelSpecs enumerates every sweep panel of Figs. 11–13 in the paper's
// (a)–(f) order.
func PanelSpecs() []PanelSpec {
	var specs []PanelSpec
	for _, fig := range []int{11, 12, 13} {
		letters := "abcdef"
		for i, fixed := range []int{0, 0, 10, 10, 20, 20} {
			specs = append(specs, PanelSpec{
				ID:     fmt.Sprintf("fig%d%c", fig, letters[i]),
				Figure: fig,
				Fixed:  fixed,
				Queue:  i%2 == 1,
			})
		}
	}
	return specs
}

// RunPanel executes one panel by spec.
func RunPanel(ctx context.Context, spec PanelSpec, rc RunConfig) (Panel, error) {
	switch spec.Figure {
	case 11:
		return VoiceLossPanel(ctx, spec.ID, spec.Fixed, spec.Queue, nil, rc)
	case 12:
		return DataPanel(ctx, spec.ID, MetricDataThroughput, spec.Fixed, spec.Queue, nil, rc)
	case 13:
		return DataPanel(ctx, spec.ID, MetricDataDelay, spec.Fixed, spec.Queue, nil, rc)
	default:
		return Panel{}, fmt.Errorf("experiments: unknown figure %d", spec.Figure)
	}
}

// Capacity summarizes a Fig. 11 panel the way the paper's §5.1 text does:
// the interpolated number of voice users each protocol supports at the 1%
// packet loss threshold.
func Capacity(p Panel, threshold float64) map[string]float64 {
	out := make(map[string]float64, len(p.Series))
	for _, s := range p.Series {
		out[s.Label] = s.CrossingX(threshold, false)
	}
	return out
}

// FadingTrace reproduces Fig. 5: a two-second sample of combined fading
// (fast fading superimposed on shadowing), sampled once per frame.
func FadingTrace(seed int64, seconds float64) []channel.TracePoint {
	p := channel.DefaultParams()
	n := int(seconds * 400) // one sample per 2.5 ms frame
	return channel.Trace(p, seed, 800, n)
}

// ABICMPoint is one x-sample of the Fig. 7 curves.
type ABICMPoint struct {
	CSIAmp   float64
	SNRdB    float64
	Mode     int
	Eta      float64 // Fig. 7b staircase
	BER      float64 // Fig. 7a instantaneous BER at the selected mode
	InOutage bool
	FixedBER float64 // the fixed encoder's BER at the same CSI
}

// ABICMCurves reproduces Fig. 7: instantaneous BER and normalized
// throughput of the adaptive scheme across the CSI range.
func ABICMCurves(n int) []ABICMPoint {
	a := phy.NewAdaptive(phy.DefaultParams())
	f := phy.NewFixed(phy.DefaultParams())
	out := make([]ABICMPoint, 0, n)
	for i := 0; i < n; i++ {
		// Log-spaced amplitude from -30 dB to +15 dB.
		db := -30 + 45*float64(i)/float64(n-1)
		amp := math.Pow(10, db/20)
		snr := amp * amp * a.MeanSNR()
		m, outage := a.ModeForSNR(snr)
		eta := m.Eta
		if outage {
			eta = 0
		}
		out = append(out, ABICMPoint{
			CSIAmp:   amp,
			SNRdB:    10 * math.Log10(snr),
			Mode:     m.Index,
			Eta:      eta,
			BER:      a.BER(m, snr),
			InOutage: outage,
			FixedBER: f.BER(f.Modes()[0], snr),
		})
	}
	return out
}

// SpeedPoint is one mobile-speed sample of the §5.3.3 study.
type SpeedPoint struct {
	SpeedKmh  float64
	VoiceLoss float64
}

// SpeedSweep reproduces the §5.3.3 observation: CHARISMA's performance is
// nearly flat from 10 to 50 km/h and degrades only slightly (<5% relative)
// at 80 km/h.
func SpeedSweep(ctx context.Context, nv int, speeds []float64, rc RunConfig) ([]SpeedPoint, error) {
	if speeds == nil {
		speeds = []float64{10, 20, 30, 40, 50, 60, 70, 80}
	}
	var scs []core.Scenario
	for _, v := range speeds {
		sc := core.DefaultScenario(core.ProtoCharisma)
		sc.NumVoice = nv
		sc.Seed = rc.Seed
		sc.WarmupSec, sc.DurationSec = rc.WarmupSec, rc.DurationSec
		sc.Channel.SpeedKmh = v
		scs = append(scs, sc)
	}
	results, err := rc.runScenarios(ctx, scs)
	if err != nil {
		return nil, err
	}
	out := make([]SpeedPoint, len(speeds))
	for i, v := range speeds {
		out[i] = SpeedPoint{SpeedKmh: v, VoiceLoss: results[i].VoiceLossRate}
	}
	return out, nil
}

// Table1Row is one parameter row of the paper's Table 1.
type Table1Row struct{ Parameter, Value string }

// Table1 reproduces the simulation-parameter table (readable entries from
// the paper; reconstructed entries marked, per DESIGN.md §3).
func Table1() []Table1Row {
	g := mac.DefaultConfig()
	ch := channel.DefaultParams()
	ph := phy.DefaultParams()
	return []Table1Row{
		{"transmission bandwidth", "320 kHz"},
		{"frame duration", fmt.Sprintf("%.1f ms (%d symbols)", g.Geometry.Duration().Milliseconds(), g.Geometry.FrameSymbols)},
		{"speech source rate", "8 kbps (one 160-bit packet / 20 ms)"},
		{"voice packet deadline", "20 ms"},
		{"mean talkspurt / silence", "1.0 s / 1.35 s (exponential)"},
		{"data burst arrivals", "exponential, mean 1 s"},
		{"data burst size", "exponential, mean 100 packets"},
		{"mean / max mobile speed", fmt.Sprintf("%.0f / 80 km/h (Doppler %g Hz)", ch.SpeedKmh, ch.Doppler())},
		{"shadowing", fmt.Sprintf("log-normal, σ=%g dB, ~%g s coherence", ch.ShadowSigmaDB, ch.ShadowCoherenceSec)},
		{"ABICM modes (η)", "1/2, 1, 2, 3, 4, 5 bits/symbol"},
		{"ABICM target BER", fmt.Sprintf("%g (constant-BER operation)", ph.TargetBER)},
		{"mean link SNR Γ̄ *", fmt.Sprintf("%g dB", ph.MeanSNRdB)},
		{"permission prob. pv / pd *", fmt.Sprintf("%g / %g", g.PermVoice, g.PermData)},
		{"CHARISMA Nr / Nb *", fmt.Sprintf("%d request + %d pilot minislots", g.Geometry.CharismaRequestSlots, g.Geometry.CharismaPilotSlots)},
		{"information subframe", fmt.Sprintf("%d symbols (4 slot-equivalents)", g.Geometry.CharismaInfoSymbols())},
		{"D-TDMA Nr / Ni *", fmt.Sprintf("%d / %d", g.Geometry.DTDMARequestSlots, g.Geometry.DTDMAInfoSlots)},
		{"RAMA Na / Ni *", fmt.Sprintf("%d / %d", g.Geometry.RAMAAuctionSlots, g.Geometry.RAMAInfoSlots)},
		{"DRMA Nk / Nx *", fmt.Sprintf("%d / %d", g.Geometry.DRMAInfoSlots, g.Geometry.DRMAMinislotsPerSlot)},
		{"RMAV Pmax", fmt.Sprintf("%d", g.Geometry.RMAVMaxGrantSlots)},
		{"CSI validity / est. noise *", fmt.Sprintf("%d frames / %g", g.CSIValidityFrames, g.CSIEstNoiseStd)},
		{"BS request queue capacity *", fmt.Sprintf("%d", g.QueueCap)},
		{"(*) reconstructed", "unreadable in the source scan; see DESIGN.md §3"},
	}
}

// internal reference keeps the sim package linked for the symbol-clock
// constants documented throughout.
var _ = sim.Second
