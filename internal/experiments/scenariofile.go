package experiments

// Scenario-file execution: a JSONL scenario file (grid.LoadScenarioPath)
// runs through exactly the sweep-grid pipeline the Go-coded panels use —
// same cache, same precision controller, same remote workers — so a
// figure expressed as a data file produces byte-identical results to its
// Go-coded equivalent.

import (
	"context"
	"fmt"
	"io"

	"charisma/internal/grid"
	"charisma/internal/mac"
)

// runPoints drives prepared sweep points through the grid under this
// config's cache/precision/worker/remote settings.
func (rc RunConfig) runPoints(ctx context.Context, points []grid.Point) ([]mac.Result, error) {
	cache := rc.Cache
	if cache == nil {
		cache = grid.NewCache(rc.CacheDir)
	}
	return grid.RunPoints(ctx, points, grid.DriveConfig{
		Cache:      cache,
		Precision:  grid.Precision{TargetRel: rc.PrecisionRel, MaxReps: rc.MaxReplications},
		Workers:    rc.Workers,
		Server:     rc.Server,
		RemoteOnly: rc.RemoteOnly,
		Audit:      grid.Audit{Frac: rc.AuditFrac, Seed: rc.Seed},
		Stats:      rc.Stats,
		OnProgress: rc.OnProgress,
	})
}

// RunScenarioFile loads a JSONL scenario file, expands its sweep axes and
// drives every point through the grid. overrideReps > 0 replaces each
// point's replication count (the CLI's -reps flag); 0 keeps the file's
// per-point counts.
func RunScenarioFile(ctx context.Context, path string, overrideReps int, rc RunConfig) ([]grid.Point, []mac.Result, error) {
	pts, err := grid.LoadScenarioPath(path)
	if err != nil {
		return nil, nil, err
	}
	if overrideReps > 0 {
		for i := range pts {
			pts[i].Replications = overrideReps
		}
	}
	results, err := rc.runPoints(ctx, pts)
	if err != nil {
		return nil, nil, err
	}
	return pts, results, nil
}

// RenderScenarioResults writes one aligned row per expanded sweep point:
// the spec's identity (kind, protocol, populations, seed) and the three
// headline metrics with across-replication CI95 half-widths.
func RenderScenarioResults(w io.Writer, pts []grid.Point, results []mac.Result) {
	fmt.Fprintf(w, "%-4s %-10s %-11s %5s %5s %6s %5s %5s  %-22s %-22s %-16s\n",
		"#", "kind", "protocol", "Nv", "Nd", "queue", "cells", "reps", "Ploss", "γ(pkt/frame)", "Dd(ms)")
	for i, pt := range pts {
		var nv, nd, cells int
		var queue bool
		switch pt.Spec.Kind {
		case grid.KindScenario:
			sc := pt.Spec.Scenario
			nv, nd, queue = sc.NumVoice, sc.NumData, sc.UseQueue
		case grid.KindMulticell:
			mp := pt.Spec.Multicell
			nv, nd, queue, cells = mp.NumVoice, mp.NumData, mp.UseQueue, mp.Cells
		}
		if i >= len(results) {
			break
		}
		r := results[i]
		fmt.Fprintf(w, "%-4d %-10s %-11s %5d %5d %6v %5d %5d  %9.6f ±%-10.4g %9.4f ±%-10.4g %7.2f ±%-7.3g\n",
			i, pt.Spec.Kind, r.Protocol, nv, nd, queue, cells, r.Reps.Replications,
			r.VoiceLossRate, r.Reps.VoiceLossCI95,
			r.DataThroughputPerFrame, r.Reps.DataThroughputCI95,
			1e3*r.MeanDataDelaySec, 1e3*r.Reps.DataDelayCI95)
	}
}
