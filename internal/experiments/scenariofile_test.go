package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"charisma/internal/core"
	"charisma/internal/grid"
	"charisma/internal/mac"
)

// panelConfig is the reduced fig11a-style effort the byte-identity tests
// share: two protocols, two sweep points, two replications.
func panelConfig() (RunConfig, []int) {
	rc := RunConfig{
		Seed:         3,
		WarmupSec:    0.25,
		DurationSec:  1,
		Replications: 2,
		Protocols:    []string{core.ProtoCharisma, core.ProtoRAMA},
	}
	return rc, []int{20, 40}
}

// panelPoints builds the Go-coded sweep points exactly the way sweep()
// does for a Fig. 11 panel: protocol-major, Nv-minor, DefaultScenario
// base with the config's seed and measurement window.
func panelPoints(rc RunConfig, nvs []int) []grid.Point {
	var pts []grid.Point
	for _, p := range rc.Protocols {
		for _, nv := range nvs {
			sc := core.DefaultScenario(p)
			sc.NumVoice, sc.NumData = nv, 0
			sc.UseQueue = false
			sc.Seed = rc.Seed
			sc.WarmupSec, sc.DurationSec = rc.WarmupSec, rc.DurationSec
			pts = append(pts, grid.Point{Spec: grid.ScenarioSpec(sc), Replications: rc.Replications})
		}
	}
	return pts
}

// panelJSONL is the same sweep as a hand-written scenario file: one line
// per protocol with a numVoice sweep axis, relying on the loader's
// defaulting to reconstruct DefaultScenario's channel/PHY/MAC parameters.
const panelJSONL = `# fig11a-style panel: Ploss vs Nv, Nd=0, no queue
{"scenario": {"protocol": "charisma", "numVoice": {"sweep": [20, 40]}, "numData": 0, "seed": 3, "warmupSec": 0.25, "durationSec": 1}, "replications": 2}
{"scenario": {"protocol": "rama", "numVoice": {"sweep": [20, 40]}, "numData": 0, "seed": 3, "warmupSec": 0.25, "durationSec": 1}, "replications": 2}
`

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertSameResults asserts two result slices are byte-identical under
// the canonical JSON encoding, reporting the first diverging point.
func assertSameResults(t *testing.T, label string, want, got []mac.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := mustJSON(t, want[i]), mustJSON(t, got[i])
		if !bytes.Equal(w, g) {
			t.Errorf("%s: point %d diverged:\nwant %s\ngot  %s", label, i, w, g)
		}
	}
}

// TestScenarioFileMatchesGoCodedPanel is the tentpole's acceptance
// criterion: a figure-panel sweep expressed as a .jsonl file produces
// byte-identical results to the equivalent Go-coded panel — both for a
// hand-written file (sweep axes + loader defaulting) and for a file
// round-tripped through WriteScenarioFile.
func TestScenarioFileMatchesGoCodedPanel(t *testing.T) {
	ctx := context.Background()
	rc, nvs := panelConfig()
	goPoints := panelPoints(rc, nvs)
	want, err := rc.runPoints(ctx, goPoints)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()

	// Hand-written sweep file: sparse documents, loader defaults fill in
	// the rest. Spec hashes differ from the Go-coded points (the sparse
	// scenario hashes before defaulting) but the sample paths must not.
	hand := filepath.Join(dir, "hand.jsonl")
	if err := os.WriteFile(hand, []byte(panelJSONL), 0o644); err != nil {
		t.Fatal(err)
	}
	pts, got, err := RunScenarioFile(ctx, hand, 0, rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(goPoints) {
		t.Fatalf("hand-written file expanded to %d points, want %d", len(pts), len(goPoints))
	}
	assertSameResults(t, "hand-written file", want, got)

	// WriteScenarioFile round trip: the file carries the full specs, so
	// even the content hashes must survive.
	var buf bytes.Buffer
	if err := grid.WriteScenarioFile(&buf, goPoints); err != nil {
		t.Fatal(err)
	}
	gen := filepath.Join(dir, "gen.jsonl")
	if err := os.WriteFile(gen, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	pts2, got2, err := RunScenarioFile(ctx, gen, 0, rc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range goPoints {
		wh, err := goPoints[i].Spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		gh, err := pts2[i].Spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if wh != gh {
			t.Fatalf("round-tripped point %d hash %s, want %s", i, gh, wh)
		}
	}
	assertSameResults(t, "WriteScenarioFile round trip", want, got2)
}

// TestScenarioFileMatchesOverHTTPGrid runs the same hand-written panel
// file remote-only through a real grid.Server and a real grid.Worker over
// HTTP, and asserts the results are byte-identical to the in-process run
// — the scenario-file path composes with the distributed grid.
func TestScenarioFileMatchesOverHTTPGrid(t *testing.T) {
	ctx := context.Background()
	rc, nvs := panelConfig()
	want, err := rc.runPoints(ctx, panelPoints(rc, nvs))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "panel.jsonl")
	if err := os.WriteFile(path, []byte(panelJSONL), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := grid.NewServer()
	hs := httptest.NewServer(srv)
	defer hs.Close()
	workerDone := make(chan error, 1)
	go func() {
		w := grid.Worker{Coordinator: hs.URL, ID: "scenario-test", Parallel: 2, Poll: 5 * time.Millisecond}
		workerDone <- w.Run(context.Background())
	}()

	rc.Server = srv
	rc.RemoteOnly = true
	_, got, err := RunScenarioFile(ctx, path, 0, rc)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // 410s the worker out of its poll loop
	if err := <-workerDone; err != nil {
		t.Fatalf("grid worker: %v", err)
	}
	assertSameResults(t, "HTTP grid", want, got)
}
