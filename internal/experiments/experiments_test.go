package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"charisma/internal/core"
	"charisma/internal/stats"
)

func tinyRC() RunConfig {
	return RunConfig{Seed: 1, WarmupSec: 0.5, DurationSec: 1.5}
}

func TestPanelSpecsEnumerateAllEighteen(t *testing.T) {
	specs := PanelSpecs()
	if len(specs) != 18 {
		t.Fatalf("%d specs, want 18 (Figs. 11-13 x panels a-f)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.ID] {
			t.Fatalf("duplicate spec %s", s.ID)
		}
		seen[s.ID] = true
		if s.Figure != 11 && s.Figure != 12 && s.Figure != 13 {
			t.Fatalf("bad figure %d", s.Figure)
		}
	}
	for _, id := range []string{"fig11a", "fig11f", "fig12c", "fig13e"} {
		if !seen[id] {
			t.Fatalf("missing spec %s", id)
		}
	}
}

func TestVoiceLossPanelShape(t *testing.T) {
	rc := tinyRC()
	rc.Protocols = []string{core.ProtoCharisma, core.ProtoRAMA}
	p, err := VoiceLossPanel(context.Background(), "fig11a", 0, false, []int{10, 30}, rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 2 {
		t.Fatalf("%d series", len(p.Series))
	}
	for _, s := range p.Series {
		if len(s.X) != 2 || len(s.Y) != 2 {
			t.Fatalf("series %s has %d points", s.Label, len(s.X))
		}
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("loss %v out of range", y)
			}
		}
	}
	if !strings.Contains(p.Title, "Fig.11a") {
		t.Fatalf("title %q", p.Title)
	}
}

func TestDataPanelMetrics(t *testing.T) {
	rc := tinyRC()
	rc.Protocols = []string{core.ProtoCharisma}
	tp, err := DataPanel(context.Background(), "fig12a", MetricDataThroughput, 0, false, []int{5}, rc)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Series[0].Y[0] <= 0 {
		t.Fatal("no data throughput measured")
	}
	dp, err := DataPanel(context.Background(), "fig13a", MetricDataDelay, 0, false, []int{5}, rc)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Series[0].Y[0] < 0 {
		t.Fatal("negative delay")
	}
	if !strings.Contains(dp.Title, "Fig.13") {
		t.Fatalf("title %q", dp.Title)
	}
}

func TestRunPanelDispatch(t *testing.T) {
	rc := tinyRC()
	rc.Protocols = []string{core.ProtoRAMA}
	for _, spec := range []PanelSpec{
		{ID: "fig11a", Figure: 11},
		{ID: "fig12a", Figure: 12},
		{ID: "fig13a", Figure: 13},
	} {
		// Restrict sweeps through the per-figure defaults: patch via the
		// panel helpers directly for speed.
		var err error
		switch spec.Figure {
		case 11:
			_, err = VoiceLossPanel(context.Background(), spec.ID, 0, false, []int{10}, rc)
		case 12:
			_, err = DataPanel(context.Background(), spec.ID, MetricDataThroughput, 0, false, []int{3}, rc)
		case 13:
			_, err = DataPanel(context.Background(), spec.ID, MetricDataDelay, 0, false, []int{3}, rc)
		}
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
	}
	if _, err := RunPanel(context.Background(), PanelSpec{Figure: 9}, rc); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestCapacityExtraction(t *testing.T) {
	p := Panel{Series: []stats.Series{{Label: "x"}}}
	p.Series[0].Append(10, 0.001, 0)
	p.Series[0].Append(20, 0.02, 0)
	caps := Capacity(p, 0.01)
	if math.IsNaN(caps["x"]) {
		t.Fatal("no crossing found")
	}
	if caps["x"] < 10 || caps["x"] > 20 {
		t.Fatalf("capacity %v outside sweep", caps["x"])
	}
}

func TestFadingTraceLengthAndDeterminism(t *testing.T) {
	a := FadingTrace(1, 1.0)
	if len(a) != 400 {
		t.Fatalf("%d samples, want 400", len(a))
	}
	b := FadingTrace(1, 1.0)
	if a[123] != b[123] {
		t.Fatal("trace not deterministic")
	}
}

func TestABICMCurvesMonotoneStaircase(t *testing.T) {
	pts := ABICMCurves(100)
	if len(pts) != 100 {
		t.Fatalf("%d points", len(pts))
	}
	prev := -1.0
	for _, p := range pts {
		if p.Eta < prev {
			t.Fatal("staircase not monotone")
		}
		prev = p.Eta
		if p.BER < 0 || p.BER > 0.5 || p.FixedBER < 0 || p.FixedBER > 0.5 {
			t.Fatal("BER out of range")
		}
	}
	if !pts[0].InOutage {
		t.Fatal("lowest CSI not in outage")
	}
}

func TestSpeedSweepRuns(t *testing.T) {
	pts, err := SpeedSweep(context.Background(), 10, []float64{10, 80}, tinyRC())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].SpeedKmh != 10 || pts[1].SpeedKmh != 80 {
		t.Fatalf("speed points wrong: %+v", pts)
	}
}

func TestTable1HasReconstructionMarkers(t *testing.T) {
	rows := Table1()
	if len(rows) < 15 {
		t.Fatalf("table too short: %d rows", len(rows))
	}
	marked := false
	for _, r := range rows {
		if strings.Contains(r.Parameter, "*") {
			marked = true
		}
		if r.Parameter == "" || r.Value == "" {
			t.Fatal("empty table cell")
		}
	}
	if !marked {
		t.Fatal("reconstructed parameters not flagged")
	}
}

func TestRenderPanelDoesNotPanic(t *testing.T) {
	var sb strings.Builder
	p := Panel{ID: "t", Title: "test", XLabel: "x", YLabel: "y"}
	RenderPanel(&sb, p) // empty panel
	s := stats.Series{Label: "a"}
	s.Append(1, 0.1, 0)
	s.Append(2, 0.2, 0)
	p.Series = []stats.Series{s}
	RenderPanel(&sb, p)
	if !strings.Contains(sb.String(), "test") {
		t.Fatal("render lost the title")
	}
	RenderCapacity(&sb, p, 0.15)
	RenderTable1(&sb, Table1())
	RenderTrace(&sb, FadingTrace(1, 0.1), 4)
	RenderABICM(&sb, ABICMCurves(20), 3)
	RenderSpeed(&sb, []SpeedPoint{{SpeedKmh: 50, VoiceLoss: 0.01}})
	if sb.Len() == 0 {
		t.Fatal("nothing rendered")
	}
}

func TestRenderPlotHandlesFlatData(t *testing.T) {
	var sb strings.Builder
	s := stats.Series{Label: "flat"}
	s.Append(1, 0.5, 0)
	s.Append(2, 0.5, 0)
	RenderASCIIPlot(&sb, Panel{Series: []stats.Series{s}}, 20, 5)
	if sb.Len() == 0 {
		t.Fatal("flat data rendered nothing")
	}
	sb.Reset()
	z := stats.Series{Label: "zero"}
	z.Append(1, 0, 0)
	RenderASCIIPlot(&sb, Panel{Series: []stats.Series{z}}, 20, 5)
	if !strings.Contains(sb.String(), "no positive data") {
		t.Fatal("zero data not handled")
	}
}
