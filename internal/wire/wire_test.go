package wire

import (
	"testing"
	"testing/quick"
)

func TestServiceTypeString(t *testing.T) {
	if ServiceVoice.String() != "voice" || ServiceData.String() != "data" {
		t.Fatal("service strings wrong")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	in := Request{DeviceID: 513, Service: ServiceData, DeadlineFrames: 7, NumPackets: 99, Pilot: true}
	buf, err := EncodeRequest(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf)*8 != RequestPacketBits {
		t.Fatalf("request packet = %d bits, want %d", len(buf)*8, RequestPacketBits)
	}
	out, err := DecodeRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

// Property: every valid request survives an encode/decode round trip with
// field saturation applied.
func TestRequestRoundTripProperty(t *testing.T) {
	prop := func(id uint16, svc bool, deadline uint8, pkts uint16, pilot bool) bool {
		in := Request{
			DeviceID:       id % (MaxDeviceID + 1),
			DeadlineFrames: deadline,
			NumPackets:     pkts,
			Pilot:          pilot,
		}
		if svc {
			in.Service = ServiceData
		}
		buf, err := EncodeRequest(in)
		if err != nil {
			return false
		}
		out, err := DecodeRequest(buf)
		if err != nil {
			return false
		}
		want := in
		if want.DeadlineFrames > MaxDeadlineFrames {
			want.DeadlineFrames = MaxDeadlineFrames
		}
		if want.NumPackets > MaxRequestPackets {
			want.NumPackets = MaxRequestPackets
		}
		return out == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestRejectsOversizedID(t *testing.T) {
	if _, err := EncodeRequest(Request{DeviceID: MaxDeviceID + 1}); err == nil {
		t.Fatal("oversized device ID accepted")
	}
}

func TestRequestDecodeErrors(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2}); err == nil {
		t.Fatal("truncated packet accepted")
	}
	// Reserved bits set.
	buf, _ := EncodeRequest(Request{DeviceID: 1})
	buf[2] |= 0x10 // bit 12 is reserved
	if _, err := DecodeRequest(buf); err == nil {
		t.Fatal("reserved bits accepted")
	}
}

func TestAckRoundTrip(t *testing.T) {
	for _, in := range []Ack{
		{DeviceID: 0},
		{DeviceID: 1023},
		{Collision: true},
		{Idle: true},
	} {
		buf, err := EncodeAck(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf)*8 != AckPacketBits {
			t.Fatalf("ack packet = %d bits", len(buf)*8)
		}
		out, err := DecodeAck(buf)
		if err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("round trip: %+v != %+v", out, in)
		}
	}
}

func TestAckRejectsConflicts(t *testing.T) {
	if _, err := EncodeAck(Ack{Collision: true, Idle: true}); err == nil {
		t.Fatal("conflicting flags accepted")
	}
	if _, err := EncodeAck(Ack{DeviceID: 2000}); err == nil {
		t.Fatal("oversized device ID accepted")
	}
	if _, err := DecodeAck([]byte{0}); err == nil {
		t.Fatal("truncated ack accepted")
	}
	buf, _ := EncodeAck(Ack{DeviceID: 3})
	buf[1] |= 0x01 // reserved bit
	if _, err := DecodeAck(buf); err == nil {
		t.Fatal("reserved ack bits accepted")
	}
}

func TestAnnouncementRoundTrip(t *testing.T) {
	in := Announcement{
		FrameIndex: 4242,
		Grants: []Grant{
			{DeviceID: 7, StartSymbol: 0, NumPackets: 1, Mode: 3},
			{DeviceID: 900, StartSymbol: 160, NumPackets: 12, Mode: 5},
			{DeviceID: 55, StartSymbol: 600, NumPackets: 1023, Mode: 0},
		},
	}
	buf, err := EncodeAnnouncement(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAnnouncement(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.FrameIndex != in.FrameIndex || len(out.Grants) != len(in.Grants) {
		t.Fatalf("header mismatch: %+v", out)
	}
	for i := range in.Grants {
		if out.Grants[i] != in.Grants[i] {
			t.Fatalf("grant %d: %+v != %+v", i, out.Grants[i], in.Grants[i])
		}
	}
}

func TestAnnouncementEmpty(t *testing.T) {
	buf, err := EncodeAnnouncement(Announcement{FrameIndex: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAnnouncement(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Grants) != 0 || out.FrameIndex != 1 {
		t.Fatalf("empty announcement mangled: %+v", out)
	}
}

func TestAnnouncementRoundTripProperty(t *testing.T) {
	prop := func(frame uint16, ids []uint16) bool {
		if len(ids) > MaxGrantsPerAnnouncement {
			ids = ids[:MaxGrantsPerAnnouncement]
		}
		in := Announcement{FrameIndex: frame}
		for i, id := range ids {
			in.Grants = append(in.Grants, Grant{
				DeviceID:    id % (MaxDeviceID + 1),
				StartSymbol: uint16(i*16) % 1024,
				NumPackets:  uint16(i) % (MaxRequestPackets + 1),
				Mode:        uint8(i % 6),
			})
		}
		buf, err := EncodeAnnouncement(in)
		if err != nil {
			return false
		}
		out, err := DecodeAnnouncement(buf)
		if err != nil {
			return false
		}
		if out.FrameIndex != in.FrameIndex || len(out.Grants) != len(in.Grants) {
			return false
		}
		for i := range in.Grants {
			if out.Grants[i] != in.Grants[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAnnouncementValidation(t *testing.T) {
	tooMany := Announcement{Grants: make([]Grant, MaxGrantsPerAnnouncement+1)}
	if _, err := EncodeAnnouncement(tooMany); err == nil {
		t.Fatal("oversized schedule accepted")
	}
	if _, err := EncodeAnnouncement(Announcement{Grants: []Grant{{DeviceID: 5000}}}); err == nil {
		t.Fatal("oversized device ID accepted")
	}
	if _, err := EncodeAnnouncement(Announcement{Grants: []Grant{{StartSymbol: 2000}}}); err == nil {
		t.Fatal("oversized start symbol accepted")
	}
	if _, err := EncodeAnnouncement(Announcement{Grants: []Grant{{Mode: 9}}}); err == nil {
		t.Fatal("oversized mode accepted")
	}
	if _, err := DecodeAnnouncement([]byte{0}); err == nil {
		t.Fatal("truncated announcement accepted")
	}
	// Count byte promises more grants than the buffer holds.
	buf, _ := EncodeAnnouncement(Announcement{Grants: []Grant{{DeviceID: 1}}})
	buf[2] = 5
	if _, err := DecodeAnnouncement(buf); err == nil {
		t.Fatal("short grant list accepted")
	}
}

func TestCSIPollRoundTrip(t *testing.T) {
	in := CSIPoll{FrameIndex: 77, DeviceIDs: []uint16{3, 500, 1023}}
	buf, err := EncodeCSIPoll(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeCSIPoll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.FrameIndex != 77 || len(out.DeviceIDs) != 3 {
		t.Fatalf("poll mangled: %+v", out)
	}
	for i := range in.DeviceIDs {
		if out.DeviceIDs[i] != in.DeviceIDs[i] {
			t.Fatal("poll order not preserved (the paper's pilots are ordered)")
		}
	}
}

func TestCSIPollValidation(t *testing.T) {
	long := CSIPoll{DeviceIDs: make([]uint16, MaxPollEntries+1)}
	if _, err := EncodeCSIPoll(long); err == nil {
		t.Fatal("oversized poll accepted")
	}
	if _, err := EncodeCSIPoll(CSIPoll{DeviceIDs: []uint16{5000}}); err == nil {
		t.Fatal("oversized device ID accepted")
	}
	if _, err := DecodeCSIPoll([]byte{1}); err == nil {
		t.Fatal("truncated poll accepted")
	}
	buf, _ := EncodeCSIPoll(CSIPoll{DeviceIDs: []uint16{1, 2}})
	buf[2] = 9
	if _, err := DecodeCSIPoll(buf); err == nil {
		t.Fatal("short poll list accepted")
	}
}

func TestCSIPollEmpty(t *testing.T) {
	buf, err := EncodeCSIPoll(CSIPoll{FrameIndex: 9})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeCSIPoll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.DeviceIDs) != 0 {
		t.Fatal("phantom poll entries")
	}
}
