// Package wire implements the over-the-air control packet formats of the
// CHARISMA protocol (paper Figs. 9 and 10):
//
//   - the request packet a mobile device sends in a contention minislot
//     (device ID, service type, packet deadline, number of packets desired,
//     pilot symbol marker — Fig. 9a),
//   - the acknowledgment packet the base station broadcasts after each
//     request slot (the successful request's ID),
//   - the announcement packet carrying the frame's time-slot allocation
//     schedule and transmission modes (Fig. 9b), and
//   - the CSI-polling packet listing the short-listed backlog devices that
//     must transmit pilots, in order (Fig. 10b).
//
// Encodings are fixed-layout big-endian so a packet's air time maps
// directly to the minislot budget: a request packet must fit the 16-symbol
// minislot at the most robust mode (16 symbols x 1/2 bit = 8 bits of
// payload would be too tight, so control packets are specified at the η=1
// control rate: 16 bits per minislot, matching classic control-channel
// design). The codecs are exercised by the MAC tests and available to
// tooling that wants to inspect simulated frames.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Control-channel geometry: control packets are sent at the fixed η=1
// control rate, so one 16-symbol minislot carries 16 bits.
const (
	// RequestPacketBits is the air size of a request packet (Fig. 9a):
	// 10-bit device ID, 1-bit service type, 5-bit deadline, plus a
	// 16-bit extension carrying the packet count and pilot marker.
	RequestPacketBits = 32
	// AckPacketBits carries the winning device ID plus flags.
	AckPacketBits = 16
	// MaxDeadlineFrames is the widest deadline the 5-bit field encodes.
	MaxDeadlineFrames = 31
	// MaxRequestPackets is the widest packet count the 10-bit field
	// encodes; larger backlogs saturate the field (the BS learns the
	// rest from subsequent requests).
	MaxRequestPackets = 1023
	// MaxDeviceID is the widest device ID (10 bits, ~1000 devices per
	// cell as the paper's population sweeps require).
	MaxDeviceID = 1023
)

// ServiceType is the request's service class bit.
type ServiceType uint8

// The two service classes.
const (
	ServiceVoice ServiceType = 0
	ServiceData  ServiceType = 1
)

// String implements fmt.Stringer.
func (s ServiceType) String() string {
	if s == ServiceVoice {
		return "voice"
	}
	return "data"
}

// Request is the decoded contention request packet (Fig. 9a).
type Request struct {
	// DeviceID identifies the mobile device (10 bits).
	DeviceID uint16
	// Service is the request class (1 bit).
	Service ServiceType
	// DeadlineFrames is the frames remaining until the oldest packet's
	// deadline (5 bits, voice only; saturating).
	DeadlineFrames uint8
	// NumPackets is the number of information packets desired (10 bits,
	// saturating).
	NumPackets uint16
	// Pilot marks that pilot symbols follow the header (always set by
	// conforming devices; the BS uses them for CSI estimation).
	Pilot bool
}

// errTruncated reports a packet shorter than its fixed layout.
var errTruncated = errors.New("wire: truncated packet")

// EncodeRequest packs a request into its 4-byte air format.
// Layout (big-endian, 32 bits):
//
//	bits 31..22  device ID (10)
//	bit  21      service type (0 voice, 1 data)
//	bits 20..16  deadline frames (5, saturating)
//	bit  15      pilot marker
//	bits 14..10  reserved (0)
//	bits  9..0   packet count (10, saturating)
func EncodeRequest(r Request) ([]byte, error) {
	if r.DeviceID > MaxDeviceID {
		return nil, fmt.Errorf("wire: device ID %d exceeds %d", r.DeviceID, MaxDeviceID)
	}
	deadline := uint32(r.DeadlineFrames)
	if deadline > MaxDeadlineFrames {
		deadline = MaxDeadlineFrames
	}
	pkts := uint32(r.NumPackets)
	if pkts > MaxRequestPackets {
		pkts = MaxRequestPackets
	}
	var word uint32
	word |= uint32(r.DeviceID) << 22
	word |= uint32(r.Service&1) << 21
	word |= deadline << 16
	if r.Pilot {
		word |= 1 << 15
	}
	word |= pkts
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf, word)
	return buf, nil
}

// DecodeRequest unpacks a request packet.
func DecodeRequest(buf []byte) (Request, error) {
	if len(buf) < 4 {
		return Request{}, errTruncated
	}
	word := binary.BigEndian.Uint32(buf)
	if word&(0x1f<<10) != 0 {
		return Request{}, errors.New("wire: reserved request bits set")
	}
	return Request{
		DeviceID:       uint16(word >> 22),
		Service:        ServiceType((word >> 21) & 1),
		DeadlineFrames: uint8((word >> 16) & 0x1f),
		Pilot:          word&(1<<15) != 0,
		NumPackets:     uint16(word & 0x3ff),
	}, nil
}

// Ack is the per-minislot acknowledgment broadcast (the successful request
// packet's ID, §4.3).
type Ack struct {
	// DeviceID is the winner; Collision marks a garbled slot (no winner).
	DeviceID  uint16
	Collision bool
	// Idle marks a minislot in which nothing was transmitted.
	Idle bool
}

// EncodeAck packs an acknowledgment into 2 bytes:
//
//	bits 15..6  device ID (10)
//	bit   5     collision
//	bit   4     idle
//	bits  3..0  reserved
func EncodeAck(a Ack) ([]byte, error) {
	if a.DeviceID > MaxDeviceID {
		return nil, fmt.Errorf("wire: device ID %d exceeds %d", a.DeviceID, MaxDeviceID)
	}
	if a.Collision && a.Idle {
		return nil, errors.New("wire: ack cannot be both collision and idle")
	}
	var word uint16
	word |= a.DeviceID << 6
	if a.Collision {
		word |= 1 << 5
	}
	if a.Idle {
		word |= 1 << 4
	}
	buf := make([]byte, 2)
	binary.BigEndian.PutUint16(buf, word)
	return buf, nil
}

// DecodeAck unpacks an acknowledgment.
func DecodeAck(buf []byte) (Ack, error) {
	if len(buf) < 2 {
		return Ack{}, errTruncated
	}
	word := binary.BigEndian.Uint16(buf)
	if word&0xf != 0 {
		return Ack{}, errors.New("wire: reserved ack bits set")
	}
	a := Ack{
		DeviceID:  word >> 6,
		Collision: word&(1<<5) != 0,
		Idle:      word&(1<<4) != 0,
	}
	if a.Collision && a.Idle {
		return Ack{}, errors.New("wire: ack flags conflict")
	}
	return a, nil
}

// Grant is one entry of the announcement schedule (Fig. 9b): which device
// transmits, where in the information subframe, for how many packets, and
// in which ABICM mode.
type Grant struct {
	DeviceID uint16
	// StartSymbol is the offset of the allocation inside the information
	// subframe (0..1023).
	StartSymbol uint16
	// NumPackets is the packet count of the allocation (saturating 10
	// bits).
	NumPackets uint16
	// Mode is the announced ABICM transmission mode (0..7).
	Mode uint8
}

// Announcement is the downlink allocation schedule packet (Fig. 9b).
type Announcement struct {
	// FrameIndex is a truncated frame counter for synchronization
	// checks (16 bits).
	FrameIndex uint16
	Grants     []Grant
}

// MaxGrantsPerAnnouncement bounds the schedule length: more grants than
// half-packet opportunities in the information subframe is impossible.
const MaxGrantsPerAnnouncement = 40

// EncodeAnnouncement packs the schedule:
//
//	bytes 0..1  frame index
//	byte  2     grant count
//	then per grant 6 bytes:
//	  bits 47..38 device ID (10)
//	  bits 37..28 start symbol (10)
//	  bits 27..18 packet count (10)
//	  bits 17..15 mode (3)
//	  bits 14..0  reserved
func EncodeAnnouncement(a Announcement) ([]byte, error) {
	if len(a.Grants) > MaxGrantsPerAnnouncement {
		return nil, fmt.Errorf("wire: %d grants exceed %d", len(a.Grants), MaxGrantsPerAnnouncement)
	}
	buf := make([]byte, 3, 3+6*len(a.Grants))
	binary.BigEndian.PutUint16(buf[0:2], a.FrameIndex)
	buf[2] = byte(len(a.Grants))
	for _, g := range a.Grants {
		if g.DeviceID > MaxDeviceID {
			return nil, fmt.Errorf("wire: device ID %d exceeds %d", g.DeviceID, MaxDeviceID)
		}
		if g.StartSymbol > 1023 {
			return nil, fmt.Errorf("wire: start symbol %d exceeds 1023", g.StartSymbol)
		}
		if g.Mode > 7 {
			return nil, fmt.Errorf("wire: mode %d exceeds 7", g.Mode)
		}
		pkts := g.NumPackets
		if pkts > MaxRequestPackets {
			pkts = MaxRequestPackets
		}
		var word uint64
		word |= uint64(g.DeviceID) << 38
		word |= uint64(g.StartSymbol) << 28
		word |= uint64(pkts) << 18
		word |= uint64(g.Mode) << 15
		var six [8]byte
		binary.BigEndian.PutUint64(six[:], word<<16) // left-align 48 bits
		buf = append(buf, six[0:6]...)
	}
	return buf, nil
}

// DecodeAnnouncement unpacks a schedule packet.
func DecodeAnnouncement(buf []byte) (Announcement, error) {
	if len(buf) < 3 {
		return Announcement{}, errTruncated
	}
	a := Announcement{FrameIndex: binary.BigEndian.Uint16(buf[0:2])}
	n := int(buf[2])
	if n > MaxGrantsPerAnnouncement {
		return Announcement{}, fmt.Errorf("wire: %d grants exceed %d", n, MaxGrantsPerAnnouncement)
	}
	if len(buf) < 3+6*n {
		return Announcement{}, errTruncated
	}
	for i := 0; i < n; i++ {
		var eight [8]byte
		copy(eight[0:6], buf[3+6*i:3+6*i+6])
		word := binary.BigEndian.Uint64(eight[:]) >> 16
		g := Grant{
			DeviceID:    uint16(word >> 38),
			StartSymbol: uint16((word >> 28) & 0x3ff),
			NumPackets:  uint16((word >> 18) & 0x3ff),
			Mode:        uint8((word >> 15) & 0x7),
		}
		if word&0x7fff != 0 {
			return Announcement{}, errors.New("wire: reserved grant bits set")
		}
		a.Grants = append(a.Grants, g)
	}
	return a, nil
}

// CSIPoll is the downlink polling packet (Fig. 10b): the short-listed
// backlog devices transmit pilot symbols in the listed order.
type CSIPoll struct {
	FrameIndex uint16
	DeviceIDs  []uint16
}

// MaxPollEntries bounds the poll list to the pilot subframe size family.
const MaxPollEntries = 15

// EncodeCSIPoll packs a polling packet: 2-byte frame index, 1-byte count,
// then 2 bytes per device ID.
func EncodeCSIPoll(p CSIPoll) ([]byte, error) {
	if len(p.DeviceIDs) > MaxPollEntries {
		return nil, fmt.Errorf("wire: %d poll entries exceed %d", len(p.DeviceIDs), MaxPollEntries)
	}
	buf := make([]byte, 3, 3+2*len(p.DeviceIDs))
	binary.BigEndian.PutUint16(buf[0:2], p.FrameIndex)
	buf[2] = byte(len(p.DeviceIDs))
	for _, id := range p.DeviceIDs {
		if id > MaxDeviceID {
			return nil, fmt.Errorf("wire: device ID %d exceeds %d", id, MaxDeviceID)
		}
		var two [2]byte
		binary.BigEndian.PutUint16(two[:], id)
		buf = append(buf, two[:]...)
	}
	return buf, nil
}

// DecodeCSIPoll unpacks a polling packet.
func DecodeCSIPoll(buf []byte) (CSIPoll, error) {
	if len(buf) < 3 {
		return CSIPoll{}, errTruncated
	}
	p := CSIPoll{FrameIndex: binary.BigEndian.Uint16(buf[0:2])}
	n := int(buf[2])
	if n > MaxPollEntries {
		return CSIPoll{}, fmt.Errorf("wire: %d poll entries exceed %d", n, MaxPollEntries)
	}
	if len(buf) < 3+2*n {
		return CSIPoll{}, errTruncated
	}
	for i := 0; i < n; i++ {
		id := binary.BigEndian.Uint16(buf[3+2*i : 5+2*i])
		if id > MaxDeviceID {
			return CSIPoll{}, fmt.Errorf("wire: device ID %d exceeds %d", id, MaxDeviceID)
		}
		p.DeviceIDs = append(p.DeviceIDs, id)
	}
	return p, nil
}
