package wire

import (
	"reflect"
	"testing"
)

// The wire codec fuzz discipline: decoding arbitrary bytes never panics,
// and any packet a decoder accepts re-encodes to bytes the decoder maps
// back to the same value (decode ∘ encode ∘ decode = decode). Seeds cover
// every packet type's canonical encoding.

func FuzzDecodeRequest(f *testing.F) {
	if b, err := EncodeRequest(Request{DeviceID: 513, Service: ServiceData, DeadlineFrames: 7, NumPackets: 40, Pilot: true}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRequest(data)
		if err != nil {
			return
		}
		b, err := EncodeRequest(r)
		if err != nil {
			t.Fatalf("accepted request %+v fails to encode: %v", r, err)
		}
		again, err := DecodeRequest(b)
		if err != nil {
			t.Fatalf("re-encoded request rejected: %v", err)
		}
		if again != r {
			t.Fatalf("request not idempotent: %+v vs %+v", r, again)
		}
	})
}

func FuzzRequestRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint8(0), uint8(0), uint16(0), false)
	f.Add(uint16(1023), uint8(1), uint8(31), uint16(1023), true)
	f.Fuzz(func(t *testing.T, id uint16, svc, deadline uint8, pkts uint16, pilot bool) {
		r := Request{DeviceID: id, Service: ServiceType(svc & 1), DeadlineFrames: deadline, NumPackets: pkts, Pilot: pilot}
		b, err := EncodeRequest(r)
		if id > MaxDeviceID {
			if err == nil {
				t.Fatal("oversized device ID encoded")
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(b)
		if err != nil {
			t.Fatal(err)
		}
		// Deadline and packet count saturate on encode.
		want := r
		if want.DeadlineFrames > MaxDeadlineFrames {
			want.DeadlineFrames = MaxDeadlineFrames
		}
		if want.NumPackets > MaxRequestPackets {
			want.NumPackets = MaxRequestPackets
		}
		if got != want {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
	})
}

func FuzzDecodeAck(f *testing.F) {
	if b, err := EncodeAck(Ack{DeviceID: 7}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeAck(Ack{Collision: true}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAck(data)
		if err != nil {
			return
		}
		b, err := EncodeAck(a)
		if err != nil {
			t.Fatalf("accepted ack %+v fails to encode: %v", a, err)
		}
		again, err := DecodeAck(b)
		if err != nil || again != a {
			t.Fatalf("ack not idempotent: %+v vs %+v (%v)", a, again, err)
		}
	})
}

func FuzzDecodeAnnouncement(f *testing.F) {
	if b, err := EncodeAnnouncement(Announcement{
		FrameIndex: 9,
		Grants: []Grant{
			{DeviceID: 3, StartSymbol: 100, NumPackets: 2, Mode: 5},
			{DeviceID: 900, StartSymbol: 1023, NumPackets: 1023, Mode: 7},
		},
	}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0, 0, 2, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAnnouncement(data)
		if err != nil {
			return
		}
		b, err := EncodeAnnouncement(a)
		if err != nil {
			t.Fatalf("accepted announcement %+v fails to encode: %v", a, err)
		}
		again, err := DecodeAnnouncement(b)
		if err != nil {
			t.Fatalf("re-encoded announcement rejected: %v", err)
		}
		if !reflect.DeepEqual(a, again) {
			t.Fatalf("announcement not idempotent:\n%+v\n%+v", a, again)
		}
	})
}

func FuzzDecodeCSIPoll(f *testing.F) {
	if b, err := EncodeCSIPoll(CSIPoll{FrameIndex: 4, DeviceIDs: []uint16{1, 2, 1000}}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeCSIPoll(data)
		if err != nil {
			return
		}
		b, err := EncodeCSIPoll(p)
		if err != nil {
			t.Fatalf("accepted poll %+v fails to encode: %v", p, err)
		}
		again, err := DecodeCSIPoll(b)
		if err != nil {
			t.Fatalf("re-encoded poll rejected: %v", err)
		}
		if !reflect.DeepEqual(p, again) {
			t.Fatalf("poll not idempotent:\n%+v\n%+v", p, again)
		}
	})
}
