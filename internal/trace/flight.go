package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"charisma/internal/mac"
	"charisma/internal/prof"
	"charisma/internal/sim"
)

// This file implements the flight recorder: a fixed-size ring buffer of
// frame-level MAC events kept alive while a run is in progress and
// dumped as JSONL only when something goes wrong — a panic in the frame
// loop, a SIGQUIT from the operator, or a sweep point whose CI95 blew
// past the replication cap. A misbehaving million-station run then
// leaves its last N frames behind as a post-mortem artifact instead of
// nothing.
//
// Arming is process-global (ArmFlight, driven by the CLIs'
// -flight-recorder flag); attachment is per run (core.Scenario wires a
// Flight onto each System it drives when armed). Recording costs one
// DebugEndFrame callback and a handful of counter subtractions per
// frame; when disarmed the only cost anywhere is the hook's nil check.

// FrameEvent is one frame's activity, as deltas of the cumulative MAC
// metrics over that frame.
type FrameEvent struct {
	Frame int64    `json:"frame"` // frame index (0-based, completed)
	At    sim.Time `json:"at"`    // start time of the frame, ticks
	Dur   sim.Time `json:"dur"`   // duration the protocol consumed

	Attempts   uint64 `json:"attempts"`   // contention request attempts
	Collisions uint64 `json:"collisions"` // request minislot collisions
	Captures   uint64 `json:"captures"`   // requests captured by the BS
	Grants     uint64 `json:"grants"`     // reservations granted
	VoiceOK    uint64 `json:"voice_ok"`   // voice packets delivered
	VoiceErr   uint64 `json:"voice_err"`  // voice packets in error
	DataOK     uint64 `json:"data_ok"`    // data packets delivered
	DataErr    uint64 `json:"data_err"`   // data packets in error
	QueueLen   int    `json:"queue_len"`  // BS request queue depth at frame end
}

// flightMeta is the first JSONL line of a dump.
type flightMeta struct {
	Meta    bool   `json:"meta"`
	Label   string `json:"label"`
	Reason  string `json:"reason"`
	Frames  int64  `json:"frames_seen"`
	Ring    int    `json:"ring"`
	Dropped int64  `json:"dropped"` // frames_seen - retained
}

type frameTotals struct {
	attempts, collisions, captures, grants uint64
	voiceOK, voiceErr, dataOK, dataErr     uint64
}

func totalsOf(m *mac.Metrics) frameTotals {
	return frameTotals{
		attempts:   m.ReqAttempts.Total(),
		collisions: m.ReqCollisions.Total(),
		captures:   m.ReqSuccesses.Total(),
		grants:     m.ReservationsGranted.Total(),
		voiceOK:    m.VoiceTxOK.Total(),
		voiceErr:   m.VoiceTxErr.Total(),
		dataOK:     m.DataDelivered.Total(),
		dataErr:    m.DataTxErr.Total(),
	}
}

// Flight is one run's recorder. The mutex covers the ring: frames are
// recorded on the simulation goroutine, but a dump may fire from the
// signal-handler goroutine mid-run.
type Flight struct {
	mu     sync.Mutex
	sys    *mac.System
	label  string
	ring   []FrameEvent
	next   int   // write cursor into ring
	filled bool  // ring has wrapped
	total  int64 // frames observed
	prev   frameTotals
	cancel func() // prof.OnDump deregistration
}

var flightArm struct {
	mu     sync.Mutex
	frames int
	path   string
}

// ArmFlight arms the process-wide flight recorder: subsequent scenario
// runs attach a recorder of the given ring size, and dumps append to
// path. frames <= 0 disarms.
func ArmFlight(frames int, path string) {
	flightArm.mu.Lock()
	defer flightArm.mu.Unlock()
	flightArm.frames, flightArm.path = frames, path
	if frames > 0 {
		// The recorder's whole point is surviving to the post-mortem:
		// make sure the SIGQUIT dump path exists before anything runs.
		prof.InstallDumpHandler()
	}
}

// FlightArmed returns the armed ring size (0 when disarmed) and dump path.
func FlightArmed() (frames int, path string) {
	flightArm.mu.Lock()
	defer flightArm.mu.Unlock()
	return flightArm.frames, flightArm.path
}

// AttachFlight installs a flight recorder of the given ring size on sys's
// end-of-frame hook and registers it with the shared dump path
// (prof.OnDump). label identifies the run in the dump's meta line.
// Callers must Close the returned Flight when the run ends; an
// un-dumped recorder simply disappears.
func AttachFlight(sys *mac.System, frames int, label string) *Flight {
	f := &Flight{
		sys:   sys,
		label: label,
		ring:  make([]FrameEvent, frames),
		prev:  totalsOf(&sys.M),
	}
	sys.DebugEndFrame = func(dur sim.Time) { f.record(dur) }
	f.cancel = prof.OnDump("flight:"+label, func(reason string) { f.Dump(reason) })
	return f
}

// record appends one frame to the ring. Called from the simulation
// goroutine via the DebugEndFrame hook, after EndFrame advanced the
// clock and frame index past the completed frame.
func (f *Flight) record(dur sim.Time) {
	s := f.sys
	cur := totalsOf(&s.M)
	ev := FrameEvent{
		Frame:      s.FrameIndex() - 1,
		At:         s.Now() - dur,
		Dur:        dur,
		Attempts:   cur.attempts - f.prev.attempts,
		Collisions: cur.collisions - f.prev.collisions,
		Captures:   cur.captures - f.prev.captures,
		Grants:     cur.grants - f.prev.grants,
		VoiceOK:    cur.voiceOK - f.prev.voiceOK,
		VoiceErr:   cur.voiceErr - f.prev.voiceErr,
		DataOK:     cur.dataOK - f.prev.dataOK,
		DataErr:    cur.dataErr - f.prev.dataErr,
		QueueLen:   s.QueueLen(),
	}
	f.prev = cur
	f.mu.Lock()
	f.ring[f.next] = ev
	f.next++
	if f.next == len(f.ring) {
		f.next, f.filled = 0, true
	}
	f.total++
	f.mu.Unlock()
}

// snapshot returns the retained frames oldest-first plus the total seen.
func (f *Flight) snapshot() ([]FrameEvent, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []FrameEvent
	if f.filled {
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	} else {
		out = append(out, f.ring[:f.next]...)
	}
	return out, f.total
}

var dumpFileMu sync.Mutex

// Dump appends the recorder's retained frames to the armed dump path as
// JSONL: one meta line, then one line per frame, oldest first. Dump
// failures are reported to stderr and never abort the caller — a
// post-mortem must not take down the process it is examining.
func (f *Flight) Dump(reason string) {
	_, path := FlightArmed()
	if path == "" {
		path = "charisma-flight.jsonl"
	}
	events, total := f.snapshot()
	dumpFileMu.Lock()
	defer dumpFileMu.Unlock()
	file, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace: flight dump:", err)
		return
	}
	defer file.Close()
	enc := json.NewEncoder(file)
	meta := flightMeta{
		Meta: true, Label: f.label, Reason: reason,
		Frames: total, Ring: len(f.ring), Dropped: total - int64(len(events)),
	}
	if err := enc.Encode(meta); err != nil {
		fmt.Fprintln(os.Stderr, "trace: flight dump:", err)
		return
	}
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			fmt.Fprintln(os.Stderr, "trace: flight dump:", err)
			return
		}
	}
}

// Close detaches the recorder from its system and the dump registry.
func (f *Flight) Close() {
	if f.cancel != nil {
		f.cancel()
		f.cancel = nil
	}
	if f.sys != nil && f.sys.DebugEndFrame != nil {
		f.sys.DebugEndFrame = nil
	}
}
