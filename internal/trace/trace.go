// Package trace records per-transmission event logs from a running
// scenario and computes the aggregate views the paper derives "by
// examining the simulation traces" (§5.1): per-mode transmission
// histograms, CSI-staleness error taxonomies, and per-station service
// summaries. It piggybacks on the MAC's debug observer hook, so recording
// does not perturb the simulation (observer randomness is never drawn).
package trace

import (
	"fmt"
	"io"
	"sort"

	"charisma/internal/mac"
	"charisma/internal/phy"
	"charisma/internal/sim"
)

// VoiceTx is one recorded voice transmission.
type VoiceTx struct {
	At      sim.Time
	Station int
	Mode    int
	// EstAmp is the scheduler-side (staleness-discounted) amplitude the
	// mode was chosen from; EstAge its age.
	EstAmp float64
	EstAge sim.Time
	OK     int
	Errs   int
}

// Recorder collects voice transmission events from a mac.System.
type Recorder struct {
	sys *mac.System
	// Events holds the raw log in arrival order.
	Events []VoiceTx
	// Cap bounds memory; 0 means unlimited. When full, recording stops
	// and Dropped counts what was lost.
	Cap int
	// Dropped counts events that arrived after the cap was reached. A
	// truncated trace is still useful for its aggregate shapes, but the
	// views must say it is partial — Render reports this count.
	Dropped int
}

// Truncated reports whether the recorder hit its cap and how many events
// were lost past it.
func (r *Recorder) Truncated() (dropped int) { return r.Dropped }

// Attach installs the recorder on a system's debug hook and returns it.
// Any previously installed hook is replaced.
func Attach(sys *mac.System, cap int) *Recorder {
	r := &Recorder{sys: sys, Cap: cap}
	sys.DebugVoiceTx = func(st *mac.Station, m phy.Mode, estAmp float64, estAge sim.Time, ok, errs int) {
		if r.Cap > 0 && len(r.Events) >= r.Cap {
			r.Dropped++
			return
		}
		r.Events = append(r.Events, VoiceTx{
			At:      sys.Now(),
			Station: st.ID,
			Mode:    m.Index,
			EstAmp:  estAmp,
			EstAge:  estAge,
			OK:      ok,
			Errs:    errs,
		})
	}
	return r
}

// Detach removes the recorder's hook.
func (r *Recorder) Detach() {
	if r.sys != nil && r.sys.DebugVoiceTx != nil {
		r.sys.DebugVoiceTx = nil
	}
}

// ModeHistogram counts transmitted packets per ABICM mode — the selection-
// diversity fingerprint: CHARISMA's histogram leans toward high modes.
func (r *Recorder) ModeHistogram() map[int]int {
	h := make(map[int]int)
	for _, e := range r.Events {
		h[e.Mode] += e.OK + e.Errs
	}
	return h
}

// MeanMode returns the packet-weighted mean mode index.
func (r *Recorder) MeanMode() float64 {
	sum, n := 0, 0
	for _, e := range r.Events {
		k := e.OK + e.Errs
		sum += e.Mode * k
		n += k
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// AgeBucket classifies an estimate age against the frame duration.
type AgeBucket int

// Staleness buckets used by the error taxonomy.
const (
	AgeFresh AgeBucket = iota // within the 2-frame validity window
	AgeAging                  // 3–8 frames (one voice period)
	AgeStale                  // older
)

// String implements fmt.Stringer.
func (b AgeBucket) String() string {
	switch b {
	case AgeFresh:
		return "fresh(<=2f)"
	case AgeAging:
		return "aging(3-8f)"
	default:
		return "stale(>8f)"
	}
}

func bucketOf(age, frame sim.Time) AgeBucket {
	switch {
	case age <= 2*frame:
		return AgeFresh
	case age <= 8*frame:
		return AgeAging
	default:
		return AgeStale
	}
}

// ErrorTaxonomy aggregates transmissions and errors by CSI staleness — the
// diagnostic that drove this reproduction's CSI-refresh calibration.
type ErrorTaxonomy struct {
	Tx   map[AgeBucket]int
	Errs map[AgeBucket]int
}

// Taxonomy computes the staleness taxonomy for a frame duration.
func (r *Recorder) Taxonomy(frame sim.Time) ErrorTaxonomy {
	t := ErrorTaxonomy{Tx: map[AgeBucket]int{}, Errs: map[AgeBucket]int{}}
	for _, e := range r.Events {
		b := bucketOf(e.EstAge, frame)
		t.Tx[b] += e.OK + e.Errs
		t.Errs[b] += e.Errs
	}
	return t
}

// StationSummary is one station's service record.
type StationSummary struct {
	Station  int
	Packets  int
	Errors   int
	MeanMode float64
}

// PerStation returns per-station service summaries ordered by station ID.
func (r *Recorder) PerStation() []StationSummary {
	agg := map[int]*StationSummary{}
	modeSum := map[int]int{}
	for _, e := range r.Events {
		s := agg[e.Station]
		if s == nil {
			s = &StationSummary{Station: e.Station}
			agg[e.Station] = s
		}
		k := e.OK + e.Errs
		s.Packets += k
		s.Errors += e.Errs
		modeSum[e.Station] += e.Mode * k
	}
	var out []StationSummary
	for id, s := range agg {
		if s.Packets > 0 {
			s.MeanMode = float64(modeSum[id]) / float64(s.Packets)
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Station < out[j].Station })
	return out
}

// Render writes a human-readable trace digest.
func (r *Recorder) Render(w io.Writer, frame sim.Time) {
	fmt.Fprintf(w, "trace: %d voice transmissions, mean mode %.2f\n", len(r.Events), r.MeanMode())
	if r.Dropped > 0 {
		fmt.Fprintf(w, "  TRUNCATED: %d further transmissions dropped at cap %d — aggregates below are partial\n",
			r.Dropped, r.Cap)
	}
	hist := r.ModeHistogram()
	var modes []int
	for m := range hist {
		modes = append(modes, m)
	}
	sort.Ints(modes)
	for _, m := range modes {
		fmt.Fprintf(w, "  mode %d: %6d packets\n", m, hist[m])
	}
	tax := r.Taxonomy(frame)
	for _, b := range []AgeBucket{AgeFresh, AgeAging, AgeStale} {
		if tax.Tx[b] == 0 {
			continue
		}
		fmt.Fprintf(w, "  CSI %-12s %6d tx, %5d errors (%.2f%%)\n",
			b, tax.Tx[b], tax.Errs[b], 100*float64(tax.Errs[b])/float64(tax.Tx[b]))
	}
}
