package trace_test

import (
	"strings"
	"testing"

	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/sim"
	"charisma/internal/trace"
)

func record(t *testing.T, nv int, frames int, cap int) (*trace.Recorder, *mac.System) {
	t.Helper()
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice = nv
	sys, proto, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	proto.Init(sys)
	r := trace.Attach(sys, cap)
	for i := 0; i < frames; i++ {
		sys.BeginFrame()
		sys.EndFrame(proto.RunFrame(sys))
	}
	return r, sys
}

func TestRecorderCapturesEvents(t *testing.T) {
	r, _ := record(t, 20, 3000, 0)
	if len(r.Events) == 0 {
		t.Fatal("no events recorded")
	}
	for _, e := range r.Events {
		if e.OK+e.Errs <= 0 {
			t.Fatal("event without packets")
		}
		if e.Mode < 0 || e.Mode > 5 {
			t.Fatalf("mode %d out of range", e.Mode)
		}
		if e.EstAge < 0 {
			t.Fatal("negative estimate age")
		}
	}
}

func TestRecorderCap(t *testing.T) {
	r, _ := record(t, 20, 3000, 10)
	if len(r.Events) > 10 {
		t.Fatalf("cap ignored: %d events", len(r.Events))
	}
}

// TestRecorderSurfacesTruncation: hitting the cap is not silent — the
// dropped count is exposed and the rendered digest warns that its
// aggregates are partial.
func TestRecorderSurfacesTruncation(t *testing.T) {
	r, sys := record(t, 20, 3000, 10)
	if got := r.Truncated(); got == 0 || got != r.Dropped {
		t.Fatalf("Truncated() = %d, Dropped = %d; want equal and > 0", got, r.Dropped)
	}
	var sb strings.Builder
	r.Render(&sb, sys.FrameDuration())
	if !strings.Contains(sb.String(), "TRUNCATED") {
		t.Fatalf("digest of a truncated recording carries no warning:\n%s", sb.String())
	}

	// An uncapped recording reports no truncation and no warning.
	r2, sys2 := record(t, 20, 500, 0)
	if r2.Truncated() != 0 {
		t.Fatalf("uncapped recorder reports %d dropped", r2.Truncated())
	}
	sb.Reset()
	r2.Render(&sb, sys2.FrameDuration())
	if strings.Contains(sb.String(), "TRUNCATED") {
		t.Fatal("uncapped digest carries a truncation warning")
	}
}

func TestModeHistogramConsistent(t *testing.T) {
	r, _ := record(t, 20, 2000, 0)
	total := 0
	for _, n := range r.ModeHistogram() {
		total += n
	}
	want := 0
	for _, e := range r.Events {
		want += e.OK + e.Errs
	}
	if total != want {
		t.Fatalf("histogram total %d != event total %d", total, want)
	}
	mean := r.MeanMode()
	if mean < 0 || mean > 5 {
		t.Fatalf("mean mode %v out of range", mean)
	}
	// With CSI-aware scheduling the mean mode should sit well above the
	// most robust mode.
	if mean < 1 {
		t.Fatalf("mean mode %v suspiciously low for CHARISMA", mean)
	}
}

func TestTaxonomyPartitionsEvents(t *testing.T) {
	r, sys := record(t, 40, 2000, 0)
	tax := r.Taxonomy(sys.FrameDuration())
	totalTx := 0
	for _, n := range tax.Tx {
		totalTx += n
	}
	want := 0
	for _, e := range r.Events {
		want += e.OK + e.Errs
	}
	if totalTx != want {
		t.Fatalf("taxonomy total %d != %d", totalTx, want)
	}
	for b, errs := range tax.Errs {
		if errs > tax.Tx[b] {
			t.Fatalf("bucket %v has more errors than transmissions", b)
		}
	}
}

func TestAgeBucketString(t *testing.T) {
	for _, b := range []trace.AgeBucket{trace.AgeFresh, trace.AgeAging, trace.AgeStale} {
		if b.String() == "" {
			t.Fatal("empty bucket name")
		}
	}
}

func TestPerStationSummaries(t *testing.T) {
	r, _ := record(t, 15, 3000, 0)
	sums := r.PerStation()
	if len(sums) == 0 {
		t.Fatal("no station summaries")
	}
	prev := -1
	for _, s := range sums {
		if s.Station <= prev {
			t.Fatal("summaries not ordered by station")
		}
		prev = s.Station
		if s.Packets <= 0 || s.Errors > s.Packets {
			t.Fatalf("inconsistent summary %+v", s)
		}
		if s.MeanMode < 0 || s.MeanMode > 5 {
			t.Fatalf("mean mode %v", s.MeanMode)
		}
	}
}

func TestRenderDigest(t *testing.T) {
	r, sys := record(t, 20, 1500, 0)
	var sb strings.Builder
	r.Render(&sb, sys.FrameDuration())
	out := sb.String()
	if !strings.Contains(out, "voice transmissions") || !strings.Contains(out, "mode") {
		t.Fatalf("digest incomplete:\n%s", out)
	}
}

func TestDetachStopsRecording(t *testing.T) {
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice = 10
	sys, proto, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	proto.Init(sys)
	r := trace.Attach(sys, 0)
	for i := 0; i < 500; i++ {
		sys.BeginFrame()
		sys.EndFrame(proto.RunFrame(sys))
	}
	n := len(r.Events)
	r.Detach()
	for i := 0; i < 500; i++ {
		sys.BeginFrame()
		sys.EndFrame(proto.RunFrame(sys))
	}
	if len(r.Events) != n {
		t.Fatal("events recorded after Detach")
	}
}

func TestRecordingDoesNotPerturbResults(t *testing.T) {
	run := func(attach bool) mac.Result {
		sc := core.DefaultScenario(core.ProtoCharisma)
		sc.NumVoice = 25
		sys, proto, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		proto.Init(sys)
		if attach {
			trace.Attach(sys, 0)
		}
		for i := 0; i < 2000; i++ {
			sys.BeginFrame()
			sys.EndFrame(proto.RunFrame(sys))
		}
		return sys.M.Result("charisma", sys.Cfg.Geometry.FrameSymbols)
	}
	if run(true) != run(false) {
		t.Fatal("tracing changed simulation results")
	}
}

var _ = sim.Second
