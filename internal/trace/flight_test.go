package trace_test

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/prof"
	"charisma/internal/trace"
)

func buildCell(t testing.TB, nv int) (*mac.System, mac.Protocol) {
	t.Helper()
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice = nv
	sys, proto, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	proto.Init(sys)
	return sys, proto
}

func runFrames(sys *mac.System, proto mac.Protocol, n int) {
	for i := 0; i < n; i++ {
		sys.BeginFrame()
		sys.EndFrame(proto.RunFrame(sys))
	}
}

// parseFlight reads one JSONL dump: the meta line then the frames.
func parseFlight(t *testing.T, path string) (meta map[string]any, frames []trace.FrameEvent) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Meta bool `json:"meta"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", line, err)
		}
		if probe.Meta {
			meta = map[string]any{}
			if err := json.Unmarshal(line, &meta); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var ev trace.FrameEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return meta, frames
}

func TestFlightRingDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	trace.ArmFlight(16, path)
	defer trace.ArmFlight(0, "")

	sys, proto := buildCell(t, 20)
	fl := trace.AttachFlight(sys, 16, "ring-test")
	defer fl.Close()
	runFrames(sys, proto, 400)
	fl.Dump("test")

	meta, frames := parseFlight(t, path)
	if meta == nil {
		t.Fatal("no meta line in dump")
	}
	if got := int64(meta["frames_seen"].(float64)); got != 400 {
		t.Fatalf("frames_seen = %d, want 400", got)
	}
	if got := int64(meta["dropped"].(float64)); got != 400-16 {
		t.Fatalf("dropped = %d, want %d", got, 400-16)
	}
	if len(frames) != 16 {
		t.Fatalf("retained %d frames, want 16", len(frames))
	}
	// Oldest-first, contiguous, ending at the last completed frame.
	for i := 1; i < len(frames); i++ {
		if frames[i].Frame != frames[i-1].Frame+1 {
			t.Fatalf("ring not contiguous at %d: %d then %d", i, frames[i-1].Frame, frames[i].Frame)
		}
	}
	if last := frames[len(frames)-1].Frame; last != 399 {
		t.Fatalf("last frame %d, want 399", last)
	}
	var activity uint64
	for _, ev := range frames {
		activity += ev.Attempts + ev.VoiceOK + ev.VoiceErr + ev.Grants
		if ev.Dur <= 0 {
			t.Fatalf("frame %d has non-positive duration %d", ev.Frame, ev.Dur)
		}
	}
	if activity == 0 {
		t.Fatal("an active voice cell recorded zero MAC activity over 16 frames")
	}
}

func TestFlightDumpsOnDumpAll(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	trace.ArmFlight(8, path)
	defer trace.ArmFlight(0, "")

	sys, proto := buildCell(t, 10)
	fl := trace.AttachFlight(sys, 8, "anomaly-test")
	defer fl.Close()
	runFrames(sys, proto, 50)
	prof.DumpAll("sweep-anomaly: test")

	meta, frames := parseFlight(t, path)
	if meta == nil || len(frames) != 8 {
		t.Fatalf("DumpAll produced meta=%v frames=%d, want meta + 8 frames", meta, len(frames))
	}
	if meta["reason"] != "sweep-anomaly: test" {
		t.Fatalf("reason = %q", meta["reason"])
	}
}

func TestFlightCloseDetaches(t *testing.T) {
	trace.ArmFlight(8, filepath.Join(t.TempDir(), "flight.jsonl"))
	defer trace.ArmFlight(0, "")
	sys, proto := buildCell(t, 10)
	fl := trace.AttachFlight(sys, 8, "close-test")
	runFrames(sys, proto, 10)
	fl.Close()
	if sys.DebugEndFrame != nil {
		t.Fatal("Close left the DebugEndFrame hook installed")
	}
	runFrames(sys, proto, 10) // must not panic or record
}

// TestSIGQUITDumpsFlightJSONL re-executes the test binary, lets the
// helper arm the recorder and raise SIGQUIT against itself, and checks
// the process exits with the dump-handler status and leaves a parseable
// JSONL dump behind — the full operator post-mortem path.
func TestSIGQUITDumpsFlightJSONL(t *testing.T) {
	if os.Getenv("CHARISMA_FLIGHT_SIGQUIT_HELPER") == "1" {
		sigquitHelper()
		return
	}
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	cmd := exec.Command(os.Args[0], "-test.run=TestSIGQUITDumpsFlightJSONL")
	cmd.Env = append(os.Environ(),
		"CHARISMA_FLIGHT_SIGQUIT_HELPER=1",
		"CHARISMA_FLIGHT_PATH="+path)
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("helper exited %v (want exit status 2)\n%s", err, out)
	}
	meta, frames := parseFlight(t, path)
	if meta == nil {
		t.Fatalf("no meta line in SIGQUIT dump\n%s", out)
	}
	if meta["reason"] != "sigquit" {
		t.Fatalf("reason = %q, want sigquit", meta["reason"])
	}
	if len(frames) == 0 {
		t.Fatal("SIGQUIT dump retained no frames")
	}
}

// sigquitHelper runs in the re-executed child: arm, simulate, raise
// SIGQUIT, and wait to be terminated by the dump handler.
func sigquitHelper() {
	trace.ArmFlight(32, os.Getenv("CHARISMA_FLIGHT_PATH"))
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice = 10
	sys, proto, err := sc.Build()
	if err != nil {
		os.Exit(3)
	}
	proto.Init(sys)
	fl := trace.AttachFlight(sys, 32, "sigquit-helper")
	defer fl.Close()
	for i := 0; i < 100; i++ {
		sys.BeginFrame()
		sys.EndFrame(proto.RunFrame(sys))
	}
	_ = syscall.Kill(os.Getpid(), syscall.SIGQUIT)
	time.Sleep(30 * time.Second) // the handler exits the process first
	os.Exit(3)
}
