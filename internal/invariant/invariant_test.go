package invariant

import (
	"testing"

	"charisma/internal/core"
	"charisma/internal/grid"
	"charisma/internal/scengen"
)

func checkSpec(t *testing.T, spec grid.JobSpec) Report {
	t.Helper()
	rep, err := Check(spec)
	if err != nil {
		t.Fatalf("check failed to run: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("spec %s seed %d: %s", rep.Hash[:12], spec.BaseSeed(), v)
	}
	return rep
}

func TestCheckDefaultScenario(t *testing.T) {
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumData = 5
	sc.WarmupSec, sc.DurationSec = 0.25, 1
	checkSpec(t, grid.ScenarioSpec(sc))
}

func TestCheckMulticell(t *testing.T) {
	spec := grid.JobSpec{Kind: grid.KindMulticell}
	pt := scengen.One(scengen.Config{Seed: 3, Count: 1, MaxCells: 2, MulticellFrac: 1}, 0)
	spec = pt.Spec
	if spec.Kind != grid.KindMulticell {
		t.Fatalf("expected a multicell draw, got %s", spec.Kind)
	}
	checkSpec(t, spec)
}

func TestCheckRejectsInvalidSpec(t *testing.T) {
	if _, err := Check(grid.JobSpec{Kind: "scenario"}); err == nil {
		t.Fatal("invalid spec checked without error")
	}
}

// TestGeneratedCorpusInvariants is the property suite the ISSUE asks for:
// 50 generated scenarios, each run under all six protocols, every
// invariant asserted. On failure the corpus seed, entry index, spec hash
// and scenario seed are in the test log — a one-line repro via
// scengen.One or charisma-scen check.
func TestGeneratedCorpusInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is not short")
	}
	const corpusSeed, entries = 20260808, 50
	cfg := scengen.Config{
		Seed:  corpusSeed,
		Count: entries,
		// Single-cell only: the per-protocol loop below covers RMAV,
		// which multi-cell deployments reject.
		MaxCells:       1,
		MaxVoice:       24,
		MaxData:        8,
		MinDurationSec: 0.4,
		MaxDurationSec: 0.9,
	}
	pts := scengen.Generate(cfg)
	t.Logf("corpus seed %d: %d entries × %d protocols", corpusSeed, len(pts), len(core.Protocols()))
	for i, pt := range pts {
		for _, proto := range core.Protocols() {
			sc := *pt.Spec.Scenario
			sc.Protocol = proto
			spec := grid.ScenarioSpec(sc)
			rep, err := Check(spec)
			if err != nil {
				t.Fatalf("corpus seed %d entry %d proto %s (scenario seed %d): %v",
					corpusSeed, i, proto, sc.Seed, err)
			}
			for _, v := range rep.Violations {
				t.Errorf("corpus seed %d entry %d proto %s (scenario seed %d, spec %s): %s",
					corpusSeed, i, proto, sc.Seed, rep.Hash[:12], v)
			}
		}
	}
}
