// Package invariant is a property-based checker for the simulator: it
// runs any grid.JobSpec and asserts the protocol-independent laws every
// run must satisfy, regardless of parameters.
//
//   - Conservation (single-cell specs): every generated packet is
//     accounted for. Voice: generated = delivered + errored + dropped +
//     still-buffered. Data: generated = delivered + still-backlogged
//     (failed data transmissions stay queued for ARQ). The system's
//     metric counters must also agree with the per-source lifetime
//     counters — two independent bookkeepers of the same events.
//   - Bounds: rates in [0, 1], frame count positive, delays ordered
//     (0 ≤ min ≤ mean ≤ max ≤ warmup+duration), every float finite.
//   - Determinism: running the same spec and seed twice yields
//     byte-identical canonical JSON; pooling two replications yields
//     finite across-replication CI95 half-widths.
//
// Conservation is checked on a dedicated warm-up-free run (the metric
// window would otherwise split packet lifetimes across the mark), driving
// the same Build/frame loop Scenario.Run uses but never calling Mark, so
// window counters equal lifetime totals and the laws are exact equalities.
package invariant

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"charisma/internal/core"
	"charisma/internal/grid"
	"charisma/internal/mac"
	"charisma/internal/sim"
)

// Violation is one failed invariant.
type Violation struct {
	// Invariant names the violated law (e.g. "voice-conservation").
	Invariant string
	// Detail says which quantities disagreed and how.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Report is the outcome of checking one spec.
type Report struct {
	// Hash is the checked spec's content hash — with the spec's seed, a
	// one-line repro for any violation.
	Hash string
	// Result is the replication-0 result the bounds were checked on.
	Result mac.Result
	// Violations is empty when every invariant held.
	Violations []Violation
}

// OK reports whether every invariant held.
func (r Report) OK() bool { return len(r.Violations) == 0 }

func (r *Report) violate(invariant, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// Check runs the spec and asserts every applicable invariant. The error
// return is for specs that cannot run at all (invalid parameters); a spec
// that runs but breaks a law reports violations instead.
func Check(spec grid.JobSpec) (Report, error) {
	if err := spec.Validate(); err != nil {
		return Report{}, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return Report{}, err
	}
	rep := Report{Hash: hash}

	r0, err := spec.RunRep(0)
	if err != nil {
		return Report{}, err
	}
	rep.Result = r0
	checkBounds(&rep, spec, r0)

	// Determinism: same spec + seed ⇒ byte-identical canonical JSON.
	again, err := spec.RunRep(0)
	if err != nil {
		return Report{}, err
	}
	b0, err := json.Marshal(r0)
	if err != nil {
		return Report{}, err
	}
	b1, err := json.Marshal(again)
	if err != nil {
		return Report{}, err
	}
	if !bytes.Equal(b0, b1) {
		rep.violate("determinism", "same spec+seed produced different results:\n%s\n%s", b0, b1)
	}

	// Across-replication statistics stay finite.
	r1, err := spec.RunRep(1)
	if err != nil {
		return Report{}, err
	}
	agg := mac.AggregateReplications([]mac.Result{r0, r1})
	if agg.Reps.Replications != 2 {
		rep.violate("aggregation", "pooled 2 replications, Reps.Replications = %d", agg.Reps.Replications)
	}
	for name, v := range map[string]float64{
		"Reps.VoiceLossCI95":      agg.Reps.VoiceLossCI95,
		"Reps.DataThroughputCI95": agg.Reps.DataThroughputCI95,
		"Reps.DataDelayCI95":      agg.Reps.DataDelayCI95,
		"DataDelayCI95":           agg.DataDelayCI95,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			rep.violate("ci95-finite", "%s = %v", name, v)
		}
	}

	if spec.Kind == grid.KindScenario {
		if err := checkConservation(&rep, *spec.Scenario); err != nil {
			return Report{}, err
		}
	}
	return rep, nil
}

// window returns the spec's warm-up and measured seconds after defaults.
func window(spec grid.JobSpec) (warmup, duration float64) {
	switch spec.Kind {
	case grid.KindScenario:
		sc := spec.Scenario.WithDefaults()
		return sc.WarmupSec, sc.DurationSec
	default:
		p := spec.Multicell.WithDefaults()
		return p.WarmupSec, p.DurationSec
	}
}

func checkBounds(rep *Report, spec grid.JobSpec, r mac.Result) {
	for name, v := range map[string]float64{
		"VoiceLossRate":   r.VoiceLossRate,
		"VoiceDropRate":   r.VoiceDropRate,
		"VoiceErrorRate":  r.VoiceErrorRate,
		"CollisionRate":   r.CollisionRate,
		"InfoUtilization": r.InfoUtilization,
	} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			rep.violate("rate-bounds", "%s = %v outside [0, 1]", name, v)
		}
	}
	if math.IsNaN(r.Frames) || r.Frames <= 0 {
		rep.violate("frames-positive", "Frames = %v over a positive measurement window", r.Frames)
	}
	if math.IsNaN(r.DataThroughputPerFrame) || math.IsInf(r.DataThroughputPerFrame, 0) || r.DataThroughputPerFrame < 0 {
		rep.violate("throughput-bounds", "DataThroughputPerFrame = %v", r.DataThroughputPerFrame)
	}
	warmup, duration := window(spec)
	horizon := warmup + duration
	switch {
	case math.IsNaN(r.MinDataDelaySec) || r.MinDataDelaySec < 0:
		rep.violate("delay-order", "MinDataDelaySec = %v", r.MinDataDelaySec)
	case math.IsNaN(r.MeanDataDelaySec) || r.MeanDataDelaySec < r.MinDataDelaySec:
		rep.violate("delay-order", "mean %v below min %v", r.MeanDataDelaySec, r.MinDataDelaySec)
	case math.IsNaN(r.MaxDataDelaySec) || r.MaxDataDelaySec < r.MeanDataDelaySec:
		rep.violate("delay-order", "max %v below mean %v", r.MaxDataDelaySec, r.MeanDataDelaySec)
	case r.MaxDataDelaySec > horizon:
		rep.violate("delay-order", "max delay %v exceeds the %vs simulated horizon", r.MaxDataDelaySec, horizon)
	}
	if math.IsNaN(r.DataDelayCI95) || math.IsInf(r.DataDelayCI95, 0) || r.DataDelayCI95 < 0 {
		rep.violate("ci95-finite", "DataDelayCI95 = %v", r.DataDelayCI95)
	}
}

// census is the end-of-run sum over every station's source counters.
type census struct {
	vGen, vDrop, vBuf uint64
	dGen, dBack       uint64
}

// checkConservation drives a warm-up-free replication of the scenario and
// asserts the exact packet-accounting laws against a full station census.
func checkConservation(rep *Report, sc core.Scenario) error {
	sc = sc.WithDefaults()
	sys, proto, err := sc.Build()
	if err != nil {
		return err
	}
	proto.Init(sys)
	eng := sim.NewEngine()
	limit := sim.FromSeconds(sc.WarmupSec) + sim.FromSeconds(sc.DurationSec)
	eng.ScheduleEvery(0, func(e *sim.Engine) sim.Time {
		sys.BeginFrame()
		dur := proto.RunFrame(sys)
		sys.EndFrame(dur)
		if sys.Now() >= limit {
			return -1
		}
		return dur
	})
	eng.Run()

	// Deferred stations that never woke materialize now with zero
	// lifetime counts — the census must still visit them.
	sys.MaterializeAll()
	var c census
	for _, st := range sys.Stations {
		if v := st.Voice(); v != nil {
			c.vGen += v.Generated()
			c.vDrop += v.Dropped()
			c.vBuf += uint64(v.Buffered())
		}
		if d := st.Data(); d != nil {
			c.dGen += d.Generated()
			c.dBack += uint64(d.Backlog())
		}
	}

	// Mark was never called, so Since() counters are lifetime totals.
	m := &sys.M
	vGen, vDrop := m.VoiceGenerated.Total(), m.VoiceDropped.Total()
	vOK, vErr := m.VoiceTxOK.Total(), m.VoiceTxErr.Total()
	dGen, dOK := m.DataGenerated.Total(), m.DataDelivered.Total()

	if vGen != vOK+vErr+vDrop+c.vBuf {
		rep.violate("voice-conservation", "generated %d != delivered %d + errored %d + dropped %d + buffered %d",
			vGen, vOK, vErr, vDrop, c.vBuf)
	}
	if dGen != dOK+c.dBack {
		rep.violate("data-conservation", "generated %d != delivered %d + backlogged %d", dGen, dOK, c.dBack)
	}
	if vGen != c.vGen {
		rep.violate("voice-census", "metric counter saw %d generated, sources saw %d", vGen, c.vGen)
	}
	if vDrop != c.vDrop {
		rep.violate("voice-census", "metric counter saw %d dropped, sources saw %d", vDrop, c.vDrop)
	}
	if dGen != c.dGen {
		rep.violate("data-census", "metric counter saw %d generated, sources saw %d", dGen, c.dGen)
	}
	return nil
}
