package multicell

import (
	"context"
	"math"
	"testing"

	"charisma/internal/core"
	"charisma/internal/run"
)

func quickParams() Params {
	p := DefaultParams()
	p.NumVoice = 30
	p.WarmupSec = 1
	p.DurationSec = 6
	return p
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	p := DefaultParams()
	p.Cells = 1
	if p.Validate() == nil {
		t.Fatal("single cell accepted")
	}
	p = DefaultParams()
	p.Protocol = core.ProtoRMAV
	if p.Validate() == nil {
		t.Fatal("variable-frame protocol accepted")
	}
	p = DefaultParams()
	p.NumVoice, p.NumData = 0, 0
	if p.Validate() == nil {
		t.Fatal("empty deployment accepted")
	}
	p = DefaultParams()
	p.DecisionPeriodFrames = 0
	if p.Validate() == nil {
		t.Fatal("zero decision period accepted")
	}
}

func TestRunProducesAggregateMetrics(t *testing.T) {
	r, err := Run(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.VoiceGenerated == 0 {
		t.Fatal("no voice traffic")
	}
	if len(r.PerCell) != 2 {
		t.Fatalf("%d per-cell results", len(r.PerCell))
	}
	var sum uint64
	for _, c := range r.PerCell {
		sum += c.VoiceGenerated
	}
	if sum != r.VoiceGenerated {
		t.Fatal("aggregate does not equal per-cell sum")
	}
	if r.VoiceLossRate < 0 || r.VoiceLossRate > 1 {
		t.Fatalf("loss %v out of range", r.VoiceLossRate)
	}
}

func TestHandoffsHappen(t *testing.T) {
	p := quickParams()
	p.DurationSec = 10
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	// With 1 s shadow coherence and a 4 dB hysteresis over 11 s, users
	// must have crossed cells.
	if d.Handoffs() == 0 {
		t.Fatal("no handoffs in 11 s of shadow evolution")
	}
}

func TestDisableHandoffFreezesAttachment(t *testing.T) {
	p := quickParams()
	p.DisableHandoff = true
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Handoffs() != 0 {
		t.Fatal("handoffs executed despite DisableHandoff")
	}
}

// The channel-quality handoff rule is the point of the extension: it must
// beat static attachment on voice loss under load.
func TestHandoffBeatsStaticAttachment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(disable bool) float64 {
		p := DefaultParams()
		p.NumVoice = 160            // ~80 per cell: near single-cell capacity
		p.Channel.ShadowSigmaDB = 8 // deep shadowing: stuck users suffer
		p.WarmupSec = 1
		p.DurationSec = 12
		p.DisableHandoff = disable
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return r.VoiceLossRate
	}
	withHO := run(false)
	static := run(true)
	if withHO >= static {
		t.Fatalf("handoff (%.4f) not better than static attachment (%.4f)", withHO, static)
	}
}

func TestExactlyOneLiveCloneInvariant(t *testing.T) {
	p := quickParams()
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		for k, u := range d.users {
			live := 0
			for _, st := range u.clones {
				if st.Voice != nil || st.Data != nil {
					live++
				}
			}
			if live != 1 {
				t.Fatalf("user %d has %d live clones", k, live)
			}
		}
	}
	check()
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	check()
}

func TestDeterminism(t *testing.T) {
	a, err := Run(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.VoiceLossRate != b.VoiceLossRate || a.Handoffs != b.Handoffs {
		t.Fatal("deployment not deterministic")
	}
}

func TestWorksWithFixedPHYProtocol(t *testing.T) {
	p := quickParams()
	p.Protocol = core.ProtoDTDMAFR
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.VoiceGenerated == 0 {
		t.Fatal("no traffic under D-TDMA/FR cells")
	}
}

func TestHysteresisDampensHandoffs(t *testing.T) {
	run := func(hyst float64) uint64 {
		p := quickParams()
		p.HysteresisDB = hyst
		d, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(); err != nil {
			t.Fatal(err)
		}
		return d.Handoffs()
	}
	loose, tight := run(0), run(10)
	if tight >= loose {
		t.Fatalf("hysteresis 10 dB (%d handoffs) not below 0 dB (%d)", tight, loose)
	}
}

func TestRunReplicatedSingleMatchesRun(t *testing.T) {
	p := quickParams()
	p.DurationSec = 3
	single, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunReplicated(context.Background(), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result != single.Result || rep.Handoffs != single.Handoffs {
		t.Fatal("1-replication RunReplicated differs from Run")
	}
}

func TestRunReplicatedAggregates(t *testing.T) {
	p := quickParams()
	p.DurationSec = 3
	const reps = 3
	r, err := RunReplicated(context.Background(), p, reps)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reps.Replications != reps {
		t.Fatalf("Replications = %d, want %d", r.Reps.Replications, reps)
	}
	if len(r.PerCell) != p.Cells {
		t.Fatalf("%d per-cell results, want %d", len(r.PerCell), p.Cells)
	}
	for c, pc := range r.PerCell {
		if pc.Reps.Replications != reps {
			t.Fatalf("cell %d Replications = %d, want %d", c, pc.Reps.Replications, reps)
		}
	}
	single, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.VoiceGenerated <= single.VoiceGenerated {
		t.Fatal("pooled counters not larger than a single deployment")
	}
	// Determinism: replication is a fixed fold over fixed seeds.
	r2, err := RunReplicated(context.Background(), p, reps)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result != r2.Result || r.Handoffs != r2.Handoffs {
		t.Fatal("replicated multicell run not deterministic")
	}
}

// Regression: the replicated deployment-level throughput must stay in the
// per-cell-frame normalization Run uses — pooling across reps must not
// shrink it by the cell count — and CollisionRate must be present for
// single runs exactly as for aggregates.
func TestRunReplicatedThroughputNormalization(t *testing.T) {
	p := quickParams()
	p.NumVoice, p.NumData = 10, 10
	p.DurationSec = 3
	single, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if single.DataThroughputPerFrame <= 0 {
		t.Fatal("no data throughput in single run")
	}
	if single.ReqCollisions > 0 && single.CollisionRate == 0 {
		t.Fatal("single-run CollisionRate missing despite collisions")
	}
	rep, err := RunReplicated(context.Background(), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Exact invariant: pooled throughput is total delivered over total
	// per-cell frames, in the same normalization Run uses. Recompute it
	// from the three individual replications.
	var delivered uint64
	var frames float64
	for i := 0; i < 3; i++ {
		pi := p
		pi.Seed = run.RepSeed(p.Seed, i)
		ri, err := Run(pi)
		if err != nil {
			t.Fatal(err)
		}
		delivered += ri.DataDelivered
		frames += ri.Frames
	}
	want := float64(delivered) / (frames / float64(p.Cells))
	if math.Abs(rep.DataThroughputPerFrame-want) > 1e-9 {
		t.Fatalf("replicated throughput %v, want %v (per-cell-frame normalization)",
			rep.DataThroughputPerFrame, want)
	}
	// Sanity: the single run must be on the same scale (a cells-factor bug
	// would halve one of them).
	if single.DataThroughputPerFrame <= 0 || want <= 0 {
		t.Fatal("throughputs vanished")
	}
}
