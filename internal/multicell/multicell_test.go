package multicell

import (
	"context"
	"math"
	"runtime"
	"testing"

	"charisma/internal/core"
	"charisma/internal/run"
)

func quickParams() Params {
	p := DefaultParams()
	p.NumVoice = 30
	p.WarmupSec = 1
	p.DurationSec = 6
	return p
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	p := DefaultParams()
	p.Cells = 1
	if p.Validate() == nil {
		t.Fatal("single cell accepted")
	}
	p = DefaultParams()
	p.Protocol = core.ProtoRMAV
	if p.Validate() == nil {
		t.Fatal("variable-frame protocol accepted")
	}
	p = DefaultParams()
	p.NumVoice, p.NumData = 0, 0
	if p.Validate() == nil {
		t.Fatal("empty deployment accepted")
	}
	p = DefaultParams()
	p.DecisionPeriodFrames = 0
	if p.Validate() == nil {
		t.Fatal("zero decision period accepted")
	}
}

func TestRunProducesAggregateMetrics(t *testing.T) {
	r, err := Run(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.VoiceGenerated == 0 {
		t.Fatal("no voice traffic")
	}
	if len(r.PerCell) != 2 {
		t.Fatalf("%d per-cell results", len(r.PerCell))
	}
	var sum uint64
	for _, c := range r.PerCell {
		sum += c.VoiceGenerated
	}
	if sum != r.VoiceGenerated {
		t.Fatal("aggregate does not equal per-cell sum")
	}
	if r.VoiceLossRate < 0 || r.VoiceLossRate > 1 {
		t.Fatalf("loss %v out of range", r.VoiceLossRate)
	}
}

func TestHandoffsHappen(t *testing.T) {
	p := quickParams()
	p.DurationSec = 10
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	// With 1 s shadow coherence and a 4 dB hysteresis over 11 s, users
	// must have crossed cells.
	if d.Handoffs() == 0 {
		t.Fatal("no handoffs in 11 s of shadow evolution")
	}
}

func TestDisableHandoffFreezesAttachment(t *testing.T) {
	p := quickParams()
	p.DisableHandoff = true
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Handoffs() != 0 {
		t.Fatal("handoffs executed despite DisableHandoff")
	}
}

// The channel-quality handoff rule is the point of the extension: it must
// beat static attachment on voice loss under load.
func TestHandoffBeatsStaticAttachment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(disable bool) float64 {
		p := DefaultParams()
		p.NumVoice = 160            // ~80 per cell: near single-cell capacity
		p.Channel.ShadowSigmaDB = 8 // deep shadowing: stuck users suffer
		p.WarmupSec = 1
		p.DurationSec = 12
		p.DisableHandoff = disable
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return r.VoiceLossRate
	}
	withHO := run(false)
	static := run(true)
	if withHO >= static {
		t.Fatalf("handoff (%.4f) not better than static attachment (%.4f)", withHO, static)
	}
}

func TestExactlyOneLiveCloneInvariant(t *testing.T) {
	p := quickParams()
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		for k, u := range d.users {
			live := 0
			for _, st := range u.clones {
				if st.Voice() != nil || st.Data() != nil {
					live++
				}
			}
			if live != 1 {
				t.Fatalf("user %d has %d live clones", k, live)
			}
		}
	}
	check()
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	check()
}

// TestShardedDeterminismAcrossWorkerCounts pins the sharding contract:
// cells advance on their own goroutines between decision epochs, and the
// result must be byte-identical to the sequential path for any shard
// count — deployment aggregate, handoffs, and every per-cell result.
func TestShardedDeterminismAcrossWorkerCounts(t *testing.T) {
	p := quickParams()
	p.Cells = 4
	p.NumVoice, p.NumData = 40, 4
	p.DurationSec = 4
	var base Result
	for i, w := range []int{1, 2, runtime.NumCPU()} {
		pi := p
		pi.Workers = w
		r, err := Run(pi)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if i == 0 {
			base = r
			continue
		}
		if r.Result != base.Result || r.Handoffs != base.Handoffs {
			t.Fatalf("workers=%d: aggregate differs from sequential", w)
		}
		if len(r.PerCell) != len(base.PerCell) {
			t.Fatalf("workers=%d: %d cells, want %d", w, len(r.PerCell), len(base.PerCell))
		}
		for c := range r.PerCell {
			if r.PerCell[c] != base.PerCell[c] {
				t.Fatalf("workers=%d: cell %d differs from sequential", w, c)
			}
		}
	}
}

// TestRegistryInvariantUnderSharding checks the bucket partition of every
// cell's station registry while cells advance concurrently (run with -race
// in CI, this also exercises the epoch barrier).
func TestRegistryInvariantUnderSharding(t *testing.T) {
	p := quickParams()
	p.Cells = 3
	p.NumVoice, p.NumData = 30, 3
	p.DurationSec = 3
	p.Workers = runtime.NumCPU()
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for c, sys := range d.systems {
		if err := sys.VerifyRegistry(); err != nil {
			t.Fatalf("cell %d: %v", c, err)
		}
	}
}

// TestPlanJobJoinsScenarioPlans checks the run-plan integration: a
// multicell deployment rides the same replication plan (and seed
// discipline) as single-cell scenarios.
func TestPlanJobJoinsScenarioPlans(t *testing.T) {
	p := quickParams()
	p.NumVoice, p.NumData = 20, 8 // data traffic: the throughput normalization must survive the plan fold
	p.DurationSec = 3
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice = 10
	sc.WarmupSec, sc.DurationSec = 0.5, 1

	plan := run.Plan{Jobs: []run.Job{
		{Scenario: sc, Replications: 1},
		PlanJob(p, 2),
	}}
	rs, err := run.Runner{}.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d results, want 2", len(rs))
	}
	if rs[0].Protocol != core.ProtoCharisma || rs[0].VoiceGenerated == 0 {
		t.Fatal("scenario job did not run")
	}
	want, err := RunReplicated(context.Background(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want.DataDelivered == 0 {
		t.Fatal("deployment delivered no data; normalization not exercised")
	}
	// The plan currency normalizes Frames to per-cell-frame equivalents;
	// every other field — in particular the per-cell-frame throughput —
	// must match the dedicated aggregation path exactly.
	if got, expect := rs[1].Frames, want.Frames/float64(p.Cells); math.Abs(got-expect) > 1e-9 {
		t.Fatalf("plan job Frames %v, want %v (per-cell-frame normalization)", got, expect)
	}
	if math.Abs(rs[1].DataThroughputPerFrame-want.DataThroughputPerFrame) > 1e-9 {
		t.Fatalf("plan job throughput %v, RunReplicated %v", rs[1].DataThroughputPerFrame, want.DataThroughputPerFrame)
	}
	got := rs[1]
	got.Frames = want.Frames
	got.DataThroughputPerFrame = want.DataThroughputPerFrame
	got.InfoUtilization = want.InfoUtilization // frame-weighted; weights differ only by the constant cell factor
	if got != want.Result {
		t.Fatal("multicell plan job differs from RunReplicated beyond normalization")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.VoiceLossRate != b.VoiceLossRate || a.Handoffs != b.Handoffs {
		t.Fatal("deployment not deterministic")
	}
}

// Regression: a handoff detaches a clone's traffic sources while DRMA's
// protocol-internal pending list may still reference the station; the next
// frame of the old cell must scrub the orphaned grant instead of
// nil-dereferencing the detached sources.
func TestHandoffWithDRMAPendingGrants(t *testing.T) {
	p := quickParams()
	p.Protocol = core.ProtoDRMA
	p.Cells = 4
	p.NumVoice, p.NumData = 60, 12
	p.HysteresisDB = 0 // maximize handoff churn
	p.DecisionPeriodFrames = 4
	p.DurationSec = 6
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Handoffs() == 0 {
		t.Fatal("scenario produced no handoffs; regression not exercised")
	}
}

func TestWorksWithFixedPHYProtocol(t *testing.T) {
	p := quickParams()
	p.Protocol = core.ProtoDTDMAFR
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.VoiceGenerated == 0 {
		t.Fatal("no traffic under D-TDMA/FR cells")
	}
}

func TestHysteresisDampensHandoffs(t *testing.T) {
	run := func(hyst float64) uint64 {
		p := quickParams()
		p.HysteresisDB = hyst
		d, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(); err != nil {
			t.Fatal(err)
		}
		return d.Handoffs()
	}
	loose, tight := run(0), run(10)
	if tight >= loose {
		t.Fatalf("hysteresis 10 dB (%d handoffs) not below 0 dB (%d)", tight, loose)
	}
}

func TestRunReplicatedSingleMatchesRun(t *testing.T) {
	p := quickParams()
	p.DurationSec = 3
	single, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// Replication metadata flows only from the aggregation layer: a bare
	// deployment run carries none, RunReplicated stamps it.
	if single.Reps.Replications != 0 {
		t.Fatalf("Run carries rep metadata: %+v", single.Reps)
	}
	rep, err := RunReplicated(context.Background(), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reps.Replications != 1 {
		t.Fatalf("RunReplicated(1) Replications = %d, want 1", rep.Reps.Replications)
	}
	rep.Result.Reps = single.Result.Reps
	if rep.Result != single.Result || rep.Handoffs != single.Handoffs {
		t.Fatal("1-replication RunReplicated differs from Run beyond rep metadata")
	}
}

func TestRunReplicatedAggregates(t *testing.T) {
	p := quickParams()
	p.DurationSec = 3
	const reps = 3
	r, err := RunReplicated(context.Background(), p, reps)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reps.Replications != reps {
		t.Fatalf("Replications = %d, want %d", r.Reps.Replications, reps)
	}
	if len(r.PerCell) != p.Cells {
		t.Fatalf("%d per-cell results, want %d", len(r.PerCell), p.Cells)
	}
	for c, pc := range r.PerCell {
		if pc.Reps.Replications != reps {
			t.Fatalf("cell %d Replications = %d, want %d", c, pc.Reps.Replications, reps)
		}
	}
	single, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.VoiceGenerated <= single.VoiceGenerated {
		t.Fatal("pooled counters not larger than a single deployment")
	}
	// Determinism: replication is a fixed fold over fixed seeds.
	r2, err := RunReplicated(context.Background(), p, reps)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result != r2.Result || r.Handoffs != r2.Handoffs {
		t.Fatal("replicated multicell run not deterministic")
	}
}

// Regression: the replicated deployment-level throughput must stay in the
// per-cell-frame normalization Run uses — pooling across reps must not
// shrink it by the cell count — and CollisionRate must be present for
// single runs exactly as for aggregates.
func TestRunReplicatedThroughputNormalization(t *testing.T) {
	p := quickParams()
	p.NumVoice, p.NumData = 10, 10
	p.DurationSec = 3
	single, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if single.DataThroughputPerFrame <= 0 {
		t.Fatal("no data throughput in single run")
	}
	if single.ReqCollisions > 0 && single.CollisionRate == 0 {
		t.Fatal("single-run CollisionRate missing despite collisions")
	}
	rep, err := RunReplicated(context.Background(), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Exact invariant: pooled throughput is total delivered over total
	// per-cell frames, in the same normalization Run uses. Recompute it
	// from the three individual replications.
	var delivered uint64
	var frames float64
	for i := 0; i < 3; i++ {
		pi := p
		pi.Seed = run.RepSeed(p.Seed, i)
		ri, err := Run(pi)
		if err != nil {
			t.Fatal(err)
		}
		delivered += ri.DataDelivered
		frames += ri.Frames
	}
	want := float64(delivered) / (frames / float64(p.Cells))
	if math.Abs(rep.DataThroughputPerFrame-want) > 1e-9 {
		t.Fatalf("replicated throughput %v, want %v (per-cell-frame normalization)",
			rep.DataThroughputPerFrame, want)
	}
	// Sanity: the single run must be on the same scale (a cells-factor bug
	// would halve one of them).
	if single.DataThroughputPerFrame <= 0 || want <= 0 {
		t.Fatal("throughputs vanished")
	}
}
