// Package multicell implements the paper's second future-work item (§6):
// coordinating CHARISMA-style cells so that a nomadic user attaches to the
// base station that is best "from a channel quality point of view".
//
// Each user maintains an independent composite fading process toward every
// base station (different paths, different terrain, hence independent
// shadowing). Every decision period the deployment re-evaluates
// attachments: a user hands off when another base station's local-mean
// (long-term) amplitude exceeds its current one by a hysteresis margin —
// the classical shadowing-driven handoff rule. A handoff is not free: the
// user loses its reservation and any queued requests and must re-enter the
// new cell through the request contention phase.
//
// The implementation keeps one station *clone* per (user, cell). Exactly
// one clone — the attached one — carries the user's live traffic sources;
// the others are inert but keep their channel processes advancing, so
// every link's sample path is time-consistent when the handoff rule
// consults it.
package multicell

import (
	"context"
	"fmt"

	"charisma/internal/channel"
	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/phy"
	"charisma/internal/rng"
	"charisma/internal/run"
	"charisma/internal/sim"
	"charisma/internal/stats"
	"charisma/internal/traffic"
)

// Params configures a multi-cell deployment.
type Params struct {
	// Cells is the number of base stations (≥ 2).
	Cells int
	// Protocol is the per-cell uplink MAC (any fixed-frame protocol;
	// RMAV's variable frames cannot be cell-synchronized and are
	// rejected).
	Protocol string
	// NumVoice and NumData are deployment-wide user counts.
	NumVoice int
	NumData  int
	// UseQueue enables the per-cell BS request queue.
	UseQueue bool
	// HysteresisDB is the long-term-CSI advantage (amplitude dB) a
	// neighbour cell must show before a handoff triggers.
	HysteresisDB float64
	// DecisionPeriodFrames is how often attachments are re-evaluated.
	DecisionPeriodFrames int
	// DisableHandoff freezes the initial attachment (the baseline the
	// channel-quality rule is measured against).
	DisableHandoff bool
	// Workers bounds the goroutines advancing cells concurrently between
	// handoff decision epochs; values below 1 mean GOMAXPROCS. Results
	// are byte-identical for any worker count: cells only couple at
	// decision boundaries, where the deployment synchronizes.
	Workers int
	// Seed drives all randomness.
	Seed int64
	// WarmupSec / DurationSec bracket the measurement window.
	WarmupSec   float64
	DurationSec float64

	// Channel, PHY and MAC default like core.Scenario.
	Channel channel.Params
	PHY     phy.Params
	MAC     mac.Config
}

// DefaultParams returns a two-cell deployment with a 4 dB hysteresis and
// 100 ms decision period.
func DefaultParams() Params {
	return Params{
		Cells:                2,
		Protocol:             core.ProtoCharisma,
		NumVoice:             60,
		HysteresisDB:         4,
		DecisionPeriodFrames: 40,
		Seed:                 1,
		WarmupSec:            2,
		DurationSec:          20,
		Channel:              channel.DefaultParams(),
		PHY:                  phy.DefaultParams(),
		MAC:                  mac.DefaultConfig(),
	}
}

// WithDefaults returns the params with zero-valued substrate knobs
// replaced by the calibrated defaults, mirroring core.Scenario: it is the
// normalization New applies before validating, exposed so external
// loaders (the grid's scenario files) can validate a deployment as it
// will actually run.
func (p Params) WithDefaults() Params {
	if p.Channel == (channel.Params{}) {
		p.Channel = channel.DefaultParams()
	}
	if len(p.PHY.Etas) == 0 {
		p.PHY = phy.DefaultParams()
	}
	if p.MAC.Geometry.FrameSymbols == 0 {
		p.MAC = mac.DefaultConfig()
	}
	p.MAC.UseQueue = p.UseQueue
	if p.WarmupSec <= 0 {
		p.WarmupSec = 2
	}
	if p.DurationSec <= 0 {
		p.DurationSec = 20
	}
	return p
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Cells < 2 {
		return fmt.Errorf("multicell: need at least 2 cells, got %d", p.Cells)
	}
	if p.Protocol == core.ProtoRMAV {
		return fmt.Errorf("multicell: RMAV's variable frames cannot be cell-synchronized")
	}
	if _, err := core.NewProtocol(p.Protocol); err != nil {
		return err
	}
	if p.NumVoice+p.NumData == 0 {
		return fmt.Errorf("multicell: no users")
	}
	if p.DecisionPeriodFrames < 1 {
		return fmt.Errorf("multicell: decision period %d frames", p.DecisionPeriodFrames)
	}
	if p.HysteresisDB < 0 {
		return fmt.Errorf("multicell: negative hysteresis")
	}
	if err := p.Channel.Validate(); err != nil {
		return err
	}
	if err := p.PHY.Validate(); err != nil {
		return err
	}
	if err := p.MAC.Validate(); err != nil {
		return err
	}
	return nil
}

// user is one nomadic terminal with a link to every cell.
type user struct {
	voice  *traffic.VoiceSource
	data   *traffic.DataSource
	clones []*mac.Station // one per cell; exactly one carries the sources
	cell   int
}

// Deployment is a running multi-cell simulation.
type Deployment struct {
	p       Params
	users   []*user
	systems []*mac.System
	protos  []mac.Protocol
	marked  []bool // per cell: measurement window opened

	handoffs uint64
	now      sim.Time

	dbScratch []float64 // per-decision clone dB cache (one entry per cell)
}

// New assembles a deployment.
func New(p Params) (*Deployment, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := &Deployment{p: p}

	n := p.NumVoice + p.NumData
	// One shared fading plane per cell: clone k of cell c is view k of
	// cell c's bank. Each (cell, user) link keeps its own private stream
	// derived from (seed, "mc-chan", c, k), so the per-link sample paths
	// are byte-identical to the former one-object-per-clone layout while
	// the per-cell frame loop advances one contiguous plane.
	banks := make([]*channel.Bank, p.Cells)
	for c := 0; c < p.Cells; c++ {
		c := c
		banks[c] = channel.NewBankFunc(n, func(k int) (channel.Params, *rng.Stream) {
			return p.Channel, rng.DeriveIndexed(p.Seed, "mc-chan", c, k)
		})
	}
	// Build clones: cell-local station lists with dense local IDs.
	cellStations := make([][]*mac.Station, p.Cells)
	for k := 0; k < n; k++ {
		u := &user{clones: make([]*mac.Station, p.Cells)}
		if k < p.NumVoice {
			u.voice = traffic.NewVoice(traffic.DefaultVoiceParams(),
				rng.DeriveIndexed(p.Seed, "mc-voice", k), 0)
		} else {
			u.data = traffic.NewData(traffic.DefaultDataParams(),
				rng.DeriveIndexed(p.Seed, "mc-data", k), 0)
		}
		bestCell, bestDB := 0, -1e18
		for c := 0; c < p.Cells; c++ {
			fad := banks[c].User(k)
			st := mac.NewStation(k, nil, nil, fad)
			u.clones[c] = st
			cellStations[c] = append(cellStations[c], st)
			if db := fad.LongTermDB(); db > bestDB {
				bestCell, bestDB = c, db
			}
		}
		u.cell = bestCell
		d.attach(u, bestCell)
		d.users = append(d.users, u)
	}

	for c := 0; c < p.Cells; c++ {
		var modem phy.PHY
		if core.AdaptivePHYFor(p.Protocol) {
			modem = phy.NewAdaptive(p.PHY)
		} else {
			modem = phy.NewFixed(p.PHY)
		}
		sys, err := mac.NewSystem(p.MAC, modem, cellStations[c],
			rng.Derive(p.Seed, "mc-mac", fmt.Sprint(c), p.Protocol))
		if err != nil {
			return nil, err
		}
		proto, err := core.NewProtocol(p.Protocol)
		if err != nil {
			return nil, err
		}
		proto.Init(sys)
		d.systems = append(d.systems, sys)
		d.protos = append(d.protos, proto)
	}
	d.marked = make([]bool, p.Cells)
	d.dbScratch = make([]float64, p.Cells)
	return d, nil
}

// attach points cell c's clone at the user's live traffic sources.
func (d *Deployment) attach(u *user, c int) {
	st := u.clones[c]
	st.SetTraffic(u.voice, u.data)
	u.cell = c
}

// detach makes a clone inert and clears its MAC state in its cell.
func (d *Deployment) detach(u *user, c int, sys *mac.System) {
	st := u.clones[c]
	st.SetTraffic(nil, nil)
	if sys != nil {
		// Purge any queued request referencing the departing station.
		for i := 0; i < sys.QueueLen(); {
			if sys.Queue()[i].St == st {
				sys.PopQueueAt(i)
				continue
			}
			i++
		}
		sys.SetPendingAtBS(st, false)
		sys.CancelReservation(st)
	}
}

// Handoffs returns the number of executed handoffs.
func (d *Deployment) Handoffs() uint64 { return d.handoffs }

// decide re-evaluates every user's attachment. Each clone's long-term dB
// is computed exactly once per decision (settling its lazily-deferred
// fading first) and reused for the best-cell comparison.
func (d *Deployment) decide() {
	if d.p.DisableHandoff {
		return
	}
	dbs := d.dbScratch
	for _, u := range d.users {
		for c, st := range u.clones {
			d.systems[c].SyncChannel(st)
			dbs[c] = st.Fading().LongTermDB()
		}
		curDB := dbs[u.cell]
		best, bestDB := u.cell, curDB
		for c, db := range dbs {
			if db > bestDB {
				best, bestDB = c, db
			}
		}
		if best != u.cell && bestDB-curDB >= d.p.HysteresisDB {
			d.detach(u, u.cell, d.systems[u.cell])
			d.attach(u, best)
			d.systems[best].Reindex(u.clones[best])
			d.handoffs++
		}
	}
}

// Result aggregates the per-cell measurement windows into deployment-wide
// metrics plus the handoff count.
type Result struct {
	mac.Result
	Handoffs uint64
	PerCell  []mac.Result
}

// Run executes the deployment and returns aggregated metrics.
//
// The deployment is sharded: cells advance on their own goroutines (bounded
// by Params.Workers) and only synchronize at handoff decision epochs —
// every DecisionPeriodFrames frames — instead of at every frame. Between
// epochs the cells are fully independent (per-cell MAC streams, per-clone
// fading streams, and traffic sources owned by exactly one attached clone),
// so the result is byte-identical to sequential execution for any worker
// count; parallelism is purely a throughput knob.
func (d *Deployment) Run() (Result, error) {
	frameDur := d.p.MAC.Geometry.Duration()
	warmup := sim.FromSeconds(d.p.WarmupSec)
	limit := warmup + sim.FromSeconds(d.p.DurationSec)
	frame := 0
	for d.now < limit {
		// Frames until the next decision boundary, capped at the horizon.
		k := d.p.DecisionPeriodFrames - frame%d.p.DecisionPeriodFrames
		if remaining := int((limit - d.now + frameDur - 1) / frameDur); k > remaining {
			k = remaining
		}
		_, err := run.Map(context.Background(), d.p.Workers, len(d.systems),
			func(c int) (struct{}, error) {
				return struct{}{}, d.advanceCell(c, k, frameDur, warmup)
			})
		if err != nil {
			return Result{}, err
		}
		frame += k
		d.now += sim.Time(k) * frameDur
		if d.now < limit && frame%d.p.DecisionPeriodFrames == 0 {
			d.decide()
		}
	}

	var agg Result
	agg.Protocol = d.p.Protocol
	agg.Handoffs = d.handoffs
	var delaySum float64
	minSet := false
	for _, sys := range d.systems {
		r := sys.M.Result(d.p.Protocol, d.p.MAC.Geometry.FrameSymbols)
		agg.PerCell = append(agg.PerCell, r)
		if r.MaxDataDelaySec > agg.MaxDataDelaySec {
			agg.MaxDataDelaySec = r.MaxDataDelaySec
		}
		// Only cells that delivered data carry a meaningful minimum.
		if r.DataDelivered > 0 && (!minSet || r.MinDataDelaySec < agg.MinDataDelaySec) {
			agg.MinDataDelaySec = r.MinDataDelaySec
			minSet = true
		}
		agg.Frames += r.Frames
		agg.VoiceGenerated += r.VoiceGenerated
		agg.VoiceDropped += r.VoiceDropped
		agg.VoiceErrored += r.VoiceErrored
		agg.VoiceDelivered += r.VoiceDelivered
		agg.DataGenerated += r.DataGenerated
		agg.DataDelivered += r.DataDelivered
		agg.DataErrored += r.DataErrored
		agg.ReqAttempts += r.ReqAttempts
		agg.ReqCollisions += r.ReqCollisions
		agg.ReqSuccesses += r.ReqSuccesses
		delaySum += r.MeanDataDelaySec * float64(r.DataDelivered)
	}
	if agg.VoiceGenerated > 0 {
		agg.VoiceLossRate = float64(agg.VoiceDropped+agg.VoiceErrored) / float64(agg.VoiceGenerated)
		agg.VoiceDropRate = float64(agg.VoiceDropped) / float64(agg.VoiceGenerated)
		agg.VoiceErrorRate = float64(agg.VoiceErrored) / float64(agg.VoiceGenerated)
	}
	if agg.Frames > 0 {
		// Frames summed across cells; throughput is per cell-frame.
		agg.DataThroughputPerFrame = float64(agg.DataDelivered) / (agg.Frames / float64(len(d.systems)))
	}
	if agg.DataDelivered > 0 {
		agg.MeanDataDelaySec = delaySum / float64(agg.DataDelivered)
	}
	agg.CollisionRate = stats.Ratio(agg.ReqCollisions, agg.ReqCollisions+agg.ReqSuccesses)
	// Reps is deliberately left zero: a single deployment run is not a
	// replication pool, and the replication metadata flows only from the
	// aggregation layer (RunReplicated).
	return agg, nil
}

// advanceCell runs one cell for k frames, opening its measurement window
// when the cell clock crosses the warm-up boundary. It runs concurrently
// with the other cells' advances and must touch only cell-local state.
func (d *Deployment) advanceCell(c, k int, frameDur, warmup sim.Time) error {
	sys, proto := d.systems[c], d.protos[c]
	for j := 0; j < k; j++ {
		if !d.marked[c] && sys.Now() >= warmup {
			sys.M.Mark()
			d.marked[c] = true
		}
		sys.BeginFrame()
		dur := proto.RunFrame(sys)
		if dur != frameDur {
			return fmt.Errorf("multicell: protocol %s produced a variable frame", proto.Name())
		}
		sys.EndFrame(dur)
	}
	return nil
}

// Run builds and runs a deployment in one call.
func Run(p Params) (Result, error) {
	d, err := New(p)
	if err != nil {
		return Result{}, err
	}
	return d.Run()
}

// PlanJob adapts a deployment into a run.Job, so multicell sweep points
// can join the same replication plans (and worker pool) as single-cell
// scenarios. The closure makes the job process-local; for anything that
// crosses a serialization boundary — the sweep grid's cache, remote
// workers — use grid.MulticellSpec, which carries the same Params as data
// and applies the identical normalization. The job's mac.Result is the
// deployment-wide aggregate with
// Frames normalized to per-cell-frame equivalents (a deployment sums
// frames across cells; the plan currency counts the measurement window
// once), so the generic replication fold recomputes DataThroughputPerFrame
// in the same per-cell-frame normalization Run and RunReplicated use and
// the result is comparable with single-cell jobs in the same plan. The
// handoff count is a deployment-level statistic and is not carried through
// the plan currency.
func PlanJob(p Params, replications int) run.Job {
	return run.Job{
		Custom: func(seed int64) (mac.Result, error) {
			pi := p
			pi.Seed = seed
			r, err := Run(pi)
			if cells := len(r.PerCell); cells > 0 {
				r.Result.Frames /= float64(cells)
			}
			return r.Result, err
		},
		CustomSeed:   p.Seed,
		Replications: replications,
	}
}

// RunReplicated executes reps independent deployments concurrently — each
// under a seed derived via run.RepSeed, so replication 0 reproduces Run(p)
// exactly — and pools them: counters and handoffs sum, rates recompute
// from pooled counters, Reps carries across-replication Student-t CI95,
// and PerCell aggregates each cell across replications.
func RunReplicated(ctx context.Context, p Params, reps int) (Result, error) {
	if reps < 1 {
		reps = 1
	}
	outs, err := run.Map(ctx, 0, reps, func(i int) (Result, error) {
		pi := p
		pi.Seed = run.RepSeed(p.Seed, i)
		return Run(pi)
	})
	if err != nil {
		return Result{}, err
	}
	if reps == 1 {
		// The aggregation layer owns the replication metadata: stamp the
		// single replication here, never inside Run itself.
		outs[0].Result = mac.AggregateReplications([]mac.Result{outs[0].Result})
		return outs[0], nil
	}
	flat := make([]mac.Result, reps)
	agg := Result{}
	for i, o := range outs {
		flat[i] = o.Result
		agg.Handoffs += o.Handoffs
	}
	agg.Result = mac.AggregateReplications(flat)
	// A deployment-level Result sums Frames across cells, so the generic
	// aggregation's DataDelivered/Frames would shrink throughput by the
	// cell count; restore the per-cell-frame normalization Run uses.
	if cells := len(outs[0].PerCell); agg.Frames > 0 && cells > 0 {
		agg.Result.DataThroughputPerFrame = float64(agg.Result.DataDelivered) / (agg.Result.Frames / float64(cells))
	}
	for c := 0; c < len(outs[0].PerCell); c++ {
		per := make([]mac.Result, reps)
		for i, o := range outs {
			per[i] = o.PerCell[c]
		}
		agg.PerCell = append(agg.PerCell, mac.AggregateReplications(per))
	}
	return agg, nil
}
