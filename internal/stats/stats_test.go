package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarBasics(t *testing.T) {
	var m MeanVar
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.Count() != 8 {
		t.Fatalf("count = %d", m.Count())
	}
	if math.Abs(m.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", m.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if math.Abs(m.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v, want %v", m.Variance(), 32.0/7)
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("min/max = %v/%v", m.Min(), m.Max())
	}
}

func TestMeanVarEmpty(t *testing.T) {
	var m MeanVar
	if m.Mean() != 0 || m.Variance() != 0 || m.StdErr() != 0 || m.CI95() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestMeanVarSingle(t *testing.T) {
	var m MeanVar
	m.Add(3)
	if m.Variance() != 0 {
		t.Fatal("single sample variance should be 0")
	}
}

func TestMeanVarAddN(t *testing.T) {
	var a, b MeanVar
	a.AddN(2.5, 10)
	for i := 0; i < 10; i++ {
		b.Add(2.5)
	}
	if a.Mean() != b.Mean() || a.Count() != b.Count() {
		t.Fatal("AddN disagrees with repeated Add")
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestMeanVarMergeProperty(t *testing.T) {
	prop := func(seed int64, nA, nB uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var a, b, all MeanVar
		for i := 0; i < int(nA); i++ {
			x := r.NormFloat64()
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(nB); i++ {
			x := r.NormFloat64() * 3
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		if a.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-6 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVarReset(t *testing.T) {
	var m MeanVar
	m.Add(1)
	m.Reset()
	if m.Count() != 0 || m.Mean() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCounterMarkSince(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Mark()
	c.Inc()
	c.Add(4)
	if c.Total() != 15 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Since() != 5 {
		t.Fatalf("since = %d, want 5 (warm-up excluded)", c.Since())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator should be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatal("Ratio(3,4) != 0.75")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %v, want ~50", med)
	}
	p95 := h.Quantile(0.95)
	if p95 < 90 || p95 > 100 {
		t.Fatalf("p95 = %v, want ~95", p95)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
}

func TestHistogramOverUnderflow(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(15)
	h.Add(5)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 15 {
		t.Fatalf("max = %v", h.Max())
	}
	if math.Abs(h.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestSeriesCrossingAscending(t *testing.T) {
	s := Series{Label: "x"}
	s.Append(10, 0.001, 0)
	s.Append(20, 0.005, 0)
	s.Append(30, 0.02, 0)
	x := s.CrossingX(0.01, false)
	// Interpolating between (20, 0.005) and (30, 0.02): crossing at 23.33.
	if math.Abs(x-23.333333) > 1e-3 {
		t.Fatalf("crossing = %v, want 23.33", x)
	}
}

func TestSeriesCrossingDescending(t *testing.T) {
	s := Series{}
	s.Append(0, 10, 0)
	s.Append(1, 6, 0)
	s.Append(2, 2, 0)
	x := s.CrossingX(4, true)
	if math.Abs(x-1.5) > 1e-9 {
		t.Fatalf("descending crossing = %v, want 1.5", x)
	}
}

func TestSeriesCrossingNone(t *testing.T) {
	s := Series{}
	s.Append(0, 1, 0)
	s.Append(1, 2, 0)
	if !math.IsNaN(s.CrossingX(10, false)) {
		t.Fatal("expected NaN for no crossing")
	}
}

func TestSeriesSortByX(t *testing.T) {
	s := Series{}
	s.Append(3, 30, 1)
	s.Append(1, 10, 2)
	s.Append(2, 20, 3)
	s.SortByX()
	if s.X[0] != 1 || s.X[1] != 2 || s.X[2] != 3 {
		t.Fatalf("x not sorted: %v", s.X)
	}
	if s.Y[0] != 10 || s.Err[0] != 2 {
		t.Fatal("y/err not carried with x")
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {7, 2.365}, {9, 2.262}, {30, 2.042},
		{35, 2.021}, {50, 2.000}, {100, 1.980}, {1000, 1.96},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); got != c.want {
			t.Errorf("TCritical95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	if !math.IsInf(TCritical95(0), 1) {
		t.Fatal("df=0 should yield +Inf")
	}
	// The critical value must shrink monotonically toward the normal limit.
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := TCritical95(df)
		if v > prev {
			t.Fatalf("TCritical95 not monotone at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
}

func TestMeanVarTCI95(t *testing.T) {
	var m MeanVar
	if m.TCI95() != 0 {
		t.Fatal("empty TCI95 not 0")
	}
	m.Add(1)
	if m.TCI95() != 0 {
		t.Fatal("single-sample TCI95 not 0")
	}
	// Samples 1, 2, 3: mean 2, stddev 1, stderr 1/sqrt(3), df 2.
	m.Add(2)
	m.Add(3)
	want := 4.303 / math.Sqrt(3)
	if got := m.TCI95(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TCI95 = %v, want %v", got, want)
	}
	// The t interval must be wider than the normal approximation at small n.
	if m.TCI95() <= m.CI95() {
		t.Fatal("Student-t interval should exceed the normal interval at n=3")
	}
}
