// Package stats provides the measurement substrate for the simulation
// platform: streaming mean/variance (Welford), rate counters, histograms
// with quantile queries, and normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// MeanVar accumulates a stream of observations and reports mean, variance
// and standard error using Welford's numerically stable update.
type MeanVar struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (m *MeanVar) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// AddN records the same observation n times.
func (m *MeanVar) AddN(x float64, n uint64) {
	for i := uint64(0); i < n; i++ {
		m.Add(x)
	}
}

// Count returns the number of observations.
func (m *MeanVar) Count() uint64 { return m.n }

// Mean returns the sample mean (0 with no observations).
func (m *MeanVar) Mean() float64 { return m.mean }

// Min returns the smallest observation (0 with no observations).
func (m *MeanVar) Min() float64 { return m.min }

// Max returns the largest observation (0 with no observations).
func (m *MeanVar) Max() float64 { return m.max }

// Variance returns the unbiased sample variance.
func (m *MeanVar) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *MeanVar) StdDev() float64 { return math.Sqrt(m.Variance()) }

// StdErr returns the standard error of the mean.
func (m *MeanVar) StdErr() float64 {
	if m.n == 0 {
		return 0
	}
	return m.StdDev() / math.Sqrt(float64(m.n))
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean.
func (m *MeanVar) CI95() float64 { return 1.96 * m.StdErr() }

// TCI95 returns the half-width of a 95% Student-t confidence interval for
// the mean — the correct interval at small sample counts (e.g. a handful
// of simulation replications), where the normal approximation of CI95
// understates the uncertainty. It returns 0 with fewer than two
// observations, where no dispersion estimate exists.
func (m *MeanVar) TCI95() float64 {
	if m.n < 2 {
		return 0
	}
	return TCritical95(int(m.n)-1) * m.StdErr()
}

// tTable95 holds two-sided 95% Student-t critical values for 1–30 degrees
// of freedom (index df-1).
var tTable95 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom, converging to the normal 1.96 in the large-sample
// limit. df below 1 yields +Inf (no interval exists).
func TCritical95(df int) float64 {
	switch {
	case df < 1:
		return math.Inf(1)
	case df <= len(tTable95):
		return tTable95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.96
	}
}

// Merge folds another accumulator into this one (parallel reduction).
func (m *MeanVar) Merge(o *MeanVar) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n := m.n + o.n
	delta := o.mean - m.mean
	mean := m.mean + delta*float64(o.n)/float64(n)
	m2 := m.m2 + o.m2 + delta*delta*float64(m.n)*float64(o.n)/float64(n)
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n, m.mean, m.m2 = n, mean, m2
}

// Reset clears the accumulator.
func (m *MeanVar) Reset() { *m = MeanVar{} }

// String renders "mean ± ci95 (n=...)".
func (m *MeanVar) String() string {
	return fmt.Sprintf("%.6g ± %.2g (n=%d)", m.Mean(), m.CI95(), m.n)
}

// Counter is a simple monotone event counter with snapshot support so the
// measurement window can exclude warm-up transients.
type Counter struct {
	total    uint64
	snapshot uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.total++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.total += n }

// Total returns the all-time count.
func (c *Counter) Total() uint64 { return c.total }

// Mark records the current total as the start of the measurement window.
func (c *Counter) Mark() { c.snapshot = c.total }

// Since returns the count accumulated after the last Mark.
func (c *Counter) Since() uint64 { return c.total - c.snapshot }

// Ratio returns a/b as a float, and 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Histogram is a fixed-width linear histogram over [lo, hi) with overflow
// and underflow buckets, supporting approximate quantiles.
type Histogram struct {
	lo, hi   float64
	width    float64
	buckets  []uint64
	under    uint64
	over     uint64
	count    uint64
	sum      float64
	exactMax float64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]uint64, n)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	h.count++
	h.sum += x
	if x > h.exactMax {
		h.exactMax = x
	}
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact running mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest observation seen.
func (h *Histogram) Max() float64 { return h.exactMax }

// Quantile returns an approximate q-quantile (q in [0,1]) using linear
// interpolation within the containing bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	target := q * float64(h.count)
	acc := float64(h.under)
	if target <= acc {
		return h.lo
	}
	for i, b := range h.buckets {
		next := acc + float64(b)
		if target <= next && b > 0 {
			frac := (target - acc) / float64(b)
			return h.lo + (float64(i)+frac)*h.width
		}
		acc = next
	}
	return h.exactMax
}

// Series is a labelled sequence of (x, y) points plus an optional error bar,
// used by the experiment harness to emit figure data.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	Err   []float64
}

// Append adds a point.
func (s *Series) Append(x, y, err float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Err = append(s.Err, err)
}

// CrossingX returns the interpolated x at which the series first crosses the
// threshold level from below (or above, if descending is true). It returns
// NaN if the series never crosses. This computes "capacity at the 1% packet
// dropping threshold" style summaries from figure data.
func (s *Series) CrossingX(level float64, descending bool) float64 {
	for i := 1; i < len(s.X); i++ {
		y0, y1 := s.Y[i-1], s.Y[i]
		var crossed bool
		if descending {
			crossed = y0 >= level && y1 < level
		} else {
			crossed = y0 <= level && y1 > level
		}
		if crossed {
			if y1 == y0 {
				return s.X[i]
			}
			t := (level - y0) / (y1 - y0)
			return s.X[i-1] + t*(s.X[i]-s.X[i-1])
		}
	}
	return math.NaN()
}

// SortByX sorts the series points by ascending x.
func (s *Series) SortByX() {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	x := make([]float64, len(idx))
	y := make([]float64, len(idx))
	e := make([]float64, len(idx))
	for i, j := range idx {
		x[i], y[i] = s.X[j], s.Y[j]
		if j < len(s.Err) {
			e[i] = s.Err[j]
		}
	}
	s.X, s.Y, s.Err = x, y, e
}
