package grid

import (
	"bytes"
	"reflect"
	"testing"

	"charisma/internal/core"
	"charisma/internal/multicell"
	"charisma/internal/run"
)

func tinyScenario(protocol string, nv, nd int) core.Scenario {
	sc := core.DefaultScenario(protocol)
	sc.NumVoice, sc.NumData = nv, nd
	sc.Seed = 7
	sc.WarmupSec, sc.DurationSec = 0.3, 1.0
	return sc
}

func tinyMulticell() multicell.Params {
	p := multicell.DefaultParams()
	p.NumVoice = 16
	p.Seed = 7
	p.WarmupSec, p.DurationSec = 0.5, 1.5
	return p
}

func TestSpecValidateShape(t *testing.T) {
	if err := ScenarioSpec(tinyScenario(core.ProtoCharisma, 5, 0)).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := MulticellSpec(tinyMulticell()).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []JobSpec{
		{},
		{Kind: "bogus"},
		{Kind: KindScenario},
		{Kind: KindMulticell},
		{Kind: KindScenario, Scenario: &core.Scenario{}, Multicell: &multicell.Params{}},
		{Kind: KindMulticell, Scenario: &core.Scenario{}, Multicell: &multicell.Params{}},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestSpecCodecRoundTrip(t *testing.T) {
	sc := tinyScenario(core.ProtoCharisma, 5, 3)
	sc.SpeedsKmh = []float64{10, 20.5, 30, 1.0 / 3.0, 80, 12.125, 99.9, 0.0001}
	for _, spec := range []JobSpec{ScenarioSpec(sc), MulticellSpec(tinyMulticell())} {
		b, err := spec.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeSpec(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(spec, got) {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", spec, got)
		}
		b2, err := got.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("encoding not canonical:\n%s\n%s", b, b2)
		}

		bin, err := spec.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var fromBin JobSpec
		if err := fromBin.UnmarshalBinary(bin); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(spec, fromBin) {
			t.Fatal("binary round trip mismatch")
		}
	}
}

func TestSpecDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte(""),
		[]byte("{"),
		[]byte(`{"Kind":"scenario"} trailing`),
		[]byte(`{"Kind":"scenario","NoSuchField":1}`),
	}
	for i, b := range cases {
		if _, err := DecodeSpec(b); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	var s JobSpec
	if err := s.UnmarshalBinary([]byte("not an envelope")); err == nil {
		t.Fatal("bad envelope accepted")
	}
}

func TestSpecHashStableAndSensitive(t *testing.T) {
	a := ScenarioSpec(tinyScenario(core.ProtoCharisma, 5, 0))
	h1, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ScenarioSpec(tinyScenario(core.ProtoCharisma, 5, 0)).Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("equal specs hash differently")
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex sha256", h1)
	}
	b := ScenarioSpec(tinyScenario(core.ProtoCharisma, 6, 0))
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hb == h1 {
		t.Fatal("different specs share a hash")
	}
	// Seeds are part of identity: a different base seed is different work.
	c := tinyScenario(core.ProtoCharisma, 5, 0)
	c.Seed++
	hc, err := ScenarioSpec(c).Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == h1 {
		t.Fatal("seed not part of the content hash")
	}
}

func TestRepKeyDistinctPerRep(t *testing.T) {
	spec := ScenarioSpec(tinyScenario(core.ProtoCharisma, 5, 0))
	h, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for rep := 0; rep < 8; rep++ {
		k := RepKey(h, run.RepSeed(spec.BaseSeed(), rep))
		if seen[k] {
			t.Fatalf("rep %d reuses a key", rep)
		}
		seen[k] = true
	}
}

// TestRunRepMatchesRunner pins the seed discipline: RunRep(rep) must equal
// the replication runner's task for the same (scenario, rep).
func TestRunRepMatchesRunner(t *testing.T) {
	sc := tinyScenario(core.ProtoRAMA, 8, 2)
	spec := ScenarioSpec(sc)
	for _, rep := range []int{0, 2} {
		got, err := spec.RunRep(rep)
		if err != nil {
			t.Fatal(err)
		}
		ref := sc
		ref.Seed = run.RepSeed(sc.Seed, rep)
		want, err := ref.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rep %d differs from direct run", rep)
		}
	}
}

// FuzzSpecCodec checks the JobSpec codec on arbitrary bytes: decoding
// never panics, and any accepted input re-encodes canonically —
// decode(encode(decode(b))) == decode(b) with a stable hash.
func FuzzSpecCodec(f *testing.F) {
	if b, err := ScenarioSpec(tinyScenario(core.ProtoCharisma, 5, 0)).Encode(); err == nil {
		f.Add(b)
	}
	if b, err := MulticellSpec(tinyMulticell()).Encode(); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"Kind":"scenario"}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			return
		}
		b, err := spec.Encode()
		if err != nil {
			t.Fatalf("accepted spec fails to encode: %v", err)
		}
		again, err := DecodeSpec(b)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v", err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("codec not idempotent:\n%+v\n%+v", spec, again)
		}
		h1, err1 := spec.Hash()
		h2, err2 := again.Hash()
		if err1 != nil || err2 != nil || h1 != h2 {
			t.Fatalf("hash unstable across round trip: %q/%v vs %q/%v", h1, err1, h2, err2)
		}
		// The binary envelope must round-trip the same value.
		bin, err := spec.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal binary: %v", err)
		}
		var fromBin JobSpec
		if err := fromBin.UnmarshalBinary(bin); err != nil {
			t.Fatalf("unmarshal binary: %v", err)
		}
		if !reflect.DeepEqual(spec, fromBin) {
			t.Fatal("binary envelope not value-preserving")
		}
	})
}

// FuzzSpecEnvelope feeds arbitrary bytes to the binary decoder: it must
// reject or accept without panicking, never misread lengths.
func FuzzSpecEnvelope(f *testing.F) {
	if b, err := ScenarioSpec(tinyScenario(core.ProtoCharisma, 5, 0)).MarshalBinary(); err == nil {
		f.Add(b)
	}
	f.Add([]byte("CHGRID1\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s JobSpec
		_ = s.UnmarshalBinary(data)
	})
}
