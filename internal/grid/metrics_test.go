package grid

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func fetchText(t *testing.T, hs *httptest.Server, path string) (string, string) {
	t.Helper()
	resp, err := hs.Client().Get(hs.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("%s answered %d", path, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("Content-Type")
}

// metricValue finds a sample line `name value` or `name{labels} value` in
// a Prometheus text page.
func metricValue(t *testing.T, page, name string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if fields[0] == name || strings.HasPrefix(fields[0], name+"{") {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("unparseable sample %q: %v", line, err)
			}
			return v, true
		}
	}
	return 0, false
}

// TestStatsEndpointFields: GET /stats reports the session's executed /
// cache-hit / re-queue counters and completion, and answers zeros with
// no session attached.
func TestStatsEndpointFields(t *testing.T) {
	sv := NewServer()
	hs := httptest.NewServer(sv)
	defer hs.Close()

	decode := func() (st struct {
		Executed  int
		CacheHits int
		Requeues  int
		Done      bool
	}) {
		body, _ := fetchText(t, hs, "/stats")
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("bad /stats payload %q: %v", body, err)
		}
		return st
	}

	if st := decode(); st.Executed != 0 || st.Done {
		t.Fatalf("no-session /stats = %+v, want zeros", st)
	}

	cache := NewMemCache()
	sess, err := NewSession(sweepPoints(2), cache, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sv.Attach(sess)
	if err := RunLocal(context.Background(), sess, 2); err != nil {
		t.Fatal(err)
	}

	st := decode()
	wantExec := 2 * len(sweepScenarios())
	if st.Executed != wantExec || !st.Done {
		t.Fatalf("/stats after sweep = %+v, want Executed=%d Done=true", st, wantExec)
	}
	if st.Requeues != 0 {
		t.Fatalf("unexpected requeues %d on an uncontended local sweep", st.Requeues)
	}

	// A second identical session against the same cache is pure hits.
	sess2, err := NewSession(sweepPoints(2), cache, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sv.Attach(sess2)
	if err := RunLocal(context.Background(), sess2, 2); err != nil {
		t.Fatal(err)
	}
	if st := decode(); st.CacheHits != wantExec || st.Executed != 0 {
		t.Fatalf("warm-cache /stats = %+v, want CacheHits=%d Executed=0", st, wantExec)
	}
}

// TestMetricsEndToEnd drives a real worker over the wire and checks the
// /metrics page carries every headline series with believable values.
func TestMetricsEndToEnd(t *testing.T) {
	sess, err := NewSession(sweepPoints(1), NewMemCache(), Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer()
	sv.Attach(sess)
	hs := httptest.NewServer(sv)
	defer hs.Close()

	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		w := Worker{Coordinator: hs.URL, ID: "metrics-w", Parallel: 2, Poll: 5 * time.Millisecond}
		done <- w.Run(ctx)
	}()
	if err := sess.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sv.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	page, ctype := fetchText(t, hs, "/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("content type %q", ctype)
	}
	wantTasks := float64(len(sweepScenarios()))
	for name, min := range map[string]float64{
		"charisma_grid_tasks_served_total":         wantTasks,
		"charisma_grid_results_accepted_total":     wantTasks,
		"charisma_grid_executed_total":             wantTasks,
		"charisma_grid_done":                       1,
		"charisma_grid_cache_mem_misses_total":     1,
		"charisma_grid_rep_duration_seconds_count": wantTasks,
		"charisma_grid_rep_duration_seconds_sum":   0,
		"charisma_grid_requeues_total":             0,
		"charisma_grid_leases":                     0,
		"charisma_grid_heartbeats_total":           0,
		"charisma_grid_cache_mem_hits_total":       0,
	} {
		v, ok := metricValue(t, page, name)
		if !ok {
			t.Errorf("series %s missing from /metrics", name)
			continue
		}
		if v < min {
			t.Errorf("%s = %v, want >= %v", name, v, min)
		}
	}
	// The histogram's +Inf bucket must equal its count.
	inf, ok := metricValue(t, page, `charisma_grid_rep_duration_seconds_bucket{le="+Inf"}`)
	if !ok || inf != wantTasks {
		t.Errorf("+Inf bucket = %v ok=%v, want %v", inf, ok, wantTasks)
	}
}

// TestMetricsCrashRequeue: after a claimed lease lapses unheartbeated,
// /metrics exposes the crash re-queue counter — the series the CI grid
// smoke asserts on.
func TestMetricsCrashRequeue(t *testing.T) {
	sess, err := NewSession(sweepPoints(1), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer()
	sv.LeaseTTL = 30 * time.Millisecond
	sv.Attach(sess)
	hs := httptest.NewServer(sv)
	defer hs.Close()

	crash := Worker{Coordinator: hs.URL, ID: "crashy"}
	if _, status, err := crash.fetchTask(context.Background(), hs.Client(), hs.URL); err != nil || status != 200 {
		t.Fatalf("claim: status %d err %v", status, err)
	}
	waitUntil(t, 2*time.Second, func() bool { return sess.Requeues() >= 1 })

	page, _ := fetchText(t, hs, "/metrics")
	if v, ok := metricValue(t, page, "charisma_grid_requeues_total"); !ok || v < 1 {
		t.Fatalf("charisma_grid_requeues_total = %v ok=%v, want >= 1 after lease lapse", v, ok)
	}
	if v, ok := metricValue(t, page, "charisma_grid_tasks_served_total"); !ok || v != 1 {
		t.Fatalf("charisma_grid_tasks_served_total = %v ok=%v, want 1", v, ok)
	}
}

// TestWorkerStatsSnapshot: the worker-side counters behind the
// charisma-worker stats endpoint reflect a finished sweep.
func TestWorkerStatsSnapshot(t *testing.T) {
	sess, err := NewSession(sweepPoints(1), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer()
	sv.Attach(sess)
	hs := httptest.NewServer(sv)
	defer hs.Close()

	ctx := context.Background()
	stats := new(WorkerStats)
	done := make(chan error, 1)
	go func() {
		w := Worker{Coordinator: hs.URL, ID: "stats-w", Poll: 5 * time.Millisecond,
			Cache: NewMemCache(), Stats: stats}
		done <- w.Run(ctx)
	}()
	if err := sess.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sv.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	snap := stats.Snapshot()
	want := uint64(len(sweepScenarios()))
	if snap.Claimed != want || snap.Completed != want || snap.Abandoned != 0 {
		t.Fatalf("snapshot %+v, want claimed=completed=%d abandoned=0", snap, want)
	}
	if snap.CacheMisses != want || snap.CacheHits != 0 {
		t.Fatalf("snapshot %+v, want %d cold cache misses", snap, want)
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"claimed", "completed", "abandoned", "cache_hits", "cache_misses", "heartbeats", "heartbeat_avg_ms"} {
		if !strings.Contains(string(b), `"`+key+`"`) {
			t.Errorf("snapshot JSON missing %q: %s", key, b)
		}
	}
}
