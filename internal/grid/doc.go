// Package grid is the distributed sweep subsystem: it farms replicated
// simulation jobs out to workers, never simulates the same (spec, seed)
// pair twice, spends replications where the confidence intervals are
// widest, survives worker crashes, and streams partial results while a
// sweep runs.
//
// The paper's figures are built from replicated stochastic sweeps — every
// sweep point is N independent runs of one parameterized simulation, pooled
// by mac.AggregateReplications. This package makes those sweeps
// content-addressed, transportable, and fault-tolerant:
//
//   - A JobSpec is a declarative, serializable description of one
//     simulation — a single-cell core.Scenario or a multicell deployment —
//     parameters, not closures. It has a canonical JSON encoding (plus a
//     framed binary envelope) and a stable SHA-256 content hash, replacing
//     the unserializable run.Job.Custom path as the plan-transport boundary.
//   - A Cache stores one mac.Result per replication under
//     RepKey(hash(JobSpec), RepSeed): repeated sweep points and re-anchored
//     figures reuse prior replications, and a re-run sweep is a cache walk.
//     Caches compose: in-memory, on-disk (a -cache-dir), or tiered.
//   - A Session is the coordinator core: it expands points into
//     (spec, rep) tasks, resolves them against the cache, dedups identical
//     in-flight (spec, seed) pairs across points, and merges completed
//     replications in rep-index order, so results are byte-identical no
//     matter which transport executed them.
//   - Transports: RunLocal drives a session with in-process loopback
//     workers; Server exposes the same session over HTTP so
//     cmd/charisma-worker processes can pull tasks and stream results
//     back. Every sweep path — loopback, multi-worker, warm cache —
//     exercises the same scheduling code.
//   - Precision is the adaptive replication controller: a point's
//     replication count grows until the across-replication Student-t CI95
//     half-width of every applicable headline metric falls to within
//     TargetRel of its mean (or a hard cap). New replications are seeded
//     via run.RepSeed, so a grown sweep is a byte-identical extension of a
//     fixed-N one.
//
// # Leases and crash recovery
//
// Every dispatched task is held under a lease. Remote dispatches
// (Server with a positive LeaseTTL) are expirable: the worker renews its
// lease by heartbeat while executing, a worker that dies simply stops
// heartbeating, and the session re-queues the task — with the presumed-
// dead worker excluded from immediately re-claiming it — so a sweep
// completes despite any number of worker crashes, as long as one worker
// survives. Loopback leases never expire; an in-process worker can only
// die with the coordinator itself, where context cancellation already
// unwinds the session.
//
// A result arriving under a superseded lease (the task timed out and was
// re-queued, possibly re-executed) is discarded before it can touch the
// cache or the point states. Exactly one delivery per (spec, rep-seed)
// key ever lands, and JobSpec.RunRep is a deterministic function of the
// spec and the rep seed, so crash timing, duplicate deliveries, and
// zombie workers can never change the bytes a sweep produces — a
// crash-recovered sweep is byte-identical to the in-process runner.
//
// # Progress streaming
//
// A Session also publishes its own live state: Progress snapshots carry,
// per sweep point, the replications resolved so far and the partial
// aggregate over the successful ones (with across-replication CI95
// half-widths), version-stamped and coalesced latest-wins through
// Subscribe. The Server serves the same snapshot over GET /progress, and
// cmd/charisma-experiments renders it as per-point panel data while the
// sweep is still running.
package grid
