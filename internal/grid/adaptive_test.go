package grid

import (
	"context"
	"math"
	"reflect"
	"testing"

	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/stats"
)

// loadedScenario carries enough traffic that the headline metrics have
// nonzero means and real across-replication dispersion.
func loadedScenario() core.Scenario {
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice, sc.NumData = 60, 4
	sc.Seed = 7
	sc.WarmupSec, sc.DurationSec = 0.3, 0.8
	return sc
}

// ci95Rel returns the worst relative CI95 half-width over the applicable
// headline metrics of a point's per-rep results.
func ci95Rel(results []mac.Result) float64 {
	worst := 0.0
	for _, metric := range []func(mac.Result) float64{
		func(r mac.Result) float64 { return r.VoiceLossRate },
		func(r mac.Result) float64 { return r.DataThroughputPerFrame },
		func(r mac.Result) float64 { return r.MeanDataDelaySec },
	} {
		var mv stats.MeanVar
		for _, r := range results {
			mv.Add(metric(r))
		}
		if mean := math.Abs(mv.Mean()); mean > 0 {
			if rel := mv.TCI95() / mean; rel > worst {
				worst = rel
			}
		}
	}
	return worst
}

// repResults re-derives a point's per-rep results so the test can check
// the stopping condition independently of the session's bookkeeping.
func repResults(t *testing.T, spec JobSpec, n int) []mac.Result {
	t.Helper()
	out := make([]mac.Result, n)
	for i := range out {
		r, err := spec.RunRep(i)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

// TestAdaptiveStopsAtPrecisionOrCap: every sweep point must settle with
// CI95 half-width ≤ ε·mean on all applicable metrics, or at the rep cap.
func TestAdaptiveStopsAtPrecisionOrCap(t *testing.T) {
	spec := ScenarioSpec(loadedScenario())
	prec := Precision{TargetRel: 0.6, MaxReps: 12}
	sess, err := NewSession([]Point{{Spec: spec, Replications: 2}}, nil, prec)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(context.Background(), sess, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}
	n := sess.Replications(0)
	if n < 2 || n > prec.MaxReps {
		t.Fatalf("settled at %d reps, outside [2, %d]", n, prec.MaxReps)
	}
	rel := ci95Rel(repResults(t, spec, n))
	if n < prec.MaxReps && rel > prec.TargetRel {
		t.Fatalf("settled below cap at %d reps with rel CI %v > ε %v", n, rel, prec.TargetRel)
	}
	if n > 2 {
		// Growth must have been necessary: the pre-growth state was not
		// converged at some earlier count (check the initial one).
		if ci95Rel(repResults(t, spec, 2)) <= prec.TargetRel {
			t.Fatalf("grew to %d reps although 2 already met ε", n)
		}
	}
}

// TestAdaptiveHitsHardCap: an unreachable precision stops at MaxReps.
func TestAdaptiveHitsHardCap(t *testing.T) {
	spec := ScenarioSpec(loadedScenario())
	sess, err := NewSession([]Point{{Spec: spec, Replications: 2}}, nil,
		Precision{TargetRel: 1e-9, MaxReps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(context.Background(), sess, 0); err != nil {
		t.Fatal(err)
	}
	if n := sess.Replications(0); n != 5 {
		t.Fatalf("settled at %d reps, want the cap 5", n)
	}
}

// TestAdaptiveGrownSweepExtendsFixedN: an adaptively grown sweep is a
// byte-identical extension of a fixed-N sweep — rep seeds come from
// run.RepSeed regardless of when a rep was scheduled, so fixing N at the
// grown count reproduces the adaptive result exactly.
func TestAdaptiveGrownSweepExtendsFixedN(t *testing.T) {
	spec := ScenarioSpec(loadedScenario())
	adaptive, err := NewSession([]Point{{Spec: spec, Replications: 2}}, nil,
		Precision{TargetRel: 1e-9, MaxReps: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(context.Background(), adaptive, 3); err != nil {
		t.Fatal(err)
	}
	grown, err := adaptive.Results()
	if err != nil {
		t.Fatal(err)
	}
	n := adaptive.Replications(0)
	if n <= 2 {
		t.Fatalf("controller did not grow (n=%d)", n)
	}

	fixed, err := NewSession([]Point{{Spec: spec, Replications: n}}, nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(context.Background(), fixed, 3); err != nil {
		t.Fatal(err)
	}
	want, err := fixed.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, grown) {
		t.Fatalf("grown sweep is not a byte-identical extension of fixed N=%d", n)
	}
}

// TestAdaptiveDeterministicAcrossRuns: growth decisions depend only on
// results, so two adaptive runs agree on the final count and bytes.
func TestAdaptiveDeterministicAcrossRuns(t *testing.T) {
	spec := ScenarioSpec(loadedScenario())
	runOnce := func(workers int) (int, []mac.Result) {
		sess, err := NewSession([]Point{{Spec: spec, Replications: 2}}, nil,
			Precision{TargetRel: 0.3, MaxReps: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := RunLocal(context.Background(), sess, workers); err != nil {
			t.Fatal(err)
		}
		rs, err := sess.Results()
		if err != nil {
			t.Fatal(err)
		}
		return sess.Replications(0), rs
	}
	n1, r1 := runOnce(1)
	n2, r2 := runOnce(4)
	if n1 != n2 || !reflect.DeepEqual(r1, r2) {
		t.Fatalf("adaptive run not deterministic: n=%d vs %d", n1, n2)
	}
}

// TestAdaptiveDisabledKeepsFixedReps: zero Precision never grows.
func TestAdaptiveDisabledKeepsFixedReps(t *testing.T) {
	sess, err := NewSession(sweepPoints(2), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(context.Background(), sess, 0); err != nil {
		t.Fatal(err)
	}
	for j := range sweepPoints(2) {
		if n := sess.Replications(j); n != 2 {
			t.Fatalf("point %d grew to %d reps with adaptation disabled", j, n)
		}
	}
}
