package grid

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/run"
)

// TestClaimLoopBacksOffOnTransientFailures: a coordinator answering 5xx
// (or unreachable) is re-probed on the jittered exponential schedule — a
// virtual clock records every wait — and a healthy-but-idle 204 resets
// the schedule back to the plain poll interval.
func TestClaimLoopBacksOffOnTransientFailures(t *testing.T) {
	const poll = 100 * time.Millisecond
	// Script: 503, 503, 503 (escalating backoff), 204 (healthy idle,
	// resets), 503 (back to the first window), 410 (exit).
	script := []int{503, 503, 503, 204, 503, 410}
	var call atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := call.Add(1) - 1
		if int(i) >= len(script) {
			w.WriteHeader(http.StatusGone)
			return
		}
		w.WriteHeader(script[i])
	}))
	defer hs.Close()

	var waits []time.Duration
	w := Worker{Coordinator: hs.URL, ID: "flaky-test", Parallel: 1, Poll: poll}
	w.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return nil // virtual clock: never actually wait
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 5 {
		t.Fatalf("recorded %d waits (%v), want 5", len(waits), waits)
	}
	// Waits 0–2: transient, windows [poll/2, poll), [poll, 2·poll),
	// [2·poll, 4·poll).
	for k := 0; k < 3; k++ {
		lo, hi := poll<<k/2, poll<<k
		if waits[k] < lo || waits[k] >= hi {
			t.Fatalf("transient wait %d = %v, want [%v, %v)", k, waits[k], lo, hi)
		}
	}
	// Wait 3: the 204 — plain poll interval, no jitter.
	if waits[3] != poll {
		t.Fatalf("idle wait = %v, want the plain poll interval %v", waits[3], poll)
	}
	// Wait 4: the schedule was reset by the healthy 204 — first window
	// again, not the fourth.
	if waits[4] < poll/2 || waits[4] >= poll {
		t.Fatalf("post-reset wait = %v, want [%v, %v)", waits[4], poll/2, poll)
	}
}

// TestClaimLoopGivesUpAfterMaxIdle: transient failures don't retry
// forever — MaxIdle bounds them, and the exit error carries the last
// failure so the operator sees *why* the worker idled out.
func TestClaimLoopGivesUpAfterMaxIdle(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer hs.Close()

	w := Worker{Coordinator: hs.URL, ID: "doomed", Parallel: 1, Poll: time.Millisecond, MaxIdle: 20 * time.Millisecond}
	w.sleep = func(ctx context.Context, d time.Duration) error {
		time.Sleep(time.Millisecond) // let MaxIdle elapse quickly
		return nil
	}
	err := w.Run(context.Background())
	if err == nil {
		t.Fatal("worker retried a dead coordinator forever")
	}
	if !strings.Contains(err.Error(), "500") {
		t.Fatalf("give-up error %q does not carry the last failure", err)
	}
}

// TestHeartbeatToleratesTransientErrors: a 5xx or dropped heartbeat must
// NOT abandon the task — the loop retries on a short schedule and keeps
// renewing once the coordinator recovers. Only an explicit 409 closes
// the superseded channel.
func TestHeartbeatToleratesTransientErrors(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable) // transient outage
			return
		}
		w.WriteHeader(http.StatusNoContent) // recovered
	}))
	defer hs.Close()

	stats := new(WorkerStats)
	w := Worker{ID: "beat-test", Stats: stats}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	superseded := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.heartbeatLoop(ctx, hs.Client(), hs.URL,
			wireTask{Session: "s1", Task: Task{Lease: 7}}, 5*time.Millisecond, superseded)
	}()
	waitUntil(t, 2*time.Second, func() bool { return stats.Snapshot().Heartbeats >= 2 })
	select {
	case <-superseded:
		t.Fatal("transient heartbeat failure abandoned the task")
	default:
	}
	cancel()
	<-done
	if calls.Load() < 4 {
		t.Fatalf("heartbeat gave up after %d calls instead of retrying through the outage", calls.Load())
	}
}

// TestHeartbeat409Abandons: an explicit 409 means the lease was
// superseded — the loop must close superseded and stop renewing.
func TestHeartbeat409Abandons(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusConflict)
	}))
	defer hs.Close()

	w := Worker{ID: "abandon-test", Stats: new(WorkerStats)}
	superseded := make(chan struct{})
	go w.heartbeatLoop(context.Background(), hs.Client(), hs.URL,
		wireTask{Session: "s1", Task: Task{Lease: 9}}, 2*time.Millisecond, superseded)
	select {
	case <-superseded:
	case <-time.After(2 * time.Second):
		t.Fatal("409 did not abandon the lease")
	}
	n := calls.Load()
	time.Sleep(20 * time.Millisecond)
	if calls.Load() != n {
		t.Fatal("heartbeat loop kept beating after a 409")
	}
}

// TestExecuteAppliesCorruptResult: the lying-worker hook must perturb the
// result that actually goes on the wire — both when the task is simulated
// and when it is served from the worker-local cache. (Regression: the
// hook once ran in a defer against an unnamed return value, mutating a
// dead copy after `return` had already snapshotted it, so every "lie"
// left the wire honest and the byzantine audit had nothing to catch.)
func TestExecuteAppliesCorruptResult(t *testing.T) {
	spec := ScenarioSpec(tinyScenario(core.ProtoCharisma, 10, 3))
	honest, err := spec.RunRep(0)
	if err != nil {
		t.Fatal(err)
	}
	w := Worker{CorruptResult: func(_, _ int, r *mac.Result) { r.Frames++ }}
	wt := wireTask{Session: "s1", Task: Task{Point: 0, Rep: 0, Spec: spec}}
	out := w.execute(wt)
	if out.Err != "" {
		t.Fatalf("execute failed: %s", out.Err)
	}
	if reflect.DeepEqual(out.Result, honest) {
		t.Fatal("CorruptResult did not reach the returned result")
	}
	if out.Result.Frames != honest.Frames+1 {
		t.Fatalf("Frames = %v, want %v", out.Result.Frames, honest.Frames+1)
	}

	// Cache-hit path: the lie must still be applied on the wire, while the
	// cached entry itself stays honest.
	w.Cache = NewMemCache()
	h, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	key := RepKey(h, run.RepSeed(spec.BaseSeed(), 0))
	w.Cache.Put(key, honest)
	out = w.execute(wt)
	if out.Result.Frames != honest.Frames+1 {
		t.Fatalf("cache-hit Frames = %v, want %v", out.Result.Frames, honest.Frames+1)
	}
	if cached, _ := w.Cache.Get(key); !reflect.DeepEqual(cached, honest) {
		t.Fatal("the lie leaked into the worker-local cache")
	}
}

// TestWorkerLiesCaughtOverHTTP drives the full wire path end to end: a
// real Worker with the lying hook, a real Server, -audit-frac 1. The
// audit must catch the divergence and quarantine the worker.
func TestWorkerLiesCaughtOverHTTP(t *testing.T) {
	sess, err := NewSession(sweepPoints(1), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sess.EnableAudit(Audit{Frac: 1, Seed: 13})
	sv := NewServer()
	sv.Attach(sess)
	hs := httptest.NewServer(sv)
	defer hs.Close()

	liarDone := make(chan error, 1)
	go func() {
		w := Worker{
			Coordinator: hs.URL, ID: "liar", Parallel: 1, Poll: 5 * time.Millisecond,
			CorruptResult: func(_, _ int, r *mac.Result) { r.Frames++ },
		}
		liarDone <- w.Run(context.Background())
	}()
	waitUntil(t, 10*time.Second, func() bool { return sess.Quarantines() == 1 })
	// Honest loopback workers finish the sweep the liar is barred from.
	if err := RunLocal(context.Background(), sess, 2); err != nil {
		t.Fatal(err)
	}
	sv.Close()
	if err := <-liarDone; err != nil {
		t.Fatalf("liar worker: %v", err)
	}
	if _, failed := sess.Audits(); failed < 1 {
		t.Fatalf("failed audits = %d, want >= 1", failed)
	}
}

// TestPostResultRetriesThenReportsLastStatus: delivery retries transient
// failures and, on exhaustion, the error names the attempt count and the
// final HTTP status — a rejecting coordinator is distinguishable from a
// dead link.
func TestPostResultRetriesThenReportsLastStatus(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer hs.Close()

	err := postResult(context.Background(), hs.Client(), hs.URL,
		wireResult{Session: "s1", TaskResult: TaskResult{Lease: 3}})
	if err == nil {
		t.Fatal("exhausted delivery returned nil")
	}
	if calls.Load() != postResultAttempts {
		t.Fatalf("made %d attempts, want %d", calls.Load(), postResultAttempts)
	}
	if !strings.Contains(err.Error(), "502") || !strings.Contains(err.Error(), "5 attempts") {
		t.Fatalf("exhaustion error %q lacks the final status or attempt count", err)
	}
}

// TestPostResultSucceedsAfterOutage: a delivery that fails twice and then
// lands reports success — the retry loop exists so momentary coordinator
// restarts don't strand finished simulations.
func TestPostResultSucceedsAfterOutage(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer hs.Close()

	if err := postResult(context.Background(), hs.Client(), hs.URL,
		wireResult{Session: "s1", TaskResult: TaskResult{Lease: 4}}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("made %d attempts, want 3", calls.Load())
	}
}
