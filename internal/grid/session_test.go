package grid

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/multicell"
	"charisma/internal/run"
)

func sweepScenarios() []core.Scenario {
	return []core.Scenario{
		tinyScenario(core.ProtoCharisma, 8, 0),
		tinyScenario(core.ProtoRAMA, 8, 0),
		tinyScenario(core.ProtoCharisma, 8, 4),
	}
}

func sweepPoints(reps int) []Point {
	scs := sweepScenarios()
	pts := make([]Point, len(scs))
	for i, sc := range scs {
		pts[i] = Point{Spec: ScenarioSpec(sc), Replications: reps}
	}
	return pts
}

// TestGridPathsByteIdentical is the acceptance gate for the subsystem: a
// replicated sweep must produce byte-identical mac.Results across all four
// execution paths — in-process runner, loopback grid, multi-worker grid,
// and warm cache.
func TestGridPathsByteIdentical(t *testing.T) {
	const reps = 3
	ctx := context.Background()

	// Path 1: the in-process replication runner.
	want, err := run.Runner{}.Run(ctx, run.NewPlan(sweepScenarios(), reps))
	if err != nil {
		t.Fatal(err)
	}

	// Path 2: grid session on the loopback transport.
	loop, err := NewSession(sweepPoints(reps), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(ctx, loop, 4); err != nil {
		t.Fatal(err)
	}
	got, err := loop.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("loopback grid differs from in-process runner")
	}

	// Path 3: coordinator + two workers over real HTTP.
	sess, err := NewSession(sweepPoints(reps), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer()
	sv.Attach(sess)
	hs := httptest.NewServer(sv)
	defer hs.Close()
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := Worker{Coordinator: hs.URL, Parallel: 2, Poll: 5 * time.Millisecond}
			workerErrs[i] = w.Run(ctx)
		}(i)
	}
	if err := sess.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sv.Close() // workers see 410 and drain
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	got, err = sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("multi-worker grid differs from in-process runner")
	}
	if sess.Executed() == 0 {
		t.Fatal("remote workers executed nothing")
	}

	// Path 4: warm cache — populate a disk cache, then re-run the sweep
	// against it: zero simulations, identical bytes.
	cache := NewCache(t.TempDir())
	first, err := NewSession(sweepPoints(reps), cache, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(ctx, first, 0); err != nil {
		t.Fatal(err)
	}
	warm, err := NewSession(sweepPoints(reps), cache, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Done() {
		t.Fatal("fully cached session not immediately done")
	}
	if warm.Executed() != 0 {
		t.Fatalf("warm cache ran %d simulations", warm.Executed())
	}
	if warm.CacheHits() != reps*len(sweepScenarios()) {
		t.Fatalf("cache hits = %d, want %d", warm.CacheHits(), reps*len(sweepScenarios()))
	}
	got, err = warm.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("warm cache differs from in-process runner")
	}
}

// TestGridWarmCacheZeroSims re-runs a sweep against a cold-then-warm disk
// cache through the loopback path: the second run must not simulate.
func TestGridWarmCacheZeroSims(t *testing.T) {
	ctx := context.Background()
	cache := NewCache(t.TempDir())
	for pass, wantExec := range []bool{true, false} {
		sess, err := NewSession(sweepPoints(2), cache, Precision{})
		if err != nil {
			t.Fatal(err)
		}
		if err := RunLocal(ctx, sess, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Results(); err != nil {
			t.Fatal(err)
		}
		if wantExec && sess.Executed() == 0 {
			t.Fatalf("pass %d: cold cache executed nothing", pass)
		}
		if !wantExec && sess.Executed() != 0 {
			t.Fatalf("pass %d: warm cache executed %d simulations", pass, sess.Executed())
		}
	}
}

// TestSessionDedupsIdenticalPoints: two points with the same spec share
// simulations — the (spec, seed) pair runs once and feeds both.
func TestSessionDedupsIdenticalPoints(t *testing.T) {
	sc := tinyScenario(core.ProtoCharisma, 8, 0)
	pts := []Point{
		{Spec: ScenarioSpec(sc), Replications: 2},
		{Spec: ScenarioSpec(sc), Replications: 2},
	}
	sess, err := NewSession(pts, nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(context.Background(), sess, 2); err != nil {
		t.Fatal(err)
	}
	rs, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Executed() != 2 {
		t.Fatalf("executed %d simulations, want 2 (deduplicated)", sess.Executed())
	}
	if !reflect.DeepEqual(rs[0], rs[1]) {
		t.Fatal("deduplicated points disagree")
	}
}

// TestSessionPartialFailure: a failing spec costs its own point, not the
// sweep — healthy points aggregate normally alongside the joined error.
func TestSessionPartialFailure(t *testing.T) {
	bad := tinyScenario(core.ProtoCharisma, 8, 0)
	bad.Channel.ShadowSigmaDB = -1 // fails validation inside Scenario.Run
	pts := []Point{
		{Spec: ScenarioSpec(tinyScenario(core.ProtoCharisma, 8, 0)), Replications: 2},
		{Spec: ScenarioSpec(bad), Replications: 2},
	}
	sess, err := NewSession(pts, nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(context.Background(), sess, 2); err != nil {
		t.Fatal(err)
	}
	rs, err := sess.Results()
	if err == nil || !strings.Contains(err.Error(), "shadow sigma") {
		t.Fatalf("error %v does not surface the failure", err)
	}
	if rs[0].Frames == 0 || rs[0].Reps.Replications != 2 {
		t.Fatalf("healthy point lost: %+v", rs[0])
	}
	if !reflect.DeepEqual(rs[1], mac.Result{}) {
		t.Fatalf("failed point not zero: %+v", rs[1])
	}
}

// TestSessionStrayResultsIgnored: duplicate and unknown deliveries must
// not corrupt session state or plant entries in the shared cache.
func TestSessionStrayResultsIgnored(t *testing.T) {
	cache := NewMemCache()
	sess, err := NewSession(sweepPoints(1), cache, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Complete(TaskResult{Point: 99, Rep: 0}); err == nil {
		t.Fatal("unknown point accepted")
	}
	if err := sess.Complete(TaskResult{Point: 0, Rep: -1}); err == nil {
		t.Fatal("negative rep accepted")
	}
	// A result for a rep that was never scheduled has no in-flight entry:
	// it must be dropped without reaching the cache, where a later, wider
	// sweep of the same spec would hit it.
	if err := sess.Complete(TaskResult{Point: 0, Rep: 57, Result: mac.Result{Protocol: "forged"}}); err != nil {
		t.Fatalf("stray rep should be dropped quietly, got %v", err)
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("stray result reached the cache (%d entries)", n)
	}
	if err := RunLocal(context.Background(), sess, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}
}

// TestMulticellSpecMatchesPlanJob: the serializable multicell spec is the
// transportable replacement for multicell.PlanJob — same seeds, same
// normalization, same aggregate.
func TestMulticellSpecMatchesPlanJob(t *testing.T) {
	p := tinyMulticell()
	const reps = 2
	want, err := run.Runner{}.Run(context.Background(),
		run.Plan{Jobs: []run.Job{multicell.PlanJob(p, reps)}})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession([]Point{{Spec: MulticellSpec(p), Replications: reps}}, nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunLocal(context.Background(), sess, 2); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("multicell spec differs from PlanJob:\n%+v\n%+v", want[0], got[0])
	}
}

// TestSessionContextCancellation: cancelling the context unblocks workers
// and Results reports the incomplete session.
func TestSessionContextCancellation(t *testing.T) {
	sess, err := NewSession(sweepPoints(2), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := RunLocal(ctx, sess, 2); err == nil {
		t.Fatal("cancelled RunLocal returned nil")
	}
	if _, err := sess.Results(); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("results on cancelled session: %v", err)
	}
}
