package grid

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"charisma/internal/core"
	"charisma/internal/run"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestLeaseExpiryRequeues: a claimed task whose lease lapses without
// heartbeats re-enters the queue on its own — the expiry janitor fires
// with no other traffic — and the session counts the re-queue.
func TestLeaseExpiryRequeues(t *testing.T) {
	sess, err := NewSession(sweepPoints(1), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	nTasks := len(sweepScenarios())
	tk, ok, _ := sess.TryClaim("w1", 30*time.Millisecond)
	if !ok {
		t.Fatal("no task to claim")
	}
	if tk.Lease == 0 {
		t.Fatal("claimed task carries no lease")
	}
	// Drain the rest so only the crashed task can come back.
	for {
		_, ok, _ := sess.TryClaim("other", 0)
		if !ok {
			break
		}
		nTasks--
	}
	if nTasks != 1 {
		t.Fatalf("expected exactly the claimed task to remain, have %d", nTasks)
	}
	waitUntil(t, 2*time.Second, func() bool { return sess.Requeues() == 1 })
	// The re-queued task is claimable again (by another worker).
	tk2, ok, _ := sess.TryClaim("w2", 0)
	if !ok {
		t.Fatal("expired task not re-queued")
	}
	if tk2.Point != tk.Point || tk2.Rep != tk.Rep {
		t.Fatalf("re-queued task is (%d,%d), want (%d,%d)", tk2.Point, tk2.Rep, tk.Point, tk.Rep)
	}
	if tk2.Lease == tk.Lease {
		t.Fatal("re-dispatch reused the superseded lease id")
	}
}

// TestHeartbeatRenewalKeepsLease: renewing within the TTL keeps the task
// out of the re-queue; once renewals stop, it expires.
func TestHeartbeatRenewalKeepsLease(t *testing.T) {
	sess, err := NewSession(sweepPoints(1), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	const ttl = 40 * time.Millisecond
	tk, ok, _ := sess.TryClaim("w1", ttl)
	if !ok {
		t.Fatal("no task to claim")
	}
	// Renew for several multiples of the TTL.
	for i := 0; i < 8; i++ {
		time.Sleep(ttl / 3)
		if !sess.Renew(tk.Lease, ttl) {
			t.Fatalf("renewal %d failed while lease should be live", i)
		}
	}
	if n := sess.Requeues(); n != 0 {
		t.Fatalf("heartbeated lease was re-queued %d times", n)
	}
	// Stop heartbeating: the lease must lapse and renewal must then fail.
	waitUntil(t, 2*time.Second, func() bool { return sess.Requeues() == 1 })
	if sess.Renew(tk.Lease, ttl) {
		t.Fatal("renewal succeeded on an expired lease")
	}
}

// TestStaleResultDiscarded: a result delivered under a superseded lease
// must not complete the slot, reach the cache, or disturb the re-executed
// task's delivery.
func TestStaleResultDiscarded(t *testing.T) {
	cache := NewMemCache()
	pts := sweepPoints(1)[:1]
	sess, err := NewSession(pts, cache, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	tk, ok, _ := sess.TryClaim("w1", 20*time.Millisecond)
	if !ok {
		t.Fatal("no task to claim")
	}
	waitUntil(t, 2*time.Second, func() bool { return sess.Requeues() == 1 })

	// The dead worker's late delivery: correct payload, superseded lease.
	res, err := tk.Spec.RunRep(tk.Rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Complete(TaskResult{Point: tk.Point, Rep: tk.Rep, Lease: tk.Lease, Result: res}); err != nil {
		t.Fatalf("stale delivery should be dropped quietly, got %v", err)
	}
	if sess.Done() {
		t.Fatal("stale delivery completed the session")
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("stale delivery reached the cache (%d entries)", n)
	}

	// The re-dispatched execution delivers normally and finishes the sweep.
	tk2, ok, _ := sess.TryClaim("w2", time.Minute)
	if !ok {
		t.Fatal("re-queued task not claimable")
	}
	if err := sess.Complete(TaskResult{Point: tk2.Point, Rep: tk2.Rep, Lease: tk2.Lease, Result: res}); err != nil {
		t.Fatal(err)
	}
	if !sess.Done() {
		t.Fatal("current-lease delivery did not complete the session")
	}
	if sess.Requeues() != 1 || sess.Executed() != 1 {
		t.Fatalf("requeues=%d executed=%d, want 1 and 1", sess.Requeues(), sess.Executed())
	}
}

// TestRequeueAvoidsDeadWorker: after two workers each time out on a task,
// each is steered to the *other* worker's task first (the zombie guard),
// yet a lone worker still gets its own timed-out task back when nothing
// else is queued (the fallback), so one survivor can finish any sweep.
func TestRequeueAvoidsDeadWorker(t *testing.T) {
	scs := sweepScenarios()[:2]
	pts := make([]Point, len(scs))
	for i, sc := range scs {
		pts[i] = Point{Spec: ScenarioSpec(sc), Replications: 1}
	}
	sess, err := NewSession(pts, nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	a, ok, _ := sess.TryClaim("w1", 20*time.Millisecond)
	if !ok {
		t.Fatal("w1 got no task")
	}
	b, ok, _ := sess.TryClaim("w2", 20*time.Millisecond)
	if !ok {
		t.Fatal("w2 got no task")
	}
	waitUntil(t, 2*time.Second, func() bool { return sess.Requeues() == 2 })

	// Regardless of re-queue order, w1 is steered to the task it did NOT
	// time out on (w2's), even when its own sits ahead in the queue.
	got1, ok, _ := sess.TryClaim("w1", 0)
	if !ok {
		t.Fatal("w1 got nothing after re-queue")
	}
	if got1.Point != b.Point {
		t.Fatalf("w1 claimed point %d, want w2's point %d", got1.Point, b.Point)
	}
	// Only w1's own timed-out task remains — the fallback must still hand
	// it over rather than starve the sweep.
	got2, ok, _ := sess.TryClaim("w1", 0)
	if !ok {
		t.Fatal("fallback withheld the last task from w1")
	}
	if got2.Point != a.Point {
		t.Fatalf("w1's fallback task is %d, want its own %d", got2.Point, a.Point)
	}
}

// TestZeroLeaseCompleteRetiresLease: a direct completion that echoes no
// lease (legacy callers) must still retire the key's outstanding lease,
// or the janitor would re-queue — and a worker re-execute — a task that
// already finished.
func TestZeroLeaseCompleteRetiresLease(t *testing.T) {
	// Two points keep the session — and its expiry janitor — alive after
	// the first completion.
	scs := sweepScenarios()[:2]
	pts := make([]Point, len(scs))
	for i, sc := range scs {
		pts[i] = Point{Spec: ScenarioSpec(sc), Replications: 1}
	}
	sess, err := NewSession(pts, nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	tk, ok, _ := sess.TryClaim("w1", 60*time.Millisecond)
	if !ok {
		t.Fatal("no task to claim")
	}
	res, err := tk.Spec.RunRep(tk.Rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Complete(TaskResult{Point: tk.Point, Rep: tk.Rep, Result: res}); err != nil {
		t.Fatal(err)
	}
	if p := sess.Progress(); p.Leases != 0 {
		t.Fatalf("%d dead leases survive the completion", p.Leases)
	}
	time.Sleep(200 * time.Millisecond) // well past the lease deadline
	if n := sess.Requeues(); n != 0 {
		t.Fatalf("completed task re-queued %d times by a stale lease", n)
	}
	if err := RunLocal(context.Background(), sess, 1); err != nil {
		t.Fatal(err)
	}
	if sess.Executed() != 2 {
		t.Fatalf("executed %d simulations, want 2 (no re-execution)", sess.Executed())
	}
}

// TestCrashedWorkerSweepByteIdentical is the fault-tolerance acceptance
// gate in-process: a sweep served over real HTTP where one worker claims
// tasks and dies mid-execution (never completes, never heartbeats) must
// still finish — via lease expiry and re-queueing — with results
// byte-identical to the in-process runner.
func TestCrashedWorkerSweepByteIdentical(t *testing.T) {
	const reps = 2
	ctx := context.Background()
	want, err := run.Runner{}.Run(ctx, run.NewPlan(sweepScenarios(), reps))
	if err != nil {
		t.Fatal(err)
	}

	sess, err := NewSession(sweepPoints(reps), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer()
	sv.LeaseTTL = 50 * time.Millisecond
	sv.Attach(sess)
	hs := httptest.NewServer(sv)
	defer hs.Close()

	// The crashing worker: claims two tasks over the real wire and then
	// vanishes without heartbeating — exactly what a SIGKILL looks like
	// to the coordinator.
	crash := Worker{Coordinator: hs.URL, ID: "crashy"}
	client := hs.Client()
	for i := 0; i < 2; i++ {
		wt, status, err := crash.fetchTask(ctx, client, hs.URL)
		if err != nil || status != 200 {
			t.Fatalf("crashy worker claim %d: status %d err %v", i, status, err)
		}
		if wt.Lease == 0 || wt.LeaseMS != 50 {
			t.Fatalf("dispatched task lease=%d leaseMS=%d, want a 50ms lease", wt.Lease, wt.LeaseMS)
		}
	}

	// One healthy worker finishes everything the crash left behind.
	var wg sync.WaitGroup
	wg.Add(1)
	var werr error
	go func() {
		defer wg.Done()
		w := Worker{Coordinator: hs.URL, ID: "healthy", Parallel: 2, Poll: 5 * time.Millisecond}
		werr = w.Run(ctx)
	}()
	if err := sess.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sv.Close()
	wg.Wait()
	if werr != nil {
		t.Fatal(werr)
	}

	if sess.Requeues() < 2 {
		t.Fatalf("requeues = %d, want ≥ 2 (both abandoned tasks)", sess.Requeues())
	}
	got, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("crash-recovered sweep differs from in-process runner")
	}
}

// TestWorkerAbandonsSupersededLease: a live-but-slow worker whose lease
// the coordinator revoked learns it from the heartbeat 409 and does not
// post its result (which would be discarded anyway).
func TestWorkerAbandonsSupersededLease(t *testing.T) {
	sc := tinyScenario(core.ProtoCharisma, 8, 0)
	sess, err := NewSession([]Point{{Spec: ScenarioSpec(sc), Replications: 1}}, nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer()
	sv.LeaseTTL = 25 * time.Millisecond
	sv.Attach(sess)
	hs := httptest.NewServer(sv)
	defer hs.Close()

	slow := Worker{Coordinator: hs.URL, ID: "slow"}
	wt, status, err := slow.fetchTask(context.Background(), hs.Client(), hs.URL)
	if err != nil || status != 200 {
		t.Fatalf("claim failed: status %d err %v", status, err)
	}
	// Let the lease lapse, as if the simulation were enormous.
	waitUntil(t, 2*time.Second, func() bool { return sess.Requeues() == 1 })
	renewed, err := postBeat(context.Background(), hs.Client(), hs.URL, wt.Session, wt.Lease)
	if err != nil {
		t.Fatal(err)
	}
	if renewed {
		t.Fatal("heartbeat renewed a superseded lease")
	}
}

// TestProgressStreaming: subscribers see monotonically growing versions,
// per-point settlement with live aggregates, and a final Done snapshot
// whose per-point aggregates equal the session's Results.
func TestProgressStreaming(t *testing.T) {
	ctx := context.Background()
	sess, err := NewSession(sweepPoints(2), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sub := sess.Subscribe(ctx)
	done := make(chan []Progress)
	go func() {
		var seen []Progress
		for p := range sub {
			seen = append(seen, p)
		}
		done <- seen
	}()
	if err := RunLocal(ctx, sess, 2); err != nil {
		t.Fatal(err)
	}
	seen := <-done
	if len(seen) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	last := seen[len(seen)-1]
	if !last.Done {
		t.Fatal("final snapshot not marked Done")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Version <= seen[i-1].Version {
			t.Fatalf("versions not increasing: %d then %d", seen[i-1].Version, seen[i].Version)
		}
	}
	want, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(last.Points) != len(want) {
		t.Fatalf("final snapshot has %d points, want %d", len(last.Points), len(want))
	}
	for j, pp := range last.Points {
		if !pp.Settled || pp.Done != 2 || pp.Scheduled != 2 {
			t.Fatalf("point %d final state %+v not settled at 2 reps", j, pp)
		}
		if !reflect.DeepEqual(pp.Aggregate, want[j]) {
			t.Fatalf("point %d final aggregate differs from Results", j)
		}
	}
}

// TestProgressOverHTTP: GET /progress serves the live snapshot.
func TestProgressOverHTTP(t *testing.T) {
	ctx := context.Background()
	sess, err := NewSession(sweepPoints(1), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer()
	sv.Attach(sess)
	hs := httptest.NewServer(sv)
	defer hs.Close()
	if err := RunLocal(ctx, sess, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Get(hs.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/progress answered %d", resp.StatusCode)
	}
	var p Progress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if !p.Done || len(p.Points) != len(sweepScenarios()) {
		t.Fatalf("progress snapshot %+v not the settled sweep", p)
	}
}
