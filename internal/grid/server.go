package grid

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Wire envelope types: the session id pins results to the sweep that
// issued the task, so a slow worker posting into a later sweep of the same
// coordinator process is rejected instead of corrupting it.
type wireTask struct {
	Session string
	// LeaseMS is the lease TTL in milliseconds. A positive value asks the
	// worker to heartbeat (POST /heartbeat) well within every window or
	// lose the task to re-queueing; zero means the lease never expires.
	LeaseMS int64 `json:",omitempty"`
	Task
}

type wireResult struct {
	Session string
	TaskResult
}

// wireBeat is one heartbeat: the worker renewing its lease on a task.
type wireBeat struct {
	Session string
	Lease   int64
}

// maxResultBody bounds a posted result; a mac.Result is a few hundred
// bytes of JSON.
const maxResultBody = 1 << 20

// Server exposes sessions to remote workers over HTTP — the
// coordinator/worker protocol:
//
//	GET  /task?worker=ID → 200 {Session, LeaseMS?, Lease, Point, Rep,
//	               Spec} | 204 no work right now (poll again) |
//	               410 coordinator closed (exit)
//	POST /heartbeat ← {Session, Lease} → 204 lease renewed | 409 lease or
//	               session superseded (abandon the task)
//	POST /result ← {Session, Lease, Point, Rep, Err?, Result} → 204
//	               (accepted or discarded as stale) | 409 stale session
//	GET  /progress → 200 Progress snapshot | 204 no session attached
//	GET  /stats  → 200 {Executed, CacheHits, Requeues, Done}
//	GET  /metrics → 200 Prometheus text exposition (see metrics.go)
//
// One server outlives its sessions: a multi-sweep run attaches each
// sweep's session in turn and workers keep polling across the gaps.
//
// With a positive LeaseTTL every dispatched task can expire: a worker
// that crashes (or loses its network) stops heartbeating, its lease
// lapses, and the session re-queues the task for the surviving workers —
// the sweep completes with byte-identical results instead of stalling.
type Server struct {
	// LeaseTTL is the deadline granted on each dispatched task and on
	// each heartbeat renewal. Zero disables expiry: a crashed worker then
	// strands its in-flight tasks until the coordinator is cancelled.
	LeaseTTL time.Duration

	// Log receives structured protocol events (session attach, task
	// claims at debug level) when non-nil; set before serving. Attach
	// also propagates it to the session's scheduler events.
	Log *slog.Logger

	mu     sync.Mutex
	sess   *Session
	sessID string
	seq    int
	closed bool

	// Protocol counters exported by /metrics (atomics: handlers run on
	// arbitrary HTTP goroutines).
	tasksServed     atomic.Uint64 // tasks dispatched via GET /task
	heartbeats      atomic.Uint64 // successful lease renewals
	beatConflicts   atomic.Uint64 // heartbeats answered 409
	resultsAccepted atomic.Uint64 // POST /result answered 204
	resultsRejected atomic.Uint64 // POST /result answered 4xx
}

// NewServer returns a server with no session attached (workers poll 204
// until one arrives) and lease expiry disabled; set LeaseTTL before
// serving to enable crash re-queueing.
func NewServer() *Server { return &Server{} }

// Attach makes s the current session new tasks are served from. Results
// for previously attached sessions are rejected as stale.
func (sv *Server) Attach(s *Session) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.seq++
	sv.sess = s
	sv.sessID = "s" + strconv.Itoa(sv.seq)
	if sv.Log != nil {
		s.SetLogger(sv.Log)
		sv.Log.Info("session attached", "session", sv.sessID, "serial", s.Serial())
	}
}

// Close makes /task answer 410 so polling workers drain and exit.
func (sv *Server) Close() {
	sv.mu.Lock()
	sv.closed = true
	sv.mu.Unlock()
}

func (sv *Server) current() (s *Session, id string, closed bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.sess, sv.sessID, sv.closed
}

// ServeHTTP implements the protocol above.
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/task":
		sess, id, closed := sv.current()
		if closed {
			w.WriteHeader(http.StatusGone)
			return
		}
		if sess == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		worker := r.URL.Query().Get("worker")
		t, ok, _ := sess.TryClaim(worker, sv.LeaseTTL)
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		sv.tasksServed.Add(1)
		if sv.Log != nil {
			sv.Log.Debug("task dispatched", "session", id, "worker", worker,
				"lease", t.Lease, "point", t.Point, "rep", t.Rep)
		}
		writeJSON(w, wireTask{Session: id, LeaseMS: sv.LeaseTTL.Milliseconds(), Task: t})

	case r.Method == http.MethodPost && r.URL.Path == "/heartbeat":
		var hb wireBeat
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResultBody)).Decode(&hb); err != nil {
			http.Error(w, "bad heartbeat: "+err.Error(), http.StatusBadRequest)
			return
		}
		sess, id, _ := sv.current()
		if sess == nil || hb.Session != id || !sess.Renew(hb.Lease, sv.LeaseTTL) {
			sv.beatConflicts.Add(1)
			http.Error(w, "lease superseded", http.StatusConflict)
			return
		}
		sv.heartbeats.Add(1)
		w.WriteHeader(http.StatusNoContent)

	case r.Method == http.MethodPost && r.URL.Path == "/result":
		var res wireResult
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResultBody)).Decode(&res); err != nil {
			http.Error(w, "bad result: "+err.Error(), http.StatusBadRequest)
			return
		}
		sess, id, _ := sv.current()
		if sess == nil || res.Session != id {
			sv.resultsRejected.Add(1)
			http.Error(w, "stale session", http.StatusConflict)
			return
		}
		// A result under a superseded lease is discarded inside Complete;
		// the worker is answered 204 either way — there is nothing it
		// should retry.
		if err := sess.Complete(res.TaskResult); err != nil {
			sv.resultsRejected.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sv.resultsAccepted.Add(1)
		w.WriteHeader(http.StatusNoContent)

	case r.Method == http.MethodGet && r.URL.Path == "/progress":
		sess, _, _ := sv.current()
		if sess == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, sess.Progress())

	case r.Method == http.MethodGet && r.URL.Path == "/stats":
		sess, _, _ := sv.current()
		st := struct {
			Executed  int
			CacheHits int
			Requeues  int
			Done      bool
		}{}
		if sess != nil {
			st.Executed, st.CacheHits, st.Requeues, st.Done =
				sess.Executed(), sess.CacheHits(), sess.Requeues(), sess.Done()
		}
		writeJSON(w, st)

	case r.Method == http.MethodGet && r.URL.Path == "/metrics":
		sv.serveMetrics(w)

	default:
		http.NotFound(w, r)
	}
}

// ListenAndServe serves the coordinator on addr until the context is
// cancelled. The underlying http.Server is hardened against misbehaving
// and malicious clients: header/read/write deadlines bound every
// connection (a slow-loris client dribbling bytes is cut off instead of
// pinning a handler goroutine), idle keep-alives expire, and request
// bodies are capped (see maxResultBody) — the coordinator keeps serving
// honest workers no matter what else connects to the port.
func (sv *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           sv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    16 << 10,
	}
	stop := context.AfterFunc(ctx, func() { srv.Close() })
	defer stop()
	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return ctx.Err()
	}
	return err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
