package grid

import (
	"bytes"
	"strings"
	"testing"

	"charisma/internal/core"
	"charisma/internal/multicell"
)

func TestLoadScenarioFileSingle(t *testing.T) {
	const file = `
# a comment, then a blank line

{"scenario": {"protocol": "charisma", "numVoice": 30, "numData": 5, "seed": 7, "warmupSec": 0.25, "durationSec": 1}, "replications": 3}
`
	pts, err := LoadScenarioFile(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	p := pts[0]
	if p.Replications != 3 {
		t.Errorf("replications = %d, want 3", p.Replications)
	}
	if p.Spec.Kind != KindScenario {
		t.Errorf("kind = %q (not inferred)", p.Spec.Kind)
	}
	sc := p.Spec.Scenario
	if sc.Protocol != "charisma" || sc.NumVoice != 30 || sc.NumData != 5 || sc.Seed != 7 {
		t.Errorf("scenario fields mangled: %+v", sc)
	}
}

func TestLoadScenarioFileSweepExpansion(t *testing.T) {
	const file = `{"scenario": {"protocol": {"sweep": ["charisma", "rama"]}, "numVoice": {"range": {"from": 20, "to": 60, "step": 20}}, "durationSec": 1}}`
	pts, err := LoadScenarioFile(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	// 2 protocols × 3 populations; axes order by path, so
	// scenario.numVoice comes first and scenario.protocol varies fastest.
	want := []struct {
		proto string
		nv    int
	}{
		{"charisma", 20}, {"rama", 20},
		{"charisma", 40}, {"rama", 40},
		{"charisma", 60}, {"rama", 60},
	}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i, w := range want {
		sc := pts[i].Spec.Scenario
		if sc.Protocol != w.proto || sc.NumVoice != w.nv {
			t.Errorf("point %d: (%s, %d), want (%s, %d)", i, sc.Protocol, sc.NumVoice, w.proto, w.nv)
		}
	}
}

func TestLoadScenarioFileMulticell(t *testing.T) {
	const file = `{"multicell": {"cells": {"sweep": [2, 3]}, "protocol": "charisma", "numVoice": 10, "decisionPeriodFrames": 40, "durationSec": 1}}`
	pts, err := LoadScenarioFile(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for i, cells := range []int{2, 3} {
		if pts[i].Spec.Kind != KindMulticell || pts[i].Spec.Multicell.Cells != cells {
			t.Errorf("point %d: kind %q cells %d", i, pts[i].Spec.Kind, pts[i].Spec.Multicell.Cells)
		}
	}
}

func TestLoadScenarioFileRejects(t *testing.T) {
	cases := []struct {
		name string
		file string
	}{
		{"empty", ""},
		{"comment only", "# nothing\n"},
		{"not an object", `[1,2,3]`},
		{"unknown field", `{"scenario": {"protocol": "charisma", "numVoice": 1, "bogus": 2}}`},
		{"both payloads", `{"scenario": {"protocol": "charisma", "numVoice": 1}, "multicell": {"cells": 2, "protocol": "charisma", "numVoice": 1, "decisionPeriodFrames": 1}}`},
		{"no payload", `{"replications": 2}`},
		{"kind mismatch", `{"kind": "multicell", "scenario": {"protocol": "charisma", "numVoice": 1}}`},
		{"unknown protocol", `{"scenario": {"protocol": "aloha", "numVoice": 1}}`},
		{"zero population", `{"scenario": {"protocol": "charisma"}}`},
		{"negative replications", `{"scenario": {"protocol": "charisma", "numVoice": 1}, "replications": -1}`},
		{"empty sweep", `{"scenario": {"protocol": "charisma", "numVoice": {"sweep": []}}}`},
		{"descending range", `{"scenario": {"protocol": "charisma", "numVoice": {"range": {"from": 10, "to": 5, "step": 1}}}}`},
		{"zero-step range", `{"scenario": {"protocol": "charisma", "numVoice": {"range": {"from": 1, "to": 5, "step": 0}}}}`},
		{"trailing data", `{"scenario": {"protocol": "charisma", "numVoice": 1}} extra`},
		{"oversized product", `{"scenario": {"protocol": "charisma", "numVoice": {"range": {"from": 1, "to": 100, "step": 1}}, "numData": {"range": {"from": 1, "to": 100, "step": 1}}}}`},
		{"rmav multicell", `{"multicell": {"cells": 2, "protocol": "rmav", "numVoice": 1, "decisionPeriodFrames": 1}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := LoadScenarioFile(strings.NewReader(c.file)); err == nil {
				t.Fatalf("loaded %q without error", c.file)
			}
		})
	}
}

func TestScenarioFileDefaultsValidated(t *testing.T) {
	// The raw payload is zero-valued almost everywhere — invalid as-is —
	// but the loader validates the *defaulted* scenario, which runs fine.
	const file = `{"scenario": {"protocol": "drma", "numData": 3}}`
	pts, err := LoadScenarioFile(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if err := pts[0].Spec.Scenario.Validate(); err == nil {
		t.Fatal("raw zero-valued payload unexpectedly valid (defaults leaked into the spec?)")
	}
}

func TestWriteScenarioFileRoundTrip(t *testing.T) {
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice, sc.NumData = 40, 10
	sc.WarmupSec, sc.DurationSec = 0.25, 1.5
	sc.SpeedsKmh = nil
	mp := multicell.DefaultParams()
	mp.NumVoice, mp.DurationSec = 12, 0.5
	in := []Point{
		{Spec: ScenarioSpec(sc), Replications: 4},
		{Spec: MulticellSpec(mp), Replications: 1},
	}
	var buf bytes.Buffer
	if err := WriteScenarioFile(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadScenarioFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reloading written file: %v\n%s", err, buf.String())
	}
	if len(out) != len(in) {
		t.Fatalf("got %d points, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Replications != in[i].Replications {
			t.Errorf("point %d: replications %d, want %d", i, out[i].Replications, in[i].Replications)
		}
		hin, err := in[i].Spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		hout, err := out[i].Spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if hin != hout {
			t.Errorf("point %d: content hash drifted across write→load: %s != %s", i, hin, hout)
		}
	}
}

// FuzzScenarioFile extends the PR 3 codec fuzz family to the JSONL
// loader: arbitrary bytes must never panic, and every successfully loaded
// file must round-trip each expanded spec through the canonical codec to
// the same content hash.
func FuzzScenarioFile(f *testing.F) {
	f.Add([]byte(`{"scenario": {"protocol": "charisma", "numVoice": 30, "numData": 5}}`))
	f.Add([]byte(`{"scenario": {"protocol": {"sweep": ["charisma", "rama"]}, "numVoice": {"range": {"from": 20, "to": 60, "step": 20}}}, "replications": 2}`))
	f.Add([]byte(`{"multicell": {"cells": 2, "protocol": "drma", "numVoice": 8, "decisionPeriodFrames": 40}}`))
	f.Add([]byte("# comment\n\n{\"kind\": \"scenario\", \"scenario\": {\"protocol\": \"rmav\", \"numVoice\": 1, \"speedsKmh\": [50]}}"))
	f.Add([]byte(`{"scenario": {"protocol": "charisma", "numVoice": {"sweep": [1, 2]}, "channel": {"speedKmh": {"range": {"from": 10, "to": 30, "step": 10}}}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, err := LoadScenarioFile(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(pts) == 0 {
			t.Fatal("nil error with zero points")
		}
		for i, p := range pts {
			if p.Replications < 1 {
				t.Fatalf("point %d: replications %d", i, p.Replications)
			}
			enc, err := p.Spec.Encode()
			if err != nil {
				t.Fatalf("point %d: loaded spec does not encode: %v", i, err)
			}
			rt, err := DecodeSpec(enc)
			if err != nil {
				t.Fatalf("point %d: canonical encoding does not decode: %v", i, err)
			}
			h1, err := p.Spec.Hash()
			if err != nil {
				t.Fatal(err)
			}
			h2, err := rt.Hash()
			if err != nil {
				t.Fatal(err)
			}
			if h1 != h2 {
				t.Fatalf("point %d: hash drifted through codec round trip: %s != %s", i, h1, h2)
			}
		}
	})
}
