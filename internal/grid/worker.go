package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"charisma/internal/mac"
	"charisma/internal/rng"
	"charisma/internal/run"
)

// Worker pulls (spec, rep) tasks from a coordinator Server and streams
// results back — the client half of the grid protocol, shared by
// cmd/charisma-worker and the in-process tests so both exercise the same
// code.
//
// When the coordinator dispatches tasks under expirable leases, the
// worker heartbeats each task it is executing at a third of the lease
// TTL. A heartbeat answered 409 means the lease was superseded — the
// coordinator presumed this worker dead and re-queued the task — so the
// worker abandons the task quietly: its result would be discarded anyway.
type Worker struct {
	// Coordinator is the base URL of the coordinator server.
	Coordinator string
	// ID names this worker to the coordinator; it feeds the crash
	// re-queue exclusion (a worker is not immediately handed back a task
	// it previously timed out on). Empty means "<hostname>-<pid>".
	ID string
	// Parallel bounds concurrent simulations; below 1 means one per core.
	Parallel int
	// Cache, when non-nil, short-circuits tasks whose RepKey the worker
	// already holds (a worker-local -cache-dir).
	Cache Cache
	// Poll is the idle re-poll interval (default 200 ms).
	Poll time.Duration
	// MaxIdle exits the worker after this long without work — including
	// an unreachable coordinator. Zero means poll forever.
	MaxIdle time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Log receives structured lifecycle events (claims, abandons, exit)
	// tagged with the worker ID; nil discards them.
	Log *slog.Logger
	// Stats, when non-nil, is updated live as the worker runs — the
	// backing store for cmd/charisma-worker's stats endpoint. Run installs
	// a private one when nil so internal counting never branches.
	Stats *WorkerStats
	// CorruptResult, when non-nil, is applied to every result just before
	// it is posted — the chaos harness's lying-worker hook (exercises the
	// coordinator's byzantine audit). It never touches the worker-local
	// cache: the lie lives on the wire only.
	CorruptResult func(point, rep int, r *mac.Result)

	// sleep is the claim-loop's wait primitive, replaced by a virtual
	// clock in tests so backoff schedules are assertable without walls.
	sleep func(ctx context.Context, d time.Duration) error
}

// WorkerStats counts one worker process's traffic. All fields are
// atomics: the worker runs Parallel loops concurrently. Read a coherent
// view via Snapshot.
type WorkerStats struct {
	Claimed     atomic.Uint64 // tasks accepted from /task
	Completed   atomic.Uint64 // results posted (or abandoned as stale after execution)
	Abandoned   atomic.Uint64 // tasks dropped because the lease was superseded
	CacheHits   atomic.Uint64 // tasks served from the worker-local cache
	CacheMisses atomic.Uint64 // tasks that missed the worker-local cache
	beats       atomic.Uint64 // successful heartbeat round-trips
	beatNanos   atomic.Uint64 // cumulative heartbeat round-trip time
}

func (s *WorkerStats) observeBeat(d time.Duration) {
	s.beats.Add(1)
	s.beatNanos.Add(uint64(d))
}

// WorkerStatsSnapshot is one JSON-friendly view of a WorkerStats —
// what cmd/charisma-worker serves from its stats endpoint.
type WorkerStatsSnapshot struct {
	Claimed        uint64  `json:"claimed"`
	Completed      uint64  `json:"completed"`
	Abandoned      uint64  `json:"abandoned"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	Heartbeats     uint64  `json:"heartbeats"`
	HeartbeatAvgMS float64 `json:"heartbeat_avg_ms"` // mean round-trip, milliseconds
}

// Snapshot returns the current counter values. Counters are read
// individually, so a snapshot taken mid-update may be skewed by one
// in-flight task — fine for monitoring.
func (s *WorkerStats) Snapshot() WorkerStatsSnapshot {
	snap := WorkerStatsSnapshot{
		Claimed:     s.Claimed.Load(),
		Completed:   s.Completed.Load(),
		Abandoned:   s.Abandoned.Load(),
		CacheHits:   s.CacheHits.Load(),
		CacheMisses: s.CacheMisses.Load(),
		Heartbeats:  s.beats.Load(),
	}
	if snap.Heartbeats > 0 {
		snap.HeartbeatAvgMS = float64(s.beatNanos.Load()) / float64(snap.Heartbeats) / 1e6
	}
	return snap
}

// Run polls for tasks until the coordinator reports it has closed (410),
// MaxIdle elapses without work, or the context is cancelled.
func (w Worker) Run(ctx context.Context) error {
	if w.Coordinator == "" {
		return errors.New("grid: worker needs a coordinator URL")
	}
	if w.ID == "" {
		host, _ := os.Hostname()
		w.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	// Normalize the optional observability fields once on this copy so the
	// per-loop code counts and logs unconditionally.
	if w.Stats == nil {
		w.Stats = new(WorkerStats)
	}
	if w.Log == nil {
		w.Log = slog.New(slog.DiscardHandler)
	}
	w.Log = w.Log.With("worker", w.ID)
	if w.sleep == nil {
		w.sleep = sleepCtx
	}
	base := strings.TrimSuffix(w.Coordinator, "/")
	n := w.Parallel
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	client := w.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.loop(ctx, client, base, poll)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	return ctx.Err()
}

// claimBackoffCap bounds the claim loop's transient-failure backoff: an
// unreachable or erroring coordinator is re-probed at most this far apart
// (MaxIdle still bounds how long the worker keeps trying at all).
const claimBackoffCap = 15 * time.Second

func (w Worker) loop(ctx context.Context, client *http.Client, base string, poll time.Duration) error {
	idleSince := time.Now()
	// Transient failures (transport errors, 5xx) retry on a jittered
	// exponential schedule; a healthy-but-idle 204 keeps the plain poll
	// interval and resets the schedule.
	bo := NewBackoff(poll, claimBackoffCap, rng.SeedFor(0, "claim", w.ID))
	var lastErr error
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		wt, status, err := w.fetchTask(ctx, client, base)
		transient := err != nil || status >= 500
		switch {
		case status == http.StatusGone:
			w.Log.Info("coordinator closed, exiting")
			return nil
		case transient || status == http.StatusNoContent:
			if transient {
				if err == nil {
					err = fmt.Errorf("grid: coordinator answered %d to /task", status)
				}
				lastErr = err
			}
			if w.MaxIdle > 0 && time.Since(idleSince) > w.MaxIdle {
				if lastErr != nil {
					return fmt.Errorf("grid: worker gave up after %v idle: %w", w.MaxIdle, lastErr)
				}
				w.Log.Info("idle limit reached, exiting", "max_idle", w.MaxIdle)
				return nil
			}
			delay := poll
			if transient {
				delay = bo.Next()
				w.Log.Debug("transient claim failure, backing off", "delay", delay, "err", err)
			} else {
				bo.Reset()
				lastErr = nil
			}
			if serr := w.sleep(ctx, delay); serr != nil {
				return serr
			}
		case status == http.StatusOK:
			idleSince = time.Now()
			bo.Reset()
			lastErr = nil
			w.Stats.Claimed.Add(1)
			w.Log.Debug("task claimed",
				"session", wt.Session, "lease", wt.Lease, "point", wt.Point, "rep", wt.Rep)
			res, lost := w.executeLeased(ctx, client, base, wt)
			if lost {
				// The lease was superseded mid-execution; the result
				// would be discarded, so don't bother posting it.
				w.Stats.Abandoned.Add(1)
				w.Log.Warn("lease superseded mid-execution, task abandoned",
					"session", wt.Session, "lease", wt.Lease, "point", wt.Point, "rep", wt.Rep)
				continue
			}
			if perr := postResult(ctx, client, base, res); perr != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				// A stranded result is recoverable — the lease lapses and
				// the task is re-executed elsewhere — so a delivery failure
				// abandons the task instead of killing this worker lane.
				w.Stats.Abandoned.Add(1)
				w.Log.Warn("result delivery failed, task abandoned",
					"session", wt.Session, "lease", wt.Lease, "point", wt.Point, "rep", wt.Rep, "err", perr)
				continue
			}
			w.Stats.Completed.Add(1)
		default:
			// Non-transient protocol surprise (4xx): misconfiguration, not
			// an outage — retrying would loop forever against the wrong
			// endpoint.
			return fmt.Errorf("grid: coordinator answered %d to /task", status)
		}
	}
}

// executeLeased runs one task while heartbeating its lease. lost reports
// that the coordinator superseded the lease before the task finished.
func (w Worker) executeLeased(ctx context.Context, client *http.Client, base string, wt wireTask) (res wireResult, lost bool) {
	if wt.Lease == 0 || wt.LeaseMS <= 0 {
		return w.execute(wt), false
	}
	interval := time.Duration(wt.LeaseMS) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	superseded := make(chan struct{})
	go w.heartbeatLoop(hbCtx, client, base, wt, interval, superseded)
	res = w.execute(wt)
	stopHB()
	select {
	case <-superseded:
		return res, true
	default:
		return res, false
	}
}

// heartbeatLoop renews one lease every interval until ctx is cancelled
// or the coordinator answers 409, which closes superseded. Transport
// errors are tolerated: a momentary coordinator hiccup should not make
// the worker abandon real work — only an explicit 409 does. But a
// failed renewal leaves the lease burning down, so errors retry on a
// short jittered schedule (capped at the normal interval) instead of
// waiting out a full interval and risking the lease lapsing behind a
// flaky link.
func (w Worker) heartbeatLoop(ctx context.Context, client *http.Client, base string, wt wireTask, interval time.Duration, superseded chan<- struct{}) {
	retry := NewBackoff(interval/8, interval, rng.SeedFor(wt.Lease, "beat", w.ID))
	t := time.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			start := time.Now()
			ok, err := postBeat(ctx, client, base, wt.Session, wt.Lease)
			switch {
			case err != nil:
				t.Reset(retry.Next())
			case !ok:
				close(superseded)
				return
			default:
				w.Stats.observeBeat(time.Since(start))
				retry.Reset()
				t.Reset(interval)
			}
		}
	}
}

// execute runs one task (or serves it from the worker-local cache) and
// wraps the outcome for the wire. The named return matters: CorruptResult
// runs in a defer so it covers the cache-hit and simulate paths alike,
// and a defer can only reach the value actually returned through a named
// result.
func (w Worker) execute(wt wireTask) (out wireResult) {
	out = wireResult{Session: wt.Session, TaskResult: TaskResult{Point: wt.Point, Rep: wt.Rep, Lease: wt.Lease}}
	if err := wt.Spec.Validate(); err != nil {
		out.Err = err.Error()
		return out
	}
	defer func() {
		if out.Err == "" && w.CorruptResult != nil {
			w.CorruptResult(wt.Point, wt.Rep, &out.Result)
		}
	}()
	var key string
	if w.Cache != nil {
		if h, err := wt.Spec.Hash(); err == nil {
			key = RepKey(h, run.RepSeed(wt.Spec.BaseSeed(), wt.Rep))
			if r, ok := w.Cache.Get(key); ok {
				if w.Stats != nil {
					w.Stats.CacheHits.Add(1)
				}
				out.Result = r
				return out
			}
			if w.Stats != nil {
				w.Stats.CacheMisses.Add(1)
			}
		}
	}
	r, err := wt.Spec.RunRep(wt.Rep)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Result = r
	if w.Cache != nil && key != "" {
		w.Cache.Put(key, r)
	}
	return out
}

func (w Worker) fetchTask(ctx context.Context, client *http.Client, base string) (wireTask, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/task?worker="+url.QueryEscape(w.ID), nil)
	if err != nil {
		return wireTask{}, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return wireTask{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return wireTask{}, resp.StatusCode, nil
	}
	var wt wireTask
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResultBody)).Decode(&wt); err != nil {
		return wireTask{}, resp.StatusCode, fmt.Errorf("grid: bad task payload: %w", err)
	}
	return wt, resp.StatusCode, nil
}

// postBeat renews one lease. renewed is false on an explicit 409 (the
// lease or session was superseded); transport and other failures return
// an error instead, which callers treat as transient.
func postBeat(ctx context.Context, client *http.Client, base, session string, lease int64) (renewed bool, err error) {
	body, err := json.Marshal(wireBeat{Session: session, Lease: lease})
	if err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/heartbeat", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return true, nil
	case http.StatusConflict:
		return false, nil
	default:
		return false, fmt.Errorf("grid: coordinator answered %d to /heartbeat", resp.StatusCode)
	}
}

// postResultAttempts bounds delivery retries; with the jittered
// exponential schedule the attempts span roughly two seconds of
// coordinator outage before the task is abandoned to lease re-queueing.
const postResultAttempts = 5

// postResult delivers one result, retrying transient failures on the
// shared jittered-exponential backoff so a momentary coordinator hiccup
// doesn't strand a finished simulation. On exhaustion the returned error
// carries the *last* observed failure — including the final HTTP status
// when the coordinator answered at all — so an operator can tell a dead
// link from a rejecting coordinator.
func postResult(ctx context.Context, client *http.Client, base string, res wireResult) error {
	body, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("grid: encode result: %w", err)
	}
	bo := NewBackoff(150*time.Millisecond, 2*time.Second, res.Lease)
	var last error
	for attempt := 0; attempt < postResultAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, bo.Next()); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/result", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			last = err
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusNoContent:
			return nil
		case http.StatusConflict:
			// The coordinator moved on to another session; drop quietly.
			return nil
		default:
			last = fmt.Errorf("grid: coordinator answered %d to /result", resp.StatusCode)
		}
	}
	return fmt.Errorf("grid: result delivery failed after %d attempts: %w", postResultAttempts, last)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
