package grid

import (
	"context"
	"runtime"
	"sync"

	"charisma/internal/mac"
)

// DriveConfig bundles everything needed to run a batch of points end to
// end; the zero value means in-memory cache, fixed replications, loopback
// workers one-per-core.
type DriveConfig struct {
	// Cache resolves replications before simulating (nil = in-memory).
	Cache Cache
	// Precision enables adaptive replication when TargetRel > 0.
	Precision Precision
	// Workers bounds the loopback pool (below 1 = one per core).
	Workers int
	// Server, when non-nil, also exposes the session to remote workers.
	Server *Server
	// RemoteOnly skips the loopback pool: only remote workers simulate.
	RemoteOnly bool
	// Audit, when enabled (Frac > 0), re-executes a seeded fraction of
	// remotely produced results locally and quarantines any worker whose
	// result diverges — byzantine-result defense (see Audit).
	Audit Audit
	// Stats, when non-nil, accumulates simulated/cache-hit counts.
	Stats *SweepStats
	// OnProgress, when non-nil, receives coalesced (latest-wins) progress
	// snapshots while the sweep runs, ending with the final state — live
	// per-point aggregates before the sweep settles.
	OnProgress func(Progress)
}

// RunPoints is the one-call sweep driver shared by the facade and the
// experiment sweeps: build a session, attach it to an optional server,
// drive it (loopback unless RemoteOnly), record stats, and aggregate.
func RunPoints(ctx context.Context, points []Point, cfg DriveConfig) ([]mac.Result, error) {
	sess, err := NewSession(points, cfg.Cache, cfg.Precision)
	if err != nil {
		return nil, err
	}
	sess.EnableAudit(cfg.Audit)
	if cfg.Server != nil {
		cfg.Server.Attach(sess)
	}
	if cfg.OnProgress != nil {
		// The subscription drains on its own: the channel closes after
		// the final snapshot when the session settles or ctx is
		// cancelled — the same two ways the drive below returns.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for p := range sess.Subscribe(ctx) {
				cfg.OnProgress(p)
			}
		}()
		defer func() { <-done }()
	}
	if cfg.RemoteOnly {
		err = sess.Wait(ctx)
	} else {
		err = RunLocal(ctx, sess, cfg.Workers)
	}
	if cfg.Stats != nil {
		cfg.Stats.Observe(sess)
	}
	if err != nil {
		return nil, err
	}
	return sess.Results()
}

// RunLocal drives a session to completion with in-process loopback
// workers: workers goroutines (one per core when below 1) pull tasks from
// the session, run them through JobSpec.RunRep, and complete them — the
// exact loop cmd/charisma-worker runs over HTTP, minus the wire. Loopback
// tasks are held under non-expiring leases: an in-process worker cannot
// crash without the whole coordinator, where context cancellation already
// unwinds the session. It returns when the session finishes or the
// context is cancelled; remote workers attached to the same session via a
// Server share the queue transparently.
func RunLocal(ctx context.Context, s *Session, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t, ok := s.NextWait(ctx)
				if !ok {
					return
				}
				res, err := t.Spec.RunRep(t.Rep)
				tr := TaskResult{Point: t.Point, Rep: t.Rep, Lease: t.Lease, Result: res}
				if err != nil {
					tr.Err = err.Error()
				}
				// Completing our own task cannot fail validation.
				_ = s.Complete(tr)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
