package grid

// Scenario files make sweeps data. A file is JSONL: one JSON document per
// line, each shaped like a JobSpec plus an optional Replications count.
// Blank lines and lines starting with '#' are skipped. Field names match
// Go's case-insensitive JSON rules, so files may use lowerCamel keys.
//
// Anywhere a scalar is expected, a document may instead carry an *axis*:
//
//	{"sweep": [5, 30, 60]}
//	{"range": {"from": 20, "to": 140, "step": 20}}
//
// Loading expands each line into the cross product of its axes — axes are
// ordered by their JSON path (lexicographic), the last axis varying
// fastest — so a whole figure panel is one line. Every expanded document
// is strict-decoded (unknown fields rejected), shape-checked, and
// semantically validated as it will run (payload defaults applied first),
// producing []Point ready for RunPoints: scenario files ride the
// content-addressed cache and the distributed grid unchanged.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"charisma/internal/core"
	"charisma/internal/multicell"
)

// Expansion guardrails: a scenario file is user (and fuzzer) input, so
// the cross product is bounded before any spec is built.
const (
	// MaxAxesPerLine bounds one document's grid dimensionality.
	MaxAxesPerLine = 16
	// MaxSpecsPerLine bounds one document's cross-product size.
	MaxSpecsPerLine = 4096
	// MaxSpecsPerFile bounds a whole file's expansion.
	MaxSpecsPerFile = 65536
	// maxScenarioLine bounds one JSONL line's byte length.
	maxScenarioLine = 1 << 20
)

// scenarioDoc is the per-line schema: a JobSpec plus the sweep-level
// replication count.
type scenarioDoc struct {
	Kind         string            `json:",omitempty"`
	Scenario     *core.Scenario    `json:",omitempty"`
	Multicell    *multicell.Params `json:",omitempty"`
	Replications int               `json:",omitempty"`
}

// LoadScenarioPath loads and expands the scenario file at path.
func LoadScenarioPath(path string) ([]Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("grid: scenario file: %w", err)
	}
	defer f.Close()
	return LoadScenarioFile(f)
}

// LoadScenarioFile parses a JSONL scenario stream and expands every line
// into its cross product of sweep points.
func LoadScenarioFile(r io.Reader) ([]Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxScenarioLine)
	var pts []Point
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		ex, err := ExpandScenarioLine(line)
		if err != nil {
			return nil, fmt.Errorf("grid: scenario file line %d: %w", lineNo, err)
		}
		if len(pts)+len(ex) > MaxSpecsPerFile {
			return nil, fmt.Errorf("grid: scenario file line %d: expansion exceeds %d specs", lineNo, MaxSpecsPerFile)
		}
		pts = append(pts, ex...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("grid: scenario file: %w", err)
	}
	if len(pts) == 0 {
		return nil, errors.New("grid: scenario file: no scenarios")
	}
	return pts, nil
}

// ExpandScenarioLine expands one scenario document into the cross product
// of its axes. A document without axes yields exactly one point.
func ExpandScenarioLine(line []byte) ([]Point, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber() // numeric literals survive substitution verbatim
	var doc any
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, errors.New("trailing data after document")
	}
	root, ok := doc.(map[string]any)
	if !ok {
		return nil, errors.New("document is not a JSON object")
	}

	axes, err := collectAxes(root)
	if err != nil {
		return nil, err
	}
	total := 1
	for _, ax := range axes {
		if total > MaxSpecsPerLine/len(ax.values) {
			return nil, fmt.Errorf("cross product exceeds %d specs", MaxSpecsPerLine)
		}
		total *= len(ax.values)
	}

	pts := make([]Point, 0, total)
	idx := make([]int, len(axes))
	for {
		for i, ax := range axes {
			ax.set(ax.values[idx[i]])
		}
		pt, err := decodeDoc(root)
		if err != nil {
			if len(axes) > 0 {
				return nil, fmt.Errorf("%s: %w", assignment(axes, idx), err)
			}
			return nil, err
		}
		pts = append(pts, pt)
		// Odometer: last axis fastest.
		k := len(axes) - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < len(axes[k].values) {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			break
		}
	}
	return pts, nil
}

// assignment renders one axis combination for error messages.
func assignment(axes []axis, idx []int) string {
	var b strings.Builder
	for i, ax := range axes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%v", ax.path, ax.values[idx[i]])
	}
	return b.String()
}

// axis is one expansion dimension: the values it takes and a setter that
// substitutes a value into the parsed document.
type axis struct {
	path   string
	values []any
	set    func(v any)
}

// collectAxes walks the document and returns its axes sorted by path, so
// expansion order is independent of map iteration order.
func collectAxes(root map[string]any) ([]axis, error) {
	var axes []axis
	var walk func(path string, node any, set func(any)) error
	walk = func(path string, node any, set func(any)) error {
		switch n := node.(type) {
		case map[string]any:
			vals, isAxis, err := axisValues(path, n)
			if err != nil {
				return err
			}
			if isAxis {
				if set == nil {
					return fmt.Errorf("axis %s: document root cannot be an axis", path)
				}
				axes = append(axes, axis{path: path, values: vals, set: set})
				return nil
			}
			for k, v := range n {
				k := k
				sub := k
				if path != "" {
					sub = path + "." + k
				}
				if err := walk(sub, v, func(x any) { n[k] = x }); err != nil {
					return err
				}
			}
		case []any:
			for i, v := range n {
				i := i
				if err := walk(fmt.Sprintf("%s[%d]", path, i), v, func(x any) { n[i] = x }); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk("", root, nil); err != nil {
		return nil, err
	}
	if len(axes) > MaxAxesPerLine {
		return nil, fmt.Errorf("%d axes exceed the %d-axis limit", len(axes), MaxAxesPerLine)
	}
	sort.Slice(axes, func(i, j int) bool { return axes[i].path < axes[j].path })
	return axes, nil
}

// axisValues recognizes an axis object: a single-key map whose key is
// "sweep" (explicit value list) or "range" (arithmetic progression).
func axisValues(path string, m map[string]any) ([]any, bool, error) {
	if len(m) != 1 {
		return nil, false, nil
	}
	var key string
	var val any
	for k, v := range m {
		key, val = k, v
	}
	switch strings.ToLower(key) {
	case "sweep":
		arr, ok := val.([]any)
		if !ok || len(arr) == 0 {
			return nil, false, fmt.Errorf("axis %s: sweep wants a non-empty array", path)
		}
		return arr, true, nil
	case "range":
		spec, ok := val.(map[string]any)
		if !ok {
			return nil, false, fmt.Errorf("axis %s: range wants an object with from/to/step", path)
		}
		vals, err := rangeValues(spec)
		if err != nil {
			return nil, false, fmt.Errorf("axis %s: %w", path, err)
		}
		return vals, true, nil
	}
	return nil, false, nil
}

// rangeValues expands {"from": a, "to": b, "step": s} into the inclusive
// progression a, a+s, ..., ≤ b.
func rangeValues(spec map[string]any) ([]any, error) {
	var from, to, step float64
	var haveFrom, haveTo, haveStep bool
	for k, v := range spec {
		num, ok := v.(json.Number)
		if !ok {
			return nil, fmt.Errorf("range field %s: want a number", k)
		}
		x, err := num.Float64()
		if err != nil {
			return nil, fmt.Errorf("range field %s: %w", k, err)
		}
		switch strings.ToLower(k) {
		case "from":
			from, haveFrom = x, true
		case "to":
			to, haveTo = x, true
		case "step":
			step, haveStep = x, true
		default:
			return nil, fmt.Errorf("unknown range field %q", k)
		}
	}
	if !haveFrom || !haveTo || !haveStep {
		return nil, errors.New("range wants from, to and step")
	}
	if step <= 0 || math.IsNaN(step) || math.IsInf(step, 0) ||
		math.IsNaN(from) || math.IsInf(from, 0) || math.IsNaN(to) || math.IsInf(to, 0) {
		return nil, fmt.Errorf("bad range [%v, %v] step %v", from, to, step)
	}
	if to < from {
		return nil, fmt.Errorf("empty range [%v, %v]", from, to)
	}
	q := (to - from) / step
	if q > MaxSpecsPerLine { // before int conversion: q may exceed int64
		return nil, fmt.Errorf("range yields over %d values (limit %d)", MaxSpecsPerLine, MaxSpecsPerLine)
	}
	// A small tolerance keeps binary-float endpoints (0.3 after three
	// 0.1 steps) in the progression without admitting a real overshoot.
	n := int(math.Floor(q + 1e-9))
	vals := make([]any, 0, n+1)
	for i := 0; i <= n; i++ {
		v := from + float64(i)*step
		// Render as a JSON literal so integral values stay integral.
		vals = append(vals, json.Number(strconv.FormatFloat(v, 'g', -1, 64)))
	}
	return vals, nil
}

// decodeDoc strict-decodes one fully-substituted document into a sweep
// point, inferring Kind from the payload when absent, and validates the
// spec both structurally and as it will run (defaults applied first —
// exactly RunRep's execution path).
func decodeDoc(root map[string]any) (Point, error) {
	b, err := json.Marshal(root)
	if err != nil {
		return Point{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var d scenarioDoc
	if err := dec.Decode(&d); err != nil {
		return Point{}, err
	}
	if d.Replications < 0 {
		return Point{}, fmt.Errorf("negative Replications %d", d.Replications)
	}
	spec := JobSpec{Kind: d.Kind, Scenario: d.Scenario, Multicell: d.Multicell}
	if spec.Kind == "" {
		switch {
		case d.Scenario != nil && d.Multicell == nil:
			spec.Kind = KindScenario
		case d.Multicell != nil && d.Scenario == nil:
			spec.Kind = KindMulticell
		default:
			return Point{}, errors.New("cannot infer Kind: document needs exactly one of Scenario or Multicell")
		}
	}
	if err := spec.Validate(); err != nil {
		return Point{}, err
	}
	switch spec.Kind {
	case KindScenario:
		if err := spec.Scenario.WithDefaults().Validate(); err != nil {
			return Point{}, err
		}
	case KindMulticell:
		if err := spec.Multicell.WithDefaults().Validate(); err != nil {
			return Point{}, err
		}
	}
	reps := d.Replications
	if reps < 1 {
		reps = 1
	}
	return Point{Spec: spec, Replications: reps}, nil
}

// WriteScenarioFile renders points as a JSONL scenario file, one document
// per point, loadable by LoadScenarioFile. Documents carry the canonical
// field order, and a write→load round trip preserves every spec's content
// hash (the payload values travel verbatim).
func WriteScenarioFile(w io.Writer, pts []Point) error {
	bw := bufio.NewWriter(w)
	for i, p := range pts {
		if err := p.Spec.Validate(); err != nil {
			return fmt.Errorf("grid: scenario file point %d: %w", i, err)
		}
		d := scenarioDoc{Kind: p.Spec.Kind, Scenario: p.Spec.Scenario, Multicell: p.Spec.Multicell}
		if p.Replications > 1 {
			d.Replications = p.Replications
		}
		b, err := json.Marshal(d)
		if err != nil {
			return fmt.Errorf("grid: scenario file point %d: %w", i, err)
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
