package grid

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"charisma/internal/core"
	"charisma/internal/mac"
)

// realResult produces a result with the full float surface exercised, so
// the disk round trip proves exact float preservation.
func realResult(t *testing.T) mac.Result {
	t.Helper()
	r, err := ScenarioSpec(tinyScenario(core.ProtoCharisma, 10, 3)).RunRep(0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDiskCacheRoundTripExact(t *testing.T) {
	c := DiskCache{Dir: t.TempDir()}
	r := realResult(t)
	key := RepKey("deadbeef", 42)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, r)
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("disk round trip not exact:\n%+v\n%+v", r, got)
	}
}

func TestDiskCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c := DiskCache{Dir: dir}
	key := RepKey("deadbeef", 1)
	c.Put(key, mac.Result{Protocol: "x"})
	p := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(p, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served as hit")
	}
}

func TestDiskCacheRejectsUnsafeKeys(t *testing.T) {
	c := DiskCache{Dir: t.TempDir()}
	for _, key := range []string{"", "ab", "../../etc/passwd", "a/b"} {
		c.Put(key, mac.Result{})
		if _, ok := c.Get(key); ok {
			t.Fatalf("unsafe key %q round-tripped", key)
		}
	}
}

func TestTieredPromotesDiskHits(t *testing.T) {
	disk := DiskCache{Dir: t.TempDir()}
	key := RepKey("cafe00", 3)
	want := mac.Result{Protocol: "y", Frames: 12.5}
	disk.Put(key, want)
	mem := NewMemCache()
	c := Tiered(mem, disk)
	got, ok := c.Get(key)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("tiered miss through to disk: %v %+v", ok, got)
	}
	if _, ok := mem.Get(key); !ok {
		t.Fatal("disk hit not promoted to memory")
	}
}

func TestNewCacheSelectsStack(t *testing.T) {
	if _, ok := NewCache("").(*MemCache); !ok {
		t.Fatal("empty dir should build a memory-only cache")
	}
	if _, ok := NewCache(t.TempDir()).(*tiered); !ok {
		t.Fatal("dir should build a tiered cache")
	}
}
