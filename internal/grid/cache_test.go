package grid

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reflect"

	"charisma/internal/core"
	"charisma/internal/mac"
)

// realResult produces a result with the full float surface exercised, so
// the disk round trip proves exact float preservation.
func realResult(t *testing.T) mac.Result {
	t.Helper()
	r, err := ScenarioSpec(tinyScenario(core.ProtoCharisma, 10, 3)).RunRep(0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDiskCacheRoundTripExact(t *testing.T) {
	c := DiskCache{Dir: t.TempDir()}
	r := realResult(t)
	key := RepKey("deadbeef", 42)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, r)
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("disk round trip not exact:\n%+v\n%+v", r, got)
	}
}

func TestDiskCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c := DiskCache{Dir: dir}
	key := RepKey("deadbeef", 1)
	c.Put(key, mac.Result{Protocol: "x"})
	p := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(p, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served as hit")
	}
}

func TestDiskCacheRejectsUnsafeKeys(t *testing.T) {
	c := DiskCache{Dir: t.TempDir()}
	for _, key := range []string{"", "ab", "../../etc/passwd", "a/b"} {
		c.Put(key, mac.Result{})
		if _, ok := c.Get(key); ok {
			t.Fatalf("unsafe key %q round-tripped", key)
		}
	}
}

func TestTieredPromotesDiskHits(t *testing.T) {
	disk := DiskCache{Dir: t.TempDir()}
	key := RepKey("cafe00", 3)
	want := mac.Result{Protocol: "y", Frames: 12.5}
	disk.Put(key, want)
	mem := NewMemCache()
	c := Tiered(mem, disk)
	got, ok := c.Get(key)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("tiered miss through to disk: %v %+v", ok, got)
	}
	if _, ok := mem.Get(key); !ok {
		t.Fatal("disk hit not promoted to memory")
	}
}

func TestNewCacheSelectsStack(t *testing.T) {
	if _, ok := NewCache("").(*MemCache); !ok {
		t.Fatal("empty dir should build a memory-only cache")
	}
	if _, ok := NewCache(t.TempDir()).(*tiered); !ok {
		t.Fatal("dir should build a tiered cache")
	}
}

// TestDiskCacheQuarantinesCorruptEntry: an entry that fails its
// integrity check is renamed to <key>.corrupt (kept for post-mortem),
// counted, and never re-read as a miss — a fresh Put of the key lands
// in a clean file.
func TestDiskCacheQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c := NewDiskCache(dir, nil)
	key := RepKey("deadbeef", 1)
	c.Put(key, realResult(t))
	p, _ := c.EntryPath(key)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served as hit")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not moved out of the read path")
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(p), key+".corrupt")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if n := c.Stats().DiskCorrupt; n != 1 {
		t.Fatalf("DiskCorrupt = %d, want 1", n)
	}
	// A second Get is a plain miss — the quarantined file is not
	// re-detected (and re-counted) forever.
	if _, ok := c.Get(key); ok {
		t.Fatal("hit after quarantine")
	}
	if n := c.Stats().DiskCorrupt; n != 1 {
		t.Fatalf("DiskCorrupt re-counted: %d", n)
	}
	// The key is writable again.
	want := realResult(t)
	c.Put(key, want)
	got, ok := c.Get(key)
	if !ok || !reflect.DeepEqual(want, got) {
		t.Fatal("fresh put after quarantine did not round-trip")
	}
}

// TestDiskCacheChecksumCatchesSilentCorruption: a flipped digit inside
// the result JSON still parses — only the CRC envelope can tell. The
// entry must be detected and quarantined, never served.
func TestDiskCacheChecksumCatchesSilentCorruption(t *testing.T) {
	dir := t.TempDir()
	c := NewDiskCache(dir, nil)
	key := RepKey("cafebabe", 2)
	c.Put(key, realResult(t))
	p, _ := c.EntryPath(key)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var e diskEntry
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatal(err)
	}
	// Perturb one digit of the payload, keeping the entry valid JSON with
	// the original (now wrong) checksum.
	digits := "0123456789"
	i := bytes.IndexAny(e.Result, digits)
	if i < 0 {
		t.Fatal("no digit to perturb")
	}
	e.Result[i] = digits[(strings.IndexByte(digits, e.Result[i])+1)%10]
	b2, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, b2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("silently corrupted entry served as hit")
	}
	if n := c.Stats().DiskCorrupt; n != 1 {
		t.Fatalf("DiskCorrupt = %d, want 1", n)
	}
}

// TestDiskCacheLegacyEntryQuarantined: a v1 entry (bare result JSON, no
// checksum envelope) is unverifiable — quarantined, not trusted.
func TestDiskCacheLegacyEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := NewDiskCache(dir, nil)
	key := RepKey("0ddba11", 3)
	p, _ := c.EntryPath(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(mac.Result{Protocol: "v1"})
	if err := os.WriteFile(p, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("unverifiable legacy entry served as hit")
	}
	if n := c.Stats().DiskCorrupt; n != 1 {
		t.Fatalf("DiskCorrupt = %d, want 1", n)
	}
}

// TestDiskCacheDegradesWhenUnwritable: when the cache directory stops
// accepting writes, the disk tier counts the failures, logs exactly
// once, and stops trying — it degrades instead of spamming errors on
// every Put. (The unwritable dir is simulated by rooting the cache
// under a regular file — ENOTDIR — which fails for root too, unlike
// chmod.)
func TestDiskCacheDegradesWhenUnwritable(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	log := slog.New(slog.NewTextHandler(&buf, nil))
	c := NewDiskCache(filepath.Join(blocker, "cache"), log)
	for i := 0; i < diskDisableAfter+3; i++ {
		c.Put(RepKey("deadbeef", int64(i)), mac.Result{Protocol: "x"})
	}
	st := c.Stats()
	if st.DiskPutErrors != diskDisableAfter {
		t.Fatalf("DiskPutErrors = %d, want %d (writes after degradation must not be attempted)",
			st.DiskPutErrors, diskDisableAfter)
	}
	if n := strings.Count(buf.String(), "degraded"); n != 1 {
		t.Fatalf("degradation logged %d times, want exactly once\n%s", n, buf.String())
	}
	// Reads still answer (as misses) — the tier above carries the session.
	if _, ok := c.Get(RepKey("deadbeef", 0)); ok {
		t.Fatal("impossible hit from an unwritable cache")
	}
}

// TestCacheDelete: eviction reaches both tiers, so a purged key cannot
// resurface from disk on the next miss.
func TestCacheDelete(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(dir)
	key := RepKey("deadbeef", 9)
	want := mac.Result{Protocol: "z"}
	c.Put(key, want)
	if _, ok := c.Get(key); !ok {
		t.Fatal("miss before delete")
	}
	c.Delete(key)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit after delete")
	}
	if _, ok := NewDiskCache(dir, nil).Get(key); ok {
		t.Fatal("delete did not reach the disk tier")
	}
}
