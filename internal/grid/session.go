package grid

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"charisma/internal/mac"
	"charisma/internal/run"
	"charisma/internal/stats"
)

// Precision configures the adaptive replication controller. The zero value
// disables adaptation: every point runs exactly its requested replications.
type Precision struct {
	// TargetRel is the target relative precision ε: a sweep point stops
	// growing once, for every headline metric with a nonzero mean (voice
	// loss, data throughput, mean data delay), the across-replication
	// Student-t CI95 half-width is ≤ ε·|mean|. Zero or negative disables
	// adaptation.
	TargetRel float64
	// MaxReps is the hard cap on a point's replication count; values
	// below 1 mean DefaultMaxReps.
	MaxReps int
}

// DefaultMaxReps caps adaptive growth when Precision.MaxReps is unset.
const DefaultMaxReps = 64

// Enabled reports whether adaptation is active.
func (p Precision) Enabled() bool { return p.TargetRel > 0 }

func (p Precision) repCap() int {
	if p.MaxReps > 0 {
		return p.MaxReps
	}
	return DefaultMaxReps
}

// Point is one sweep point: a spec plus its initial replication count
// (grown further when the session's Precision asks for it).
type Point struct {
	Spec JobSpec
	// Replications is the initial independent-run count; below 1 means 1.
	Replications int
}

// Task is one schedulable unit of work: replication Rep of the point's
// spec. The spec rides along so a worker needs no side channel.
type Task struct {
	Point int
	Rep   int
	Spec  JobSpec
}

// TaskResult reports one executed task. Err is a string so the type
// crosses the wire; an empty Err means Result is valid.
type TaskResult struct {
	Point  int
	Rep    int
	Err    string `json:",omitempty"`
	Result mac.Result
}

// ref addresses one (point, rep) slot awaiting a shared task's result.
type ref struct{ point, rep int }

type pointState struct {
	scheduled int // replications targeted so far (cached + queued + running)
	completed int // replications resolved (success or failure)
	failed    int
	settled   bool // no further growth; completed == scheduled
	results   []mac.Result
	ok        []bool
	errs      []error
}

// Session is one sweep's coordinator state. It is safe for concurrent use
// by any mix of transports: loopback workers, the HTTP server, and cache
// resolution all pull from and complete into the same queue, so every
// execution path runs the same scheduling code.
//
// Replications are merged in rep-index order per point, and adaptive
// growth decisions depend only on completed results — never on timing or
// on which transport ran a task — so a session's Results are
// byte-identical across transports and across warm-cache re-runs.
type Session struct {
	points []Point
	hashes []string
	cache  Cache
	prec   Precision

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []Task
	inflight map[string][]ref
	states   []*pointState
	executed int
	hits     int
	closed   bool
}

// NewSession validates and hashes every point, resolves the initial
// replications against the cache, and queues the misses. Identical
// (spec, rep-seed) pairs — within a point or across points — are
// deduplicated: one simulation feeds every slot that wants it.
func NewSession(points []Point, cache Cache, prec Precision) (*Session, error) {
	if cache == nil {
		cache = NewMemCache()
	}
	s := &Session{
		points:   points,
		hashes:   make([]string, len(points)),
		cache:    cache,
		prec:     prec,
		inflight: make(map[string][]ref),
		states:   make([]*pointState, len(points)),
	}
	s.cond = sync.NewCond(&s.mu)
	for j, pt := range points {
		if err := pt.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("grid: point %d: %w", j, err)
		}
		h, err := pt.Spec.Hash()
		if err != nil {
			return nil, fmt.Errorf("grid: point %d: %w", j, err)
		}
		s.hashes[j] = h
		s.states[j] = &pointState{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var work []int
	for j, pt := range points {
		n := pt.Replications
		if n < 1 {
			n = 1
		}
		if s.prec.Enabled() && n > s.prec.repCap() {
			n = s.prec.repCap()
		}
		s.growPoint(j, n, &work)
	}
	s.settleLoop(work)
	s.checkDone()
	return s, nil
}

// repKey derives the content address of (point j, rep). It reads only
// immutable session state, so no lock is needed.
func (s *Session) repKey(j, rep int) string {
	return RepKey(s.hashes[j], run.RepSeed(s.points[j].Spec.BaseSeed(), rep))
}

// growPoint raises point j's target to target reps, resolving each new rep
// against the cache and queueing misses. Caller holds s.mu.
func (s *Session) growPoint(j, target int, work *[]int) {
	st := s.states[j]
	for rep := st.scheduled; rep < target; rep++ {
		st.results = append(st.results, mac.Result{})
		st.ok = append(st.ok, false)
		s.scheduleRep(j, rep)
	}
	st.scheduled = target
	if st.completed == st.scheduled {
		*work = append(*work, j)
	}
}

// scheduleRep resolves one (point, rep) slot: cache hit, join an in-flight
// identical task, or enqueue a fresh one. Caller holds s.mu.
func (s *Session) scheduleRep(j, rep int) {
	key := s.repKey(j, rep)
	if res, ok := s.cache.Get(key); ok {
		st := s.states[j]
		st.results[rep] = res
		st.ok[rep] = true
		st.completed++
		s.hits++
		return
	}
	if refs, ok := s.inflight[key]; ok {
		s.inflight[key] = append(refs, ref{j, rep})
		return
	}
	s.inflight[key] = []ref{{j, rep}}
	s.queue = append(s.queue, Task{Point: j, Rep: rep, Spec: s.points[j].Spec})
	s.cond.Broadcast()
}

// settleLoop drains completed points: each either settles or grows, and a
// growth that is fully served by the cache re-enters the loop. Caller
// holds s.mu.
func (s *Session) settleLoop(work []int) {
	for len(work) > 0 {
		j := work[0]
		work = work[1:]
		st := s.states[j]
		if st.settled || st.completed != st.scheduled {
			continue
		}
		if target := s.nextTarget(j); target > st.scheduled {
			s.growPoint(j, target, &work)
		} else {
			st.settled = true
		}
	}
}

// nextTarget is the adaptive controller's decision for a completed point:
// the new replication target, or the current one to settle. It is a pure
// function of the point's completed results, so growth is deterministic
// across transports. Caller holds s.mu.
func (s *Session) nextTarget(j int) int {
	st := s.states[j]
	if !s.prec.Enabled() {
		return st.scheduled
	}
	repCap := s.prec.repCap()
	if st.scheduled >= repCap {
		return st.scheduled
	}
	if st.failed > 0 {
		// A failing spec won't converge by replication; stop spending.
		return st.scheduled
	}
	if st.completed >= 2 && s.converged(st) {
		return st.scheduled
	}
	// Grow by half, at least one, capped — a geometric schedule keeps the
	// number of synchronization rounds logarithmic in the final N.
	next := st.scheduled + st.scheduled/2
	if next <= st.scheduled {
		next = st.scheduled + 1
	}
	if next > repCap {
		next = repCap
	}
	return next
}

// converged reports whether every applicable headline metric meets the
// target relative precision across the point's successful replications.
// Metrics with a zero mean (e.g. data delay in a voice-only cell) carry no
// relative-precision requirement.
func (s *Session) converged(st *pointState) bool {
	metrics := [...]func(mac.Result) float64{
		func(r mac.Result) float64 { return r.VoiceLossRate },
		func(r mac.Result) float64 { return r.DataThroughputPerFrame },
		func(r mac.Result) float64 { return r.MeanDataDelaySec },
	}
	for _, metric := range metrics {
		var mv stats.MeanVar
		for i, ok := range st.ok {
			if ok {
				mv.Add(metric(st.results[i]))
			}
		}
		mean := math.Abs(mv.Mean())
		if mean == 0 {
			continue
		}
		if mv.TCI95() > s.prec.TargetRel*mean {
			return false
		}
	}
	return true
}

// checkDone closes the session when every point has settled. Caller holds
// s.mu.
func (s *Session) checkDone() {
	for _, st := range s.states {
		if !st.settled {
			return
		}
	}
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
}

// TryNext pops a queued task without blocking. ok reports a task was
// returned; done reports the session has finished (no task will ever come
// again). Neither ok nor done means the queue is momentarily empty — more
// tasks may appear when adaptive growth triggers.
func (s *Session) TryNext() (t Task, ok, done bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) > 0 {
		t = s.queue[0]
		s.queue = s.queue[1:]
		return t, true, false
	}
	return Task{}, false, s.closed
}

// NextWait blocks until a task is available, the session finishes, or the
// context is cancelled; ok is false in the latter two cases.
func (s *Session) NextWait(ctx context.Context) (Task, bool) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed || ctx.Err() != nil {
			return Task{}, false
		}
		if len(s.queue) > 0 {
			t := s.queue[0]
			s.queue = s.queue[1:]
			return t, true
		}
		s.cond.Wait()
	}
}

// Complete records one executed task's outcome, caches successes, fans the
// result out to every deduplicated (point, rep) slot, and runs the
// adaptive controller on points it completed. Duplicate or stray
// deliveries are ignored.
func (s *Session) Complete(r TaskResult) error {
	if r.Point < 0 || r.Point >= len(s.points) {
		return fmt.Errorf("grid: result for unknown point %d", r.Point)
	}
	if r.Rep < 0 {
		return fmt.Errorf("grid: result for negative rep %d", r.Rep)
	}
	key := s.repKey(r.Point, r.Rep)
	s.mu.Lock()
	defer s.mu.Unlock()
	refs := s.inflight[key]
	delete(s.inflight, key)
	if len(refs) == 0 {
		// Duplicate or stray delivery: drop it *before* touching the
		// cache, so an unscheduled (point, rep) can never plant a result
		// under a key a future sweep would legitimately look up.
		return nil
	}
	var taskErr error
	if r.Err != "" {
		taskErr = errors.New(r.Err)
	} else {
		s.cache.Put(key, r.Result)
	}
	s.executed++
	var work []int
	for _, rf := range refs {
		st := s.states[rf.point]
		if st.ok[rf.rep] {
			continue
		}
		if taskErr != nil {
			st.errs = append(st.errs, fmt.Errorf("grid: point %d rep %d: %w", rf.point, rf.rep, taskErr))
			st.failed++
		} else {
			st.results[rf.rep] = r.Result
			st.ok[rf.rep] = true
		}
		st.completed++
		if st.completed == st.scheduled {
			work = append(work, rf.point)
		}
	}
	s.settleLoop(work)
	s.checkDone()
	s.cond.Broadcast()
	return nil
}

// Wait blocks until the session finishes or the context is cancelled.
func (s *Session) Wait(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.cond.Wait()
	}
	return nil
}

// Done reports whether every point has settled.
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Executed returns the number of simulations actually run for this
// session (cache hits and deduplicated shares excluded).
func (s *Session) Executed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.executed
}

// CacheHits returns the number of replication slots served by the cache.
func (s *Session) CacheHits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Replications returns how many replications point j settled on — the
// initial count, or more when the adaptive controller grew it.
func (s *Session) Replications(j int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.states[j].scheduled
}

// Results aggregates each point's successful replications, in rep-index
// order, via mac.AggregateReplications. Like run.Runner, failures never
// discard a sweep: partial per-point aggregates are returned alongside the
// joined error (which also flags an unfinished session).
func (s *Session) Results() ([]mac.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]mac.Result, len(s.points))
	var errs []error
	for j, st := range s.states {
		good := make([]mac.Result, 0, st.completed-st.failed)
		for i, ok := range st.ok {
			if ok {
				good = append(good, st.results[i])
			}
		}
		out[j] = mac.AggregateReplications(good)
		errs = append(errs, st.errs...)
	}
	if !s.closed {
		errs = append(errs, errors.New("grid: session incomplete"))
	}
	return out, errors.Join(errs...)
}

// SweepStats accumulates grid activity across the sessions of one process
// (a multi-panel experiments run attaches one session per sweep).
type SweepStats struct {
	Simulated int
	CacheHits int
}

// Observe folds one finished session's counters into the stats.
func (st *SweepStats) Observe(s *Session) {
	st.Simulated += s.Executed()
	st.CacheHits += s.CacheHits()
}

// String renders the counters for operator output.
func (st *SweepStats) String() string {
	return fmt.Sprintf("grid: %d simulated, %d cache hits", st.Simulated, st.CacheHits)
}
