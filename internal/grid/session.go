package grid

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"charisma/internal/mac"
	"charisma/internal/obs"
	"charisma/internal/prof"
	"charisma/internal/rng"
	"charisma/internal/run"
	"charisma/internal/stats"
)

// Precision configures the adaptive replication controller. The zero value
// disables adaptation: every point runs exactly its requested replications.
type Precision struct {
	// TargetRel is the target relative precision ε: a sweep point stops
	// growing once, for every headline metric with a nonzero mean (voice
	// loss, data throughput, mean data delay), the across-replication
	// Student-t CI95 half-width is ≤ ε·|mean|. Zero or negative disables
	// adaptation.
	TargetRel float64
	// MaxReps is the hard cap on a point's replication count; values
	// below 1 mean DefaultMaxReps.
	MaxReps int
}

// DefaultMaxReps caps adaptive growth when Precision.MaxReps is unset.
const DefaultMaxReps = 64

// Enabled reports whether adaptation is active.
func (p Precision) Enabled() bool { return p.TargetRel > 0 }

func (p Precision) repCap() int {
	if p.MaxReps > 0 {
		return p.MaxReps
	}
	return DefaultMaxReps
}

// Point is one sweep point: a spec plus its initial replication count
// (grown further when the session's Precision asks for it).
type Point struct {
	Spec JobSpec
	// Replications is the initial independent-run count; below 1 means 1.
	Replications int
}

// Task is one schedulable unit of work: replication Rep of the point's
// spec. The spec rides along so a worker needs no side channel. Lease
// identifies the dispatch the task was handed out under (see the lease
// lifecycle on Session); a result must echo it so the coordinator can
// tell a current execution from a superseded one.
type Task struct {
	Point int
	Rep   int
	Lease int64
	Spec  JobSpec
}

// TaskResult reports one executed task. Err is a string so the type
// crosses the wire; an empty Err means Result is valid. Lease echoes the
// dispatch lease the task was claimed under; zero marks a direct
// completion that bypassed lease dispatch (legacy callers, tests), which
// is accepted only while the (point, rep) slot is still awaiting a
// result.
type TaskResult struct {
	Point  int
	Rep    int
	Lease  int64  `json:",omitempty"`
	Err    string `json:",omitempty"`
	Result mac.Result
}

// ref addresses one (point, rep) slot awaiting a shared task's result.
type ref struct{ point, rep int }

type pointState struct {
	scheduled int // replications targeted so far (cached + queued + running)
	completed int // replications resolved (success or failure)
	failed    int
	settled   bool // no further growth; completed == scheduled
	anomaly   bool // CI95 still past target at the replication cap (reported once)
	results   []mac.Result
	ok        []bool
	errs      []error
}

// lease tracks one outstanding task dispatch. A lease with a zero
// deadline never expires — the loopback pool uses that form, because an
// in-process worker can only die with the whole coordinator, where
// context cancellation already unwinds the session. An expirable lease
// (remote dispatch) must be renewed via Renew before its deadline or the
// task is re-queued and the lease superseded.
type lease struct {
	id        int64
	task      Task
	key       string
	worker    string
	deadline  time.Time
	claimedAt time.Time // lease creation; feeds the rep-duration histogram
}

// sessionSerial numbers sessions process-wide so progress consumers can
// tell consecutive sweeps of one process apart.
var sessionSerial atomic.Int64

// Session is one sweep's coordinator state. It is safe for concurrent use
// by any mix of transports: loopback workers, the HTTP server, and cache
// resolution all pull from and complete into the same queue, so every
// execution path runs the same scheduling code.
//
// Replications are merged in rep-index order per point, and adaptive
// growth decisions depend only on completed results — never on timing or
// on which transport ran a task — so a session's Results are
// byte-identical across transports and across warm-cache re-runs.
//
// Lease lifecycle: every dispatched task is wrapped in a lease. An
// expirable lease that misses its deadline is presumed crashed: the task
// re-enters the queue (with the late worker excluded from immediately
// re-claiming it) and the lease is superseded, so a result that later
// arrives under it is discarded before it can touch the cache or the
// point states. Exactly one delivery per (spec, rep-seed) key ever
// lands, which is why crash timing and duplicate deliveries can never
// change the bytes a sweep produces.
type Session struct {
	points []Point
	hashes []string
	cache  Cache
	prec   Precision
	serial int64

	mu sync.Mutex
	// cond wakes task waiters (NextWait, Wait): signalled when work is
	// queued, re-queued, or the session closes. progCond wakes progress
	// waiters and is signalled on every version bump — keeping the two
	// apart stops a mere claim (which only removes work) from waking
	// every blocked worker.
	cond     *sync.Cond
	progCond *sync.Cond
	queue    []Task
	inflight map[string][]ref
	states   []*pointState
	leases   map[int64]*lease
	leaseSeq int64
	avoid    map[string]string // repKey → worker excluded from immediate re-pickup
	expiry   *time.Timer
	version  int64
	executed int
	hits     int
	requeues int
	closed   bool

	// Byzantine-result defense (see Audit / audit.go). auditCond wakes the
	// audit executors when a remote result is parked for re-execution;
	// delivered tracks the provenance of unaudited remote results so a
	// quarantine can unwind them; quarantined workers get no tasks and
	// their posts die on lease validation.
	audit        Audit
	auditRng     *rng.Stream
	audits       []auditJob
	auditing     int
	auditCond    *sync.Cond
	quarantined  map[string]bool
	delivered    map[string]deliveredEntry
	auditsPassed int
	auditsFailed int
	quarantines  int

	// log receives structured scheduling events (lease expiry re-queues,
	// sweep-point anomalies) when set via SetLogger; nil stays silent.
	log *slog.Logger
	// repDur observes wall-clock seconds from lease claim to accepted
	// completion — the per-task replication-duration histogram /metrics
	// exports.
	repDur *obs.Histogram
}

// repDurBuckets are the fixed rep-duration buckets (seconds). Replications
// span ~10 ms loopback microsweeps to minutes-long million-station points.
var repDurBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// NewSession validates and hashes every point, resolves the initial
// replications against the cache, and queues the misses. Identical
// (spec, rep-seed) pairs — within a point or across points — are
// deduplicated: one simulation feeds every slot that wants it.
func NewSession(points []Point, cache Cache, prec Precision) (*Session, error) {
	if cache == nil {
		cache = NewMemCache()
	}
	s := &Session{
		points:   points,
		hashes:   make([]string, len(points)),
		cache:    cache,
		prec:     prec,
		serial:   sessionSerial.Add(1),
		inflight: make(map[string][]ref),
		states:   make([]*pointState, len(points)),
		leases:   make(map[int64]*lease),
		avoid:    make(map[string]string),

		quarantined: make(map[string]bool),
		delivered:   make(map[string]deliveredEntry),
	}
	s.cond = sync.NewCond(&s.mu)
	s.progCond = sync.NewCond(&s.mu)
	s.auditCond = sync.NewCond(&s.mu)
	s.repDur = obs.NewHistogram(repDurBuckets...)
	for j, pt := range points {
		if err := pt.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("grid: point %d: %w", j, err)
		}
		h, err := pt.Spec.Hash()
		if err != nil {
			return nil, fmt.Errorf("grid: point %d: %w", j, err)
		}
		s.hashes[j] = h
		s.states[j] = &pointState{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var work []int
	for j, pt := range points {
		n := pt.Replications
		if n < 1 {
			n = 1
		}
		if s.prec.Enabled() && n > s.prec.repCap() {
			n = s.prec.repCap()
		}
		s.growPoint(j, n, &work)
	}
	s.settleLoop(work)
	s.checkDone()
	s.bump()
	return s, nil
}

// repKey derives the content address of (point j, rep). It reads only
// immutable session state, so no lock is needed.
func (s *Session) repKey(j, rep int) string {
	return RepKey(s.hashes[j], run.RepSeed(s.points[j].Spec.BaseSeed(), rep))
}

// bump advances the progress version and wakes progress subscribers.
// Task waiters are woken separately, only by events that give them
// something to do (work queued or re-queued, session closed). Caller
// holds s.mu.
func (s *Session) bump() {
	s.version++
	s.progCond.Broadcast()
}

// growPoint raises point j's target to target reps, resolving each new rep
// against the cache and queueing misses. Caller holds s.mu.
func (s *Session) growPoint(j, target int, work *[]int) {
	st := s.states[j]
	for rep := st.scheduled; rep < target; rep++ {
		st.results = append(st.results, mac.Result{})
		st.ok = append(st.ok, false)
		s.scheduleRep(j, rep)
	}
	st.scheduled = target
	if st.completed == st.scheduled {
		*work = append(*work, j)
	}
}

// scheduleRep resolves one (point, rep) slot: cache hit, join an in-flight
// identical task, or enqueue a fresh one. Caller holds s.mu.
func (s *Session) scheduleRep(j, rep int) {
	key := s.repKey(j, rep)
	if res, ok := s.cache.Get(key); ok {
		st := s.states[j]
		st.results[rep] = res
		st.ok[rep] = true
		st.completed++
		s.hits++
		if e, tracked := s.delivered[key]; tracked {
			// The hit consumed an unaudited remote result; record this slot
			// so quarantining the producer unwinds it too.
			e.refs = append(e.refs, ref{j, rep})
			s.delivered[key] = e
		}
		return
	}
	if refs, ok := s.inflight[key]; ok {
		s.inflight[key] = append(refs, ref{j, rep})
		return
	}
	s.inflight[key] = []ref{{j, rep}}
	s.queue = append(s.queue, Task{Point: j, Rep: rep, Spec: s.points[j].Spec})
	s.cond.Broadcast()
}

// settleLoop drains completed points: each either settles or grows, and a
// growth that is fully served by the cache re-enters the loop. Caller
// holds s.mu.
func (s *Session) settleLoop(work []int) {
	for len(work) > 0 {
		j := work[0]
		work = work[1:]
		st := s.states[j]
		if st.settled || st.completed != st.scheduled {
			continue
		}
		if target := s.nextTarget(j); target > st.scheduled {
			s.growPoint(j, target, &work)
		} else {
			st.settled = true
		}
	}
}

// nextTarget is the adaptive controller's decision for a completed point:
// the new replication target, or the current one to settle. It is a pure
// function of the point's completed results, so growth is deterministic
// across transports. Caller holds s.mu.
func (s *Session) nextTarget(j int) int {
	st := s.states[j]
	if !s.prec.Enabled() {
		return st.scheduled
	}
	repCap := s.prec.repCap()
	if st.scheduled >= repCap {
		// A point pinned at the cap whose CI95 still misses the target is
		// the sweep anomaly the flight recorder wants a post-mortem for:
		// something in this parameter corner has pathological variance.
		// Report once per point; the growth decision itself stays a pure
		// function of the completed results.
		if !st.anomaly && st.failed == 0 && st.completed >= 2 && !s.converged(st) {
			st.anomaly = true
			if s.log != nil {
				s.log.Warn("sweep point hit replication cap without converging",
					"session", s.serial, "point", j, "reps", st.scheduled)
			}
			// Detached: DumpAll must not run under s.mu.
			go prof.DumpAll(fmt.Sprintf("sweep-anomaly: point %d at rep cap %d", j, repCap))
		}
		return st.scheduled
	}
	if st.failed > 0 {
		// A failing spec won't converge by replication; stop spending.
		return st.scheduled
	}
	if st.completed >= 2 && s.converged(st) {
		return st.scheduled
	}
	// Grow by half, at least one, capped — a geometric schedule keeps the
	// number of synchronization rounds logarithmic in the final N.
	next := st.scheduled + st.scheduled/2
	if next <= st.scheduled {
		next = st.scheduled + 1
	}
	if next > repCap {
		next = repCap
	}
	return next
}

// converged reports whether every applicable headline metric meets the
// target relative precision across the point's successful replications.
// Metrics with a zero mean (e.g. data delay in a voice-only cell) carry no
// relative-precision requirement.
func (s *Session) converged(st *pointState) bool {
	metrics := [...]func(mac.Result) float64{
		func(r mac.Result) float64 { return r.VoiceLossRate },
		func(r mac.Result) float64 { return r.DataThroughputPerFrame },
		func(r mac.Result) float64 { return r.MeanDataDelaySec },
	}
	for _, metric := range metrics {
		var mv stats.MeanVar
		for i, ok := range st.ok {
			if ok {
				mv.Add(metric(st.results[i]))
			}
		}
		mean := math.Abs(mv.Mean())
		if mean == 0 {
			continue
		}
		if mv.TCI95() > s.prec.TargetRel*mean {
			return false
		}
	}
	return true
}

// checkDone closes the session when every point has settled and no audit
// is parked or executing — a failed audit reopens slots, so the session
// must outlive every outstanding verdict. Caller holds s.mu.
func (s *Session) checkDone() {
	if len(s.audits) > 0 || s.auditing > 0 {
		return
	}
	for _, st := range s.states {
		if !st.settled {
			return
		}
	}
	if !s.closed {
		s.closed = true
		if s.expiry != nil {
			s.expiry.Stop()
		}
		s.cond.Broadcast()
		s.auditCond.Broadcast()
		s.bump()
	}
}

// claim pops the next claimable task and wraps it in a lease (expirable
// when ttl > 0). A worker whose previous lease on a task expired is
// skipped over that task while any other queued task exists — the
// zombie-worker guard: a worker that outlived its lease must not
// immediately re-claim the same task and time it out again — but falls
// back to it when it is the only work left, so a lone surviving worker
// still makes progress. Caller holds s.mu.
func (s *Session) claim(worker string, ttl time.Duration) (Task, bool) {
	if worker != "" && s.quarantined[worker] {
		// A quarantined worker is never handed work again; it sees an
		// always-empty queue and drains out via its idle limit.
		return Task{}, false
	}
	if len(s.queue) == 0 {
		return Task{}, false
	}
	pick := 0
	if worker != "" && len(s.avoid) > 0 {
		pick = -1
		fallback := -1
		for i := range s.queue {
			if s.avoid[s.repKey(s.queue[i].Point, s.queue[i].Rep)] == worker {
				if fallback < 0 {
					fallback = i
				}
				continue
			}
			pick = i
			break
		}
		if pick < 0 {
			pick = fallback
		}
	}
	t := s.queue[pick]
	s.queue = append(s.queue[:pick], s.queue[pick+1:]...)
	key := s.repKey(t.Point, t.Rep)
	delete(s.avoid, key)
	s.leaseSeq++
	l := &lease{id: s.leaseSeq, key: key, worker: worker, claimedAt: time.Now()}
	if ttl > 0 {
		l.deadline = l.claimedAt.Add(ttl)
	}
	t.Lease = l.id
	l.task = t
	s.leases[l.id] = l
	if ttl > 0 {
		s.armExpiry()
	}
	s.bump()
	return t, true
}

// armExpiry (re)schedules the expiry sweep for the earliest expirable
// deadline; a no-op when nothing can expire. Caller holds s.mu.
func (s *Session) armExpiry() {
	if s.closed {
		return
	}
	var next time.Time
	for _, l := range s.leases {
		if l.deadline.IsZero() {
			continue
		}
		if next.IsZero() || l.deadline.Before(next) {
			next = l.deadline
		}
	}
	if next.IsZero() {
		return
	}
	d := time.Until(next)
	if d < 0 {
		d = 0
	}
	if s.expiry == nil {
		s.expiry = time.AfterFunc(d, s.expireTick)
	} else {
		s.expiry.Reset(d)
	}
}

// expireTick is the expiry timer callback.
func (s *Session) expireTick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.expireOverdue(time.Now())
	s.armExpiry()
}

// expireOverdue re-queues every task whose lease deadline has passed: the
// lease is dropped (superseding it — a result that later arrives under it
// is discarded), the task goes back to the queue, and the worker that
// held it is recorded in avoid so it cannot immediately re-claim the same
// task. Caller holds s.mu.
func (s *Session) expireOverdue(now time.Time) {
	changed := false
	for id, l := range s.leases {
		if l.deadline.IsZero() || now.Before(l.deadline) {
			continue
		}
		delete(s.leases, id)
		if l.worker != "" {
			s.avoid[l.key] = l.worker
		}
		t := l.task
		t.Lease = 0
		s.queue = append(s.queue, t)
		s.requeues++
		changed = true
		if s.log != nil {
			s.log.Warn("lease expired, task re-queued",
				"session", s.serial, "worker", l.worker, "lease", id,
				"point", t.Point, "rep", t.Rep, "held", now.Sub(l.claimedAt))
		}
	}
	if changed {
		s.cond.Broadcast() // re-queued work: wake blocked claimers
		s.bump()
	}
}

// Renew extends an expirable lease's deadline to ttl from now — the
// worker heartbeat. It reports whether the lease is still current: false
// means the lease expired (its task was re-queued) or the session closed,
// and the worker should abandon the task, since its eventual result would
// be discarded anyway.
func (s *Session) Renew(id int64, ttl time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[id]
	if !ok || s.closed {
		return false
	}
	if !l.deadline.IsZero() && ttl > 0 {
		l.deadline = time.Now().Add(ttl)
		s.armExpiry()
	}
	return true
}

// TryNext pops a queued task without blocking, under a non-expiring
// lease. ok reports a task was returned; done reports the session has
// finished (no task will ever come again). Neither ok nor done means the
// queue is momentarily empty — more tasks may appear when adaptive growth
// triggers or an expired lease re-queues one.
func (s *Session) TryNext() (t Task, ok, done bool) {
	return s.TryClaim("", 0)
}

// TryClaim pops a queued task without blocking, leased to worker with
// deadline ttl from now (ttl ≤ 0 means the lease never expires). The
// worker name feeds the re-queue exclusion — a worker is skipped over a
// task it previously timed out on while other work exists.
func (s *Session) TryClaim(worker string, ttl time.Duration) (t Task, ok, done bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.claim(worker, ttl); ok {
		return t, true, false
	}
	return Task{}, false, s.closed
}

// NextWait blocks until a task is available, the session finishes, or the
// context is cancelled; ok is false in the latter two cases. The task is
// held under a non-expiring lease (in-process workers fail only with the
// whole coordinator).
func (s *Session) NextWait(ctx context.Context) (Task, bool) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed || ctx.Err() != nil {
			return Task{}, false
		}
		if t, ok := s.claim("", 0); ok {
			return t, true
		}
		s.cond.Wait()
	}
}

// Complete records one executed task's outcome, caches successes, fans the
// result out to every deduplicated (point, rep) slot, and runs the
// adaptive controller on points it completed. A result under a superseded
// lease — the task timed out and was re-queued — is discarded before it
// can touch the cache or the point states, as are duplicate and stray
// deliveries and anything posted by a quarantined worker, so crash timing
// never changes what a sweep observes.
//
// When auditing is enabled, a successful result delivered under a named
// worker's lease may be parked for re-execution instead of landing
// immediately: its key stays in flight until the audit executor either
// verifies it (byte-identical to a local re-run) or quarantines the
// worker (see audit.go).
func (s *Session) Complete(r TaskResult) error {
	if r.Point < 0 || r.Point >= len(s.points) {
		return fmt.Errorf("grid: result for unknown point %d", r.Point)
	}
	if r.Rep < 0 {
		return fmt.Errorf("grid: result for negative rep %d", r.Rep)
	}
	key := s.repKey(r.Point, r.Rep)
	s.mu.Lock()
	defer s.mu.Unlock()
	worker := ""
	if r.Lease != 0 {
		l, ok := s.leases[r.Lease]
		if !ok || l.key != key {
			// Superseded lease: the task was re-queued (and possibly
			// re-executed) after this worker was presumed dead — or the
			// worker was quarantined, which supersedes all its leases. The
			// late result is dropped without touching anything: exactly one
			// delivery per key may land.
			return nil
		}
		worker = l.worker
		delete(s.leases, r.Lease)
		delete(s.avoid, key)
		if !l.claimedAt.IsZero() {
			s.repDur.Observe(time.Since(l.claimedAt).Seconds())
		}
	}
	if _, present := s.inflight[key]; !present {
		// Duplicate or stray delivery: drop it *before* touching the
		// cache, so an unscheduled (point, rep) can never plant a result
		// under a key a future sweep would legitimately look up.
		return nil
	}
	if r.Lease == 0 {
		// Direct completion without a lease echo (legacy callers, tests):
		// retire the key's outstanding lease too — at most one exists per
		// key — or the expiry janitor would later re-queue and re-execute
		// the already-completed task.
		for id, l := range s.leases {
			if l.key == key {
				delete(s.leases, id)
				break
			}
		}
		delete(s.avoid, key)
	}
	var taskErr error
	if r.Err != "" {
		taskErr = errors.New(r.Err)
	}
	if taskErr == nil && worker != "" && s.auditPickLocked() {
		// Park for re-execution; the key stays in flight so duplicates
		// still dedup and growth still joins it.
		s.audits = append(s.audits, auditJob{key: key, point: r.Point, rep: r.Rep, worker: worker, claimed: r.Result})
		s.auditCond.Signal()
		return nil
	}
	s.deliverLocked(key, r.Result, taskErr, worker)
	return nil
}

// deliverLocked lands one resolved key: caches a success, records its
// provenance when it came from a (still-unaudited) remote worker, fans it
// out to every waiting (point, rep) slot, and runs the adaptive
// controller. Caller holds s.mu; the key must be in flight.
func (s *Session) deliverLocked(key string, result mac.Result, taskErr error, worker string) {
	refs := s.inflight[key]
	delete(s.inflight, key)
	if len(refs) == 0 {
		return
	}
	if taskErr == nil {
		s.cache.Put(key, result)
		if worker != "" && s.audit.Enabled() {
			s.delivered[key] = deliveredEntry{worker: worker, refs: refs}
		}
	}
	s.executed++
	var work []int
	for _, rf := range refs {
		st := s.states[rf.point]
		if st.ok[rf.rep] {
			continue
		}
		if taskErr != nil {
			st.errs = append(st.errs, fmt.Errorf("grid: point %d rep %d: %w", rf.point, rf.rep, taskErr))
			st.failed++
		} else {
			st.results[rf.rep] = result
			st.ok[rf.rep] = true
		}
		st.completed++
		if st.completed == st.scheduled {
			work = append(work, rf.point)
		}
	}
	s.settleLoop(work)
	s.checkDone()
	s.bump()
}

// Wait blocks until the session finishes or the context is cancelled.
func (s *Session) Wait(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.cond.Wait()
	}
	return nil
}

// Done reports whether every point has settled.
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Executed returns the number of simulations actually run for this
// session (cache hits and deduplicated shares excluded).
func (s *Session) Executed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.executed
}

// CacheHits returns the number of replication slots served by the cache.
func (s *Session) CacheHits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Requeues returns how many tasks were re-queued from expired leases or
// quarantine unwinding.
func (s *Session) Requeues() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requeues
}

// Quarantines returns how many workers the audit quarantined.
func (s *Session) Quarantines() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantines
}

// Audits returns how many audited results were verified byte-identical
// and how many diverged (each divergence quarantined a worker or
// re-confirmed one already barred).
func (s *Session) Audits() (passed, failed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.auditsPassed, s.auditsFailed
}

// Serial returns the process-wide session serial number.
func (s *Session) Serial() int64 { return s.serial }

// SetLogger directs the session's structured scheduling events (lease
// expiries, anomalies) to l; nil silences them.
func (s *Session) SetLogger(l *slog.Logger) {
	s.mu.Lock()
	s.log = l
	s.mu.Unlock()
}

// RepDurations returns the session's claim-to-completion duration
// histogram (seconds, fixed buckets). Safe for concurrent reads.
func (s *Session) RepDurations() *obs.Histogram { return s.repDur }

// CacheStats returns the hit/miss traffic of the session's cache stack,
// when the cache counts it (ok false otherwise).
func (s *Session) CacheStats() (CacheStats, bool) {
	if sr, ok := s.cache.(StatsReporter); ok {
		return sr.Stats(), true
	}
	return CacheStats{}, false
}

// Replications returns how many replications point j settled on — the
// initial count, or more when the adaptive controller grew it.
func (s *Session) Replications(j int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.states[j].scheduled
}

// Results aggregates each point's successful replications, in rep-index
// order, via mac.AggregateReplications. Like run.Runner, failures never
// discard a sweep: partial per-point aggregates are returned alongside the
// joined error (which also flags an unfinished session).
func (s *Session) Results() ([]mac.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]mac.Result, len(s.points))
	var errs []error
	for j, st := range s.states {
		good := make([]mac.Result, 0, st.completed-st.failed)
		for i, ok := range st.ok {
			if ok {
				good = append(good, st.results[i])
			}
		}
		out[j] = mac.AggregateReplications(good)
		errs = append(errs, st.errs...)
	}
	if !s.closed {
		errs = append(errs, errors.New("grid: session incomplete"))
	}
	return out, errors.Join(errs...)
}

// PointProgress is one sweep point's live status within a running
// session: how many replications have resolved and the partial aggregate
// over the successful ones, so a renderer can draw a panel point before
// the whole sweep settles.
type PointProgress struct {
	Point     int
	Scheduled int  // replication target so far (may still grow)
	Done      int  // replications resolved (success or failure)
	Failed    int  // resolved with an error
	Settled   bool // no further growth; Done == Scheduled
	// Aggregate pools the successful replications completed so far via
	// mac.AggregateReplications; its Reps field carries the live
	// across-replication CI95 half-widths.
	Aggregate mac.Result
}

// Progress is one snapshot of a session's state, Version-stamped so
// consumers can cheaply detect change. Snapshots are cumulative, not
// diffs: each carries every point.
type Progress struct {
	Session   int64 // process-wide session serial
	Version   int64 // strictly increases with every state change
	Points    []PointProgress
	Executed  int
	CacheHits int
	Requeues  int // tasks re-queued from expired leases or quarantines
	Leases    int // tasks currently out under a lease
	// Byzantine-audit state (zero unless DriveConfig.Audit is enabled).
	AuditsPassed int // remote results verified byte-identical by re-execution
	AuditsFailed int // remote results that diverged from re-execution
	Quarantined  int // workers barred after a divergent audit
	Done         bool
}

// progressLocked copies the snapshot's raw state: counters plus each
// point's successful results so far. The O(points × reps) aggregation
// happens in finishProgress, outside the session mutex, so building a
// snapshot never stalls claimers or completions beyond a copy. Caller
// holds s.mu.
func (s *Session) progressLocked() (Progress, [][]mac.Result) {
	p := Progress{
		Session:      s.serial,
		Version:      s.version,
		Points:       make([]PointProgress, len(s.states)),
		Executed:     s.executed,
		CacheHits:    s.hits,
		Requeues:     s.requeues,
		Leases:       len(s.leases),
		AuditsPassed: s.auditsPassed,
		AuditsFailed: s.auditsFailed,
		Quarantined:  s.quarantines,
		Done:         s.closed,
	}
	good := make([][]mac.Result, len(s.states))
	for j, st := range s.states {
		g := make([]mac.Result, 0, st.completed-st.failed)
		for i, ok := range st.ok {
			if ok {
				g = append(g, st.results[i])
			}
		}
		good[j] = g
		p.Points[j] = PointProgress{
			Point:     j,
			Scheduled: st.scheduled,
			Done:      st.completed,
			Failed:    st.failed,
			Settled:   st.settled,
		}
	}
	return p, good
}

// finishProgress fills in the per-point aggregates from the copied raw
// results. Runs without the session mutex.
func finishProgress(p *Progress, good [][]mac.Result) {
	for j := range p.Points {
		p.Points[j].Aggregate = mac.AggregateReplications(good[j])
	}
}

// Progress returns the current snapshot.
func (s *Session) Progress() Progress {
	s.mu.Lock()
	p, good := s.progressLocked()
	s.mu.Unlock()
	finishProgress(&p, good)
	return p
}

// WaitProgress blocks until the session's progress version exceeds after,
// then returns the current snapshot. more is false when no further
// snapshot will come: the session closed (the returned snapshot is final)
// or the context was cancelled.
func (s *Session) WaitProgress(ctx context.Context, after int64) (p Progress, more bool) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.progCond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	for s.version <= after && !s.closed && ctx.Err() == nil {
		s.progCond.Wait()
	}
	p, good := s.progressLocked()
	more = !s.closed && ctx.Err() == nil
	s.mu.Unlock()
	finishProgress(&p, good)
	return p, more
}

// Subscribe returns a channel of progress snapshots: one whenever the
// session's state changes, coalesced latest-wins so a slow consumer never
// blocks the scheduler and always sees the freshest state. The channel
// closes after the final snapshot (session done or context cancelled).
func (s *Session) Subscribe(ctx context.Context) <-chan Progress {
	ch := make(chan Progress, 1)
	go func() {
		defer close(ch)
		var last int64 = -1
		for {
			p, more := s.WaitProgress(ctx, last)
			if p.Version > last {
				last = p.Version
				select {
				case <-ch: // drop the undelivered stale snapshot
				default:
				}
				ch <- p
			}
			if !more {
				return
			}
		}
	}()
	return ch
}

// SweepStats accumulates grid activity across the sessions of one process
// (a multi-panel experiments run attaches one session per sweep).
type SweepStats struct {
	Simulated   int
	CacheHits   int
	Requeues    int
	Quarantined int
}

// Observe folds one finished session's counters into the stats.
func (st *SweepStats) Observe(s *Session) {
	st.Simulated += s.Executed()
	st.CacheHits += s.CacheHits()
	st.Requeues += s.Requeues()
	st.Quarantined += s.Quarantines()
}

// String renders the counters for operator output.
func (st *SweepStats) String() string {
	out := fmt.Sprintf("grid: %d simulated, %d cache hits", st.Simulated, st.CacheHits)
	if st.Requeues > 0 {
		out += fmt.Sprintf(", %d crash re-queues", st.Requeues)
	}
	if st.Quarantined > 0 {
		out += fmt.Sprintf(", %d workers quarantined", st.Quarantined)
	}
	return out
}
