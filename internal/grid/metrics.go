package grid

import (
	"fmt"
	"net/http"
	"strings"
)

// serveMetrics renders the coordinator's state in Prometheus text
// exposition format (hand-rolled: the repo takes no dependencies). The
// page combines three sources:
//
//   - the server's own protocol counters (tasks served, heartbeats,
//     results accepted/rejected),
//   - the attached session's scheduler state (executed, cache hits,
//     crash re-queues, live leases) via one Progress snapshot,
//   - the session's cache-stack traffic and the claim-to-completion
//     duration histogram.
//
// With no session attached only the protocol counters appear; series
// are cumulative across sessions of one coordinator process except the
// session-scoped ones, which carry a `session` label.
func (sv *Server) serveMetrics(w http.ResponseWriter) {
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("charisma_grid_tasks_served_total",
		"Tasks dispatched to workers via GET /task.", sv.tasksServed.Load())
	counter("charisma_grid_heartbeats_total",
		"Successful lease renewals via POST /heartbeat.", sv.heartbeats.Load())
	counter("charisma_grid_heartbeat_conflicts_total",
		"Heartbeats rejected 409 (lease or session superseded).", sv.beatConflicts.Load())
	counter("charisma_grid_results_accepted_total",
		"Results accepted via POST /result.", sv.resultsAccepted.Load())
	counter("charisma_grid_results_rejected_total",
		"Results rejected as stale or malformed.", sv.resultsRejected.Load())

	sess, id, _ := sv.current()
	if sess != nil {
		lbl := fmt.Sprintf("{session=%q}", id)
		scoped := func(name, typ, help string, v interface{}) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s%s %v\n",
				name, help, name, typ, name, lbl, v)
		}
		p := sess.Progress()
		scoped("charisma_grid_executed_total", "counter",
			"Replications simulated by workers (cache misses executed).", p.Executed)
		scoped("charisma_grid_cache_hits_total", "counter",
			"Replications satisfied from the result cache.", p.CacheHits)
		scoped("charisma_grid_requeues_total", "counter",
			"Tasks re-queued after a worker lease expired.", p.Requeues)
		scoped("charisma_grid_leases", "gauge",
			"Tasks currently out under a live lease.", p.Leases)
		done := 0
		if p.Done {
			done = 1
		}
		scoped("charisma_grid_done", "gauge",
			"1 when the attached session has settled every point.", done)
		scoped("charisma_grid_audits_passed_total", "counter",
			"Remote results re-executed locally and verified byte-identical.", p.AuditsPassed)
		scoped("charisma_grid_audits_failed_total", "counter",
			"Remote results that diverged from local re-execution.", p.AuditsFailed)
		scoped("charisma_grid_workers_quarantined_total", "counter",
			"Workers quarantined after a divergent (byzantine) result.", p.Quarantined)

		if cs, ok := sess.CacheStats(); ok {
			counter("charisma_grid_cache_mem_hits_total",
				"Result-cache hits served from the in-memory tier.", cs.MemHits)
			counter("charisma_grid_cache_mem_misses_total",
				"Result-cache misses in the in-memory tier.", cs.MemMisses)
			counter("charisma_grid_cache_disk_hits_total",
				"Result-cache hits served from the on-disk tier.", cs.DiskHits)
			counter("charisma_grid_cache_disk_misses_total",
				"Result-cache misses falling through the on-disk tier.", cs.DiskMisses)
			counter("charisma_grid_cache_disk_corrupt_total",
				"Corrupt on-disk cache entries detected and quarantined.", cs.DiskCorrupt)
			counter("charisma_grid_cache_disk_put_errors_total",
				"Failed on-disk cache writes (disk tier degrades after repeats).", cs.DiskPutErrors)
		}
		if h := sess.RepDurations(); h != nil {
			const hn = "charisma_grid_rep_duration_seconds"
			fmt.Fprintf(&b, "# HELP %s Worker claim-to-completion time per replication.\n# TYPE %s histogram\n", hn, hn)
			h.WritePrometheus(&b, hn)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
