package grid

import (
	"testing"
	"time"
)

// TestBackoffScheduleBounds: attempt k waits within the equal-jitter
// window [base·2^k/2, base·2^k), never above the cap.
func TestBackoffScheduleBounds(t *testing.T) {
	const base = 100 * time.Millisecond
	const cap = 2 * time.Second
	b := NewBackoff(base, cap, 1)
	for k := 0; k < 12; k++ {
		d := b.Next()
		full := base << k
		if full > cap || full <= 0 { // shifted past the cap (or overflowed)
			full = cap
		}
		if d < full/2 || d >= full {
			t.Fatalf("attempt %d waited %v, want [%v, %v)", k, d, full/2, full)
		}
	}
	if b.Attempt() != 12 {
		t.Fatalf("attempt counter = %d, want 12", b.Attempt())
	}
}

// TestBackoffReset: Reset returns the schedule to the first window.
func TestBackoffReset(t *testing.T) {
	const base = 80 * time.Millisecond
	b := NewBackoff(base, time.Second, 2)
	for i := 0; i < 4; i++ {
		b.Next()
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Fatalf("attempt counter = %d after reset", b.Attempt())
	}
	if d := b.Next(); d < base/2 || d >= base {
		t.Fatalf("post-reset wait %v outside first window [%v, %v)", d, base/2, base)
	}
}

// TestBackoffDeterministicPerSeed: the same seed yields the same jitter
// schedule; different seeds diverge.
func TestBackoffDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		b := NewBackoff(50*time.Millisecond, time.Second, seed)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, b2 := draw(7), draw(7)
	diff := draw(8)
	same, differs := true, false
	for i := range a {
		if a[i] != b2[i] {
			same = false
		}
		if a[i] != diff[i] {
			differs = true
		}
	}
	if !same {
		t.Fatal("same seed produced different schedules")
	}
	if !differs {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestBackoffDefaults: non-positive base and an inverted cap are
// normalized instead of producing zero waits.
func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 3)
	if d := b.Next(); d <= 0 {
		t.Fatalf("zero-value backoff waited %v", d)
	}
}
