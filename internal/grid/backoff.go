package grid

import (
	"time"

	"charisma/internal/rng"
)

// Backoff computes capped, jittered exponential retry delays — the one
// retry schedule every transient-failure path in the grid shares (worker
// claim loop, heartbeat renewal, result posting), so hardening decisions
// live in one place.
//
// Attempt k (0-based) nominally waits Base·2^k, capped at Cap; the
// returned delay is "equal-jittered" into [d/2, d) from a seeded stream,
// so a fleet of workers hammered by the same coordinator outage spreads
// its retries instead of thundering back in lockstep. The jitter stream
// is deterministic per seed, which keeps retry-schedule tests exact.
//
// Backoff is not safe for concurrent use; each retry loop owns one.
type Backoff struct {
	base, cap time.Duration
	jitter    *rng.Stream
	attempt   int
}

// NewBackoff returns a backoff starting at base, capped at cap, with its
// jitter stream derived from seed. base must be positive; cap below base
// means no cap beyond base's exponential growth limit (cap = base forces
// a constant jittered delay).
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &Backoff{base: base, cap: cap, jitter: rng.Derive(seed, "grid", "backoff")}
}

// Next returns the delay before the upcoming retry and advances the
// attempt counter.
func (b *Backoff) Next() time.Duration {
	d := b.base
	for i := 0; i < b.attempt && d < b.cap; i++ {
		d *= 2
	}
	if d > b.cap {
		d = b.cap
	}
	b.attempt++
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(b.jitter.Float64()*float64(half))
}

// Reset rewinds the schedule after a success, so the next failure starts
// from Base again.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt reports how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }
