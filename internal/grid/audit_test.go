package grid

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"charisma/internal/rng"
	"charisma/internal/run"
)

// TestAuditCatchesLyingWorker: with -audit-frac 1, a worker that posts a
// plausible-but-wrong result is caught by local re-execution, the worker
// is quarantined, the oracle's own result lands instead, and the sweep
// finishes byte-identical to the in-process runner.
func TestAuditCatchesLyingWorker(t *testing.T) {
	ctx := context.Background()
	want, err := run.Runner{}.Run(ctx, run.NewPlan(sweepScenarios(), 1))
	if err != nil {
		t.Fatal(err)
	}

	sess, err := NewSession(sweepPoints(1), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sess.EnableAudit(Audit{Frac: 1, Seed: 11})

	// The liar claims one task, computes the honest result, inflates its
	// throughput, and posts the lie under a perfectly valid lease.
	tk, ok, _ := sess.TryClaim("liar", time.Minute)
	if !ok {
		t.Fatal("liar got no task")
	}
	res, err := tk.Spec.RunRep(tk.Rep)
	if err != nil {
		t.Fatal(err)
	}
	res.DataThroughputPerFrame *= 2
	res.DataDelivered += 100
	if err := sess.Complete(TaskResult{Point: tk.Point, Rep: tk.Rep, Lease: tk.Lease, Result: res}); err != nil {
		t.Fatal(err)
	}

	// Honest loopback workers finish the rest; RunLocal only returns once
	// every audit verdict is in (checkDone gates on parked audits).
	if err := RunLocal(ctx, sess, 2); err != nil {
		t.Fatal(err)
	}
	if n := sess.Quarantines(); n != 1 {
		t.Fatalf("quarantines = %d, want 1", n)
	}
	if _, failed := sess.Audits(); failed != 1 {
		t.Fatalf("failed audits = %d, want 1", failed)
	}
	got, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("audited sweep differs from in-process runner despite the lie")
	}
}

// TestQuarantinedWorkerGetsNoTasks: once caught, a worker is never
// handed work again, while honest workers still claim normally.
func TestQuarantinedWorkerGetsNoTasks(t *testing.T) {
	sess, err := NewSession(sweepPoints(1), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sess.EnableAudit(Audit{Frac: 1, Seed: 3})
	tk, ok, _ := sess.TryClaim("liar", time.Minute)
	if !ok {
		t.Fatal("liar got no task before quarantine")
	}
	res, err := tk.Spec.RunRep(tk.Rep)
	if err != nil {
		t.Fatal(err)
	}
	res.VoiceLossRate += 0.5
	if err := sess.Complete(TaskResult{Point: tk.Point, Rep: tk.Rep, Lease: tk.Lease, Result: res}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, func() bool { return sess.Quarantines() == 1 })
	if _, ok, _ := sess.TryClaim("liar", 0); ok {
		t.Fatal("quarantined worker was handed a task")
	}
	if _, ok, _ := sess.TryClaim("honest", 0); !ok {
		t.Fatal("honest worker starved by another worker's quarantine")
	}
}

// TestQuarantineUnwindsDeliveredResults: a lie caught on the liar's
// *second* result must also unwind its first — delivered unaudited,
// already in the cache — evicting the cache entry, reopening the slot,
// and re-queueing it for honest re-execution, so nothing the liar
// touched survives.
func TestQuarantineUnwindsDeliveredResults(t *testing.T) {
	ctx := context.Background()
	want, err := run.Runner{}.Run(ctx, run.NewPlan(sweepScenarios(), 1))
	if err != nil {
		t.Fatal(err)
	}

	// Find a seed whose audit coin skips the first remote result and
	// audits the second — the exact sequence that leaves an unaudited
	// result on the books when the quarantine fires.
	var seed int64
	for {
		st := rng.Derive(seed, "grid", "audit")
		if !st.Bernoulli(0.5) && st.Bernoulli(0.5) {
			break
		}
		seed++
	}

	cache := NewMemCache()
	sess, err := NewSession(sweepPoints(1), cache, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sess.EnableAudit(Audit{Frac: 0.5, Seed: seed})

	// First result: computed honestly, but the coin skips the audit, so
	// it lands untrusted (tracked provenance, cached).
	tkA, ok, _ := sess.TryClaim("liar", time.Minute)
	if !ok {
		t.Fatal("no first task")
	}
	resA, err := tkA.Spec.RunRep(tkA.Rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Complete(TaskResult{Point: tkA.Point, Rep: tkA.Rep, Lease: tkA.Lease, Result: resA}); err != nil {
		t.Fatal(err)
	}
	keyA := sess.repKey(tkA.Point, tkA.Rep)
	if _, hit := cache.Get(keyA); !hit {
		t.Fatal("unaudited result did not reach the cache")
	}

	// Second result: a lie, audited, caught.
	tkB, ok, _ := sess.TryClaim("liar", time.Minute)
	if !ok {
		t.Fatal("no second task")
	}
	resB, err := tkB.Spec.RunRep(tkB.Rep)
	if err != nil {
		t.Fatal(err)
	}
	// Frames is always nonzero, so this lie is guaranteed to change the
	// result's bytes regardless of the scenario's traffic mix.
	resB.Frames++
	if err := sess.Complete(TaskResult{Point: tkB.Point, Rep: tkB.Rep, Lease: tkB.Lease, Result: resB}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, func() bool { return sess.Quarantines() == 1 })

	// The quarantine must have evicted the liar's first (honest but
	// untrusted) result and re-queued its task.
	if _, hit := cache.Get(keyA); hit {
		t.Fatal("quarantine left the liar's unaudited result in the cache")
	}
	if sess.Requeues() < 1 {
		t.Fatal("quarantine did not re-queue the liar's delivered result")
	}

	// Honest re-execution finishes the sweep byte-identically.
	if err := RunLocal(ctx, sess, 2); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("unwound sweep differs from in-process runner")
	}
}

// TestAuditedRemoteSweepByteIdentical: honest workers over real HTTP
// with every result audited — all audits pass, nobody is quarantined,
// and the bytes match the in-process runner. The cost of -audit-frac 1
// is re-execution time, never correctness.
func TestAuditedRemoteSweepByteIdentical(t *testing.T) {
	const reps = 2
	ctx := context.Background()
	want, err := run.Runner{}.Run(ctx, run.NewPlan(sweepScenarios(), reps))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(sweepPoints(reps), nil, Precision{})
	if err != nil {
		t.Fatal(err)
	}
	sess.EnableAudit(Audit{Frac: 1, Seed: 5, Workers: 2})
	sv := NewServer()
	sv.Attach(sess)
	hs := httptest.NewServer(sv)
	defer hs.Close()

	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := Worker{Coordinator: hs.URL, Parallel: 2, Poll: 5 * time.Millisecond}
			workerErrs[i] = w.Run(ctx)
		}(i)
	}
	if err := sess.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sv.Close()
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	passed, failed := sess.Audits()
	if failed != 0 || sess.Quarantines() != 0 {
		t.Fatalf("honest sweep: %d failed audits, %d quarantines", failed, sess.Quarantines())
	}
	if passed == 0 {
		t.Fatal("audit-frac 1 audited nothing")
	}
	got, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("audited remote sweep differs from in-process runner")
	}
}
