// Package grid is the distributed sweep subsystem: it farms replicated
// simulation jobs out to workers, never simulates the same (spec, seed)
// pair twice, and spends replications where the confidence intervals are
// widest.
//
// The paper's figures are built from replicated stochastic sweeps — every
// sweep point is N independent runs of one parameterized simulation, pooled
// by mac.AggregateReplications. This package makes those sweeps
// content-addressed and transportable:
//
//   - A JobSpec is a declarative, serializable description of one
//     simulation — a single-cell core.Scenario or a multicell deployment —
//     parameters, not closures. It has a canonical JSON encoding (plus a
//     framed binary envelope) and a stable SHA-256 content hash, replacing
//     the unserializable run.Job.Custom path as the plan-transport boundary.
//   - A Cache stores one mac.Result per replication under
//     RepKey(hash(JobSpec), RepSeed): repeated sweep points and re-anchored
//     figures reuse prior replications, and a re-run sweep is a cache walk.
//     Caches compose: in-memory, on-disk (a -cache-dir), or tiered.
//   - A Session is the coordinator core: it expands points into
//     (spec, rep) tasks, resolves them against the cache, dedups identical
//     in-flight (spec, seed) pairs across points, and merges completed
//     replications in rep-index order, so results are byte-identical no
//     matter which transport executed them.
//   - Transports: RunLocal drives a session with in-process loopback
//     workers; Server exposes the same session over HTTP so
//     cmd/charisma-worker processes can pull tasks and stream results
//     back. Every sweep path — loopback, multi-worker, warm cache —
//     exercises the same scheduling code.
//   - Precision is the adaptive replication controller: a point's
//     replication count grows until the across-replication Student-t CI95
//     half-width of every applicable headline metric falls to within
//     TargetRel of its mean (or a hard cap). New replications are seeded
//     via run.RepSeed, so a grown sweep is a byte-identical extension of a
//     fixed-N one.
package grid
