package grid

import (
	"bytes"
	"encoding/json"
	"fmt"

	"charisma/internal/mac"
	"charisma/internal/rng"
)

// Audit configures byzantine-result defense: the coordinator re-executes
// a seeded fraction of remotely produced results and byte-compares them
// against what the worker claimed. Because every (spec, rep-seed) result
// is deterministic, any honest re-execution is an exact oracle — a single
// byte of divergence proves the producing worker wrong, no voting needed.
//
// A divergent worker is quarantined: it is never handed another task, its
// live leases are superseded and their tasks re-queued, its pending
// results are rejected, and every unaudited result it previously produced
// is evicted from the cache and re-queued for honest re-execution — so a
// lying worker cannot poison the content-addressed cache or the sweep.
//
// With Frac = 1 every remote result is verified and a fixed-replication
// sweep is guaranteed byte-identical to the in-process runner no matter
// what workers return. With Frac < 1 detection is probabilistic per
// result, but one caught lie still evicts everything the liar touched.
// Under adaptive precision a lie that influenced a growth decision before
// being caught can leave the sweep settled at a larger (still honest)
// replication count than the in-process run; fixed-rep sweeps have no
// such decision and stay byte-identical.
type Audit struct {
	// Frac is the fraction of remote results re-executed (0 disables the
	// audit, 1 audits everything).
	Frac float64
	// Seed derives the audit coin's rng substream, so which results get
	// audited is reproducible given the same completion order.
	Seed int64
	// Workers bounds concurrent local re-executions (below 1 means 1).
	Workers int
}

// Enabled reports whether auditing is active.
func (a Audit) Enabled() bool { return a.Frac > 0 }

// auditJob is one parked remote result awaiting re-execution. Its key
// stays in the session's inflight table until the verdict, so duplicate
// deliveries and adaptive growth keep working while it is parked.
type auditJob struct {
	key        string
	point, rep int
	worker     string
	claimed    mac.Result
}

// deliveredEntry records the provenance of an unaudited remote result
// that already landed: which worker produced it and every (point, rep)
// slot that consumed it — including slots served later from the cache.
// Quarantining the worker walks these entries to unwind its results.
type deliveredEntry struct {
	worker string
	refs   []ref
}

// EnableAudit arms byzantine-result defense on the session and starts the
// audit executors. Call it right after NewSession, before any transport
// delivers results; enabling mid-sweep would let earlier results through
// unaudited and untracked.
func (s *Session) EnableAudit(cfg Audit) {
	if !cfg.Enabled() {
		return
	}
	n := cfg.Workers
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.audit = cfg
	s.auditRng = rng.Derive(cfg.Seed, "grid", "audit")
	s.mu.Unlock()
	for i := 0; i < n; i++ {
		go s.auditLoop()
	}
}

// auditPickLocked flips the audit coin for one remote result. Caller
// holds s.mu.
func (s *Session) auditPickLocked() bool {
	if !s.audit.Enabled() {
		return false
	}
	if s.audit.Frac >= 1 {
		return true
	}
	return s.auditRng.Bernoulli(s.audit.Frac)
}

// resultsIdentical byte-compares two results through their canonical JSON
// encoding — the same bytes the cache persists and the wire carries.
func resultsIdentical(a, b mac.Result) bool {
	ab, aerr := json.Marshal(a)
	bb, berr := json.Marshal(b)
	return aerr == nil && berr == nil && bytes.Equal(ab, bb)
}

// auditLoop is one audit executor: it pops parked jobs, re-executes them
// locally (outside the session mutex — a replication can take seconds),
// and delivers the verdict. Loops exit when the session closes with no
// parked work left; checkDone keeps the session open while audits are
// parked or executing, because a failed audit creates new work.
func (s *Session) auditLoop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.audits) == 0 && !s.closed {
			s.auditCond.Wait()
		}
		if len(s.audits) == 0 {
			return // closed and drained
		}
		j := s.audits[0]
		s.audits = s.audits[1:]
		s.auditing++
		spec := s.points[j.point].Spec
		s.mu.Unlock()
		truth, err := spec.RunRep(j.rep)
		s.mu.Lock()
		s.auditing--
		switch {
		case err != nil:
			// The oracle failed where the worker claimed success. RunRep is
			// deterministic, so an honest worker would have failed the same
			// way — the claimed success is itself the divergence.
			s.auditsFailed++
			s.quarantineLocked(j.worker, "claimed success where re-execution fails: "+err.Error())
			s.deliverLocked(j.key, mac.Result{}, err, "")
		case resultsIdentical(truth, j.claimed):
			s.auditsPassed++
			// Verified: deliver as trusted (no provenance tracking — a later
			// quarantine of this worker must not unwind an audited result).
			s.deliverLocked(j.key, truth, nil, "")
		default:
			s.auditsFailed++
			s.quarantineLocked(j.worker, fmt.Sprintf("result diverges from re-execution (point %d rep %d)", j.point, j.rep))
			// The oracle's own result is the truth; the sweep proceeds with
			// it immediately instead of re-queueing the task.
			s.deliverLocked(j.key, truth, nil, "")
		}
	}
}

// quarantineLocked bars a worker from the session and unwinds everything
// it touched: live leases are superseded and their tasks re-queued,
// parked (unaudited) results from it are discarded and their tasks
// re-queued, and previously delivered unaudited results are evicted from
// the cache, their slots reopened, and their tasks re-queued. Pending
// results it posts later die on lease validation; claim never hands it
// another task. Caller holds s.mu.
func (s *Session) quarantineLocked(worker, reason string) {
	if worker == "" || s.quarantined[worker] {
		return
	}
	s.quarantined[worker] = true
	s.quarantines++
	if s.log != nil {
		s.log.Warn("worker quarantined", "session", s.serial, "worker", worker, "reason", reason)
	}
	// Supersede its live leases; their tasks go back to the queue.
	for id, l := range s.leases {
		if l.worker != worker {
			continue
		}
		delete(s.leases, id)
		delete(s.avoid, l.key)
		t := l.task
		t.Lease = 0
		s.queue = append(s.queue, t)
		s.requeues++
	}
	// Discard its parked audit jobs: the claimed results are untrusted and
	// not worth re-executing against; re-queue the tasks instead.
	kept := s.audits[:0]
	for _, j := range s.audits {
		if j.worker != worker {
			kept = append(kept, j)
			continue
		}
		// The key is still inflight (parked jobs keep it there); just hand
		// the task back out.
		s.queue = append(s.queue, Task{Point: j.point, Rep: j.rep, Spec: s.points[j.point].Spec})
		s.requeues++
	}
	s.audits = kept
	// Evict and re-queue every unaudited result it produced, including
	// slots that consumed the poisoned result via the cache afterwards.
	for key, e := range s.delivered {
		if e.worker != worker {
			continue
		}
		delete(s.delivered, key)
		s.cache.Delete(key)
		var reopened []ref
		for _, rf := range e.refs {
			st := s.states[rf.point]
			if !st.ok[rf.rep] {
				continue
			}
			st.ok[rf.rep] = false
			st.results[rf.rep] = mac.Result{}
			st.completed--
			st.settled = false
			reopened = append(reopened, rf)
		}
		if len(reopened) == 0 {
			continue
		}
		if refs, ok := s.inflight[key]; ok {
			// A task for this key is already out (re-scheduled growth);
			// join it instead of queueing a duplicate.
			s.inflight[key] = append(refs, reopened...)
			continue
		}
		s.inflight[key] = reopened
		s.queue = append(s.queue, Task{Point: reopened[0].point, Rep: reopened[0].rep, Spec: s.points[reopened[0].point].Spec})
		s.requeues++
	}
	s.cond.Broadcast() // re-queued work: wake blocked claimers
	s.bump()
}
