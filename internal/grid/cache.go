package grid

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"charisma/internal/mac"
)

// Cache stores one mac.Result per replication under its RepKey. A cache
// only ever serves results it was handed for exactly that key, so a hit is
// always byte-identical to re-running the simulation (mac.Result is plain
// data and Go's JSON float formatting round-trips exactly).
type Cache interface {
	// Get returns the cached result for key, if present.
	Get(key string) (mac.Result, bool)
	// Put stores the result for key. Put is best-effort: storage errors
	// degrade to future misses, never to failures.
	Put(key string, r mac.Result)
	// Delete evicts key from every tier. The byzantine-audit path uses it
	// to purge results produced by a quarantined worker before they can
	// poison a future sweep; like Put it is best-effort.
	Delete(key string)
}

// NewCache builds the standard cache stack: in-memory only when dir is
// empty, otherwise an in-memory cache tiered over an on-disk one rooted at
// dir (the -cache-dir layout: dir/<key[:2]>/<key>.json).
func NewCache(dir string) Cache { return NewCacheLogged(dir, nil) }

// NewCacheLogged is NewCache with an operator log: the disk tier reports
// its degradation (an unwritable cache directory disables disk writes,
// once) to log instead of failing silently. A nil log stays silent.
func NewCacheLogged(dir string, log *slog.Logger) Cache {
	if dir == "" {
		return NewMemCache()
	}
	return Tiered(NewMemCache(), NewDiskCache(dir, log))
}

// CacheStats is a point-in-time snapshot of a cache stack's hit/miss
// traffic, split by tier. Caches that can report stats implement
// StatsReporter; /metrics renders whatever the session's cache exposes.
type CacheStats struct {
	MemHits    uint64
	MemMisses  uint64 // mem-tier misses (may still hit disk below)
	DiskHits   uint64
	DiskMisses uint64
	// DiskCorrupt counts entries that failed their integrity check and
	// were quarantined (renamed <key>.corrupt) instead of being served.
	DiskCorrupt uint64
	// DiskPutErrors counts failed disk writes; enough consecutive
	// failures disable the disk tier's writes (reads keep working).
	DiskPutErrors uint64
}

// StatsReporter is implemented by caches that count their traffic.
type StatsReporter interface {
	Stats() CacheStats
}

// MemCache is a concurrency-safe in-memory cache.
type MemCache struct {
	mu sync.RWMutex
	m  map[string]mac.Result

	hits, misses atomic.Uint64
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache {
	return &MemCache{m: make(map[string]mac.Result)}
}

// Get implements Cache.
func (c *MemCache) Get(key string) (mac.Result, bool) {
	c.mu.RLock()
	r, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

// Stats implements StatsReporter.
func (c *MemCache) Stats() CacheStats {
	return CacheStats{MemHits: c.hits.Load(), MemMisses: c.misses.Load()}
}

// Put implements Cache.
func (c *MemCache) Put(key string, r mac.Result) {
	c.mu.Lock()
	c.m[key] = r
	c.mu.Unlock()
}

// Delete implements Cache.
func (c *MemCache) Delete(key string) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}

// Len returns the number of cached replications.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// diskEntry is the on-disk envelope (format v2): the result's canonical
// JSON plus a CRC-32C over those exact bytes. The checksum turns silent
// disk corruption — a flipped bit inside a float's digits still parses as
// valid JSON — into a detected, quarantined entry instead of a wrong
// result served as a hit. v1 entries (bare mac.Result JSON, no checksum)
// fail the check and are quarantined too: re-simulating beats trusting an
// unverifiable byte-stream.
type diskEntry struct {
	Sum    string          `json:"sum"` // CRC-32C (Castagnoli) of Result, hex
	Result json.RawMessage `json:"result"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func entrySum(body []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(body, crcTable))
}

// diskState carries the optional mutable half of a DiskCache: degradation
// and quarantine counters shared by every copy of the value. A zero
// DiskCache (literal construction) has none and simply skips counting and
// degradation.
type diskState struct {
	corrupt   atomic.Uint64
	putErrs   atomic.Uint64
	consecPut atomic.Uint32
	disabled  atomic.Bool
	logOnce   sync.Once
	log       *slog.Logger
}

// diskDisableAfter is how many consecutive write failures flip the disk
// tier to read-only degradation: one failure may be transient (ENOSPC
// racing a cleanup), a streak means the directory is gone or unwritable.
const diskDisableAfter = 3

// DiskCache persists replication results under Dir, sharded by the first
// two hex digits of the key so directories stay small on wide sweeps.
// Writes are atomic (temp file + rename), so a killed sweep never leaves a
// truncated entry behind. Every entry carries a CRC-32C; an entry that
// fails its integrity check is quarantined — renamed to <key>.corrupt for
// post-mortem and counted in CacheStats — instead of being re-read (and
// re-missed, or worse, silently served wrong) on every future run.
//
// When constructed via NewDiskCache, the cache degrades gracefully if its
// directory stops accepting writes (volume remounted read-only, quota
// hit): after a few consecutive write failures it logs once, stops
// writing, and keeps serving reads — the memory tier above it carries the
// session onward.
type DiskCache struct {
	Dir string

	s *diskState
}

// NewDiskCache returns a disk cache rooted at dir with degradation and
// quarantine counting armed; log (optional) receives the one-time
// degradation warning.
func NewDiskCache(dir string, log *slog.Logger) DiskCache {
	return DiskCache{Dir: dir, s: &diskState{log: log}}
}

// EntryPath returns where key's entry lives on disk, for tools that
// inspect or perturb the cache from outside (the chaos fault injector).
// ok is false for keys the cache would refuse.
func (c DiskCache) EntryPath(key string) (string, bool) { return c.path(key) }

func (c DiskCache) path(key string) (string, bool) {
	// Keys are hex hashes; refuse anything that could walk the tree.
	if len(key) < 3 || filepath.Base(key) != key {
		return "", false
	}
	return filepath.Join(c.Dir, key[:2], key+".json"), true
}

// Get implements Cache.
func (c DiskCache) Get(key string) (mac.Result, bool) {
	p, ok := c.path(key)
	if !ok {
		return mac.Result{}, false
	}
	b, err := os.ReadFile(p)
	if err != nil {
		return mac.Result{}, false
	}
	var e diskEntry
	if err := json.Unmarshal(b, &e); err != nil || e.Sum != entrySum(e.Result) {
		c.quarantine(p, key)
		return mac.Result{}, false
	}
	var r mac.Result
	if err := json.Unmarshal(e.Result, &r); err != nil {
		c.quarantine(p, key)
		return mac.Result{}, false
	}
	return r, true
}

// quarantine moves a corrupt entry aside as <key>.corrupt — it stops
// being re-read as a miss on every run, stays available for post-mortem,
// and a fresh Put of the key lands in a clean file.
func (c DiskCache) quarantine(p, key string) {
	if err := os.Rename(p, filepath.Join(filepath.Dir(p), key+".corrupt")); err != nil {
		// Can't rename (read-only dir): best effort, the entry stays a miss.
		_ = err
	}
	if c.s != nil {
		c.s.corrupt.Add(1)
		if c.s.log != nil {
			c.s.log.Warn("corrupt cache entry quarantined", "key", key, "path", p+" -> "+key+".corrupt")
		}
	}
}

// Put implements Cache.
func (c DiskCache) Put(key string, r mac.Result) {
	if c.s != nil && c.s.disabled.Load() {
		return
	}
	err := c.put(key, r)
	if c.s == nil {
		return
	}
	if err == nil {
		c.s.consecPut.Store(0)
		return
	}
	c.s.putErrs.Add(1)
	if c.s.consecPut.Add(1) >= diskDisableAfter {
		c.s.disabled.Store(true)
		c.s.logOnce.Do(func() {
			if c.s.log != nil {
				c.s.log.Warn("cache dir unwritable, disk tier degraded to read-only; serving from memory",
					"dir", c.Dir, "err", err)
			}
		})
	}
}

func (c DiskCache) put(key string, r mac.Result) error {
	p, ok := c.path(key)
	if !ok {
		return nil // refused key, not a disk failure
	}
	body, err := json.Marshal(r)
	if err != nil {
		return nil
	}
	b, err := json.Marshal(diskEntry{Sum: entrySum(body), Result: body})
	if err != nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Delete implements Cache.
func (c DiskCache) Delete(key string) {
	if p, ok := c.path(key); ok {
		_ = os.Remove(p)
	}
}

// Stats implements StatsReporter with the disk-side counters; the tiered
// wrapper above fills in hit/miss traffic.
func (c DiskCache) Stats() CacheStats {
	if c.s == nil {
		return CacheStats{}
	}
	return CacheStats{DiskCorrupt: c.s.corrupt.Load(), DiskPutErrors: c.s.putErrs.Load()}
}

// tiered reads through fast to slow, promoting slow hits, and writes both.
// Pointer type: the slow-tier counters must survive the Cache interface
// value being copied around.
type tiered struct {
	fast *MemCache
	slow Cache

	slowHits, slowMisses atomic.Uint64
}

// Tiered layers an in-memory cache over a slower backing cache.
func Tiered(fast *MemCache, slow Cache) Cache {
	return &tiered{fast: fast, slow: slow}
}

// Get implements Cache.
func (t *tiered) Get(key string) (mac.Result, bool) {
	if r, ok := t.fast.Get(key); ok {
		return r, true
	}
	r, ok := t.slow.Get(key)
	if ok {
		t.slowHits.Add(1)
		t.fast.Put(key, r)
	} else {
		t.slowMisses.Add(1)
	}
	return r, ok
}

// Put implements Cache.
func (t *tiered) Put(key string, r mac.Result) {
	t.fast.Put(key, r)
	t.slow.Put(key, r)
}

// Delete implements Cache.
func (t *tiered) Delete(key string) {
	t.fast.Delete(key)
	t.slow.Delete(key)
}

// Stats implements StatsReporter: the mem tier's own traffic plus the
// disk tier's hits/misses (a disk hit implies a mem miss that was then
// promoted) and, when the slow tier counts them, its quarantine and
// write-failure totals.
func (t *tiered) Stats() CacheStats {
	s := t.fast.Stats()
	s.DiskHits = t.slowHits.Load()
	s.DiskMisses = t.slowMisses.Load()
	if sr, ok := t.slow.(StatsReporter); ok {
		ss := sr.Stats()
		s.DiskCorrupt = ss.DiskCorrupt
		s.DiskPutErrors = ss.DiskPutErrors
	}
	return s
}
