package grid

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"charisma/internal/mac"
)

// Cache stores one mac.Result per replication under its RepKey. A cache
// only ever serves results it was handed for exactly that key, so a hit is
// always byte-identical to re-running the simulation (mac.Result is plain
// data and Go's JSON float formatting round-trips exactly).
type Cache interface {
	// Get returns the cached result for key, if present.
	Get(key string) (mac.Result, bool)
	// Put stores the result for key. Put is best-effort: storage errors
	// degrade to future misses, never to failures.
	Put(key string, r mac.Result)
}

// NewCache builds the standard cache stack: in-memory only when dir is
// empty, otherwise an in-memory cache tiered over an on-disk one rooted at
// dir (the -cache-dir layout: dir/<key[:2]>/<key>.json).
func NewCache(dir string) Cache {
	if dir == "" {
		return NewMemCache()
	}
	return Tiered(NewMemCache(), DiskCache{Dir: dir})
}

// CacheStats is a point-in-time snapshot of a cache stack's hit/miss
// traffic, split by tier. Caches that can report stats implement
// StatsReporter; /metrics renders whatever the session's cache exposes.
type CacheStats struct {
	MemHits    uint64
	MemMisses  uint64 // mem-tier misses (may still hit disk below)
	DiskHits   uint64
	DiskMisses uint64
}

// StatsReporter is implemented by caches that count their traffic.
type StatsReporter interface {
	Stats() CacheStats
}

// MemCache is a concurrency-safe in-memory cache.
type MemCache struct {
	mu sync.RWMutex
	m  map[string]mac.Result

	hits, misses atomic.Uint64
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache {
	return &MemCache{m: make(map[string]mac.Result)}
}

// Get implements Cache.
func (c *MemCache) Get(key string) (mac.Result, bool) {
	c.mu.RLock()
	r, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

// Stats implements StatsReporter.
func (c *MemCache) Stats() CacheStats {
	return CacheStats{MemHits: c.hits.Load(), MemMisses: c.misses.Load()}
}

// Put implements Cache.
func (c *MemCache) Put(key string, r mac.Result) {
	c.mu.Lock()
	c.m[key] = r
	c.mu.Unlock()
}

// Len returns the number of cached replications.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// DiskCache persists replication results under Dir, sharded by the first
// two hex digits of the key so directories stay small on wide sweeps.
// Writes are atomic (temp file + rename), so a killed sweep never leaves a
// truncated entry behind; unreadable or corrupt entries read as misses.
type DiskCache struct {
	Dir string
}

func (c DiskCache) path(key string) (string, bool) {
	// Keys are hex hashes; refuse anything that could walk the tree.
	if len(key) < 3 || filepath.Base(key) != key {
		return "", false
	}
	return filepath.Join(c.Dir, key[:2], key+".json"), true
}

// Get implements Cache.
func (c DiskCache) Get(key string) (mac.Result, bool) {
	p, ok := c.path(key)
	if !ok {
		return mac.Result{}, false
	}
	b, err := os.ReadFile(p)
	if err != nil {
		return mac.Result{}, false
	}
	var r mac.Result
	if err := json.Unmarshal(b, &r); err != nil {
		return mac.Result{}, false
	}
	return r, true
}

// Put implements Cache.
func (c DiskCache) Put(key string, r mac.Result) {
	p, ok := c.path(key)
	if !ok {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
	}
}

// tiered reads through fast to slow, promoting slow hits, and writes both.
// Pointer type: the slow-tier counters must survive the Cache interface
// value being copied around.
type tiered struct {
	fast *MemCache
	slow Cache

	slowHits, slowMisses atomic.Uint64
}

// Tiered layers an in-memory cache over a slower backing cache.
func Tiered(fast *MemCache, slow Cache) Cache {
	return &tiered{fast: fast, slow: slow}
}

// Get implements Cache.
func (t *tiered) Get(key string) (mac.Result, bool) {
	if r, ok := t.fast.Get(key); ok {
		return r, true
	}
	r, ok := t.slow.Get(key)
	if ok {
		t.slowHits.Add(1)
		t.fast.Put(key, r)
	} else {
		t.slowMisses.Add(1)
	}
	return r, ok
}

// Put implements Cache.
func (t *tiered) Put(key string, r mac.Result) {
	t.fast.Put(key, r)
	t.slow.Put(key, r)
}

// Stats implements StatsReporter: the mem tier's own traffic plus the
// disk tier's hits/misses (a disk hit implies a mem miss that was then
// promoted).
func (t *tiered) Stats() CacheStats {
	s := t.fast.Stats()
	s.DiskHits = t.slowHits.Load()
	s.DiskMisses = t.slowMisses.Load()
	return s
}
