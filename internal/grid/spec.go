package grid

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/multicell"
	"charisma/internal/run"
)

// Kinds of serializable jobs.
const (
	// KindScenario is a single-cell core.Scenario run.
	KindScenario = "scenario"
	// KindMulticell is a multi-cell deployment run.
	KindMulticell = "multicell"
)

// JobSpec declares one simulation as data: exactly one of the payload
// pointers is set, matching Kind. Both payloads are plain parameter structs
// (ints, floats, strings, float slices), so a spec round-trips losslessly
// through its codec and can cross a process boundary — unlike run.Job's
// Custom closure, which this type replaces as the plan-transport currency.
//
// The canonical encoding is JSON with the fixed struct field order and
// Go's shortest-round-trip float formatting; Hash is SHA-256 over it.
// Specs are hashed literally: two specs that only differ in defaulted
// zero fields run identically but hash differently, which costs a cache
// miss, never a wrong hit.
type JobSpec struct {
	Kind      string
	Scenario  *core.Scenario    `json:",omitempty"`
	Multicell *multicell.Params `json:",omitempty"`
}

// ScenarioSpec wraps a single-cell scenario into a spec.
func ScenarioSpec(sc core.Scenario) JobSpec {
	return JobSpec{Kind: KindScenario, Scenario: &sc}
}

// MulticellSpec wraps a multi-cell deployment into a spec. It supersedes
// multicell.PlanJob for transport: the deployment travels as parameters
// and is normalized the same way on whichever worker runs it.
func MulticellSpec(p multicell.Params) JobSpec {
	return JobSpec{Kind: KindMulticell, Multicell: &p}
}

// Validate checks the spec's shape: a known kind carrying exactly its own
// payload. Deep parameter validation happens when the payload runs (the
// scenario and deployment types own their invariants).
func (s JobSpec) Validate() error {
	switch s.Kind {
	case KindScenario:
		if s.Scenario == nil {
			return errors.New("grid: scenario spec without scenario payload")
		}
		if s.Multicell != nil {
			return errors.New("grid: scenario spec with multicell payload")
		}
	case KindMulticell:
		if s.Multicell == nil {
			return errors.New("grid: multicell spec without deployment payload")
		}
		if s.Scenario != nil {
			return errors.New("grid: multicell spec with scenario payload")
		}
	default:
		return fmt.Errorf("grid: unknown job kind %q", s.Kind)
	}
	return nil
}

// BaseSeed returns the seed replications derive from via run.RepSeed.
func (s JobSpec) BaseSeed() int64 {
	switch {
	case s.Scenario != nil:
		return s.Scenario.Seed
	case s.Multicell != nil:
		return s.Multicell.Seed
	}
	return 0
}

// Encode returns the canonical JSON encoding of the spec.
func (s JobSpec) Encode() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("grid: encode spec: %w", err)
	}
	return b, nil
}

// DecodeSpec parses a canonical encoding. It is strict about syntax —
// unknown fields and trailing data are rejected — but does not apply
// semantic validation; call Validate before running a decoded spec.
func DecodeSpec(b []byte) (JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, fmt.Errorf("grid: decode spec: %w", err)
	}
	if dec.More() {
		return JobSpec{}, errors.New("grid: trailing data after spec")
	}
	return s, nil
}

// specMagic frames the binary envelope ("CHARISMA GRID spec v1").
var specMagic = []byte("CHGRID1\x00")

// MarshalBinary wraps the canonical encoding in a length-prefixed binary
// envelope (magic, big-endian length, payload) for raw-socket transports
// and on-disk spec files.
func (s JobSpec) MarshalBinary() ([]byte, error) {
	body, err := s.Encode()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(specMagic)+4+len(body))
	buf = append(buf, specMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	return append(buf, body...), nil
}

// UnmarshalBinary parses a binary envelope produced by MarshalBinary.
func (s *JobSpec) UnmarshalBinary(b []byte) error {
	if len(b) < len(specMagic)+4 || !bytes.Equal(b[:len(specMagic)], specMagic) {
		return errors.New("grid: bad spec envelope")
	}
	n := binary.BigEndian.Uint32(b[len(specMagic) : len(specMagic)+4])
	rest := b[len(specMagic)+4:]
	if uint64(len(rest)) != uint64(n) {
		return errors.New("grid: spec envelope length mismatch")
	}
	sp, err := DecodeSpec(rest)
	if err != nil {
		return err
	}
	*s = sp
	return nil
}

// Hash returns the spec's stable content hash: SHA-256 over the canonical
// encoding, hex-encoded.
func (s JobSpec) Hash() (string, error) {
	b, err := s.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// RepKey is the content address of one replication's result:
// hash(JobSpec, RepSeed). Growing a sweep's replication count only ever
// adds new keys, and every execution path — loopback, remote worker, warm
// cache — derives the same key for the same work.
func RepKey(specHash string, repSeed int64) string {
	h := sha256.New()
	io.WriteString(h, specHash)
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], uint64(repSeed))
	h.Write(seed[:])
	return hex.EncodeToString(h.Sum(nil))
}

// RunRep executes replication rep of the spec through the existing engine,
// under the seed run.RepSeed(BaseSeed, rep) — exactly the discipline
// run.Runner applies, so grid results are byte-identical to in-process
// plans. Multicell results are normalized to per-cell-frame equivalents,
// matching multicell.PlanJob, so the generic replication fold recomputes
// throughput consistently.
func (s JobSpec) RunRep(rep int) (mac.Result, error) {
	if err := s.Validate(); err != nil {
		return mac.Result{}, err
	}
	seed := run.RepSeed(s.BaseSeed(), rep)
	switch s.Kind {
	case KindScenario:
		sc := *s.Scenario
		sc.Seed = seed
		res, err := sc.Run()
		if err != nil {
			return mac.Result{}, fmt.Errorf("grid: scenario (%s) rep %d: %w", sc.Protocol, rep, err)
		}
		return res, nil
	default: // KindMulticell, by Validate
		p := *s.Multicell
		p.Seed = seed
		r, err := multicell.Run(p)
		if err != nil {
			return mac.Result{}, fmt.Errorf("grid: multicell (%s) rep %d: %w", p.Protocol, rep, err)
		}
		if cells := len(r.PerCell); cells > 0 {
			r.Result.Frames /= float64(cells)
		}
		return r.Result, nil
	}
}
