module charisma

go 1.24
