package charisma

import (
	"context"
	"time"

	"charisma/internal/multicell"
)

// MultiCellOptions configures the §6 multi-cell/handoff extension: several
// coordinated cells, each running the same uplink protocol, with nomadic
// users attaching to the base station with the best long-term channel.
type MultiCellOptions struct {
	// Cells is the number of base stations (default 2).
	Cells int
	// Protocol is the per-cell MAC (default CHARISMA; RMAV is not
	// supported because its variable frames cannot be cell-synchronized).
	Protocol Protocol
	// VoiceUsers and DataUsers are deployment-wide totals.
	VoiceUsers int
	DataUsers  int
	// WithRequestQueue enables each cell's BS request queue.
	WithRequestQueue bool
	// HandoffHysteresisDB is the long-term CSI advantage (amplitude dB)
	// required before switching base stations (default 4).
	HandoffHysteresisDB float64
	// HandoffPeriod is how often attachments are re-evaluated (default
	// 100 ms).
	HandoffPeriod time.Duration
	// DisableHandoff freezes the initial attachment (the baseline).
	DisableHandoff bool
	// Workers bounds the goroutines advancing cells concurrently between
	// handoff decision epochs (default: one per CPU core). Results are
	// byte-identical for any worker count.
	Workers int
	// ShadowSigmaDB widens the per-cell log-normal shadowing (default 4).
	ShadowSigmaDB float64
	// SpeedKmh is the mobile speed (default 50, the paper's mean; Doppler
	// spread scales with it), as in Options.
	SpeedKmh float64
	// MeanSNRdB overrides the average link SNR, as in Options.
	MeanSNRdB float64
	// Seed, Warmup, Duration, Replications as in Options.
	Seed         int64
	Warmup       time.Duration
	Duration     time.Duration
	Replications int
}

// MultiCellResult extends Result with handoff statistics.
type MultiCellResult struct {
	Result
	// Handoffs is the number of executed base-station switches.
	Handoffs uint64
	// PerCellLossRates lists each cell's own voice loss rate.
	PerCellLossRates []float64
}

// RunMultiCell executes a multi-cell deployment (paper §6, future work:
// "when a nomadic user travels into the range of some other base stations,
// to which new base station should the user attach, from a channel quality
// point of view?").
func RunMultiCell(o MultiCellOptions) (MultiCellResult, error) {
	return RunMultiCellContext(context.Background(), o)
}

// RunMultiCellContext is RunMultiCell with cancellation: a cancelled
// context stops pending replications and returns the context's error.
func RunMultiCellContext(ctx context.Context, o MultiCellOptions) (MultiCellResult, error) {
	p := multicell.DefaultParams()
	if o.Cells > 0 {
		p.Cells = o.Cells
	}
	if o.Protocol != "" {
		p.Protocol = string(o.Protocol)
	}
	p.NumVoice = o.VoiceUsers
	p.NumData = o.DataUsers
	p.UseQueue = o.WithRequestQueue
	if o.HandoffHysteresisDB > 0 {
		p.HysteresisDB = o.HandoffHysteresisDB
	}
	if o.HandoffPeriod > 0 {
		frames := int(o.HandoffPeriod / (2500 * time.Microsecond))
		if frames < 1 {
			frames = 1
		}
		p.DecisionPeriodFrames = frames
	}
	p.DisableHandoff = o.DisableHandoff
	p.Workers = o.Workers
	if o.ShadowSigmaDB > 0 {
		p.Channel.ShadowSigmaDB = o.ShadowSigmaDB
	}
	if o.SpeedKmh > 0 {
		p.Channel.SpeedKmh = o.SpeedKmh
	}
	if o.MeanSNRdB != 0 {
		p.PHY.MeanSNRdB = o.MeanSNRdB
	}
	if o.Seed != 0 {
		p.Seed = o.Seed
	}
	if o.Warmup > 0 {
		p.WarmupSec = o.Warmup.Seconds()
	}
	if o.Duration > 0 {
		p.DurationSec = o.Duration.Seconds()
	}
	r, err := multicell.RunReplicated(ctx, p, o.Replications)
	if err != nil {
		return MultiCellResult{}, err
	}
	out := MultiCellResult{Result: fromInternal(r.Result), Handoffs: r.Handoffs}
	for _, c := range r.PerCell {
		out.PerCellLossRates = append(out.PerCellLossRates, c.VoiceLossRate)
	}
	return out, nil
}
