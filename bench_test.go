// Benchmark harness: one target per table/figure of the paper's evaluation
// plus the DESIGN.md §5 ablations and substrate micro-benchmarks.
//
// The figure benches regenerate each panel at reduced effort (short
// measurement windows, thinned sweeps) so `go test -bench=.` stays in CI
// time while preserving the shape of every result; the cmd/charisma-
// experiments binary runs the same panels at publication effort. Loss
// rates, capacities and delays are exported through b.ReportMetric so the
// shapes are visible directly in the benchmark output.
package charisma

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"charisma/internal/channel"
	"charisma/internal/core"
	"charisma/internal/experiments"
	"charisma/internal/mac"
	"charisma/internal/multicell"
	"charisma/internal/phy"
	"charisma/internal/rng"
	"charisma/internal/run"
	"charisma/internal/sim"
	"charisma/internal/traffic"
)

// benchRunConfig trims each sweep point to 2 measured seconds.
func benchRunConfig() experiments.RunConfig {
	return experiments.RunConfig{Seed: 1, WarmupSec: 0.5, DurationSec: 2}
}

// benchPanel regenerates one Fig. 11/12/13 panel at bench effort and
// reports a representative shape metric.
func benchPanel(b *testing.B, spec experiments.PanelSpec) {
	b.Helper()
	rc := benchRunConfig()
	for i := 0; i < b.N; i++ {
		panel, err := experiments.RunPanel(context.Background(), spec, rc)
		if err != nil {
			b.Fatal(err)
		}
		if spec.Figure == 11 {
			caps := experiments.Capacity(panel, 0.01)
			if c := caps[core.ProtoCharisma]; c == c { // skip NaN
				b.ReportMetric(c, "charisma-capacity-users")
			}
		} else {
			for _, s := range panel.Series {
				if s.Label == core.ProtoCharisma && len(s.Y) > 0 {
					b.ReportMetric(s.Y[len(s.Y)-1], "charisma-final-y")
				}
			}
		}
	}
}

// --- Table 1 -------------------------------------------------------------

func BenchmarkTable1Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Fig. 5 and Fig. 7 (model figures) ------------------------------------

func BenchmarkFig5FadingTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := experiments.FadingTrace(1, 2.0)
		if len(tr) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkFig7ABICMCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.ABICMCurves(181)
		if len(pts) != 181 {
			b.Fatal("bad curve")
		}
	}
}

// --- Fig. 11: voice packet loss panels (a)–(f) -----------------------------

func BenchmarkFig11a_VoiceLoss_NoQueue_Nd0(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig11a", Figure: 11, Fixed: 0, Queue: false})
}

func BenchmarkFig11b_VoiceLoss_Queue_Nd0(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig11b", Figure: 11, Fixed: 0, Queue: true})
}

func BenchmarkFig11c_VoiceLoss_NoQueue_Nd10(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig11c", Figure: 11, Fixed: 10, Queue: false})
}

func BenchmarkFig11d_VoiceLoss_Queue_Nd10(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig11d", Figure: 11, Fixed: 10, Queue: true})
}

func BenchmarkFig11e_VoiceLoss_NoQueue_Nd20(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig11e", Figure: 11, Fixed: 20, Queue: false})
}

func BenchmarkFig11f_VoiceLoss_Queue_Nd20(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig11f", Figure: 11, Fixed: 20, Queue: true})
}

// --- Fig. 12: data throughput panels (a)–(f) -------------------------------

func BenchmarkFig12a_DataThroughput_NoQueue_Nv0(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig12a", Figure: 12, Fixed: 0, Queue: false})
}

func BenchmarkFig12b_DataThroughput_Queue_Nv0(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig12b", Figure: 12, Fixed: 0, Queue: true})
}

func BenchmarkFig12c_DataThroughput_NoQueue_Nv10(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig12c", Figure: 12, Fixed: 10, Queue: false})
}

func BenchmarkFig12d_DataThroughput_Queue_Nv10(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig12d", Figure: 12, Fixed: 10, Queue: true})
}

func BenchmarkFig12e_DataThroughput_NoQueue_Nv20(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig12e", Figure: 12, Fixed: 20, Queue: false})
}

func BenchmarkFig12f_DataThroughput_Queue_Nv20(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig12f", Figure: 12, Fixed: 20, Queue: true})
}

// --- Fig. 13: data delay panels (a)–(f) ------------------------------------

func BenchmarkFig13a_DataDelay_NoQueue_Nv0(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig13a", Figure: 13, Fixed: 0, Queue: false})
}

func BenchmarkFig13b_DataDelay_Queue_Nv0(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig13b", Figure: 13, Fixed: 0, Queue: true})
}

func BenchmarkFig13c_DataDelay_NoQueue_Nv10(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig13c", Figure: 13, Fixed: 10, Queue: false})
}

func BenchmarkFig13d_DataDelay_Queue_Nv10(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig13d", Figure: 13, Fixed: 10, Queue: true})
}

func BenchmarkFig13e_DataDelay_NoQueue_Nv20(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig13e", Figure: 13, Fixed: 20, Queue: false})
}

func BenchmarkFig13f_DataDelay_Queue_Nv20(b *testing.B) {
	benchPanel(b, experiments.PanelSpec{ID: "fig13f", Figure: 13, Fixed: 20, Queue: true})
}

// --- §5.3.3: mobile speed sensitivity --------------------------------------

func BenchmarkSpeedSweep(b *testing.B) {
	rc := benchRunConfig()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.SpeedSweep(context.Background(), 60, []float64{10, 50, 80}, rc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*pts[len(pts)-1].VoiceLoss, "loss-at-80kmh-%")
	}
}

// --- Ablations (DESIGN.md §5) ----------------------------------------------

func ablationCell(mutate func(*core.Scenario)) (float64, error) {
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice = 90
	sc.WarmupSec = 0.5
	sc.DurationSec = 2
	if mutate != nil {
		mutate(&sc)
	}
	r, err := sc.Run()
	return r.VoiceLossRate, err
}

// BenchmarkAblationPriorityWeights isolates the CSI term of eq. (2):
// alpha=0 degrades CHARISMA to channel-blind urgency scheduling.
func BenchmarkAblationPriorityWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, err := ablationCell(nil)
		if err != nil {
			b.Fatal(err)
		}
		blind, err := ablationCell(func(sc *core.Scenario) { sc.MAC.Charisma.Alpha = 0 })
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*with, "loss-csi-%")
		b.ReportMetric(100*blind, "loss-blind-%")
	}
}

// BenchmarkAblationCSIRefresh disables the §4.4 polling subframe.
func BenchmarkAblationCSIRefresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, err := ablationCell(nil)
		if err != nil {
			b.Fatal(err)
		}
		without, err := ablationCell(func(sc *core.Scenario) { sc.MAC.Charisma.DisableCSIRefresh = true })
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*with, "loss-polling-%")
		b.ReportMetric(100*without, "loss-nopolling-%")
	}
}

// BenchmarkAblationRequestSlots sweeps the contention opportunity count —
// the design axis that explains RMAV's instability.
func BenchmarkAblationRequestSlots(b *testing.B) {
	for _, nr := range []int{2, 5, 8} {
		nr := nr
		b.Run(fmt.Sprintf("Nr=%d", nr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loss, err := ablationCell(func(sc *core.Scenario) {
					// Keep the frame budget: request + pilot minislots
					// together stay at 10.
					sc.MAC.Geometry.CharismaRequestSlots = nr
					sc.MAC.Geometry.CharismaPilotSlots = 10 - nr
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*loss, "loss-%")
			}
		})
	}
}

// BenchmarkAblationVoiceOffset removes the static voice priority offset V.
func BenchmarkAblationVoiceOffset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, err := ablationCell(func(sc *core.Scenario) { sc.NumData = 20 })
		if err != nil {
			b.Fatal(err)
		}
		without, err := ablationCell(func(sc *core.Scenario) {
			sc.NumData = 20
			sc.MAC.Charisma.VoiceOffset = 0
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*with, "loss-offsetV-%")
		b.ReportMetric(100*without, "loss-noOffset-%")
	}
}

// BenchmarkAblationFairness compares eq. (2)'s absolute CSI ranking with
// the §6 channel-capacity-fair variant (FairnessExponent=1).
func BenchmarkAblationFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		absolute, err := ablationCell(nil)
		if err != nil {
			b.Fatal(err)
		}
		fair, err := ablationCell(func(sc *core.Scenario) {
			sc.MAC.Charisma.FairnessExponent = 1
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*absolute, "loss-eq2-%")
		b.ReportMetric(100*fair, "loss-fair-%")
	}
}

// BenchmarkMultiCellHandoff quantifies the §6 handoff extension: long-term
// CSI attachment vs static attachment at two near-capacity cells.
func BenchmarkMultiCellHandoff(b *testing.B) {
	run := func(disable bool) float64 {
		r, err := RunMultiCell(MultiCellOptions{
			VoiceUsers:     160,
			ShadowSigmaDB:  8,
			DisableHandoff: disable,
			Seed:           1,
			Warmup:         500 * time.Millisecond,
			Duration:       3 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		return r.VoiceLossRate
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(100*run(false), "loss-handoff-%")
		b.ReportMetric(100*run(true), "loss-static-%")
	}
}

// BenchmarkAblationQueueCap varies the selection-diversity pool depth
// (§5.3.2).
func BenchmarkAblationQueueCap(b *testing.B) {
	for _, cap := range []int{4, 32, 128} {
		cap := cap
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loss, err := ablationCell(func(sc *core.Scenario) {
					sc.UseQueue = true
					sc.MAC.QueueCap = cap
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*loss, "loss-%")
			}
		})
	}
}

// --- substrate micro-benchmarks --------------------------------------------

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(sim.Time(j%97), func(*sim.Engine) {})
		}
		e.Run()
	}
}

// BenchmarkEngineSchedule measures the steady-state schedule/fire cycle on
// one long-lived engine — the regime every simulation run is in after its
// first frame. The index-arena engine must report 0 allocs/op here; the
// old container/heap engine paid one event allocation per Schedule.
func BenchmarkEngineSchedule(b *testing.B) {
	e := sim.NewEngine()
	h := func(*sim.Engine) {}
	// Grow arena and heap to their high-water mark before timing.
	for j := 0; j < 1000; j++ {
		e.Schedule(e.Now()+sim.Time(j%97), h)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1000; j++ {
			e.Schedule(e.Now()+sim.Time(j%97), h)
		}
		e.Run()
	}
}

// BenchmarkEngineScheduleEvery measures the recurring frame driver: one
// event slot re-armed per tick, the pattern Scenario.Run uses for the
// TDMA cadence.
func BenchmarkEngineScheduleEvery(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		e.ScheduleEvery(e.Now(), func(*sim.Engine) sim.Time {
			n++
			if n >= 1000 {
				return -1
			}
			return 800
		})
		e.Run()
	}
}

// BenchmarkEngineStepBatch measures the equal-timestamp cohort dispatch
// in its mass-cohort regime: 256 one-shot events packed onto 2 distinct
// timestamps, so every StepBatch drains a cohort dominating the heap
// through the detach-and-reheapify path. Steady state must be
// allocation-free — the batch and seq-sort scratch live on the engine.
func BenchmarkEngineStepBatch(b *testing.B) {
	e := sim.NewEngine()
	h := func(*sim.Engine) {}
	fill := func() {
		for j := 0; j < 256; j++ {
			e.Schedule(e.Now()+sim.Time(1+j%2), h)
		}
	}
	drain := func() {
		for e.Pending() > 0 {
			e.StepBatch()
		}
	}
	fill()
	drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
		drain()
	}
}

// BenchmarkScenarioRun tracks the end-to-end allocation footprint of a
// complete (short) scenario run — the unit the replication runner fans
// out by the thousand.
func BenchmarkScenarioRun(b *testing.B) {
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice, sc.NumData = 30, 5
	sc.WarmupSec, sc.DurationSec = 0.25, 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicatedSweep exercises the replication-aware runner the way
// the figure sweeps use it: protocols × loads × replications as one flat
// concurrent plan.
func BenchmarkReplicatedSweep(b *testing.B) {
	var scs []core.Scenario
	for _, p := range []string{core.ProtoCharisma, core.ProtoDTDMAFR} {
		for _, nv := range []int{20, 40} {
			sc := core.DefaultScenario(p)
			sc.NumVoice = nv
			sc.WarmupSec, sc.DurationSec = 0.25, 1
			scs = append(scs, sc)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := run.Replicated(context.Background(), scs, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rs[0].VoiceLossRate, "charisma-loss-%")
	}
}

// Package-level benchmark sinks: results are stored where the compiler can
// see them escape, so dead-store elimination cannot elide the measured
// work. Every micro-benchmark whose result would otherwise be discarded
// writes through one of these.
var (
	benchSinkMode phy.Mode
	benchSinkF    float64
)

func BenchmarkFadingAdvance(b *testing.B) {
	f := channel.NewFading(channel.DefaultParams(), rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Advance(800)
	}
	// Read the advanced state through the sink so the loop is not dead.
	benchSinkF = f.Amplitude()
}

func BenchmarkChannelBankFrame(b *testing.B) {
	bank := channel.NewBank(100, channel.DefaultParams(), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Advance(800)
	}
	for u := 0; u < bank.Size(); u++ {
		benchSinkF += bank.User(u).Amplitude()
	}
}

// BenchmarkChannelBankQuery measures the per-query amplitude cost the MAC
// schedulers pay between advances — memoized per step on the plane, where
// the scalar implementation re-paid a dB→linear exp plus a Hypot per call.
func BenchmarkChannelBankQuery(b *testing.B) {
	bank := channel.NewBank(100, channel.DefaultParams(), 1)
	bank.Advance(800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := 0.0
		for u := 0; u < 100; u++ {
			s += bank.User(u).Amplitude()
		}
		benchSinkF = s
	}
}

// BenchmarkChannelReplayCatchUp measures the lazy-replay catch-up of a
// long-idle station: 400 deferred frames (one second) settled in one
// batched AdvanceSteps call.
func BenchmarkChannelReplayCatchUp(b *testing.B) {
	f := channel.NewFading(channel.DefaultParams(), rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AdvanceSteps(800, 400)
	}
	benchSinkF = f.Amplitude()
}

func BenchmarkModeSelection(b *testing.B) {
	a := phy.NewAdaptive(phy.DefaultParams())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		amp := 0.01 + float64(i%100)*0.05
		benchSinkMode = a.ModeForAmplitude(amp)
	}
}

// BenchmarkFrame — per-frame cost vs active-vs-total population at 10⁴
// stations — lives beside the station registry it exercises:
// internal/mac/registry_invariant_test.go.

// --- population scaling: million-station cells -----------------------------

// parkedLazyCell builds an n-station deferred population with a common
// far-future first wake — the cheapest possible cell — and returns it with
// the measured resident heap per station (GC-settled delta across the
// build).
func parkedLazyCell(b *testing.B, n int) (*mac.System, float64) {
	b.Helper()
	fw := make([]sim.Time, n)
	for i := range fw {
		fw[i] = 1 << 40
	}
	pop := &mac.LazyPopulation{
		FirstWake: fw,
		Materialize: func(slot int) (*traffic.VoiceSource, *traffic.DataSource, *channel.Fading) {
			b.Fatalf("parked station %d materialized", slot)
			return nil, nil, nil
		},
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	sys, err := mac.NewSystemLazy(mac.DefaultConfig(), phy.NewAdaptive(phy.DefaultParams()), n, rng.New(1), pop)
	if err != nil {
		b.Fatal(err)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return sys, float64(after.HeapAlloc-before.HeapAlloc) / float64(n)
}

// BenchmarkIdleCellPopulation pins the population-scaling promise of the
// timer wheel + SoA slab layout: instantiating an idle cell costs O(tens
// of bytes) per station (B/station metric), and the per-frame cost of
// running it idle is population-independent — the 10⁶ row must stay within
// a small constant of the 10⁴ row (ns/frame metric), because a frame
// touches only the wheel's current granule and the (empty) active buckets,
// never the parked population.
func BenchmarkIdleCellPopulation(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sys, perStation := parkedLazyCell(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.BeginFrame()
				sys.EndFrame(sys.FrameDuration())
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/frame")
			b.ReportMetric(perStation, "B/station")
			runtime.KeepAlive(sys)
		})
	}
}

// BenchmarkIdleWakeCell measures the steady-state idle-wake cycle at 10⁵
// stations: 2000 voice stations cycle talkspurt→idle→wheel-wake while the
// rest stay parked. Part of the zero-alloc gate in scripts/bench.sh — after
// warmup the wake path (collect, materialize-free advance, re-arm,
// cascade) must run allocation-free.
func BenchmarkIdleWakeCell(b *testing.B) {
	const n, active = 100_000, 2000
	vp := traffic.DefaultVoiceParams()
	voices := make([]*traffic.VoiceSource, active)
	fw := make([]sim.Time, n)
	for i := range fw {
		if i < active {
			voices[i] = traffic.NewVoice(vp, rng.DeriveIndexed(41, "benchv", i), 0)
			fw[i] = voices[i].NextEventAt()
		} else {
			fw[i] = 1 << 40
		}
	}
	pop := &mac.LazyPopulation{
		FirstWake: fw,
		Materialize: func(slot int) (*traffic.VoiceSource, *traffic.DataSource, *channel.Fading) {
			return voices[slot], nil, nil
		},
	}
	sys, err := mac.NewSystemLazy(mac.DefaultConfig(), phy.NewAdaptive(phy.DefaultParams()), n, rng.New(2), pop)
	if err != nil {
		b.Fatal(err)
	}
	// Warm past one level-1 wheel revolution (buckets, scratch slices) AND
	// past every source's first long unserved talkspurt: a voice buffer
	// only reaches its terminal capacity after ~65 packets accumulate in
	// one talkspurt, which takes ~1.3 simulated seconds of talking. 32000
	// frames ≈ 32 talk/silence cycles leaves no straggler among 2000
	// sources, after which the frame path is allocation-free.
	for f := 0; f < 32000; f++ {
		sys.BeginFrame()
		sys.EndFrame(sys.FrameDuration())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.BeginFrame()
		sys.EndFrame(sys.FrameDuration())
	}
}

// BenchmarkMulticellSharded measures an 8-cell deployment advancing on 1
// worker vs one per core: cells synchronize only at handoff decision
// epochs, so wall-clock should scale down with cores while the numbers
// stay byte-identical (TestShardedDeterminismAcrossWorkerCounts).
func BenchmarkMulticellSharded(b *testing.B) {
	for _, w := range []int{1, runtime.NumCPU()} {
		w := w
		b.Run(fmt.Sprintf("cells=8/workers=%d", w), func(b *testing.B) {
			p := multicell.DefaultParams()
			p.Cells = 8
			p.NumVoice = 320
			p.Workers = w
			p.WarmupSec, p.DurationSec = 0.25, 1.5
			for i := 0; i < b.N; i++ {
				// Run consumes the deployment, so it is rebuilt per
				// iteration — but construction (2.5k station clones,
				// fading init) must not dilute the sharded frame loop
				// this benchmark compares across worker counts.
				b.StopTimer()
				d, err := multicell.New(p)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := d.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestActiveFrameSteadyStateAllocs is the allocs/op regression guard on
// the *active*-cell frame path, complementing the idle-cell
// TestFrameHotPathAllocs in internal/mac: once the request free list and
// the schedulers' candidate scratch reach their high-water marks, a frame
// of every protocol — with and without the BS request queue — must not
// allocate at all.
func TestActiveFrameSteadyStateAllocs(t *testing.T) {
	for _, p := range core.Protocols() {
		for _, q := range []bool{false, true} {
			sc := core.DefaultScenario(p)
			sc.NumVoice, sc.NumData = 60, 10
			sc.UseQueue = q
			sys, proto, err := sc.Build()
			if err != nil {
				t.Fatal(err)
			}
			proto.Init(sys)
			for f := 0; f < 2000; f++ {
				sys.BeginFrame()
				sys.EndFrame(proto.RunFrame(sys))
			}
			avg := testing.AllocsPerRun(2000, func() {
				sys.BeginFrame()
				sys.EndFrame(proto.RunFrame(sys))
			})
			if avg != 0 {
				t.Errorf("%s queue=%v: %.4f allocs/frame at steady state, want 0", p, q, avg)
			}
		}
	}
}

// TestObsOffHotPathAllocs is the observability cost gate: with no
// observer attached (no trace recorder, no flight recorder) the
// always-compiled-in obs.SimCounters must be invisible — the
// steady-state frame path stays at exactly 0 allocs/op while the
// counters demonstrably advance. If instrumentation ever grows an
// allocation or an atomic on the frame path, this fails before any
// golden or bench gate does.
func TestObsOffHotPathAllocs(t *testing.T) {
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice, sc.NumData = 60, 10
	sys, proto, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	proto.Init(sys)
	for f := 0; f < 2000; f++ {
		sys.BeginFrame()
		sys.EndFrame(proto.RunFrame(sys))
	}
	before := *sys.Obs()
	avg := testing.AllocsPerRun(2000, func() {
		sys.BeginFrame()
		sys.EndFrame(proto.RunFrame(sys))
	})
	if avg != 0 {
		t.Errorf("%.4f allocs/frame with live counters, want 0", avg)
	}
	after := *sys.Obs()
	if after.WheelArms <= before.WheelArms {
		t.Error("WheelArms did not advance across 2000 active frames")
	}
	if after.CandHits+after.CandMisses <= before.CandHits+before.CandMisses {
		t.Error("candidate-cache counters did not advance")
	}
}

// obsBenchSink keeps the per-frame counter read in BenchmarkObsOffFrame
// from being optimized away.
var obsBenchSink uint64

// BenchmarkObsOffFrame is BenchmarkCharismaFrame plus a counter read per
// frame — the number the zero-alloc gate in scripts/bench.sh checks to
// prove observability rides along for free.
func BenchmarkObsOffFrame(b *testing.B) {
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice, sc.NumData = 60, 10
	sys, proto, err := sc.Build()
	if err != nil {
		b.Fatal(err)
	}
	proto.Init(sys)
	for f := 0; f < 2000; f++ {
		sys.BeginFrame()
		sys.EndFrame(proto.RunFrame(sys))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sys.BeginFrame()
		sys.EndFrame(proto.RunFrame(sys))
		sink += sys.Obs().WheelArms
	}
	obsBenchSink = sink
}

func BenchmarkCharismaFrame(b *testing.B) {
	sc := core.DefaultScenario(core.ProtoCharisma)
	sc.NumVoice, sc.NumData = 60, 10
	sys, proto, err := sc.Build()
	if err != nil {
		b.Fatal(err)
	}
	proto.Init(sys)
	// Warm up past the transient: the request free list and the
	// scheduler's candidate scratch reach their high-water marks within
	// a few talkspurt cycles, after which the frame path is
	// allocation-free (the zero-alloc gate in scripts/bench.sh measures
	// exactly this steady state).
	for f := 0; f < 2000; f++ {
		sys.BeginFrame()
		sys.EndFrame(proto.RunFrame(sys))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.BeginFrame()
		sys.EndFrame(proto.RunFrame(sys))
	}
}

func BenchmarkSimulatedSecondAllProtocols(b *testing.B) {
	for _, p := range core.Protocols() {
		p := p
		b.Run(p, func(b *testing.B) {
			sc := core.DefaultScenario(p)
			sc.NumVoice, sc.NumData = 50, 10
			sys, proto, err := sc.Build()
			if err != nil {
				b.Fatal(err)
			}
			proto.Init(sys)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				limit := sys.Now() + sim.Second
				for sys.Now() < limit {
					sys.BeginFrame()
					sys.EndFrame(proto.RunFrame(sys))
				}
			}
		})
	}
}

// Guard: the bench file shares the package with the public API; keep the
// compile-time references honest.
var (
	_ = Options{}
	_ = mac.KindVoice
	_ = time.Second
)
