package charisma

import (
	"time"

	"charisma/internal/channel"
	"charisma/internal/experiments"
	"charisma/internal/sim"
)

// FadingPoint is one sample of a synthetic channel trace (the paper's
// Fig. 5: fast Rayleigh fading superimposed on log-normal shadowing).
type FadingPoint struct {
	At time.Duration
	// AmplitudeDB is the combined fading amplitude c(t) in dB.
	AmplitudeDB float64
	// ShadowDB is the long-term local mean component in dB.
	ShadowDB float64
}

// FadingTrace synthesizes a combined-fading sample path at the given mobile
// speed, sampled once per TDMA frame (2.5 ms).
func FadingTrace(seed int64, duration time.Duration, speedKmh float64) []FadingPoint {
	p := channel.DefaultParams()
	if speedKmh > 0 {
		p.SpeedKmh = speedKmh
	}
	dt := sim.FromMilliseconds(2.5)
	n := int(sim.FromSeconds(duration.Seconds()) / dt)
	raw := channel.Trace(p, seed, dt, n)
	out := make([]FadingPoint, len(raw))
	for i, pt := range raw {
		out[i] = FadingPoint{
			At:          time.Duration(pt.T.Seconds() * float64(time.Second)),
			AmplitudeDB: pt.AmpDB,
			ShadowDB:    pt.ShadowDB,
		}
	}
	return out
}

// PHYPoint is one sample of the adaptive physical layer's operating curves
// (the paper's Fig. 7): which ABICM mode the modem selects at a given CSI,
// the normalized throughput it realizes, and the residual bit error rates.
type PHYPoint struct {
	// CSIAmplitude is the combined fading amplitude ĉ.
	CSIAmplitude float64
	// SNRdB is the corresponding instantaneous SNR.
	SNRdB float64
	// Mode is the selected ABICM mode index (0 = most robust).
	Mode int
	// Throughput is the normalized throughput η in bits/symbol (0 in
	// outage).
	Throughput float64
	// BER is the adaptive scheme's instantaneous bit error rate.
	BER float64
	// FixedBER is the fixed-rate encoder's BER at the same CSI.
	FixedBER float64
	// Outage marks CSI below the adaptation range.
	Outage bool
}

// PHYCurves samples the adaptive modem's Fig. 7 curves at n log-spaced CSI
// points.
func PHYCurves(n int) []PHYPoint {
	if n < 2 {
		n = 2
	}
	raw := experiments.ABICMCurves(n)
	out := make([]PHYPoint, len(raw))
	for i, pt := range raw {
		out[i] = PHYPoint{
			CSIAmplitude: pt.CSIAmp,
			SNRdB:        pt.SNRdB,
			Mode:         pt.Mode,
			Throughput:   pt.Eta,
			BER:          pt.BER,
			FixedBER:     pt.FixedBER,
			Outage:       pt.InOutage,
		}
	}
	return out
}
