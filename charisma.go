// Package charisma is a from-scratch Go reproduction of
//
//	Y.-K. Kwok and V. K. N. Lau, "A Novel Channel-Adaptive Uplink Access
//	Control Protocol for Nomadic Computing" (ICPP 2000; IEEE TPDS
//	13(11):1150–1165, 2002),
//
// including the proposed CHARISMA protocol, the five baseline protocols it
// is evaluated against (RAMA, RMAV, DRMA, D-TDMA/FR, D-TDMA/VR), and every
// substrate the evaluation depends on: a discrete-event simulator, the
// Rayleigh/log-normal burst-error channel model, the 6-mode adaptive
// physical layer, and the integrated voice/data traffic models.
//
// The public API is a thin facade over the internal simulation platform:
//
//	res, err := charisma.Run(charisma.Options{
//	    Protocol:   charisma.ProtocolCHARISMA,
//	    VoiceUsers: 80,
//	    DataUsers:  10,
//	    Duration:   30 * time.Second,
//	})
//	fmt.Println(res.VoiceLossRate, res.DataThroughputPerFrame)
//
// See README.md for the architecture and EXPERIMENTS.md for the
// reproduction of every table and figure.
package charisma

import (
	"context"
	"fmt"
	"time"

	"charisma/internal/core"
	"charisma/internal/grid"
	"charisma/internal/mac"
	"charisma/internal/sim"
)

// Protocol selects one of the six implemented uplink access control
// protocols.
type Protocol string

// The six protocols of the paper's evaluation (§3–§4).
const (
	// ProtocolCHARISMA is the paper's proposed channel-adaptive
	// reservation-based protocol.
	ProtocolCHARISMA Protocol = core.ProtoCharisma
	// ProtocolDTDMAVR is dynamic TDMA on a channel-adaptive PHY without
	// MAC/PHY interaction.
	ProtocolDTDMAVR Protocol = core.ProtoDTDMAVR
	// ProtocolDTDMAFR is classical dynamic TDMA on a fixed-rate PHY.
	ProtocolDTDMAFR Protocol = core.ProtoDTDMAFR
	// ProtocolDRMA is dynamic reservation multiple access.
	ProtocolDRMA Protocol = core.ProtoDRMA
	// ProtocolRAMA is resource auction multiple access.
	ProtocolRAMA Protocol = core.ProtoRAMA
	// ProtocolRMAV is reservation-based multiple access with variable
	// frame length.
	ProtocolRMAV Protocol = core.ProtoRMAV
)

// AllProtocols returns the six protocols in the paper's comparison order.
func AllProtocols() []Protocol {
	names := core.Protocols()
	out := make([]Protocol, len(names))
	for i, n := range names {
		out[i] = Protocol(n)
	}
	return out
}

// Options configures one simulation run. The zero value of every field is
// replaced by the paper's (reconstructed) Table 1 defaults.
type Options struct {
	// Protocol picks the access scheme (default CHARISMA).
	Protocol Protocol
	// VoiceUsers and DataUsers are the population sizes Nv and Nd.
	VoiceUsers int
	DataUsers  int
	// WithRequestQueue enables the base-station request queue (§4.5).
	WithRequestQueue bool
	// Seed makes the run reproducible (default 1). All protocols see
	// identical channel and traffic realizations for equal seeds.
	Seed int64
	// Replications is the number of independent replications pooled into
	// the result (default 1). Replication 0 runs the base seed — so one
	// replication reproduces the unreplicated run exactly — and each
	// further replication derives its own seed substream. With N ≥ 2 the
	// result's CI95 fields report across-replication Student-t intervals.
	Replications int
	// Workers bounds the worker pool replications run on (default: one
	// per CPU core). Worker count never changes the numbers — it is
	// purely a throughput knob.
	Workers int
	// CacheDir, when set, roots an on-disk content-addressed replication
	// cache: every (scenario, replication-seed) pair is simulated at most
	// once across runs, so repeating a run or growing Replications only
	// pays for the new replications.
	CacheDir string
	// TargetPrecision enables adaptive replication: the replication count
	// grows past Replications until the across-replication CI95
	// half-width of every headline metric is within TargetPrecision of
	// its mean (relative), or MaxReplications is reached. Zero keeps the
	// fixed Replications count.
	TargetPrecision float64
	// MaxReplications caps adaptive growth (default 64).
	MaxReplications int
	// Warmup is excluded from metrics (default 2 s); Duration is the
	// measurement window (default 30 s).
	Warmup   time.Duration
	Duration time.Duration
	// SpeedKmh is the mobile speed (default 50, the paper's mean;
	// Doppler spread scales with it).
	SpeedKmh float64
	// MeanSNRdB overrides the average link SNR (default 10 dB,
	// calibrated so the adaptive PHY averages twice the fixed PHY's
	// throughput).
	MeanSNRdB float64
	// Customize, when non-nil, receives the fully-populated internal
	// scenario for expert tweaks before the run.
	Customize func(*Scenario)
}

// Scenario aliases the internal scenario type for advanced configuration
// through Options.Customize.
type Scenario = core.Scenario

// Result carries the paper's performance metrics for one run.
type Result struct {
	// Protocol is the canonical protocol name.
	Protocol string
	// Frames is the measurement window in 2.5 ms frame equivalents.
	Frames float64

	// VoiceLossRate is Ploss (eq. 3): deadline drops plus transmission
	// errors over generated packets. VoiceDropRate and VoiceErrorRate
	// split it into its two components (§5.1).
	VoiceLossRate  float64
	VoiceDropRate  float64
	VoiceErrorRate float64
	VoiceGenerated uint64
	VoiceDelivered uint64

	// DataThroughputPerFrame is γ: data packets delivered per frame.
	DataThroughputPerFrame float64
	// MeanDataDelay is D_d: arrival to start of successful transmission.
	MeanDataDelay time.Duration
	DataGenerated uint64
	DataDelivered uint64

	// CollisionRate is the fraction of request opportunities lost to
	// collisions; InfoUtilization the used fraction of the information
	// subframe.
	CollisionRate   float64
	InfoUtilization float64

	// Replications is the number of independent replications pooled into
	// this result (1 unless Options.Replications asked for more).
	Replications int
	// VoiceLossCI95, DataThroughputCI95 and MeanDataDelayCI95 are
	// across-replication Student-t 95% confidence half-widths; all zero
	// for a single replication.
	VoiceLossCI95      float64
	DataThroughputCI95 float64
	MeanDataDelayCI95  time.Duration
}

func fromInternal(r mac.Result) Result {
	return Result{
		Protocol:               r.Protocol,
		Frames:                 r.Frames,
		VoiceLossRate:          r.VoiceLossRate,
		VoiceDropRate:          r.VoiceDropRate,
		VoiceErrorRate:         r.VoiceErrorRate,
		VoiceGenerated:         r.VoiceGenerated,
		VoiceDelivered:         r.VoiceDelivered,
		DataThroughputPerFrame: r.DataThroughputPerFrame,
		MeanDataDelay:          time.Duration(r.MeanDataDelaySec * float64(time.Second)),
		DataGenerated:          r.DataGenerated,
		DataDelivered:          r.DataDelivered,
		CollisionRate:          r.CollisionRate,
		InfoUtilization:        r.InfoUtilization,
		Replications:           r.Reps.Replications,
		VoiceLossCI95:          r.Reps.VoiceLossCI95,
		DataThroughputCI95:     r.Reps.DataThroughputCI95,
		MeanDataDelayCI95:      time.Duration(r.Reps.DataDelayCI95 * float64(time.Second)),
	}
}

func (o Options) scenario() (core.Scenario, error) {
	proto := o.Protocol
	if proto == "" {
		proto = ProtocolCHARISMA
	}
	sc := core.DefaultScenario(string(proto))
	sc.NumVoice = o.VoiceUsers
	sc.NumData = o.DataUsers
	sc.UseQueue = o.WithRequestQueue
	if o.Seed != 0 {
		sc.Seed = o.Seed
	}
	if o.Warmup > 0 {
		sc.WarmupSec = o.Warmup.Seconds()
	}
	if o.Duration > 0 {
		sc.DurationSec = o.Duration.Seconds()
	}
	if o.SpeedKmh > 0 {
		sc.Channel.SpeedKmh = o.SpeedKmh
	}
	if o.MeanSNRdB != 0 {
		sc.PHY.MeanSNRdB = o.MeanSNRdB
	}
	if o.Customize != nil {
		o.Customize(&sc)
	}
	if err := sc.Validate(); err != nil {
		return sc, err
	}
	return sc, nil
}

// Run executes one simulation — replicated across cores when
// Options.Replications asks for more than one run — and returns its
// (pooled) metrics.
func Run(o Options) (Result, error) {
	return RunContext(context.Background(), o)
}

// runScenarios executes scenarios on the sweep grid's in-process loopback
// transport: replications resolve against the (optional) content-addressed
// cache, grow adaptively when TargetPrecision asks for it, and merge in
// replication order — byte-identical to the plain replication runner.
func (o Options) runScenarios(ctx context.Context, scs []core.Scenario) ([]mac.Result, error) {
	points := make([]grid.Point, len(scs))
	for i, sc := range scs {
		points[i] = grid.Point{Spec: grid.ScenarioSpec(sc), Replications: o.Replications}
	}
	return grid.RunPoints(ctx, points, grid.DriveConfig{
		Cache:     grid.NewCache(o.CacheDir),
		Precision: grid.Precision{TargetRel: o.TargetPrecision, MaxReps: o.MaxReplications},
		Workers:   o.Workers,
	})
}

// RunContext is Run with cancellation: a cancelled context stops pending
// replications and returns the context's error.
func RunContext(ctx context.Context, o Options) (Result, error) {
	sc, err := o.scenario()
	if err != nil {
		return Result{}, err
	}
	rs, err := o.runScenarios(ctx, []core.Scenario{sc})
	if err != nil {
		return Result{}, err
	}
	return fromInternal(rs[0]), nil
}

// Compare runs the same cell configuration under several protocols (all of
// them when none are named) in parallel, against identical channel and
// traffic realizations — replication i of every protocol shares one sample
// path — and returns results in argument order.
func Compare(o Options, protocols ...Protocol) ([]Result, error) {
	return CompareContext(context.Background(), o, protocols...)
}

// CompareContext is Compare with cancellation.
func CompareContext(ctx context.Context, o Options, protocols ...Protocol) ([]Result, error) {
	if len(protocols) == 0 {
		protocols = AllProtocols()
	}
	scs := make([]core.Scenario, len(protocols))
	for i, p := range protocols {
		oi := o
		oi.Protocol = p
		sc, err := oi.scenario()
		if err != nil {
			return nil, fmt.Errorf("charisma: %s: %w", p, err)
		}
		scs[i] = sc
	}
	rs, err := o.runScenarios(ctx, scs)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = fromInternal(r)
	}
	return out, nil
}

// FrameDuration returns the air-interface frame duration (2.5 ms).
func FrameDuration() time.Duration {
	d := core.DefaultScenario(string(ProtocolCHARISMA)).MAC.Geometry.Duration()
	return time.Duration(d.Seconds() * float64(time.Second))
}

// internal reference so the sim package's clock constants stay part of the
// public contract documented here: one frame is 800 symbols at 320 kHz.
var _ = sim.Second
