// Golden byte-identity suite for the structure-of-arrays channel plane.
//
// The SoA refactor of internal/channel promises that every observable
// number — each fading sample, each protocol metric, each multicell
// aggregate — is byte-identical to the original scalar-object
// implementation. This file pins that contract: testdata/golden_results.json
// was recorded by running `go test -run TestGolden -update-golden` against
// the pre-refactor scalar reference, and every subsequent run must
// reproduce the recorded Float64 bit patterns exactly.
//
// Regenerating the file against a changed implementation is only legitimate
// when a deliberate model change (not a performance refactor) alters the
// sample paths; the commit doing so must say why.
package charisma

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"charisma/internal/channel"
	"charisma/internal/core"
	"charisma/internal/mac"
	"charisma/internal/multicell"
	"charisma/internal/rng"
	"charisma/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_results.json from the current implementation")

const goldenPath = "testdata/golden_results.json"

// goldenLines produces the full observation list: label=value pairs where
// every float is rendered as its IEEE-754 bit pattern, so comparison is
// bit-exact and immune to formatting.
func goldenLines(t testing.TB) []string {
	var out []string
	emitF := func(label string, v float64) {
		out = append(out, fmt.Sprintf("%s=0x%016x", label, math.Float64bits(v)))
	}
	emitU := func(label string, v uint64) {
		out = append(out, fmt.Sprintf("%s=%d", label, v))
	}

	const frameDur = 800 * sim.Time(1)

	// --- single fading process: amplitudes, components, delayed estimate ---
	f := channel.NewFading(channel.DefaultParams(), rng.Derive(1, "golden"))
	for i := 1; i <= 200; i++ {
		f.Advance(frameDur)
		if i%20 == 0 {
			emitF(fmt.Sprintf("fading/amp@%d", i), f.Amplitude())
		}
	}
	emitF("fading/shortTerm", f.ShortTerm())
	emitF("fading/longTerm", f.LongTerm())
	emitF("fading/longTermDB", f.LongTermDB())
	emitF("fading/gain", f.Gain())
	emitF("fading/prevAmp", f.MeasureEstimateDelayed(0, rng.Derive(2, "obs"), 0).Amp)

	// --- bank: interleaved full advances and per-user queries -------------
	bank := channel.NewBank(16, channel.DefaultParams(), 42)
	for i := 0; i < 50; i++ {
		bank.Advance(frameDur)
		if i == 24 {
			for u := 0; u < bank.Size(); u += 5 {
				emitF(fmt.Sprintf("bank/mid/u%d", u), bank.User(u).Amplitude())
			}
		}
	}
	for u := 0; u < bank.Size(); u++ {
		emitF(fmt.Sprintf("bank/end/u%d", u), bank.User(u).Amplitude())
	}

	// --- mixed-speed bank: several coefficient classes --------------------
	speeds := []float64{10, 30, 50, 80, 120, 50, 10, 80}
	sb := channel.NewBankWithSpeeds(speeds, channel.DefaultParams(), 7)
	for i := 0; i < 40; i++ {
		sb.Advance(frameDur)
	}
	for u := 0; u < sb.Size(); u++ {
		emitF(fmt.Sprintf("speeds/u%d", u), sb.User(u).Amplitude())
	}

	// --- per-user catch-up paths mirror the mac lazy replay ---------------
	// The same user of two same-seed banks, one advanced step-by-step and
	// one in a single deferred batch: both orders must land on the bits the
	// pre-refactor stepwise schedule recorded (the lazy-replay contract).
	// The golden entry for replay/batched was recorded stepwise — the only
	// advancement the scalar reference had — so it directly pins the
	// batched AdvanceSteps path against the pre-refactor sample path.
	lazyA := channel.NewBank(2, channel.DefaultParams(), 9)
	for i := 0; i < 33; i++ {
		lazyA.User(0).Advance(frameDur)
	}
	emitF("replay/stepwise", lazyA.User(0).Amplitude())
	lazyB := channel.NewBank(2, channel.DefaultParams(), 9)
	lazyB.User(0).AdvanceSteps(frameDur, 33)
	emitF("replay/batched", lazyB.User(0).Amplitude())

	// --- all six protocols, common seed -----------------------------------
	emitResult := func(prefix string, r mac.Result) {
		emitF(prefix+"/frames", r.Frames)
		emitU(prefix+"/voiceGen", r.VoiceGenerated)
		emitU(prefix+"/voiceDrop", r.VoiceDropped)
		emitU(prefix+"/voiceErr", r.VoiceErrored)
		emitU(prefix+"/voiceOK", r.VoiceDelivered)
		emitU(prefix+"/dataGen", r.DataGenerated)
		emitU(prefix+"/dataOK", r.DataDelivered)
		emitU(prefix+"/dataErr", r.DataErrored)
		emitU(prefix+"/reqAtt", r.ReqAttempts)
		emitU(prefix+"/reqColl", r.ReqCollisions)
		emitU(prefix+"/reqSucc", r.ReqSuccesses)
		emitU(prefix+"/csiPolls", r.CSIPolls)
		emitF(prefix+"/ploss", r.VoiceLossRate)
		emitF(prefix+"/gamma", r.DataThroughputPerFrame)
		emitF(prefix+"/delay", r.MeanDataDelaySec)
		emitF(prefix+"/coll", r.CollisionRate)
		emitF(prefix+"/util", r.InfoUtilization)
	}
	scenario := func(proto string, queue bool) core.Scenario {
		sc := core.DefaultScenario(proto)
		sc.NumVoice, sc.NumData = 30, 5
		sc.UseQueue = queue
		sc.WarmupSec, sc.DurationSec = 0.25, 1
		return sc
	}
	for _, p := range core.Protocols() {
		r, err := scenario(p, false).Run()
		if err != nil {
			t.Fatalf("protocol %s: %v", p, err)
		}
		emitResult("proto/"+p, r)
	}
	// Queue variant (selection diversity pool) for the flagship protocol.
	rq, err := scenario(core.ProtoCharisma, true).Run()
	if err != nil {
		t.Fatalf("charisma+queue: %v", err)
	}
	emitResult("proto/charisma+queue", rq)

	// Mixed per-station speeds through the full platform (§5.3.3 path).
	scSpeeds := scenario(core.ProtoCharisma, false)
	scSpeeds.SpeedsKmh = []float64{10, 80, 50, 120, 30, 50, 10, 80, 50, 50,
		10, 80, 50, 120, 30, 50, 10, 80, 50, 50,
		10, 80, 50, 120, 30, 50, 10, 80, 50, 50, 50, 50, 50, 50, 50}
	rs, err := scSpeeds.Run()
	if err != nil {
		t.Fatalf("charisma+speeds: %v", err)
	}
	emitResult("proto/charisma+speeds", rs)

	// --- multicell deployment ---------------------------------------------
	mp := multicell.DefaultParams()
	mp.Cells = 2
	mp.NumVoice, mp.NumData = 20, 4
	mp.Workers = 1
	mp.WarmupSec, mp.DurationSec = 0.25, 1
	mr, err := multicell.Run(mp)
	if err != nil {
		t.Fatalf("multicell: %v", err)
	}
	emitResult("multicell", mr.Result)
	emitU("multicell/handoffs", mr.Handoffs)
	for c, per := range mr.PerCell {
		emitF(fmt.Sprintf("multicell/cell%d/ploss", c), per.VoiceLossRate)
	}

	// --- heavy mixed load: data queue saturates ---------------------------
	// Nv=80 voice stations against Nd=30 data stations behind a tight
	// 8-entry request queue push arrivals past the service rate: the queue
	// fills and rejects, and the ARQ backlog carries frame to frame —
	// saturation branches the lighter mixes above never reach. Appended
	// after the original observations so the earlier golden lines keep
	// their indices.
	scHeavy := scenario(core.ProtoCharisma, true)
	scHeavy.NumVoice, scHeavy.NumData = 80, 30
	scHeavy.MAC.QueueCap = 8
	rh, err := scHeavy.Run()
	if err != nil {
		t.Fatalf("charisma+heavy: %v", err)
	}
	emitResult("proto/charisma+heavy", rh)
	emitU("proto/charisma+heavy/queueRejects", rh.QueueRejects)
	emitF("proto/charisma+heavy/maxDelay", rh.MaxDataDelaySec)

	return out
}

// TestGoldenByteIdentity compares every recorded observation bit-for-bit.
func TestGoldenByteIdentity(t *testing.T) {
	got := goldenLines(t)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d observations to %s", len(got), goldenPath)
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden on the reference implementation): %v", err)
	}
	var want []string
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("observation count drifted: got %d, golden has %d", len(got), len(want))
	}
	mismatches := 0
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("byte-identity broken: got %s, want %s", got[i], want[i])
			if mismatches++; mismatches > 20 {
				t.Fatal("too many mismatches; aborting")
			}
		}
	}
}
