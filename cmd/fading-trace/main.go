// Command fading-trace dumps raw channel and PHY model data for plotting:
// the Fig. 5 fading sample as CSV, or the Fig. 7 ABICM curves as CSV.
//
// Usage:
//
//	fading-trace -what fading -seconds 2 -speed 50 > fading.csv
//	fading-trace -what abicm > abicm.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"charisma/internal/channel"
	"charisma/internal/experiments"
	"charisma/internal/prof"
	"charisma/internal/sim"
)

func main() {
	var (
		what    = flag.String("what", "fading", "fading (Fig. 5) or abicm (Fig. 7)")
		seconds = flag.Float64("seconds", 2, "trace length in simulated seconds")
		speed   = flag.Float64("speed", 50, "mobile speed in km/h")
		seed    = flag.Int64("seed", 1, "random seed")
		stepMs  = flag.Float64("step", 2.5, "sample period in ms (default: one frame)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the trace to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fading-trace:", err)
		os.Exit(1)
	}
	defer stopProf()

	switch *what {
	case "fading":
		p := channel.DefaultParams()
		p.SpeedKmh = *speed
		dt := sim.FromMilliseconds(*stepMs)
		n := int(sim.FromSeconds(*seconds) / dt)
		fmt.Println("t_ms,amp_db,shadow_db")
		for _, pt := range channel.Trace(p, *seed, dt, n) {
			fmt.Printf("%.3f,%.3f,%.3f\n", pt.T.Milliseconds(), pt.AmpDB, pt.ShadowDB)
		}
	case "abicm":
		fmt.Println("csi_amp,snr_db,mode,eta,ber,fixed_ber,outage")
		for _, pt := range experiments.ABICMCurves(361) {
			fmt.Printf("%.5f,%.2f,%d,%.1f,%.4e,%.4e,%v\n",
				pt.CSIAmp, pt.SNRdB, pt.Mode, pt.Eta, pt.BER, pt.FixedBER, pt.InOutage)
		}
	default:
		fmt.Fprintf(os.Stderr, "fading-trace: unknown -what %q\n", *what)
		stopProf() // os.Exit skips the defer
		os.Exit(1)
	}
}
