// Command charisma-scen manages JSONL scenario corpora: it generates
// seeded corpora, expands a file into its canonical sweep points, and
// checks every point against the simulator's invariant suite.
//
// Usage:
//
//	charisma-scen gen -seed 20260808 -n 20 -out corpus.jsonl
//	charisma-scen gen -seed 7 -n 50 -max-cells 4 -multicell-frac 0.3
//	charisma-scen expand corpus.jsonl      # canonical specs + hashes
//	charisma-scen check corpus.jsonl       # invariant suite, exit 1 on any violation
//
// `gen` is deterministic: entry i depends only on (seed, i), so a corpus
// can be regenerated or extended without disturbing existing entries.
// `check` runs each expanded point through internal/invariant (metric
// bounds, determinism, packet-conservation laws) and prints one line per
// point; violations carry the spec hash and seed for a one-line repro.
package main

import (
	"flag"
	"fmt"
	"os"

	"charisma/internal/grid"
	"charisma/internal/invariant"
	"charisma/internal/scengen"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  charisma-scen gen    [-seed N] [-n N] [-max-voice N] [-max-data N] [-max-cells N] [-multicell-frac F] [-out FILE]
  charisma-scen expand FILE.jsonl
  charisma-scen check  FILE.jsonl`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "expand":
		err = runExpand(os.Args[2:])
	case "check":
		err = runCheck(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "charisma-scen:", err)
		os.Exit(1)
	}
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		seed     = fs.Int64("seed", 1, "corpus seed (entry i depends only on seed and i)")
		n        = fs.Int("n", 20, "number of corpus entries")
		maxVoice = fs.Int("max-voice", 0, "cap on voice stations per entry (0 = default 40)")
		maxData  = fs.Int("max-data", 0, "cap on data stations per entry (0 = default 12)")
		maxCells = fs.Int("max-cells", 0, "enable multi-cell entries with up to this many cells (< 2 disables)")
		mcFrac   = fs.Float64("multicell-frac", 0, "fraction of entries that are deployments (0 = default 0.2)")
		out      = fs.String("out", "", "output file (empty = stdout)")
	)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("gen takes no positional arguments")
	}

	pts := scengen.Generate(scengen.Config{
		Seed:          *seed,
		Count:         *n,
		MaxVoice:      *maxVoice,
		MaxData:       *maxData,
		MaxCells:      *maxCells,
		MulticellFrac: *mcFrac,
	})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := grid.WriteScenarioFile(w, pts); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "charisma-scen: wrote %d entries (seed %d) to %s\n", len(pts), *seed, *out)
	}
	return nil
}

func runExpand(args []string) error {
	fs := flag.NewFlagSet("expand", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("expand takes exactly one scenario file")
	}
	pts, err := grid.LoadScenarioPath(fs.Arg(0))
	if err != nil {
		return err
	}
	for i, pt := range pts {
		hash, err := pt.Spec.Hash()
		if err != nil {
			return err
		}
		canon, err := pt.Spec.Encode()
		if err != nil {
			return err
		}
		fmt.Printf("# point %d  hash=%s  reps=%d\n%s\n", i, hash, pt.Replications, canon)
	}
	return nil
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("check takes exactly one scenario file")
	}
	pts, err := grid.LoadScenarioPath(fs.Arg(0))
	if err != nil {
		return err
	}
	violations := 0
	for i, pt := range pts {
		rep, err := invariant.Check(pt.Spec)
		if err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
		if rep.OK() {
			fmt.Printf("point %-4d %s ok\n", i, rep.Hash[:12])
			continue
		}
		violations += len(rep.Violations)
		for _, v := range rep.Violations {
			fmt.Printf("point %-4d %s VIOLATION %s\n", i, rep.Hash[:12], v)
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d invariant violation(s) across %d points", violations, len(pts))
	}
	fmt.Printf("checked %d points: all invariants hold\n", len(pts))
	return nil
}
