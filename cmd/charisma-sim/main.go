// Command charisma-sim runs one uplink access control scenario and prints
// the paper's metrics (voice packet loss, data throughput, data delay) for
// either a single protocol or all six side by side.
//
// Usage:
//
//	charisma-sim -protocol charisma -voice 80 -data 10 -queue -duration 30
//	charisma-sim -all -voice 100 -duration 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"charisma"
)

func main() {
	var (
		protocol = flag.String("protocol", "charisma", "protocol: charisma, d-tdma/vr, d-tdma/fr, drma, rama, rmav")
		all      = flag.Bool("all", false, "run all six protocols on the same cell")
		voice    = flag.Int("voice", 50, "number of voice users (Nv)")
		data     = flag.Int("data", 0, "number of data users (Nd)")
		queue    = flag.Bool("queue", false, "enable the base-station request queue")
		seed     = flag.Int64("seed", 1, "random seed")
		reps     = flag.Int("reps", 1, "independent replications pooled per result (CI95 across reps)")
		duration = flag.Float64("duration", 30, "measured seconds of simulated time")
		warmup   = flag.Float64("warmup", 2, "warm-up seconds excluded from metrics")
		speed    = flag.Float64("speed", 0, "mobile speed in km/h (0 = paper default, 50)")
		snr      = flag.Float64("snr", 0, "mean link SNR in dB (0 = calibrated default)")
	)
	flag.Parse()

	opts := charisma.Options{
		Protocol:         charisma.Protocol(*protocol),
		VoiceUsers:       *voice,
		DataUsers:        *data,
		WithRequestQueue: *queue,
		Seed:             *seed,
		Replications:     *reps,
		Duration:         time.Duration(*duration * float64(time.Second)),
		Warmup:           time.Duration(*warmup * float64(time.Second)),
		SpeedKmh:         *speed,
		MeanSNRdB:        *snr,
	}

	var results []charisma.Result
	var err error
	if *all {
		results, err = charisma.Compare(opts)
	} else {
		var r charisma.Result
		r, err = charisma.Run(opts)
		results = []charisma.Result{r}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "charisma-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("cell: Nv=%d Nd=%d queue=%v seed=%d reps=%d %gs measured (speed %g km/h, SNR %g dB)\n\n",
		*voice, *data, *queue, *seed, *reps, *duration, *speed, *snr)
	fmt.Printf("%-11s %9s %9s %9s %10s %10s %9s %8s\n",
		"protocol", "Ploss", "Pdrop", "Perr", "γ(pkt/frm)", "Dd(ms)", "coll", "util")
	for _, r := range results {
		fmt.Printf("%-11s %8.4f%% %8.4f%% %8.4f%% %10.3f %10.2f %8.2f%% %7.1f%%\n",
			r.Protocol,
			100*r.VoiceLossRate, 100*r.VoiceDropRate, 100*r.VoiceErrorRate,
			r.DataThroughputPerFrame,
			float64(r.MeanDataDelay)/float64(time.Millisecond),
			100*r.CollisionRate, 100*r.InfoUtilization)
	}
	if *reps > 1 {
		fmt.Printf("\nacross-replication Student-t CI95 (n=%d):\n", *reps)
		fmt.Printf("%-11s %10s %12s %12s\n", "protocol", "±Ploss", "±γ", "±Dd(ms)")
		for _, r := range results {
			fmt.Printf("%-11s %9.4f%% %12.3f %12.2f\n",
				r.Protocol, 100*r.VoiceLossCI95, r.DataThroughputCI95,
				float64(r.MeanDataDelayCI95)/float64(time.Millisecond))
		}
	}
}
