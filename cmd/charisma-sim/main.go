// Command charisma-sim runs one uplink access control scenario and prints
// the paper's metrics (voice packet loss, data throughput, data delay) for
// either a single protocol or all six side by side.
//
// Usage:
//
//	charisma-sim -protocol charisma -voice 80 -data 10 -queue -duration 30
//	charisma-sim -all -voice 100 -duration 20
//	charisma-sim -cells 4 -voice 200 -workers 4 -duration 10
//
// With -cells ≥ 2 the run is a multi-cell deployment (§6 handoff
// extension): cells advance on -workers goroutines between handoff
// decision epochs, and the result pools all cells plus the handoff count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"charisma"
	"charisma/internal/experiments"
	"charisma/internal/prof"
	"charisma/internal/trace"
)

// stopProf ends any active profiling; fatal paths call it explicitly
// because os.Exit skips defers.
var stopProf = func() {}

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, args...)
	stopProf()
	os.Exit(1)
}

func main() {
	var (
		protocol   = flag.String("protocol", "charisma", "protocol: charisma, d-tdma/vr, d-tdma/fr, drma, rama, rmav")
		scenario   = flag.String("scenario", "", "run a JSONL scenario file (sweep axes expand on the grid) instead of the flag-built cell")
		all        = flag.Bool("all", false, "run all six protocols on the same cell")
		voice      = flag.Int("voice", 50, "number of voice users (Nv)")
		data       = flag.Int("data", 0, "number of data users (Nd)")
		queue      = flag.Bool("queue", false, "enable the base-station request queue")
		seed       = flag.Int64("seed", 1, "random seed")
		reps       = flag.Int("reps", 1, "independent replications pooled per result (CI95 across reps)")
		duration   = flag.Float64("duration", 30, "measured seconds of simulated time")
		warmup     = flag.Float64("warmup", 2, "warm-up seconds excluded from metrics")
		speed      = flag.Float64("speed", 0, "mobile speed in km/h (0 = paper default, 50)")
		snr        = flag.Float64("snr", 0, "mean link SNR in dB (0 = calibrated default)")
		cells      = flag.Int("cells", 0, "number of base stations (>= 2 runs the multi-cell handoff deployment)")
		workers    = flag.Int("workers", 0, "worker goroutines for cells/replications (0 = one per core)")
		cacheDir   = flag.String("cache-dir", "", "content-addressed replication cache directory (single-cell runs)")
		prec       = flag.Float64("precision", 0, "adaptive replication: target relative CI95 half-width (0 = fixed -reps)")
		maxReps    = flag.Int("max-reps", 0, "cap on adaptive replication growth (0 = default)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile at exit to this file")
		flightN    = flag.Int("flight-recorder", 0, "keep the last N frames of each replication; dump JSONL on panic/SIGQUIT")
		flightPath = flag.String("flight-path", "charisma-flight.jsonl", "flight-recorder dump file (JSONL, appended)")
	)
	flag.Parse()

	if *flightN > 0 {
		trace.ArmFlight(*flightN, *flightPath)
	}

	var err error
	if stopProf, err = prof.Start(*cpuProf, *memProf); err != nil {
		fmt.Fprintln(os.Stderr, "charisma-sim:", err)
		os.Exit(1)
	}
	defer stopProf()

	// Long runs die cleanly on ^C / SIGTERM instead of mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *scenario != "" {
		if *all || *cells >= 2 {
			fatal("charisma-sim: -scenario carries its own protocols and cell counts; drop -all/-cells")
		}
		rc := experiments.RunConfig{
			Seed:            *seed,
			Workers:         *workers,
			CacheDir:        *cacheDir,
			PrecisionRel:    *prec,
			MaxReplications: *maxReps,
		}
		// The flag default (1) means "use the file's counts"; an explicit
		// -reps N overrides every point.
		override := 0
		if *reps > 1 {
			override = *reps
		}
		pts, results, err := experiments.RunScenarioFile(ctx, *scenario, override, rc)
		if err != nil {
			fatal("charisma-sim:", err)
		}
		fmt.Printf("scenario file %s: %d sweep points\n", *scenario, len(pts))
		experiments.RenderScenarioResults(os.Stdout, pts, results)
		return
	}

	if *cells >= 2 {
		if *all {
			fatal("charisma-sim: -all is not supported with -cells; pick one -protocol per deployment")
		}
		if *cacheDir != "" || *prec > 0 {
			fmt.Fprintln(os.Stderr, "charisma-sim: note: -cache-dir/-precision apply to single-cell runs only")
		}
		runMultiCell(ctx, *cells, *workers, *protocol, *voice, *data, *queue, *seed, *reps, *duration, *warmup, *speed, *snr)
		return
	}

	opts := charisma.Options{
		Protocol:         charisma.Protocol(*protocol),
		VoiceUsers:       *voice,
		DataUsers:        *data,
		WithRequestQueue: *queue,
		Seed:             *seed,
		Replications:     *reps,
		Workers:          *workers,
		Duration:         time.Duration(*duration * float64(time.Second)),
		Warmup:           time.Duration(*warmup * float64(time.Second)),
		SpeedKmh:         *speed,
		MeanSNRdB:        *snr,
		CacheDir:         *cacheDir,
		TargetPrecision:  *prec,
		MaxReplications:  *maxReps,
	}

	var results []charisma.Result
	if *all {
		results, err = charisma.CompareContext(ctx, opts)
	} else {
		var r charisma.Result
		r, err = charisma.RunContext(ctx, opts)
		results = []charisma.Result{r}
	}
	if err != nil {
		fatal("charisma-sim:", err)
	}

	fmt.Printf("cell: Nv=%d Nd=%d queue=%v seed=%d reps=%d %gs measured (speed %g km/h, SNR %g dB)\n\n",
		*voice, *data, *queue, *seed, *reps, *duration, *speed, *snr)
	fmt.Printf("%-11s %9s %9s %9s %10s %10s %9s %8s\n",
		"protocol", "Ploss", "Pdrop", "Perr", "γ(pkt/frm)", "Dd(ms)", "coll", "util")
	for _, r := range results {
		fmt.Printf("%-11s %8.4f%% %8.4f%% %8.4f%% %10.3f %10.2f %8.2f%% %7.1f%%\n",
			r.Protocol,
			100*r.VoiceLossRate, 100*r.VoiceDropRate, 100*r.VoiceErrorRate,
			r.DataThroughputPerFrame,
			float64(r.MeanDataDelay)/float64(time.Millisecond),
			100*r.CollisionRate, 100*r.InfoUtilization)
	}
	if *reps > 1 {
		fmt.Printf("\nacross-replication Student-t CI95 (n=%d):\n", *reps)
		fmt.Printf("%-11s %10s %12s %12s\n", "protocol", "±Ploss", "±γ", "±Dd(ms)")
		for _, r := range results {
			fmt.Printf("%-11s %9.4f%% %12.3f %12.2f\n",
				r.Protocol, 100*r.VoiceLossCI95, r.DataThroughputCI95,
				float64(r.MeanDataDelayCI95)/float64(time.Millisecond))
		}
	}
}

func runMultiCell(ctx context.Context, cells, workers int, protocol string, voice, data int, queue bool, seed int64, reps int, duration, warmup, speed, snr float64) {
	r, err := charisma.RunMultiCellContext(ctx, charisma.MultiCellOptions{
		Cells:            cells,
		Protocol:         charisma.Protocol(protocol),
		VoiceUsers:       voice,
		DataUsers:        data,
		WithRequestQueue: queue,
		Workers:          workers,
		Seed:             seed,
		Replications:     reps,
		Duration:         time.Duration(duration * float64(time.Second)),
		Warmup:           time.Duration(warmup * float64(time.Second)),
		SpeedKmh:         speed,
		MeanSNRdB:        snr,
	})
	if err != nil {
		fatal("charisma-sim:", err)
	}
	fmt.Printf("deployment: cells=%d Nv=%d Nd=%d queue=%v seed=%d reps=%d workers=%d %gs measured\n\n",
		cells, voice, data, queue, seed, reps, workers, duration)
	fmt.Printf("%-11s %9s %10s %10s %9s %9s\n",
		"protocol", "Ploss", "γ(pkt/frm)", "Dd(ms)", "coll", "handoffs")
	fmt.Printf("%-11s %8.4f%% %10.3f %10.2f %8.2f%% %9d\n",
		r.Protocol, 100*r.VoiceLossRate, r.DataThroughputPerFrame,
		float64(r.MeanDataDelay)/float64(time.Millisecond), 100*r.CollisionRate, r.Handoffs)
	fmt.Println("\nper-cell voice loss:")
	for c, loss := range r.PerCellLossRates {
		fmt.Printf("  cell %d: %.4f%%\n", c, 100*loss)
	}
}
