// Command charisma-worker is a sweep-grid worker: it pulls (spec,
// replication) tasks from a coordinator — a charisma-experiments process
// started with -listen, or anything serving internal/grid's protocol —
// runs them through the simulation engine, and streams the results back.
//
// Usage:
//
//	charisma-worker -coordinator http://host:9123
//	charisma-worker -coordinator http://host:9123 -parallel 8 \
//	    -cache-dir ~/.charisma-cache -max-idle 2m -stats-addr :9200
//
// A worker-local -cache-dir short-circuits tasks the worker has already
// simulated (content-addressed on hash(spec, rep-seed), the same keys the
// coordinator uses). The worker exits when the coordinator reports it has
// closed, after -max-idle without work, or on SIGINT/SIGTERM.
//
// When the coordinator dispatches under lease (its -lease-ttl), the
// worker heartbeats every task it is executing at a third of the TTL; a
// worker that is SIGKILLed simply stops heartbeating, the coordinator
// re-queues its tasks for the surviving workers, and a worker that
// outlives a revoked lease abandons the task instead of posting a result
// the coordinator would discard. The -id flag names the worker for the
// coordinator's re-queue exclusion (a worker is not immediately handed
// back a task it timed out on); it defaults to "<hostname>-<pid>".
//
// Observability: the worker logs structured events (task claims at
// -log-level debug, lease abandons, exit reasons) as logfmt-style slog
// lines on stderr, every line tagged worker=<id>. -stats-addr serves a
// live JSON counter snapshot (tasks claimed/completed/abandoned, local
// cache hits/misses, mean heartbeat round-trip) at GET /stats.
// -flight-recorder N keeps the last N frames of every replication in a
// ring that is dumped as JSONL on panic or SIGQUIT.
//
// Chaos: -chaos-seed and -chaos-rates arm internal/chaos's deterministic
// fault injector on this worker — wire faults on every coordinator
// request (drop, delay, dup, trunc, err500, err503), lying results
// (lie), and startup corruption of the local -cache-dir (cacheflip,
// cachetrunc, cachedeny). For resilience testing only: a lying worker
// exists to be caught by the coordinator's -audit-frac defense.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"charisma/internal/chaos"
	"charisma/internal/grid"
	"charisma/internal/trace"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator base URL (required), e.g. http://host:9123")
		id          = flag.String("id", "", "worker id reported to the coordinator (default <hostname>-<pid>)")
		parallel    = flag.Int("parallel", 0, "concurrent simulations (0 = one per core)")
		cacheDir    = flag.String("cache-dir", "", "worker-local content-addressed replication cache")
		poll        = flag.Duration("poll", 200*time.Millisecond, "idle re-poll interval")
		maxIdle     = flag.Duration("max-idle", 2*time.Minute, "exit after this long without work (0 = poll forever)")
		statsAddr   = flag.String("stats-addr", "", "serve a JSON worker-stats snapshot at GET /stats on this address")
		logLevel    = flag.String("log-level", "info", "stderr log level: debug, info, warn, error")
		flightN     = flag.Int("flight-recorder", 0, "keep the last N frames of each replication; dump JSONL on panic/SIGQUIT")
		flightPath  = flag.String("flight-path", "charisma-flight.jsonl", "flight-recorder dump file (JSONL, appended)")
		chaosSeed   = flag.Int64("chaos-seed", 0, "seed for the deterministic fault injector (with -chaos-rates)")
		chaosRates  = flag.String("chaos-rates", "", "fault rates, e.g. drop=0.05,dup=0.02,err500=0.1,lie=1 (testing only)")
	)
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: parseLevel(*logLevel)}))

	if *coordinator == "" {
		log.Error("-coordinator is required")
		os.Exit(2)
	}
	rates, err := chaos.ParseRates(*chaosRates)
	if err != nil {
		log.Error("bad -chaos-rates", "err", err)
		os.Exit(2)
	}
	if *flightN > 0 {
		trace.ArmFlight(*flightN, *flightPath)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stats := new(grid.WorkerStats)
	if *statsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(stats.Snapshot())
		})
		srv := &http.Server{Addr: *statsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Error("stats endpoint failed", "addr", *statsAddr, "err", err)
			}
		}()
		defer srv.Close()
		log.Info("serving worker stats", "addr", *statsAddr)
	}

	w := grid.Worker{
		Coordinator: *coordinator,
		ID:          *id,
		Parallel:    *parallel,
		Cache:       grid.NewCacheLogged(*cacheDir, log),
		Poll:        *poll,
		MaxIdle:     *maxIdle,
		Log:         log,
		Stats:       stats,
	}
	var plan *chaos.Plan
	if rates.Active() {
		plan = chaos.NewPlan(*chaosSeed, rates)
		w.Client = &http.Client{Timeout: 30 * time.Second, Transport: plan.Transport(nil)}
		w.CorruptResult = plan.CorruptResult
		if *cacheDir != "" {
			if cf, cerr := plan.InjectCacheFaults(*cacheDir); cerr != nil {
				log.Warn("cache fault injection failed", "err", cerr)
			} else if cf.Entries > 0 {
				log.Warn("chaos perturbed local cache",
					"entries", cf.Entries, "flipped", cf.Flipped, "truncated", cf.Trunced, "denied", cf.Denied)
			}
		}
		log.Warn("chaos armed", "seed", *chaosSeed, "rates", *chaosRates)
	}
	log.Info("worker starting", "coordinator", *coordinator, "parallel", *parallel)
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		log.Error("worker failed", "err", err)
		os.Exit(1)
	}
	snap := stats.Snapshot()
	log.Info("worker done",
		"claimed", snap.Claimed, "completed", snap.Completed, "abandoned", snap.Abandoned,
		"cache_hits", snap.CacheHits, "cache_misses", snap.CacheMisses)
	if plan != nil {
		log.Info("chaos summary", "injected", plan.Counts().String())
	}
}

func parseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
