// Command charisma-worker is a sweep-grid worker: it pulls (spec,
// replication) tasks from a coordinator — a charisma-experiments process
// started with -listen, or anything serving internal/grid's protocol —
// runs them through the simulation engine, and streams the results back.
//
// Usage:
//
//	charisma-worker -coordinator http://host:9123
//	charisma-worker -coordinator http://host:9123 -parallel 8 \
//	    -cache-dir ~/.charisma-cache -max-idle 2m
//
// A worker-local -cache-dir short-circuits tasks the worker has already
// simulated (content-addressed on hash(spec, rep-seed), the same keys the
// coordinator uses). The worker exits when the coordinator reports it has
// closed, after -max-idle without work, or on SIGINT/SIGTERM.
//
// When the coordinator dispatches under lease (its -lease-ttl), the
// worker heartbeats every task it is executing at a third of the TTL; a
// worker that is SIGKILLed simply stops heartbeating, the coordinator
// re-queues its tasks for the surviving workers, and a worker that
// outlives a revoked lease abandons the task instead of posting a result
// the coordinator would discard. The -id flag names the worker for the
// coordinator's re-queue exclusion (a worker is not immediately handed
// back a task it timed out on); it defaults to "<hostname>-<pid>".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"charisma/internal/grid"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator base URL (required), e.g. http://host:9123")
		id          = flag.String("id", "", "worker id reported to the coordinator (default <hostname>-<pid>)")
		parallel    = flag.Int("parallel", 0, "concurrent simulations (0 = one per core)")
		cacheDir    = flag.String("cache-dir", "", "worker-local content-addressed replication cache")
		poll        = flag.Duration("poll", 200*time.Millisecond, "idle re-poll interval")
		maxIdle     = flag.Duration("max-idle", 2*time.Minute, "exit after this long without work (0 = poll forever)")
	)
	flag.Parse()

	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "charisma-worker: -coordinator is required")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := grid.Worker{
		Coordinator: *coordinator,
		ID:          *id,
		Parallel:    *parallel,
		Cache:       grid.NewCache(*cacheDir),
		Poll:        *poll,
		MaxIdle:     *maxIdle,
	}
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "charisma-worker:", err)
		os.Exit(1)
	}
}
