// Command benchsnap converts `go test -bench` output into a committed
// perf-trajectory snapshot (BENCH_<pr>.json) and enforces allocation
// budgets in CI.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | benchsnap -pr 4 -out BENCH_4.json
//	benchsnap -in raw.txt -out /dev/null -assert-zero-allocs 'ChannelBank|Engine'
//
// Multiple -count samples of one benchmark are pooled: the snapshot keeps
// the minimum and median ns/op (minimum approximates the noise floor,
// median the typical run), the maximum allocs/op (the conservative value
// the allocation guard checks), and the last value of every custom
// b.ReportMetric column.
//
// Snapshot comparison (the CI perf-regression gate):
//
//	benchsnap -snap BENCH_7.json -compare BENCH_6.json
//	go test -bench . -benchmem | benchsnap -compare BENCH_6.json
//
// compares the new snapshot (from -snap or raw input) against the old
// one, printing a per-benchmark delta table, and exits non-zero when any
// common benchmark's min ns/op regresses by more than -compare-tolerance
// (default 0.15 = 15%) or its allocs/op ceiling grows by more than the
// same factor (any growth from zero fails).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type sample struct {
	nsPerOp     float64
	bytesPerOp  int64
	allocsPerOp int64
	hasAllocs   bool
	metrics     map[string]float64
}

// Snapshot is the schema of a BENCH_<pr>.json trajectory point.
type Snapshot struct {
	PR         int                  `json:"pr"`
	Go         string               `json:"go"`
	GOOS       string               `json:"goos,omitempty"`
	GOARCH     string               `json:"goarch,omitempty"`
	CPU        string               `json:"cpu,omitempty"`
	Benchmarks map[string]BenchStat `json:"benchmarks"`
}

// BenchStat pools the samples of one benchmark.
type BenchStat struct {
	Samples     int                `json:"samples"`
	NsPerOpMin  float64            `json:"ns_per_op_min"`
	NsPerOpMed  float64            `json:"ns_per_op_median"`
	BytesPerOp  int64              `json:"b_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parseLine(line string) (name string, s sample, ok bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return "", sample{}, false
	}
	name = strings.TrimPrefix(m[1], "Benchmark")
	fields := strings.Fields(m[3])
	if len(fields)%2 != 0 {
		return "", sample{}, false
	}
	s.metrics = map[string]float64{}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			s.nsPerOp = v
		case "B/op":
			s.bytesPerOp = int64(v)
		case "allocs/op":
			s.allocsPerOp = int64(v)
			s.hasAllocs = true
		default:
			s.metrics[unit] = v
		}
	}
	return name, s, true
}

func main() {
	var (
		in       = flag.String("in", "", "raw `go test -bench` output (default stdin)")
		out      = flag.String("out", "", "snapshot JSON path (empty or /dev/null = don't write)")
		pr       = flag.Int("pr", 0, "PR number stamped into the snapshot")
		assertRe = flag.String("assert-zero-allocs", "",
			"regex of benchmark names (without the Benchmark prefix) that must report 0 allocs/op; violations exit 1")
		assertMax = flag.String("assert-max-metric", "",
			"ceiling on a custom metric, as <name-regex>:<metric>:<max> (e.g. 'IdleCellPopulation/n=100000:B/station:64'); violations exit 1")
		snapIn  = flag.String("snap", "", "load an existing snapshot JSON as the new side instead of parsing raw bench output")
		compare = flag.String("compare", "", "old snapshot JSON to diff the new snapshot against; regressions exit 1")
		cmpRe   = flag.String("compare-names", "",
			"regex restricting which benchmarks -compare checks (default: every benchmark present in both snapshots)")
		cmpTol = flag.Float64("compare-tolerance", 0.15,
			"fractional regression allowed by -compare on min ns/op and allocs/op")
	)
	flag.Parse()

	if *snapIn != "" {
		if *assertRe != "" || *assertMax != "" {
			fmt.Fprintln(os.Stderr, "benchsnap: -assert-* need raw bench input, not -snap (asserts check per-sample values)")
			os.Exit(1)
		}
		snap, err := readSnapshot(*snapIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		if *compare == "" {
			fmt.Fprintln(os.Stderr, "benchsnap: -snap without -compare has nothing to do")
			os.Exit(1)
		}
		if err := compareSnapshots(snap, *compare, *cmpRe, *cmpTol); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		return
	}

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}

	snap := Snapshot{PR: *pr, Go: runtime.Version(), Benchmarks: map[string]BenchStat{}}
	samples := map[string][]sample{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if name, s, ok := parseLine(line); ok {
				if _, seen := samples[name]; !seen {
					order = append(order, name)
				}
				samples[name] = append(samples[name], s)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines found in input")
		os.Exit(1)
	}

	for _, name := range order {
		ss := samples[name]
		ns := make([]float64, len(ss))
		st := BenchStat{Samples: len(ss), Metrics: map[string]float64{}}
		for i, s := range ss {
			ns[i] = s.nsPerOp
			if s.bytesPerOp > st.BytesPerOp {
				st.BytesPerOp = s.bytesPerOp
			}
			if s.allocsPerOp > st.AllocsPerOp {
				st.AllocsPerOp = s.allocsPerOp
			}
			for k, v := range s.metrics {
				st.Metrics[k] = v
			}
		}
		sort.Float64s(ns)
		st.NsPerOpMin = ns[0]
		st.NsPerOpMed = ns[len(ns)/2]
		if len(st.Metrics) == 0 {
			st.Metrics = nil
		}
		snap.Benchmarks[name] = st
	}

	if *assertRe != "" {
		re, err := regexp.Compile(*assertRe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		matched, failed := 0, 0
		for _, name := range order {
			if !re.MatchString(name) {
				continue
			}
			matched++
			for _, s := range samples[name] {
				if !s.hasAllocs {
					fmt.Fprintf(os.Stderr, "benchsnap: %s has no allocs/op column (run with -benchmem)\n", name)
					failed++
					break
				}
				if s.allocsPerOp != 0 {
					fmt.Fprintf(os.Stderr, "benchsnap: alloc regression: %s reports %d allocs/op, want 0\n",
						name, s.allocsPerOp)
					failed++
					break
				}
			}
		}
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "benchsnap: -assert-zero-allocs %q matched no benchmarks\n", *assertRe)
			os.Exit(1)
		}
		if failed > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchsnap: %d benchmarks allocation-free\n", matched)
	}

	if *assertMax != "" {
		// Split from the right: the metric unit and the ceiling contain no
		// colon, the name regex may.
		last := strings.LastIndex(*assertMax, ":")
		mid := strings.LastIndex((*assertMax)[:max(last, 0)], ":")
		if last < 0 || mid < 0 {
			fmt.Fprintf(os.Stderr, "benchsnap: -assert-max-metric wants <name-regex>:<metric>:<max>, got %q\n", *assertMax)
			os.Exit(1)
		}
		nameRe, metric := (*assertMax)[:mid], (*assertMax)[mid+1:last]
		ceil, err := strconv.ParseFloat((*assertMax)[last+1:], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: bad -assert-max-metric ceiling: %v\n", err)
			os.Exit(1)
		}
		re, err := regexp.Compile(nameRe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		matched, failed := 0, 0
		for _, name := range order {
			if !re.MatchString(name) {
				continue
			}
			matched++
			for _, s := range samples[name] {
				v, ok := s.metrics[metric]
				if !ok {
					fmt.Fprintf(os.Stderr, "benchsnap: %s reports no %q metric\n", name, metric)
					failed++
					break
				}
				if v > ceil {
					fmt.Fprintf(os.Stderr, "benchsnap: metric regression: %s %s = %g, ceiling %g\n",
						name, metric, v, ceil)
					failed++
					break
				}
			}
		}
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "benchsnap: -assert-max-metric %q matched no benchmarks\n", nameRe)
			os.Exit(1)
		}
		if failed > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchsnap: %d benchmarks within the %s ceiling of %g\n", matched, metric, ceil)
	}

	if *compare != "" {
		if err := compareSnapshots(snap, *compare, *cmpRe, *cmpTol); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
	}

	if *out != "" && *out != "/dev/null" {
		blob, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchsnap: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	}
}

func readSnapshot(path string) (Snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return Snapshot{}, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return s, nil
}

// compareSnapshots diffs the new snapshot against the old one at oldPath.
// A benchmark regresses when its min ns/op exceeds the old min by more
// than the tolerance fraction, or its allocs/op ceiling grows by more
// than the same fraction (any growth from a zero baseline fails).
// Benchmarks present on only one side are reported but never fail —
// bench families evolve — but at least one benchmark must match on both
// sides, so comparing disjoint snapshots cannot silently pass.
func compareSnapshots(newSnap Snapshot, oldPath, nameRe string, tol float64) error {
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		return err
	}
	var re *regexp.Regexp
	if nameRe != "" {
		if re, err = regexp.Compile(nameRe); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(newSnap.Benchmarks))
	for name := range newSnap.Benchmarks {
		if re == nil || re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	matched, failed := 0, 0
	for _, name := range names {
		nw := newSnap.Benchmarks[name]
		old, ok := oldSnap.Benchmarks[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchsnap: %-44s new benchmark (no baseline)\n", name)
			continue
		}
		matched++
		ratio := 0.0
		if old.NsPerOpMin > 0 {
			ratio = nw.NsPerOpMin / old.NsPerOpMin
		}
		verdict := "ok"
		if old.NsPerOpMin > 0 && nw.NsPerOpMin > old.NsPerOpMin*(1+tol) {
			verdict = "REGRESSION"
			failed++
		}
		if nw.AllocsPerOp > old.AllocsPerOp+int64(float64(old.AllocsPerOp)*tol) {
			verdict = "REGRESSION(allocs)"
			failed++
		}
		fmt.Fprintf(os.Stderr, "benchsnap: %-44s min %14.0f -> %14.0f ns/op (x%.2f)  allocs %7d -> %7d  %s\n",
			name, old.NsPerOpMin, nw.NsPerOpMin, ratio, old.AllocsPerOp, nw.AllocsPerOp, verdict)
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark present in both snapshots (old %s)", oldPath)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed beyond %.0f%% vs %s", failed, matched, tol*100, oldPath)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: %d benchmarks within %.0f%% of %s\n", matched, tol*100, oldPath)
	return nil
}
