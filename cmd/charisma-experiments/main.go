// Command charisma-experiments regenerates the paper's evaluation artifacts
// (Kwok & Lau, ICPP 2000 / TPDS 2002): every panel of Figs. 11–13, the
// Fig. 5 fading trace, the Fig. 7 ABICM curves, Table 1, and the §5.3.3
// speed study.
//
// Usage:
//
//	charisma-experiments -exp fig11a          # one panel
//	charisma-experiments -exp fig11           # all six panels of Fig. 11
//	charisma-experiments -exp all -quick      # everything, smoke effort
//	charisma-experiments -exp table1
//	charisma-experiments -exp fig5
//	charisma-experiments -exp fig7
//	charisma-experiments -exp speed
//	charisma-experiments -scenario panels.jsonl   # declarative sweep file
//	    # one JSON document per line, shaped like a grid.JobSpec; sweep
//	    # axes ({"sweep": [...]}, {"range": {...}}) expand into the cross
//	    # product of sweep points and run as one grid session
//
// Sweeps run on the distributed sweep grid (internal/grid):
//
//	charisma-experiments -exp fig11 -cache-dir ~/.charisma-cache
//	    # content-addressed replication cache: a re-run is a cache walk
//	charisma-experiments -exp fig11a -precision 0.05 -max-reps 32
//	    # adaptive replication: grow N per point until CI95 ≤ 5% of mean
//	charisma-experiments -exp all -listen :9123
//	    # serve tasks to remote `charisma-worker -coordinator` processes
//	charisma-experiments -exp fig11a -listen :9123 -remote-only
//	    # coordinator only: all simulation done by attached workers
//	charisma-experiments -exp fig11a -listen :9123 -lease-ttl 30s
//	    # fault tolerance: a worker that stops heartbeating for 30 s is
//	    # presumed dead and its tasks are re-queued — the sweep completes
//	    # with byte-identical results regardless of crash timing
//	charisma-experiments -exp fig11a -listen :9123 -audit-frac 0.1
//	    # byzantine defense: 10% of remote results are re-executed
//	    # locally and byte-compared; a worker whose result diverges is
//	    # quarantined and everything it produced is re-done honestly
//
// While a sweep runs, live per-point progress streams to stderr (one
// line per point as its replications settle, with partial aggregates and
// CI95 half-widths — incremental panel data ahead of the final merge);
// -progress=false silences it.
//
// SIGINT/SIGTERM cancel the sweep cleanly: in-flight replications finish
// or stop, nothing is written mid-render.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"charisma/internal/experiments"
	"charisma/internal/grid"
	"charisma/internal/prof"
	"charisma/internal/trace"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: all, table1, fig5, fig7, speed, fig11, fig12, fig13, or a panel id like fig11a")
		scenario   = flag.String("scenario", "", "run a JSONL scenario file (sweep axes expand on the grid) instead of -exp")
		quick      = flag.Bool("quick", false, "smoke-test effort (5 s per point instead of 30 s)")
		seed       = flag.Int64("seed", 1, "random seed")
		reps       = flag.Int("reps", 0, "override independent replications per sweep point (0 = config default)")
		duration   = flag.Float64("duration", 0, "override measured seconds per sweep point")
		workers    = flag.Int("workers", 0, "worker goroutines for the sweep plan (0 = one per core)")
		cacheDir   = flag.String("cache-dir", "", "content-addressed replication cache directory (empty = in-memory only)")
		precision  = flag.Float64("precision", 0, "adaptive replication: target relative CI95 half-width ε per sweep point (0 = fixed reps)")
		maxReps    = flag.Int("max-reps", 0, "cap on adaptive replication growth (0 = default)")
		listen     = flag.String("listen", "", "serve grid tasks to remote charisma-worker processes on this address")
		remoteOnly = flag.Bool("remote-only", false, "no local simulation: all work done by remote workers (requires -listen)")
		leaseTTL   = flag.Duration("lease-ttl", 30*time.Second, "re-queue a remote worker's tasks after this long without heartbeats (0 = never expire)")
		auditFrac  = flag.Float64("audit-frac", 0, "re-execute this fraction of remote results locally; quarantine workers whose results diverge (byzantine defense)")
		progress   = flag.Bool("progress", true, "render live per-point sweep progress to stderr as replications settle")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile at exit to this file")
		flightN    = flag.Int("flight-recorder", 0, "keep the last N frames of each local replication; dump JSONL on panic/SIGQUIT/sweep anomaly")
		flightPath = flag.String("flight-path", "charisma-flight.jsonl", "flight-recorder dump file (JSONL, appended)")
	)
	flag.Parse()

	if *flightN > 0 {
		trace.ArmFlight(*flightN, *flightPath)
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charisma-experiments:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rc := experiments.DefaultRunConfig()
	if *quick {
		rc = experiments.QuickRunConfig()
	}
	rc.Seed = *seed
	if *duration > 0 {
		rc.DurationSec = *duration
	}
	if *reps > 0 {
		rc.Replications = *reps
	}
	rc.Workers = *workers
	rc.CacheDir = *cacheDir
	// One cache for the whole process: the in-memory tier spans panels,
	// so figures that sweep identical scenarios (Fig. 12/13) share
	// replications even without -cache-dir.
	rc.Cache = grid.NewCacheLogged(*cacheDir, slog.New(slog.NewTextHandler(os.Stderr, nil)))
	rc.PrecisionRel = *precision
	rc.AuditFrac = *auditFrac
	rc.MaxReplications = *maxReps
	rc.Stats = &grid.SweepStats{}
	if *progress {
		rc.OnProgress = experiments.ProgressPrinter(os.Stderr)
	}

	if *remoteOnly && *listen == "" {
		fmt.Fprintln(os.Stderr, "charisma-experiments: -remote-only requires -listen")
		stopProf()
		os.Exit(1)
	}
	if *listen != "" {
		log := slog.New(slog.NewTextHandler(os.Stderr, nil))
		srv := grid.NewServer()
		srv.LeaseTTL = *leaseTTL
		srv.Log = log
		rc.Server = srv
		rc.RemoteOnly = *remoteOnly
		go func() {
			if err := srv.ListenAndServe(ctx, *listen); err != nil && ctx.Err() == nil {
				log.Error("grid server failed", "addr", *listen, "err", err)
				stop() // a dead coordinator would hang a -remote-only sweep
			}
		}()
	}

	if *scenario != "" {
		err = runScenarioFile(ctx, *scenario, *reps, rc)
	} else {
		err = run(ctx, strings.ToLower(*exp), rc)
	}
	if rc.Server != nil {
		// Answer 410 for a moment so polling workers drain and exit
		// instead of waiting out their -max-idle against a vanished
		// coordinator. Skipped when the user already hit ^C.
		rc.Server.Close()
		if ctx.Err() == nil {
			time.Sleep(2 * time.Second)
		}
	}
	fmt.Fprintln(os.Stderr, rc.Stats.String())
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "charisma-experiments:", err)
		os.Exit(1)
	}
}

func runScenarioFile(ctx context.Context, path string, reps int, rc experiments.RunConfig) error {
	pts, results, err := experiments.RunScenarioFile(ctx, path, reps, rc)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stdout, "scenario file %s: %d sweep points\n", path, len(pts))
	experiments.RenderScenarioResults(os.Stdout, pts, results)
	return nil
}

func run(ctx context.Context, exp string, rc experiments.RunConfig) error {
	out := os.Stdout
	static := func(which string) bool {
		switch which {
		case "table1":
			experiments.RenderTable1(out, experiments.Table1())
		case "fig5":
			experiments.RenderTrace(out, experiments.FadingTrace(rc.Seed, 2.0), 8)
		case "fig7", "fig7a", "fig7b":
			experiments.RenderABICM(out, experiments.ABICMCurves(181), 6)
		default:
			return false
		}
		return true
	}
	if static(exp) {
		return nil
	}

	if exp == "speed" {
		pts, err := experiments.SpeedSweep(ctx, 60, nil, rc)
		if err != nil {
			return err
		}
		experiments.RenderSpeed(out, pts)
		return nil
	}

	var ran bool
	for _, spec := range experiments.PanelSpecs() {
		match := exp == "all" ||
			exp == spec.ID ||
			exp == fmt.Sprintf("fig%d", spec.Figure)
		if !match {
			continue
		}
		ran = true
		fmt.Fprintf(out, "running %s ...\n", spec.ID)
		panel, err := experiments.RunPanel(ctx, spec, rc)
		if err != nil {
			return err
		}
		experiments.RenderPanel(out, panel)
		if spec.Figure == 11 {
			experiments.RenderCapacity(out, panel, 0.01)
		}
	}
	if exp == "all" {
		static("table1")
		static("fig5")
		static("fig7")
		pts, err := experiments.SpeedSweep(ctx, 60, nil, rc)
		if err != nil {
			return err
		}
		experiments.RenderSpeed(out, pts)
		return nil
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
