// Command charisma-experiments regenerates the paper's evaluation artifacts
// (Kwok & Lau, ICPP 2000 / TPDS 2002): every panel of Figs. 11–13, the
// Fig. 5 fading trace, the Fig. 7 ABICM curves, Table 1, and the §5.3.3
// speed study.
//
// Usage:
//
//	charisma-experiments -exp fig11a          # one panel
//	charisma-experiments -exp fig11           # all six panels of Fig. 11
//	charisma-experiments -exp all -quick      # everything, smoke effort
//	charisma-experiments -exp table1
//	charisma-experiments -exp fig5
//	charisma-experiments -exp fig7
//	charisma-experiments -exp speed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"charisma/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, table1, fig5, fig7, speed, fig11, fig12, fig13, or a panel id like fig11a")
		quick    = flag.Bool("quick", false, "smoke-test effort (5 s per point instead of 30 s)")
		seed     = flag.Int64("seed", 1, "random seed")
		reps     = flag.Int("reps", 0, "override independent replications per sweep point (0 = config default)")
		duration = flag.Float64("duration", 0, "override measured seconds per sweep point")
		workers  = flag.Int("workers", 0, "worker goroutines for the sweep plan (0 = one per core)")
	)
	flag.Parse()

	rc := experiments.DefaultRunConfig()
	if *quick {
		rc = experiments.QuickRunConfig()
	}
	rc.Seed = *seed
	if *duration > 0 {
		rc.DurationSec = *duration
	}
	if *reps > 0 {
		rc.Replications = *reps
	}
	rc.Workers = *workers

	if err := run(strings.ToLower(*exp), rc); err != nil {
		fmt.Fprintln(os.Stderr, "charisma-experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, rc experiments.RunConfig) error {
	out := os.Stdout
	static := func(which string) bool {
		switch which {
		case "table1":
			experiments.RenderTable1(out, experiments.Table1())
		case "fig5":
			experiments.RenderTrace(out, experiments.FadingTrace(rc.Seed, 2.0), 8)
		case "fig7", "fig7a", "fig7b":
			experiments.RenderABICM(out, experiments.ABICMCurves(181), 6)
		default:
			return false
		}
		return true
	}
	if static(exp) {
		return nil
	}

	if exp == "speed" {
		pts, err := experiments.SpeedSweep(60, nil, rc)
		if err != nil {
			return err
		}
		experiments.RenderSpeed(out, pts)
		return nil
	}

	var ran bool
	for _, spec := range experiments.PanelSpecs() {
		match := exp == "all" ||
			exp == spec.ID ||
			exp == fmt.Sprintf("fig%d", spec.Figure)
		if !match {
			continue
		}
		ran = true
		fmt.Fprintf(out, "running %s ...\n", spec.ID)
		panel, err := experiments.RunPanel(spec, rc)
		if err != nil {
			return err
		}
		experiments.RenderPanel(out, panel)
		if spec.Figure == 11 {
			experiments.RenderCapacity(out, panel, 0.01)
		}
	}
	if exp == "all" {
		static("table1")
		static("fig5")
		static("fig7")
		pts, err := experiments.SpeedSweep(60, nil, rc)
		if err != nil {
			return err
		}
		experiments.RenderSpeed(out, pts)
		return nil
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
