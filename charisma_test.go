package charisma

import (
	"context"
	"errors"
	"testing"
	"time"
)

func quickOpts(p Protocol) Options {
	return Options{
		Protocol:   p,
		VoiceUsers: 10,
		DataUsers:  2,
		Seed:       1,
		Warmup:     500 * time.Millisecond,
		Duration:   3 * time.Second,
	}
}

func TestAllProtocolsEnumerated(t *testing.T) {
	ps := AllProtocols()
	if len(ps) != 6 {
		t.Fatalf("%d protocols, want 6", len(ps))
	}
	if ps[0] != ProtocolCHARISMA {
		t.Fatalf("first protocol = %s, want charisma", ps[0])
	}
}

func TestRunDefaultsToCharisma(t *testing.T) {
	o := quickOpts("")
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "charisma" {
		t.Fatalf("default protocol = %s", res.Protocol)
	}
}

func TestRunProducesMetrics(t *testing.T) {
	res, err := Run(quickOpts(ProtocolCHARISMA))
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames <= 0 || res.VoiceGenerated == 0 || res.DataGenerated == 0 {
		t.Fatalf("incomplete result: %+v", res)
	}
	if res.MeanDataDelay < 0 {
		t.Fatal("negative delay")
	}
}

func TestRunRejectsEmptyCell(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("empty cell accepted")
	}
}

func TestRunRejectsUnknownProtocol(t *testing.T) {
	o := quickOpts("aloha")
	if _, err := Run(o); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	a, err := Run(quickOpts(ProtocolDRMA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickOpts(ProtocolDRMA))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same options produced different results")
	}
}

func TestCompareDefaultsToAllSix(t *testing.T) {
	res, err := Compare(quickOpts(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("%d results, want 6", len(res))
	}
	seen := map[string]bool{}
	for _, r := range res {
		seen[r.Protocol] = true
	}
	if len(seen) != 6 {
		t.Fatalf("duplicate protocols in comparison: %v", seen)
	}
}

func TestCompareSubset(t *testing.T) {
	res, err := Compare(quickOpts(""), ProtocolRAMA, ProtocolRMAV)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Protocol != "rama" || res[1].Protocol != "rmav" {
		t.Fatalf("subset comparison wrong: %+v", res)
	}
}

func TestCompareSharesTraffic(t *testing.T) {
	res, err := Compare(quickOpts(""), ProtocolCHARISMA, ProtocolDTDMAFR, ProtocolDRMA)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].VoiceGenerated != res[0].VoiceGenerated {
			t.Fatal("protocols saw different traffic (CRN broken)")
		}
	}
}

func TestCustomizeHook(t *testing.T) {
	o := quickOpts(ProtocolCHARISMA)
	called := false
	o.Customize = func(sc *Scenario) {
		called = true
		sc.MAC.Charisma.Alpha = 0.5
	}
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("Customize hook not invoked")
	}
}

func TestOptionOverridesApplied(t *testing.T) {
	o := quickOpts(ProtocolCHARISMA)
	o.SpeedKmh = 80
	o.MeanSNRdB = 15
	o.WithRequestQueue = true
	var captured Scenario
	o.Customize = func(sc *Scenario) { captured = *sc }
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	if captured.Channel.SpeedKmh != 80 {
		t.Fatalf("speed = %v", captured.Channel.SpeedKmh)
	}
	if captured.PHY.MeanSNRdB != 15 {
		t.Fatalf("SNR = %v", captured.PHY.MeanSNRdB)
	}
	if !captured.UseQueue {
		t.Fatal("queue flag not propagated")
	}
}

func TestFrameDuration(t *testing.T) {
	if FrameDuration() != 2500*time.Microsecond {
		t.Fatalf("frame duration = %v, want 2.5ms", FrameDuration())
	}
}

func TestFadingTracePublicAPI(t *testing.T) {
	tr := FadingTrace(1, time.Second, 50)
	if len(tr) != 400 {
		t.Fatalf("%d samples for 1 s at 2.5 ms, want 400", len(tr))
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].At <= tr[i-1].At {
			t.Fatal("trace time not increasing")
		}
	}
	// Determinism.
	tr2 := FadingTrace(1, time.Second, 50)
	if tr[100] != tr2[100] {
		t.Fatal("trace not deterministic")
	}
}

func TestPHYCurvesPublicAPI(t *testing.T) {
	pts := PHYCurves(100)
	if len(pts) != 100 {
		t.Fatalf("%d points", len(pts))
	}
	prevEta := -1.0
	for _, p := range pts {
		if p.Throughput < prevEta {
			t.Fatal("throughput staircase not monotone")
		}
		prevEta = p.Throughput
		if p.BER < 0 || p.BER > 0.5 {
			t.Fatalf("BER %v out of range", p.BER)
		}
	}
	if pts[0].Throughput != 0 || !pts[0].Outage {
		t.Fatal("lowest CSI should be in outage")
	}
	if pts[len(pts)-1].Throughput != 5 {
		t.Fatal("highest CSI should reach η=5")
	}
	if PHYCurves(1) == nil {
		t.Fatal("degenerate n not handled")
	}
}

func TestRunMultiCellPublicAPI(t *testing.T) {
	r, err := RunMultiCell(MultiCellOptions{
		VoiceUsers: 30,
		Seed:       1,
		Warmup:     500 * time.Millisecond,
		Duration:   3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.VoiceGenerated == 0 {
		t.Fatal("no traffic")
	}
	if len(r.PerCellLossRates) != 2 {
		t.Fatalf("%d cells, want 2 by default", len(r.PerCellLossRates))
	}
}

func TestRunMultiCellRejectsRMAV(t *testing.T) {
	_, err := RunMultiCell(MultiCellOptions{Protocol: ProtocolRMAV, VoiceUsers: 5})
	if err == nil {
		t.Fatal("RMAV multicell accepted")
	}
}

func TestRunMultiCellHandoffPeriodMapping(t *testing.T) {
	// A sub-frame handoff period must clamp to one frame, not zero.
	r, err := RunMultiCell(MultiCellOptions{
		VoiceUsers:    10,
		HandoffPeriod: time.Millisecond,
		Warmup:        200 * time.Millisecond,
		Duration:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestFairnessExtensionRuns(t *testing.T) {
	o := quickOpts(ProtocolCHARISMA)
	o.Customize = func(sc *Scenario) { sc.MAC.Charisma.FairnessExponent = 1 }
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.VoiceGenerated == 0 {
		t.Fatal("no traffic under fairness extension")
	}
}

func TestRunReplicated(t *testing.T) {
	o := quickOpts(ProtocolCHARISMA)
	o.Replications = 4
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replications != 4 {
		t.Fatalf("Replications = %d, want 4", res.Replications)
	}
	if res.VoiceLossCI95 <= 0 {
		t.Fatalf("VoiceLossCI95 = %v, want > 0 across independent reps", res.VoiceLossCI95)
	}
	// Pooled window must cover ~4x the single-run frames.
	single, err := Run(quickOpts(ProtocolCHARISMA))
	if err != nil {
		t.Fatal(err)
	}
	if single.Replications != 1 || single.VoiceLossCI95 != 0 {
		t.Fatalf("single run carries replication stats: %+v", single)
	}
	if res.Frames < 3.9*single.Frames {
		t.Fatalf("pooled frames %v, want ~4x %v", res.Frames, single.Frames)
	}
	// Replicated runs stay deterministic.
	res2, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res != res2 {
		t.Fatal("replicated run not deterministic")
	}
}

func TestCompareReplicatedSharesTraffic(t *testing.T) {
	o := quickOpts("")
	o.Replications = 3
	res, err := Compare(o, ProtocolCHARISMA, ProtocolDRMA)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].VoiceGenerated != res[1].VoiceGenerated {
		t.Fatal("replicated protocols saw different traffic (CRN broken)")
	}
	if res[0].Replications != 3 || res[1].Replications != 3 {
		t.Fatalf("replication counts wrong: %d / %d", res[0].Replications, res[1].Replications)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, quickOpts(ProtocolCHARISMA)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunMultiCellReplicated(t *testing.T) {
	r, err := RunMultiCell(MultiCellOptions{
		VoiceUsers:   30,
		Seed:         1,
		Warmup:       500 * time.Millisecond,
		Duration:     2 * time.Second,
		Replications: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Replications != 2 {
		t.Fatalf("Replications = %d, want 2", r.Replications)
	}
	if len(r.PerCellLossRates) != 2 {
		t.Fatalf("%d cells, want 2", len(r.PerCellLossRates))
	}
}
